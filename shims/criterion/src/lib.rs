//! Vendored offline shim for the subset of the `criterion` API used by the
//! bench targets in `crates/bench`.
//!
//! Provides a minimal wall-clock timing harness behind the real crate's
//! macro surface (`criterion_group!`, `criterion_main!`, `Criterion`,
//! benchmark groups, `BenchmarkId`). Each benchmark runs `sample_size`
//! timed samples after one warm-up and reports min / mean / max per
//! iteration to stdout. There is no statistical analysis, HTML report, or
//! baseline comparison — the bench targets' primary job in this repository
//! is regenerating experiment reports, with coarse timing tracked as a
//! secondary signal.

#![deny(missing_docs)]
#![forbid(unsafe_code)]

use std::time::{Duration, Instant};

/// Re-export for call sites that use `criterion::black_box`.
pub use std::hint::black_box;

/// The benchmark driver handed to every target function.
#[derive(Debug, Clone)]
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { sample_size: 10 }
    }
}

impl Criterion {
    /// Sets the number of timed samples per benchmark.
    #[must_use]
    pub fn sample_size(mut self, n: usize) -> Self {
        assert!(n > 0, "sample_size must be positive");
        self.sample_size = n;
        self
    }

    /// Runs a single named benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, mut f: F) {
        let mut bencher = Bencher::new(self.sample_size);
        f(&mut bencher);
        bencher.report(name);
    }

    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.to_owned(),
        }
    }
}

/// A group of related benchmarks sharing a name prefix.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
}

impl BenchmarkGroup<'_> {
    /// Runs one parameterised benchmark within the group.
    pub fn bench_with_input<I, F>(&mut self, id: BenchmarkId, input: &I, mut f: F)
    where
        F: FnMut(&mut Bencher, &I),
    {
        let mut bencher = Bencher::new(self.criterion.sample_size);
        f(&mut bencher, input);
        bencher.report(&format!("{}/{}", self.name, id.0));
    }

    /// Ends the group (kept for API parity; nothing to flush).
    pub fn finish(self) {}
}

/// Identifier of one parameterised benchmark within a group.
#[derive(Debug, Clone)]
pub struct BenchmarkId(String);

impl BenchmarkId {
    /// An id rendered from the benchmark's parameter value.
    #[must_use]
    pub fn from_parameter(parameter: impl core::fmt::Display) -> Self {
        BenchmarkId(parameter.to_string())
    }

    /// An id with an explicit function name and parameter.
    #[must_use]
    pub fn new(function: &str, parameter: impl core::fmt::Display) -> Self {
        BenchmarkId(format!("{function}/{parameter}"))
    }
}

/// Collects timing samples for one benchmark.
#[derive(Debug)]
pub struct Bencher {
    sample_size: usize,
    samples: Vec<Duration>,
}

impl Bencher {
    fn new(sample_size: usize) -> Self {
        Bencher {
            sample_size,
            samples: Vec::with_capacity(sample_size),
        }
    }

    /// Times `routine`: one untimed warm-up, then `sample_size` samples.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        black_box(routine());
        self.samples.clear();
        for _ in 0..self.sample_size {
            let start = Instant::now();
            black_box(routine());
            self.samples.push(start.elapsed());
        }
    }

    fn report(&self, name: &str) {
        if self.samples.is_empty() {
            println!("bench: {name:<50} (no samples recorded)");
            return;
        }
        let min = self.samples.iter().min().expect("non-empty");
        let max = self.samples.iter().max().expect("non-empty");
        let total: Duration = self.samples.iter().sum();
        let mean = total / self.samples.len() as u32;
        println!(
            "bench: {name:<50} mean {mean:>12?}  min {min:>12?}  max {max:>12?}  ({} samples)",
            self.samples.len()
        );
    }
}

/// Declares a group of benchmark targets, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $config;
            $( $target(&mut criterion); )+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group!(
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        );
    };
}

/// Declares the bench binary's `main`, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn target(c: &mut Criterion) {
        c.bench_function("sum", |b| b.iter(|| (0..100u64).sum::<u64>()));
        let mut group = c.benchmark_group("grouped");
        for &n in &[1u64, 2] {
            group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, &n| {
                b.iter(|| (0..n).product::<u64>())
            });
        }
        group.finish();
    }

    criterion_group!(benches, target);

    #[test]
    fn harness_runs_targets() {
        benches();
    }
}
