//! Vendored, dependency-free shim for the subset of the `rand` 0.8 API used
//! by this workspace.
//!
//! The build environment has no access to crates.io, so the workspace vendors
//! minimal substitutes for its external dependencies under `shims/`. This
//! crate provides:
//!
//! * [`RngCore`] / [`Rng`] / [`SeedableRng`] — the trait surface the
//!   simulators are written against,
//! * [`rngs::StdRng`] — a deterministic, seedable generator
//!   (xoshiro256++ under the hood; the *distribution* quality matters here,
//!   not crypto strength),
//! * uniform sampling for integer and float ranges via [`Rng::gen_range`].
//!
//! The shim is API-compatible with the calls in this repository only; it is
//! **not** a general replacement for `rand`. If the real crate ever becomes
//! available, deleting `shims/rand` and adding the crates.io dependency
//! should be a drop-in change.

#![deny(missing_docs)]
#![forbid(unsafe_code)]

/// Low-level source of randomness: a stream of `u64` words.
pub trait RngCore {
    /// Returns the next random `u64`.
    fn next_u64(&mut self) -> u64;

    /// Returns the next random `u32` (upper half of [`RngCore::next_u64`]).
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// Fills `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        for chunk in dest.chunks_mut(8) {
            let word = self.next_u64().to_le_bytes();
            chunk.copy_from_slice(&word[..chunk.len()]);
        }
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }

    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }

    fn fill_bytes(&mut self, dest: &mut [u8]) {
        (**self).fill_bytes(dest);
    }
}

/// A generator that can be constructed from a fixed-size seed.
pub trait SeedableRng: Sized {
    /// The raw seed type (a byte array).
    type Seed: Default + AsMut<[u8]>;

    /// Constructs the generator from a full seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Expands a `u64` into a full seed with SplitMix64 and constructs the
    /// generator. Deterministic and stable across platforms.
    fn seed_from_u64(state: u64) -> Self {
        let mut seed = Self::Seed::default();
        let mut s = state;
        for chunk in seed.as_mut().chunks_mut(8) {
            let z = splitmix64(&mut s).to_le_bytes();
            chunk.copy_from_slice(&z[..chunk.len()]);
        }
        Self::from_seed(seed)
    }
}

/// One step of the SplitMix64 sequence (also used to expand seeds).
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Types that can be sampled uniformly from the generator's native stream
/// (the shim's stand-in for `rand`'s `Standard` distribution).
pub trait StandardSample {
    /// Draws one value.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl StandardSample for u64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl StandardSample for u32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

impl StandardSample for usize {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() as usize
    }
}

impl StandardSample for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl StandardSample for f64 {
    /// Uniform on `[0, 1)` with 53 bits of precision.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl StandardSample for f32 {
    /// Uniform on `[0, 1)` with 24 bits of precision.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

/// Ranges that [`Rng::gen_range`] accepts.
pub trait SampleRange<T> {
    /// Draws a value uniformly from the range. Panics on an empty range.
    fn sample_in<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_int_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_in<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                let span = (self.end as u64).wrapping_sub(self.start as u64);
                let draw = mult_reduce(rng.next_u64(), span);
                (self.start as u64).wrapping_add(draw) as $t
            }
        }

        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample_in<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "gen_range: empty range");
                let span = (hi as u64).wrapping_sub(lo as u64).wrapping_add(1);
                let draw = if span == 0 {
                    // Full u64 domain.
                    rng.next_u64()
                } else {
                    mult_reduce(rng.next_u64(), span)
                };
                (lo as u64).wrapping_add(draw) as $t
            }
        }
    )*};
}

impl_int_range!(u8, u16, u32, u64, usize, i32, i64);

/// Maps a uniform `u64` into `[0, span)` by 128-bit multiplication
/// (Lemire's multiply-shift; the tiny bias is irrelevant for simulation).
fn mult_reduce(word: u64, span: u64) -> u64 {
    ((u128::from(word) * u128::from(span)) >> 64) as u64
}

impl SampleRange<f64> for core::ops::Range<f64> {
    fn sample_in<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "gen_range: empty range");
        let u: f64 = StandardSample::sample(rng);
        self.start + u * (self.end - self.start)
    }
}

impl SampleRange<f32> for core::ops::Range<f32> {
    fn sample_in<R: RngCore + ?Sized>(self, rng: &mut R) -> f32 {
        assert!(self.start < self.end, "gen_range: empty range");
        let u: f32 = StandardSample::sample(rng);
        self.start + u * (self.end - self.start)
    }
}

impl SampleRange<f64> for core::ops::RangeInclusive<f64> {
    fn sample_in<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        let (lo, hi) = (*self.start(), *self.end());
        assert!(lo <= hi, "gen_range: empty range");
        let u: f64 = StandardSample::sample(rng);
        lo + u * (hi - lo)
    }
}

impl SampleRange<f32> for core::ops::RangeInclusive<f32> {
    fn sample_in<R: RngCore + ?Sized>(self, rng: &mut R) -> f32 {
        let (lo, hi) = (*self.start(), *self.end());
        assert!(lo <= hi, "gen_range: empty range");
        let u: f32 = StandardSample::sample(rng);
        lo + u * (hi - lo)
    }
}

/// High-level convenience methods, blanket-implemented for every [`RngCore`].
pub trait Rng: RngCore {
    /// Draws a value of type `T` from the generator's native distribution
    /// (uniform over the type's domain; `[0, 1)` for floats).
    fn gen<T: StandardSample>(&mut self) -> T {
        T::sample(self)
    }

    /// Draws a value uniformly from `range`.
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_in(self)
    }

    /// Returns `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        let u: f64 = self.gen();
        u < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

pub mod rngs {
    //! Concrete generators.

    use super::{splitmix64, RngCore, SeedableRng};

    /// The workspace's standard deterministic generator: xoshiro256++.
    ///
    /// Not the same bit stream as `rand`'s real `StdRng` — all experiment
    /// seeds live inside this repository, so only internal reproducibility
    /// matters.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }

    impl SeedableRng for StdRng {
        type Seed = [u8; 32];

        fn from_seed(seed: Self::Seed) -> Self {
            let mut s = [0u64; 4];
            for (i, word) in s.iter_mut().enumerate() {
                let mut bytes = [0u8; 8];
                bytes.copy_from_slice(&seed[i * 8..(i + 1) * 8]);
                *word = u64::from_le_bytes(bytes);
            }
            if s == [0; 4] {
                // The all-zero state is a fixed point of xoshiro; remap it.
                let mut state = 0x6A09_E667_F3BC_C909;
                for word in &mut s {
                    *word = splitmix64(&mut state);
                }
            }
            StdRng { s }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_for_equal_seeds() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
        let mut c = StdRng::seed_from_u64(43);
        assert_ne!(a.gen::<u64>(), c.gen::<u64>());
    }

    #[test]
    fn unit_floats_are_in_range_and_vary() {
        let mut rng = StdRng::seed_from_u64(7);
        let mut mean = 0.0;
        for _ in 0..1000 {
            let u: f64 = rng.gen();
            assert!((0.0..1.0).contains(&u));
            mean += u / 1000.0;
        }
        assert!((mean - 0.5).abs() < 0.05, "mean {mean}");
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut seen = [false; 10];
        for _ in 0..500 {
            let i = rng.gen_range(0usize..10);
            seen[i] = true;
            let j = rng.gen_range(5u64..=6);
            assert!((5..=6).contains(&j));
            let x = rng.gen_range(-1.5f64..2.5);
            assert!((-1.5..2.5).contains(&x));
        }
        assert!(seen.iter().all(|&b| b), "all buckets hit: {seen:?}");
    }

    #[test]
    fn zero_seed_is_not_a_fixed_point() {
        let mut rng = StdRng::from_seed([0u8; 32]);
        assert_ne!(rng.gen::<u64>(), 0);
    }
}
