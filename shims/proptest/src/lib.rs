//! Vendored offline shim for the subset of the `proptest` API used by this
//! workspace's property-based tests.
//!
//! Implements a miniature property-testing harness behind the real crate's
//! macro surface: the [`proptest!`] test wrapper, `prop_assert!` /
//! `prop_assert_eq!`, range and tuple strategies, [`strategy::Just`],
//! `prop_oneof!`, [`collection::vec`], and `any::<T>()` for the primitive
//! types the tests draw.
//!
//! Differences from real proptest, by design:
//!
//! * **No shrinking.** A failing case reports its case index and message but
//!   is not minimised. Failures are deterministic (see below), so a failing
//!   case can be re-run and debugged directly.
//! * **Deterministic seeding.** Each test derives its RNG seed from the test
//!   name and case index, so every run explores the same cases — failures
//!   are always reproducible and there is no persistence file.
//! * Strategies are generators only (`Strategy::generate`), not trees.

#![deny(missing_docs)]
#![forbid(unsafe_code)]

pub mod arbitrary;
pub mod collection;
pub mod strategy;
pub mod test_runner;

pub use arbitrary::{any, Arbitrary};

pub mod prelude {
    //! One-stop imports for tests, mirroring `proptest::prelude`.
    pub use crate::arbitrary::{any, Arbitrary};
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::{ProptestConfig, TestCaseError};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};
}

/// Wraps property-test functions into `#[test]` cases.
///
/// Supported grammar (the subset the workspace uses):
///
/// ```text
/// proptest! {
///     #![proptest_config(ProptestConfig::with_cases(64))]   // optional
///     #[test]
///     fn name(arg in strategy, arg2 in strategy2) { body }
///     ...
/// }
/// ```
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { config = $config; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! {
            config = $crate::test_runner::ProptestConfig::default();
            $($rest)*
        }
    };
}

/// Implementation detail of [`proptest!`]; do not invoke directly.
#[macro_export]
#[doc(hidden)]
macro_rules! __proptest_impl {
    (config = $config:expr;
     $( $(#[$meta:meta])*
        fn $name:ident( $($arg:ident in $strat:expr),* $(,)? ) $body:block )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let __config: $crate::test_runner::ProptestConfig = $config;
                let __base = $crate::test_runner::seed_for_test(stringify!($name));
                for __case in 0..__config.cases {
                    let mut __rng = $crate::test_runner::TestRng::for_case(__base, __case);
                    $(let $arg = $crate::strategy::Strategy::generate(&($strat), &mut __rng);)*
                    let __outcome: ::core::result::Result<(), $crate::test_runner::TestCaseError> =
                        (move || {
                            $body
                            #[allow(unreachable_code)]
                            return ::core::result::Result::Ok(());
                        })();
                    if let ::core::result::Result::Err(err) = __outcome {
                        panic!(
                            "proptest case {}/{} of `{}` failed: {}",
                            __case + 1,
                            __config.cases,
                            stringify!($name),
                            err
                        );
                    }
                }
            }
        )*
    };
}

/// Fails the current property-test case if the condition does not hold.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        if !$cond {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!("assertion failed: {}", stringify!($cond)),
            ));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!("assertion failed: {}: {}", stringify!($cond), format!($($fmt)+)),
            ));
        }
    };
}

/// Fails the current property-test case if the two values are not equal.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {
        match (&$left, &$right) {
            (__l, __r) => {
                if !(*__l == *__r) {
                    return ::core::result::Result::Err($crate::test_runner::TestCaseError::fail(
                        format!(
                            "assertion failed: `{} == {}`\n  left: {:?}\n right: {:?}",
                            stringify!($left), stringify!($right), __l, __r
                        ),
                    ));
                }
            }
        }
    };
    ($left:expr, $right:expr, $($fmt:tt)+) => {
        match (&$left, &$right) {
            (__l, __r) => {
                if !(*__l == *__r) {
                    return ::core::result::Result::Err($crate::test_runner::TestCaseError::fail(
                        format!(
                            "assertion failed: `{} == {}`\n  left: {:?}\n right: {:?}\n  {}",
                            stringify!($left), stringify!($right), __l, __r, format!($($fmt)+)
                        ),
                    ));
                }
            }
        }
    };
}

/// Fails the current property-test case if the two values are equal.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {
        match (&$left, &$right) {
            (__l, __r) => {
                if *__l == *__r {
                    return ::core::result::Result::Err($crate::test_runner::TestCaseError::fail(
                        format!(
                            "assertion failed: `{} != {}`\n  both: {:?}",
                            stringify!($left),
                            stringify!($right),
                            __l
                        ),
                    ));
                }
            }
        }
    };
}

/// Picks uniformly among several strategies producing the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strategy:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $({
                // Real proptest call sites often parenthesise range arms
                // (`(0.2f64..5.0)`); don't lint that style through the
                // expansion.
                #[allow(unused_parens)]
                let __arm = $strategy;
                $crate::strategy::Strategy::boxed(__arm)
            }),+
        ])
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_stay_in_bounds(x in 3u32..17, y in 0.25f64..0.75, k in 1usize..=4) {
            prop_assert!((3..17).contains(&x));
            prop_assert!((0.25..0.75).contains(&y));
            prop_assert!((1..=4).contains(&k));
        }

        #[test]
        fn tuples_and_maps_compose(pair in (0u32..10, 0u32..10).prop_map(|(a, b)| a + b)) {
            prop_assert!(pair < 20);
        }

        #[test]
        fn collections_have_requested_length(v in crate::collection::vec(0u64..100, 7)) {
            prop_assert_eq!(v.len(), 7);
            for item in &v {
                prop_assert!(*item < 100, "item {} out of range", item);
            }
        }

        #[test]
        fn oneof_hits_every_arm(x in prop_oneof![Just(-1.0f64), (0.0f64..1.0)]) {
            prop_assert!(x == -1.0 || (0.0..1.0).contains(&x));
            if x > 0.5 {
                return Ok(());
            }
        }
    }

    #[test]
    fn deterministic_across_runs() {
        let base = crate::test_runner::seed_for_test("deterministic_across_runs");
        let mut a = crate::test_runner::TestRng::for_case(base, 3);
        let mut b = crate::test_runner::TestRng::for_case(base, 3);
        let s = 0u64..1000;
        assert_eq!(
            Strategy::generate(&s, &mut a),
            Strategy::generate(&s, &mut b)
        );
    }
}
