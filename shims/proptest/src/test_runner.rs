//! Test execution support: configuration, failure type, and the
//! deterministic per-case RNG.

use rand::rngs::StdRng;
use rand::{RngCore, SeedableRng};

/// Configuration accepted by `#![proptest_config(...)]`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ProptestConfig {
    /// Number of random cases generated per test.
    pub cases: u32,
}

impl ProptestConfig {
    /// A configuration running `cases` random cases per test.
    #[must_use]
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    /// 64 cases — smaller than real proptest's 256 because several tests in
    /// this workspace simulate CTMCs per case.
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

/// A failed property-test case (produced by `prop_assert!` and friends).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TestCaseError {
    message: String,
}

impl TestCaseError {
    /// Creates a failure with the given message.
    #[must_use]
    pub fn fail(message: impl Into<String>) -> Self {
        TestCaseError {
            message: message.into(),
        }
    }
}

impl core::fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(f, "{}", self.message)
    }
}

impl std::error::Error for TestCaseError {}

/// Derives a stable base seed from a test's name (FNV-1a over the bytes).
#[must_use]
pub fn seed_for_test(name: &str) -> u64 {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for byte in name.as_bytes() {
        hash ^= u64::from(*byte);
        hash = hash.wrapping_mul(0x0000_0100_0000_01B3);
    }
    hash
}

/// The RNG handed to strategies: deterministic per `(test, case)` pair.
#[derive(Debug, Clone)]
pub struct TestRng(StdRng);

impl TestRng {
    /// The RNG for case number `case` of the test with base seed `base`.
    #[must_use]
    pub fn for_case(base: u64, case: u32) -> Self {
        let seed = base ^ u64::from(case).wrapping_mul(0x9E37_79B9_7F4A_7C15);
        TestRng(StdRng::seed_from_u64(seed))
    }
}

impl RngCore for TestRng {
    fn next_u64(&mut self) -> u64 {
        self.0.next_u64()
    }
}
