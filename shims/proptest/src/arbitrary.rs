//! `any::<T>()` for the primitive types the workspace's tests draw.

use crate::strategy::Strategy;
use crate::test_runner::TestRng;
use rand::{Rng, RngCore};

/// Types with a canonical "whole domain" strategy.
pub trait Arbitrary: Sized {
    /// Draws one value from the type's full domain (floats: `[0, 1)`).
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}

impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.gen::<f64>()
    }
}

impl Arbitrary for f32 {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.gen::<f32>()
    }
}

/// The strategy returned by [`any`].
#[derive(Debug, Clone, Copy)]
pub struct Any<T>(core::marker::PhantomData<T>);

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// A strategy over the full domain of `T` (mirrors `proptest::arbitrary::any`).
#[must_use]
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(core::marker::PhantomData)
}
