//! Value-generation strategies: ranges, tuples, `Just`, `prop_map`, unions.

use crate::test_runner::TestRng;
use rand::Rng;

/// A generator of random values of type [`Strategy::Value`].
///
/// Unlike real proptest this is a plain generator — no shrink trees — which
/// keeps the shim tiny while preserving the call-site API.
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Draws one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f` (proptest's `prop_map`).
    fn prop_map<U, F: Fn(Self::Value) -> U>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { source: self, f }
    }

    /// Type-erases the strategy (used by `prop_oneof!`).
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        Box::new(self)
    }
}

/// A type-erased strategy.
pub type BoxedStrategy<V> = Box<dyn Strategy<Value = V>>;

impl<S: Strategy + ?Sized> Strategy for Box<S> {
    type Value = S::Value;

    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        (**self).generate(rng)
    }
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;

    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        (**self).generate(rng)
    }
}

/// Always produces a clone of the same value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// The result of [`Strategy::prop_map`].
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    source: S,
    f: F,
}

impl<S: Strategy, U, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
    type Value = U;

    fn generate(&self, rng: &mut TestRng) -> U {
        (self.f)(self.source.generate(rng))
    }
}

/// Uniform choice among several strategies (backs `prop_oneof!`).
pub struct Union<V> {
    arms: Vec<BoxedStrategy<V>>,
}

impl<V> Union<V> {
    /// Creates a union; panics if `arms` is empty.
    #[must_use]
    pub fn new(arms: Vec<BoxedStrategy<V>>) -> Self {
        assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
        Union { arms }
    }
}

impl<V> Strategy for Union<V> {
    type Value = V;

    fn generate(&self, rng: &mut TestRng) -> V {
        let arm = rng.gen_range(0..self.arms.len());
        self.arms[arm].generate(rng)
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for core::ops::Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.gen_range(self.clone())
            }
        }

        impl Strategy for core::ops::RangeInclusive<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
    )*};
}

impl_range_strategy!(u8, u16, u32, u64, usize, i32, i64, f64, f32);

macro_rules! impl_tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);

            #[allow(non_snake_case)]
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    };
}

impl_tuple_strategy!(A);
impl_tuple_strategy!(A, B);
impl_tuple_strategy!(A, B, C);
impl_tuple_strategy!(A, B, C, D);
impl_tuple_strategy!(A, B, C, D, E);
impl_tuple_strategy!(A, B, C, D, E, F);
impl_tuple_strategy!(A, B, C, D, E, F, G);
impl_tuple_strategy!(A, B, C, D, E, F, G, H);
