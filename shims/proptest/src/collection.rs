//! Collection strategies (`proptest::collection::vec`).

use crate::strategy::Strategy;
use crate::test_runner::TestRng;
use rand::Rng;

/// Lengths accepted by [`vec()`]: a fixed `usize` or a range of sizes.
pub trait SizeBounds {
    /// Inclusive `(min, max)` length bounds.
    fn bounds(self) -> (usize, usize);
}

impl SizeBounds for usize {
    fn bounds(self) -> (usize, usize) {
        (self, self)
    }
}

impl SizeBounds for core::ops::Range<usize> {
    fn bounds(self) -> (usize, usize) {
        assert!(self.start < self.end, "empty size range");
        (self.start, self.end - 1)
    }
}

impl SizeBounds for core::ops::RangeInclusive<usize> {
    fn bounds(self) -> (usize, usize) {
        (*self.start(), *self.end())
    }
}

/// Strategy producing `Vec`s of values drawn from an element strategy.
#[derive(Debug, Clone)]
pub struct VecStrategy<S> {
    element: S,
    min: usize,
    max: usize,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;

    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        let len = if self.min == self.max {
            self.min
        } else {
            rng.gen_range(self.min..=self.max)
        };
        (0..len).map(|_| self.element.generate(rng)).collect()
    }
}

/// `Vec` strategy with the given element strategy and length (fixed or
/// ranged), mirroring `proptest::collection::vec`.
pub fn vec<S: Strategy>(element: S, size: impl SizeBounds) -> VecStrategy<S> {
    let (min, max) = size.bounds();
    VecStrategy { element, min, max }
}
