//! Vendored offline shim for the subset of the `rayon` API used by
//! `crates/engine`: `into_par_iter().map(..).collect::<Vec<_>>()` plus
//! `ThreadPoolBuilder` / `ThreadPool::install` for bounding worker counts.
//!
//! Implementation: the input is split into small ordered blocks served from
//! a shared queue to `std::thread::scope` workers (dynamic load balancing,
//! results re-assembled in input order). There is no work stealing, no
//! splitting of nested iterators, and no global pool — each `collect`
//! spawns its workers. For the engine's workloads (hundreds of multi-
//! millisecond CTMC replications) the spawn cost is noise; if the real
//! rayon ever becomes available it is a drop-in replacement because the
//! engine only uses this API subset.

#![deny(missing_docs)]
#![forbid(unsafe_code)]

pub mod iter;

pub mod prelude {
    //! Glob-import surface mirroring `rayon::prelude`.
    pub use crate::iter::{IntoParallelIterator, ParallelMap, ParallelSource};
}

use std::cell::Cell;

thread_local! {
    /// Worker-count override installed by [`ThreadPool::install`]
    /// (0 = no override).
    static NUM_THREADS_OVERRIDE: Cell<usize> = const { Cell::new(0) };
}

/// The number of worker threads parallel operations started from this
/// thread will use.
#[must_use]
pub fn current_num_threads() -> usize {
    let overridden = NUM_THREADS_OVERRIDE.with(Cell::get);
    if overridden > 0 {
        overridden
    } else {
        std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get)
    }
}

/// Builder for a [`ThreadPool`], mirroring rayon's API.
#[derive(Debug, Clone, Default)]
pub struct ThreadPoolBuilder {
    num_threads: usize,
}

impl ThreadPoolBuilder {
    /// Creates a builder with the default (auto-detected) worker count.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Sets the worker count (0 = auto-detect).
    #[must_use]
    pub fn num_threads(mut self, n: usize) -> Self {
        self.num_threads = n;
        self
    }

    /// Builds the pool. Never fails in the shim; the `Result` mirrors
    /// rayon's signature.
    pub fn build(self) -> Result<ThreadPool, ThreadPoolBuildError> {
        Ok(ThreadPool {
            num_threads: self.num_threads,
        })
    }
}

/// Error type for [`ThreadPoolBuilder::build`] (never produced by the shim).
#[derive(Debug, Clone, Copy)]
pub struct ThreadPoolBuildError;

impl core::fmt::Display for ThreadPoolBuildError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(f, "failed to build thread pool")
    }
}

impl std::error::Error for ThreadPoolBuildError {}

/// A bounded-width execution context. In the shim this is just a worker
/// count that [`ThreadPool::install`] scopes onto the calling thread.
#[derive(Debug, Clone)]
pub struct ThreadPool {
    num_threads: usize,
}

impl ThreadPool {
    /// Runs `op` with this pool's worker count governing any parallel
    /// iterators it executes. The previous worker count is restored even
    /// if `op` panics (drop guard), so a caught panic cannot leak this
    /// pool's override into later work on the thread.
    pub fn install<R>(&self, op: impl FnOnce() -> R) -> R {
        struct Restore(usize);
        impl Drop for Restore {
            fn drop(&mut self) {
                NUM_THREADS_OVERRIDE.with(|cell| cell.set(self.0));
            }
        }
        let _guard = Restore(NUM_THREADS_OVERRIDE.with(|cell| {
            let previous = cell.get();
            cell.set(self.num_threads);
            previous
        }));
        op()
    }

    /// The worker count parallel operations inside [`ThreadPool::install`]
    /// will use.
    #[must_use]
    pub fn current_num_threads(&self) -> usize {
        if self.num_threads > 0 {
            self.num_threads
        } else {
            std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::prelude::*;
    use super::*;

    #[test]
    fn parallel_map_preserves_order() {
        let squares: Vec<u64> = (0..1000usize)
            .into_par_iter()
            .map(|i| (i * i) as u64)
            .collect();
        let expected: Vec<u64> = (0..1000usize).map(|i| (i * i) as u64).collect();
        assert_eq!(squares, expected);
    }

    #[test]
    fn install_bounds_worker_count() {
        let pool = ThreadPoolBuilder::new().num_threads(2).build().unwrap();
        assert_eq!(pool.current_num_threads(), 2);
        let result: Vec<usize> = pool.install(|| {
            assert_eq!(current_num_threads(), 2);
            vec![1, 2, 3].into_par_iter().map(|x| x * 10).collect()
        });
        assert_eq!(result, vec![10, 20, 30]);
        // The override is restored once install returns.
        assert_eq!(NUM_THREADS_OVERRIDE.with(std::cell::Cell::get), 0);
    }

    #[test]
    fn single_item_runs_inline() {
        let out: Vec<i32> = vec![7].into_par_iter().map(|x| x + 1).collect();
        assert_eq!(out, vec![8]);
    }
}
