//! The parallel-iterator subset: `into_par_iter().map(..).collect()`.

use std::collections::VecDeque;
use std::sync::Mutex;

/// Conversion into a parallel source, mirroring
/// `rayon::iter::IntoParallelIterator`.
pub trait IntoParallelIterator {
    /// Element type.
    type Item: Send;

    /// Starts a parallel pipeline over the elements.
    fn into_par_iter(self) -> ParallelSource<Self::Item>;
}

impl<T: Send> IntoParallelIterator for Vec<T> {
    type Item = T;

    fn into_par_iter(self) -> ParallelSource<T> {
        ParallelSource { items: self }
    }
}

impl IntoParallelIterator for core::ops::Range<usize> {
    type Item = usize;

    fn into_par_iter(self) -> ParallelSource<usize> {
        ParallelSource {
            items: self.collect(),
        }
    }
}

impl IntoParallelIterator for core::ops::Range<u64> {
    type Item = u64;

    fn into_par_iter(self) -> ParallelSource<u64> {
        ParallelSource {
            items: self.collect(),
        }
    }
}

/// A materialised parallel source (the shim has no lazy splitting).
pub struct ParallelSource<T> {
    items: Vec<T>,
}

impl<T: Send> ParallelSource<T> {
    /// Maps every element through `f` in parallel.
    pub fn map<U: Send, F: Fn(T) -> U + Sync>(self, f: F) -> ParallelMap<T, F> {
        ParallelMap {
            items: self.items,
            f,
        }
    }
}

/// A mapped parallel pipeline awaiting collection.
pub struct ParallelMap<T, F> {
    items: Vec<T>,
    f: F,
}

impl<T: Send, F> ParallelMap<T, F> {
    /// Executes the pipeline and collects results **in input order**.
    pub fn collect<C, U>(self) -> C
    where
        F: Fn(T) -> U + Sync,
        U: Send,
        C: FromOrderedParallel<U>,
    {
        C::from_ordered(execute(self.items, &self.f))
    }
}

/// Collections constructible from the ordered output of a parallel map.
pub trait FromOrderedParallel<U> {
    /// Builds the collection from results in input order.
    fn from_ordered(items: Vec<U>) -> Self;
}

impl<U> FromOrderedParallel<U> for Vec<U> {
    fn from_ordered(items: Vec<U>) -> Self {
        items
    }
}

/// Runs `f` over `items` on the current worker budget, preserving order.
fn execute<T: Send, U: Send, F: Fn(T) -> U + Sync>(items: Vec<T>, f: &F) -> Vec<U> {
    let workers = crate::current_num_threads();
    if workers <= 1 || items.len() <= 1 {
        return items.into_iter().map(f).collect();
    }

    // Split into ordered blocks served from a shared queue: dynamic load
    // balancing without unsafe slot writes. Aim for several blocks per
    // worker so uneven item costs even out.
    let block_size = (items.len() / (workers * 4)).max(1);
    let total = items.len();
    let mut queue: VecDeque<(usize, Vec<T>)> = VecDeque::new();
    let mut items = items;
    let mut offset = 0;
    while !items.is_empty() {
        let take = block_size.min(items.len());
        let rest = items.split_off(take);
        queue.push_back((offset, items));
        offset += take;
        items = rest;
    }
    let queue = Mutex::new(queue);
    let done = Mutex::new(Vec::<(usize, Vec<U>)>::new());

    std::thread::scope(|scope| {
        for _ in 0..workers.min(total) {
            scope.spawn(|| loop {
                let block = queue.lock().expect("queue lock").pop_front();
                let Some((start, block)) = block else { break };
                let mapped: Vec<U> = block.into_iter().map(f).collect();
                done.lock().expect("results lock").push((start, mapped));
            });
        }
    });

    let mut blocks = done.into_inner().expect("results lock");
    blocks.sort_by_key(|(start, _)| *start);
    let mut out = Vec::with_capacity(total);
    for (_, mapped) in blocks {
        out.extend(mapped);
    }
    out
}
