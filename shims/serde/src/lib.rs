//! Vendored offline shim for the `serde` facade.
//!
//! Exposes the `Serialize` / `Deserialize` names in both the trait and the
//! derive-macro namespaces so that `use serde::{Serialize, Deserialize}`
//! plus `#[derive(Serialize, Deserialize)]` compile exactly as they would
//! against the real crate. The derives are no-ops (see `shims/serde_derive`)
//! and the traits are inert markers: nothing in this workspace serializes
//! through serde — `crates/engine::artifact` emits CSV/JSON by hand.

#![deny(missing_docs)]
#![forbid(unsafe_code)]

pub use serde_derive::{Deserialize, Serialize};

/// Marker stand-in for `serde::Serialize`. Blanket-implemented for every
/// type so generic bounds (if any are ever written) stay satisfiable.
pub trait Serialize {}

impl<T: ?Sized> Serialize for T {}

/// Marker stand-in for `serde::Deserialize`.
pub trait Deserialize<'de> {}

impl<'de, T: ?Sized> Deserialize<'de> for T {}
