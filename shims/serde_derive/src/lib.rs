//! Vendored offline shim for `serde_derive`.
//!
//! The workspace's types carry `#[derive(Serialize, Deserialize)]` so that
//! switching to the real serde is a one-line manifest change, but nothing in
//! the repository performs serde-based (de)serialization — the artifact
//! emitters in `crates/engine` write CSV/JSON by hand. These derives
//! therefore expand to nothing: the attribute compiles, no trait impls are
//! generated, and no code can accidentally depend on them.

use proc_macro::TokenStream;

/// No-op stand-in for serde's `Serialize` derive.
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// No-op stand-in for serde's `Deserialize` derive.
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
