//! Vendored, dependency-free shim for the subset of the `rand_chacha` API
//! used by this workspace: counter-mode ChaCha generators with explicit
//! stream selection.
//!
//! The replication engine (`crates/engine`) keys one independent random
//! stream per `(scenario, replication)` pair so that results are bit-for-bit
//! reproducible regardless of how work is scheduled across threads. ChaCha
//! is the natural fit: the state is `(key, counter, stream)` and any stream
//! can be positioned independently of every other.
//!
//! This is a faithful implementation of the ChaCha block function (the same
//! quarter-round schedule as RFC 8439) parameterised by the number of double
//! rounds; it is **not** reviewed for cryptographic use and this workspace
//! only relies on its statistical quality.

#![deny(missing_docs)]
#![forbid(unsafe_code)]

use rand::{RngCore, SeedableRng};

/// ChaCha with `DR` double rounds (so `ChaChaRng<6>` is ChaCha12).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ChaChaRng<const DR: usize> {
    /// Key words (state words 4..12).
    key: [u32; 8],
    /// 64-bit block counter (state words 12..14).
    counter: u64,
    /// 64-bit stream id (state words 14..16).
    stream: u64,
    /// Current output block.
    block: [u32; 16],
    /// Next unread word in `block`; 16 means "refill required".
    index: usize,
}

/// ChaCha with 8 rounds.
pub type ChaCha8Rng = ChaChaRng<4>;
/// ChaCha with 12 rounds (the default tier rand itself uses for `StdRng`).
pub type ChaCha12Rng = ChaChaRng<6>;
/// ChaCha with the full 20 rounds.
pub type ChaCha20Rng = ChaChaRng<10>;

const CHACHA_CONSTANTS: [u32; 4] = [0x6170_7865, 0x3320_646e, 0x7962_2d32, 0x6b20_6574];

#[inline]
fn quarter_round(state: &mut [u32; 16], a: usize, b: usize, c: usize, d: usize) {
    state[a] = state[a].wrapping_add(state[b]);
    state[d] = (state[d] ^ state[a]).rotate_left(16);
    state[c] = state[c].wrapping_add(state[d]);
    state[b] = (state[b] ^ state[c]).rotate_left(12);
    state[a] = state[a].wrapping_add(state[b]);
    state[d] = (state[d] ^ state[a]).rotate_left(8);
    state[c] = state[c].wrapping_add(state[d]);
    state[b] = (state[b] ^ state[c]).rotate_left(7);
}

impl<const DR: usize> ChaChaRng<DR> {
    /// Selects the independent stream identified by `stream`, restarting it
    /// from its first block.
    pub fn set_stream(&mut self, stream: u64) {
        self.stream = stream;
        self.counter = 0;
        self.index = 16;
    }

    /// The current stream id.
    #[must_use]
    pub fn get_stream(&self) -> u64 {
        self.stream
    }

    fn refill(&mut self) {
        let mut state = [0u32; 16];
        state[..4].copy_from_slice(&CHACHA_CONSTANTS);
        state[4..12].copy_from_slice(&self.key);
        state[12] = self.counter as u32;
        state[13] = (self.counter >> 32) as u32;
        state[14] = self.stream as u32;
        state[15] = (self.stream >> 32) as u32;

        let mut working = state;
        for _ in 0..DR {
            // Column rounds.
            quarter_round(&mut working, 0, 4, 8, 12);
            quarter_round(&mut working, 1, 5, 9, 13);
            quarter_round(&mut working, 2, 6, 10, 14);
            quarter_round(&mut working, 3, 7, 11, 15);
            // Diagonal rounds.
            quarter_round(&mut working, 0, 5, 10, 15);
            quarter_round(&mut working, 1, 6, 11, 12);
            quarter_round(&mut working, 2, 7, 8, 13);
            quarter_round(&mut working, 3, 4, 9, 14);
        }
        for (out, init) in working.iter_mut().zip(state.iter()) {
            *out = out.wrapping_add(*init);
        }
        self.block = working;
        self.counter = self.counter.wrapping_add(1);
        self.index = 0;
    }

    #[inline]
    fn next_word(&mut self) -> u32 {
        if self.index >= 16 {
            self.refill();
        }
        let word = self.block[self.index];
        self.index += 1;
        word
    }
}

impl<const DR: usize> RngCore for ChaChaRng<DR> {
    fn next_u32(&mut self) -> u32 {
        self.next_word()
    }

    fn next_u64(&mut self) -> u64 {
        let lo = u64::from(self.next_word());
        let hi = u64::from(self.next_word());
        (hi << 32) | lo
    }
}

impl<const DR: usize> SeedableRng for ChaChaRng<DR> {
    type Seed = [u8; 32];

    fn from_seed(seed: Self::Seed) -> Self {
        let mut key = [0u32; 8];
        for (i, word) in key.iter_mut().enumerate() {
            let mut bytes = [0u8; 4];
            bytes.copy_from_slice(&seed[i * 4..(i + 1) * 4]);
            *word = u32::from_le_bytes(bytes);
        }
        ChaChaRng {
            key,
            counter: 0,
            stream: 0,
            block: [0; 16],
            index: 16,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;

    #[test]
    fn chacha20_matches_known_keystream() {
        // Canonical ChaCha20 vector: all-zero key, zero counter, zero nonce
        // produces the keystream 76 b8 e0 ad a0 f1 3d 90 … (little-endian
        // words 0xade0b876, 0x903df1a0).
        let mut rng = ChaCha20Rng::from_seed([0u8; 32]);
        let w0 = rng.next_u32();
        let w1 = rng.next_u32();
        assert_eq!((w0, w1), (0xade0_b876, 0x903d_f1a0));
    }

    #[test]
    fn streams_are_independent_and_deterministic() {
        let mut a = ChaCha12Rng::seed_from_u64(99);
        let mut b = ChaCha12Rng::seed_from_u64(99);
        assert_eq!(a.next_u64(), b.next_u64());

        b.set_stream(1);
        let mut c = ChaCha12Rng::seed_from_u64(99);
        c.set_stream(1);
        let from_b: Vec<u64> = (0..8).map(|_| b.next_u64()).collect();
        let from_c: Vec<u64> = (0..8).map(|_| c.next_u64()).collect();
        assert_eq!(from_b, from_c);

        a.set_stream(0);
        let stream0: Vec<u64> = (0..8).map(|_| a.next_u64()).collect();
        assert_ne!(stream0, from_b, "distinct streams differ");
    }

    #[test]
    fn floats_look_uniform() {
        let mut rng = ChaCha12Rng::seed_from_u64(5);
        let mean: f64 = (0..2000).map(|_| rng.gen::<f64>()).sum::<f64>() / 2000.0;
        assert!((mean - 0.5).abs() < 0.03, "mean {mean}");
    }
}
