//! The "one extra piece" corollary of Theorem 1.
//!
//! If every peer, after completing its download, dwells in the swarm just
//! long enough to upload **one** more piece on average (`γ ≤ µ`), the system
//! is positive recurrent for *any* arrival rate and any positive seed rate.
//! This example hammers a 3-piece swarm with a heavy load (λ0 = 20, a seed a
//! hundred times slower) and shows the verdict flip as the mean dwell time
//! crosses `1/µ`, with every dwell ratio replicated through one engine
//! [`Session`].
//!
//! Run with:
//!
//! ```text
//! cargo run --release --example one_extra_piece
//! ```

use p2p_stability::engine::{labels, EngineConfig, Scenario, Session, Workload};
use p2p_stability::workload::scenario;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let lambda0 = 20.0;
    let ratios = [0.5, 0.9, 1.0, 1.1, 1.5, 3.0];
    println!("K = 3, µ = 1, U_s = 0.05, λ0 = {lambda0}");

    // One scenario per dwell ratio, replicated in a single session: every
    // point draws from its own deterministic stream, and the whole sweep is
    // bit-identical at any worker count.
    let mut scenarios = Vec::new();
    let mut dwell = Vec::new();
    for (i, &gamma_over_mu) in ratios.iter().enumerate() {
        let params = scenario::one_extra_piece(3, lambda0, gamma_over_mu)?;
        dwell.push(params.mean_seed_dwell());
        scenarios.push(Scenario::new(
            i as u64,
            format!("γ/µ={gamma_over_mu}"),
            params,
        ));
    }
    let outcomes = Session::builder()
        .config(
            EngineConfig::default()
                .with_replications(3)
                .with_horizon(800.0)
                .with_master_seed(11)
                .with_jobs(0),
        )
        .workload(Workload::ctmc(scenarios))
        .build()?
        .run()
        .into_ctmc()
        .expect("a CTMC workload");

    println!(
        "{:>8} {:>12} {:>12} {:>14} {:>12}",
        "γ/µ", "dwell 1/γ", "Theorem 1", "sim majority", "tail slope"
    );
    for ((&ratio, &mean_dwell), outcome) in ratios.iter().zip(&dwell).zip(&outcomes) {
        println!(
            "{:>8.2} {:>12.3} {:>12} {:>14} {:>12.3}",
            ratio,
            mean_dwell,
            labels::verdict_name(outcome.theory),
            labels::class_name(outcome.majority),
            outcome.tail_slope.mean,
        );
    }

    println!(
        "\nThe corollary: for γ ≤ µ (dwell ≥ one piece upload time) the swarm is stable\n\
         regardless of the arrival rate; pushing γ above µ re-opens the missing-piece\n\
         instability once the load exceeds the seed-driven threshold."
    );
    Ok(())
}
