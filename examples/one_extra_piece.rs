//! The "one extra piece" corollary of Theorem 1.
//!
//! If every peer, after completing its download, dwells in the swarm just
//! long enough to upload **one** more piece on average (`γ ≤ µ`), the system
//! is positive recurrent for *any* arrival rate and any positive seed rate.
//! This example hammers a 3-piece swarm with a heavy load (λ0 = 20, a seed a
//! hundred times slower) and shows the verdict flip as the mean dwell time
//! crosses `1/µ`.
//!
//! Run with:
//!
//! ```text
//! cargo run --release --example one_extra_piece
//! ```

use p2p_stability::swarm::{stability, SwarmModel};
use p2p_stability::workload::scenario;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let lambda0 = 20.0;
    println!("K = 3, µ = 1, U_s = 0.05, λ0 = {lambda0}");
    println!(
        "{:>8} {:>12} {:>12} {:>14} {:>12}",
        "γ/µ", "dwell 1/γ", "Theorem 1", "sim class", "tail slope"
    );

    for gamma_over_mu in [0.5, 0.9, 1.0, 1.1, 1.5, 3.0] {
        let params = scenario::one_extra_piece(3, lambda0, gamma_over_mu)?;
        let verdict = stability::classify(&params).verdict;
        let model = SwarmModel::new(params.clone());
        let mut rng = StdRng::seed_from_u64(11);
        let sim = model.simulate_and_classify(model.empty_state(), 1_500.0, &mut rng);
        println!(
            "{:>8.2} {:>12.3} {:>12} {:>14} {:>12.3}",
            gamma_over_mu,
            params.mean_seed_dwell(),
            format!("{verdict:?}"),
            format!("{:?}", sim.class),
            sim.tail_slope,
        );
    }

    println!(
        "\nThe corollary: for γ ≤ µ (dwell ≥ one piece upload time) the swarm is stable\n\
         regardless of the arrival rate; pushing γ above µ re-opens the missing-piece\n\
         instability once the load exceeds the seed-driven threshold."
    );
    Ok(())
}
