//! Piece-selection policies: same stability region, different quasi-stable
//! behaviour (Theorem 14 and the Section IX discussion).
//!
//! Theorem 14 says the stability region of Theorem 1 does not depend on the
//! piece-selection policy, as long as a useful piece is transferred whenever
//! one exists. But the *time until a large one club emerges* in a transient
//! configuration — the quasi-stability horizon — can differ substantially.
//! This example replicates the same two parameter points under four
//! policies in one engine [`Session`] (eight scenarios, one batch,
//! deterministic at any worker count), then probes the one-club onset time
//! with a single trajectory per policy.
//!
//! Run with:
//!
//! ```text
//! cargo run --release --example piece_policy_comparison
//! ```

use p2p_stability::engine::{labels, AgentScenario, EngineConfig, Session, Workload};
use p2p_stability::swarm::sim::{AgentConfig, AgentSwarm};
use p2p_stability::swarm::{policy, stability};
use p2p_stability::workload::scenario;
use rand::rngs::StdRng;
use rand::SeedableRng;

const POLICIES: [&str; 4] = [
    "random-useful",
    "rarest-first",
    "sequential",
    "most-common-first",
];

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let stable = scenario::example3([1.0, 1.0, 1.0], 1.0, 2.0)?;
    // Piece 1 is the rare piece, so the default watch piece tracks the right club.
    let transient = scenario::example3([0.2, 2.0, 2.0], 1.0, 4.0)?;
    println!(
        "stable point    : Example 3 with λ = (1, 1, 1), γ = 2µ   → Theorem 1: {:?}",
        stability::classify(&stable).verdict
    );
    println!(
        "transient point : Example 3 with λ = (0.2, 2, 2), γ = 4µ → Theorem 1: {:?}",
        stability::classify(&transient).verdict
    );

    // One session over policy × point: scenario ids are stable, so adding a
    // policy later would not disturb the other scenarios' streams.
    let mut scenarios = Vec::new();
    for (p, name) in POLICIES.iter().enumerate() {
        for (which, params) in [(0u64, &stable), (1, &transient)] {
            let mut s = AgentScenario::new(
                (p as u64) * 2 + which,
                format!("{name}/{}", if which == 0 { "stable" } else { "transient" }),
                params.clone(),
            );
            s.policy = (*name).to_owned();
            scenarios.push(s);
        }
    }
    let outcomes = Session::builder()
        .config(
            EngineConfig::default()
                .with_replications(3)
                .with_horizon(1_000.0)
                .with_master_seed(99)
                .with_jobs(0),
        )
        .workload(Workload::agent(scenarios))
        .build()?
        .run()
        .into_agent()
        .expect("an agent workload");

    println!();
    println!(
        "{:<18} {:>16} {:>18} {:>22}",
        "policy", "stable → majority", "transient → majority", "one-club ≥ 100 at t ="
    );
    for (p, name) in POLICIES.iter().enumerate() {
        let stable_outcome = &outcomes[p * 2];
        let transient_outcome = &outcomes[p * 2 + 1];

        // Quasi-stability probe: one trajectory, first time the one club
        // exceeds 100 peers (a time series the aggregate outcomes cannot
        // carry).
        let sim = AgentSwarm::with_config(
            transient.clone(),
            AgentConfig {
                snapshot_interval: 5.0,
                ..Default::default()
            },
            policy::by_name(name).expect("known policy"),
        )?;
        let mut rng = StdRng::seed_from_u64(99);
        let result = sim.run(&[], 1_000.0, &mut rng);
        let onset = result
            .snapshots
            .iter()
            .find(|s| s.groups.one_club >= 100)
            .map_or(f64::INFINITY, |s| s.time);

        println!(
            "{:<18} {:>16} {:>18} {:>22.0}",
            name,
            labels::class_name(stable_outcome.majority),
            labels::class_name(transient_outcome.majority),
            onset,
        );
    }

    println!(
        "\nAll useful-piece policies agree with Theorem 1 on both points (Theorem 14);\n\
         they differ only in how quickly the transient configuration develops its one club\n\
         — the quasi-stability effect the paper flags as future work in Section IX."
    );
    Ok(())
}
