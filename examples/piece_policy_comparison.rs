//! Piece-selection policies: same stability region, different quasi-stable
//! behaviour (Theorem 14 and the Section IX discussion).
//!
//! Theorem 14 says the stability region of Theorem 1 does not depend on the
//! piece-selection policy, as long as a useful piece is transferred whenever
//! one exists. But the *time until a large one club emerges* in a transient
//! configuration — the quasi-stability horizon — can differ substantially.
//! This example runs the same two parameter points under four policies.
//!
//! Run with:
//!
//! ```text
//! cargo run --release --example piece_policy_comparison
//! ```

use p2p_stability::markov::PathClassifier;
use p2p_stability::swarm::sim::{AgentConfig, AgentSwarm};
use p2p_stability::swarm::{policy, stability};
use p2p_stability::workload::scenario;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let stable = scenario::example3([1.0, 1.0, 1.0], 1.0, 2.0)?;
    // Piece 1 is the rare piece, so the default watch piece tracks the right club.
    let transient = scenario::example3([0.2, 2.0, 2.0], 1.0, 4.0)?;
    println!(
        "stable point    : Example 3 with λ = (1, 1, 1), γ = 2µ   → Theorem 1: {:?}",
        stability::classify(&stable).verdict
    );
    println!(
        "transient point : Example 3 with λ = (0.2, 2, 2), γ = 4µ → Theorem 1: {:?}",
        stability::classify(&transient).verdict
    );
    println!();
    println!(
        "{:<18} {:>14} {:>16} {:>22} {:>16}",
        "policy", "stable → class", "transient → class", "one-club ≥ 100 at t =", "success rate %"
    );

    for name in [
        "random-useful",
        "rarest-first",
        "sequential",
        "most-common-first",
    ] {
        let mut cells: Vec<String> = vec![name.to_owned()];
        let mut onset = f64::INFINITY;
        let mut success = 0.0;
        for (which, params) in [("stable", &stable), ("transient", &transient)] {
            let sim = AgentSwarm::with_config(
                params.clone(),
                AgentConfig {
                    snapshot_interval: 5.0,
                    ..Default::default()
                },
                policy::by_name(name).expect("known policy"),
            )?;
            let mut rng = StdRng::seed_from_u64(99);
            let result = sim.run(&[], 1_500.0, &mut rng);
            let class = PathClassifier::new(params.total_arrival_rate(), 40.0)
                .classify(&result.peer_count_path())
                .class;
            cells.push(format!("{class:?}"));
            if which == "transient" {
                onset = result
                    .snapshots
                    .iter()
                    .find(|s| s.groups.one_club >= 100)
                    .map_or(f64::INFINITY, |s| s.time);
                success = 100.0 * result.contact_success_fraction();
            }
        }
        println!(
            "{:<18} {:>14} {:>16} {:>22.0} {:>16.1}",
            cells[0], cells[1], cells[2], onset, success
        );
    }

    println!(
        "\nAll useful-piece policies agree with Theorem 1 on both points (Theorem 14);\n\
         they differ only in how quickly the transient configuration develops its one club\n\
         and in how efficiently contacts are used — the quasi-stability effect the paper\n\
         flags as future work in Section IX."
    );
    Ok(())
}
