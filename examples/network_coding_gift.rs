//! Network coding with gifted coded pieces (Theorem 15, Section VIII-B).
//!
//! Without coding, peers arriving with one random *data* piece cannot save a
//! swarm from the missing-piece syndrome for any gifted fraction `f < 1`.
//! With random linear coding over `GF(q)`, a tiny `f` suffices: the paper's
//! headline numbers are `q = 64, K = 200`, where `f ≈ 0.005` already
//! stabilises the system. This example prints the closed-form thresholds and
//! then simulates a laptop-scale coded swarm (`q = 8, K = 4`) on both sides
//! of its threshold.
//!
//! Run with:
//!
//! ```text
//! cargo run --release --example network_coding_gift
//! ```

use p2p_stability::markov::PathClassifier;
use p2p_stability::swarm::coded;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    println!("Closed-form gifted-fraction thresholds (Theorem 15):");
    println!(
        "{:>6} {:>6} {:>18} {:>18}",
        "q", "K", "transient below", "recurrent above"
    );
    for (q, k) in [(8u64, 4usize), (16, 8), (64, 200), (256, 200)] {
        let (lo, hi) = coded::theorem15_gift_thresholds(q, k);
        println!("{q:>6} {k:>6} {lo:>18.6} {hi:>18.6}");
    }
    println!(
        "\nPaper example (q = 64, K = 200): transient below ≈ 0.00507, recurrent above ≈ 0.00516.\n\
         Without coding the same system is transient for ANY gifted fraction f < 1.\n"
    );

    // Simulate the coded swarm at laptop scale.
    let (q, k) = (8u64, 4usize);
    let (lo, hi) = coded::theorem15_gift_thresholds(q, k);
    println!("Coded swarm simulation at q = {q}, K = {k} (λ = 1, U_s = 0, γ = ∞):");
    println!(
        "{:>12} {:>14} {:>12} {:>12} {:>12}",
        "fraction f", "Theorem 15", "sim class", "tail slope", "departures"
    );
    for f in [0.3 * lo, 0.8 * lo, 1.5 * hi, 4.0 * hi] {
        let params =
            coded::CodedParams::gift_example(k, q, 1.0, f.min(1.0), 0.0, 1.0, f64::INFINITY)?;
        let theory = coded::theorem15_classify(&params)?;
        let sim = coded::CodedSwarmSim::new(params).snapshot_interval(10.0);
        let mut rng = StdRng::seed_from_u64(5);
        let result = sim.run(2_000.0, &mut rng);
        let verdict = PathClassifier::new(1.0, 40.0).classify(&result.peer_count_path());
        println!(
            "{:>12.4} {:>14} {:>12} {:>12.3} {:>12}",
            f,
            format!("{theory:?}"),
            format!("{:?}", verdict.class),
            verdict.tail_slope,
            result.departures,
        );
    }
    Ok(())
}
