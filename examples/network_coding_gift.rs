//! Network coding with gifted coded pieces (Theorem 15, Section VIII-B).
//!
//! Without coding, peers arriving with one random *data* piece cannot save a
//! swarm from the missing-piece syndrome for any gifted fraction `f < 1`.
//! With random linear coding over `GF(q)`, a tiny `f` suffices: the paper's
//! headline numbers are `q = 64, K = 200`, where `f ≈ 0.005` already
//! stabilises the system. This example prints the closed-form thresholds and
//! then replicates a laptop-scale coded swarm (`q = 8, K = 4`) on both sides
//! of its threshold through one engine [`Session`] coded-grid workload —
//! majority verdicts over independent streams instead of single noisy runs.
//!
//! Run with:
//!
//! ```text
//! cargo run --release --example network_coding_gift
//! ```

use p2p_stability::engine::{labels, Axis, CodedGridSpec, EngineConfig, Session, Workload};
use p2p_stability::swarm::coded;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    println!("Closed-form gifted-fraction thresholds (Theorem 15):");
    println!(
        "{:>6} {:>6} {:>18} {:>18}",
        "q", "K", "transient below", "recurrent above"
    );
    for (q, k) in [(8u64, 4usize), (16, 8), (64, 200), (256, 200)] {
        let (lo, hi) = coded::theorem15_gift_thresholds(q, k);
        println!("{q:>6} {k:>6} {lo:>18.6} {hi:>18.6}");
    }
    println!(
        "\nPaper example (q = 64, K = 200): transient below ≈ 0.00507, recurrent above ≈ 0.00516.\n\
         Without coding the same system is transient for ANY gifted fraction f < 1.\n"
    );

    // Replicate the coded swarm at laptop scale on both sides of the
    // threshold: one coded-grid session over the f axis.
    let (q, k) = (8u64, 4usize);
    let (lo, hi) = coded::theorem15_gift_thresholds(q, k);
    println!("Coded swarm replication batches at q = {q}, K = {k} (λ = 1, U_s = 0, γ = ∞):");
    let fractions: Vec<f64> = [0.3 * lo, 0.8 * lo, 1.5 * hi, 4.0 * hi]
        .iter()
        .map(|f| f.min(1.0))
        .collect();
    let spec = CodedGridSpec::headline(Axis::new("f", fractions.clone()), vec![q], vec![k], 1.0);
    let diagram = Session::builder()
        .config(
            EngineConfig::default()
                .with_replications(4)
                .with_horizon(1_000.0)
                .with_master_seed(5)
                .with_jobs(0),
        )
        .workload(Workload::coded(&spec))
        .build()?
        .run()
        .into_coded()
        .expect("a coded workload");

    println!(
        "{:>12} {:>14} {:>14} {:>12} {:>8}",
        "fraction f", "Theorem 15", "sim majority", "tail slope", "votes"
    );
    for &f in &fractions {
        let cell = diagram.cell(k, q, f).expect("cell evaluated");
        println!(
            "{:>12.4} {:>14} {:>14} {:>12.3} {:>8}",
            f,
            labels::verdict_name(cell.outcome.theory),
            labels::class_name(cell.outcome.majority),
            cell.outcome.tail_slope.mean,
            cell.outcome.votes.total(),
        );
    }
    println!("\n{diagram}");
    println!(
        "{} of {} cells agree with Theorem 15",
        diagram.agreements(),
        diagram.len()
    );
    Ok(())
}
