//! The coded event kernel at engine scale: replicated Theorem 15 verdicts
//! and a gift-fraction phase diagram.
//!
//! The standalone `CodedSwarmSim` (see `network_coding_gift.rs`) simulates
//! one trajectory at a time. This example runs the same Section VIII-B
//! dynamics on the engine's coded kernel (`KernelKind::Coded`): replication
//! batches with deterministic per-replication random streams, majority-vote
//! verdicts checked against the closed-form Theorem 15 thresholds, and a
//! phase-diagram sweep over the gift fraction `f` that localises the
//! transient→stable transition for `GF(2), K = 8`.
//!
//! Run with:
//!
//! ```text
//! cargo run --release --example coded_swarm_kernel
//! ```

use p2p_stability::engine::{Axis, CodedGridSpec, EngineConfig, Session, Workload};
use p2p_stability::swarm::coded::theorem15_gift_thresholds;
use p2p_stability::workload::registry::{self, Registry, ScenarioRunOptions};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. The two built-in coded scenarios, one on each side of the
    //    threshold, replicated on the engine.
    let registry = Registry::builtin();
    let options = ScenarioRunOptions {
        replications: 4,
        jobs: 0,
        seed: 0xC0DE,
        horizon_override: Some(400.0),
        kernel_override: None,
        ..Default::default()
    };
    for name in ["coded-gift-sub", "coded-gift-super"] {
        let spec = registry.get(name).expect("built-in scenario");
        let report = registry::run(spec, &options)?;
        println!("{}", report.render());
    }

    // 2. A gift-fraction sweep across the Theorem 15 window at GF(2), K = 8.
    let (lo, hi) = theorem15_gift_thresholds(2, 8);
    println!("GF(2), K = 8: transient below f = {lo}, recurrent above f = {hi}\n");
    let spec = CodedGridSpec::headline(
        Axis::new("f", vec![0.05, 0.15, 0.25, 0.4, 0.6, 0.8]),
        vec![2],
        vec![8],
        1.0,
    );
    let config = EngineConfig::default()
        .with_replications(4)
        .with_horizon(500.0)
        .with_master_seed(0xC0DE)
        .with_jobs(0);
    let diagram = Session::builder()
        .config(config)
        .workload(Workload::coded(&spec))
        .build()?
        .run()
        .into_coded()
        .expect("a coded workload");
    println!("{diagram}");
    println!(
        "{} cells agree with Theorem 15, {} mismatch",
        diagram.agreements(),
        diagram.mismatches()
    );
    Ok(())
}
