//! The missing-piece syndrome (Fig. 2 of the paper), live.
//!
//! Starts the swarm from a large "one club" — every peer already holds every
//! piece except piece one — under two parameterisations: one outside the
//! Theorem 1 stability region (the club keeps growing at rate ≈ Δ_{F−{1}})
//! and one inside it (the club drains and the system recovers). The verdict
//! for each configuration comes from a replicated engine [`Session`]
//! (majority vote over independent streams); one extra single trajectory
//! per configuration prints the Fig.-2 group decomposition over time.
//!
//! Run with:
//!
//! ```text
//! cargo run --release --example missing_piece_syndrome
//! ```

use p2p_stability::engine::{labels, AgentScenario, EngineConfig, Session, Workload};
use p2p_stability::pieceset::{PieceId, PieceSet};
use p2p_stability::swarm::sim::{AgentConfig, AgentSwarm};
use p2p_stability::swarm::{policy, stability, SwarmParams};
use rand::rngs::StdRng;
use rand::SeedableRng;

const INITIAL_CLUB: usize = 200;
const HORIZON: f64 = 1_000.0;

fn run(label: &str, id: u64, params: SwarmParams) -> Result<(), Box<dyn std::error::Error>> {
    let verdict = stability::classify(&params).verdict;
    let delta = stability::delta(&params, params.full_type().without(PieceId::new(0)))?;
    println!("\n=== {label} ===");
    println!("Theorem 1 verdict: {verdict:?};  Δ_F−{{1}} = {delta:+.3}");

    // Replicated verdict through the engine: the scenario starts from the
    // one club as an initial-population group, and four independent
    // replications vote on the path class.
    let one_club = params.full_type().without(PieceId::new(0));
    let mut scenario = AgentScenario::new(id, label, params.clone());
    scenario.initial = vec![(one_club, INITIAL_CLUB)];
    let outcome = Session::builder()
        .config(
            EngineConfig::default()
                .with_replications(4)
                .with_horizon(HORIZON)
                .with_master_seed(7)
                .with_jobs(0),
        )
        .workload(Workload::agent(vec![scenario]))
        .build()?
        .run()
        .into_agent()
        .expect("an agent workload")
        .remove(0);
    println!(
        "engine majority over {} replications: {} (tail slope {:+.3} ± {:.3} peers/time) — {}",
        outcome.votes.total(),
        labels::class_name(outcome.majority),
        outcome.tail_slope.mean,
        outcome.tail_slope.ci_half_width,
        if outcome.agrees {
            "agrees with Theorem 1"
        } else {
            "DISAGREES with Theorem 1"
        }
    );

    // One raw trajectory for the Fig.-2 decomposition table (the engine
    // aggregates across replications; the group time series needs the
    // simulator's snapshots).
    println!(
        "{:>8} {:>7} {:>9} {:>8} {:>9} {:>7} {:>7}",
        "time", "N", "one-club", "former", "infected", "gifted", "young"
    );
    let sim = AgentSwarm::with_config(
        params,
        AgentConfig {
            snapshot_interval: 50.0,
            ..Default::default()
        },
        Box::new(policy::RandomUseful),
    )?;
    let mut rng = StdRng::seed_from_u64(7);
    let result = sim.run_from_one_club(INITIAL_CLUB, HORIZON, &mut rng);
    for snap in result.snapshots.iter().step_by(2) {
        println!(
            "{:>8.0} {:>7} {:>9} {:>8} {:>9} {:>7} {:>7}",
            snap.time,
            snap.total_peers,
            snap.groups.one_club,
            snap.groups.former_one_club,
            snap.groups.infected,
            snap.groups.gifted,
            snap.groups.normal_young,
        );
    }
    let growth = result.one_club_path().trend(0.5).slope;
    println!("measured one-club growth rate: {growth:+.3} per unit time (theory: ≈ Δ_F−{{1}} when positive)");
    Ok(())
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // Outside the stability region: a weak seed cannot push piece one into a
    // big club faster than fresh peers join it.
    let transient = SwarmParams::builder(3)
        .seed_rate(0.2)
        .contact_rate(1.0)
        .seed_departure_rate(4.0)
        .fresh_arrivals(2.5)
        .arrival(PieceSet::singleton(PieceId::new(0)), 0.1)
        .build()?;
    run(
        "missing-piece syndrome (transient parameters)",
        0,
        transient,
    )?;

    // Inside the region: the same shape with a stronger seed and longer
    // peer-seed dwell times; the one club drains.
    let stable = SwarmParams::builder(3)
        .seed_rate(2.5)
        .contact_rate(1.0)
        .seed_departure_rate(1.25)
        .fresh_arrivals(2.5)
        .arrival(PieceSet::singleton(PieceId::new(0)), 0.1)
        .build()?;
    run(
        "recovery from the same initial club (stable parameters)",
        1,
        stable,
    )?;
    Ok(())
}
