//! The missing-piece syndrome (Fig. 2 of the paper), live.
//!
//! Starts the swarm from a large "one club" — every peer already holds every
//! piece except piece one — under two parameterisations: one outside the
//! Theorem 1 stability region (the club keeps growing at rate ≈ Δ_{F−{1}})
//! and one inside it (the club drains and the system recovers). Prints the
//! Fig.-2 group decomposition over time for both.
//!
//! Run with:
//!
//! ```text
//! cargo run --release --example missing_piece_syndrome
//! ```

use p2p_stability::pieceset::{PieceId, PieceSet};
use p2p_stability::swarm::sim::{AgentConfig, AgentSwarm};
use p2p_stability::swarm::{policy, stability, SwarmParams};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn run(label: &str, params: SwarmParams) -> Result<(), Box<dyn std::error::Error>> {
    let verdict = stability::classify(&params).verdict;
    let delta = stability::delta(&params, params.full_type().without(PieceId::new(0)))?;
    println!("\n=== {label} ===");
    println!("Theorem 1 verdict: {verdict:?};  Δ_F−{{1}} = {delta:+.3}");
    println!(
        "{:>8} {:>7} {:>9} {:>8} {:>9} {:>7} {:>7}",
        "time", "N", "one-club", "former", "infected", "gifted", "young"
    );

    let sim = AgentSwarm::with_config(
        params,
        AgentConfig {
            snapshot_interval: 50.0,
            ..Default::default()
        },
        Box::new(policy::RandomUseful),
    )?;
    let mut rng = StdRng::seed_from_u64(7);
    let result = sim.run_from_one_club(200, 1_000.0, &mut rng);
    for snap in result.snapshots.iter().step_by(2) {
        println!(
            "{:>8.0} {:>7} {:>9} {:>8} {:>9} {:>7} {:>7}",
            snap.time,
            snap.total_peers,
            snap.groups.one_club,
            snap.groups.former_one_club,
            snap.groups.infected,
            snap.groups.gifted,
            snap.groups.normal_young,
        );
    }
    let growth = result.one_club_path().trend(0.5).slope;
    println!("measured one-club growth rate: {growth:+.3} per unit time (theory: ≈ Δ_F−{{1}} when positive)");
    Ok(())
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // Outside the stability region: a weak seed cannot push piece one into a
    // big club faster than fresh peers join it.
    let transient = SwarmParams::builder(3)
        .seed_rate(0.2)
        .contact_rate(1.0)
        .seed_departure_rate(4.0)
        .fresh_arrivals(2.5)
        .arrival(PieceSet::singleton(PieceId::new(0)), 0.1)
        .build()?;
    run("missing-piece syndrome (transient parameters)", transient)?;

    // Inside the region: the same shape with a stronger seed and longer
    // peer-seed dwell times; the one club drains.
    let stable = SwarmParams::builder(3)
        .seed_rate(2.5)
        .contact_rate(1.0)
        .seed_departure_rate(1.25)
        .fresh_arrivals(2.5)
        .arrival(PieceSet::singleton(PieceId::new(0)), 0.1)
        .build()?;
    run(
        "recovery from the same initial club (stable parameters)",
        stable,
    )?;
    Ok(())
}
