//! Quickstart: build a swarm model, ask Theorem 1 whether it is stable, and
//! confirm the answer with replicated simulations of both the exact CTMC
//! and the peer-level simulator — all through the engine's unified
//! [`Session`] API.
//!
//! Run with:
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use p2p_stability::engine::{AgentScenario, EngineConfig, Scenario, Session, Workload};
use p2p_stability::swarm::{stability, SwarmParams};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A 4-piece file, a fixed seed uploading at rate 1, peers contacting at
    // rate 1, peer seeds dwelling for 1/γ = 0.5 on average, and fresh peers
    // arriving at rate 1.2.
    let params = SwarmParams::builder(4)
        .seed_rate(1.0)
        .contact_rate(1.0)
        .seed_departure_rate(2.0)
        .fresh_arrivals(1.2)
        .build()?;

    // 1. What does Theorem 1 say?
    let report = stability::classify(&params);
    println!("Theorem 1 verdict        : {:?}", report.verdict);
    println!("per-piece thresholds     : {:?}", report.piece_thresholds);
    println!("total arrival rate λ     : {}", report.total_arrival_rate);
    println!(
        "critical dwell rate γ*   : {:.3} (γ ≤ µ always suffices — the 'one extra piece' corollary)",
        stability::critical_departure_rate(&params)
    );

    // 2. Replicate the exact type-count CTMC on the engine: 4 independent
    //    replications, majority vote, deterministic at any worker count.
    let config = EngineConfig::default()
        .with_replications(4)
        .with_horizon(2_000.0)
        .with_master_seed(1)
        .with_jobs(0);
    let ctmc = Session::builder()
        .config(config)
        .workload(Workload::ctmc(vec![Scenario::new(
            0,
            "quickstart",
            params.clone(),
        )]))
        .build()?
        .run()
        .into_ctmc()
        .expect("a CTMC workload")
        .remove(0);
    println!(
        "\nCTMC replication batch   : majority {:?} (votes {:?})",
        ctmc.majority, ctmc.votes
    );
    println!(
        "  tail growth rate       : {:+.4} ± {:.4} peers per unit time",
        ctmc.tail_slope.mean, ctmc.tail_slope.ci_half_width
    );
    println!(
        "  tail average population: {:.1} ± {:.1}",
        ctmc.tail_average.mean, ctmc.tail_average.ci_half_width
    );
    println!(
        "  agrees with Theorem 1  : {} (agreement {:.0}%)",
        ctmc.agrees,
        100.0 * ctmc.agreement
    );

    // 3. The peer-level (agent-based) simulator through the same entry
    //    point: swap the workload, keep everything else.
    let agent = Session::builder()
        .config(config.with_master_seed(2))
        .workload(Workload::agent(vec![AgentScenario::new(
            0,
            "quickstart-agent",
            params,
        )]))
        .build()?
        .run()
        .into_agent()
        .expect("an agent workload")
        .remove(0);
    println!(
        "\nAgent-based replication  : majority {:?} (votes {:?})",
        agent.majority, agent.votes
    );
    println!(
        "  tail average population: {:.1} ± {:.1}",
        agent.tail_average.mean, agent.tail_average.ci_half_width
    );
    println!(
        "  mean events/replication: {:.0} (truncated replications: {})",
        agent.mean_events, agent.truncated_replications
    );

    Ok(())
}
