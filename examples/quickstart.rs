//! Quickstart: build a swarm model, ask Theorem 1 whether it is stable, and
//! confirm the answer by simulating the exact CTMC and the peer-level
//! simulator.
//!
//! Run with:
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use p2p_stability::swarm::sim::AgentSwarm;
use p2p_stability::swarm::{stability, SwarmModel, SwarmParams};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A 4-piece file, a fixed seed uploading at rate 1, peers contacting at
    // rate 1, peer seeds dwelling for 1/γ = 0.5 on average, and fresh peers
    // arriving at rate 1.2.
    let params = SwarmParams::builder(4)
        .seed_rate(1.0)
        .contact_rate(1.0)
        .seed_departure_rate(2.0)
        .fresh_arrivals(1.2)
        .build()?;

    // 1. What does Theorem 1 say?
    let report = stability::classify(&params);
    println!("Theorem 1 verdict        : {:?}", report.verdict);
    println!("per-piece thresholds     : {:?}", report.piece_thresholds);
    println!("total arrival rate λ     : {}", report.total_arrival_rate);
    println!(
        "critical dwell rate γ*   : {:.3} (γ ≤ µ always suffices — the 'one extra piece' corollary)",
        stability::critical_departure_rate(&params)
    );

    // 2. Simulate the exact type-count CTMC.
    let model = SwarmModel::new(params.clone());
    let mut rng = StdRng::seed_from_u64(1);
    let verdict = model.simulate_and_classify(model.empty_state(), 2_000.0, &mut rng);
    println!("\nCTMC simulation          : {:?}", verdict.class);
    println!(
        "  tail growth rate       : {:+.4} peers per unit time",
        verdict.tail_slope
    );
    println!("  tail average population: {:.1}", verdict.tail_average);

    // 3. Simulate the peer-level (agent-based) engine and look at sojourns.
    let sim = AgentSwarm::new(params)?;
    let mut rng = StdRng::seed_from_u64(2);
    let result = sim.run(&[], 2_000.0, &mut rng);
    let last = result.final_snapshot();
    println!(
        "\nAgent-based simulation   : {} peers at t = {:.0}",
        last.total_peers, last.time
    );
    println!("  departures             : {}", result.sojourns.departures);
    println!(
        "  mean sojourn time      : {:.2}",
        result.sojourns.mean_sojourn()
    );
    println!(
        "  contact success rate   : {:.1}%",
        100.0 * result.contact_success_fraction()
    );

    Ok(())
}
