//! Integration tests: every experiment harness (E1–E12) runs end to end at a
//! reduced budget, and the headline qualitative claims of the paper hold in
//! the generated reports.

use p2p_stability::swarm::coded;
use p2p_stability::workload::experiments::{self, ExperimentConfig};

fn tiny() -> ExperimentConfig {
    ExperimentConfig {
        horizon: 200.0,
        seed: 2_024,
        threads: 2,
        replications: 1,
        progress: false,
    }
}

#[test]
fn all_experiments_produce_reports() {
    let reports = experiments::run_all(&tiny());
    assert_eq!(reports.len(), 12);
    let ids: Vec<&str> = reports.iter().map(|r| r.id.as_str()).collect();
    assert_eq!(
        ids,
        vec!["E1", "E2", "E3", "E4", "E5", "E6", "E7", "E8", "E9", "E10", "E11", "E12"]
    );
    for report in &reports {
        assert!(!report.tables.is_empty(), "{} has tables", report.id);
        let rendered = report.render();
        assert!(rendered.contains(&report.id));
        assert!(rendered.len() > 100, "{} report is non-trivial", report.id);
    }
}

#[test]
fn e1_reports_the_paper_threshold() {
    let report = experiments::example1(&tiny());
    assert!(report
        .notes
        .iter()
        .any(|n| n.contains("U_s/(1−µ/γ)") && n.contains('2')));
    // Six load points plus the slow-departure row.
    assert_eq!(report.tables[0].len(), 6);
    assert_eq!(report.tables[1].len(), 1);
}

#[test]
fn e8_reproduces_the_q64_k200_numbers() {
    // The closed-form thresholds the paper quotes for its headline example.
    let (lo, hi) = coded::theorem15_gift_thresholds(64, 200);
    assert!((lo - 1.0159 / 200.0).abs() < 2e-4, "lo = {lo}");
    assert!((hi - 1.0321 / 200.0).abs() < 2e-4, "hi = {hi}");
    let report = experiments::network_coding(&tiny());
    let rendered = report.render();
    assert!(rendered.contains("64"));
    assert!(rendered.contains("200"));
    assert!(
        rendered.contains("transient (any f < 1)"),
        "uncoded contrast present"
    );
}

#[test]
fn e11_lyapunov_drift_signs_match_the_region() {
    let report = experiments::lyapunov_drift(&tiny());
    // Stable table: every one-club drift negative. Transient table: the
    // largest one-club state has positive drift.
    let stable_table = &report.tables[0];
    for row in stable_table.rows() {
        if row[0].starts_with("one-club") || row[0].starts_with("seeds") {
            let drift: f64 = row[2]
                .replace("e", "E")
                .parse()
                .unwrap_or_else(|_| row[2].parse().unwrap());
            assert!(
                drift < 0.0,
                "stable config drift {} in row {:?}",
                drift,
                row
            );
        }
    }
    let transient_table = &report.tables[1];
    let last_one_club = transient_table
        .rows()
        .iter()
        .rfind(|r| r[0].starts_with("one-club"))
        .expect("one-club rows present");
    let drift: f64 = last_one_club[2].replace("e", "E").parse().unwrap();
    assert!(drift > 0.0, "transient config one-club drift {drift}");
}

#[test]
fn e9_top_layer_drift_vanishes_for_large_populations() {
    let report = experiments::borderline(&tiny());
    let drift_table = &report.tables[0];
    let large_rows: Vec<_> = drift_table
        .rows()
        .iter()
        .filter(|r| r[0].parse::<u64>().unwrap_or(0) >= 100)
        .collect();
    assert!(!large_rows.is_empty());
    for row in large_rows {
        let drift: f64 = row[1].parse().unwrap_or(f64::NAN);
        assert!(drift.abs() < 1e-6, "drift {drift}");
    }
}

#[test]
fn e7_policies_all_appear_in_the_table() {
    let report = experiments::policy_insensitivity(&tiny());
    let rendered = report.render();
    for policy in [
        "random-useful",
        "rarest-first",
        "sequential",
        "most-common-first",
    ] {
        assert!(rendered.contains(policy), "missing {policy}");
    }
}
