//! Integration tests: the type-count CTMC simulator and the peer-level
//! agent-based simulator implement the same stochastic model, so on identical
//! parameters they must agree on the qualitative behaviour and, for stable
//! points, on the time-average population.

use p2p_stability::markov::{PathClass, PathClassifier};
use p2p_stability::pieceset::PieceSet;
use p2p_stability::swarm::sim::{AgentConfig, AgentSwarm};
use p2p_stability::swarm::{policy, SwarmModel, SwarmParams};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn agent_config() -> AgentConfig {
    AgentConfig {
        snapshot_interval: 2.0,
        ..Default::default()
    }
}

fn ctmc_average(params: &SwarmParams, horizon: f64, seed: u64) -> f64 {
    let model = SwarmModel::new(params.clone());
    let mut rng = StdRng::seed_from_u64(seed);
    let path = model.simulate_peer_count(model.empty_state(), horizon, &mut rng);
    path.time_average_over(horizon * 0.3, horizon)
}

fn agent_average(params: &SwarmParams, horizon: f64, seed: u64) -> f64 {
    let sim = AgentSwarm::with_config(
        params.clone(),
        agent_config(),
        Box::new(policy::RandomUseful),
    )
    .unwrap();
    let mut rng = StdRng::seed_from_u64(seed);
    let result = sim.run(&[], horizon, &mut rng);
    result
        .peer_count_path()
        .time_average_over(horizon * 0.3, horizon)
}

#[test]
fn stationary_averages_agree_on_a_stable_point() {
    // Example-1-like stable system.
    let params = SwarmParams::builder(2)
        .seed_rate(1.5)
        .contact_rate(1.0)
        .seed_departure_rate(2.0)
        .fresh_arrivals(1.0)
        .build()
        .unwrap();
    let horizon = 4_000.0;
    let a = ctmc_average(&params, horizon, 1);
    let b = agent_average(&params, horizon, 2);
    let rel = (a - b).abs() / a.max(b).max(1.0);
    assert!(rel < 0.2, "CTMC average {a:.2} vs agent average {b:.2}");
}

#[test]
fn both_simulators_classify_a_transient_point_as_growing() {
    let params = SwarmParams::builder(2)
        .seed_rate(0.2)
        .contact_rate(1.0)
        .seed_departure_rate(4.0)
        .fresh_arrivals(3.0)
        .build()
        .unwrap();
    let horizon = 1_200.0;
    let classifier = PathClassifier::new(params.total_arrival_rate(), 30.0);

    let model = SwarmModel::new(params.clone());
    let mut rng = StdRng::seed_from_u64(3);
    let ctmc_path = model.simulate_peer_count(model.empty_state(), horizon, &mut rng);
    assert_eq!(classifier.classify(&ctmc_path).class, PathClass::Growing);

    let sim =
        AgentSwarm::with_config(params, agent_config(), Box::new(policy::RandomUseful)).unwrap();
    let mut rng = StdRng::seed_from_u64(4);
    let agent_path = sim.run(&[], horizon, &mut rng).peer_count_path();
    assert_eq!(classifier.classify(&agent_path).class, PathClass::Growing);

    // And the growth rates agree to within simulation noise.
    let s1 = ctmc_path.trend(0.5).slope;
    let s2 = agent_path.trend(0.5).slope;
    assert!(
        (s1 - s2).abs() < 0.5 * s1.max(s2),
        "slopes {s1:.2} vs {s2:.2}"
    );
}

#[test]
fn growth_rates_agree_from_a_one_club_start() {
    // Start both engines from the same 100-peer one club in a transient
    // configuration with gifted arrivals and compare one-club growth rates.
    let params = SwarmParams::builder(3)
        .seed_rate(0.2)
        .contact_rate(1.0)
        .seed_departure_rate(4.0)
        .fresh_arrivals(2.5)
        .arrival(
            PieceSet::singleton(p2p_stability::pieceset::PieceId::new(0)),
            0.1,
        )
        .build()
        .unwrap();
    let horizon = 800.0;
    let watch = p2p_stability::pieceset::PieceId::new(0);

    let model = SwarmModel::new(params.clone());
    let mut rng = StdRng::seed_from_u64(5);
    let ctmc_path = model.simulate_peer_count(model.one_club_state(watch, 100), horizon, &mut rng);

    let sim =
        AgentSwarm::with_config(params, agent_config(), Box::new(policy::RandomUseful)).unwrap();
    let mut rng = StdRng::seed_from_u64(6);
    let agent_path = sim
        .run_from_one_club(100, horizon, &mut rng)
        .peer_count_path();

    let s1 = ctmc_path.trend(0.5).slope;
    let s2 = agent_path.trend(0.5).slope;
    assert!(s1 > 0.3 && s2 > 0.3, "both engines grow: {s1:.2}, {s2:.2}");
    assert!(
        (s1 - s2).abs() < 0.6 * s1.max(s2),
        "slopes {s1:.2} vs {s2:.2}"
    );
}

#[test]
fn peer_seed_population_behaves_like_mm_infinity() {
    // In a stable, well-seeded system the peer-seed pool is an M/M/∞-like
    // population: its time-average should be close to (completion rate)/γ.
    // We check the weaker, structural fact that the agent simulator's seed
    // count stays bounded and positive on average.
    let params = SwarmParams::builder(2)
        .seed_rate(2.0)
        .contact_rate(1.0)
        .seed_departure_rate(1.0)
        .fresh_arrivals(1.0)
        .build()
        .unwrap();
    let sim =
        AgentSwarm::with_config(params, agent_config(), Box::new(policy::RandomUseful)).unwrap();
    let mut rng = StdRng::seed_from_u64(7);
    let result = sim.run(&[], 3_000.0, &mut rng);
    let tail: Vec<_> = result.snapshots.iter().filter(|s| s.time > 500.0).collect();
    let mean_seeds: f64 = tail.iter().map(|s| s.peer_seeds as f64).sum::<f64>() / tail.len() as f64;
    // Completions happen at rate ≈ λ0 = 1 in steady state, so E[seeds] ≈ λ0/γ = 1.
    assert!(
        mean_seeds > 0.3 && mean_seeds < 3.0,
        "mean peer seeds {mean_seeds:.2}"
    );
}
