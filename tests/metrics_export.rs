//! Facade-level closure of the telemetry loop: a scenario streamed through
//! the engine's `MetricsSink` must produce an NDJSON export that the
//! workload crate's strict validator accepts — and metering must not change
//! the scenario report. The engine cannot depend on the workload crate, so
//! this producer/consumer contract can only be tested here.

use p2p_stability::engine::{MetricsSink, NullSink};
use p2p_stability::workload::ndjson;
use p2p_stability::workload::registry::{self, Registry, ScenarioRunOptions};

fn options(jobs: usize, metrics: bool) -> ScenarioRunOptions {
    ScenarioRunOptions {
        replications: 6,
        jobs,
        seed: 0x0B5E,
        metrics,
        ..Default::default()
    }
}

#[test]
fn exported_ndjson_validates_and_metering_leaves_the_report_alone() {
    let registry = Registry::builtin();
    let spec = registry.resolve("example1-stable").expect("a builtin");

    let baseline = registry::run(&spec, &options(1, false)).expect("bare run");

    for jobs in [1usize, 4] {
        let mut sink = MetricsSink::new(NullSink, Vec::new()).quiet();
        let metered =
            registry::run_with_sink(&spec, &options(jobs, true), &mut sink).expect("metered run");
        assert_eq!(
            baseline.render(),
            metered.render(),
            "metering or jobs = {jobs} changed the scenario report"
        );
        let (_, ndjson_bytes) = sink.into_parts();
        let text = String::from_utf8(ndjson_bytes).expect("utf-8 NDJSON");
        let summary = ndjson::validate(&text).expect("the export must validate");
        assert_eq!(summary.replications, 6);
        assert_eq!(summary.metered, 6);
        assert_eq!(summary.scenarios, 1);
        // The validator's event total must match the engine's aggregate.
        let expected_events = (metered.outcome.mean_events * 6.0).round() as u64;
        assert_eq!(summary.total_events, expected_events);
    }
}

#[test]
fn coded_scenario_exports_the_rref_breakdown() {
    let registry = Registry::builtin();
    let spec = registry.resolve("coded-gift-super").expect("a builtin");
    let mut sink = MetricsSink::new(NullSink, Vec::new()).quiet();
    registry::run_with_sink(&spec, &options(2, true), &mut sink).expect("coded run");
    let (_, ndjson_bytes) = sink.into_parts();
    let text = String::from_utf8(ndjson_bytes).expect("utf-8 NDJSON");
    ndjson::validate(&text).expect("the coded export must validate");
    // The coded kernel's RREF hot path must actually have been metered.
    let line = text.lines().nth(1).expect("a replication line");
    assert!(line.contains("\"rref_absorbs\":"));
    assert!(!line.contains("\"rref_absorbs\":0,"));
}
