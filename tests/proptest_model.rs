//! Property-based integration tests on the model invariants, spanning the
//! `pieceset`, `markov`, and `swarm` crates.

use p2p_stability::markov::Ctmc;
use p2p_stability::pieceset::{PieceId, PieceSet, TypeSpace};
use p2p_stability::swarm::{stability, SwarmModel, SwarmParams, SwarmState};
use proptest::prelude::*;

/// Random but valid parameters for a small file.
fn arb_params() -> impl Strategy<Value = SwarmParams> {
    (
        1usize..=4,                                      // K
        0.0f64..3.0,                                     // U_s
        0.1f64..3.0,                                     // µ
        prop_oneof![Just(f64::INFINITY), (0.2f64..5.0)], // γ
        0.05f64..4.0,                                    // λ_∅
        proptest::collection::vec(0.0f64..1.5, 4),       // per-piece gifted rates
    )
        .prop_map(|(k, us, mu, gamma, lambda0, gifted)| {
            let mut b = SwarmParams::builder(k)
                .seed_rate(us)
                .contact_rate(mu)
                .fresh_arrivals(lambda0);
            if gamma.is_finite() {
                b = b.seed_departure_rate(gamma);
            }
            for (i, rate) in gifted.iter().take(k).enumerate() {
                let set = PieceSet::singleton(PieceId::new(i));
                // With K = 1 a single-piece arrival is a full collection,
                // which the γ = ∞ convention forbids (λ_F = 0).
                let forbidden = gamma.is_infinite() && set == PieceSet::full(k);
                if *rate > 0.0 && !forbidden {
                    b = b.arrival(set, *rate);
                }
            }
            b.build().expect("constructed parameters are valid")
        })
}

/// A random small state for the given parameters.
fn arb_state(k: usize) -> impl Strategy<Value = Vec<u32>> {
    proptest::collection::vec(0u32..6, 1 << k)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn generator_rows_are_well_formed(params in arb_params(), raw in arb_state(4), seed in any::<u64>()) {
        let _ = seed;
        let model = SwarmModel::new(params.clone());
        let space = TypeSpace::new(params.num_pieces()).unwrap();
        let mut state = SwarmState::empty(&space);
        for (bits, count) in raw.iter().enumerate().take(space.num_types()) {
            let c = PieceSet::from_bits(bits as u64);
            // γ = ∞ states never hold full-collection peers.
            if params.departs_immediately() && c == params.full_type() {
                continue;
            }
            state.set_count(c, *count);
        }
        let n = state.total_peers();
        let mut out = Vec::new();
        model.transitions(&state, &mut out);

        let mut total_rate = 0.0;
        for (next, rate) in &out {
            prop_assert!(rate.is_finite() && *rate > 0.0, "rate {rate}");
            let diff = next.total_peers() as i64 - n as i64;
            prop_assert!((-1..=1).contains(&diff), "population jumped by {diff}");
            total_rate += rate;
        }
        // Total outgoing rate is bounded by arrivals + seed + peer uploads + departures.
        let gamma_term = if params.departs_immediately() {
            params.contact_rate() * n as f64 + params.seed_rate()
        } else {
            params.seed_departure_rate() * f64::from(state.count(params.full_type()))
        };
        let bound = params.total_arrival_rate()
            + params.seed_rate()
            + params.contact_rate() * n as f64
            + gamma_term
            + 1e-9;
        prop_assert!(total_rate <= bound, "total rate {total_rate} exceeds bound {bound}");
    }

    #[test]
    fn threshold_and_delta_formulations_agree(params in arb_params()) {
        // eq. (3) for every piece  ⇔  Δ_{F−{k}} < 0 for every piece (µ < γ only).
        if params.mu_over_gamma() >= 1.0 {
            return Ok(());
        }
        let lambda_total = params.total_arrival_rate();
        for i in 0..params.num_pieces() {
            let piece = PieceId::new(i);
            let threshold = stability::piece_threshold(&params, piece).unwrap();
            let delta = stability::delta(&params, params.full_type().without(piece)).unwrap();
            // Strict comparisons must agree except exactly on the boundary.
            if (lambda_total - threshold).abs() > 1e-9 * threshold.max(1.0) {
                prop_assert_eq!(lambda_total < threshold, delta < 0.0,
                    "piece {}: λ_total = {}, threshold = {}, Δ = {}", i, lambda_total, threshold, delta);
            }
        }
    }

    #[test]
    fn classification_is_monotone_in_the_seed_rate(params in arb_params()) {
        // Adding seed capacity can only help: if stable at U_s, still stable at 2 U_s + 1.
        let verdict = stability::classify(&params).verdict;
        if verdict.is_stable() {
            let boosted = SwarmParams::builder(params.num_pieces())
                .seed_rate(params.seed_rate() * 2.0 + 1.0)
                .contact_rate(params.contact_rate())
                .seed_departure_rate(params.seed_departure_rate())
                .fresh_arrivals(params.arrival_rate(PieceSet::empty()));
            let boosted = params
                .arrivals()
                .filter(|(c, _)| !c.is_empty())
                .fold(boosted, |b, (c, r)| b.arrival(c, r))
                .build()
                .unwrap();
            prop_assert!(stability::classify(&boosted).verdict.is_stable());
        }
    }

    #[test]
    fn critical_departure_rate_is_consistent(params in arb_params()) {
        let gamma_crit = stability::critical_departure_rate(&params);
        prop_assert!(gamma_crit >= params.contact_rate() || !params.all_pieces_can_enter());
        if gamma_crit.is_finite() && params.all_pieces_can_enter() {
            // Just below the critical rate the system is stable.
            let stable = SwarmParams::builder(params.num_pieces())
                .seed_rate(params.seed_rate())
                .contact_rate(params.contact_rate())
                .seed_departure_rate(gamma_crit * 0.95)
                .fresh_arrivals(params.arrival_rate(PieceSet::empty()).max(0.0));
            let stable = params
                .arrivals()
                .filter(|(c, _)| !c.is_empty())
                .fold(stable, |b, (c, r)| b.arrival(c, r))
                .build();
            if let Ok(stable) = stable {
                prop_assert!(stability::classify(&stable).verdict.is_stable(),
                    "γ* = {}, params: {:?}", gamma_crit, stable);
            }
        }
    }

    #[test]
    fn simulation_preserves_population_accounting(params in arb_params(), seed in any::<u64>()) {
        use p2p_stability::swarm::sim::{AgentConfig, AgentSwarm};
        use rand::SeedableRng;
        let sim = AgentSwarm::with_config(
            params.clone(),
            AgentConfig { snapshot_interval: 10.0, ..Default::default() },
            Box::new(p2p_stability::swarm::policy::RandomUseful),
        ).unwrap();
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let result = sim.run(&[], 60.0, &mut rng);
        for snap in &result.snapshots {
            // The five Fig.-2 groups partition the population.
            prop_assert_eq!(snap.groups.total(), snap.total_peers);
            // Nobody holds more copies of the watch piece than there are peers.
            prop_assert!(snap.watch_piece_copies <= snap.total_peers);
            // With γ = ∞ no peer seeds remain in the system.
            if params.departs_immediately() {
                prop_assert_eq!(snap.peer_seeds, 0);
            }
        }
    }
}
