//! Integration tests: the three worked examples of Section IV, cross-checking
//! the Theorem 1 classification against simulation of the exact CTMC.

use p2p_stability::engine::{EngineConfig, Scenario, Session, Workload};
use p2p_stability::markov::PathClass;
use p2p_stability::swarm::{stability, StabilityVerdict, SwarmModel};
use p2p_stability::workload::scenario;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Majority-vote classification over a small replication batch — a single
/// finite run near the boundary is one exponential draw away from an
/// `Indeterminate` verdict, which is exactly what the engine exists to
/// average out.
fn simulate_class(
    params: &p2p_stability::swarm::SwarmParams,
    horizon: f64,
    seed: u64,
) -> PathClass {
    let scenarios = vec![Scenario::new(0, "integration-point", params.clone())];
    let config = EngineConfig::default()
        .with_replications(5)
        .with_horizon(horizon)
        .with_master_seed(seed)
        .with_jobs(0);
    Session::builder()
        .config(config)
        .workload(Workload::ctmc(scenarios))
        .build()
        .expect("valid session")
        .run()
        .into_ctmc()
        .expect("ctmc workload")
        .remove(0)
        .majority
}

#[test]
fn example1_boundary_is_where_the_paper_says() {
    // Threshold λ0* = U_s / (1 − µ/γ) = 2 for U_s = 1, µ = 1, γ = 2.
    let stable = scenario::example1(1.2, 1.0, 1.0, 2.0).unwrap();
    let unstable = scenario::example1(3.2, 1.0, 1.0, 2.0).unwrap();
    assert_eq!(
        stability::classify(&stable).verdict,
        StabilityVerdict::PositiveRecurrent
    );
    assert_eq!(
        stability::classify(&unstable).verdict,
        StabilityVerdict::Transient
    );
    assert_eq!(simulate_class(&stable, 2_500.0, 1), PathClass::Stable);
    assert_eq!(simulate_class(&unstable, 1_500.0, 2), PathClass::Growing);
}

#[test]
fn example1_growth_rate_matches_first_order_prediction() {
    // Well outside the region the population grows at ≈ λ0 − U_s/(1−µ/γ).
    let params = scenario::example1(4.0, 1.0, 1.0, 2.0).unwrap();
    let model = SwarmModel::new(params);
    let mut rng = StdRng::seed_from_u64(3);
    let path = model.simulate_peer_count(model.empty_state(), 2_000.0, &mut rng);
    let slope = path.trend(0.5).slope;
    assert!((slope - 2.0).abs() < 0.6, "measured {slope}, predicted 2.0");
}

#[test]
fn example2_two_to_one_rule() {
    // Stable wedge: λ12 < 2 λ34 and λ34 < 2 λ12.
    let stable = scenario::example2(1.0, 0.8, 1.0).unwrap();
    let unstable = scenario::example2(3.0, 1.0, 1.0).unwrap();
    assert!(stability::classify(&stable).verdict.is_stable());
    assert_eq!(
        stability::classify(&unstable).verdict,
        StabilityVerdict::Transient
    );
    assert_eq!(simulate_class(&stable, 2_500.0, 4), PathClass::Stable);
    assert_eq!(simulate_class(&unstable, 1_500.0, 5), PathClass::Growing);
}

#[test]
fn example3_factor_rule_with_peer_seeds() {
    let mu = 1.0;
    let gamma = 2.0;
    // factor = (2 + µ/γ)/(1 − µ/γ) = 5: λ1 + λ2 must stay below 5 λ3.
    let stable = scenario::example3([1.0, 1.0, 0.5], mu, gamma).unwrap();
    let unstable = scenario::example3([2.0, 2.0, 0.2], mu, 4.0).unwrap();
    assert!(stability::classify(&stable).verdict.is_stable());
    assert_eq!(
        stability::classify(&unstable).verdict,
        StabilityVerdict::Transient
    );
    assert_eq!(simulate_class(&stable, 2_500.0, 6), PathClass::Stable);
    assert_eq!(simulate_class(&unstable, 1_500.0, 7), PathClass::Growing);
}

#[test]
fn example3_gamma_infinite_asymmetric_arrivals_grow() {
    // With immediate departures, unequal single-piece arrival rates are
    // transient (the paper's observation before Section VIII-D).
    let params = scenario::example3([1.5, 1.5, 0.3], 1.0, f64::INFINITY).unwrap();
    assert_eq!(
        stability::classify(&params).verdict,
        StabilityVerdict::Transient
    );
    assert_eq!(simulate_class(&params, 1_500.0, 8), PathClass::Growing);
}

#[test]
fn one_extra_piece_corollary_end_to_end() {
    // γ = 0.9 µ keeps a heavily loaded swarm stable; γ = 3 µ does not.
    let stable = scenario::one_extra_piece(3, 15.0, 0.9).unwrap();
    let unstable = scenario::one_extra_piece(3, 15.0, 3.0).unwrap();
    assert!(stability::classify(&stable).verdict.is_stable());
    assert_eq!(
        stability::classify(&unstable).verdict,
        StabilityVerdict::Transient
    );
    assert_eq!(simulate_class(&stable, 1_200.0, 9), PathClass::Stable);
    assert_eq!(simulate_class(&unstable, 1_200.0, 10), PathClass::Growing);
}

#[test]
fn critical_parameters_are_consistent_with_classification() {
    let params = scenario::example1(1.5, 1.0, 1.0, 2.0).unwrap();
    // Scale arrivals to the critical point and check both sides.
    let scale = stability::critical_arrival_scale(&params);
    assert!(scale.is_finite() && scale > 1.0);
    let below = scenario::example1(1.5 * scale * 0.9, 1.0, 1.0, 2.0).unwrap();
    let above = scenario::example1(1.5 * scale * 1.1, 1.0, 1.0, 2.0).unwrap();
    assert!(stability::classify(&below).verdict.is_stable());
    assert_eq!(
        stability::classify(&above).verdict,
        StabilityVerdict::Transient
    );
    // Seed-rate solver agrees too.
    let needed =
        stability::critical_seed_rate(&scenario::example1(3.0, 0.0, 1.0, 2.0).unwrap()).unwrap();
    let fixed = scenario::example1(3.0, needed * 1.05, 1.0, 2.0).unwrap();
    assert!(stability::classify(&fixed).verdict.is_stable());
}
