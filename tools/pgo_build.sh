#!/usr/bin/env bash
# Profile-guided release build of the experiment binaries.
#
# Three-phase PGO when a usable `llvm-profdata` is available:
#
#   1. build instrumented (`-Cprofile-generate`) with `-Ctarget-cpu=native`,
#   2. run a training workload that exercises the hot kernels (turbo,
#      sharded turbo, coded-turbo) through the real CLI,
#   3. merge the raw profiles and rebuild with `-Cprofile-use`.
#
# `llvm-profdata` must come from the same LLVM major version as rustc's
# backend or the merge rejects the .profraw files. The probe order is:
#
#   a. the rustup `llvm-tools` component in the toolchain sysroot
#      (always version-matched when installed),
#   b. a PATH `llvm-profdata` whose major version matches rustc's LLVM.
#
# When neither is present — common on minimal containers — the script
# degrades gracefully to a plain `-Ctarget-cpu=native` release build and
# says so. It never installs anything. Either way the final binaries land
# in `target/release/` and the script exits 0, so CI can run it as a
# non-gating step.
#
# Usage: tools/pgo_build.sh [--profile-dir DIR]

set -euo pipefail
cd "$(dirname "$0")/.."

PROFILE_DIR=target/pgo-profiles
if [ "${1:-}" = "--profile-dir" ]; then
    PROFILE_DIR=${2:?--profile-dir needs a value}
fi

NATIVE_FLAGS="-Ctarget-cpu=native"
BINS=(--bin run_experiments --bin bench_report)

rustc_llvm_major() {
    rustc -vV | sed -n 's/^LLVM version: \([0-9]*\).*/\1/p'
}

profdata_llvm_major() {
    "$1" merge --version 2>/dev/null | sed -n 's/.*LLVM version \([0-9]*\).*/\1/p' | head -n1
}

find_profdata() {
    local sysroot host candidate rustc_major tool_major
    sysroot=$(rustc --print sysroot)
    host=$(rustc -vV | sed -n 's/^host: //p')
    rustc_major=$(rustc_llvm_major)

    candidate="$sysroot/lib/rustlib/$host/bin/llvm-profdata"
    if [ -x "$candidate" ]; then
        echo "$candidate"
        return 0
    fi

    candidate=$(command -v llvm-profdata || true)
    if [ -n "$candidate" ]; then
        tool_major=$(profdata_llvm_major "$candidate")
        if [ -n "$tool_major" ] && [ "$tool_major" = "$rustc_major" ]; then
            echo "$candidate"
            return 0
        fi
        echo "note: $candidate is LLVM ${tool_major:-unknown} but rustc uses LLVM $rustc_major; skipping it" >&2
    fi
    return 1
}

# The training workload: short but representative runs of the kernels the
# optimized binaries spend their time in. Seeds are fixed so the profile
# is reproducible.
train() {
    local bin=target/release/run_experiments
    echo "== training: turbo benchmark regime =="
    "$bin" --scenario big-swarm-k32 --kernel turbo \
        --replications 2 --jobs 1 --seed 7 >/dev/null
    echo "== training: sharded turbo =="
    "$bin" --scenario big-swarm-k32 --kernel turbo \
        --shards 8 --sync-window 0.25 \
        --replications 2 --jobs 0 --seed 7 >/dev/null
    echo "== training: coded-turbo =="
    "$bin" --scenario coded-turbo-gift \
        --replications 2 --jobs 1 --seed 7 --horizon 200 >/dev/null
}

if PROFDATA=$(find_profdata); then
    echo "using $PROFDATA"
    rm -rf "$PROFILE_DIR"
    mkdir -p "$PROFILE_DIR"
    ABS_PROFILE_DIR=$(cd "$PROFILE_DIR" && pwd)

    echo "=== phase 1: instrumented build ==="
    RUSTFLAGS="$NATIVE_FLAGS -Cprofile-generate=$ABS_PROFILE_DIR" \
        cargo build --release "${BINS[@]}"

    echo "=== phase 2: training run ==="
    train

    echo "=== phase 3: profile merge + optimized rebuild ==="
    "$PROFDATA" merge -o "$ABS_PROFILE_DIR/merged.profdata" "$ABS_PROFILE_DIR"/*.profraw
    RUSTFLAGS="$NATIVE_FLAGS -Cprofile-use=$ABS_PROFILE_DIR/merged.profdata" \
        cargo build --release "${BINS[@]}"
    echo "PGO build complete: target/release/ (profile: $ABS_PROFILE_DIR/merged.profdata)"
else
    echo "no version-matched llvm-profdata found (install the rustup" >&2
    echo "'llvm-tools' component to enable PGO); falling back to a plain" >&2
    echo "-Ctarget-cpu=native release build" >&2
    RUSTFLAGS="$NATIVE_FLAGS" cargo build --release "${BINS[@]}"
    echo "native (non-PGO) build complete: target/release/"
fi
