//! # p2p-stability
//!
//! A reproduction of *Stability of a Peer-to-Peer Communication System*
//! (Ji Zhu and Bruce Hajek, PODC 2011) as a Rust workspace.
//!
//! This facade crate re-exports the workspace members so downstream users and
//! the runnable examples only need one dependency:
//!
//! * [`pieceset`] — piece-subset types and type-space enumeration,
//! * [`markov`] — the CTMC engine, drift / branching / queueing toolbox,
//! * [`netcoding`] — `GF(q)` arithmetic and subspace types,
//! * [`swarm`] — the paper's model, Theorem 1/14/15 analysis, Lyapunov and
//!   branching machinery, and the two simulators,
//! * [`telemetry`] — the zero-cost instrumentation core: kernel counters,
//!   log₂ histograms, and span timers behind a `Recorder` trait whose no-op
//!   default compiles away,
//! * [`engine`] — the parallel Monte-Carlo replication engine behind one
//!   typed entry point (`engine::Session`): deterministic per-replication
//!   RNG streams, streaming `ReplicationSink` delivery with O(1)-memory
//!   aggregation, phase-diagram grids, CSV/JSON artifact emitters, and the
//!   NDJSON metrics export (`engine::MetricsSink`),
//! * [`workload`] — scenarios, the JSON scenario registry
//!   (`run_experiments --scenario`), sweeps, and the experiment harnesses
//!   E1–E12, running on the engine.
//!
//! See `README.md` for a tour, `DESIGN.md` for the system inventory, and
//! `EXPERIMENTS.md` for the paper-vs-measured record.
//!
//! ```
//! use p2p_stability::swarm::{stability, SwarmParams};
//!
//! let params = SwarmParams::builder(1)
//!     .seed_rate(1.0)
//!     .contact_rate(1.0)
//!     .seed_departure_rate(2.0)
//!     .fresh_arrivals(1.5)
//!     .build()?;
//! assert!(stability::classify(&params).verdict.is_stable());
//! # Ok::<(), p2p_stability::swarm::SwarmError>(())
//! ```

#![deny(missing_docs)]
#![forbid(unsafe_code)]

pub use engine;
pub use markov;
pub use netcoding;
pub use pieceset;
pub use swarm;
pub use telemetry;
pub use workload;
