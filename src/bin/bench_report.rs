//! Emits the canonical machine-readable kernel benchmark report
//! (`BENCH_PR9.json`) so the repository tracks a perf trajectory instead of
//! claiming speedups in prose.
//!
//! ```text
//! cargo run --release --bin bench_report                    # write BENCH_PR9.json
//! cargo run --release --bin bench_report -- --out my.json   # elsewhere
//! cargo run --release --bin bench_report -- --check         # CI mode
//! ```
//!
//! The uncoded workload is the paper's benchmark regime: a `K = 32` swarm
//! with arrivals missing exactly one piece (sustained multi-thousand-peer
//! population, frequent completions → frequent seed departures) under the
//! Section VIII-C retry speed-up `η = 10` — the regime where the parity
//! kernels' rejection loops bite. Every uncoded kernel runs the identical
//! scenario at 10k and 100k initial peers; the turbo kernel additionally
//! runs a 1M-peer horizon to demonstrate that scale completes.
//!
//! The coded workload is the Theorem 15 analogue at the same sizes: GF(2),
//! `K = 32`, half the arrivals gifted with one random coded piece
//! (`f = 0.5 ≫ q²/((q−1)²K)`, firmly stable), hit-and-run peer seeds, and an
//! initial population one dimension short of decoding — so every contact
//! exercises the RREF reduce/absorb hot path. Both coded kernels run it:
//! the reference RREF kernel (`coded`) and the bitsliced lazy-peer kernel
//! (`coded-turbo`), whose dimension-only fast paths are what the
//! `coded_turbo_speedup_vs_coded` ratios track. The coded-turbo kernel
//! additionally runs the 1M-peer horizon (`coded_million_peer`), where the
//! report asserts `dim_fast_path_hits > basis_materializations` — the
//! laziness claim, pinned in the committed numbers.
//!
//! Every measurement executes through the unified `engine::Session` API
//! (one agent scenario, one replication, `--jobs 1`), with the event and
//! transfer counters streamed out of a `ReplicationSink` — so the bench
//! exercises the exact dispatch path production callers use, and wall time
//! is measured around `Session::stream` through a `telemetry::Span`.
//!
//! After the timed (unmetered) repeats, every measurement runs one *metered*
//! pass with the engine's telemetry switched on: the kernel counters it
//! captures are reported in the per-kernel `telemetry` block, and the pass
//! doubles as a determinism assertion — metering must reproduce the exact
//! event and transfer counts of the unmetered runs, and the counter
//! partition must add back up to them.
//!
//! The sharded workload is the intra-replication scaling row: the same
//! `K = 32` one-piece-short regime without the retry speed-up (the sharded
//! driver rejects `η > 1`), measured unsharded and sharded (8 shards,
//! window 0.25) at operating sizes, plus a **10-million-peer** sharded run
//! whose row pins that a swarm of that size *completes* — the aggregate
//! events-per-second figure is whatever the hardware honestly delivers
//! (shard workers use every available core; on a single-core host the
//! sharded rows measure the driver's overhead, not a speedup).
//!
//! `--check` is the CI mode: it runs a reduced size twice per kernel and
//! asserts *event-count determinism* (same seed → identical event and
//! transfer counts; scan ≡ event by draw parity; a sharded run is
//! byte-stable across `--jobs`) plus the telemetry identities above, plus
//! the schema of the committed `BENCH_PR9.json` — never wall time, which
//! CI hardware cannot promise.

use p2p_stability::engine::metrics::counters_json;
use p2p_stability::engine::{
    AgentScenario, EngineConfig, ReplicationRecord, ReplicationSink, ReplicationTelemetry, Session,
    Workload,
};
use p2p_stability::pieceset::{PieceId, PieceSet};
use p2p_stability::swarm::coded::CodedParams;
use p2p_stability::swarm::sim::{AgentConfig, KernelKind};
use p2p_stability::swarm::SwarmParams;
use p2p_stability::telemetry::{Counter, CounterSet, Span};
use std::fmt::Write as _;
use std::process::ExitCode;

const K: usize = 32;
const SEED: u64 = 0xBE7C;
const SCHEMA: &str = "p2p-bench/v5";
const CANONICAL: &str = "BENCH_PR9.json";

/// Required top-level keys of the report — `--check` verifies the committed
/// file still carries each of them, so schema drift fails CI.
const SCHEMA_KEYS: [&str; 14] = [
    "\"schema\"",
    "\"pr\"",
    "\"scenario\"",
    "\"sizes\"",
    "\"kernels\"",
    "\"events_per_sec\"",
    "\"turbo_speedup_vs_event\"",
    "\"million_peer\"",
    "\"coded\"",
    "\"coded_turbo_speedup_vs_coded\"",
    "\"coded_million_peer\"",
    "\"telemetry\"",
    "\"sharded\"",
    "\"ten_million_peer\"",
];

/// The swarm sizes (with their horizons) every kernel is measured at.
const SIZES: [(usize, f64); 2] = [(10_000, 40.0), (100_000, 8.0)];

/// The uncoded benchmark parameter point: arrivals missing exactly one piece
/// keep the swarm at operating size with constant completions; hit-and-run
/// seeds (`γ = 200`, a completing peer departs almost immediately — the
/// selfish-churn regime the missing-piece analysis is about) keep the seed
/// population rare, so departures constantly exercise each kernel's
/// seed-sampling path; `η = 10` exercises the boosted-uploader machinery.
fn bench_params(n: usize) -> SwarmParams {
    let full = PieceSet::full(K);
    let lambda_total = n as f64 / 10.0;
    let mut builder = SwarmParams::builder(K)
        .seed_rate(1.0)
        .contact_rate(0.1)
        .seed_departure_rate(200.0);
    for i in 0..K {
        builder = builder.arrival(full.without(PieceId::new(i)), lambda_total / K as f64);
    }
    builder.build().expect("valid parameters")
}

/// `n` initial peers, each missing one piece (one group per piece, sizes
/// balanced), so the swarm starts at operating size. Under the coded kernel
/// the same collections map to dimension-31 subspaces: one dimension short
/// of decoding.
fn initial_groups(n: usize) -> Vec<(PieceSet, usize)> {
    let full = PieceSet::full(K);
    (0..K)
        .map(|i| {
            let count = n / K + usize::from(i < n % K);
            (full.without(PieceId::new(i)), count)
        })
        .collect()
}

/// The benchmark scenario on the given uncoded kernel, as a Session
/// workload: `n` one-piece-short initial peers, retry speed-up η = 10.
fn make_scenario(kernel: KernelKind, n: usize) -> AgentScenario {
    let mut scenario = AgentScenario::new(0, format!("bench-{n}"), bench_params(n));
    scenario.config = AgentConfig {
        kernel,
        retry_speedup: 10.0,
        snapshot_interval: 0.25,
        ..Default::default()
    };
    scenario.initial = initial_groups(n);
    scenario
}

/// The coded analogue of [`make_scenario`]: same `K`, arrival volume,
/// contact rate, and hit-and-run seed departures, with the one-piece-short
/// arrival mix replaced by the Theorem 15 gift model over GF(2) at
/// `f = 0.5` (the retry speed-up does not apply to the coded system). Runs
/// on the requested coded kernel — the reference RREF kernel or the
/// bitsliced lazy-peer `coded-turbo` kernel.
fn make_coded_scenario(kernel: KernelKind, n: usize) -> AgentScenario {
    let lambda_total = n as f64 / 10.0;
    let params = CodedParams::gift_example(K, 2, lambda_total, 0.5, 1.0, 0.1, 200.0)
        .expect("valid coded parameters");
    let mut scenario = AgentScenario::new(0, format!("bench-coded-{n}"), params.base.clone());
    scenario.coding = Some(params.gifts());
    scenario.config = AgentConfig {
        kernel,
        snapshot_interval: 0.25,
        ..Default::default()
    };
    scenario.initial = initial_groups(n);
    scenario
}

/// The sharded-scaling scenario: [`make_scenario`] without the retry
/// speed-up (the sharded driver models `η = 1` only), optionally sharded.
/// The unsharded variant is the apples-to-apples baseline for the sharded
/// rows — same kernel, same `η`, same arrival mix.
fn make_sharded_scenario(n: usize, shards: Option<u32>) -> AgentScenario {
    let mut scenario = AgentScenario::new(0, format!("bench-sharded-{n}"), bench_params(n));
    scenario.config = AgentConfig {
        kernel: KernelKind::Turbo,
        snapshot_interval: 0.25,
        ..Default::default()
    };
    scenario.initial = initial_groups(n);
    scenario.shards = shards;
    scenario.sync_window = Some(0.25);
    scenario
}

/// Captures the single replication's simulator counters off the stream.
#[derive(Default)]
struct CaptureSink {
    events: u64,
    transfers: u64,
    truncated: bool,
    telemetry: Option<ReplicationTelemetry>,
}

impl ReplicationSink for CaptureSink {
    fn record(&mut self, record: &ReplicationRecord) {
        self.events = record.events;
        self.transfers = record.transfers;
        self.truncated = record.truncated;
        self.telemetry = record.telemetry;
    }
}

struct Measurement {
    kernel: &'static str,
    events: u64,
    transfers: u64,
    wall_seconds: f64,
    events_per_sec: f64,
    /// Kernel counters from the metered verification pass.
    counters: CounterSet,
}

/// A single-replication benchmark [`Session`], metered or not. `jobs` is
/// the engine worker budget: with one replication the surplus flows to the
/// scenario's shard segments, so sharded rows pass 0 (one worker per core)
/// and unsharded rows pass 1.
fn bench_session(scenario: &AgentScenario, horizon: f64, metrics: bool, jobs: usize) -> Session {
    Session::builder()
        .config(
            EngineConfig::default()
                .with_replications(1)
                .with_horizon(horizon)
                .with_master_seed(SEED)
                .with_jobs(jobs)
                .with_metrics(metrics),
        )
        .workload(Workload::agent(vec![scenario.clone()]))
        .build()
        .expect("valid benchmark scenario")
}

/// Runs `scenario` to `horizon` through a single-replication
/// [`Session`], `repeats` times, streaming the counters out of a
/// [`CaptureSink`], and reports the best wall time (the least-noisy
/// estimator of the kernel's cost). Each repeat is a cold start — the
/// session allocates a fresh scratch arena per stream, so the measured
/// time includes one table/pool allocation, amortized over millions of
/// events (the pre-Session bench reused a warm scratch across repeats;
/// the committed PR-4 numbers are the historical warm-path trajectory).
/// Event counts are identical across repeats by construction — same
/// master seed, same derived stream — and asserted so.
///
/// A final *metered* pass (telemetry on, untimed) captures the kernel
/// counters and asserts the telemetry contract: metering reproduces the
/// unmetered event/transfer counts exactly, the counter partition adds
/// back up to the event count, and the contact ledger balances.
fn measure(
    scenario: &AgentScenario,
    name: &'static str,
    horizon: f64,
    repeats: u32,
) -> Measurement {
    measure_with_jobs(scenario, name, horizon, repeats, 1)
}

/// [`measure`] with an explicit engine worker budget (sharded rows pass 0
/// so shard segments get one worker per core).
fn measure_with_jobs(
    scenario: &AgentScenario,
    name: &'static str,
    horizon: f64,
    repeats: u32,
    jobs: usize,
) -> Measurement {
    let session = bench_session(scenario, horizon, false, jobs);
    let mut best = f64::INFINITY;
    let mut events = 0u64;
    let mut transfers = 0u64;
    for repeat in 0..repeats {
        let mut sink = CaptureSink::default();
        let span = Span::start();
        let _ = session.stream(&mut sink);
        let wall = span.seconds();
        assert!(!sink.truncated, "budget must cover the horizon");
        if repeat == 0 {
            events = sink.events;
            transfers = sink.transfers;
        } else {
            assert_eq!(events, sink.events, "{name}: nondeterministic events");
            assert_eq!(
                transfers, sink.transfers,
                "{name}: nondeterministic transfers"
            );
        }
        best = best.min(wall);
    }
    let mut sink = CaptureSink::default();
    let _ = bench_session(scenario, horizon, true, jobs).stream(&mut sink);
    assert_eq!(events, sink.events, "{name}: metering changed the events");
    assert_eq!(
        transfers, sink.transfers,
        "{name}: metering changed the transfers"
    );
    let counters = sink.telemetry.expect("metered pass").counters;
    assert_eq!(
        counters.event_total(),
        events,
        "{name}: the counter partition must add up to the kernel's events"
    );
    assert_eq!(
        counters.get(Counter::Contacts),
        counters.get(Counter::UsefulTransfers) + counters.get(Counter::UselessContacts),
        "{name}: the contact ledger must balance"
    );
    assert_eq!(
        counters.get(Counter::UsefulTransfers),
        transfers,
        "{name}: useful transfers must be the reported transfer count"
    );
    Measurement {
        kernel: name,
        events,
        transfers,
        wall_seconds: best,
        events_per_sec: events as f64 / best,
        counters,
    }
}

/// [`measure`] plus the one-line stderr progress report — the shared body
/// of every measurement loop.
fn measure_logged(
    scenario: &AgentScenario,
    name: &'static str,
    horizon: f64,
    repeats: u32,
    jobs: usize,
) -> Measurement {
    let m = measure_with_jobs(scenario, name, horizon, repeats, jobs);
    eprintln!(
        "  {:12} {:>9} events in {:.3}s  ({:.0} events/s)",
        m.kernel, m.events, m.wall_seconds, m.events_per_sec
    );
    m
}

const KERNELS: [(KernelKind, &str); 3] = [
    (KernelKind::LegacyScan, "legacy-scan"),
    (KernelKind::EventDriven, "event-driven"),
    (KernelKind::Turbo, "turbo"),
];

fn json_num(x: f64) -> String {
    if x.fract() == 0.0 && x.abs() < 1e15 {
        format!("{x:.1}")
    } else {
        format!("{x:.4}")
    }
}

/// The sharded-scaling block's inputs: one `(peers, horizon, unsharded,
/// sharded)` row per measured size, plus the 10M-peer completion row.
struct ShardedBench {
    shards: u32,
    sync_window: f64,
    shard_jobs: usize,
    rows: Vec<(usize, f64, Measurement, Measurement)>,
    ten_million: Measurement,
    ten_million_peers: usize,
    ten_million_horizon: f64,
}

#[allow(clippy::too_many_arguments)]
fn render_report(
    sizes: &[(usize, f64, Vec<Measurement>)],
    coded: &[(usize, f64, Vec<Measurement>)],
    million: &Measurement,
    coded_million: &Measurement,
    million_peers: usize,
    million_horizon: f64,
    coded_million_horizon: f64,
    sharded: &ShardedBench,
) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "{{");
    let _ = writeln!(out, "  \"schema\": \"{SCHEMA}\",");
    let _ = writeln!(out, "  \"pr\": 9,");
    let _ = writeln!(out, "  \"scenario\": \"big-swarm-k32-retry\",");
    let _ = writeln!(
        out,
        "  \"params\": {{\"k\": {K}, \"contact_rate\": 0.1, \"seed_rate\": 1.0, \
         \"seed_departure_rate\": 200.0, \"retry_speedup\": 10.0, \
         \"arrivals_per_time_unit\": \"peers / 10\", \"seed\": {SEED}}},"
    );
    let _ = writeln!(out, "  \"sizes\": [");
    for (s, (peers, horizon, measurements)) in sizes.iter().enumerate() {
        let _ = writeln!(out, "    {{");
        let _ = writeln!(out, "      \"peers\": {peers},");
        let _ = writeln!(out, "      \"horizon\": {},", json_num(*horizon));
        let _ = writeln!(out, "      \"kernels\": [");
        for (i, m) in measurements.iter().enumerate() {
            let _ = writeln!(
                out,
                "        {{\"kernel\": \"{}\", \"events\": {}, \"transfers\": {}, \
                 \"wall_seconds\": {}, \"events_per_sec\": {}, \"telemetry\": {}}}{}",
                m.kernel,
                m.events,
                m.transfers,
                json_num(m.wall_seconds),
                json_num(m.events_per_sec),
                counters_json(&m.counters),
                if i + 1 < measurements.len() { "," } else { "" }
            );
        }
        let _ = writeln!(out, "      ],");
        let by = |name: &str| {
            measurements
                .iter()
                .find(|m| m.kernel == name)
                .expect("all kernels measured")
        };
        let _ = writeln!(
            out,
            "      \"turbo_speedup_vs_event\": {},",
            json_num(by("turbo").events_per_sec / by("event-driven").events_per_sec)
        );
        let _ = writeln!(
            out,
            "      \"event_speedup_vs_scan\": {}",
            json_num(by("event-driven").events_per_sec / by("legacy-scan").events_per_sec)
        );
        let _ = writeln!(out, "    }}{}", if s + 1 < sizes.len() { "," } else { "" });
    }
    let _ = writeln!(out, "  ],");
    let _ = writeln!(
        out,
        "  \"coded\": {{\"scenario\": \"theorem15-gift-gf2-k32\", \
         \"params\": {{\"q\": 2, \"gift_fraction\": 0.5, \"contact_rate\": 0.1, \
         \"seed_rate\": 1.0, \"seed_departure_rate\": 200.0}}, \"sizes\": ["
    );
    for (s, (peers, horizon, measurements)) in coded.iter().enumerate() {
        let _ = writeln!(out, "    {{");
        let _ = writeln!(out, "      \"peers\": {peers},");
        let _ = writeln!(out, "      \"horizon\": {},", json_num(*horizon));
        let _ = writeln!(out, "      \"kernels\": [");
        // The coded entries carry the full counter set, so the RREF
        // absorb / rank / materialization / dimension-fast-path breakdown
        // is in the record.
        for (i, m) in measurements.iter().enumerate() {
            let _ = writeln!(
                out,
                "        {{\"kernel\": \"{}\", \"events\": {}, \"transfers\": {}, \
                 \"wall_seconds\": {}, \"events_per_sec\": {}, \"telemetry\": {}}}{}",
                m.kernel,
                m.events,
                m.transfers,
                json_num(m.wall_seconds),
                json_num(m.events_per_sec),
                counters_json(&m.counters),
                if i + 1 < measurements.len() { "," } else { "" }
            );
        }
        let _ = writeln!(out, "      ],");
        let by = |name: &str| {
            measurements
                .iter()
                .find(|m| m.kernel == name)
                .expect("both coded kernels measured")
        };
        let _ = writeln!(
            out,
            "      \"coded_turbo_speedup_vs_coded\": {}",
            json_num(by("coded-turbo").events_per_sec / by("coded").events_per_sec)
        );
        let _ = writeln!(out, "    }}{}", if s + 1 < coded.len() { "," } else { "" });
    }
    let _ = writeln!(out, "  ]}},");
    let _ = writeln!(
        out,
        "  \"million_peer\": {{\"peers\": {million_peers}, \"kernel\": \"turbo\", \
         \"horizon\": {}, \"events\": {}, \"wall_seconds\": {}, \
         \"events_per_sec\": {}, \"completed\": true, \"telemetry\": {}}},",
        json_num(million_horizon),
        million.events,
        json_num(million.wall_seconds),
        json_num(million.events_per_sec),
        counters_json(&million.counters),
    );
    let _ = writeln!(
        out,
        "  \"coded_million_peer\": {{\"peers\": {million_peers}, \
         \"kernel\": \"coded-turbo\", \"horizon\": {}, \"events\": {}, \
         \"wall_seconds\": {}, \"events_per_sec\": {}, \"completed\": true, \
         \"telemetry\": {}}},",
        json_num(coded_million_horizon),
        coded_million.events,
        json_num(coded_million.wall_seconds),
        json_num(coded_million.events_per_sec),
        counters_json(&coded_million.counters),
    );
    // Intra-replication sharding: the unsharded η = 1 turbo baseline
    // against the sharded driver at each size, then the 10M-peer
    // completion row. `shard_jobs` records how many cores the shard
    // segments actually ran on — the honest context for every
    // events-per-second figure in this block.
    let _ = writeln!(
        out,
        "  \"sharded\": {{\"scenario\": \"big-swarm-k32\", \"shards\": {}, \
         \"sync_window\": {}, \"shard_jobs\": {}, \"sizes\": [",
        sharded.shards,
        json_num(sharded.sync_window),
        sharded.shard_jobs,
    );
    for (s, (peers, horizon, unsharded, row)) in sharded.rows.iter().enumerate() {
        let _ = writeln!(out, "    {{");
        let _ = writeln!(out, "      \"peers\": {peers},");
        let _ = writeln!(out, "      \"horizon\": {},", json_num(*horizon));
        let _ = writeln!(out, "      \"kernels\": [");
        for (i, m) in [unsharded, row].into_iter().enumerate() {
            let _ = writeln!(
                out,
                "        {{\"kernel\": \"{}\", \"events\": {}, \"transfers\": {}, \
                 \"wall_seconds\": {}, \"events_per_sec\": {}, \"telemetry\": {}}}{}",
                m.kernel,
                m.events,
                m.transfers,
                json_num(m.wall_seconds),
                json_num(m.events_per_sec),
                counters_json(&m.counters),
                if i == 0 { "," } else { "" }
            );
        }
        let _ = writeln!(out, "      ],");
        let _ = writeln!(
            out,
            "      \"sharded_speedup_vs_unsharded\": {}",
            json_num(row.events_per_sec / unsharded.events_per_sec)
        );
        let _ = writeln!(
            out,
            "    }}{}",
            if s + 1 < sharded.rows.len() { "," } else { "" }
        );
    }
    let _ = writeln!(out, "  ]}},");
    let _ = writeln!(
        out,
        "  \"ten_million_peer\": {{\"peers\": {}, \"kernel\": \"turbo-sharded\", \
         \"shards\": {}, \"horizon\": {}, \"events\": {}, \"wall_seconds\": {}, \
         \"events_per_sec\": {}, \"completed\": true, \"telemetry\": {}}}",
        sharded.ten_million_peers,
        sharded.shards,
        json_num(sharded.ten_million_horizon),
        sharded.ten_million.events,
        json_num(sharded.ten_million.wall_seconds),
        json_num(sharded.ten_million.events_per_sec),
        counters_json(&sharded.ten_million.counters),
    );
    let _ = writeln!(out, "}}");
    out
}

/// CI mode: determinism + parity + schema, never wall time.
fn check() -> ExitCode {
    let n = 2_000;
    let horizon = 4.0;
    println!("bench_report --check: {n} peers, horizon {horizon}");
    let mut per_kernel = Vec::new();
    for (kernel, name) in KERNELS {
        // `measure` itself asserts event/transfer determinism across its
        // repeats (same seed, twice).
        let m = measure(&make_scenario(kernel, n), name, horizon, 2);
        assert!(m.events > 1_000, "{name}: implausibly few events");
        assert!(m.transfers > 0, "{name}: no transfers simulated");
        println!(
            "  {:12} {:>8} events, {:>8} transfers",
            name, m.events, m.transfers
        );
        per_kernel.push(m);
    }
    // Draw parity: the scan and event kernels walk identical trajectories.
    assert_eq!(
        per_kernel[0].events, per_kernel[1].events,
        "scan and event kernels diverged"
    );
    assert_eq!(per_kernel[0].transfers, per_kernel[1].transfers);
    // The turbo kernel is parity-free but samples the same process: its
    // event count must land in the same statistical ballpark.
    let ratio = per_kernel[2].events as f64 / per_kernel[1].events as f64;
    assert!(
        (0.8..1.25).contains(&ratio),
        "turbo event count diverges from the event kernel: ratio {ratio}"
    );
    // The coded kernels: deterministic per seed (asserted inside `measure`)
    // and simulating a comparably busy system. `measure` has already checked
    // that their telemetry adds up to the reported events; on top of that
    // each ledger must be internally consistent.
    let coded = measure(
        &make_coded_scenario(KernelKind::Coded, n),
        "coded",
        horizon,
        2,
    );
    assert!(coded.events > 1_000, "coded: implausibly few events");
    assert!(coded.transfers > 0, "coded: no coded transfers simulated");
    assert!(
        coded.counters.get(Counter::RrefAbsorbs) >= coded.counters.get(Counter::RankIncreases),
        "coded: more rank increases than absorbs"
    );
    assert!(
        coded.counters.get(Counter::RrefAbsorbs) > 0,
        "coded: the RREF hot path never ran"
    );
    println!(
        "  {:12} {:>8} events, {:>8} transfers",
        "coded", coded.events, coded.transfers
    );
    let coded_turbo = measure(
        &make_coded_scenario(KernelKind::CodedTurbo, n),
        "coded-turbo",
        horizon,
        2,
    );
    assert!(
        coded_turbo.events > 1_000,
        "coded-turbo: implausibly few events"
    );
    assert!(
        coded_turbo.transfers > 0,
        "coded-turbo: no transfers simulated"
    );
    // The lazy-peer ledger: bases materialize strictly less often than they
    // absorb, and dimension-only decisions happen at all.
    assert!(
        coded_turbo.counters.get(Counter::BasisMaterializations)
            < coded_turbo.counters.get(Counter::RrefAbsorbs),
        "coded-turbo: every absorb materialized a basis — laziness is broken"
    );
    assert!(
        coded_turbo.counters.get(Counter::DimFastPathHits) > 0,
        "coded-turbo: the dimension-only fast path never ran"
    );
    // Two simulators of the same process: event volumes in the same
    // statistical ballpark.
    let coded_ratio = coded_turbo.events as f64 / coded.events as f64;
    assert!(
        (0.8..1.25).contains(&coded_ratio),
        "coded-turbo event count diverges from the coded kernel: ratio {coded_ratio}"
    );
    println!(
        "  {:12} {:>8} events, {:>8} transfers",
        "coded-turbo", coded_turbo.events, coded_turbo.transfers
    );

    // The sharded driver: deterministic at any worker count (same seed,
    // jobs 1 vs 4 → identical event and transfer counts) and in the same
    // statistical ballpark as the unsharded turbo baseline.
    let sharded_scenario = make_sharded_scenario(n, Some(4));
    let sharded_1 = measure_with_jobs(&sharded_scenario, "turbo-sharded", horizon, 2, 1);
    let sharded_4 = measure_with_jobs(&sharded_scenario, "turbo-sharded", horizon, 2, 4);
    assert_eq!(
        sharded_1.events, sharded_4.events,
        "sharded runs diverged across jobs"
    );
    assert_eq!(sharded_1.transfers, sharded_4.transfers);
    let baseline = measure(&make_sharded_scenario(n, None), "turbo-eta1", horizon, 2);
    let sharded_ratio = sharded_1.events as f64 / baseline.events as f64;
    assert!(
        (0.8..1.25).contains(&sharded_ratio),
        "sharded event count diverges from the unsharded turbo run: ratio {sharded_ratio}"
    );
    println!(
        "  {:12} {:>8} events, {:>8} transfers (jobs-stable)",
        "turbo-sharded", sharded_1.events, sharded_1.transfers
    );

    // Schema of the committed trajectory file, when present.
    match std::fs::read_to_string(CANONICAL) {
        Ok(text) => {
            for key in SCHEMA_KEYS {
                if !text.contains(key) {
                    eprintln!("{CANONICAL}: missing required key {key}");
                    return ExitCode::FAILURE;
                }
            }
            if !text.contains(&format!("\"schema\": \"{SCHEMA}\"")) {
                eprintln!("{CANONICAL}: schema string is not {SCHEMA}");
                return ExitCode::FAILURE;
            }
            println!("{CANONICAL} schema OK");
        }
        Err(error) => {
            eprintln!("cannot read {CANONICAL}: {error}");
            return ExitCode::FAILURE;
        }
    }
    println!("bench_report --check passed");
    ExitCode::SUCCESS
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut out_path = String::from(CANONICAL);
    let mut check_mode = false;
    let mut iter = args.into_iter();
    while let Some(arg) = iter.next() {
        match arg.as_str() {
            "--check" => check_mode = true,
            "--out" => match iter.next() {
                Some(path) => out_path = path,
                None => {
                    eprintln!("--out needs a value");
                    return ExitCode::FAILURE;
                }
            },
            "--help" | "-h" => {
                println!("usage: bench_report [--check] [--out FILE]");
                return ExitCode::SUCCESS;
            }
            other => {
                eprintln!("unknown argument `{other}` (try --help)");
                return ExitCode::FAILURE;
            }
        }
    }
    if check_mode {
        return check();
    }

    let mut sizes = Vec::new();
    let mut coded = Vec::new();
    for (peers, horizon) in SIZES {
        eprintln!("measuring {peers}-peer swarm (horizon {horizon}) ...");
        let measurements: Vec<Measurement> = KERNELS
            .iter()
            .map(|&(kernel, name)| {
                measure_logged(&make_scenario(kernel, peers), name, horizon, 3, 1)
            })
            .collect();
        sizes.push((peers, horizon, measurements));
        eprintln!("measuring {peers}-peer coded swarm (horizon {horizon}) ...");
        let coded_measurements = vec![
            measure_logged(
                &make_coded_scenario(KernelKind::Coded, peers),
                "coded",
                horizon,
                3,
                1,
            ),
            measure_logged(
                &make_coded_scenario(KernelKind::CodedTurbo, peers),
                "coded-turbo",
                horizon,
                3,
                1,
            ),
        ];
        coded.push((peers, horizon, coded_measurements));
    }

    let million_peers = 1_000_000;
    let million_horizon = 1.5;
    eprintln!("measuring {million_peers}-peer turbo run (horizon {million_horizon}) ...");
    let million = measure_logged(
        &make_scenario(KernelKind::Turbo, million_peers),
        "turbo",
        million_horizon,
        1,
        1,
    );

    let coded_million_horizon = 1.5;
    eprintln!(
        "measuring {million_peers}-peer coded-turbo run (horizon {coded_million_horizon}) ..."
    );
    let coded_million = measure_logged(
        &make_coded_scenario(KernelKind::CodedTurbo, million_peers),
        "coded-turbo",
        coded_million_horizon,
        1,
        1,
    );
    // The laziness claim the million-peer row exists to pin: at scale,
    // dimension-only decisions must outnumber basis materializations.
    assert!(
        coded_million.counters.get(Counter::DimFastPathHits)
            > coded_million.counters.get(Counter::BasisMaterializations),
        "coded million-peer row: fast-path hits must dominate materializations ({:?})",
        coded_million.counters
    );

    // Intra-replication sharding: the η = 1 turbo baseline against the
    // sharded driver (8 shards, window 0.25) at each operating size, with
    // shard segments on every available core (`jobs = 0`), then the
    // 10M-peer completion row. `measure` asserts `!truncated`, so the row
    // existing proves the run completed.
    const SHARDS: u32 = 8;
    let shard_jobs = std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get);
    let mut sharded_rows = Vec::new();
    for (peers, horizon) in [(100_000, 8.0), (1_000_000, 1.5)] {
        eprintln!("measuring {peers}-peer sharded swarm (horizon {horizon}, {SHARDS} shards) ...");
        let unsharded = measure_logged(
            &make_sharded_scenario(peers, None),
            "turbo-eta1",
            horizon,
            3,
            1,
        );
        let row = measure_logged(
            &make_sharded_scenario(peers, Some(SHARDS)),
            "turbo-sharded",
            horizon,
            3,
            0,
        );
        sharded_rows.push((peers, horizon, unsharded, row));
    }
    let ten_million_peers = 10_000_000;
    let ten_million_horizon = 1.0;
    eprintln!(
        "measuring {ten_million_peers}-peer sharded run \
         (horizon {ten_million_horizon}, {SHARDS} shards) ..."
    );
    let ten_million = measure_logged(
        &make_sharded_scenario(ten_million_peers, Some(SHARDS)),
        "turbo-sharded",
        ten_million_horizon,
        1,
        0,
    );
    let sharded = ShardedBench {
        shards: SHARDS,
        sync_window: 0.25,
        shard_jobs,
        rows: sharded_rows,
        ten_million,
        ten_million_peers,
        ten_million_horizon,
    };

    let report = render_report(
        &sizes,
        &coded,
        &million,
        &coded_million,
        million_peers,
        million_horizon,
        coded_million_horizon,
        &sharded,
    );
    if let Err(error) = std::fs::write(&out_path, &report) {
        eprintln!("cannot write {out_path}: {error}");
        return ExitCode::FAILURE;
    }
    let speedup_100k = {
        let (_, _, ms) = &sizes[1];
        let turbo = ms.iter().find(|m| m.kernel == "turbo").unwrap();
        let event = ms.iter().find(|m| m.kernel == "event-driven").unwrap();
        turbo.events_per_sec / event.events_per_sec
    };
    eprintln!("turbo vs event at 100k peers: {speedup_100k:.2}x");
    let coded_speedup_100k = {
        let (_, _, ms) = &coded[1];
        let turbo = ms.iter().find(|m| m.kernel == "coded-turbo").unwrap();
        let reference = ms.iter().find(|m| m.kernel == "coded").unwrap();
        turbo.events_per_sec / reference.events_per_sec
    };
    eprintln!("coded-turbo vs coded at 100k peers: {coded_speedup_100k:.2}x");
    eprintln!("report written to {out_path}");
    ExitCode::SUCCESS
}
