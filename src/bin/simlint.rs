//! `simlint` — static enforcement of the workspace's determinism,
//! RNG-discipline, and panic-policy contracts.
//!
//! ```text
//! simlint [--root DIR] [--json] [--deny RULE[,RULE…]|all] [--list-rules]
//! ```
//!
//! Exit codes: `0` clean (warnings allowed), `1` at least one error-level
//! finding, `2` usage or I/O failure. CI runs `simlint --deny all`, which
//! promotes every warning to an error: the gate passes only on a workspace
//! with zero findings.

use simlint::{diag, rules, Severity};
use std::path::PathBuf;
use std::process::ExitCode;

const USAGE: &str = "\
simlint: workspace contract linter (determinism / RNG discipline / panic policy)

USAGE:
    simlint [--root DIR] [--json] [--deny RULE[,RULE...]|all] [--list-rules]

OPTIONS:
    --root DIR     Workspace root to lint (default: current directory).
    --json         Emit diagnostics as a JSON array instead of text.
    --deny SPEC    Promote warnings to errors: a rule id (E001), a family
                   letter (D, E, X), `all`, or a comma list of those.
                   Repeatable.
    --list-rules   Print the rule registry and exit.
    --help         Print this help.
";

struct Options {
    root: PathBuf,
    json: bool,
    deny: Vec<String>,
    list_rules: bool,
}

fn parse_args(args: &[String]) -> Result<Options, String> {
    let mut opts = Options {
        root: PathBuf::from("."),
        json: false,
        deny: Vec::new(),
        list_rules: false,
    };
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--json" => opts.json = true,
            "--list-rules" => opts.list_rules = true,
            "--root" => {
                let value = it.next().ok_or("--root requires a directory argument")?;
                opts.root = PathBuf::from(value);
            }
            "--deny" => {
                let value = it.next().ok_or("--deny requires a rule spec argument")?;
                for part in value.split(',') {
                    let part = part.trim();
                    if part.is_empty() {
                        continue;
                    }
                    if part != "all"
                        && !matches!(part, "D" | "E" | "X")
                        && !rules::RULES.iter().any(|r| r.id == part)
                    {
                        return Err(format!("--deny: unknown rule or family `{part}`"));
                    }
                    opts.deny.push(part.to_string());
                }
            }
            "--help" | "-h" => return Err(String::new()),
            other => return Err(format!("unknown argument `{other}`")),
        }
    }
    Ok(opts)
}

fn denied(deny: &[String], rule: &str) -> bool {
    deny.iter().any(|spec| {
        spec == "all" || spec == rule || (spec.len() == 1 && rule.starts_with(spec.as_str()))
    })
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let opts = match parse_args(&args) {
        Ok(opts) => opts,
        Err(msg) => {
            if msg.is_empty() {
                print!("{USAGE}");
                return ExitCode::SUCCESS;
            }
            eprintln!("simlint: {msg}");
            eprint!("{USAGE}");
            return ExitCode::from(2);
        }
    };

    if opts.list_rules {
        println!("{:<6} {:<8} SUMMARY", "RULE", "LEVEL");
        for rule in rules::RULES {
            println!(
                "{:<6} {:<8} {}",
                rule.id,
                rule.severity.name(),
                rule.summary
                    .split_whitespace()
                    .collect::<Vec<_>>()
                    .join(" ")
            );
        }
        return ExitCode::SUCCESS;
    }

    if !opts.root.join("Cargo.toml").is_file() {
        eprintln!(
            "simlint: `{}` does not look like a workspace root (no Cargo.toml); \
             run from the repository root or pass --root",
            opts.root.display()
        );
        return ExitCode::from(2);
    }

    let mut diags = match simlint::lint_workspace(&opts.root) {
        Ok(diags) => diags,
        Err(err) => {
            eprintln!("simlint: failed to read the workspace: {err}");
            return ExitCode::from(2);
        }
    };

    for d in &mut diags {
        if d.severity == Severity::Warning && denied(&opts.deny, d.rule) {
            d.severity = Severity::Error;
        }
    }

    if opts.json {
        println!("{}", diag::render_json_report(&diags));
    } else {
        for d in &diags {
            println!("{}", d.render_human());
        }
    }

    let errors = diags
        .iter()
        .filter(|d| d.severity == Severity::Error)
        .count();
    let warnings = diags.len() - errors;
    eprintln!(
        "simlint: {} error{}, {} warning{}",
        errors,
        if errors == 1 { "" } else { "s" },
        warnings,
        if warnings == 1 { "" } else { "s" },
    );
    if errors > 0 {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}
