//! Regenerates every experiment report (E1–E12), runs registry scenarios,
//! and, optionally, writes the engine's phase-diagram artifacts.
//!
//! ```text
//! cargo run --release --bin run_experiments                 # full budget
//! cargo run --release --bin run_experiments -- quick        # reduced budget
//! cargo run --release --bin run_experiments -- \
//!     --replications 16 --jobs 8 --seed 0xA11CE \
//!     --out-dir artifacts                                   # write files
//! cargo run --release --bin run_experiments -- \
//!     --scenario flash-crowd                                # a built-in
//! cargo run --release --bin run_experiments -- \
//!     --scenario my_swarm.json --replications 8             # a file
//! ```
//!
//! Flags:
//!
//! * `quick` — use the reduced simulation budget,
//! * `--replications N` — Monte-Carlo replications per sweep point,
//! * `--jobs N` — worker threads (0 = one per core),
//! * `--seed S` — master seed (decimal or `0x…`),
//! * `--horizon T` — simulated horizon per replication (for `--scenario`
//!   this overrides the horizon written in the scenario),
//! * `--scenario FILE|NAME` — instead of the E1–E12 reports, execute one
//!   scenario from the registry: a JSON scenario file (see `EXPERIMENTS.md`
//!   for the format) or a built-in name,
//! * `--kernel event|scan|turbo|coded|coded-turbo` — override the
//!   scenario's simulation kernel (`event-driven` and `legacy-scan` are
//!   byte-reproducible against each other; `turbo` is the parity-free fast
//!   kernel, deterministic per seed but validated distributionally; `coded`
//!   is the network-coded kernel and needs a scenario with a `"coding"`
//!   block; `coded-turbo` is its bitsliced GF(2) fast path and additionally
//!   requires `q = 2`),
//! * `--shards N` — (with `--scenario`) shard each replication's peer
//!   population across `N` per-shard clocks (turbo kernel only); for a
//!   fixed `(seed, shards, sync-window)` the result is byte-identical at
//!   any `--jobs`,
//! * `--sync-window W` — (with `--scenario`) the simulated-time length of
//!   a sharded synchronization round (default from the engine config),
//! * `--progress` — report replication progress on stderr through the
//!   engine's built-in `ProgressSink`,
//! * `--stream` — (with `--scenario`) execute through the streaming
//!   `Session::stream` path with an explicit sink; reports and artifacts
//!   are byte-identical to the default batch path, which CI asserts,
//! * `--metrics[=FILE]` — (with `--scenario`) meter every replication
//!   (kernel counters, wall times, scheduler histograms) and export the
//!   telemetry as NDJSON to `FILE` (default `metrics.ndjson`), plus a
//!   human summary on stderr. Metering consumes no randomness: reports
//!   and artifacts stay byte-identical with it on or off,
//! * `--check-metrics FILE` — validate a metrics NDJSON file (framing,
//!   schema, counter algebra) and exit; used by CI,
//! * `--allow-truncated` — (with `--check-metrics`) accept an export whose
//!   end frame carries `"truncated": true` (written when a run crashed or
//!   was aborted mid-stream); the prefix is still validated line by line,
//! * `--failure-policy failfast|quarantine[:N]|retry[:N[:MS]]` — (with
//!   `--scenario`) what to do when a replication panics: abort the whole
//!   run (`failfast`, the default), quarantine up to `N` failed
//!   replications as typed failure records (default: unlimited), or retry
//!   each failure up to `N` total attempts with a linear backoff of `MS`
//!   milliseconds (defaults: 3 attempts, no backoff). Surviving
//!   replications are bit-identical to a fault-free run either way,
//! * `--chaos SPEC` — (with `--scenario`) inject deterministic faults,
//!   keyed by stream key so a chaos run reproduces at any `--jobs`.
//!   `SPEC` is comma-separated `[SCENARIO.]REP=panic|transient:N|stall:MS`
//!   entries (see `EXPERIMENTS.md`),
//! * `--checkpoint[=FILE]` — (with `--scenario`) write a crash-consistent
//!   checkpoint (default `checkpoint.ckpt`) as the run progresses; a run
//!   killed at any point can be resumed from it,
//! * `--resume FILE` — (with `--scenario`) resume a checkpointed run; the
//!   completed prefix is restored and only the remaining replications
//!   execute. The finished artifacts are byte-identical to an
//!   uninterrupted run. The checkpoint records a digest of the
//!   configuration and scenario, so resuming under a different setup is a
//!   typed error rather than silent corruption,
//! * `--list-scenarios` — list the built-in scenario names and exit,
//! * `--out-dir DIR` — also write `E*.txt` reports plus the Example 1
//!   phase diagram as `phase.csv` / `phase.json` / `phase.txt` and the E1
//!   sweep outcomes as CSV/JSON into `DIR` (with `--scenario`, write the
//!   scenario report as `scenario_<name>.txt`).
//!
//! With a fixed `--seed`, every report and artifact is byte-identical at
//! any `--jobs` value.
//!
//! Exit status: 0 on success, 1 on errors, and 3 when a quarantined
//! scenario run finishes but one or more replications failed (the report
//! and artifacts are still written; the failures are summarised on
//! stderr with their stream keys and payloads).

use p2p_stability::engine::{
    self, Axis, CheckpointSpec, EngineConfig, FailurePolicy, FaultPlan, GridSpec, MetricsSink,
    NullSink, ProgressSink, ReplicationFailure, ReplicationSink, Session, Workload,
};
use p2p_stability::swarm::sim::KernelKind;
use p2p_stability::workload::experiments::{self, ExperimentConfig};
use p2p_stability::workload::ndjson;
use p2p_stability::workload::registry::{self, Registry, ScenarioRunOptions};
use p2p_stability::workload::scenario;
use p2p_stability::workload::{ScenarioRunReport, ScenarioSpec};
use std::path::PathBuf;
use std::process::ExitCode;

struct Cli {
    config: ExperimentConfig,
    out_dir: Option<PathBuf>,
    scenario: Option<String>,
    list_scenarios: bool,
    /// Stream scenario replication results through an explicit
    /// `ReplicationSink` (`--stream`); output is byte-identical to the
    /// batch path, which is the point: batch is streaming underneath.
    stream: bool,
    /// Set only when `--horizon` was given explicitly (a scenario's own
    /// horizon must win otherwise).
    explicit_horizon: Option<f64>,
    /// Set only when `--kernel` was given explicitly (a scenario's own
    /// kernel must win otherwise).
    kernel: Option<KernelKind>,
    /// Shard count override (`--shards N`).
    shards: Option<u32>,
    /// Synchronization-window override (`--sync-window W`).
    sync_window: Option<f64>,
    /// NDJSON telemetry export path (`--metrics[=FILE]`).
    metrics: Option<PathBuf>,
    /// Validate-and-exit mode (`--check-metrics FILE`).
    check_metrics: Option<PathBuf>,
    /// Accept a truncated NDJSON export under `--check-metrics`.
    allow_truncated: bool,
    /// Replication failure handling (`--failure-policy`).
    failure_policy: FailurePolicy,
    /// Deterministic fault injection (`--chaos SPEC`).
    chaos: Option<FaultPlan>,
    /// Checkpoint file to write as the run progresses (`--checkpoint[=FILE]`).
    checkpoint: Option<PathBuf>,
    /// Checkpoint file to resume from (`--resume FILE`).
    resume: Option<PathBuf>,
}

/// Parses `--failure-policy` values: `failfast`, `quarantine[:N]`
/// (default: unlimited), `retry[:N[:MS]]` (defaults: 3 attempts, no
/// backoff).
fn parse_failure_policy(value: &str) -> Result<FailurePolicy, String> {
    let bad = |detail: &str| {
        format!(
            "--failure-policy: {detail} \
             (expected failfast, quarantine[:N], or retry[:N[:MS]], got `{value}`)"
        )
    };
    let (head, rest) = match value.split_once(':') {
        Some((head, rest)) => (head, Some(rest)),
        None => (value, None),
    };
    match head {
        "failfast" | "fail-fast" => match rest {
            None => Ok(FailurePolicy::FailFast),
            Some(_) => Err(bad("failfast takes no parameters")),
        },
        "quarantine" => {
            let max_failures = match rest {
                None => u32::MAX,
                Some(n) => n.parse().map_err(|_| bad("bad failure budget"))?,
            };
            Ok(FailurePolicy::Quarantine { max_failures })
        }
        "retry" => {
            let (attempts, backoff_ms) = match rest {
                None => (3, 0),
                Some(rest) => match rest.split_once(':') {
                    None => (rest.parse().map_err(|_| bad("bad attempt count"))?, 0),
                    Some((n, ms)) => (
                        n.parse().map_err(|_| bad("bad attempt count"))?,
                        ms.parse().map_err(|_| bad("bad backoff"))?,
                    ),
                },
            };
            Ok(FailurePolicy::Retry {
                attempts,
                backoff_ms,
            })
        }
        _ => Err(bad("unknown policy")),
    }
}

const USAGE: &str = "usage: run_experiments [quick] [--replications N] [--jobs N] \
[--seed S] [--horizon T] [--scenario FILE|NAME] \
[--kernel event|scan|turbo|coded|coded-turbo] \
[--shards N] [--sync-window W] \
[--progress] [--stream] [--metrics[=FILE]] [--check-metrics FILE] \
[--allow-truncated] [--failure-policy failfast|quarantine[:N]|retry[:N[:MS]]] \
[--chaos SPEC] [--checkpoint[=FILE]] [--resume FILE] \
[--list-scenarios] [--out-dir DIR]";

enum CliError {
    /// `--help` / `-h`: print usage and exit successfully.
    Help,
    /// A real parse error: print and exit non-zero.
    Invalid(String),
}

impl From<String> for CliError {
    fn from(message: String) -> Self {
        CliError::Invalid(message)
    }
}

fn parse_u64(value: &str) -> Option<u64> {
    if let Some(hex) = value
        .strip_prefix("0x")
        .or_else(|| value.strip_prefix("0X"))
    {
        u64::from_str_radix(hex, 16).ok()
    } else {
        value.parse().ok()
    }
}

fn parse_cli() -> Result<Cli, CliError> {
    let raw: Vec<String> = std::env::args().skip(1).collect();
    // Apply the `quick` preset before flag parsing so explicit flags win
    // regardless of argument order (`--horizon 5000 quick` must not
    // clobber the horizon).
    let mut config = ExperimentConfig::full();
    if raw.iter().any(|a| a == "quick") {
        let quick = ExperimentConfig::quick();
        config.horizon = quick.horizon;
        config.replications = quick.replications;
    }
    let mut out_dir = None;
    let mut scenario = None;
    let mut list_scenarios = false;
    let mut stream = false;
    let mut explicit_horizon = None;
    let mut kernel = None;
    let mut shards = None;
    let mut sync_window = None;
    let mut metrics = None;
    let mut check_metrics = None;
    let mut allow_truncated = false;
    let mut failure_policy = FailurePolicy::FailFast;
    let mut chaos = None;
    let mut checkpoint = None;
    let mut resume = None;
    let mut args = raw.into_iter();
    while let Some(arg) = args.next() {
        let mut value_of = |flag: &str| args.next().ok_or_else(|| format!("{flag} needs a value"));
        match arg.as_str() {
            "quick" => {}
            "--replications" => {
                config.replications = value_of("--replications")?
                    .parse()
                    .map_err(|e| format!("--replications: {e}"))?;
            }
            "--jobs" => {
                config.threads = value_of("--jobs")?
                    .parse()
                    .map_err(|e| format!("--jobs: {e}"))?;
            }
            "--seed" => {
                config.seed = parse_u64(&value_of("--seed")?)
                    .ok_or_else(|| "--seed: expected a u64 (decimal or 0x-hex)".to_owned())?;
            }
            "--horizon" => {
                let horizon: f64 = value_of("--horizon")?
                    .parse()
                    .map_err(|e| format!("--horizon: {e}"))?;
                if horizon.is_nan() || horizon <= 0.0 {
                    return Err(CliError::Invalid(format!(
                        "--horizon: must be positive, got {horizon}"
                    )));
                }
                config.horizon = horizon;
                explicit_horizon = Some(config.horizon);
            }
            "--scenario" => scenario = Some(value_of("--scenario")?),
            "--kernel" => {
                kernel = Some(match value_of("--kernel")?.as_str() {
                    "event" | "event-driven" => KernelKind::EventDriven,
                    "scan" | "legacy-scan" => KernelKind::LegacyScan,
                    "turbo" => KernelKind::Turbo,
                    "coded" => KernelKind::Coded,
                    "coded-turbo" => KernelKind::CodedTurbo,
                    other => {
                        return Err(CliError::Invalid(format!(
                            "--kernel: unknown kernel `{other}` \
                             (expected event, scan, turbo, coded, or coded-turbo)"
                        )))
                    }
                });
            }
            "--shards" => {
                let n: u32 = value_of("--shards")?
                    .parse()
                    .map_err(|e| format!("--shards: {e}"))?;
                if n == 0 {
                    return Err(CliError::Invalid("--shards: must be at least 1".into()));
                }
                shards = Some(n);
            }
            "--sync-window" => {
                let window: f64 = value_of("--sync-window")?
                    .parse()
                    .map_err(|e| format!("--sync-window: {e}"))?;
                if !(window.is_finite() && window > 0.0) {
                    return Err(CliError::Invalid(format!(
                        "--sync-window: must be a finite positive time, got {window}"
                    )));
                }
                sync_window = Some(window);
            }
            "--progress" => config.progress = true,
            "--stream" => stream = true,
            "--metrics" => metrics = Some(PathBuf::from("metrics.ndjson")),
            "--check-metrics" => {
                check_metrics = Some(PathBuf::from(value_of("--check-metrics")?));
            }
            "--allow-truncated" => allow_truncated = true,
            "--failure-policy" => {
                failure_policy = parse_failure_policy(&value_of("--failure-policy")?)?;
            }
            "--chaos" => {
                chaos = Some(
                    FaultPlan::parse(&value_of("--chaos")?).map_err(|e| format!("--chaos: {e}"))?,
                );
            }
            "--checkpoint" => checkpoint = Some(PathBuf::from("checkpoint.ckpt")),
            "--resume" => resume = Some(PathBuf::from(value_of("--resume")?)),
            "--list-scenarios" => list_scenarios = true,
            "--out-dir" => out_dir = Some(PathBuf::from(value_of("--out-dir")?)),
            "--help" | "-h" => return Err(CliError::Help),
            other => {
                if let Some(path) = other.strip_prefix("--metrics=") {
                    if path.is_empty() {
                        return Err(CliError::Invalid("--metrics=: needs a file path".into()));
                    }
                    metrics = Some(PathBuf::from(path));
                } else if let Some(path) = other.strip_prefix("--checkpoint=") {
                    if path.is_empty() {
                        return Err(CliError::Invalid("--checkpoint=: needs a file path".into()));
                    }
                    checkpoint = Some(PathBuf::from(path));
                } else {
                    return Err(CliError::Invalid(format!(
                        "unknown argument `{other}` (try --help)"
                    )));
                }
            }
        }
    }
    if kernel.is_some() && scenario.is_none() && !list_scenarios {
        return Err(CliError::Invalid(
            "--kernel applies to scenario runs only; combine it with --scenario".into(),
        ));
    }
    if stream && scenario.is_none() && !list_scenarios {
        return Err(CliError::Invalid(
            "--stream applies to scenario runs only; combine it with --scenario".into(),
        ));
    }
    if metrics.is_some() && scenario.is_none() && !list_scenarios && check_metrics.is_none() {
        return Err(CliError::Invalid(
            "--metrics applies to scenario runs only; combine it with --scenario".into(),
        ));
    }
    if scenario.is_none() && !list_scenarios && check_metrics.is_none() {
        for (set, flag) in [
            (
                failure_policy != FailurePolicy::FailFast,
                "--failure-policy",
            ),
            (shards.is_some(), "--shards"),
            (sync_window.is_some(), "--sync-window"),
            (chaos.is_some(), "--chaos"),
            (checkpoint.is_some(), "--checkpoint"),
            (resume.is_some(), "--resume"),
        ] {
            if set {
                return Err(CliError::Invalid(format!(
                    "{flag} applies to scenario runs only; combine it with --scenario"
                )));
            }
        }
    }
    if allow_truncated && check_metrics.is_none() {
        return Err(CliError::Invalid(
            "--allow-truncated applies to NDJSON validation only; \
             combine it with --check-metrics"
                .into(),
        ));
    }
    Ok(Cli {
        config,
        out_dir,
        scenario,
        list_scenarios,
        stream,
        explicit_horizon,
        kernel,
        shards,
        sync_window,
        metrics,
        check_metrics,
        allow_truncated,
        failure_policy,
        chaos,
        checkpoint,
        resume,
    })
}

/// The Example 1 phase diagram regenerated alongside the reports when
/// `--out-dir` is given: the Theorem 1 region over `(λ₀, γ)` at `U_s = 0.5`,
/// `µ = 1`, sharing the CLI's seed / replication / jobs budget.
fn phase_diagram(config: &ExperimentConfig) -> engine::PhaseDiagram {
    let spec = GridSpec {
        lambda0: Axis::linspace("λ0", 0.4, 2.4, 6),
        mu: Axis::fixed("µ", 1.0),
        gamma: Axis::new("γ", vec![0.8, 1.25, 2.0, 4.0, 8.0]),
        pieces: vec![1],
    };
    let engine_config = EngineConfig::default()
        .with_replications(config.replications)
        .with_horizon(config.horizon)
        .with_master_seed(config.seed)
        .with_jobs(config.threads)
        .with_progress(config.progress);
    Session::builder()
        .config(engine_config)
        .workload(Workload::grid(&spec, |_k, mu, gamma, lambda0| {
            scenario::example1(lambda0, 0.5, mu, gamma).ok()
        }))
        .build()
        .expect("a valid phase-diagram session")
        .run()
        .into_grid()
        .expect("a grid workload")
}

fn main() -> ExitCode {
    let cli = match parse_cli() {
        Ok(cli) => cli,
        Err(CliError::Help) => {
            println!("{USAGE}");
            return ExitCode::SUCCESS;
        }
        Err(CliError::Invalid(message)) => {
            eprintln!("{message}");
            eprintln!("{USAGE}");
            return ExitCode::FAILURE;
        }
    };
    if let Some(path) = &cli.check_metrics {
        return check_metrics_file(path, cli.allow_truncated);
    }
    if cli.list_scenarios {
        let registry = Registry::builtin();
        for spec in registry.iter() {
            println!(
                "{:20}  K={:<3} {}",
                spec.name, spec.num_pieces, spec.description
            );
        }
        return ExitCode::SUCCESS;
    }
    if let Some(which) = &cli.scenario {
        return run_scenario(which, &cli);
    }

    let config = cli.config;
    eprintln!(
        "running all experiments: horizon {}, replications {}, jobs {}, seed {:#x}",
        config.horizon, config.replications, config.threads, config.seed
    );

    let reports = experiments::run_all(&config);
    for report in &reports {
        println!("==================== {} ====================", report.id);
        println!("{report}");
    }

    if let Some(dir) = cli.out_dir {
        if let Err(error) = write_artifacts(&dir, &config, &reports) {
            eprintln!("failed to write artifacts into {}: {error}", dir.display());
            return ExitCode::FAILURE;
        }
        eprintln!("artifacts written to {}", dir.display());
    }
    ExitCode::SUCCESS
}

/// Validates a metrics NDJSON file and reports its summary (`--check-metrics`).
fn check_metrics_file(path: &std::path::Path, allow_truncated: bool) -> ExitCode {
    let text = match std::fs::read_to_string(path) {
        Ok(text) => text,
        Err(error) => {
            eprintln!("cannot read {}: {error}", path.display());
            return ExitCode::FAILURE;
        }
    };
    let options = ndjson::ValidateOptions { allow_truncated };
    match ndjson::validate_with(&text, &options) {
        Ok(summary) => {
            let status = if summary.truncated { "TRUNCATED" } else { "OK" };
            println!(
                "{} {status}: {} scenario(s), {} replication(s) ({} metered, {} failed) \
                 on {} worker(s), {} events, {} transfers",
                path.display(),
                summary.scenarios,
                summary.replications,
                summary.metered,
                summary.failed,
                summary.workers,
                summary.total_events,
                summary.total_transfers
            );
            ExitCode::SUCCESS
        }
        Err(error) => {
            eprintln!("{} INVALID: {error}", path.display());
            ExitCode::FAILURE
        }
    }
}

/// Runs a scenario with its replication stream wrapped in a [`MetricsSink`]:
/// `inner` still sees every record (progress keeps working), while the NDJSON
/// telemetry export lands in `path` and a human summary on stderr.
fn run_metered<S: ReplicationSink + Send>(
    spec: &ScenarioSpec,
    options: &ScenarioRunOptions,
    inner: S,
    path: &std::path::Path,
) -> Result<ScenarioRunReport, String> {
    let file = std::fs::File::create(path)
        .map_err(|error| format!("cannot create {}: {error}", path.display()))?;
    let mut sink = MetricsSink::new(inner, std::io::BufWriter::new(file));
    let report = registry::run_with_sink(spec, options, &mut sink)
        .map_err(|error| format!("scenario `{}` failed: {error}", spec.name))?;
    let (_, writer) = sink.into_parts();
    writer
        .into_inner()
        .map_err(|error| format!("cannot flush {}: {error}", path.display()))?;
    eprintln!("metrics written to {}", path.display());
    Ok(report)
}

/// Executes one registry scenario (a JSON file or a built-in name) on the
/// engine's agent backend and prints its deterministic report.
fn run_scenario(which: &str, cli: &Cli) -> ExitCode {
    let registry = Registry::builtin();
    let spec = match registry.resolve(which) {
        Ok(spec) => spec,
        Err(message) => {
            eprintln!("{message}");
            return ExitCode::FAILURE;
        }
    };
    let options = ScenarioRunOptions {
        replications: cli.config.replications,
        jobs: cli.config.threads,
        seed: cli.config.seed,
        horizon_override: cli.explicit_horizon,
        kernel_override: cli.kernel,
        shards_override: cli.shards,
        sync_window_override: cli.sync_window,
        progress: cli.config.progress,
        metrics: cli.metrics.is_some(),
        failure_policy: cli.failure_policy,
        faults: cli.chaos.clone(),
        checkpoint: cli.checkpoint.clone().map(CheckpointSpec::new),
        resume: cli.resume.clone(),
    };
    eprintln!(
        "running scenario `{}`: horizon {}, replications {}, jobs {}, seed {:#x}",
        spec.name,
        options.horizon_override.unwrap_or(spec.horizon),
        options.replications,
        options.jobs,
        options.seed
    );
    // `--stream` routes the run through an explicit replication sink (the
    // engine's built-in progress counter); the batch path is the same
    // streaming machinery with a null sink, so the report is byte-identical
    // either way — CI diffs the two. The explicit sink already reports, so
    // the session's internal progress counter is switched off to avoid
    // doubled lines under `--progress --stream`. `--metrics` wraps either
    // sink in a `MetricsSink`, which meters replications into an NDJSON
    // file without touching the run itself.
    let result = match (&cli.metrics, cli.stream) {
        (Some(path), true) => run_metered(
            &spec,
            &ScenarioRunOptions {
                progress: false,
                ..options
            },
            ProgressSink::new(format!("scenario {}", spec.name)),
            path,
        ),
        (Some(path), false) => run_metered(&spec, &options, NullSink, path),
        (None, true) => {
            let mut sink = ProgressSink::new(format!("scenario {}", spec.name));
            registry::run_with_sink(
                &spec,
                &ScenarioRunOptions {
                    progress: false,
                    ..options
                },
                &mut sink,
            )
            .map_err(|error| format!("scenario `{}` failed: {error}", spec.name))
        }
        (None, false) => registry::run(&spec, &options)
            .map_err(|error| format!("scenario `{}` failed: {error}", spec.name)),
    };
    let report = match result {
        Ok(report) => report,
        Err(message) => {
            eprintln!("{message}");
            return ExitCode::FAILURE;
        }
    };
    let rendered = report.render();
    println!("{rendered}");
    if let Some(dir) = &cli.out_dir {
        let path = dir.join(format!("scenario_{}.txt", spec.name));
        if let Err(error) =
            std::fs::create_dir_all(dir).and_then(|()| std::fs::write(&path, &rendered))
        {
            eprintln!("failed to write {}: {error}", path.display());
            return ExitCode::FAILURE;
        }
        eprintln!("scenario report written to {}", path.display());
    }
    if report.failures.is_empty() {
        ExitCode::SUCCESS
    } else {
        // The run completed under a quarantine/retry policy but lost
        // replications: the report above is still valid for the survivors,
        // and the distinct exit status lets CI and scripts notice.
        summarise_failures(&report.failures);
        ExitCode::from(QUARANTINED_FAILURES)
    }
}

/// Exit status of a scenario run that finished with quarantined
/// replication failures (distinct from 1, the status of a run that could
/// not execute at all).
const QUARANTINED_FAILURES: u8 = 3;

/// Prints the per-replication failure summary on stderr: one line per
/// quarantined replication with its stream key, attempt count, and payload.
fn summarise_failures(failures: &[ReplicationFailure]) {
    eprintln!(
        "{} replication(s) failed and were quarantined:",
        failures.len()
    );
    for f in failures {
        eprintln!(
            "  scenario {} (id {}) replication {}: {} attempt(s) — {}",
            f.scenario_index, f.scenario_id, f.replication, f.attempts, f.payload
        );
    }
}

fn write_artifacts(
    dir: &std::path::Path,
    config: &ExperimentConfig,
    reports: &[p2p_stability::workload::ExperimentReport],
) -> std::io::Result<()> {
    std::fs::create_dir_all(dir)?;
    for report in reports {
        std::fs::write(dir.join(format!("{}.txt", report.id)), report.render())?;
    }

    let diagram = phase_diagram(config);
    engine::artifact::write_phase(dir, "phase", &diagram)?;
    std::fs::write(dir.join("phase.txt"), diagram.render())?;

    // The E1 load sweep as machine-readable engine outcomes (the same
    // loads the E1.txt report in this directory describes).
    let scenarios: Vec<engine::Scenario> = experiments::EXAMPLE1_LOADS
        .iter()
        .enumerate()
        .map(|(i, &load)| {
            engine::Scenario::new(
                i as u64,
                format!("load={load}"),
                scenario::example1_at_load(load, 1.0, 1.0, 2.0).expect("valid parameters"),
            )
        })
        .collect();
    let engine_config = EngineConfig::default()
        .with_replications(config.replications)
        .with_horizon(config.horizon)
        .with_master_seed(config.seed)
        .with_jobs(config.threads)
        .with_progress(config.progress);
    let outcomes = Session::builder()
        .config(engine_config)
        .workload(Workload::ctmc(scenarios))
        .build()
        .expect("a valid E1 sweep session")
        .run()
        .into_ctmc()
        .expect("a CTMC workload");
    engine::artifact::write_outcomes(dir, "example1_sweep", &outcomes)?;
    Ok(())
}
