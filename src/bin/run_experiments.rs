//! Regenerates every experiment report (E1–E12) in one go.
//!
//! ```text
//! cargo run --release --bin run_experiments          # full budget
//! cargo run --release --bin run_experiments -- quick # reduced budget
//! ```
//!
//! The same reports are printed by the individual `cargo bench` targets; this
//! binary is the convenient way to refresh `EXPERIMENTS.md`.

use p2p_stability::workload::experiments::{self, ExperimentConfig};

fn main() {
    let quick = std::env::args().any(|a| a == "quick");
    let config = if quick { ExperimentConfig::quick() } else { ExperimentConfig::full() };
    eprintln!(
        "running all experiments with horizon {} (threads {}, seed {:#x})",
        config.horizon, config.threads, config.seed
    );
    for report in experiments::run_all(&config) {
        println!("==================== {} ====================", report.id);
        println!("{report}");
    }
}
