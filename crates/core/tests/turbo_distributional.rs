//! Distributional differential test: the turbo kernel against the
//! event-driven kernel.
//!
//! The turbo kernel intentionally breaks draw parity (alias-table arrivals,
//! pool-based uploader and departure sampling), so byte-equality of
//! trajectories — the contract `kernel_equivalence.rs` pins between the scan
//! and event kernels — cannot hold. What must hold instead is *statistical*
//! equality: over an ensemble of replications of the same scenario, the two
//! kernels sample the same stochastic process, so their replication means of
//! every observable agree within sampling noise.
//!
//! For each scenario (randomized around flash crowds, retry speed-up,
//! multi-seed starts, and a plain stable swarm) this test runs `N`
//! replications per kernel and demands overlap of generous confidence
//! intervals on: mean sojourn time, final population, final watch-piece
//! copies, and the final Fig.-2 group counts. Tolerances are 5 combined
//! standard errors plus a small absolute floor — loose enough for a
//! deterministic, non-flaky pass (all seeds fixed), tight enough that a
//! mis-weighted sampler fails immediately (checked by construction during
//! development: biasing the alias table or the boosted-pool coin makes
//! several scenarios fail).

use pieceset::{PieceId, PieceSet};
use rand::rngs::StdRng;
use rand::SeedableRng;
use swarm::metrics::SimResult;
use swarm::policy::RandomUseful;
use swarm::sim::{AgentConfig, AgentSwarm, FlashCrowd, KernelKind, SimScratch};
use swarm::SwarmParams;

const REPLICATIONS: u64 = 24;

/// Mean and standard error of a sample.
struct Moments {
    mean: f64,
    se: f64,
}

fn moments(samples: &[f64]) -> Moments {
    let n = samples.len() as f64;
    let mean = samples.iter().sum::<f64>() / n;
    let var = samples.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / (n - 1.0);
    Moments {
        mean,
        se: (var / n).sqrt(),
    }
}

/// Asserts that two replication ensembles of one observable agree within
/// five combined standard errors (plus an absolute floor for observables
/// that sit near zero).
fn assert_compatible(name: &str, scenario: &str, a: &[f64], b: &[f64]) {
    let (ma, mb) = (moments(a), moments(b));
    let tolerance = 5.0 * (ma.se * ma.se + mb.se * mb.se).sqrt() + 1.0;
    assert!(
        (ma.mean - mb.mean).abs() <= tolerance,
        "{scenario}/{name}: event mean {} vs turbo mean {} exceeds tolerance {}",
        ma.mean,
        mb.mean,
        tolerance,
    );
}

struct Scenario {
    name: &'static str,
    params: SwarmParams,
    config: AgentConfig,
    initial: Vec<PieceSet>,
    flash: Vec<FlashCrowd>,
    horizon: f64,
}

/// One observable vector per ensemble: every metric of every replication.
#[derive(Default)]
struct Ensemble {
    sojourn_mean: Vec<f64>,
    final_population: Vec<f64>,
    watch_copies: Vec<f64>,
    one_club: Vec<f64>,
    infected_and_gifted: Vec<f64>,
    departures: Vec<f64>,
}

impl Ensemble {
    fn push(&mut self, result: &SimResult) {
        let last = result.final_snapshot();
        self.sojourn_mean.push(result.sojourns.mean_sojourn());
        self.final_population.push(last.total_peers as f64);
        self.watch_copies.push(last.watch_piece_copies as f64);
        self.one_club.push(last.groups.one_club as f64);
        self.infected_and_gifted
            .push((last.groups.infected + last.groups.gifted) as f64);
        self.departures.push(result.sojourns.departures as f64);
    }
}

fn run_ensemble(scenario: &Scenario, kernel: KernelKind, seed_base: u64) -> Ensemble {
    let config = AgentConfig {
        kernel,
        ..scenario.config
    };
    let sim = AgentSwarm::with_config(scenario.params.clone(), config, Box::new(RandomUseful))
        .expect("valid configuration");
    let mut scratch = SimScratch::new();
    let mut ensemble = Ensemble::default();
    for replication in 0..REPLICATIONS {
        let mut rng = StdRng::seed_from_u64(seed_base ^ (replication * 0x9E37_79B9));
        let result = sim
            .run_with_scratch(
                &scenario.initial,
                &scenario.flash,
                scenario.horizon,
                &mut rng,
                &mut scratch,
            )
            .expect("valid scenario");
        assert!(!result.truncated, "budget must cover the horizon");
        for snap in &result.snapshots {
            assert_eq!(snap.groups.total(), snap.total_peers);
        }
        ensemble.push(&result);
        scratch.recycle(result);
    }
    ensemble
}

fn scenarios() -> Vec<Scenario> {
    let mut out = Vec::new();

    // A plain stable swarm (Example 1 regime, K = 2).
    out.push(Scenario {
        name: "stable-base",
        params: SwarmParams::builder(2)
            .seed_rate(2.0)
            .contact_rate(1.0)
            .seed_departure_rate(2.0)
            .fresh_arrivals(1.5)
            .build()
            .unwrap(),
        config: AgentConfig::default(),
        initial: Vec::new(),
        flash: Vec::new(),
        horizon: 200.0,
    });

    // A stable swarm hit by an empty-handed flash crowd mid-run.
    out.push(Scenario {
        name: "flash-crowd",
        params: SwarmParams::builder(2)
            .seed_rate(1.5)
            .contact_rate(1.0)
            .seed_departure_rate(3.0)
            .fresh_arrivals(0.8)
            .build()
            .unwrap(),
        config: AgentConfig {
            snapshot_interval: 5.0,
            ..Default::default()
        },
        initial: Vec::new(),
        flash: vec![FlashCrowd {
            time: 60.0,
            count: 120,
            pieces: PieceSet::empty(),
        }],
        horizon: 180.0,
    });

    // Section VIII-C retry speed-up from a one-club start: exercises the
    // boosted pools, where the kernels' sampling strategies differ most.
    out.push(Scenario {
        name: "retry-speedup",
        params: SwarmParams::builder(2)
            .seed_rate(0.6)
            .contact_rate(1.0)
            .seed_departure_rate(3.0)
            .fresh_arrivals(1.0)
            .arrival(PieceSet::singleton(PieceId::new(0)), 0.3)
            .build()
            .unwrap(),
        config: AgentConfig {
            retry_speedup: 8.0,
            ..Default::default()
        },
        initial: vec![PieceSet::singleton(PieceId::new(1)); 40],
        flash: Vec::new(),
        horizon: 160.0,
    });

    // Multi-seed start with slow departures: exercises the seed pool from a
    // populated state (gifted arrivals keep all Fig.-2 groups non-trivial).
    out.push(Scenario {
        name: "multi-seed",
        params: SwarmParams::builder(3)
            .seed_rate(0.4)
            .contact_rate(1.0)
            .seed_departure_rate(1.5)
            .fresh_arrivals(1.2)
            .arrival(PieceSet::singleton(PieceId::new(0)), 0.4)
            .build()
            .unwrap(),
        config: AgentConfig::default(),
        initial: {
            let mut peers = vec![PieceSet::full(3); 10];
            peers.extend(std::iter::repeat_n(PieceSet::empty(), 30));
            peers
        },
        flash: Vec::new(),
        horizon: 160.0,
    });

    out
}

#[test]
fn turbo_matches_event_kernel_distributionally() {
    for (i, scenario) in scenarios().iter().enumerate() {
        let seed_base = 0xD1F5_0000 + (i as u64) * 0x0101;
        let event = run_ensemble(scenario, KernelKind::EventDriven, seed_base);
        let turbo = run_ensemble(scenario, KernelKind::Turbo, seed_base);
        assert_compatible(
            "mean-sojourn",
            scenario.name,
            &event.sojourn_mean,
            &turbo.sojourn_mean,
        );
        assert_compatible(
            "final-population",
            scenario.name,
            &event.final_population,
            &turbo.final_population,
        );
        assert_compatible(
            "watch-copies",
            scenario.name,
            &event.watch_copies,
            &turbo.watch_copies,
        );
        assert_compatible("one-club", scenario.name, &event.one_club, &turbo.one_club);
        assert_compatible(
            "infected+gifted",
            scenario.name,
            &event.infected_and_gifted,
            &turbo.infected_and_gifted,
        );
        assert_compatible(
            "departures",
            scenario.name,
            &event.departures,
            &turbo.departures,
        );
    }
}

#[test]
fn turbo_handles_the_legacy_scan_kernel_scenarios_too() {
    // Cheap sanity: the scan kernel ensemble is also distributionally
    // compatible with turbo on one scenario (transitively implied by the
    // byte-parity test, but cheap to check directly).
    let scenario = &scenarios()[0];
    let scan = run_ensemble(scenario, KernelKind::LegacyScan, 0xBEEF);
    let turbo = run_ensemble(scenario, KernelKind::Turbo, 0xBEEF);
    assert_compatible(
        "final-population",
        scenario.name,
        &scan.final_population,
        &turbo.final_population,
    );
}
