//! Distributional differential test: the coded event kernel against the
//! legacy standalone `CodedSwarmSim`.
//!
//! The coded kernel (`KernelKind::Coded`) runs the Section VIII-B dynamics
//! under the shared driver loop with alias-table arrival draws, a
//! dimension-only Bernoulli fast path for fixed-seed uploads, and pool-based
//! departures — so its draw *sequence* differs from the legacy simulator's
//! and byte-equality of trajectories cannot hold. What must hold is
//! *statistical* equality: both simulate the same continuous-time Markov
//! process over subspace-valued peer states, so over replication ensembles
//! of the same coded scenario every observable's replication mean must agree
//! within sampling noise.
//!
//! For each scenario this test runs `N` replications per simulator and
//! demands overlap of generous confidence intervals (five combined standard
//! errors plus a small absolute floor, the same contract as
//! `turbo_distributional.rs`) on: final population, departures, useful
//! transfers, useless contacts, final decoder count, final mean dimension,
//! and every bin of the final dimension histogram. Tolerances were checked
//! by construction during development: biasing the seed-upload Bernoulli
//! (e.g. using `q^{dim−K−1}`) or dropping the self-contact rejection makes
//! several scenarios fail.

use rand::rngs::StdRng;
use rand::SeedableRng;
use swarm::coded::{CodedParams, CodedSwarmSim};
use swarm::sim::{AgentConfig, AgentSwarm, KernelKind};
use swarm::SwarmParams;

const REPLICATIONS: u64 = 20;

/// Mean and standard error of a sample.
struct Moments {
    mean: f64,
    se: f64,
}

fn moments(samples: &[f64]) -> Moments {
    let n = samples.len() as f64;
    let mean = samples.iter().sum::<f64>() / n;
    let var = samples.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / (n - 1.0);
    Moments {
        mean,
        se: (var / n).sqrt(),
    }
}

fn assert_compatible(name: &str, scenario: &str, legacy: &[f64], kernel: &[f64]) {
    let (ml, mk) = (moments(legacy), moments(kernel));
    let tolerance = 5.0 * (ml.se * ml.se + mk.se * mk.se).sqrt() + 1.0;
    assert!(
        (ml.mean - mk.mean).abs() <= tolerance,
        "{scenario}/{name}: legacy mean {} vs kernel mean {} exceeds tolerance {}",
        ml.mean,
        mk.mean,
        tolerance,
    );
}

struct Scenario {
    name: &'static str,
    params: CodedParams,
    horizon: f64,
}

/// One observable vector per ensemble: every metric of every replication.
struct Ensemble {
    final_population: Vec<f64>,
    departures: Vec<f64>,
    useful_transfers: Vec<f64>,
    useless_contacts: Vec<f64>,
    decoders: Vec<f64>,
    mean_dimension: Vec<f64>,
    /// One sample vector per dimension bin `0..=K`.
    dimension_bins: Vec<Vec<f64>>,
}

impl Ensemble {
    fn new(k: usize) -> Self {
        Ensemble {
            final_population: Vec::new(),
            departures: Vec::new(),
            useful_transfers: Vec::new(),
            useless_contacts: Vec::new(),
            decoders: Vec::new(),
            mean_dimension: Vec::new(),
            dimension_bins: vec![Vec::new(); k + 1],
        }
    }

    #[allow(clippy::too_many_arguments)]
    fn push(
        &mut self,
        population: u64,
        departures: u64,
        useful: u64,
        useless: u64,
        decoders: u64,
        mean_dimension: f64,
        histogram: &[u64],
    ) {
        self.final_population.push(population as f64);
        self.departures.push(departures as f64);
        self.useful_transfers.push(useful as f64);
        self.useless_contacts.push(useless as f64);
        self.decoders.push(decoders as f64);
        self.mean_dimension.push(mean_dimension);
        assert_eq!(histogram.len(), self.dimension_bins.len());
        for (bin, &count) in self.dimension_bins.iter_mut().zip(histogram) {
            bin.push(count as f64);
        }
    }
}

fn run_legacy(scenario: &Scenario, seed_base: u64) -> Ensemble {
    let k = scenario.params.base.num_pieces();
    let sim = CodedSwarmSim::new(scenario.params.clone()).snapshot_interval(10.0);
    let mut ensemble = Ensemble::new(k);
    for replication in 0..REPLICATIONS {
        let mut rng = StdRng::seed_from_u64(seed_base ^ (replication * 0x9E37_79B9));
        let result = sim.run(scenario.horizon, &mut rng);
        let last = result.snapshots.last().expect("snapshots recorded");
        ensemble.push(
            last.total_peers,
            result.departures,
            result.useful_transfers,
            result.useless_contacts,
            last.decoders,
            last.mean_dimension,
            &result.final_dimensions,
        );
    }
    ensemble
}

fn run_kernel(scenario: &Scenario, seed_base: u64) -> Ensemble {
    let k = scenario.params.base.num_pieces();
    let sim = AgentSwarm::with_coded(
        scenario.params.clone(),
        AgentConfig {
            kernel: KernelKind::Coded,
            snapshot_interval: 10.0,
            ..Default::default()
        },
    )
    .expect("valid coded scenario");
    let mut ensemble = Ensemble::new(k);
    for replication in 0..REPLICATIONS {
        let mut rng = StdRng::seed_from_u64(seed_base ^ (replication * 0x9E37_79B9));
        let result = sim.run(&[], scenario.horizon, &mut rng);
        assert!(!result.truncated, "budget must cover the horizon");
        for snap in &result.snapshots {
            assert_eq!(snap.groups.total(), snap.total_peers, "groups partition");
        }
        let last = result.final_snapshot();
        let population: u64 = result.final_dimensions.iter().sum();
        assert_eq!(population, last.total_peers, "histogram partitions peers");
        ensemble.push(
            last.total_peers,
            result.sojourns.departures,
            result.transfers,
            result.unsuccessful_contacts,
            last.peer_seeds,
            result.mean_final_dimension(),
            &result.final_dimensions,
        );
    }
    ensemble
}

fn scenarios() -> Vec<Scenario> {
    let mut out = Vec::new();

    // The paper's headline gifted-arrival model well above the recurrence
    // threshold: GF(8), K = 3, f = 0.9 ≫ q²/((q−1)²K) ≈ 0.44.
    out.push(Scenario {
        name: "stable-gifts",
        params: CodedParams::gift_example(3, 8, 1.0, 0.9, 0.0, 1.0, f64::INFINITY).unwrap(),
        horizon: 250.0,
    });

    // No gifts, all knowledge from the fixed seed: exercises the
    // dimension-only Bernoulli fast path of the seed-upload handler.
    out.push(Scenario {
        name: "seed-fed",
        params: CodedParams::gift_example(3, 4, 0.8, 0.0, 0.6, 1.0, f64::INFINITY).unwrap(),
        horizon: 250.0,
    });

    // Finite γ: decoders dwell as peer seeds, exercising the departure pool
    // and non-zero decoder counts in the histograms.
    out.push(Scenario {
        name: "finite-gamma",
        params: CodedParams::gift_example(3, 8, 1.0, 0.6, 0.4, 1.0, 2.0).unwrap(),
        horizon: 220.0,
    });

    // Multi-dimensional gifts outside the closed-form d ∈ {0, 1} case:
    // half the arrivals carry two independent random coded pieces.
    out.push(Scenario {
        name: "double-gifts",
        params: {
            let base = SwarmParams::builder(4)
                .contact_rate(1.0)
                .fresh_arrivals(1.0)
                .seed_departure_rate(3.0)
                .build()
                .unwrap();
            CodedParams {
                base,
                field: swarm::netcoding::GaloisField::new(4).unwrap(),
                gift_dimensions: vec![(0, 0.5), (2, 0.5)],
            }
        },
        horizon: 220.0,
    });

    out
}

#[test]
fn coded_kernel_matches_legacy_simulator_distributionally() {
    for (i, scenario) in scenarios().iter().enumerate() {
        let seed_base = 0xC0DE_0000 + (i as u64) * 0x0101;
        let legacy = run_legacy(scenario, seed_base);
        let kernel = run_kernel(scenario, seed_base);
        assert_compatible(
            "final-population",
            scenario.name,
            &legacy.final_population,
            &kernel.final_population,
        );
        assert_compatible(
            "departures",
            scenario.name,
            &legacy.departures,
            &kernel.departures,
        );
        assert_compatible(
            "useful-transfers",
            scenario.name,
            &legacy.useful_transfers,
            &kernel.useful_transfers,
        );
        assert_compatible(
            "useless-contacts",
            scenario.name,
            &legacy.useless_contacts,
            &kernel.useless_contacts,
        );
        assert_compatible(
            "decoders",
            scenario.name,
            &legacy.decoders,
            &kernel.decoders,
        );
        assert_compatible(
            "mean-dimension",
            scenario.name,
            &legacy.mean_dimension,
            &kernel.mean_dimension,
        );
        for (d, (lb, kb)) in legacy
            .dimension_bins
            .iter()
            .zip(&kernel.dimension_bins)
            .enumerate()
        {
            assert_compatible(&format!("dim-histogram[{d}]"), scenario.name, lb, kb);
        }
    }
}

#[test]
fn coded_kernel_truncation_matches_event_loop_contract() {
    // The shared driver's max_events valve applies to the coded kernel like
    // any other: the run stops early and says so.
    let params = CodedParams::gift_example(3, 8, 2.0, 0.5, 0.5, 1.0, 2.0).unwrap();
    let sim = AgentSwarm::with_coded(
        params,
        AgentConfig {
            kernel: KernelKind::Coded,
            max_events: 300,
            snapshot_interval: 1.0,
            ..Default::default()
        },
    )
    .unwrap();
    let mut rng = StdRng::seed_from_u64(5);
    let result = sim.run(&[], 10_000.0, &mut rng);
    assert!(result.truncated);
    assert_eq!(result.events, 300);
    assert!(result.horizon < 10_000.0);
}
