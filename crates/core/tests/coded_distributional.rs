//! Distributional differential tests of the coded kernels: the coded event
//! kernel and the bitsliced coded-turbo kernel against the legacy
//! standalone `CodedSwarmSim` — a three-way battery over `GF(2)`.
//!
//! The coded kernel (`KernelKind::Coded`) runs the Section VIII-B dynamics
//! under the shared driver loop with alias-table arrival draws, a
//! dimension-only Bernoulli fast path for fixed-seed uploads, and pool-based
//! departures; the coded-turbo kernel (`KernelKind::CodedTurbo`) goes
//! further with lazy peers that never build a basis until a peer-to-peer
//! transfer needs one. Both therefore consume different draw *sequences*
//! than the legacy simulator and byte-equality of trajectories cannot hold.
//! What must hold is *statistical* equality: all three simulate the same
//! continuous-time Markov process over subspace-valued peer states, so over
//! replication ensembles of the same coded scenario every observable's
//! replication mean must agree within sampling noise.
//!
//! For each scenario the battery runs `N` replications per simulator and
//! demands overlap of generous confidence intervals (five combined standard
//! errors plus a small absolute floor, the same contract as
//! `turbo_distributional.rs`) on: final population, departures, useful
//! transfers, useless contacts, final decoder count, final mean dimension,
//! and every bin of the final dimension histogram. The battery's teeth are
//! not a claim: `distributional_battery_fails_under_biased_upload_bernoulli`
//! runs the same comparison against an ensemble whose seed-upload Bernoulli
//! is deliberately biased (success `1 − 4^{dim−K}` instead of
//! `1 − 2^{dim−K}`, i.e. the documented `q^{dim−K}` fault with the wrong
//! `q`) and asserts that the comparison REJECTS it.

use pieceset::PieceSet;
use rand::rngs::StdRng;
use rand::SeedableRng;
use swarm::coded::{CodedParams, CodedSwarmSim};
use swarm::sim::{AgentConfig, AgentSwarm, KernelKind};
use swarm::SwarmParams;

const REPLICATIONS: u64 = 20;

/// Mean and standard error of a sample.
struct Moments {
    mean: f64,
    se: f64,
}

fn moments(samples: &[f64]) -> Moments {
    let n = samples.len() as f64;
    let mean = samples.iter().sum::<f64>() / n;
    let var = samples.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / (n - 1.0);
    Moments {
        mean,
        se: (var / n).sqrt(),
    }
}

/// The battery's acceptance predicate: do two sample vectors agree within
/// five combined standard errors (plus a small absolute floor)?
fn compatible(a: &[f64], b: &[f64]) -> bool {
    let (ma, mb) = (moments(a), moments(b));
    let tolerance = 5.0 * (ma.se * ma.se + mb.se * mb.se).sqrt() + 1.0;
    (ma.mean - mb.mean).abs() <= tolerance
}

fn assert_compatible(name: &str, scenario: &str, reference: &[f64], candidate: &[f64]) {
    let (ml, mk) = (moments(reference), moments(candidate));
    let tolerance = 5.0 * (ml.se * ml.se + mk.se * mk.se).sqrt() + 1.0;
    assert!(
        compatible(reference, candidate),
        "{scenario}/{name}: reference mean {} vs candidate mean {} exceeds tolerance {}",
        ml.mean,
        mk.mean,
        tolerance,
    );
}

struct Scenario {
    name: &'static str,
    params: CodedParams,
    horizon: f64,
}

/// One observable vector per ensemble: every metric of every replication.
struct Ensemble {
    final_population: Vec<f64>,
    departures: Vec<f64>,
    useful_transfers: Vec<f64>,
    useless_contacts: Vec<f64>,
    decoders: Vec<f64>,
    mean_dimension: Vec<f64>,
    /// One sample vector per dimension bin `0..=K`.
    dimension_bins: Vec<Vec<f64>>,
}

impl Ensemble {
    fn new(k: usize) -> Self {
        Ensemble {
            final_population: Vec::new(),
            departures: Vec::new(),
            useful_transfers: Vec::new(),
            useless_contacts: Vec::new(),
            decoders: Vec::new(),
            mean_dimension: Vec::new(),
            dimension_bins: vec![Vec::new(); k + 1],
        }
    }

    #[allow(clippy::too_many_arguments)]
    fn push(
        &mut self,
        population: u64,
        departures: u64,
        useful: u64,
        useless: u64,
        decoders: u64,
        mean_dimension: f64,
        histogram: &[u64],
    ) {
        self.final_population.push(population as f64);
        self.departures.push(departures as f64);
        self.useful_transfers.push(useful as f64);
        self.useless_contacts.push(useless as f64);
        self.decoders.push(decoders as f64);
        self.mean_dimension.push(mean_dimension);
        assert_eq!(histogram.len(), self.dimension_bins.len());
        for (bin, &count) in self.dimension_bins.iter_mut().zip(histogram) {
            bin.push(count as f64);
        }
    }
}

fn run_legacy(scenario: &Scenario, seed_base: u64) -> Ensemble {
    let k = scenario.params.base.num_pieces();
    let sim = CodedSwarmSim::new(scenario.params.clone()).snapshot_interval(10.0);
    let mut ensemble = Ensemble::new(k);
    for replication in 0..REPLICATIONS {
        let mut rng = StdRng::seed_from_u64(seed_base ^ (replication * 0x9E37_79B9));
        let result = sim.run(scenario.horizon, &mut rng);
        let last = result.snapshots.last().expect("snapshots recorded");
        ensemble.push(
            last.total_peers,
            result.departures,
            result.useful_transfers,
            result.useless_contacts,
            last.decoders,
            last.mean_dimension,
            &result.final_dimensions,
        );
    }
    ensemble
}

fn run_kernel(scenario: &Scenario, seed_base: u64) -> Ensemble {
    run_agent_kernel(scenario, seed_base, KernelKind::Coded, &[])
}

/// Runs the scenario on one of the coded agent kernels (reference RREF or
/// bitsliced coded-turbo) and collects the ensemble, with structural checks
/// (group partition, histogram partition) on every replication.
fn run_agent_kernel(
    scenario: &Scenario,
    seed_base: u64,
    kernel: KernelKind,
    initial: &[PieceSet],
) -> Ensemble {
    let k = scenario.params.base.num_pieces();
    let config = AgentConfig {
        kernel,
        snapshot_interval: 10.0,
        ..Default::default()
    };
    let sim = match kernel {
        KernelKind::Coded => AgentSwarm::with_coded(scenario.params.clone(), config),
        KernelKind::CodedTurbo => AgentSwarm::with_coded_turbo(scenario.params.clone(), config),
        _ => panic!("not a coded kernel"),
    }
    .expect("valid coded scenario");
    let mut ensemble = Ensemble::new(k);
    for replication in 0..REPLICATIONS {
        let mut rng = StdRng::seed_from_u64(seed_base ^ (replication * 0x9E37_79B9));
        let result = sim.run(initial, scenario.horizon, &mut rng);
        assert!(!result.truncated, "budget must cover the horizon");
        for snap in &result.snapshots {
            assert_eq!(snap.groups.total(), snap.total_peers, "groups partition");
        }
        let last = result.final_snapshot();
        let population: u64 = result.final_dimensions.iter().sum();
        assert_eq!(population, last.total_peers, "histogram partitions peers");
        ensemble.push(
            last.total_peers,
            result.sojourns.departures,
            result.transfers,
            result.unsuccessful_contacts,
            last.peer_seeds,
            result.mean_final_dimension(),
            &result.final_dimensions,
        );
    }
    ensemble
}

/// Asserts every observable of the battery — including the dimension
/// histogram bin-by-bin — compatible between two ensembles.
fn assert_ensembles_compatible(scenario: &str, reference: &Ensemble, candidate: &Ensemble) {
    assert_compatible(
        "final-population",
        scenario,
        &reference.final_population,
        &candidate.final_population,
    );
    assert_compatible(
        "departures",
        scenario,
        &reference.departures,
        &candidate.departures,
    );
    assert_compatible(
        "useful-transfers",
        scenario,
        &reference.useful_transfers,
        &candidate.useful_transfers,
    );
    assert_compatible(
        "useless-contacts",
        scenario,
        &reference.useless_contacts,
        &candidate.useless_contacts,
    );
    assert_compatible(
        "decoders",
        scenario,
        &reference.decoders,
        &candidate.decoders,
    );
    assert_compatible(
        "mean-dimension",
        scenario,
        &reference.mean_dimension,
        &candidate.mean_dimension,
    );
    for (d, (rb, cb)) in reference
        .dimension_bins
        .iter()
        .zip(&candidate.dimension_bins)
        .enumerate()
    {
        assert_compatible(&format!("dim-histogram[{d}]"), scenario, rb, cb);
    }
}

/// Counts how many of the battery's observables two ensembles DISAGREE on —
/// the instrument of the teeth test.
fn incompatible_observables(a: &Ensemble, b: &Ensemble) -> usize {
    let mut failures = 0;
    for (x, y) in [
        (&a.final_population, &b.final_population),
        (&a.departures, &b.departures),
        (&a.useful_transfers, &b.useful_transfers),
        (&a.useless_contacts, &b.useless_contacts),
        (&a.decoders, &b.decoders),
        (&a.mean_dimension, &b.mean_dimension),
    ] {
        if !compatible(x, y) {
            failures += 1;
        }
    }
    for (x, y) in a.dimension_bins.iter().zip(&b.dimension_bins) {
        if !compatible(x, y) {
            failures += 1;
        }
    }
    failures
}

fn scenarios() -> Vec<Scenario> {
    let mut out = Vec::new();

    // The paper's headline gifted-arrival model well above the recurrence
    // threshold: GF(8), K = 3, f = 0.9 ≫ q²/((q−1)²K) ≈ 0.44.
    out.push(Scenario {
        name: "stable-gifts",
        params: CodedParams::gift_example(3, 8, 1.0, 0.9, 0.0, 1.0, f64::INFINITY).unwrap(),
        horizon: 250.0,
    });

    // No gifts, all knowledge from the fixed seed: exercises the
    // dimension-only Bernoulli fast path of the seed-upload handler.
    out.push(Scenario {
        name: "seed-fed",
        params: CodedParams::gift_example(3, 4, 0.8, 0.0, 0.6, 1.0, f64::INFINITY).unwrap(),
        horizon: 250.0,
    });

    // Finite γ: decoders dwell as peer seeds, exercising the departure pool
    // and non-zero decoder counts in the histograms.
    out.push(Scenario {
        name: "finite-gamma",
        params: CodedParams::gift_example(3, 8, 1.0, 0.6, 0.4, 1.0, 2.0).unwrap(),
        horizon: 220.0,
    });

    // Multi-dimensional gifts outside the closed-form d ∈ {0, 1} case:
    // half the arrivals carry two independent random coded pieces.
    out.push(Scenario {
        name: "double-gifts",
        params: {
            let base = SwarmParams::builder(4)
                .contact_rate(1.0)
                .fresh_arrivals(1.0)
                .seed_departure_rate(3.0)
                .build()
                .unwrap();
            CodedParams {
                base,
                field: swarm::netcoding::GaloisField::new(4).unwrap(),
                gift_dimensions: vec![(0, 0.5), (2, 0.5)],
            }
        },
        horizon: 220.0,
    });

    out
}

/// `GF(2)` scenarios for the three-way battery: the coded-turbo kernel only
/// accepts `q = 2`, so these cover the same dynamical regimes as
/// `scenarios()` with the binary field.
fn gf2_scenarios() -> Vec<Scenario> {
    let mut out = Vec::new();

    // Gifted arrivals above the GF(2) recurrence threshold
    // q²/((q−1)²K) = 4/K = 1 at K = 4 — f = 0.9 with no fixed seed keeps
    // the swarm churning near criticality.
    out.push(Scenario {
        name: "gf2-gifts",
        params: CodedParams::gift_example(4, 2, 1.0, 0.9, 0.0, 1.0, f64::INFINITY).unwrap(),
        horizon: 200.0,
    });

    // No gifts: every lazy peer's first dimension comes through the fixed
    // seed's Bernoulli fast path.
    out.push(Scenario {
        name: "gf2-seed-fed",
        params: CodedParams::gift_example(3, 2, 0.8, 0.0, 0.6, 1.0, f64::INFINITY).unwrap(),
        horizon: 200.0,
    });

    // Finite γ: decoders dwell as peer seeds and the departure pool churns.
    out.push(Scenario {
        name: "gf2-finite-gamma",
        params: CodedParams::gift_example(3, 2, 1.0, 0.6, 0.4, 1.0, 2.0).unwrap(),
        horizon: 200.0,
    });

    // Multi-dimensional gifts: half the arrivals carry two independent
    // random coded pieces, exercising the lazy gift-chain Bernoullis.
    out.push(Scenario {
        name: "gf2-double-gifts",
        params: {
            let base = SwarmParams::builder(4)
                .contact_rate(1.0)
                .fresh_arrivals(1.0)
                .seed_departure_rate(3.0)
                .build()
                .unwrap();
            CodedParams {
                base,
                field: swarm::netcoding::GaloisField::new(2).unwrap(),
                gift_dimensions: vec![(0, 0.5), (2, 0.5)],
            }
        },
        horizon: 200.0,
    });

    out
}

#[test]
fn coded_kernel_matches_legacy_simulator_distributionally() {
    for (i, scenario) in scenarios().iter().enumerate() {
        let seed_base = 0xC0DE_0000 + (i as u64) * 0x0101;
        let legacy = run_legacy(scenario, seed_base);
        let kernel = run_kernel(scenario, seed_base);
        assert_ensembles_compatible(scenario.name, &legacy, &kernel);
    }
}

#[test]
fn three_way_battery_agrees_on_gf2_scenarios() {
    // The tentpole differential: legacy simulator, reference coded kernel,
    // and bitsliced coded-turbo kernel compared pairwise on every observable
    // of every GF(2) scenario. Three independent implementations of the same
    // Markov process, three different draw sequences, one distribution.
    for (i, scenario) in gf2_scenarios().iter().enumerate() {
        let seed_base = 0xB17_0000 + (i as u64) * 0x0101;
        let legacy = run_legacy(scenario, seed_base);
        let coded = run_agent_kernel(scenario, seed_base, KernelKind::Coded, &[]);
        let turbo = run_agent_kernel(scenario, seed_base, KernelKind::CodedTurbo, &[]);
        assert_ensembles_compatible(scenario.name, &legacy, &coded);
        assert_ensembles_compatible(scenario.name, &legacy, &turbo);
        assert_ensembles_compatible(scenario.name, &coded, &turbo);
    }
}

#[test]
fn coded_turbo_matches_reference_kernel_with_unit_piece_populations() {
    // Initial populations of uncoded unit pieces exercise the coded-turbo
    // paths the legacy simulator cannot reach (it takes no initial
    // population): unit-lazy peers, pure-unit uploads drawn as masked random
    // words, and the unit-mask usefulness check. The reference kernel
    // absorbs the same unit rows into explicit bases, so the two must agree
    // distributionally.
    let scenario = Scenario {
        name: "gf2-unit-initial",
        params: CodedParams::gift_example(5, 2, 0.6, 0.3, 0.4, 1.0, 2.5).unwrap(),
        horizon: 150.0,
    };
    let mut initial = Vec::new();
    for i in 0..40u64 {
        // Mixed starting dimensions 0..=3 over K = 5 unit spans.
        let bits = [0b0, 0b1, 0b11, 0b10101, 0b110, 0b10010][i as usize % 6];
        initial.push(PieceSet::from_bits(bits));
    }
    let seed_base = 0x0141_7141;
    let coded = run_agent_kernel(&scenario, seed_base, KernelKind::Coded, &initial);
    let turbo = run_agent_kernel(&scenario, seed_base, KernelKind::CodedTurbo, &initial);
    assert_ensembles_compatible(scenario.name, &coded, &turbo);
}

#[test]
fn distributional_battery_fails_under_biased_upload_bernoulli() {
    // Teeth: the battery must REJECT a simulator whose upload Bernoulli is
    // biased. Running the reference kernel over GF(4) at identical rates IS
    // that fault injection — every dimension-only upload succeeds with
    // probability `1 − 4^{dim−K}` instead of `1 − 2^{dim−K}` (the
    // documented `q^{dim−K}` law with the wrong q), exactly the bug a
    // botched fast path would introduce. If the comparison passed anyway,
    // the tolerance would be too loose to pin anything.
    let turbo_scenario = Scenario {
        name: "teeth-gf2",
        params: CodedParams::gift_example(3, 2, 1.0, 0.0, 0.6, 1.0, 2.0).unwrap(),
        horizon: 200.0,
    };
    let biased_scenario = Scenario {
        name: "teeth-gf4",
        params: CodedParams::gift_example(3, 4, 1.0, 0.0, 0.6, 1.0, 2.0).unwrap(),
        horizon: 200.0,
    };
    let seed_base = 0x7EE7_0000;
    let turbo = run_agent_kernel(&turbo_scenario, seed_base, KernelKind::CodedTurbo, &[]);
    let biased = run_agent_kernel(&biased_scenario, seed_base, KernelKind::Coded, &[]);
    let failures = incompatible_observables(&turbo, &biased);
    assert!(
        failures > 0,
        "the battery accepted a biased upload Bernoulli — it has no teeth"
    );
}

#[test]
fn coded_kernel_truncation_matches_event_loop_contract() {
    // The shared driver's max_events valve applies to the coded kernel like
    // any other: the run stops early and says so.
    let params = CodedParams::gift_example(3, 8, 2.0, 0.5, 0.5, 1.0, 2.0).unwrap();
    let sim = AgentSwarm::with_coded(
        params,
        AgentConfig {
            kernel: KernelKind::Coded,
            max_events: 300,
            snapshot_interval: 1.0,
            ..Default::default()
        },
    )
    .unwrap();
    let mut rng = StdRng::seed_from_u64(5);
    let result = sim.run(&[], 10_000.0, &mut rng);
    assert!(result.truncated);
    assert_eq!(result.events, 300);
    assert!(result.horizon < 10_000.0);
}
