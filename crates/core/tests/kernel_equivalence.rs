//! Property test: the event-driven and legacy scan kernels are *draw
//! compatible* — on a shared RNG stream they must produce byte-identical
//! trajectories (snapshots, counters, sojourns, truncation), not merely
//! statistically similar ones.
//!
//! This is the contract that lets the event-driven kernel replace the scan
//! kernel without re-validating any experiment: every random draw happens at
//! the same point with the same distribution, and only the bookkeeping
//! differs.

use pieceset::{PieceId, PieceSet};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;
use swarm::policy;
use swarm::sim::{AgentConfig, AgentSwarm, FlashCrowd, KernelKind};
use swarm::{SwarmError, SwarmParams};

/// Everything that defines one randomized simulation setup.
#[derive(Debug, Clone)]
struct Setup {
    params: SwarmParams,
    config: AgentConfig,
    policy: &'static str,
    initial_club: usize,
    flash: Vec<FlashCrowd>,
    horizon: f64,
    seed: u64,
}

fn build_params(
    k: usize,
    us: f64,
    mu: f64,
    gamma_over_mu: Option<f64>,
    lambda0: f64,
    gifted: f64,
) -> Result<SwarmParams, SwarmError> {
    let mut b = SwarmParams::builder(k)
        .seed_rate(us)
        .contact_rate(mu)
        .fresh_arrivals(lambda0);
    if let Some(ratio) = gamma_over_mu {
        b = b.seed_departure_rate(ratio * mu);
    }
    if gifted > 0.0 {
        // A gifted class holding the watch piece, plus (when K > 1) one
        // holding the last piece, so every Fig.-2 group gets exercised.
        b = b.arrival(PieceSet::singleton(PieceId::new(0)), gifted);
        if k > 1 {
            b = b.arrival(PieceSet::singleton(PieceId::new(k - 1)), gifted * 0.5);
        }
    }
    b.build()
}

fn arb_setup() -> impl Strategy<Value = Setup> {
    let model = (
        1usize..=5,                                            // K
        0.0f64..2.0,                                           // U_s
        0.2f64..2.0,                                           // µ
        prop_oneof![Just(None), (1.1f64..6.0).prop_map(Some)], // γ/µ (None = ∞)
        0.2f64..2.5,                                           // λ0
        prop_oneof![Just(0.0), 0.1f64..0.6],                   // gifted arrival rate
        prop_oneof![Just(1.0), 2.0f64..10.0],                  // η
        0usize..60,                                            // initial one-club size
    );
    let budget = (
        prop_oneof![
            Just(u64::MAX),
            1_000u64..5_000 // small cap → exercises truncation
        ],
        proptest::collection::vec((1.0f64..100.0, 0usize..120), 0..3), // flash crowds
        40.0f64..120.0,                                                // horizon
        any::<u64>(),                                                  // RNG seed
        prop_oneof![
            Just("random-useful"),
            Just("rarest-first"),
            Just("sequential")
        ],
    );
    (model, budget).prop_map(
        |((k, us, mu, ratio, lambda0, mut gifted, eta, club), (cap, flash, horizon, seed, pol))| {
            if k == 1 && ratio.is_none() {
                // A gifted {1}-arrival in a one-piece file is an arriving
                // seed, which γ = ∞ forbids.
                gifted = 0.0;
            }
            let params =
                build_params(k, us, mu, ratio, lambda0, gifted).expect("valid by construction");
            let flash = flash
                .into_iter()
                .map(|(time, count)| FlashCrowd {
                    time,
                    count,
                    pieces: PieceSet::empty(),
                })
                .collect();
            Setup {
                params,
                config: AgentConfig {
                    retry_speedup: eta,
                    snapshot_interval: 7.5,
                    max_events: cap,
                    ..Default::default()
                },
                policy: pol,
                initial_club: club,
                flash,
                horizon,
                seed,
            }
        },
    )
}

fn run(setup: &Setup, kernel: KernelKind) -> swarm::metrics::SimResult {
    let config = AgentConfig {
        kernel,
        ..setup.config
    };
    let sim = AgentSwarm::with_config(
        setup.params.clone(),
        config,
        policy::by_name(setup.policy).expect("known policy"),
    )
    .expect("valid configuration");
    let club = setup.params.full_type().without(config.watch_piece);
    let initial = vec![club; setup.initial_club];
    let mut rng = StdRng::seed_from_u64(setup.seed);
    sim.run_with_schedule(&initial, &setup.flash, setup.horizon, &mut rng)
        .expect("valid schedule")
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn kernels_walk_identical_trajectories(setup in arb_setup()) {
        let event = run(&setup, KernelKind::EventDriven);
        let scan = run(&setup, KernelKind::LegacyScan);
        prop_assert_eq!(&event, &scan);
        // And the shared trajectory is internally consistent.
        for snap in &event.snapshots {
            prop_assert_eq!(snap.groups.total(), snap.total_peers);
        }
        prop_assert!(event.snapshots.len() >= 2);
    }
}
