//! Property-based tests of the swarm model's structural invariants:
//! transition rates (eq. 1), stability-region monotonicity, and the
//! relationship between the Lyapunov ingredients `E_C` / `H_C` and the state.

use pieceset::{PieceId, PieceSet, TypeSpace};
use proptest::prelude::*;
use swarm::lyapunov::LyapunovFunction;
use swarm::{rates, stability, SwarmParams, SwarmState};

fn arb_small_params() -> impl Strategy<Value = SwarmParams> {
    (
        2usize..=4,
        0.0f64..2.0,
        0.2f64..2.0,
        1.1f64..6.0,
        0.1f64..3.0,
    )
        .prop_map(|(k, us, mu, gamma_over_mu, lambda0)| {
            SwarmParams::builder(k)
                .seed_rate(us)
                .contact_rate(mu)
                .seed_departure_rate(gamma_over_mu * mu)
                .fresh_arrivals(lambda0)
                .build()
                .expect("valid parameters")
        })
}

fn state_from_counts(k: usize, counts: &[u32]) -> SwarmState {
    let space = TypeSpace::new(k).unwrap();
    let mut state = SwarmState::empty(&space);
    for (bits, &count) in counts.iter().enumerate().take(space.num_types()) {
        state.set_count(PieceSet::from_bits(bits as u64), count);
    }
    state
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn transfer_rates_are_bounded_by_upload_capacity(
        params in arb_small_params(),
        counts in proptest::collection::vec(0u32..8, 16),
    ) {
        let state = state_from_counts(params.num_pieces(), &counts);
        let total = rates::total_transfer_rate(&params, &state);
        prop_assert!(total >= 0.0);
        let capacity = params.seed_rate() + params.contact_rate() * state.total_peers() as f64;
        prop_assert!(total <= capacity + 1e-9, "total {total} exceeds capacity {capacity}");
    }

    #[test]
    fn transfer_rate_zero_without_holders_or_seed(
        counts in proptest::collection::vec(0u32..5, 16),
        lambda0 in 0.1f64..2.0,
    ) {
        // No fixed seed: a piece nobody holds can never be transferred.
        let params = SwarmParams::builder(3)
            .contact_rate(1.0)
            .seed_departure_rate(2.0)
            .fresh_arrivals(lambda0)
            .build()
            .unwrap();
        let space = TypeSpace::new(3).unwrap();
        let mut state = SwarmState::empty(&space);
        // Only allow types that avoid piece 3 (index 2).
        for (bits, &count) in counts.iter().enumerate().take(space.num_types()) {
            let c = PieceSet::from_bits(bits as u64);
            if !c.contains(PieceId::new(2)) {
                state.set_count(c, count);
            }
        }
        for (c, _) in state.occupied_types() {
            prop_assert_eq!(rates::transfer_rate(&params, &state, c, PieceId::new(2)), 0.0);
        }
    }

    #[test]
    fn departure_rate_never_exceeds_total_transfer_plus_seed_departures(
        params in arb_small_params(),
        counts in proptest::collection::vec(0u32..8, 16),
    ) {
        let state = state_from_counts(params.num_pieces(), &counts);
        let full = params.full_type();
        let mut sum_of_type_departures = 0.0;
        for (c, _) in state.occupied_types() {
            sum_of_type_departures += rates::departure_rate_from_type(&params, &state, c);
        }
        let expected = rates::total_transfer_rate(&params, &state)
            + params.seed_departure_rate() * f64::from(state.count(full));
        prop_assert!((sum_of_type_departures - expected).abs() <= 1e-9 * expected.max(1.0));
    }

    #[test]
    fn stability_monotone_in_gamma(params in arb_small_params()) {
        // Longer peer-seed dwell (smaller γ) never destabilises the system.
        let verdict = stability::classify(&params).verdict;
        if verdict.is_stable() {
            let slower = SwarmParams::builder(params.num_pieces())
                .seed_rate(params.seed_rate())
                .contact_rate(params.contact_rate())
                .seed_departure_rate(params.seed_departure_rate() * 0.5)
                .fresh_arrivals(params.arrival_rate(PieceSet::empty()))
                .build()
                .unwrap();
            prop_assert!(stability::classify(&slower).verdict.is_stable());
        }
    }

    #[test]
    fn stability_monotone_in_load(params in arb_small_params()) {
        // Reducing the arrival rate never destabilises the system.
        let verdict = stability::classify(&params).verdict;
        if verdict.is_stable() {
            let lighter = SwarmParams::builder(params.num_pieces())
                .seed_rate(params.seed_rate())
                .contact_rate(params.contact_rate())
                .seed_departure_rate(params.seed_departure_rate())
                .fresh_arrivals(params.arrival_rate(PieceSet::empty()) * 0.5)
                .build()
                .unwrap();
            prop_assert!(stability::classify(&lighter).verdict.is_stable());
        }
    }

    #[test]
    fn one_club_delta_is_the_binding_constraint(params in arb_small_params()) {
        // The remark after Theorem 1: Δ_S < 0 for all S iff it holds for the
        // one-club sets F − {k}; equivalently no other S produces a larger Δ.
        if params.mu_over_gamma() >= 1.0 {
            return Ok(());
        }
        let space = params.type_space();
        let worst_one_club = stability::one_club_deltas(&params)
            .unwrap()
            .into_iter()
            .map(|(_, d)| d)
            .fold(f64::NEG_INFINITY, f64::max);
        for s in space.iter_non_full() {
            let d = stability::delta(&params, s).unwrap();
            prop_assert!(d <= worst_one_club + 1e-9,
                "Δ_{} = {} exceeds the worst one-club Δ = {}", s.paper_notation(), d, worst_one_club);
        }
    }

    #[test]
    fn lyapunov_ingredients_match_state_counts(
        params in arb_small_params(),
        counts in proptest::collection::vec(0u32..8, 16),
    ) {
        let state = state_from_counts(params.num_pieces(), &counts);
        let w = LyapunovFunction::new(&params).unwrap();
        let space = params.type_space();
        for c in space.iter_non_full() {
            // E_C counts peers whose type is a subset of C.
            prop_assert_eq!(w.e(&state, c) as u64, state.count_subsets_of(c));
            // H_C is zero exactly when nobody can help type-C peers.
            let helpers = state.count_helpers_of(c);
            prop_assert_eq!(w.h(&state, c) == 0.0, helpers == 0);
        }
        // E_F equals the total population and W is finite and non-negative.
        prop_assert_eq!(w.e(&state, params.full_type()) as u64, state.total_peers());
        let value = w.value(&state);
        prop_assert!(value.is_finite() && value >= 0.0);
    }
}
