//! Validation battery for the sharded driver
//! (`crates/core/src/sim/sharded.rs`).
//!
//! Sharding one replication's population across per-shard clocks is exact
//! for arrivals, local contacts, and departures, but *relaxed* for
//! cross-shard contact timing (delivered at window boundaries) and the
//! fixed seed's clock (split by frozen weights). So the contract has two
//! halves, and this file pins both:
//!
//! 1. **Distributional equality.** Over an ensemble of replications, a
//!    sharded run samples the same process as the unsharded turbo kernel:
//!    replication means of every observable agree within five combined
//!    standard errors (the same tolerance `turbo_distributional.rs` uses
//!    between kernels). The battery's *teeth* are proven by construction:
//!    a deliberately biased exchange ([`ShardBias::DropRemote`]) must fail
//!    the same assertions.
//! 2. **Bit-identity across schedulers.** For a fixed
//!    `(seed, shards, sync_window)` the result is byte-identical at any
//!    `jobs` value, metered or not, and the per-shard counters satisfy
//!    the engine's partition identities shard by shard.
//!
//! A proptest additionally drives the synchronization window down to the
//! single-event scale and checks convergence to the unsharded law on
//! randomized scenarios, and a chaos case pins the deterministic panic
//! payload a failing shard propagates out of the worker pool.

use pieceset::{PieceId, PieceSet};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;
use swarm::metrics::SimResult;
use swarm::policy::RandomUseful;
use swarm::sim::{
    AgentConfig, AgentSwarm, FlashCrowd, KernelKind, ShardBias, ShardPlan, SimScratch,
};
use swarm::SwarmParams;
use telemetry::{Counter, CounterRecorder};

const REPLICATIONS: u64 = 24;

struct Moments {
    mean: f64,
    se: f64,
}

fn moments(samples: &[f64]) -> Moments {
    let n = samples.len() as f64;
    let mean = samples.iter().sum::<f64>() / n;
    let var = samples.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / (n - 1.0);
    Moments {
        mean,
        se: (var / n).sqrt(),
    }
}

/// How far apart two ensembles of one observable sit, in units of the
/// battery tolerance (five combined standard errors plus an absolute
/// floor): ≤ 1 is compatible, > 1 is a detected bias.
fn discrepancy(a: &[f64], b: &[f64]) -> f64 {
    let (ma, mb) = (moments(a), moments(b));
    let tolerance = 5.0 * (ma.se * ma.se + mb.se * mb.se).sqrt() + 1.0;
    (ma.mean - mb.mean).abs() / tolerance
}

fn assert_compatible(name: &str, scenario: &str, unsharded: &[f64], sharded: &[f64]) {
    let d = discrepancy(unsharded, sharded);
    assert!(
        d <= 1.0,
        "{scenario}/{name}: unsharded mean {} vs sharded mean {} \
         is {d:.2}× the battery tolerance",
        moments(unsharded).mean,
        moments(sharded).mean,
    );
}

struct Scenario {
    name: &'static str,
    params: SwarmParams,
    config: AgentConfig,
    initial: Vec<PieceSet>,
    flash: Vec<FlashCrowd>,
    horizon: f64,
}

#[derive(Default)]
struct Ensemble {
    sojourn_mean: Vec<f64>,
    final_population: Vec<f64>,
    watch_copies: Vec<f64>,
    one_club: Vec<f64>,
    infected_and_gifted: Vec<f64>,
    departures: Vec<f64>,
}

impl Ensemble {
    fn push(&mut self, result: &SimResult) {
        let last = result.final_snapshot();
        self.sojourn_mean.push(result.sojourns.mean_sojourn());
        self.final_population.push(last.total_peers as f64);
        self.watch_copies.push(last.watch_piece_copies as f64);
        self.one_club.push(last.groups.one_club as f64);
        self.infected_and_gifted
            .push((last.groups.infected + last.groups.gifted) as f64);
        self.departures.push(result.sojourns.departures as f64);
    }

    /// Every observable with its name, for teeth-hunting.
    fn observables(&self) -> [(&'static str, &[f64]); 6] {
        [
            ("mean-sojourn", &self.sojourn_mean),
            ("final-population", &self.final_population),
            ("watch-copies", &self.watch_copies),
            ("one-club", &self.one_club),
            ("infected+gifted", &self.infected_and_gifted),
            ("departures", &self.departures),
        ]
    }
}

fn turbo_sim(scenario: &Scenario) -> AgentSwarm {
    let config = AgentConfig {
        kernel: KernelKind::Turbo,
        ..scenario.config
    };
    AgentSwarm::with_config(scenario.params.clone(), config, Box::new(RandomUseful))
        .expect("valid configuration")
}

fn rep_rng(seed_base: u64, replication: u64) -> StdRng {
    StdRng::seed_from_u64(seed_base ^ (replication * 0x9E37_79B9))
}

fn run_unsharded(scenario: &Scenario, seed_base: u64) -> Ensemble {
    let sim = turbo_sim(scenario);
    let mut scratch = SimScratch::new();
    let mut ensemble = Ensemble::default();
    for replication in 0..REPLICATIONS {
        let mut rng = rep_rng(seed_base, replication);
        let result = sim
            .run_with_scratch(
                &scenario.initial,
                &scenario.flash,
                scenario.horizon,
                &mut rng,
                &mut scratch,
            )
            .expect("valid scenario");
        assert!(!result.truncated, "budget must cover the horizon");
        ensemble.push(&result);
        scratch.recycle(result);
    }
    ensemble
}

fn run_sharded(scenario: &Scenario, seed_base: u64, plan: &ShardPlan) -> Ensemble {
    let sim = turbo_sim(scenario);
    let mut ensemble = Ensemble::default();
    for replication in 0..REPLICATIONS {
        let mut rng = rep_rng(seed_base, replication);
        let result = sim
            .run_sharded(
                &scenario.initial,
                &scenario.flash,
                scenario.horizon,
                plan,
                &mut rng,
            )
            .expect("valid sharded scenario");
        assert!(!result.truncated, "budget must cover the horizon");
        for snap in &result.snapshots {
            assert_eq!(snap.groups.total(), snap.total_peers);
        }
        ensemble.push(&result);
    }
    ensemble
}

/// The turbo-battery scenarios the sharded driver supports (everything but
/// the retry speed-up, which sharding rejects by contract).
fn scenarios() -> Vec<Scenario> {
    vec![
        Scenario {
            name: "stable-base",
            params: SwarmParams::builder(2)
                .seed_rate(2.0)
                .contact_rate(1.0)
                .seed_departure_rate(2.0)
                .fresh_arrivals(1.5)
                .build()
                .unwrap(),
            config: AgentConfig::default(),
            initial: Vec::new(),
            flash: Vec::new(),
            horizon: 200.0,
        },
        Scenario {
            name: "flash-crowd",
            params: SwarmParams::builder(2)
                .seed_rate(1.5)
                .contact_rate(1.0)
                .seed_departure_rate(3.0)
                .fresh_arrivals(0.8)
                .build()
                .unwrap(),
            config: AgentConfig {
                snapshot_interval: 5.0,
                ..Default::default()
            },
            initial: Vec::new(),
            flash: vec![FlashCrowd {
                time: 60.0,
                count: 120,
                pieces: PieceSet::empty(),
            }],
            horizon: 180.0,
        },
        Scenario {
            name: "multi-seed",
            params: SwarmParams::builder(3)
                .seed_rate(0.4)
                .contact_rate(1.0)
                .seed_departure_rate(1.5)
                .fresh_arrivals(1.2)
                .arrival(PieceSet::singleton(PieceId::new(0)), 0.4)
                .build()
                .unwrap(),
            config: AgentConfig::default(),
            initial: {
                let mut peers = vec![PieceSet::full(3); 10];
                peers.extend(std::iter::repeat_n(PieceSet::empty(), 30));
                peers
            },
            flash: Vec::new(),
            horizon: 160.0,
        },
    ]
}

#[test]
fn sharded_matches_unsharded_distributionally() {
    let plan = ShardPlan::new(4, 0.25);
    for (i, scenario) in scenarios().iter().enumerate() {
        let seed_base = 0x5AAD_0000 + (i as u64) * 0x0101;
        let unsharded = run_unsharded(scenario, seed_base);
        let sharded = run_sharded(scenario, seed_base, &plan);
        for ((name, a), (_, b)) in unsharded.observables().iter().zip(&sharded.observables()) {
            assert_compatible(name, scenario.name, a, b);
        }
    }
}

#[test]
fn the_battery_detects_a_biased_exchange() {
    // Teeth: silently dropping cross-shard offers starves 3/4 of the
    // contact volume, so the same assertions that pass for the faithful
    // exchange must fail loudly here — otherwise the battery proves
    // nothing. Checked on the densest scenario.
    let scenario = &scenarios()[0];
    let seed_base = 0x5AAD_0000;
    let unsharded = run_unsharded(scenario, seed_base);
    let biased = run_sharded(
        scenario,
        seed_base,
        &ShardPlan::new(4, 0.25).with_bias(ShardBias::DropRemote),
    );
    let worst = unsharded
        .observables()
        .iter()
        .zip(&biased.observables())
        .map(|((_, a), (_, b))| discrepancy(a, b))
        .fold(0.0f64, f64::max);
    assert!(
        worst > 1.0,
        "a broken exchange slipped through the battery (worst discrepancy {worst:.2}× tolerance)"
    );
}

#[test]
fn sharded_runs_are_bit_identical_at_any_jobs() {
    let scenario = &scenarios()[1];
    let sim = turbo_sim(scenario);
    let run = |jobs: usize| {
        let mut rng = StdRng::seed_from_u64(0xB17_1DE7);
        sim.run_sharded(
            &scenario.initial,
            &scenario.flash,
            scenario.horizon,
            &ShardPlan::new(5, 0.5).with_jobs(jobs),
            &mut rng,
        )
        .expect("valid sharded run")
    };
    let reference = run(1);
    assert!(reference.events > 0);
    for jobs in [2, 4, 7] {
        assert_eq!(
            run(jobs),
            reference,
            "jobs={jobs} must replay the jobs=1 trajectory bit for bit"
        );
    }
    // Metering consumes no randomness: the metered run reproduces the
    // unmetered one exactly, at any jobs value, with identical counters.
    let metered = |jobs: usize| {
        let mut rng = StdRng::seed_from_u64(0xB17_1DE7);
        let mut recorders = vec![CounterRecorder::new(); 5];
        let result = sim
            .run_sharded_metered(
                &scenario.initial,
                &scenario.flash,
                scenario.horizon,
                &ShardPlan::new(5, 0.5).with_jobs(jobs),
                &mut rng,
                &mut recorders,
            )
            .expect("valid metered sharded run");
        (result, recorders)
    };
    let (result_1, counters_1) = metered(1);
    let (result_3, counters_3) = metered(3);
    assert_eq!(result_1, reference, "a recorder must never perturb the run");
    assert_eq!(result_3, reference);
    assert_eq!(
        counters_1, counters_3,
        "per-shard counters are scheduler-independent"
    );
}

#[test]
fn per_shard_counters_satisfy_the_partition_identities() {
    // Cross-shard contacts are attributed entirely to the destination, so
    // the engine's counter algebra holds on every shard in isolation —
    // not just after aggregation.
    let scenario = &scenarios()[2];
    let sim = turbo_sim(scenario);
    let shards = 4;
    let mut rng = StdRng::seed_from_u64(0xC0_47E5);
    let mut recorders = vec![CounterRecorder::new(); shards];
    let result = sim
        .run_sharded_metered(
            &scenario.initial,
            &scenario.flash,
            scenario.horizon,
            &ShardPlan::new(shards as u32, 0.25),
            &mut rng,
            &mut recorders,
        )
        .expect("valid metered sharded run");
    let mut events = 0;
    let mut useful = 0;
    let mut useless = 0;
    let mut departures = 0;
    for (shard, rec) in recorders.iter().enumerate() {
        let c = &rec.counters;
        assert!(
            c.get(Counter::Contacts) > 0,
            "shard {shard} saw no contacts — the split is degenerate"
        );
        assert_eq!(
            c.get(Counter::Contacts),
            c.get(Counter::UsefulTransfers) + c.get(Counter::UselessContacts),
            "shard {shard}: every contact is classified useful or useless"
        );
        events += c.event_total();
        useful += c.get(Counter::UsefulTransfers);
        useless += c.get(Counter::UselessContacts);
        departures += c.get(Counter::Departures);
    }
    assert_eq!(
        events, result.events,
        "shard event totals partition the run"
    );
    assert_eq!(useful, result.transfers);
    // `unsuccessful_contacts` has never included contacts against an empty
    // population (the kernels count those only in telemetry), and an empty
    // *shard* can be contacted mid-window, so the counter dominates.
    assert!(useless >= result.unsuccessful_contacts);
    assert_eq!(departures, result.sojourns.departures);
}

#[test]
fn an_injected_shard_panic_propagates_with_its_deterministic_payload() {
    let scenario = &scenarios()[0];
    let sim = turbo_sim(scenario);
    let plan = ShardPlan::new(4, 0.25).with_jobs(2).with_panic_in_shard(2);
    let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
        let mut rng = StdRng::seed_from_u64(7);
        sim.run_sharded(
            &scenario.initial,
            &scenario.flash,
            scenario.horizon,
            &plan,
            &mut rng,
        )
    }));
    let payload = outcome.expect_err("the injected fault must escape the worker pool");
    let message = payload
        .downcast_ref::<String>()
        .expect("a typed String payload");
    assert_eq!(message, "injected shard fault: panic in shard 2");
}

proptest! {
    // Deliberately few cases: each one runs two small Monte-Carlo
    // ensembles. The tolerance is wider than the fixed-seed battery's
    // (six combined SEs plus a floor of two) because proptest draws new
    // scenarios every run; at that width a false alarm is a ~1e-8 event
    // per case while a mis-weighted exchange still sits many tolerances
    // out.
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// Shrinking the synchronization window to the single-event scale
    /// reproduces the unsharded distribution: the only relaxed ingredients
    /// (frozen weights, boundary-batched delivery) refresh so often that
    /// their staleness vanishes.
    #[test]
    fn a_single_event_window_converges_to_the_unsharded_law(
        lambda0 in 1.0f64..2.0,
        us in 1.0f64..2.5,
        gamma in 1.5f64..3.0,
        shards in 2u32..6,
    ) {
        let scenario = Scenario {
            name: "proptest",
            params: SwarmParams::builder(2)
                .seed_rate(us)
                .contact_rate(1.0)
                .seed_departure_rate(gamma)
                .fresh_arrivals(lambda0)
                .build()
                .unwrap(),
            config: AgentConfig::default(),
            initial: vec![PieceSet::empty(); 20],
            flash: Vec::new(),
            horizon: 60.0,
        };
        // ~20 peers at µ = 1 means ≳20 events per unit time, so a 0.05
        // window holds about one event per shard per round.
        let plan = ShardPlan::new(shards, 0.05);
        let unsharded = run_unsharded(&scenario, 0x51_116E);
        let sharded = run_sharded(&scenario, 0x51_116E, &plan);
        for ((name, a), (_, b)) in unsharded.observables().iter().zip(&sharded.observables()) {
            let (ma, mb) = (moments(a), moments(b));
            let tolerance = 6.0 * (ma.se * ma.se + mb.se * mb.se).sqrt() + 2.0;
            prop_assert!(
                (ma.mean - mb.mean).abs() <= tolerance,
                "{name}: unsharded {} vs sharded {} at window 0.05 with {shards} shards",
                ma.mean,
                mb.mean,
            );
        }
    }
}
