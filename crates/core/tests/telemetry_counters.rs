//! Counter-correctness tests of the kernel instrumentation: metered runs
//! are byte-identical to unmetered ones (the determinism contract — a
//! recorder consumes no randomness), the event-partition counters add up to
//! the kernel's reported event total, and the per-kernel counters satisfy
//! their structural invariants.

use pieceset::{PieceId, PieceSet};
use rand::rngs::StdRng;
use rand::SeedableRng;
use swarm::sim::{AgentConfig, AgentSwarm, FlashCrowd, KernelKind, SimScratch};
use swarm::SwarmParams;
use telemetry::{Counter, CounterRecorder, CounterSet};

fn params(k: usize, us: f64, mu: f64, gamma: f64, lambda0: f64) -> SwarmParams {
    let mut b = SwarmParams::builder(k)
        .seed_rate(us)
        .contact_rate(mu)
        .fresh_arrivals(lambda0);
    if gamma.is_finite() {
        b = b.seed_departure_rate(gamma);
    }
    b.build().expect("valid parameters")
}

fn uncoded_sim(kernel: KernelKind) -> AgentSwarm {
    let config = AgentConfig {
        kernel,
        retry_speedup: 6.0,
        snapshot_interval: 5.0,
        ..Default::default()
    };
    AgentSwarm::with_config(
        params(3, 0.5, 1.0, 2.0, 1.5),
        config,
        Box::new(swarm::policy::RandomUseful),
    )
    .expect("valid simulator")
}

fn coded_sim() -> AgentSwarm {
    let coded = swarm::coded::CodedParams::gift_example(3, 8, 1.2, 0.5, 0.5, 1.0, 2.0)
        .expect("valid coded parameters");
    AgentSwarm::with_coded(
        coded,
        AgentConfig {
            kernel: KernelKind::Coded,
            snapshot_interval: 5.0,
            ..Default::default()
        },
    )
    .expect("valid coded simulator")
}

/// Runs `sim` twice on the same seed — unmetered, then metered — asserting
/// bit-identical results, and returns the result plus the counters.
fn metered_run(
    sim: &AgentSwarm,
    seed: u64,
    horizon: f64,
) -> (swarm::metrics::SimResult, CounterSet) {
    let crowd = FlashCrowd {
        time: horizon / 2.0,
        count: 40,
        pieces: PieceSet::empty(),
    };
    let initial = vec![PieceSet::singleton(PieceId::new(1)); 10];
    let mut plain_rng = StdRng::seed_from_u64(seed);
    let plain = sim
        .run_with_scratch(
            &initial,
            &[crowd],
            horizon,
            &mut plain_rng,
            &mut SimScratch::new(),
        )
        .expect("valid run");
    let mut metered_rng = StdRng::seed_from_u64(seed);
    let mut rec = CounterRecorder::new();
    let metered = sim
        .run_metered(
            &initial,
            &[crowd],
            horizon,
            &mut metered_rng,
            &mut SimScratch::new(),
            &mut rec,
        )
        .expect("valid run");
    assert_eq!(plain, metered, "a recorder must never perturb the run");
    (metered, rec.counters)
}

/// The invariants every kernel's counters must satisfy against its result.
fn assert_invariants(result: &swarm::metrics::SimResult, c: &CounterSet, kernel: &str) {
    assert_eq!(
        c.event_total(),
        result.events,
        "{kernel}: arrivals + contacts + departure_events == events"
    );
    // The same partition spelled out, so each member counter is pinned
    // explicitly (and `event_total` cannot drift from its documentation).
    assert_eq!(
        c.get(Counter::Arrivals) + c.get(Counter::Contacts) + c.get(Counter::DepartureEvents),
        c.event_total(),
        "{kernel}: event_total is exactly the three-way event partition"
    );
    assert_eq!(
        c.get(Counter::Contacts),
        c.get(Counter::UsefulTransfers) + c.get(Counter::UselessContacts),
        "{kernel}: every contact is classified useful or useless"
    );
    assert_eq!(
        c.get(Counter::UsefulTransfers),
        result.transfers,
        "{kernel}: the useful-transfer counter is the kernel's transfer count"
    );
    assert_eq!(
        c.get(Counter::UselessContacts).min(result.events),
        c.get(Counter::UselessContacts),
        "{kernel}: useless contacts cannot exceed events"
    );
    assert_eq!(
        c.get(Counter::Departures),
        result.sojourns.departures,
        "{kernel}: the departure counter is the kernel's sojourn count"
    );
}

#[test]
fn event_kernel_counters_satisfy_their_invariants() {
    let sim = uncoded_sim(KernelKind::EventDriven);
    let (result, c) = metered_run(&sim, 101, 200.0);
    assert_invariants(&result, &c, "event");
    assert!(c.get(Counter::Contacts) > 0);
    assert_eq!(c.get(Counter::AliasRebuilds), 1, "one cached sampler build");
    // η = 6 forces real rejection work in the uploader probe.
    assert!(c.get(Counter::RejectionRetries) > 0);
    // The uncoded kernels never touch coded machinery.
    for counter in [
        Counter::RrefAbsorbs,
        Counter::RankIncreases,
        Counter::DimFastPathHits,
        Counter::BasisMaterializations,
        Counter::PoolOps,
    ] {
        assert_eq!(c.get(counter), 0, "event kernel has no {counter:?}");
    }
}

#[test]
fn scan_kernel_matches_event_kernel_counter_for_counter() {
    // Draw parity means the two kernels see the same trajectory, so every
    // counter agrees except AliasRebuilds: the scan kernel rebuilds its
    // arrival sampler per arrival, the event kernel builds one.
    let (event_result, event_c) = metered_run(&uncoded_sim(KernelKind::EventDriven), 202, 200.0);
    let (scan_result, scan_c) = metered_run(&uncoded_sim(KernelKind::LegacyScan), 202, 200.0);
    assert_eq!(event_result, scan_result, "draw parity");
    assert_invariants(&scan_result, &scan_c, "scan");
    for (counter, value) in event_c.iter() {
        if counter == Counter::AliasRebuilds {
            continue;
        }
        assert_eq!(
            scan_c.get(counter),
            value,
            "counter {counter:?} diverged between parity kernels"
        );
    }
    assert_eq!(
        scan_c.get(Counter::AliasRebuilds),
        scan_c.get(Counter::Arrivals),
        "the scan kernel rebuilds its sampler once per arrival"
    );
}

#[test]
fn turbo_kernel_counters_satisfy_their_invariants() {
    let sim = uncoded_sim(KernelKind::Turbo);
    let (result, c) = metered_run(&sim, 303, 200.0);
    assert_invariants(&result, &c, "turbo");
    assert_eq!(c.get(Counter::AliasRebuilds), 1, "one alias build per run");
    // Boost/unboost/departure churn shows up as swap-remove pool traffic.
    assert!(c.get(Counter::PoolOps) > 0, "pool ops: {:?}", c);
    assert!(
        c.get(Counter::PoolOps) >= 2 * c.get(Counter::Departures),
        "each departing seed entered and left the seed pool"
    );
    for counter in [
        Counter::RrefAbsorbs,
        Counter::RankIncreases,
        Counter::DimFastPathHits,
        Counter::BasisMaterializations,
    ] {
        assert_eq!(c.get(counter), 0, "turbo kernel has no {counter:?}");
    }
}

#[test]
fn coded_kernel_counters_satisfy_their_invariants() {
    let sim = coded_sim();
    let (result, c) = metered_run(&sim, 404, 200.0);
    assert_invariants(&result, &c, "coded");
    assert!(
        c.get(Counter::RrefAbsorbs) >= c.get(Counter::RankIncreases),
        "an absorb can fail, a rank increase cannot happen without one"
    );
    // Regression for the materialization ledger: gift rows and seed uploads
    // are fresh uniform vectors — no basis is read to build them, so they
    // are absorbs but NOT materializations. Only the peer-tick uploader
    // combination reads a basis. The original ledger counted every
    // constructed row, making basis_materializations == rref_absorbs and
    // hiding what the fast path saves.
    assert!(
        c.get(Counter::BasisMaterializations) < c.get(Counter::RrefAbsorbs),
        "fresh uniform rows are not basis reads: {c:?}"
    );
    assert!(
        c.get(Counter::BasisMaterializations) > 0,
        "peer-tick combinations do read a basis: {c:?}"
    );
    assert!(
        c.get(Counter::BasisMaterializations) <= c.get(Counter::Contacts),
        "at most one combination per contact"
    );
    assert!(
        c.get(Counter::DimFastPathHits) > 0,
        "dimension-only decisions happen: {c:?}"
    );
    assert!(
        c.get(Counter::DimFastPathHits) <= c.get(Counter::UselessContacts),
        "in the reference kernel every dim fast-path hit is a useless contact"
    );
    // Rank increases from contacts are the useful transfers; arrivals also
    // absorb gift rows, so the total rank increases dominate.
    assert!(c.get(Counter::RankIncreases) >= result.transfers);
    assert_eq!(c.get(Counter::AliasRebuilds), 1, "one gift alias build");
}

fn coded_turbo_sim() -> AgentSwarm {
    // The GF(2) twin of `coded_sim`: gift-heavy (half the arrivals carry a
    // coded piece), finite γ, K = 3.
    let coded = swarm::coded::CodedParams::gift_example(3, 2, 1.2, 0.5, 0.5, 1.0, 2.0)
        .expect("valid coded parameters");
    AgentSwarm::with_coded_turbo(
        coded,
        AgentConfig {
            kernel: KernelKind::CodedTurbo,
            snapshot_interval: 5.0,
            ..Default::default()
        },
    )
    .expect("valid coded-turbo simulator")
}

#[test]
fn coded_turbo_kernel_counters_satisfy_their_invariants() {
    let sim = coded_turbo_sim();
    let (result, c) = metered_run(&sim, 505, 200.0);
    assert_invariants(&result, &c, "coded-turbo");
    assert!(
        c.get(Counter::RrefAbsorbs) >= c.get(Counter::RejectionRetries),
        "every rejection retry was a failed absorb"
    );
    // Rank increases count every dimension gained by a peer — lazily or
    // through a basis — so they dominate the contact-driven transfers.
    assert!(c.get(Counter::RankIncreases) >= result.transfers);
    assert_eq!(c.get(Counter::AliasRebuilds), 1, "one gift alias build");
    assert!(
        c.get(Counter::PoolOps) >= 2 * c.get(Counter::Departures),
        "each departing decoder entered and left the seed pool"
    );
}

#[test]
fn coded_turbo_laziness_shows_in_the_ledger_on_a_gift_heavy_scenario() {
    // The tentpole claim of the bitsliced kernel, stated as counter algebra:
    // on a gift-heavy scenario most decisions resolve from cached
    // dimensions, bases are materialized rarely, and each materialized
    // basis is then worked more than once on average.
    let sim = coded_turbo_sim();
    let (_, c) = metered_run(&sim, 606, 200.0);
    assert!(
        c.get(Counter::BasisMaterializations) < c.get(Counter::RrefAbsorbs),
        "laziness: materialization events are rarer than basis absorbs: {c:?}"
    );
    assert!(
        c.get(Counter::DimFastPathHits) > c.get(Counter::BasisMaterializations),
        "dimension-only decisions dominate materializations: {c:?}"
    );
    assert!(
        c.get(Counter::BasisMaterializations) > 0,
        "peer-to-peer transfers do materialize bases: {c:?}"
    );
}

#[test]
fn metered_runs_are_scratch_independent_too() {
    // A warm scratch plus a recorder must still reproduce the fresh run.
    let sim = uncoded_sim(KernelKind::Turbo);
    let mut scratch = SimScratch::new();
    let mut warm_rng = StdRng::seed_from_u64(9);
    let warmup = sim
        .run_with_scratch(&[], &[], 50.0, &mut warm_rng, &mut scratch)
        .expect("warmup run");
    scratch.recycle(warmup);
    let mut rng_a = StdRng::seed_from_u64(777);
    let mut rec = CounterRecorder::new();
    let warm = sim
        .run_metered(&[], &[], 120.0, &mut rng_a, &mut scratch, &mut rec)
        .expect("warm metered run");
    let mut rng_b = StdRng::seed_from_u64(777);
    let fresh = sim
        .run_with_scratch(&[], &[], 120.0, &mut rng_b, &mut SimScratch::new())
        .expect("fresh run");
    assert_eq!(warm, fresh);
    assert_eq!(rec.counters.event_total(), fresh.events);
}
