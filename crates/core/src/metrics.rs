//! Observables recorded by the peer-level simulator.

use crate::groups::GroupCounts;
use serde::{Deserialize, Serialize};

/// A snapshot of the swarm taken by the agent-based simulator.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SimSnapshot {
    /// Simulated time of the snapshot.
    pub time: f64,
    /// Total number of peers in the system (`N_t`).
    pub total_peers: u64,
    /// Number of peer seeds (complete collections) in the system.
    pub peer_seeds: u64,
    /// Fig.-2 group decomposition relative to the watch piece.
    pub groups: GroupCounts,
    /// Cumulative downloads of the watch piece (`D_t` in Section VI; arrivals
    /// already holding it are not counted).
    pub watch_piece_downloads: u64,
    /// Cumulative arrivals of peers *without* the watch piece (`A_t`).
    pub arrivals_without_watch: u64,
    /// Number of copies of the watch piece currently held across the swarm.
    pub watch_piece_copies: u64,
}

/// Aggregate statistics of completed peer sojourns.
///
/// Strictly *streaming*: every departure folds into four scalars (count,
/// running mean, Welford `M2`, max) and no per-sojourn value is retained
/// anywhere, so a long-horizon run with millions of departures costs the
/// same memory as one with ten. Second-moment queries
/// ([`SojournStats::variance_sojourn`]) come from the Welford accumulator,
/// which stays accurate even when sojourns are large relative to their
/// spread (a naive `E[X²] − mean²` cancels catastrophically there).
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct SojournStats {
    /// Number of peers that departed during the run.
    pub departures: u64,
    /// Running mean of the sojourn times (Welford).
    mean: f64,
    /// Welford's `M2`: sum of squared deviations from the running mean.
    m2: f64,
    /// Maximum sojourn time observed.
    pub max_sojourn: f64,
}

impl SojournStats {
    /// Records a departure with the given sojourn time.
    pub fn record(&mut self, sojourn: f64) {
        self.departures += 1;
        let delta = sojourn - self.mean;
        self.mean += delta / self.departures as f64;
        self.m2 += delta * (sojourn - self.mean);
        if sojourn > self.max_sojourn {
            self.max_sojourn = sojourn;
        }
    }

    /// Mean sojourn time of departed peers (zero if none departed).
    #[must_use]
    pub fn mean_sojourn(&self) -> f64 {
        if self.departures == 0 {
            0.0
        } else {
            self.mean
        }
    }

    /// Population variance of the sojourn times (zero if fewer than two
    /// peers departed), from the streaming Welford moments.
    #[must_use]
    pub fn variance_sojourn(&self) -> f64 {
        if self.departures < 2 {
            return 0.0;
        }
        (self.m2 / self.departures as f64).max(0.0)
    }

    /// Merges another accumulator (Chan's parallel moment combination),
    /// used by the sharded driver to combine shard-local sojourn stats.
    ///
    /// Chan's update is *not* bit-identical to recording the same sojourns
    /// in order, and it does not commute bit-for-bit either — so callers
    /// needing determinism must merge in a canonical order. The sharded
    /// driver merges in ascending shard index, which makes the merged stats
    /// independent of worker scheduling for a fixed `(seed, shards)`.
    pub fn merge(&mut self, other: &SojournStats) {
        if other.departures == 0 {
            return;
        }
        if self.departures == 0 {
            *self = *other;
            return;
        }
        let total = self.departures + other.departures;
        let delta = other.mean - self.mean;
        self.mean += delta * other.departures as f64 / total as f64;
        self.m2 += other.m2
            + delta * delta * (self.departures as f64 * other.departures as f64) / total as f64;
        self.departures = total;
        if other.max_sojourn > self.max_sojourn {
            self.max_sojourn = other.max_sojourn;
        }
    }
}

/// Outcome of an agent-based simulation run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SimResult {
    /// Snapshots at the configured sampling interval (first at time 0, last
    /// at the horizon).
    pub snapshots: Vec<SimSnapshot>,
    /// Sojourn statistics of departed peers.
    pub sojourns: SojournStats,
    /// Total number of piece transfers executed.
    pub transfers: u64,
    /// Total number of contacts that found no useful piece.
    pub unsuccessful_contacts: u64,
    /// Total number of simulated events.
    pub events: u64,
    /// The simulated horizon actually reached.
    pub horizon: f64,
    /// `true` if the run stopped at the [`crate::sim::AgentConfig::max_events`]
    /// safety valve before reaching the requested horizon. A truncated
    /// result covers `[0, horizon]` for a *shorter* horizon than asked, and
    /// any verdict derived from it should be treated as provisional; the
    /// replication engine surfaces this per scenario.
    pub truncated: bool,
    /// Final per-peer progress histogram of the network-coded kernel
    /// ([`crate::sim::KernelKind::Coded`]): entry `d` counts the peers whose
    /// subspace dimension is `d` when the run ends (length `K + 1`). Empty
    /// for the uncoded kernels, whose piece-level state is already captured
    /// by the snapshot observables.
    pub final_dimensions: Vec<u64>,
}

impl SimResult {
    /// The final snapshot.
    ///
    /// # Panics
    ///
    /// Never panics: the simulator always records at least the initial
    /// snapshot.
    #[must_use]
    pub fn final_snapshot(&self) -> &SimSnapshot {
        // simlint: allow(E001, "SimResult construction always records the t = 0 snapshot")
        self.snapshots.last().expect("at least one snapshot")
    }

    /// The peer-count sample path as a [`markov::SamplePath`] for trend and
    /// classification analysis.
    #[must_use]
    pub fn peer_count_path(&self) -> markov::SamplePath {
        // simlint: allow(E001, "SimResult construction always records the t = 0 snapshot")
        let first = self.snapshots.first().expect("at least one snapshot");
        let mut path = markov::SamplePath::new(first.time, first.total_peers as f64);
        for s in &self.snapshots[1..] {
            path.record(s.time, s.total_peers as f64);
        }
        path.finish(self.horizon.max(first.time));
        path
    }

    /// The one-club size sample path.
    #[must_use]
    pub fn one_club_path(&self) -> markov::SamplePath {
        // simlint: allow(E001, "SimResult construction always records the t = 0 snapshot")
        let first = self.snapshots.first().expect("at least one snapshot");
        let mut path = markov::SamplePath::new(first.time, first.groups.one_club as f64);
        for s in &self.snapshots[1..] {
            path.record(s.time, s.groups.one_club as f64);
        }
        path.finish(self.horizon.max(first.time));
        path
    }

    /// Fraction of contacts that carried a piece (the paper's efficiency
    /// intuition: unsuccessful contacts dominate when the one club is large).
    #[must_use]
    pub fn contact_success_fraction(&self) -> f64 {
        let total = self.transfers + self.unsuccessful_contacts;
        if total == 0 {
            0.0
        } else {
            self.transfers as f64 / total as f64
        }
    }

    /// Mean of the final dimension histogram (zero when the run did not use
    /// the coded kernel or the final population is empty).
    #[must_use]
    pub fn mean_final_dimension(&self) -> f64 {
        let peers: u64 = self.final_dimensions.iter().sum();
        if peers == 0 {
            return 0.0;
        }
        let total: u64 = self
            .final_dimensions
            .iter()
            .enumerate()
            .map(|(d, &count)| d as u64 * count)
            .sum();
        total as f64 / peers as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn snapshot(time: f64, peers: u64, one_club: u64) -> SimSnapshot {
        let mut groups = GroupCounts::default();
        for _ in 0..one_club {
            groups.add(crate::groups::PeerGroup::OneClub);
        }
        for _ in one_club..peers {
            groups.add(crate::groups::PeerGroup::NormalYoung);
        }
        SimSnapshot {
            time,
            total_peers: peers,
            peer_seeds: 0,
            groups,
            watch_piece_downloads: 0,
            arrivals_without_watch: peers,
            watch_piece_copies: 0,
        }
    }

    fn result() -> SimResult {
        SimResult {
            snapshots: vec![
                snapshot(0.0, 10, 2),
                snapshot(5.0, 20, 12),
                snapshot(10.0, 30, 25),
            ],
            sojourns: SojournStats::default(),
            transfers: 30,
            unsuccessful_contacts: 10,
            events: 100,
            horizon: 10.0,
            truncated: false,
            final_dimensions: Vec::new(),
        }
    }

    #[test]
    fn sojourn_stats_accumulate() {
        let mut s = SojournStats::default();
        assert_eq!(s.mean_sojourn(), 0.0);
        s.record(2.0);
        assert_eq!(s.variance_sojourn(), 0.0, "one departure has no spread");
        s.record(4.0);
        assert_eq!(s.departures, 2);
        assert!((s.mean_sojourn() - 3.0).abs() < 1e-12);
        assert_eq!(s.max_sojourn, 4.0);
        assert!((s.variance_sojourn() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn sojourn_merge_matches_sequential_recording() {
        let sojourns: Vec<f64> = (0..40)
            .map(|i| 1.0 + (i as f64).sin().abs() * 9.0)
            .collect();
        let mut all = SojournStats::default();
        let mut left = SojournStats::default();
        let mut right = SojournStats::default();
        for (i, &s) in sojourns.iter().enumerate() {
            all.record(s);
            if i % 3 == 0 {
                left.record(s);
            } else {
                right.record(s);
            }
        }
        left.merge(&right);
        assert_eq!(left.departures, all.departures);
        assert!((left.mean_sojourn() - all.mean_sojourn()).abs() < 1e-9);
        assert!((left.variance_sojourn() - all.variance_sojourn()).abs() < 1e-9);
        assert_eq!(left.max_sojourn, all.max_sojourn);
        // Merging an empty accumulator in either direction is the identity.
        let mut empty = SojournStats::default();
        empty.merge(&all);
        assert_eq!(empty, all);
        let before = all;
        let mut merged = all;
        merged.merge(&SojournStats::default());
        assert_eq!(merged, before);
    }

    #[test]
    fn paths_are_constructed_from_snapshots() {
        let r = result();
        let path = r.peer_count_path();
        assert_eq!(path.len(), 3);
        assert_eq!(path.value_at(6.0), 20.0);
        let club = r.one_club_path();
        assert_eq!(club.value_at(10.0), 25.0);
        assert_eq!(r.final_snapshot().total_peers, 30);
    }

    #[test]
    fn contact_success_fraction_computed() {
        let r = result();
        assert!((r.contact_success_fraction() - 0.75).abs() < 1e-12);
        let empty = SimResult {
            transfers: 0,
            unsuccessful_contacts: 0,
            ..result()
        };
        assert_eq!(empty.contact_success_fraction(), 0.0);
    }

    #[test]
    fn mean_final_dimension_from_histogram() {
        let r = result();
        assert_eq!(r.mean_final_dimension(), 0.0, "uncoded runs report 0");
        let coded = SimResult {
            // 2 peers at dim 0, 1 at dim 1, 1 at dim 3 → mean = 1.0
            final_dimensions: vec![2, 1, 0, 1],
            ..result()
        };
        assert!((coded.mean_final_dimension() - 1.0).abs() < 1e-12);
    }
}
