//! Model parameters (Section III of the paper).

use crate::SwarmError;
use pieceset::{PieceSet, TypeSpace};
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// Parameters of the Zhu–Hajek swarm model.
///
/// * `K` — number of pieces the file is divided into,
/// * `U_s` — contact–upload rate of the fixed seed,
/// * `µ`  — contact–upload rate of every peer,
/// * `γ`  — departure rate of a peer seed (`γ = ∞`, represented by
///   [`f64::INFINITY`], means peers depart the instant they complete),
/// * `λ_C` — Poisson arrival rate of type-`C` peers, for each `C ⊆ {1..K}`.
///
/// Use [`SwarmParams::builder`] to construct validated parameters.
///
/// # Examples
///
/// ```
/// use swarm::SwarmParams;
/// use pieceset::PieceSet;
///
/// // Example 1 of the paper: a single piece, fresh arrivals only.
/// let params = SwarmParams::builder(1)
///     .seed_rate(1.0)
///     .contact_rate(1.0)
///     .seed_departure_rate(2.0)
///     .arrival(PieceSet::empty(), 1.5)
///     .build()
///     .unwrap();
/// assert_eq!(params.num_pieces(), 1);
/// assert!((params.total_arrival_rate() - 1.5).abs() < 1e-12);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SwarmParams {
    num_pieces: usize,
    seed_rate: f64,
    contact_rate: f64,
    seed_departure_rate: f64,
    arrivals: BTreeMap<PieceSet, f64>,
}

impl SwarmParams {
    /// Starts building parameters for a `K = num_pieces` file.
    #[must_use]
    pub fn builder(num_pieces: usize) -> SwarmParamsBuilder {
        SwarmParamsBuilder {
            num_pieces,
            seed_rate: 0.0,
            contact_rate: 1.0,
            seed_departure_rate: f64::INFINITY,
            arrivals: BTreeMap::new(),
        }
    }

    /// Number of pieces `K`.
    #[must_use]
    pub fn num_pieces(&self) -> usize {
        self.num_pieces
    }

    /// The type space of all `2^K` peer types.
    ///
    /// # Panics
    ///
    /// Panics if `K` exceeds [`pieceset::MAX_ENUMERABLE_PIECES`]: parameters
    /// validate up to [`pieceset::MAX_PIECES`] pieces (the agent-based
    /// simulator handles any such `K`), but enumerating all `2^K` types — the
    /// exact CTMC state vector, the Lyapunov evaluation — is only feasible
    /// for small `K`.
    #[must_use]
    pub fn type_space(&self) -> TypeSpace {
        // simlint: allow(E001, "documented panic (see the # Panics section): enumerating 2^K types is deliberately a caller contract")
        TypeSpace::new(self.num_pieces).expect("K small enough to enumerate 2^K types")
    }

    /// The full collection `F` (the peer-seed type).
    #[must_use]
    pub fn full_type(&self) -> PieceSet {
        PieceSet::full(self.num_pieces)
    }

    /// Fixed-seed contact–upload rate `U_s`.
    #[must_use]
    pub fn seed_rate(&self) -> f64 {
        self.seed_rate
    }

    /// Peer contact–upload rate `µ`.
    #[must_use]
    pub fn contact_rate(&self) -> f64 {
        self.contact_rate
    }

    /// Peer-seed departure rate `γ` (possibly `∞`).
    #[must_use]
    pub fn seed_departure_rate(&self) -> f64 {
        self.seed_departure_rate
    }

    /// Returns `true` if peers depart immediately after completing (`γ = ∞`).
    #[must_use]
    pub fn departs_immediately(&self) -> bool {
        self.seed_departure_rate.is_infinite()
    }

    /// The ratio `µ/γ` (zero when `γ = ∞`).
    #[must_use]
    pub fn mu_over_gamma(&self) -> f64 {
        if self.departs_immediately() {
            0.0
        } else {
            self.contact_rate / self.seed_departure_rate
        }
    }

    /// Mean dwell time of a peer seed, `1/γ` (zero when `γ = ∞`).
    #[must_use]
    pub fn mean_seed_dwell(&self) -> f64 {
        if self.departs_immediately() {
            0.0
        } else {
            1.0 / self.seed_departure_rate
        }
    }

    /// Arrival rate `λ_C` of peers of type `C` (zero if not configured).
    #[must_use]
    pub fn arrival_rate(&self, c: PieceSet) -> f64 {
        self.arrivals.get(&c).copied().unwrap_or(0.0)
    }

    /// Iterates over the configured `(type, rate)` pairs with positive rate.
    pub fn arrivals(&self) -> impl Iterator<Item = (PieceSet, f64)> + '_ {
        self.arrivals
            .iter()
            .filter(|(_, &r)| r > 0.0)
            .map(|(&c, &r)| (c, r))
    }

    /// Total arrival rate `λ_total = Σ_C λ_C`.
    #[must_use]
    pub fn total_arrival_rate(&self) -> f64 {
        self.arrivals.values().sum()
    }

    /// Total arrival rate of peers whose initial collection contains piece `k`
    /// (the "gifted" arrival rate for that piece).
    #[must_use]
    pub fn arrival_rate_with_piece(&self, piece: pieceset::PieceId) -> f64 {
        self.arrivals()
            .filter(|(c, _)| c.contains(piece))
            .map(|(_, r)| r)
            .sum()
    }

    /// Total arrival rate of peers whose initial collection lacks piece `k`.
    #[must_use]
    pub fn arrival_rate_without_piece(&self, piece: pieceset::PieceId) -> f64 {
        self.total_arrival_rate() - self.arrival_rate_with_piece(piece)
    }

    /// Returns `true` if new copies of `piece` can enter the system: the seed
    /// uploads (`U_s > 0`) or some arriving peers hold the piece.
    #[must_use]
    pub fn piece_can_enter(&self, piece: pieceset::PieceId) -> bool {
        self.seed_rate > 0.0 || self.arrival_rate_with_piece(piece) > 0.0
    }

    /// Returns `true` if every piece can enter the system.
    #[must_use]
    pub fn all_pieces_can_enter(&self) -> bool {
        (0..self.num_pieces).all(|i| self.piece_can_enter(pieceset::PieceId::new(i)))
    }
}

/// Builder for [`SwarmParams`].
#[derive(Debug, Clone)]
pub struct SwarmParamsBuilder {
    num_pieces: usize,
    seed_rate: f64,
    contact_rate: f64,
    seed_departure_rate: f64,
    arrivals: BTreeMap<PieceSet, f64>,
}

impl SwarmParamsBuilder {
    /// Sets the fixed-seed contact–upload rate `U_s` (default 0).
    #[must_use]
    pub fn seed_rate(mut self, us: f64) -> Self {
        self.seed_rate = us;
        self
    }

    /// Sets the peer contact–upload rate `µ` (default 1).
    #[must_use]
    pub fn contact_rate(mut self, mu: f64) -> Self {
        self.contact_rate = mu;
        self
    }

    /// Sets the peer-seed departure rate `γ`; use [`f64::INFINITY`] (the
    /// default) for immediate departure.
    #[must_use]
    pub fn seed_departure_rate(mut self, gamma: f64) -> Self {
        self.seed_departure_rate = gamma;
        self
    }

    /// Sets the mean peer-seed dwell time `1/γ` (zero means immediate
    /// departure).
    #[must_use]
    pub fn mean_seed_dwell(mut self, dwell: f64) -> Self {
        self.seed_departure_rate = if dwell <= 0.0 {
            f64::INFINITY
        } else {
            1.0 / dwell
        };
        self
    }

    /// Adds (or overwrites) the arrival rate of type-`c` peers.
    #[must_use]
    pub fn arrival(mut self, c: PieceSet, rate: f64) -> Self {
        self.arrivals.insert(c, rate);
        self
    }

    /// Adds arrival of empty-handed peers (`λ_∅`), the common case.
    #[must_use]
    pub fn fresh_arrivals(self, rate: f64) -> Self {
        self.arrival(PieceSet::empty(), rate)
    }

    /// Validates and builds the parameters.
    ///
    /// # Errors
    ///
    /// Returns [`SwarmError::InvalidParameter`] if any rate is negative or
    /// non-finite (`γ` may be `+∞`), if `λ_total = 0`, if `µ ≤ 0`, if an
    /// arrival type uses pieces outside `{1..K}`, or if `γ = ∞` while
    /// `λ_F > 0` (the paper's convention: with immediate departure, peers
    /// never *arrive* as seeds).
    pub fn build(self) -> Result<SwarmParams, SwarmError> {
        // Validation is deliberately independent of `TypeSpace` (which caps
        // `K` at the enumerable limit): the agent-based simulator runs any
        // `K ≤ MAX_PIECES`, and only the exact-CTMC paths enumerate types.
        let full = PieceSet::try_full(self.num_pieces)?;
        if !(self.contact_rate.is_finite() && self.contact_rate > 0.0) {
            return Err(SwarmError::InvalidParameter(format!(
                "peer contact rate µ = {} must be finite and positive",
                self.contact_rate
            )));
        }
        if !(self.seed_rate.is_finite() && self.seed_rate >= 0.0) {
            return Err(SwarmError::InvalidParameter(format!(
                "seed rate U_s = {} must be finite and non-negative",
                self.seed_rate
            )));
        }
        if self.seed_departure_rate.is_nan() || self.seed_departure_rate <= 0.0 {
            return Err(SwarmError::InvalidParameter(format!(
                "seed departure rate γ = {} must be positive (use infinity for immediate departure)",
                self.seed_departure_rate
            )));
        }
        let mut total = 0.0;
        for (&c, &rate) in &self.arrivals {
            if !(rate.is_finite() && rate >= 0.0) {
                return Err(SwarmError::InvalidParameter(format!(
                    "arrival rate λ_{} = {rate} must be finite and non-negative",
                    c.paper_notation()
                )));
            }
            if !c.is_subset_of(full) {
                return Err(SwarmError::InvalidParameter(format!(
                    "arrival type {} uses pieces outside a {}-piece file",
                    c.paper_notation(),
                    self.num_pieces
                )));
            }
            total += rate;
        }
        if total <= 0.0 {
            return Err(SwarmError::InvalidParameter(
                "the total arrival rate λ_total must be positive".into(),
            ));
        }
        if self.seed_departure_rate.is_infinite()
            && self.arrivals.get(&full).copied().unwrap_or(0.0) > 0.0
        {
            return Err(SwarmError::InvalidParameter(
                "with γ = ∞ the paper assumes λ_F = 0 (peers never arrive as seeds)".into(),
            ));
        }
        Ok(SwarmParams {
            num_pieces: self.num_pieces,
            seed_rate: self.seed_rate,
            contact_rate: self.contact_rate,
            seed_departure_rate: self.seed_departure_rate,
            arrivals: self.arrivals,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pieceset::PieceId;

    fn set(indices: &[usize]) -> PieceSet {
        indices.iter().map(|&i| PieceId::new(i)).collect()
    }

    #[test]
    fn builder_produces_expected_parameters() {
        let p = SwarmParams::builder(3)
            .seed_rate(0.5)
            .contact_rate(2.0)
            .seed_departure_rate(4.0)
            .arrival(set(&[0]), 1.0)
            .arrival(set(&[1]), 2.0)
            .build()
            .unwrap();
        assert_eq!(p.num_pieces(), 3);
        assert_eq!(p.seed_rate(), 0.5);
        assert_eq!(p.contact_rate(), 2.0);
        assert_eq!(p.seed_departure_rate(), 4.0);
        assert!((p.mu_over_gamma() - 0.5).abs() < 1e-12);
        assert!((p.mean_seed_dwell() - 0.25).abs() < 1e-12);
        assert!((p.total_arrival_rate() - 3.0).abs() < 1e-12);
        assert_eq!(p.arrival_rate(set(&[0])), 1.0);
        assert_eq!(p.arrival_rate(set(&[2])), 0.0);
        assert_eq!(p.arrivals().count(), 2);
    }

    #[test]
    fn gamma_infinity_conventions() {
        let p = SwarmParams::builder(2).fresh_arrivals(1.0).build().unwrap();
        assert!(p.departs_immediately());
        assert_eq!(p.mu_over_gamma(), 0.0);
        assert_eq!(p.mean_seed_dwell(), 0.0);
    }

    #[test]
    fn mean_seed_dwell_setter() {
        let p = SwarmParams::builder(2)
            .fresh_arrivals(1.0)
            .mean_seed_dwell(0.5)
            .build()
            .unwrap();
        assert_eq!(p.seed_departure_rate(), 2.0);
        let p = SwarmParams::builder(2)
            .fresh_arrivals(1.0)
            .mean_seed_dwell(0.0)
            .build()
            .unwrap();
        assert!(p.departs_immediately());
    }

    #[test]
    fn piece_entry_checks() {
        // No seed; arrivals hold only piece 1 → piece 2 can never enter.
        let p = SwarmParams::builder(2)
            .arrival(set(&[0]), 1.0)
            .build()
            .unwrap();
        assert!(p.piece_can_enter(PieceId::new(0)));
        assert!(!p.piece_can_enter(PieceId::new(1)));
        assert!(!p.all_pieces_can_enter());
        // With a fixed seed every piece can enter.
        let p = SwarmParams::builder(2)
            .seed_rate(0.1)
            .arrival(set(&[0]), 1.0)
            .build()
            .unwrap();
        assert!(p.all_pieces_can_enter());
    }

    #[test]
    fn gifted_arrival_rates() {
        let p = SwarmParams::builder(3)
            .arrival(set(&[0]), 1.0)
            .arrival(set(&[0, 1]), 0.5)
            .arrival(PieceSet::empty(), 2.0)
            .build()
            .unwrap();
        assert!((p.arrival_rate_with_piece(PieceId::new(0)) - 1.5).abs() < 1e-12);
        assert!((p.arrival_rate_without_piece(PieceId::new(0)) - 2.0).abs() < 1e-12);
        assert!((p.arrival_rate_with_piece(PieceId::new(2)) - 0.0).abs() < 1e-12);
    }

    #[test]
    fn validation_rejects_bad_parameters() {
        assert!(SwarmParams::builder(0).fresh_arrivals(1.0).build().is_err());
        assert!(SwarmParams::builder(2)
            .contact_rate(0.0)
            .fresh_arrivals(1.0)
            .build()
            .is_err());
        assert!(SwarmParams::builder(2)
            .contact_rate(f64::INFINITY)
            .fresh_arrivals(1.0)
            .build()
            .is_err());
        assert!(SwarmParams::builder(2)
            .seed_rate(-1.0)
            .fresh_arrivals(1.0)
            .build()
            .is_err());
        assert!(SwarmParams::builder(2)
            .seed_departure_rate(0.0)
            .fresh_arrivals(1.0)
            .build()
            .is_err());
        assert!(SwarmParams::builder(2)
            .seed_departure_rate(-3.0)
            .fresh_arrivals(1.0)
            .build()
            .is_err());
        // zero total arrivals
        assert!(SwarmParams::builder(2).build().is_err());
        assert!(SwarmParams::builder(2).fresh_arrivals(0.0).build().is_err());
        // negative arrival rate
        assert!(SwarmParams::builder(2)
            .fresh_arrivals(-1.0)
            .build()
            .is_err());
        // arrival type outside the file
        assert!(SwarmParams::builder(2)
            .arrival(set(&[5]), 1.0)
            .build()
            .is_err());
        // λ_F > 0 with γ = ∞
        assert!(SwarmParams::builder(2)
            .arrival(set(&[0, 1]), 1.0)
            .build()
            .is_err());
        // ... but λ_F > 0 with finite γ is fine
        assert!(SwarmParams::builder(2)
            .seed_departure_rate(1.0)
            .arrival(set(&[0, 1]), 1.0)
            .build()
            .is_ok());
    }

    #[test]
    fn arrivals_iterator_skips_zero_rates() {
        let p = SwarmParams::builder(2)
            .arrival(set(&[0]), 0.0)
            .arrival(set(&[1]), 1.0)
            .build()
            .unwrap();
        assert_eq!(p.arrivals().count(), 1);
    }
}
