//! Transition rates of the swarm CTMC — equation (1) of the paper.

use crate::{SwarmParams, SwarmState};
use pieceset::{PieceId, PieceSet};

/// The aggregate rate `Γ_{C, C∪{i}}` at which *some* type-`C` peer acquires
/// piece `i` (eq. (1)):
///
/// `Γ_{C,C∪{i}} = (x_C / n) · ( U_s / (K − |C|)  +  µ · Σ_{S ∋ i} x_S / |S − C| )`
///
/// for `n ≥ 1` and `i ∉ C`; zero otherwise.
///
/// The first term is the fixed seed contacting a type-`C` peer (probability
/// `x_C/n`) and choosing piece `i` uniformly among the `K − |C|` pieces the
/// peer needs. The second term sums over uploader types `S` holding `i`: each
/// of the `x_S` such peers contacts a type-`C` peer with probability `x_C/n`
/// at rate `µ` and picks `i` uniformly among the `|S − C|` useful pieces it
/// could offer.
#[must_use]
pub fn transfer_rate(params: &SwarmParams, state: &SwarmState, c: PieceSet, piece: PieceId) -> f64 {
    if c.contains(piece) {
        return 0.0;
    }
    let n = state.total_peers();
    if n == 0 {
        return 0.0;
    }
    let x_c = f64::from(state.count(c));
    if x_c == 0.0 {
        return 0.0;
    }
    let k = params.num_pieces();
    let needed = (k - c.len()) as f64;
    let seed_term = params.seed_rate() / needed;

    let mut peer_term = 0.0;
    for (s, x_s) in state.occupied_types() {
        if s.contains(piece) {
            let useful = s.difference(c).len() as f64;
            debug_assert!(useful >= 1.0);
            peer_term += f64::from(x_s) / useful;
        }
    }
    (x_c / n as f64) * (seed_term + params.contact_rate() * peer_term)
}

/// The aggregate rate at which type-`C` peers leave the type-`C` group
/// (`D_C` in the paper): the sum of `Γ_{C, C∪{i}}` over missing pieces for
/// `C ≠ F`, and `γ · x_F` for the peer-seed group when `γ < ∞`.
#[must_use]
pub fn departure_rate_from_type(params: &SwarmParams, state: &SwarmState, c: PieceSet) -> f64 {
    let full = params.full_type();
    if c == full {
        if params.departs_immediately() {
            0.0
        } else {
            params.seed_departure_rate() * f64::from(state.count(full))
        }
    } else {
        full.difference(c)
            .iter()
            .map(|piece| transfer_rate(params, state, c, piece))
            .sum()
    }
}

/// Total rate of *all* piece transfers in the state (the sum of eq. (1) over
/// all `(C, i)` pairs). Useful as a sanity quantity: it is bounded by
/// `U_s + µ·n`.
#[must_use]
pub fn total_transfer_rate(params: &SwarmParams, state: &SwarmState) -> f64 {
    let full = params.full_type();
    state
        .occupied_types()
        .filter(|(c, _)| *c != full)
        .map(|(c, _)| {
            full.difference(c)
                .iter()
                .map(|piece| transfer_rate(params, state, c, piece))
                .sum::<f64>()
        })
        .sum()
}

#[cfg(test)]
mod tests {
    use super::*;
    use pieceset::TypeSpace;

    fn set(indices: &[usize]) -> PieceSet {
        indices.iter().map(|&i| PieceId::new(i)).collect()
    }

    /// Two-piece system used across the tests.
    fn params2(us: f64, mu: f64, gamma: f64) -> SwarmParams {
        SwarmParams::builder(2)
            .seed_rate(us)
            .contact_rate(mu)
            .seed_departure_rate(gamma)
            .fresh_arrivals(1.0)
            .build()
            .unwrap()
    }

    #[test]
    fn rate_zero_when_piece_already_held_or_no_peers() {
        let params = params2(1.0, 1.0, 1.0);
        let space = TypeSpace::new(2).unwrap();
        let empty = SwarmState::empty(&space);
        assert_eq!(
            transfer_rate(&params, &empty, PieceSet::empty(), PieceId::new(0)),
            0.0
        );
        let mut s = SwarmState::empty(&space);
        s.add_peer(set(&[0]));
        assert_eq!(transfer_rate(&params, &s, set(&[0]), PieceId::new(0)), 0.0);
        // no type-∅ peers present
        assert_eq!(
            transfer_rate(&params, &s, PieceSet::empty(), PieceId::new(1)),
            0.0
        );
    }

    #[test]
    fn seed_only_rate_matches_formula() {
        // One empty peer, seed rate 3, K = 2: seed contacts it w.p. 1 and
        // picks either piece w.p. 1/2 → rate 1.5 per piece.
        let params = params2(3.0, 1.0, 1.0);
        let space = TypeSpace::new(2).unwrap();
        let mut s = SwarmState::empty(&space);
        s.add_peer(PieceSet::empty());
        let r0 = transfer_rate(&params, &s, PieceSet::empty(), PieceId::new(0));
        let r1 = transfer_rate(&params, &s, PieceSet::empty(), PieceId::new(1));
        assert!((r0 - 1.5).abs() < 1e-12);
        assert!((r1 - 1.5).abs() < 1e-12);
    }

    #[test]
    fn peer_upload_rate_matches_hand_computation() {
        // State: 2 peers of type {1} and 3 peers of type ∅, K = 2, µ = 2, Us = 0.
        // Rate of ∅ → {1}: (x_∅ / n) * µ * Σ_{S ∋ 1} x_S / |S − ∅|
        //   = (3/5) * 2 * (2 / 1) = 2.4
        let params = params2(0.0, 2.0, 1.0);
        let space = TypeSpace::new(2).unwrap();
        let mut s = SwarmState::empty(&space);
        s.set_count(PieceSet::empty(), 3);
        s.set_count(set(&[0]), 2);
        let r = transfer_rate(&params, &s, PieceSet::empty(), PieceId::new(0));
        assert!((r - 2.4).abs() < 1e-12, "rate {r}");
        // Rate of ∅ → {2} is zero: nobody holds piece 2 and Us = 0.
        let r = transfer_rate(&params, &s, PieceSet::empty(), PieceId::new(1));
        assert_eq!(r, 0.0);
    }

    #[test]
    fn uploader_with_two_useful_pieces_splits_rate() {
        // K = 2: one full seed peer (type {1,2}) and one empty peer; µ = 1, Us = 0.
        // From the empty peer's perspective the seed peer has 2 useful pieces,
        // so each piece is uploaded at rate (1/2) * 1 * (1/2) = 0.25.
        let params = SwarmParams::builder(2)
            .contact_rate(1.0)
            .seed_departure_rate(1.0)
            .fresh_arrivals(1.0)
            .build()
            .unwrap();
        let space = TypeSpace::new(2).unwrap();
        let mut s = SwarmState::empty(&space);
        s.add_peer(PieceSet::empty());
        s.add_peer(set(&[0, 1]));
        let r0 = transfer_rate(&params, &s, PieceSet::empty(), PieceId::new(0));
        let r1 = transfer_rate(&params, &s, PieceSet::empty(), PieceId::new(1));
        assert!((r0 - 0.25).abs() < 1e-12);
        assert!((r1 - 0.25).abs() < 1e-12);
    }

    #[test]
    fn departure_rate_of_full_type_scales_with_gamma() {
        let params = params2(0.0, 1.0, 4.0);
        let space = TypeSpace::new(2).unwrap();
        let mut s = SwarmState::empty(&space);
        s.set_count(set(&[0, 1]), 5);
        assert!((departure_rate_from_type(&params, &s, set(&[0, 1])) - 20.0).abs() < 1e-12);
        // γ = ∞ convention: the rate function reports zero (departures are
        // folded into the completing transfer itself).
        let params = SwarmParams::builder(2).fresh_arrivals(1.0).build().unwrap();
        assert_eq!(departure_rate_from_type(&params, &s, set(&[0, 1])), 0.0);
    }

    #[test]
    fn total_transfer_rate_bounded_by_capacity() {
        // The total upload capacity is Us + µ n; the realised transfer rate
        // can never exceed it.
        let params = params2(2.0, 1.5, 1.0);
        let space = TypeSpace::new(2).unwrap();
        let mut s = SwarmState::empty(&space);
        s.set_count(PieceSet::empty(), 3);
        s.set_count(set(&[0]), 2);
        s.set_count(set(&[0, 1]), 1);
        let total = total_transfer_rate(&params, &s);
        let capacity = params.seed_rate() + params.contact_rate() * s.total_peers() as f64;
        assert!(
            total <= capacity + 1e-12,
            "total {total} capacity {capacity}"
        );
        assert!(total > 0.0);
    }

    #[test]
    fn departure_rate_sums_transfer_rates_for_partial_types() {
        let params = params2(1.0, 1.0, 1.0);
        let space = TypeSpace::new(2).unwrap();
        let mut s = SwarmState::empty(&space);
        s.set_count(PieceSet::empty(), 2);
        s.set_count(set(&[1]), 1);
        let d = departure_rate_from_type(&params, &s, PieceSet::empty());
        let manual = transfer_rate(&params, &s, PieceSet::empty(), PieceId::new(0))
            + transfer_rate(&params, &s, PieceSet::empty(), PieceId::new(1));
        assert!((d - manual).abs() < 1e-12);
    }
}
