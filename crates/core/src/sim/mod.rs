//! Peer-level (agent-based) discrete-event simulator.
//!
//! The type-count CTMC of [`crate::SwarmModel`] is exact but cannot express
//! per-peer identities: which peers are gifted or infected (Fig. 2), how a
//! non-random piece-selection policy behaves (Theorem 14), or the
//! faster-retry variant of Section VIII-C. This simulator keeps every peer as
//! an agent with its own piece collection and simulates the same stochastic
//! dynamics exactly (exponential clocks, uniform random contacts), with
//! pluggable [`crate::policy::PiecePolicy`], optional retry speed-up, and
//! scheduled [`FlashCrowd`] injections.
//!
//! # Kernels
//!
//! Five interchangeable kernels implement the bookkeeping behind the shared
//! event loop (see [`KernelKind`]):
//!
//! * **Event-driven** (the default) — peer piece collections live in a
//!   packed [`pieceset::PieceMatrix`] (one row of `u64` words per peer),
//!   seed and boosted membership in [`pieceset::WordBits`] index sets, and
//!   the Fig.-2 group decomposition is keyed off *incremental transitions*:
//!   every arrival, transfer, and departure adjusts the group counts in
//!   `O(1)`, so snapshots cost `O(1)` and choosing a departing seed is a
//!   popcount select instead of a population scan.
//! * **Legacy scan** — the original array-of-structs kernel that recomputes
//!   the group decomposition by scanning every peer at each snapshot and
//!   falls back to an `O(n)` scan when sampling a departing seed. Kept as
//!   the differential-testing baseline and the benchmark reference.
//! * **Turbo** — the parity-*free* kernel: alias-table arrival draws
//!   ([`markov::alias`]), swap-remove index pools so boosted-vs-normal
//!   uploader selection and seed departures are direct `O(1)` picks instead
//!   of rejection loops, and buffer reuse across replications through a
//!   [`SimScratch`] arena. It samples from the *same distributions* at the
//!   same points but consumes different draws, so its trajectories agree
//!   with the other kernels statistically, not byte-for-byte.
//! * **Coded** — the network-coding kernel (Section VIII-B, Theorem 15):
//!   peer state is a subspace of `F_q^K` in reduced row-echelon form with
//!   the dimension cached in a packed per-peer record, uploads are random
//!   linear combinations, and departures fire at dimension `K`. Constructed
//!   with [`AgentSwarm::with_coded`]; validated distributionally against
//!   the standalone [`crate::coded::CodedSwarmSim`].
//! * **Coded turbo** — the bitsliced `GF(2)` coded kernel: peer subspaces
//!   as packed `u64` rows ([`netcoding::BitSubspace`]) in a recycled arena,
//!   *lazy peers* that carry only a cached dimension (plus an arrival unit
//!   mask) until a peer-to-peer transfer actually needs a basis, and the
//!   turbo tricks (alias tables, swap-remove pools, [`SimScratch`] reuse).
//!   Constructed with [`AgentSwarm::with_coded_turbo`]; `GF(2)` only;
//!   parity-free like turbo, validated by the three-way distributional
//!   battery in `crates/core/tests/coded_distributional.rs`.
//!
//! The event-driven and scan kernels run under the *same* driver loop and
//! consume random draws in the *same* order, so for a fixed RNG stream they
//! produce **identical trajectories** — a property test pins this
//! (`crates/core/tests/kernel_equivalence.rs`). The turbo kernel is pinned
//! by a *distributional* differential test instead
//! (`crates/core/tests/turbo_distributional.rs`): over replication
//! ensembles, its sojourn, population, watch-piece, and group statistics
//! must match the event kernel's within confidence intervals.
//!
//! Aggregate exponential clocks are maintained per peer class — total
//! arrival rate, (possibly boosted) fixed-seed rate, total peer contact rate
//! split into normal and boosted sub-populations, and the peer-seed
//! departure rate — and updated in `O(1)` per event; no per-event rescan of
//! the population happens in either kernel.

mod coded;
mod coded_turbo;
mod event;
mod scan;
mod sharded;
mod turbo;

pub use sharded::{ShardBias, ShardPlan};
pub use turbo::SimScratch;

use crate::coded::{CodedGifts, CodedParams};
use crate::metrics::SimResult;
use crate::policy::{PiecePolicy, RandomUseful};
use crate::{SwarmError, SwarmParams};
use markov::poisson::{sample_exp, sample_weighted_index};
use pieceset::{PieceId, PieceSet};
use rand::Rng;
use telemetry::{NullRecorder, Recorder};

/// Which simulation kernel executes the run (see the [module docs](self)).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum KernelKind {
    /// Incremental bookkeeping on packed bitsets: `O(1)` snapshots and group
    /// updates, popcount-select departures. The default.
    #[default]
    EventDriven,
    /// The original scan-based kernel: group decomposition recomputed by a
    /// full population scan at every snapshot. Kept for differential testing
    /// and as the benchmark baseline.
    LegacyScan,
    /// The parity-free kernel: alias-table arrivals, direct `O(1)`
    /// pool-based uploader and departure sampling (no rejection loops), and
    /// [`SimScratch`] buffer reuse. Statistically identical trajectories,
    /// not byte-identical ones — validated distributionally.
    Turbo,
    /// The network-coding kernel (Section VIII-B, Theorem 15): peer state is
    /// the subspace `V_A ⊆ F_q^K` held in reduced row-echelon form, contacts
    /// transfer random linear combinations, and peers depart on reaching
    /// dimension `K`. Requires coded parameters — construct the simulator
    /// with [`AgentSwarm::with_coded`]. Validated distributionally against
    /// the standalone [`crate::coded::CodedSwarmSim`]
    /// (`crates/core/tests/coded_distributional.rs`).
    Coded,
    /// The bitsliced `GF(2)` coded kernel: subspaces as packed `u64` rows
    /// ([`netcoding::BitSubspace`]) in a recycled arena, lazy peers that
    /// materialize a basis only when a peer-to-peer transfer needs one, and
    /// the turbo sampling tricks. Requires coded parameters over `GF(2)` —
    /// construct the simulator with [`AgentSwarm::with_coded_turbo`].
    /// Parity-free; validated distributionally against both the coded
    /// kernel and the legacy simulator.
    CodedTurbo,
}

/// Configuration of the agent-based simulator beyond the model parameters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AgentConfig {
    /// The piece whose spread is tracked for the Fig.-2 decomposition
    /// (piece one in the paper).
    pub watch_piece: PieceId,
    /// Retry speed-up factor `η ≥ 1` of Section VIII-C: a peer (or the fixed
    /// seed) whose last contact found nothing useful runs its clock `η`
    /// times faster until its next contact. `1.0` recovers the base model.
    pub retry_speedup: f64,
    /// Interval between recorded snapshots. Snapshot times are snapped to
    /// the grid `i · interval` (computed by multiplication, not by
    /// accumulating floats), so they do not drift over long horizons.
    pub snapshot_interval: f64,
    /// Hard cap on the number of simulated events (safety valve). A run that
    /// hits it stops early and reports [`SimResult::truncated`].
    pub max_events: u64,
    /// The kernel executing the run.
    pub kernel: KernelKind,
}

impl Default for AgentConfig {
    fn default() -> Self {
        AgentConfig {
            watch_piece: PieceId::new(0),
            retry_speedup: 1.0,
            snapshot_interval: 10.0,
            max_events: 50_000_000,
            kernel: KernelKind::EventDriven,
        }
    }
}

/// A scheduled mass arrival: `count` peers of type `pieces` join at `time`.
///
/// Flash crowds model the scenario-registry workloads where a burst of
/// (typically empty-handed) peers hits an operating swarm — the stress that
/// provokes the missing-piece syndrome. Injection is deterministic (no
/// random draws), so a schedule does not perturb the RNG stream of the
/// surrounding Poisson dynamics beyond the state change itself.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FlashCrowd {
    /// Simulated time of the burst (must be finite and non-negative).
    pub time: f64,
    /// Number of peers joining at once.
    pub count: usize,
    /// The piece collection every member of the crowd arrives with.
    pub pieces: PieceSet,
}

/// The agent-based swarm simulator.
///
/// # Examples
///
/// ```
/// use swarm::{sim::AgentSwarm, SwarmParams};
/// use rand::SeedableRng;
///
/// let params = SwarmParams::builder(2)
///     .seed_rate(1.0)
///     .contact_rate(1.0)
///     .seed_departure_rate(2.0)
///     .fresh_arrivals(0.5)
///     .build()
///     .unwrap();
/// let sim = AgentSwarm::new(params).unwrap();
/// let mut rng = rand::rngs::StdRng::seed_from_u64(3);
/// let result = sim.run(&[], 200.0, &mut rng);
/// assert!(result.final_snapshot().time >= 199.9);
/// assert!(!result.truncated);
/// ```
pub struct AgentSwarm {
    params: SwarmParams,
    config: AgentConfig,
    policy: Box<dyn PiecePolicy>,
    /// Coded arrival mix, present exactly when the kernel is
    /// [`KernelKind::Coded`] (established by [`AgentSwarm::with_coded`]).
    coded: Option<CodedGifts>,
}

impl AgentSwarm {
    /// Creates a simulator with the default configuration and the paper's
    /// random-useful policy.
    ///
    /// # Errors
    ///
    /// Returns [`SwarmError::InvalidParameter`] if the configuration is
    /// invalid (see [`AgentSwarm::with_config`]).
    pub fn new(params: SwarmParams) -> Result<Self, SwarmError> {
        Self::with_config(params, AgentConfig::default(), Box::new(RandomUseful))
    }

    /// Creates a simulator with an explicit configuration and policy.
    ///
    /// # Errors
    ///
    /// Returns [`SwarmError::InvalidParameter`] if the watch piece is outside
    /// the file, the retry speed-up is less than one, or the snapshot
    /// interval is not positive.
    pub fn with_config(
        params: SwarmParams,
        config: AgentConfig,
        policy: Box<dyn PiecePolicy>,
    ) -> Result<Self, SwarmError> {
        if config.kernel == KernelKind::Coded || config.kernel == KernelKind::CodedTurbo {
            return Err(SwarmError::InvalidParameter(
                "the coded kernels need coded parameters; construct the \
                 simulator with AgentSwarm::with_coded or \
                 AgentSwarm::with_coded_turbo"
                    .into(),
            ));
        }
        Self::validate_config(&params, &config)?;
        Ok(AgentSwarm {
            params,
            config,
            policy,
            coded: None,
        })
    }

    /// Creates a simulator for the network-coded swarm of Section VIII-B on
    /// the [`KernelKind::Coded`] kernel: peers hold subspaces of `F_q^K`,
    /// arrivals carry `d` uniformly random coded pieces per
    /// [`CodedParams::gift_dimensions`], and the fixed seed and peer
    /// contacts upload random linear combinations.
    ///
    /// Piece-selection policies do not apply (a coded upload is always a
    /// random combination of everything the uploader holds), and the
    /// Section VIII-C retry speed-up is not modelled for the coded system.
    ///
    /// # Errors
    ///
    /// Returns [`SwarmError::InvalidParameter`] if `config.kernel` is not
    /// [`KernelKind::Coded`], the retry speed-up is not 1, the gift mix
    /// fails [`CodedGifts::validate_for`], or the configuration is invalid.
    pub fn with_coded(params: CodedParams, config: AgentConfig) -> Result<Self, SwarmError> {
        if config.kernel != KernelKind::Coded {
            return Err(SwarmError::InvalidParameter(
                "coded parameters run on the coded kernel; set \
                 AgentConfig::kernel to KernelKind::Coded"
                    .into(),
            ));
        }
        if config.retry_speedup != 1.0 {
            return Err(SwarmError::InvalidParameter(
                "the coded kernel does not model the Section VIII-C retry \
                 speed-up (retry_speedup must be 1)"
                    .into(),
            ));
        }
        let gifts = params.gifts();
        gifts.validate_for(&params.base)?;
        Self::validate_config(&params.base, &config)?;
        Ok(AgentSwarm {
            params: params.base,
            config,
            policy: Box::new(RandomUseful),
            coded: Some(gifts),
        })
    }

    /// Creates a simulator for the network-coded swarm of Section VIII-B on
    /// the bitsliced [`KernelKind::CodedTurbo`] kernel: subspaces of
    /// `F_2^K` as packed `u64` rows, lazy peers that materialize a basis
    /// only when a peer-to-peer transfer needs one, alias-table gift draws,
    /// and [`SimScratch`] arena reuse.
    ///
    /// The bitsliced representation is specific to `GF(2)` (vector addition
    /// = XOR, the only non-zero scalar is one); coded scenarios over larger
    /// fields keep routing to [`AgentSwarm::with_coded`]. Like the coded
    /// kernel it models no piece-selection policy and no Section VIII-C
    /// retry speed-up.
    ///
    /// # Errors
    ///
    /// Returns [`SwarmError::InvalidParameter`] if `config.kernel` is not
    /// [`KernelKind::CodedTurbo`], the field is not `GF(2)`, the retry
    /// speed-up is not 1, the gift mix fails
    /// [`CodedGifts::validate_for`], or the configuration is invalid.
    pub fn with_coded_turbo(params: CodedParams, config: AgentConfig) -> Result<Self, SwarmError> {
        if config.kernel != KernelKind::CodedTurbo {
            return Err(SwarmError::InvalidParameter(
                "coded-turbo parameters run on the coded-turbo kernel; set \
                 AgentConfig::kernel to KernelKind::CodedTurbo"
                    .into(),
            ));
        }
        if params.field.order() != 2 {
            return Err(SwarmError::InvalidParameter(format!(
                "the coded-turbo kernel is bitsliced over GF(2); GF({}) \
                 scenarios route to the coded kernel (AgentSwarm::with_coded)",
                params.field.order()
            )));
        }
        if config.retry_speedup != 1.0 {
            return Err(SwarmError::InvalidParameter(
                "the coded-turbo kernel does not model the Section VIII-C \
                 retry speed-up (retry_speedup must be 1)"
                    .into(),
            ));
        }
        let gifts = params.gifts();
        gifts.validate_for(&params.base)?;
        Self::validate_config(&params.base, &config)?;
        Ok(AgentSwarm {
            params: params.base,
            config,
            policy: Box::new(RandomUseful),
            coded: Some(gifts),
        })
    }

    /// The kernel-independent configuration checks shared by the
    /// constructors.
    fn validate_config(params: &SwarmParams, config: &AgentConfig) -> Result<(), SwarmError> {
        if config.watch_piece.index() >= params.num_pieces() {
            return Err(SwarmError::InvalidParameter(format!(
                "watch piece {} outside a {}-piece file",
                config.watch_piece,
                params.num_pieces()
            )));
        }
        if !(config.retry_speedup >= 1.0 && config.retry_speedup.is_finite()) {
            return Err(SwarmError::InvalidParameter(format!(
                "retry speed-up η = {} must be a finite value ≥ 1",
                config.retry_speedup
            )));
        }
        if config.snapshot_interval.is_nan() || config.snapshot_interval <= 0.0 {
            return Err(SwarmError::InvalidParameter(
                "snapshot interval must be positive".into(),
            ));
        }
        Ok(())
    }

    /// The coded arrival mix when the simulator runs the
    /// [`KernelKind::Coded`] kernel, `None` otherwise.
    #[must_use]
    pub fn coded_gifts(&self) -> Option<&CodedGifts> {
        self.coded.as_ref()
    }

    /// The model parameters.
    #[must_use]
    pub fn params(&self) -> &SwarmParams {
        &self.params
    }

    /// The simulator configuration.
    #[must_use]
    pub fn config(&self) -> &AgentConfig {
        &self.config
    }

    /// The name of the piece-selection policy in use.
    #[must_use]
    pub fn policy_name(&self) -> &'static str {
        self.policy.name()
    }

    /// Runs the simulation from an initial population (`initial[i]` is the
    /// piece collection of the `i`-th initial peer) up to `horizon`.
    ///
    /// # Panics
    ///
    /// Panics if the initial population fails [`AgentSwarm::validate_run`]
    /// (a collection outside the file, or a complete collection while
    /// `γ = ∞`). Use [`AgentSwarm::run_with_schedule`] for the fallible
    /// form.
    #[must_use]
    pub fn run<R: Rng>(&self, initial: &[PieceSet], horizon: f64, rng: &mut R) -> SimResult {
        self.run_with_schedule(initial, &[], horizon, rng)
            // simlint: allow(E001, "documented infallible convenience wrapper; fallible callers use run_with_schedule")
            .expect("valid initial population")
    }

    /// Runs from a one-club initial condition: `n` peers all missing exactly
    /// the watch piece.
    #[must_use]
    pub fn run_from_one_club<R: Rng>(&self, n: usize, horizon: f64, rng: &mut R) -> SimResult {
        let club = self.params.full_type().without(self.config.watch_piece);
        let initial = vec![club; n];
        self.run(&initial, horizon, rng)
    }

    /// Validates an initial population and flash schedule without running:
    /// every collection must stay inside the `K`-piece file, crowd times
    /// must be finite and non-negative, and — mirroring the builder's
    /// `λ_F = 0` convention — no *complete* collection may be injected when
    /// `γ = ∞` (such a peer would never depart and act as a phantom
    /// permanent seed).
    ///
    /// # Errors
    ///
    /// Returns [`SwarmError::InvalidParameter`] describing the first
    /// violation.
    pub fn validate_run(
        &self,
        initial: &[PieceSet],
        flash: &[FlashCrowd],
    ) -> Result<(), SwarmError> {
        let full = self.params.full_type();
        let check_type = |pieces: PieceSet, what: &str| -> Result<(), SwarmError> {
            if !pieces.is_subset_of(full) {
                return Err(SwarmError::InvalidParameter(format!(
                    "{what} type {} uses pieces outside a {}-piece file",
                    pieces.paper_notation(),
                    self.params.num_pieces()
                )));
            }
            if self.params.departs_immediately() && pieces == full {
                return Err(SwarmError::InvalidParameter(format!(
                    "{what} peers hold the complete collection, but with γ = ∞ \
                     complete peers leave instantly and may never be injected \
                     (the paper's λ_F = 0 convention)"
                )));
            }
            Ok(())
        };
        for &pieces in initial {
            check_type(pieces, "initial")?;
        }
        for crowd in flash {
            if !(crowd.time.is_finite() && crowd.time >= 0.0) {
                return Err(SwarmError::InvalidParameter(format!(
                    "flash crowd time {} must be finite and non-negative",
                    crowd.time
                )));
            }
            check_type(crowd.pieces, "flash crowd")?;
        }
        Ok(())
    }

    /// Runs with a schedule of [`FlashCrowd`] injections on top of the
    /// Poisson arrival process. Crowds past the horizon are ignored.
    ///
    /// # Errors
    ///
    /// Returns [`SwarmError::InvalidParameter`] if the initial population or
    /// schedule fails [`AgentSwarm::validate_run`].
    pub fn run_with_schedule<R: Rng>(
        &self,
        initial: &[PieceSet],
        flash: &[FlashCrowd],
        horizon: f64,
        rng: &mut R,
    ) -> Result<SimResult, SwarmError> {
        self.run_with_scratch(initial, flash, horizon, rng, &mut SimScratch::new())
    }

    /// Runs like [`AgentSwarm::run_with_schedule`], reusing the buffers of
    /// `scratch` instead of allocating fresh state.
    ///
    /// With the [`KernelKind::Turbo`] kernel the entire peer table — piece
    /// matrix, per-peer metadata, sampling pools, snapshot buffer — lives in
    /// the scratch arena, so a replication loop that calls this repeatedly
    /// (and returns each result via [`SimScratch::recycle`]) performs no
    /// per-replication allocation once the buffers have grown to the
    /// workload's high-water mark. The other kernels reuse the recycled
    /// snapshot buffer only (their peer state is rebuilt per run, keeping
    /// their draw-parity contract untouched).
    ///
    /// The scratch never influences the trajectory: for a fixed RNG stream
    /// the result is identical whether the scratch is fresh or warm.
    ///
    /// # Errors
    ///
    /// Returns [`SwarmError::InvalidParameter`] if the initial population or
    /// schedule fails [`AgentSwarm::validate_run`].
    pub fn run_with_scratch<R: Rng>(
        &self,
        initial: &[PieceSet],
        flash: &[FlashCrowd],
        horizon: f64,
        rng: &mut R,
        scratch: &mut SimScratch,
    ) -> Result<SimResult, SwarmError> {
        self.run_metered(initial, flash, horizon, rng, scratch, &mut NullRecorder)
    }

    /// Runs like [`AgentSwarm::run_with_scratch`] with an instrumentation
    /// [`Recorder`] threaded through the kernel hot loops.
    ///
    /// The recorder observes the run — contacts, useful vs. useless
    /// transfers, pool churn, rejection retries, RREF absorbs, and the rest
    /// of the [`telemetry::Counter`] taxonomy — but never influences it:
    /// recorders consume no randomness, so for a fixed RNG stream the result
    /// is byte-identical to the unmetered run. With the default
    /// [`NullRecorder`] (what [`AgentSwarm::run_with_scratch`] passes) every
    /// recorder call monomorphizes to an empty inlined body, keeping the
    /// disabled hot path branch-free.
    ///
    /// # Errors
    ///
    /// Returns [`SwarmError::InvalidParameter`] if the initial population or
    /// schedule fails [`AgentSwarm::validate_run`].
    pub fn run_metered<R: Rng, T: Recorder>(
        &self,
        initial: &[PieceSet],
        flash: &[FlashCrowd],
        horizon: f64,
        rng: &mut R,
        scratch: &mut SimScratch,
        recorder: &mut T,
    ) -> Result<SimResult, SwarmError> {
        self.validate_run(initial, flash)?;
        let mut schedule: Vec<FlashCrowd> = flash.to_vec();
        schedule.sort_by(|a, b| a.time.total_cmp(&b.time));
        Ok(match self.config.kernel {
            KernelKind::EventDriven => drive(
                self,
                event::State::new(self, initial, scratch.take_snapshots(), recorder),
                &schedule,
                horizon,
                rng,
            ),
            KernelKind::LegacyScan => drive(
                self,
                scan::State::new(self, initial, scratch.take_snapshots(), recorder),
                &schedule,
                horizon,
                rng,
            ),
            KernelKind::Turbo => drive(
                self,
                turbo::State::new(self, initial, scratch, recorder),
                &schedule,
                horizon,
                rng,
            ),
            KernelKind::Coded => {
                let gifts = self
                    .coded
                    .as_ref()
                    // simlint: allow(E001, "with_coded establishes the gift mix before the coded kernel is selectable")
                    .expect("with_coded establishes the gift mix for the coded kernel");
                drive(
                    self,
                    coded::State::new(self, gifts, initial, scratch.take_snapshots(), recorder),
                    &schedule,
                    horizon,
                    rng,
                )
            }
            KernelKind::CodedTurbo => {
                let gifts = self
                    .coded
                    .as_ref()
                    // simlint: allow(E001, "with_coded_turbo establishes the gift mix before the coded-turbo kernel is selectable")
                    .expect("with_coded_turbo establishes the gift mix for the coded-turbo kernel");
                drive(
                    self,
                    coded_turbo::State::new(self, gifts, initial, scratch, recorder),
                    &schedule,
                    horizon,
                    rng,
                )
            }
        })
    }
}

/// The bookkeeping interface a kernel exposes to the shared driver loop.
///
/// The driver owns time, the aggregate rate computation, event selection,
/// the snapshot grid, the flash schedule, and truncation; kernels own the
/// population state and the per-event updates. Every handler of the
/// draw-compatible kernels (event-driven and scan) must consume random
/// draws in exactly the same order — that is what makes their trajectories
/// reproducible kernel-to-kernel. The turbo kernel is exempt: it must only
/// sample each handler's outcome from the correct distribution.
trait KernelState {
    /// Reserves capacity for about `capacity` snapshots before the run
    /// starts (the driver derives it from the horizon and snapshot grid, so
    /// recording never reallocates mid-run on the happy path).
    fn reserve_snapshots(&mut self, capacity: usize);
    /// Current population size `n`.
    fn population(&self) -> usize;
    /// Current number of peer seeds (complete collections).
    fn seed_count(&self) -> usize;
    /// Current number of peers running a boosted retry clock.
    fn boosted_count(&self) -> usize;
    /// Whether the fixed seed runs a boosted retry clock.
    fn seed_boosted(&self) -> bool;
    /// Records a snapshot at `time`.
    fn record_snapshot(&mut self, time: f64);
    /// A Poisson arrival fires at `time`.
    fn handle_arrival<R: Rng>(&mut self, time: f64, rng: &mut R);
    /// The fixed seed's clock fires at `time`.
    fn handle_seed_tick<R: Rng>(&mut self, time: f64, rng: &mut R);
    /// Some peer's contact clock fires at `time`.
    fn handle_peer_tick<R: Rng>(&mut self, time: f64, rng: &mut R);
    /// A peer-seed departure fires at `time`.
    fn handle_seed_departure<R: Rng>(&mut self, time: f64, rng: &mut R);
    /// Injects a flash crowd (no random draws).
    fn inject(&mut self, time: f64, pieces: PieceSet, count: usize);
    /// Consumes the kernel into the run's result.
    fn finish(self, events: u64, truncated: bool, horizon: f64) -> SimResult;
}

/// The shared event loop: aggregate exponential clocks per peer class,
/// updated `O(1)` per event from the kernel's maintained counts.
fn drive<S: KernelState, R: Rng>(
    sim: &AgentSwarm,
    mut state: S,
    flash: &[FlashCrowd],
    horizon: f64,
    rng: &mut R,
) -> SimResult {
    let params = &sim.params;
    let eta = sim.config.retry_speedup;
    let gamma_finite = !params.departs_immediately();
    let interval = sim.config.snapshot_interval;
    // Loop-invariant rate constants, hoisted: `total_arrival_rate` in
    // particular walks the arrival map, which is far too expensive to redo
    // on every event.
    let arrival_rate = params.total_arrival_rate();
    let us = params.seed_rate();
    let mu = params.contact_rate();
    let gamma = if gamma_finite {
        params.seed_departure_rate()
    } else {
        0.0
    };

    // Pre-reserve the snapshot vector for the whole grid (initial + final
    // snapshots included), capped so an absurd horizon/interval combination
    // degrades to incremental growth instead of an up-front OOM.
    const MAX_PRE_RESERVED_SNAPSHOTS: usize = 1 << 20;
    if horizon.is_finite() && horizon >= 0.0 {
        let grid_points = (horizon / interval).min(MAX_PRE_RESERVED_SNAPSHOTS as f64) as usize;
        state.reserve_snapshots(grid_points.saturating_add(2));
    }

    state.record_snapshot(0.0);
    // Snapshot times are the grid `i · interval`, computed by multiplication
    // so long horizons do not accumulate floating-point drift.
    let mut next_snapshot: u64 = 1;
    let mut last_snapshot = 0.0f64;
    let mut time = 0.0f64;
    let mut events = 0u64;
    let mut truncated = false;
    let mut next_flash = 0usize;

    loop {
        if events >= sim.config.max_events {
            truncated = true;
            break;
        }
        let n = state.population();
        let seeds = if gamma_finite { state.seed_count() } else { 0 };
        let boosted = state.boosted_count();

        let seed_tick_rate = if n > 0 {
            us * if state.seed_boosted() { eta } else { 1.0 }
        } else {
            0.0
        };
        let peer_tick_rate = mu * ((n - boosted) as f64 + eta * boosted as f64);
        let departure_rate = if gamma_finite {
            gamma * seeds as f64
        } else {
            0.0
        };
        let rates = [arrival_rate, seed_tick_rate, peer_tick_rate, departure_rate];
        let total: f64 = rates.iter().sum();
        debug_assert!(total > 0.0, "λ_total > 0 guarantees a positive total rate");

        let dt = sample_exp(rng, total);
        let new_time = time + dt;

        // A scheduled flash crowd pre-empts the sampled event: jump to the
        // crowd, inject it, and resample (the exponential clocks are
        // memoryless, so discarding the sampled jump is exact).
        if let Some(crowd) = flash.get(next_flash) {
            if crowd.time <= new_time.min(horizon) {
                while (next_snapshot as f64) * interval <= crowd.time {
                    let t = (next_snapshot as f64) * interval;
                    state.record_snapshot(t);
                    last_snapshot = t;
                    next_snapshot += 1;
                }
                time = crowd.time;
                state.inject(time, crowd.pieces, crowd.count);
                next_flash += 1;
                continue;
            }
        }

        // Emit snapshots for every grid point crossed before the event.
        while (next_snapshot as f64) * interval <= new_time.min(horizon) {
            let t = (next_snapshot as f64) * interval;
            state.record_snapshot(t);
            last_snapshot = t;
            next_snapshot += 1;
        }
        if new_time > horizon {
            time = horizon;
            break;
        }
        time = new_time;
        events += 1;

        // simlint: allow(E001, "total rate > 0 here: a zero-rate state takes the infinite-horizon break above")
        match sample_weighted_index(rng, &rates).expect("positive total rate") {
            0 => state.handle_arrival(time, rng),
            1 => state.handle_seed_tick(time, rng),
            2 => state.handle_peer_tick(time, rng),
            _ => state.handle_seed_departure(time, rng),
        }
    }

    // Final snapshot at the horizon (or at the truncation point).
    let end = time.max(last_snapshot);
    state.record_snapshot(end);
    state.finish(events, truncated, end)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::policy::{RarestFirst, Sequential};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn params(k: usize, us: f64, mu: f64, gamma: f64, lambda0: f64) -> SwarmParams {
        let mut b = SwarmParams::builder(k)
            .seed_rate(us)
            .contact_rate(mu)
            .fresh_arrivals(lambda0);
        if gamma.is_finite() {
            b = b.seed_departure_rate(gamma);
        }
        b.build().unwrap()
    }

    #[test]
    fn config_validation() {
        let p = params(2, 1.0, 1.0, 1.0, 1.0);
        let bad_watch = AgentConfig {
            watch_piece: PieceId::new(5),
            ..Default::default()
        };
        assert!(AgentSwarm::with_config(p.clone(), bad_watch, Box::new(RandomUseful)).is_err());
        let bad_eta = AgentConfig {
            retry_speedup: 0.5,
            ..Default::default()
        };
        assert!(AgentSwarm::with_config(p.clone(), bad_eta, Box::new(RandomUseful)).is_err());
        let bad_snap = AgentConfig {
            snapshot_interval: 0.0,
            ..Default::default()
        };
        assert!(AgentSwarm::with_config(p.clone(), bad_snap, Box::new(RandomUseful)).is_err());
        assert!(AgentSwarm::new(p).is_ok());
    }

    #[test]
    fn flash_schedule_validation() {
        let p = params(2, 1.0, 1.0, 2.0, 1.0);
        let sim = AgentSwarm::new(p).unwrap();
        let mut rng = StdRng::seed_from_u64(0);
        let bad_time = FlashCrowd {
            time: -1.0,
            count: 5,
            pieces: PieceSet::empty(),
        };
        assert!(sim
            .run_with_schedule(&[], &[bad_time], 10.0, &mut rng)
            .is_err());
        let bad_type = FlashCrowd {
            time: 1.0,
            count: 5,
            pieces: PieceSet::singleton(PieceId::new(7)),
        };
        assert!(sim
            .run_with_schedule(&[], &[bad_type], 10.0, &mut rng)
            .is_err());
    }

    #[test]
    fn gamma_infinite_rejects_injected_complete_peers() {
        // With immediate departure a complete peer would never leave (a
        // phantom permanent seed), so validation refuses it in both the
        // initial population and flash crowds; finite γ allows it.
        let p = params(2, 1.0, 1.0, f64::INFINITY, 1.0);
        let sim = AgentSwarm::new(p).unwrap();
        let full = PieceSet::full(2);
        assert!(sim.validate_run(&[full], &[]).is_err());
        let crowd = FlashCrowd {
            time: 1.0,
            count: 5,
            pieces: full,
        };
        assert!(sim.validate_run(&[], &[crowd]).is_err());
        let p = params(2, 1.0, 1.0, 2.0, 1.0);
        let sim = AgentSwarm::new(p).unwrap();
        assert!(sim.validate_run(&[full], &[crowd]).is_ok());
    }

    #[test]
    fn stable_system_keeps_population_bounded() {
        // Example 1 inside the stability region: λ0 = 1 < U_s/(1−µ/γ) = 4.
        let p = params(1, 2.0, 1.0, 2.0, 1.0);
        let sim = AgentSwarm::new(p).unwrap();
        let mut rng = StdRng::seed_from_u64(1);
        let result = sim.run(&[], 2_000.0, &mut rng);
        let path = result.peer_count_path();
        let classifier = markov::PathClassifier::new(1.0, 30.0);
        assert_eq!(classifier.classify(&path).class, markov::PathClass::Stable);
        assert!(
            result.sojourns.departures > 100,
            "plenty of peers complete and leave"
        );
    }

    #[test]
    fn transient_system_grows_at_predicted_rate() {
        // Example 1 outside the region: λ0 = 4 > U_s/(1−µ/γ) = 2.
        // The one-club (= type ∅ here) grows at rate ≈ λ0 − U_s/(1−µ/γ) = 2.
        let p = params(1, 1.0, 1.0, 2.0, 4.0);
        let sim = AgentSwarm::new(p).unwrap();
        let mut rng = StdRng::seed_from_u64(2);
        let result = sim.run(&[], 1_500.0, &mut rng);
        let trend = result.peer_count_path().trend(0.5);
        assert!(trend.slope > 1.0, "slope {}", trend.slope);
        assert!(
            (trend.slope - 2.0).abs() < 0.7,
            "slope {} should be near 2",
            trend.slope
        );
    }

    #[test]
    fn one_club_initial_condition_grows_when_unstable() {
        // K = 3, no seed help for the watch piece beyond a weak fixed seed.
        let p = params(3, 0.2, 1.0, 4.0, 3.0);
        assert_eq!(
            crate::stability::classify(&p).verdict,
            crate::StabilityVerdict::Transient
        );
        let sim = AgentSwarm::new(p).unwrap();
        let mut rng = StdRng::seed_from_u64(3);
        let result = sim.run_from_one_club(100, 500.0, &mut rng);
        let first = result.snapshots.first().unwrap();
        let last = result.final_snapshot();
        assert_eq!(first.groups.one_club, 100);
        assert!(
            last.groups.one_club > 200,
            "one club should keep growing, got {}",
            last.groups.one_club
        );
    }

    #[test]
    fn group_decomposition_partitions_the_population() {
        let p = SwarmParams::builder(3)
            .seed_rate(0.5)
            .contact_rate(1.0)
            .seed_departure_rate(1.5)
            .fresh_arrivals(1.0)
            .arrival(PieceSet::singleton(PieceId::new(0)), 0.3)
            .build()
            .unwrap();
        let sim = AgentSwarm::new(p).unwrap();
        let mut rng = StdRng::seed_from_u64(4);
        let result = sim.run(&[], 500.0, &mut rng);
        for snap in &result.snapshots {
            assert_eq!(
                snap.groups.total(),
                snap.total_peers,
                "groups partition peers at t = {}",
                snap.time
            );
        }
        // gifted peers exist because some arrivals carry the watch piece
        assert!(
            result.final_snapshot().groups.gifted > 0
                || result.snapshots.iter().any(|s| s.groups.gifted > 0)
        );
    }

    #[test]
    fn counters_are_monotone_and_consistent() {
        let p = params(2, 1.0, 1.0, 2.0, 1.0);
        let sim = AgentSwarm::new(p).unwrap();
        let mut rng = StdRng::seed_from_u64(5);
        let result = sim.run(&[], 300.0, &mut rng);
        let mut prev_d = 0;
        let mut prev_a = 0;
        for s in &result.snapshots {
            assert!(s.watch_piece_downloads >= prev_d);
            assert!(s.arrivals_without_watch >= prev_a);
            prev_d = s.watch_piece_downloads;
            prev_a = s.arrivals_without_watch;
            assert!(
                s.watch_piece_copies <= s.total_peers,
                "at most one copy per peer"
            );
        }
        assert!(result.transfers > 0);
        assert!(result.events > 0);
        assert!(!result.truncated);
    }

    #[test]
    fn gamma_infinite_leaves_no_seeds_in_system() {
        let p = params(2, 1.0, 1.0, f64::INFINITY, 1.0);
        let sim = AgentSwarm::new(p).unwrap();
        let mut rng = StdRng::seed_from_u64(6);
        let result = sim.run(&[], 400.0, &mut rng);
        for s in &result.snapshots {
            assert_eq!(s.peer_seeds, 0, "peers depart the instant they complete");
        }
        assert!(result.sojourns.departures > 0);
    }

    #[test]
    fn policies_do_not_change_stability_at_stable_point() {
        // Theorem 14 sanity at small scale: a stable parameter point stays
        // stable under sequential and rarest-first selection.
        let p = params(3, 2.0, 1.0, 2.0, 1.0);
        for policy in [
            Box::new(RarestFirst) as Box<dyn PiecePolicy>,
            Box::new(Sequential) as Box<dyn PiecePolicy>,
        ] {
            let sim = AgentSwarm::with_config(p.clone(), AgentConfig::default(), policy).unwrap();
            let mut rng = StdRng::seed_from_u64(7);
            let result = sim.run(&[], 1_000.0, &mut rng);
            let classifier = markov::PathClassifier::new(1.0, 40.0);
            assert_eq!(
                classifier.classify(&result.peer_count_path()).class,
                markov::PathClass::Stable,
                "policy {}",
                sim.policy_name()
            );
        }
    }

    #[test]
    fn retry_speedup_increases_contact_attempts() {
        // With η > 1 a starved uploader retries faster, so the number of
        // unsuccessful contacts grows relative to the base model.
        let p = params(1, 0.2, 1.0, 2.0, 2.0);
        let mut rng = StdRng::seed_from_u64(8);
        let base = AgentSwarm::new(p.clone())
            .unwrap()
            .run(&[], 500.0, &mut rng);
        let mut rng = StdRng::seed_from_u64(8);
        let boosted_cfg = AgentConfig {
            retry_speedup: 10.0,
            ..Default::default()
        };
        let boosted = AgentSwarm::with_config(p, boosted_cfg, Box::new(RandomUseful))
            .unwrap()
            .run(&[], 500.0, &mut rng);
        assert!(
            boosted.unsuccessful_contacts > base.unsuccessful_contacts,
            "boosted {} vs base {}",
            boosted.unsuccessful_contacts,
            base.unsuccessful_contacts
        );
    }

    #[test]
    fn sojourn_times_are_positive_and_reasonable() {
        let p = params(2, 2.0, 1.0, 2.0, 1.0);
        let sim = AgentSwarm::new(p).unwrap();
        let mut rng = StdRng::seed_from_u64(9);
        let result = sim.run(&[], 1_000.0, &mut rng);
        assert!(result.sojourns.departures > 50);
        assert!(result.sojourns.mean_sojourn() > 0.0);
        assert!(result.sojourns.max_sojourn >= result.sojourns.mean_sojourn());
    }

    #[test]
    fn both_kernels_produce_identical_trajectories() {
        // The exhaustive version lives in tests/kernel_equivalence.rs; this
        // is the smoke check close to the implementation.
        let p = params(3, 0.5, 1.0, 2.0, 1.5);
        for kernel in [KernelKind::EventDriven, KernelKind::LegacyScan] {
            let config = AgentConfig {
                kernel,
                snapshot_interval: 5.0,
                ..Default::default()
            };
            let sim = AgentSwarm::with_config(p.clone(), config, Box::new(RandomUseful)).unwrap();
            let mut rng = StdRng::seed_from_u64(11);
            let result = sim.run_from_one_club(20, 150.0, &mut rng);
            if kernel == KernelKind::EventDriven {
                // run once more with the scan kernel below and compare
                let scan_cfg = AgentConfig {
                    kernel: KernelKind::LegacyScan,
                    snapshot_interval: 5.0,
                    ..Default::default()
                };
                let scan_sim =
                    AgentSwarm::with_config(p.clone(), scan_cfg, Box::new(RandomUseful)).unwrap();
                let mut rng2 = StdRng::seed_from_u64(11);
                let scan = scan_sim.run_from_one_club(20, 150.0, &mut rng2);
                assert_eq!(result, scan);
            }
        }
    }

    #[test]
    fn truncation_is_reported_and_identical_across_kernels() {
        let p = params(2, 1.0, 1.0, 2.0, 2.0);
        let mut results = Vec::new();
        for kernel in [KernelKind::EventDriven, KernelKind::LegacyScan] {
            let config = AgentConfig {
                kernel,
                max_events: 500,
                snapshot_interval: 1.0,
                ..Default::default()
            };
            let sim = AgentSwarm::with_config(p.clone(), config, Box::new(RandomUseful)).unwrap();
            let mut rng = StdRng::seed_from_u64(13);
            let result = sim.run(&[], 10_000.0, &mut rng);
            assert!(result.truncated, "500 events cannot reach horizon 10000");
            assert_eq!(result.events, 500);
            assert!(result.horizon < 10_000.0);
            results.push(result);
        }
        assert_eq!(results[0], results[1]);
    }

    #[test]
    fn snapshot_times_sit_on_the_grid_without_drift() {
        let p = params(1, 2.0, 1.0, 2.0, 1.0);
        let config = AgentConfig {
            snapshot_interval: 0.1,
            ..Default::default()
        };
        let sim = AgentSwarm::with_config(p, config, Box::new(RandomUseful)).unwrap();
        let mut rng = StdRng::seed_from_u64(17);
        let result = sim.run(&[], 2_000.0, &mut rng);
        // With naive `t += 0.1` accumulation the 20000th snapshot drifts by
        // thousands of ulps; on the multiplicative grid it is exact.
        for (i, snap) in result.snapshots.iter().enumerate().skip(1) {
            if i < result.snapshots.len() - 1 {
                let expected = (i as f64) * 0.1;
                assert_eq!(snap.time, expected, "snapshot {i} off the grid");
            }
        }
    }

    #[test]
    fn flash_crowd_joins_at_the_scheduled_time() {
        let p = params(2, 1.0, 1.0, 2.0, 0.5);
        let sim = AgentSwarm::with_config(
            p,
            AgentConfig {
                snapshot_interval: 1.0,
                ..Default::default()
            },
            Box::new(RandomUseful),
        )
        .unwrap();
        let crowd = FlashCrowd {
            time: 50.0,
            count: 300,
            pieces: PieceSet::empty(),
        };
        let mut rng = StdRng::seed_from_u64(19);
        let result = sim
            .run_with_schedule(&[], &[crowd], 100.0, &mut rng)
            .unwrap();
        let before = result
            .snapshots
            .iter()
            .rfind(|s| s.time < 50.0)
            .expect("snapshots before the crowd");
        let after = result
            .snapshots
            .iter()
            .find(|s| s.time > 50.0)
            .expect("snapshots after the crowd");
        assert!(
            after.total_peers >= before.total_peers + 250,
            "crowd of 300 visible: {} -> {}",
            before.total_peers,
            after.total_peers
        );
        // Crowd members arrived empty-handed: they count as arrivals without
        // the watch piece.
        assert!(after.arrivals_without_watch >= before.arrivals_without_watch + 300);
    }

    #[test]
    fn flash_crowds_identical_across_kernels() {
        let p = params(3, 0.5, 1.0, 3.0, 1.0);
        let crowds = [
            FlashCrowd {
                time: 20.0,
                count: 100,
                pieces: PieceSet::empty(),
            },
            FlashCrowd {
                time: 60.0,
                count: 50,
                pieces: PieceSet::singleton(PieceId::new(1)),
            },
        ];
        let mut results = Vec::new();
        for kernel in [KernelKind::EventDriven, KernelKind::LegacyScan] {
            let config = AgentConfig {
                kernel,
                snapshot_interval: 5.0,
                ..Default::default()
            };
            let sim = AgentSwarm::with_config(p.clone(), config, Box::new(RandomUseful)).unwrap();
            let mut rng = StdRng::seed_from_u64(23);
            results.push(
                sim.run_with_schedule(&[], &crowds, 120.0, &mut rng)
                    .unwrap(),
            );
        }
        assert_eq!(results[0], results[1]);
    }

    #[test]
    fn turbo_kernel_is_deterministic_and_scratch_independent() {
        let p = params(3, 0.5, 1.0, 2.0, 1.5);
        let config = AgentConfig {
            kernel: KernelKind::Turbo,
            snapshot_interval: 5.0,
            retry_speedup: 4.0,
            ..Default::default()
        };
        let sim = AgentSwarm::with_config(p, config, Box::new(RandomUseful)).unwrap();
        let club = sim.params().full_type().without(PieceId::new(0));
        let initial = vec![club; 20];
        let mut fresh_rng = StdRng::seed_from_u64(31);
        let fresh = sim
            .run_with_schedule(&initial, &[], 150.0, &mut fresh_rng)
            .unwrap();
        // A warm scratch (already used by a different run) must not change
        // the numbers.
        let mut scratch = SimScratch::new();
        let mut warmup_rng = StdRng::seed_from_u64(99);
        let warmup = sim
            .run_with_scratch(&[], &[], 80.0, &mut warmup_rng, &mut scratch)
            .unwrap();
        scratch.recycle(warmup);
        let mut warm_rng = StdRng::seed_from_u64(31);
        let warm = sim
            .run_with_scratch(&initial, &[], 150.0, &mut warm_rng, &mut scratch)
            .unwrap();
        assert_eq!(fresh, warm, "scratch reuse must not perturb trajectories");
        assert!(fresh.transfers > 0);
    }

    #[test]
    fn turbo_groups_partition_population_and_counters_are_consistent() {
        let p = SwarmParams::builder(3)
            .seed_rate(0.5)
            .contact_rate(1.0)
            .seed_departure_rate(1.5)
            .fresh_arrivals(1.0)
            .arrival(PieceSet::singleton(PieceId::new(0)), 0.3)
            .build()
            .unwrap();
        let config = AgentConfig {
            kernel: KernelKind::Turbo,
            retry_speedup: 6.0,
            ..Default::default()
        };
        let sim = AgentSwarm::with_config(p, config, Box::new(RandomUseful)).unwrap();
        let mut rng = StdRng::seed_from_u64(41);
        let crowd = FlashCrowd {
            time: 100.0,
            count: 50,
            pieces: PieceSet::empty(),
        };
        let result = sim
            .run_with_schedule(&[], &[crowd], 400.0, &mut rng)
            .unwrap();
        let mut prev_downloads = 0;
        for snap in &result.snapshots {
            assert_eq!(
                snap.groups.total(),
                snap.total_peers,
                "groups partition peers at t = {}",
                snap.time
            );
            assert!(snap.watch_piece_copies <= snap.total_peers);
            assert!(snap.watch_piece_downloads >= prev_downloads);
            prev_downloads = snap.watch_piece_downloads;
        }
        assert!(result.sojourns.departures > 0);
        assert!(result.transfers > 0);
    }

    #[test]
    fn turbo_gamma_infinite_leaves_no_seeds_in_system() {
        let p = params(2, 1.0, 1.0, f64::INFINITY, 1.0);
        let config = AgentConfig {
            kernel: KernelKind::Turbo,
            ..Default::default()
        };
        let sim = AgentSwarm::with_config(p, config, Box::new(RandomUseful)).unwrap();
        let mut rng = StdRng::seed_from_u64(43);
        let result = sim.run(&[], 400.0, &mut rng);
        for s in &result.snapshots {
            assert_eq!(s.peer_seeds, 0, "peers depart the instant they complete");
        }
        assert!(result.sojourns.departures > 0);
    }

    fn coded_sim(
        k: usize,
        q: u64,
        lambda: f64,
        f: f64,
        us: f64,
        gamma: f64,
    ) -> Result<AgentSwarm, SwarmError> {
        let params = crate::coded::CodedParams::gift_example(k, q, lambda, f, us, 1.0, gamma)?;
        AgentSwarm::with_coded(
            params,
            AgentConfig {
                kernel: KernelKind::Coded,
                snapshot_interval: 5.0,
                ..Default::default()
            },
        )
    }

    #[test]
    fn coded_kernel_requires_with_coded_and_vice_versa() {
        let p = params(3, 0.5, 1.0, 2.0, 1.0);
        let config = AgentConfig {
            kernel: KernelKind::Coded,
            ..Default::default()
        };
        assert!(AgentSwarm::with_config(p, config, Box::new(RandomUseful)).is_err());
        let coded =
            crate::coded::CodedParams::gift_example(3, 8, 1.0, 0.5, 0.0, 1.0, f64::INFINITY)
                .unwrap();
        // Coded parameters on a non-coded kernel are rejected...
        assert!(AgentSwarm::with_coded(coded.clone(), AgentConfig::default()).is_err());
        // ...as is the unsupported retry speed-up.
        let boosted = AgentConfig {
            kernel: KernelKind::Coded,
            retry_speedup: 2.0,
            ..Default::default()
        };
        assert!(AgentSwarm::with_coded(coded.clone(), boosted).is_err());
        let ok = AgentSwarm::with_coded(
            coded,
            AgentConfig {
                kernel: KernelKind::Coded,
                ..Default::default()
            },
        )
        .unwrap();
        assert!(ok.coded_gifts().is_some());
    }

    #[test]
    fn coded_kernel_stable_case_completes_and_departs() {
        // Generous gifts, K = 3, GF(8): stable per Theorem 15, so peers keep
        // decoding and leaving and the dimension bookkeeping stays exact.
        let (_, hi) = crate::coded::theorem15_gift_thresholds(8, 3);
        let sim = coded_sim(3, 8, 1.0, (3.0 * hi).min(1.0), 0.0, f64::INFINITY).unwrap();
        let mut rng = StdRng::seed_from_u64(51);
        let result = sim.run(&[], 800.0, &mut rng);
        assert!(result.sojourns.departures > 50, "decoders depart");
        assert!(result.transfers > 0);
        let mut prev_decodes = 0;
        for snap in &result.snapshots {
            assert_eq!(snap.groups.total(), snap.total_peers, "groups partition");
            assert_eq!(snap.peer_seeds, 0, "γ = ∞ leaves no decoders behind");
            assert!(snap.watch_piece_copies <= 3 * snap.total_peers, "dim ≤ K");
            assert!(snap.watch_piece_downloads >= prev_decodes);
            prev_decodes = snap.watch_piece_downloads;
        }
        // The final histogram partitions the final population.
        let hist_total: u64 = result.final_dimensions.iter().sum();
        assert_eq!(hist_total, result.final_snapshot().total_peers);
        assert_eq!(result.final_dimensions.len(), 4);
        let classifier = markov::PathClassifier::new(1.0, 40.0);
        assert_eq!(
            classifier.classify(&result.peer_count_path()).class,
            markov::PathClass::Stable
        );
    }

    #[test]
    fn coded_kernel_starved_case_grows_without_departures() {
        // No gifts, no seed: nothing ever decodes.
        let sim = coded_sim(3, 8, 1.0, 0.0, 0.0, f64::INFINITY).unwrap();
        let mut rng = StdRng::seed_from_u64(52);
        let result = sim.run(&[], 500.0, &mut rng);
        assert_eq!(result.sojourns.departures, 0);
        assert_eq!(result.transfers, 0, "no knowledge ever enters the swarm");
        let trend = result.peer_count_path().trend(0.5);
        assert!(trend.slope > 0.5, "slope {}", trend.slope);
    }

    #[test]
    fn coded_kernel_finite_gamma_keeps_decoders_and_flash_crowds_inject() {
        let sim = coded_sim(3, 8, 1.0, 0.5, 0.5, 2.0).unwrap();
        let crowd = FlashCrowd {
            time: 60.0,
            count: 80,
            pieces: PieceSet::empty(),
        };
        let mut rng = StdRng::seed_from_u64(53);
        let result = sim
            .run_with_schedule(&[], &[crowd], 300.0, &mut rng)
            .unwrap();
        assert!(result.sojourns.departures > 0);
        assert!(
            result.snapshots.iter().any(|s| s.peer_seeds > 0),
            "finite γ lets decoders dwell"
        );
        let before = result.snapshots.iter().rfind(|s| s.time < 60.0).unwrap();
        let after = result.snapshots.iter().find(|s| s.time > 60.0).unwrap();
        assert!(
            after.total_peers >= before.total_peers + 50,
            "crowd visible"
        );
        for snap in &result.snapshots {
            assert_eq!(snap.groups.total(), snap.total_peers);
        }
    }

    #[test]
    fn coded_kernel_is_deterministic_per_seed() {
        let sim = coded_sim(4, 4, 1.2, 0.6, 0.3, 3.0).unwrap();
        let initial = vec![PieceSet::singleton(PieceId::new(1)); 15];
        let mut a = StdRng::seed_from_u64(54);
        let mut b = StdRng::seed_from_u64(54);
        let ra = sim.run(&initial, 200.0, &mut a);
        let rb = sim.run(&initial, 200.0, &mut b);
        assert_eq!(ra, rb);
        // Initial piece collections map to unit-vector spans: 15 peers at
        // dimension 1 at time zero.
        assert_eq!(ra.snapshots[0].watch_piece_copies, 15);
        assert_eq!(ra.snapshots[0].total_peers, 15);
    }

    fn coded_turbo_sim(
        k: usize,
        lambda: f64,
        f: f64,
        us: f64,
        gamma: f64,
    ) -> Result<AgentSwarm, SwarmError> {
        let params = crate::coded::CodedParams::gift_example(k, 2, lambda, f, us, 1.0, gamma)?;
        AgentSwarm::with_coded_turbo(
            params,
            AgentConfig {
                kernel: KernelKind::CodedTurbo,
                snapshot_interval: 5.0,
                ..Default::default()
            },
        )
    }

    #[test]
    fn coded_turbo_kernel_guards_its_constructor_and_gf2() {
        let p = params(3, 0.5, 1.0, 2.0, 1.0);
        let config = AgentConfig {
            kernel: KernelKind::CodedTurbo,
            ..Default::default()
        };
        // Uncoded parameters cannot select the coded-turbo kernel...
        assert!(AgentSwarm::with_config(p, config, Box::new(RandomUseful)).is_err());
        let gf2 = crate::coded::CodedParams::gift_example(3, 2, 1.0, 0.5, 0.0, 1.0, f64::INFINITY)
            .unwrap();
        // ...coded parameters need the coded-turbo kernel selected...
        assert!(AgentSwarm::with_coded_turbo(gf2.clone(), AgentConfig::default()).is_err());
        // ...the retry speed-up stays unsupported...
        let boosted = AgentConfig {
            kernel: KernelKind::CodedTurbo,
            retry_speedup: 2.0,
            ..Default::default()
        };
        assert!(AgentSwarm::with_coded_turbo(gf2.clone(), boosted).is_err());
        // ...and GF(q > 2) routes to the RREF kernel, not this one.
        let gf8 = crate::coded::CodedParams::gift_example(3, 8, 1.0, 0.5, 0.0, 1.0, f64::INFINITY)
            .unwrap();
        let turbo_config = AgentConfig {
            kernel: KernelKind::CodedTurbo,
            ..Default::default()
        };
        let err = match AgentSwarm::with_coded_turbo(gf8, turbo_config) {
            Err(err) => err,
            Ok(_) => panic!("GF(8) must be rejected by the bitsliced kernel"),
        };
        assert!(err.to_string().contains("GF(8)"), "{err}");
        assert!(AgentSwarm::with_coded_turbo(gf2, turbo_config).is_ok());
    }

    #[test]
    fn coded_turbo_stable_case_completes_and_departs() {
        // Generous gifts over GF(2), K = 3: stable per Theorem 15, so peers
        // keep decoding and leaving with the dimension bookkeeping exact.
        let (_, hi) = crate::coded::theorem15_gift_thresholds(2, 3);
        let sim = coded_turbo_sim(3, 1.0, (1.2 * hi).min(1.0), 0.0, f64::INFINITY).unwrap();
        let mut rng = StdRng::seed_from_u64(61);
        let result = sim.run(&[], 800.0, &mut rng);
        assert!(result.sojourns.departures > 50, "decoders depart");
        assert!(result.transfers > 0);
        let mut prev_decodes = 0;
        for snap in &result.snapshots {
            assert_eq!(snap.groups.total(), snap.total_peers, "groups partition");
            assert_eq!(snap.peer_seeds, 0, "γ = ∞ leaves no decoders behind");
            assert!(snap.watch_piece_copies <= 3 * snap.total_peers, "dim ≤ K");
            assert!(snap.watch_piece_downloads >= prev_decodes);
            prev_decodes = snap.watch_piece_downloads;
        }
        let hist_total: u64 = result.final_dimensions.iter().sum();
        assert_eq!(hist_total, result.final_snapshot().total_peers);
        assert_eq!(result.final_dimensions.len(), 4);
        let classifier = markov::PathClassifier::new(1.0, 40.0);
        assert_eq!(
            classifier.classify(&result.peer_count_path()).class,
            markov::PathClass::Stable
        );
    }

    #[test]
    fn coded_turbo_finite_gamma_keeps_decoders_and_flash_crowds_inject() {
        let sim = coded_turbo_sim(3, 1.0, 0.5, 0.5, 2.0).unwrap();
        let crowd = FlashCrowd {
            time: 60.0,
            count: 80,
            pieces: PieceSet::empty(),
        };
        let mut rng = StdRng::seed_from_u64(62);
        let result = sim
            .run_with_schedule(&[], &[crowd], 300.0, &mut rng)
            .unwrap();
        assert!(result.sojourns.departures > 0);
        assert!(
            result.snapshots.iter().any(|s| s.peer_seeds > 0),
            "finite γ lets decoders dwell"
        );
        let before = result.snapshots.iter().rfind(|s| s.time < 60.0).unwrap();
        let after = result.snapshots.iter().find(|s| s.time > 60.0).unwrap();
        assert!(
            after.total_peers >= before.total_peers + 50,
            "crowd visible"
        );
        for snap in &result.snapshots {
            assert_eq!(snap.groups.total(), snap.total_peers);
        }
    }

    #[test]
    fn coded_turbo_is_deterministic_per_seed_and_scratch_neutral() {
        let sim = coded_turbo_sim(4, 1.2, 0.6, 0.3, 3.0).unwrap();
        let initial = vec![PieceSet::singleton(PieceId::new(1)); 15];
        let mut a = StdRng::seed_from_u64(63);
        let mut b = StdRng::seed_from_u64(63);
        let ra = sim.run(&initial, 200.0, &mut a);
        let rb = sim.run(&initial, 200.0, &mut b);
        assert_eq!(ra, rb);
        // Initial piece collections are pure-unit lazy peers: 15 peers at
        // dimension 1 at time zero, nothing materialized.
        assert_eq!(ra.snapshots[0].watch_piece_copies, 15);
        assert_eq!(ra.snapshots[0].total_peers, 15);
        // A warm scratch from a previous replication must not change the
        // trajectory.
        let mut scratch = SimScratch::new();
        let mut warmup = StdRng::seed_from_u64(99);
        let first = sim
            .run_with_scratch(&initial, &[], 200.0, &mut warmup, &mut scratch)
            .unwrap();
        scratch.recycle(first);
        let mut c = StdRng::seed_from_u64(63);
        let rc = sim
            .run_with_scratch(&initial, &[], 200.0, &mut c, &mut scratch)
            .unwrap();
        assert_eq!(ra, rc, "warm scratch is trajectory-neutral");
    }

    #[test]
    fn snapshot_capacity_is_pre_reserved_for_the_grid() {
        // 500 time units at interval 0.5 → 1000 grid snapshots plus the
        // initial and final ones; growth mid-run would show as capacity
        // churn. We can only observe the result, so check the count matches
        // the grid exactly.
        let p = params(1, 2.0, 1.0, 2.0, 1.0);
        let config = AgentConfig {
            snapshot_interval: 0.5,
            ..Default::default()
        };
        let sim = AgentSwarm::with_config(p, config, Box::new(RandomUseful)).unwrap();
        let mut rng = StdRng::seed_from_u64(47);
        let result = sim.run(&[], 500.0, &mut rng);
        assert_eq!(result.snapshots.len(), 1002, "grid + initial + final");
    }

    #[test]
    fn large_k_swarm_runs_without_type_enumeration() {
        // K = 32 exceeds the 2^K-enumerable limit; the agent simulator must
        // not care (this is the benchmark regime).
        let full = PieceSet::full(32);
        let mut b = SwarmParams::builder(32).seed_rate(1.0).contact_rate(0.5);
        b = b.seed_departure_rate(8.0);
        for i in 0..4 {
            b = b.arrival(full.without(PieceId::new(i)), 0.5);
        }
        let p = b.build().expect("K = 32 parameters validate");
        let sim = AgentSwarm::new(p).unwrap();
        let mut rng = StdRng::seed_from_u64(29);
        let result = sim.run(&[], 50.0, &mut rng);
        assert!(result.transfers > 0);
        assert!(result.sojourns.departures > 0);
    }
}
