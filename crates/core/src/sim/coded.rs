//! The network-coding kernel: Theorem 15's coded swarm behind the shared
//! event driver.
//!
//! Under random linear network coding (Section VIII-B) a peer's type is the
//! subspace `V_A ⊆ F_q^K` spanned by the coding vectors it holds. This
//! kernel runs that system at the same event-loop scale as the uncoded
//! kernels:
//!
//! * **Peer state** is a [`Subspace`] in reduced row-echelon form, updated
//!   incrementally: a received coded piece is reduced against the basis in
//!   place ([`Subspace::absorb`]) — useless pieces cost one `O(dim·K)`
//!   reduction and zero allocation.
//! * **Per-peer metadata lives in one packed [`CodedMeta`] record** (arrival
//!   time, seed-pool position, cached dimension, gift flag, group — 16
//!   bytes), so the hot handlers read the dimension without touching the
//!   basis at all.
//! * **Dimension-only fast paths**: the coded transfer policy never inspects
//!   individual vectors (an upload is always a uniform random combination of
//!   everything the uploader holds), so several outcomes are decided from
//!   the cached dimensions alone. A trivial uploader (`dim 0`) or a
//!   full-dimension target is useless with probability one — no sampling, no
//!   reduction. A fixed-seed upload is a uniformly random vector of
//!   `F_q^K`, useful with probability exactly `1 − q^{dim − K}`
//!   (Section VIII-B), so the kernel flips that Bernoulli coin first and
//!   reduces an actual vector only on the useful branch — the conditional
//!   law of the inserted vector (uniform outside `V_A`, obtained by
//!   rejection with `≤ q/(q−1)` expected tries) is identical to
//!   sample-then-test.
//! * **Seed departures** pick uniformly from a swap-remove pool of
//!   full-dimension peers: one draw, `O(1)`, exactly like the turbo
//!   kernel's.
//! * **Arrivals** draw their gift dimension from a Walker/Vose alias table.
//!
//! Because the draw sequence differs from the standalone
//! [`crate::coded::CodedSwarmSim`], validation is distributional:
//! `crates/core/tests/coded_distributional.rs` pins this kernel's
//! replication ensembles (final population, dimension histogram, departures,
//! transfer counts) against the legacy simulator's.
//!
//! # Observable mapping
//!
//! The coded system reuses [`SimSnapshot`] with documented coded meanings:
//! `peer_seeds` counts decoders (dimension `K`), `watch_piece_copies` is the
//! total dimension held across the swarm (`÷ total_peers` = mean dimension),
//! `watch_piece_downloads` counts cumulative decode completions, and
//! `arrivals_without_watch` counts arrivals carrying no knowledge. The
//! Fig.-2 groups become the dimension decomposition: `Gifted` arrived with a
//! coded piece; among the rest, `NormalYoung` is `dim 0`, `Infected` is
//! `0 < dim < K−1`, `OneClub` is `dim K−1` (one dimension from decoding —
//! the coded analogue of the missing-piece club), and `FormerOneClub` is
//! `dim K` (climbed through the club and decoded). The groups partition the
//! population and follow `O(1)` transitions, exactly like the uncoded
//! kernels.

use super::{AgentSwarm, KernelState};
use crate::coded::CodedGifts;
use crate::groups::{GroupCounts, PeerGroup};
use crate::metrics::{SimResult, SimSnapshot, SojournStats};
use markov::alias::AliasTable;
use netcoding::{CodingVector, GaloisField, Subspace};
use pieceset::PieceSet;
use rand::Rng;
use telemetry::{Counter, Recorder};

/// Sentinel for "this peer is not in the seed pool".
const NOT_A_SEED: u32 = u32::MAX;

/// All per-peer bookkeeping of the coded kernel in one 16-byte record; the
/// hot handlers decide most outcomes from the cached `dim` without reading
/// the RREF basis.
#[derive(Debug, Clone, Copy)]
struct CodedMeta {
    arrival_time: f64,
    /// Position inside `seed_pool`, or [`NOT_A_SEED`].
    seed_pos: u32,
    /// Cached subspace dimension (`O(1)` completion and usefulness checks).
    dim: u16,
    /// Arrived carrying at least one (non-zero) coded piece.
    gifted: bool,
    /// Cached dimension-decomposition group; [`GroupCounts`] follows its
    /// transitions.
    group: PeerGroup,
}

/// Mutable state of the coded kernel.
pub(super) struct State<'a, T: Recorder> {
    sim: &'a AgentSwarm,
    /// Instrumentation hook; the [`telemetry::NullRecorder`] default
    /// monomorphizes every call site below to nothing.
    rec: &'a mut T,
    k: usize,
    field: GaloisField,
    /// Probability that a uniformly random vector of `F_q^K` lies inside a
    /// `d`-dimensional subspace: `q^{d − K}`, precomputed per dimension for
    /// the fixed-seed Bernoulli fast path.
    p_inside: Vec<f64>,
    /// Gift dimension per arrival class (parallel to the alias table).
    gift_dims: Vec<u16>,
    /// Alias table over the gift-class rates: `O(1)` per arrival.
    gift_alias: AliasTable,
    /// Peer subspaces, indexed like `meta`.
    spaces: Vec<Subspace>,
    meta: Vec<CodedMeta>,
    /// Peers at full dimension (swap-remove index pool).
    seed_pool: Vec<u32>,
    /// Scratch row for sampling and absorbing coded pieces.
    row: Vec<u32>,
    groups: GroupCounts,
    /// Σ dimensions over current peers (`watch_piece_copies`).
    dim_sum: u64,
    /// Histogram of current peer dimensions (length `K + 1`).
    dim_hist: Vec<u64>,
    /// Cumulative decode completions (`watch_piece_downloads`).
    decodes: u64,
    /// Cumulative arrivals carrying no knowledge (`arrivals_without_watch`).
    blank_arrivals: u64,
    useful_transfers: u64,
    unsuccessful: u64,
    sojourns: SojournStats,
    snapshots: Vec<SimSnapshot>,
}

impl<'a, T: Recorder> State<'a, T> {
    pub(super) fn new(
        sim: &'a AgentSwarm,
        gifts: &CodedGifts,
        initial: &[PieceSet],
        snapshots: Vec<SimSnapshot>,
        rec: &'a mut T,
    ) -> Self {
        debug_assert!(snapshots.is_empty(), "recycled buffer arrives cleared");
        let k = sim.params.num_pieces();
        let field = gifts.field;
        let q = f64::from(field.order());
        let weights: Vec<f64> = gifts.gift_dimensions.iter().map(|&(_, r)| r).collect();
        // simlint: allow(E001, "CodedParams validation guarantees a positive total gift rate")
        let gift_alias = AliasTable::new(&weights).expect("validated positive total gift rate");
        rec.incr(Counter::AliasRebuilds);
        let mut state = State {
            sim,
            rec,
            k,
            field,
            p_inside: (0..=k).map(|d| q.powi(d as i32 - k as i32)).collect(),
            gift_dims: gifts
                .gift_dimensions
                .iter()
                .map(|&(d, _)| d as u16)
                .collect(),
            gift_alias,
            spaces: Vec::with_capacity(initial.len()),
            meta: Vec::with_capacity(initial.len()),
            seed_pool: Vec::new(),
            row: Vec::new(),
            groups: GroupCounts::default(),
            dim_sum: 0,
            dim_hist: vec![0; k + 1],
            decodes: 0,
            blank_arrivals: 0,
            useful_transfers: 0,
            unsuccessful: 0,
            sojourns: SojournStats::default(),
            snapshots,
        };
        for &pieces in initial {
            let space = state.subspace_of(pieces);
            state.add_peer(0.0, space, false);
        }
        state
    }

    /// The subspace an uncoded piece collection maps to: the span of the
    /// unit coding vectors of its pieces (an uncoded piece *is* the coded
    /// piece with a unit coding vector). This is how initial populations and
    /// flash crowds written as piece selectors enter the coded system.
    fn subspace_of(&self, pieces: PieceSet) -> Subspace {
        let mut space = Subspace::empty(self.field, self.k);
        for p in pieces.iter() {
            let inserted = space
                .insert(&CodingVector::unit(self.field, self.k, p.index()))
                // simlint: allow(E001, "unit vectors are built with the space's own field and ambient dimension k")
                .expect("unit vectors match the ambient space");
            debug_assert!(inserted, "unit vectors are independent");
        }
        space
    }

    /// The dimension decomposition (see the [module docs](self)).
    fn classify(&self, meta: CodedMeta) -> PeerGroup {
        let dim = meta.dim as usize;
        if meta.gifted {
            PeerGroup::Gifted
        } else if dim == self.k {
            PeerGroup::FormerOneClub
        } else if dim == self.k - 1 {
            PeerGroup::OneClub
        } else if dim == 0 {
            PeerGroup::NormalYoung
        } else {
            PeerGroup::Infected
        }
    }

    fn add_peer(&mut self, time: f64, space: Subspace, count_arrival: bool) {
        let dim = space.dimension();
        debug_assert!(dim <= self.k);
        if count_arrival && dim == 0 {
            self.blank_arrivals += 1;
        }
        self.dim_sum += dim as u64;
        self.dim_hist[dim] += 1;
        let row = self.spaces.len();
        debug_assert!(row < NOT_A_SEED as usize, "population exceeds u32 range");
        let mut meta = CodedMeta {
            arrival_time: time,
            seed_pos: NOT_A_SEED,
            dim: dim as u16,
            gifted: dim > 0,
            group: PeerGroup::NormalYoung,
        };
        if dim == self.k {
            meta.seed_pos = self.seed_pool.len() as u32;
            self.seed_pool.push(row as u32);
            self.rec.incr(Counter::PoolOps);
        }
        meta.group = self.classify(meta);
        self.groups.add(meta.group);
        self.spaces.push(space);
        self.meta.push(meta);
    }

    /// Bookkeeping after a successful absorb raised `target`'s dimension by
    /// one: counters, group transition, seed-pool entry, and the immediate
    /// departure of a decoder when `γ = ∞`.
    fn record_dimension_gain(&mut self, target: usize, time: f64) {
        self.useful_transfers += 1;
        self.rec.incr(Counter::UsefulTransfers);
        self.dim_sum += 1;
        let meta = &mut self.meta[target];
        let old_group = meta.group;
        self.dim_hist[meta.dim as usize] -= 1;
        meta.dim += 1;
        self.dim_hist[meta.dim as usize] += 1;
        let completed = meta.dim as usize == self.k;
        if completed {
            meta.seed_pos = self.seed_pool.len() as u32;
        }
        let meta = *meta;
        let new_group = self.classify(meta);
        self.groups.transition(old_group, new_group);
        self.meta[target].group = new_group;
        if completed {
            self.decodes += 1;
            self.seed_pool.push(target as u32);
            self.rec.incr(Counter::PoolOps);
            if self.sim.params.departs_immediately() {
                self.depart(target, time);
            }
        }
    }

    fn depart(&mut self, index: usize, time: f64) {
        let last = self.spaces.len() - 1;
        let meta = self.meta[index];
        self.rec.incr(Counter::Departures);
        debug_assert_eq!(meta.dim as usize, self.k, "only decoders depart");
        if meta.seed_pos != NOT_A_SEED {
            let pos = meta.seed_pos as usize;
            self.seed_pool.swap_remove(pos);
            self.rec.incr(Counter::PoolOps);
            if let Some(&moved) = self.seed_pool.get(pos) {
                self.meta[moved as usize].seed_pos = pos as u32;
            }
        }
        self.groups.remove(meta.group);
        self.sojourns.record(time - meta.arrival_time);
        self.dim_sum -= meta.dim as u64;
        self.dim_hist[meta.dim as usize] -= 1;
        self.spaces.swap_remove(index);
        self.meta.swap_remove(index);
        // The old last peer now sits at `index`; relabel its pool entry.
        if index != last {
            let moved = self.meta[index];
            if moved.seed_pos != NOT_A_SEED {
                debug_assert_eq!(self.seed_pool[moved.seed_pos as usize], last as u32);
                self.seed_pool[moved.seed_pos as usize] = index as u32;
            }
        }
    }
}

impl<T: Recorder> KernelState for State<'_, T> {
    fn reserve_snapshots(&mut self, capacity: usize) {
        self.snapshots.reserve(capacity);
    }

    fn population(&self) -> usize {
        self.spaces.len()
    }

    fn seed_count(&self) -> usize {
        self.seed_pool.len()
    }

    fn boosted_count(&self) -> usize {
        0
    }

    fn seed_boosted(&self) -> bool {
        false
    }

    fn record_snapshot(&mut self, time: f64) {
        // Every observable is a maintained aggregate: O(1) per snapshot.
        self.snapshots.push(SimSnapshot {
            time,
            total_peers: self.spaces.len() as u64,
            peer_seeds: self.seed_pool.len() as u64,
            groups: self.groups,
            watch_piece_downloads: self.decodes,
            arrivals_without_watch: self.blank_arrivals,
            watch_piece_copies: self.dim_sum,
        });
    }

    fn handle_arrival<R: Rng>(&mut self, time: f64, rng: &mut R) {
        self.rec.incr(Counter::Arrivals);
        // One alias-table draw for the gift class, then d random coded
        // pieces; a random piece is useless with probability q^{-K} exactly
        // as in the paper, so the arrival dimension can fall short of d.
        let d = self.gift_dims[self.gift_alias.sample(rng)] as usize;
        let mut space = Subspace::empty(self.field, self.k);
        for _ in 0..d {
            // A gift row is a fresh uniform vector — it never reads a basis,
            // so it is an absorb but not a materialization.
            self.row.clear();
            self.row
                .extend((0..self.k).map(|_| self.field.random_element(rng)));
            self.rec.incr(Counter::RrefAbsorbs);
            // simlint: allow(E001, "the row is rebuilt to the ambient length k just above")
            if space.absorb(&mut self.row).expect("row matches ambient") {
                self.rec.incr(Counter::RankIncreases);
            }
        }
        self.add_peer(time, space, true);
    }

    fn handle_seed_tick<R: Rng>(&mut self, time: f64, rng: &mut R) {
        self.rec.incr(Counter::Contacts);
        let n = self.spaces.len();
        if n == 0 {
            self.rec.incr(Counter::UselessContacts);
            return;
        }
        let target = rng.gen_range(0..n);
        let dim = self.meta[target].dim as usize;
        if dim == self.k {
            self.unsuccessful += 1;
            self.rec.incr(Counter::DimFastPathHits);
            self.rec.incr(Counter::UselessContacts);
            return;
        }
        // Dimension-only fast path: a uniformly random vector of F_q^K lies
        // inside the target's subspace with probability q^{dim − K}; decide
        // usefulness from the cached dimension and reduce an actual vector
        // only on the useful branch (rejection-sampled so it is uniform
        // outside V_A — the same conditional law as sample-then-test).
        if rng.gen::<f64>() < self.p_inside[dim] {
            self.unsuccessful += 1;
            self.rec.incr(Counter::DimFastPathHits);
            self.rec.incr(Counter::UselessContacts);
            return;
        }
        loop {
            // A seed upload is likewise a fresh uniform vector: no basis is
            // read to construct it.
            self.row.clear();
            self.row
                .extend((0..self.k).map(|_| self.field.random_element(rng)));
            self.rec.incr(Counter::RrefAbsorbs);
            if self.spaces[target]
                .absorb(&mut self.row)
                // simlint: allow(E001, "the row is rebuilt to the ambient length k just above")
                .expect("row matches ambient")
            {
                self.rec.incr(Counter::RankIncreases);
                break;
            }
            self.rec.incr(Counter::RejectionRetries);
        }
        self.record_dimension_gain(target, time);
    }

    fn handle_peer_tick<R: Rng>(&mut self, time: f64, rng: &mut R) {
        self.rec.incr(Counter::Contacts);
        let n = self.spaces.len();
        if n == 0 {
            self.rec.incr(Counter::UselessContacts);
            return;
        }
        let uploader = rng.gen_range(0..n);
        let target = rng.gen_range(0..n);
        // Self-contacts and trivial uploaders send nothing useful, and a
        // full-dimension target can learn nothing: all three are decided
        // from the packed metadata without touching a basis.
        if uploader == target
            || self.meta[uploader].dim == 0
            || self.meta[target].dim as usize == self.k
        {
            self.unsuccessful += 1;
            self.rec.incr(Counter::DimFastPathHits);
            self.rec.incr(Counter::UselessContacts);
            return;
        }
        let (up, down) = if uploader < target {
            let (a, b) = self.spaces.split_at_mut(target);
            (&a[uploader], &mut b[0])
        } else {
            let (a, b) = self.spaces.split_at_mut(uploader);
            (&b[0], &mut a[target])
        };
        // The only place a basis is actually read to build a row: the
        // uploader's combination. This is what `BasisMaterializations`
        // counts (the fresh uniform rows above are not materializations —
        // an earlier ledger counted them too, hiding the fast path's
        // effect; `crates/core/tests/telemetry_counters.rs` pins the fix).
        up.random_combination_into(rng, &mut self.row);
        self.rec.incr(Counter::BasisMaterializations);
        self.rec.incr(Counter::RrefAbsorbs);
        // simlint: allow(E001, "random_combination_into fills the row to the ambient length")
        if down.absorb(&mut self.row).expect("row matches ambient") {
            self.rec.incr(Counter::RankIncreases);
            self.record_dimension_gain(target, time);
        } else {
            self.unsuccessful += 1;
            self.rec.incr(Counter::UselessContacts);
        }
    }

    fn handle_seed_departure<R: Rng>(&mut self, time: f64, rng: &mut R) {
        self.rec.incr(Counter::DepartureEvents);
        // One uniform pick from the decoder pool: O(1), no probing.
        let seeds = self.seed_pool.len();
        if seeds == 0 {
            return;
        }
        let index = self.seed_pool[rng.gen_range(0..seeds)] as usize;
        self.depart(index, time);
    }

    fn inject(&mut self, time: f64, pieces: PieceSet, count: usize) {
        let space = self.subspace_of(pieces);
        self.spaces.reserve(count);
        self.meta.reserve(count);
        for _ in 0..count {
            self.add_peer(time, space.clone(), true);
        }
    }

    fn finish(self, events: u64, truncated: bool, horizon: f64) -> SimResult {
        SimResult {
            snapshots: self.snapshots,
            sojourns: self.sojourns,
            transfers: self.useful_transfers,
            unsuccessful_contacts: self.unsuccessful,
            events,
            horizon,
            truncated,
            final_dimensions: self.dim_hist,
        }
    }
}
