//! Intra-replication sharding: one swarm's peer population split across
//! worker threads, synchronized at fixed exchange windows.
//!
//! The unsharded kernels simulate one swarm on one thread; Monte-Carlo
//! parallelism comes from running *replications* concurrently. That leaves
//! a single giant replication — a 10M-peer swarm — serial. This module
//! shards the *population* instead: shard `s` owns every peer assigned to
//! it, runs the ordinary turbo kernel over its own sub-population with its
//! own RNG stream, and meets the other shards only at *exchange
//! boundaries* (multiples of the synchronization window, plus flash-crowd
//! times), where cross-shard uploads are delivered in a canonical order.
//!
//! # What is exact and what is relaxed
//!
//! Contacts in the model are uniform-random, so most of the sharded
//! decomposition is *exact* by standard Poisson properties:
//!
//! * **Arrivals** — a Poisson process of rate `λ` thinned uniformly over
//!   `S` shards is `S` independent Poisson processes of rate `λ/S`
//!   (exact). The arriving type is drawn from the same alias table.
//! * **Peer clocks** — each peer's contact clock stays with its shard, so
//!   shard `s` fires peer ticks at the live rate `µ·n_s` and the uploader
//!   is a uniform *local* peer: summed over shards this is exactly the
//!   unsharded uploader law.
//! * **Seed departures** — rate `γ·(local seeds)`, exact; `γ = ∞`
//!   immediate departures are local and exact.
//! * **Window truncation** — stopping every exponential clock at the
//!   boundary and redrawing in the next window is exact by memorylessness.
//!
//! Two things are *relaxed*, and both converge to the unsharded law as the
//! window shrinks (pinned by `crates/core/tests/sharded_distributional.rs`):
//!
//! * **Cross-shard contact timing.** The contact *target* should be
//!   uniform over the global population. The target's shard is drawn from
//!   population weights *frozen at the window start*, and a remote
//!   contact's transfer is delivered at the window *end* (batched into the
//!   exchange round) rather than at the tick time.
//! * **The fixed seed.** Its single rate-`U_s` clock is split across
//!   shards proportionally to the same frozen weights, with a uniform
//!   local target.
//!
//! # Determinism
//!
//! For a fixed `(seed, shards, sync_window)` the run is bit-identical at
//! any [`ShardPlan::jobs`] value: every shard draws only from its own
//! `StdRng` (seeded from the replication stream in shard order), segment
//! execution touches nothing shared, and the exchange round applies
//! offers single-threaded in canonical `(destination, source, sequence)`
//! order using the destination shard's RNG. Changing the shard count (or
//! the window) changes which stream each draw comes from, hence the
//! trajectory — same process, different sample.
//!
//! # Counter attribution
//!
//! A cross-shard contact is counted *entirely at the destination*: the
//! source consumes one uploader draw and records nothing, and applying the
//! offer at the destination counts one event, one contact, and the
//! useful/useless outcome. This keeps the per-shard telemetry partition
//! identities (`arrivals + contacts + departure events = events`,
//! `contacts = useful + useless`) exact on every shard, not just in
//! aggregate.

use super::turbo;
use super::{AgentSwarm, FlashCrowd, KernelKind, KernelState, SimScratch};
use crate::metrics::SimResult;
use crate::SwarmError;
use markov::poisson::{sample_exp, sample_weighted_index};
use pieceset::PieceSet;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use telemetry::{NullRecorder, Recorder};

/// A deliberate statistical bias switch for validation *teeth*: the
/// sharded-vs-unsharded distributional battery must fail when a bias is
/// injected, proving the battery can detect a broken exchange. Hidden from
/// docs; never set outside tests.
#[doc(hidden)]
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ShardBias {
    /// Faithful exchange (the only production value).
    #[default]
    None,
    /// Silently drop every cross-shard offer instead of delivering it —
    /// shards become nearly independent swarms with depressed contact
    /// rates, which the battery must flag.
    DropRemote,
}

/// How to shard one replication's population (see the `sim::sharded` module docs).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ShardPlan {
    /// Number of shards the population is split across (≤ 1 = unsharded).
    pub shards: u32,
    /// Simulated time between exchange boundaries.
    pub sync_window: f64,
    /// Worker threads running shard segments concurrently (clamped to at
    /// least 1 and at most `shards`). Affects wall clock only, never the
    /// result.
    pub jobs: usize,
    /// Validation-teeth bias (see [`ShardBias`]); [`ShardBias::None`] in
    /// production.
    #[doc(hidden)]
    pub bias: ShardBias,
    /// Chaos hook: panic (with a deterministic payload naming the shard)
    /// when this shard starts its first segment. Exercises panic
    /// propagation out of the shard worker pool.
    #[doc(hidden)]
    pub panic_in_shard: Option<u32>,
}

impl ShardPlan {
    /// A plan with the given shard count and window, one worker, no bias.
    #[must_use]
    pub fn new(shards: u32, sync_window: f64) -> Self {
        ShardPlan {
            shards,
            sync_window,
            jobs: 1,
            bias: ShardBias::None,
            panic_in_shard: None,
        }
    }

    /// Sets the worker-thread count (clamped to at least 1).
    #[must_use]
    pub fn with_jobs(mut self, jobs: usize) -> Self {
        self.jobs = jobs.max(1);
        self
    }

    /// Injects the given statistical bias (validation teeth only).
    #[doc(hidden)]
    #[must_use]
    pub fn with_bias(mut self, bias: ShardBias) -> Self {
        self.bias = bias;
        self
    }

    /// Injects a panic in the given shard's first segment (chaos only).
    #[doc(hidden)]
    #[must_use]
    pub fn with_panic_in_shard(mut self, shard: u32) -> Self {
        self.panic_in_shard = Some(shard);
        self
    }
}

/// A cross-shard upload waiting for the next exchange boundary.
struct Offer {
    dst: u32,
    pieces: PieceSet,
}

/// Per-shard driver bookkeeping that lives outside the kernel state.
struct ShardCtx {
    rng: StdRng,
    events: u64,
    /// Next index on the shared snapshot grid `i · interval`.
    next_snapshot: u64,
    outbox: Vec<Offer>,
}

impl AgentSwarm {
    /// Checks that this simulator can run under `plan` without running it:
    /// the sharded driver requires the turbo kernel, no retry speed-up,
    /// and a positive finite synchronization window. A `plan.shards <= 1`
    /// plan (unsharded) is always compatible.
    ///
    /// # Errors
    ///
    /// Returns [`SwarmError::InvalidParameter`] describing the first
    /// incompatibility.
    pub fn validate_sharded(&self, plan: &ShardPlan) -> Result<(), SwarmError> {
        if plan.shards <= 1 {
            return Ok(());
        }
        if self.config.kernel != KernelKind::Turbo {
            return Err(SwarmError::InvalidParameter(format!(
                "sharded execution requires the turbo kernel (got {:?}); the \
                 parity kernels are pinned to a draw sequence sharding cannot \
                 preserve and the coded kernels are not sharded yet",
                self.config.kernel
            )));
        }
        if self.config.retry_speedup != 1.0 {
            return Err(SwarmError::InvalidParameter(format!(
                "sharded execution does not model the Section VIII-C retry \
                 speed-up (retry_speedup must be 1, got {})",
                self.config.retry_speedup
            )));
        }
        if !(plan.sync_window.is_finite() && plan.sync_window > 0.0) {
            return Err(SwarmError::InvalidParameter(format!(
                "sync window {} must be positive and finite",
                plan.sync_window
            )));
        }
        Ok(())
    }

    /// Runs one replication sharded across `plan.shards` sub-populations
    /// (see the `sim::sharded` module docs). Requires the [`KernelKind::Turbo`]
    /// kernel and `retry_speedup == 1` (the boost pools are shard-local
    /// state the exchange does not model). `plan.shards <= 1` delegates to
    /// the ordinary unsharded path.
    ///
    /// # Errors
    ///
    /// Returns [`SwarmError::InvalidParameter`] if the kernel is not
    /// turbo, the retry speed-up is not 1, the sync window is not a
    /// positive finite value, or the initial population / flash schedule
    /// fails [`AgentSwarm::validate_run`].
    pub fn run_sharded<R: Rng>(
        &self,
        initial: &[PieceSet],
        flash: &[FlashCrowd],
        horizon: f64,
        plan: &ShardPlan,
        rng: &mut R,
    ) -> Result<SimResult, SwarmError> {
        let shards = plan.shards.max(1) as usize;
        let mut recorders: Vec<NullRecorder> = (0..shards).map(|_| NullRecorder).collect();
        self.run_sharded_metered(initial, flash, horizon, plan, rng, &mut recorders)
    }

    /// Runs like [`AgentSwarm::run_sharded`] with one instrumentation
    /// [`Recorder`] per shard (`recorders[s]` observes shard `s`;
    /// `recorders.len()` must equal the effective shard count). Recorders
    /// never influence the trajectory, and each shard's counters satisfy
    /// the engine's partition identities on their own (cross-shard
    /// contacts are attributed to the destination shard).
    ///
    /// # Errors
    ///
    /// Returns [`SwarmError::InvalidParameter`] under the same conditions
    /// as [`AgentSwarm::run_sharded`], or when the recorder slice length
    /// does not match the shard count.
    pub fn run_sharded_metered<R: Rng, T: Recorder + Send>(
        &self,
        initial: &[PieceSet],
        flash: &[FlashCrowd],
        horizon: f64,
        plan: &ShardPlan,
        rng: &mut R,
        recorders: &mut [T],
    ) -> Result<SimResult, SwarmError> {
        self.validate_run(initial, flash)?;
        if plan.shards <= 1 {
            let [recorder] = recorders else {
                return Err(SwarmError::InvalidParameter(format!(
                    "an unsharded run takes exactly one recorder, got {}",
                    recorders.len()
                )));
            };
            return self.run_metered(
                initial,
                flash,
                horizon,
                rng,
                &mut SimScratch::new(),
                recorder,
            );
        }
        self.validate_sharded(plan)?;
        let shards = plan.shards as usize;
        if recorders.len() != shards {
            return Err(SwarmError::InvalidParameter(format!(
                "sharded metering takes one recorder per shard \
                 ({shards} shards, {} recorders)",
                recorders.len()
            )));
        }

        // Initial population: peer i → shard i mod S (round-robin keeps
        // every initial class balanced across shards).
        let mut parts: Vec<Vec<PieceSet>> = vec![Vec::new(); shards];
        for (i, &pieces) in initial.iter().enumerate() {
            parts[i % shards].push(pieces);
        }

        // Per-shard RNG streams, drawn from the replication stream in
        // shard order — the only draws the caller's RNG contributes.
        let mut ctxs: Vec<ShardCtx> = (0..shards)
            .map(|_| ShardCtx {
                // simlint: allow(D003, "per-shard sub-streams seeded from draws on the caller's replication-keyed stream, in fixed shard order — no entropy enters outside the (seed, scenario, replication) key")
                rng: StdRng::seed_from_u64(rng.gen::<u64>()),
                events: 0,
                next_snapshot: 1,
                outbox: Vec::new(),
            })
            .collect();

        let mut scratches: Vec<SimScratch> = (0..shards).map(|_| SimScratch::new()).collect();
        let mut states: Vec<turbo::State<'_, T>> = scratches
            .iter_mut()
            .zip(recorders.iter_mut())
            .zip(&parts)
            .map(|((scratch, recorder), part)| turbo::State::new(self, part, scratch, recorder))
            .collect();

        let interval = self.config.snapshot_interval;
        const MAX_PRE_RESERVED_SNAPSHOTS: usize = 1 << 20;
        if horizon.is_finite() && horizon >= 0.0 {
            let grid_points = (horizon / interval).min(MAX_PRE_RESERVED_SNAPSHOTS as f64) as usize;
            for state in &mut states {
                state.reserve_snapshots(grid_points.saturating_add(2));
            }
        }
        for state in &mut states {
            state.record_snapshot(0.0);
        }

        let mut schedule: Vec<FlashCrowd> = flash
            .iter()
            .copied()
            .filter(|c| c.time <= horizon)
            .collect();
        schedule.sort_by(|a, b| a.time.total_cmp(&b.time));
        let mut next_flash = 0usize;

        // Population weights frozen at each exchange boundary.
        let mut weights: Vec<u64> = states.iter().map(|s| s.population() as u64).collect();
        let mut total0: u64 = weights.iter().sum();

        let w = plan.sync_window;
        let mut t0 = 0.0f64;
        let mut window_index: u64 = 1;
        let mut truncated = false;
        let end;
        loop {
            let window_end = ((window_index as f64) * w).min(horizon);
            // The segment ends at the next exchange boundary: the window
            // end, or an earlier flash-crowd time.
            let boundary = match schedule.get(next_flash) {
                Some(c) if c.time <= window_end => c.time,
                _ => window_end,
            };

            run_segments(
                self,
                &mut states,
                &mut ctxs,
                t0,
                boundary,
                &weights,
                total0,
                plan,
            );

            // Exchange round: deliver cross-shard offers at the boundary
            // in canonical (destination, source, sequence) order, on this
            // thread, with the destination shard's RNG — deterministic
            // regardless of how the segments were scheduled.
            let mut exchange: Vec<(u32, u32, u32, PieceSet)> = Vec::new();
            for (src, ctx) in ctxs.iter_mut().enumerate() {
                for (seq, offer) in ctx.outbox.drain(..).enumerate() {
                    exchange.push((offer.dst, src as u32, seq as u32, offer.pieces));
                }
            }
            exchange.sort_unstable_by_key(|&(dst, src, seq, _)| (dst, src, seq));
            for (dst, _, _, pieces) in exchange {
                let dst = dst as usize;
                ctxs[dst].events += 1;
                states[dst].apply_offer(pieces, boundary, &mut ctxs[dst].rng);
            }

            // Flash crowds scheduled at this boundary, split round-robin
            // so every shard injects at the same simulated time.
            while let Some(crowd) = schedule.get(next_flash) {
                if crowd.time > boundary {
                    break;
                }
                let base = crowd.count / shards;
                let rem = crowd.count % shards;
                for (s, state) in states.iter_mut().enumerate() {
                    let share = base + usize::from(s < rem);
                    if share > 0 {
                        state.inject(crowd.time, crowd.pieces, share);
                    }
                }
                next_flash += 1;
            }

            // Refresh the frozen weights for the next window.
            for (weight, state) in weights.iter_mut().zip(&states) {
                *weight = state.population() as u64;
            }
            total0 = weights.iter().sum();

            let total_events: u64 = ctxs.iter().map(|c| c.events).sum();
            if total_events >= self.config.max_events {
                truncated = true;
                end = boundary;
                break;
            }
            if boundary >= horizon {
                end = boundary;
                break;
            }
            t0 = boundary;
            if boundary == window_end {
                window_index += 1;
            }
        }

        // Final snapshot at the end for every shard (mirrors the unsharded
        // driver), then merge in ascending shard order: snapshot grids are
        // element-wise sums, sojourn moments combine via Chan's update.
        let mut merged: Option<SimResult> = None;
        for (state, ctx) in states.into_iter().zip(&mut ctxs) {
            let mut state = state;
            state.record_snapshot(end);
            let shard_result = state.finish(ctx.events, truncated, end);
            match merged.as_mut() {
                None => merged = Some(shard_result),
                Some(into) => merge_results(into, &shard_result),
            }
        }
        merged.ok_or_else(|| {
            SwarmError::InvalidParameter(
                "sharded run produced no shard results to merge (empty shard plan)".into(),
            )
        })
    }
}

/// Runs every shard's segment `[t0, t1)` — inline when one worker is
/// requested, otherwise on a scoped thread pool with shards chunked over
/// workers in index order. Panics from shard segments propagate with the
/// payload of the lowest-index panicking shard (chunks are contiguous and
/// joined in order), so chaos failures are deterministic.
#[allow(clippy::too_many_arguments)]
fn run_segments<T: Recorder + Send>(
    sim: &AgentSwarm,
    states: &mut [turbo::State<'_, T>],
    ctxs: &mut [ShardCtx],
    t0: f64,
    t1: f64,
    weights: &[u64],
    total0: u64,
    plan: &ShardPlan,
) {
    let shards = states.len();
    let jobs = plan.jobs.clamp(1, shards);
    if jobs <= 1 {
        for (shard, (state, ctx)) in states.iter_mut().zip(ctxs.iter_mut()).enumerate() {
            run_shard_segment(sim, state, ctx, shard as u32, t0, t1, weights, total0, plan);
        }
        return;
    }
    let chunk = shards.div_ceil(jobs);
    std::thread::scope(|scope| {
        let mut handles = Vec::with_capacity(jobs);
        for (chunk_index, (state_chunk, ctx_chunk)) in states
            .chunks_mut(chunk)
            .zip(ctxs.chunks_mut(chunk))
            .enumerate()
        {
            handles.push(scope.spawn(move || {
                for (offset, (state, ctx)) in
                    state_chunk.iter_mut().zip(ctx_chunk.iter_mut()).enumerate()
                {
                    let shard = (chunk_index * chunk + offset) as u32;
                    run_shard_segment(sim, state, ctx, shard, t0, t1, weights, total0, plan);
                }
            }));
        }
        let mut payload = None;
        for handle in handles {
            if let Err(panic) = handle.join() {
                if payload.is_none() {
                    payload = Some(panic);
                }
            }
        }
        if let Some(panic) = payload {
            std::panic::resume_unwind(panic);
        }
    });
}

/// One shard's event loop over the segment `[t0, t1)`: the unsharded
/// driver's aggregate-clock loop, restricted to shard-local rates, with
/// remote-target peer ticks queued as offers instead of handled.
#[allow(clippy::too_many_arguments)]
fn run_shard_segment<T: Recorder>(
    sim: &AgentSwarm,
    state: &mut turbo::State<'_, T>,
    ctx: &mut ShardCtx,
    shard: u32,
    t0: f64,
    t1: f64,
    weights: &[u64],
    total0: u64,
    plan: &ShardPlan,
) {
    if t0 == 0.0 && plan.panic_in_shard == Some(shard) {
        std::panic::panic_any(format!("injected shard fault: panic in shard {shard}"));
    }
    let params = &sim.params;
    let interval = sim.config.snapshot_interval;
    let shards = weights.len();
    let arrival_rate = params.total_arrival_rate() / shards as f64;
    let mu = params.contact_rate();
    let gamma_finite = !params.departs_immediately();
    let gamma = if gamma_finite {
        params.seed_departure_rate()
    } else {
        0.0
    };
    // Frozen for the whole segment: the share of the fixed seed's clock
    // this shard runs, and the probability a peer tick's target is local.
    let (seed_tick_rate, local_target) = if total0 > 0 {
        (
            params.seed_rate() * weights[shard as usize] as f64 / total0 as f64,
            weights[shard as usize] as f64 / total0 as f64,
        )
    } else {
        (0.0, 1.0)
    };

    let mut time = t0;
    loop {
        // `max_events` is primarily enforced globally at exchange
        // boundaries; this local guard (same budget) only bounds a single
        // runaway window.
        if ctx.events >= sim.config.max_events {
            record_grid(state, ctx, interval, t1);
            break;
        }
        let n = state.population();
        let seeds = if gamma_finite { state.seed_count() } else { 0 };
        let rates = [
            arrival_rate,
            seed_tick_rate,
            mu * n as f64,
            gamma * seeds as f64,
        ];
        let total: f64 = rates.iter().sum();
        let new_time = if total > 0.0 {
            time + sample_exp(&mut ctx.rng, total)
        } else {
            f64::INFINITY
        };
        // Record every shared-grid snapshot crossed before the event (or
        // before the boundary): all shards cross the same grid points by
        // the time the segment ends, keeping their snapshot vectors
        // aligned index-by-index.
        record_grid(state, ctx, interval, new_time.min(t1));
        if new_time >= t1 {
            break;
        }
        time = new_time;
        // simlint: allow(E001, "total rate > 0 here: a zero-rate shard takes the window-boundary break above")
        match sample_weighted_index(&mut ctx.rng, &rates).expect("positive total rate") {
            0 => {
                ctx.events += 1;
                state.handle_arrival(time, &mut ctx.rng);
            }
            1 => {
                ctx.events += 1;
                state.handle_seed_tick(time, &mut ctx.rng);
            }
            2 => {
                if ctx.rng.gen::<f64>() < local_target {
                    ctx.events += 1;
                    state.handle_peer_tick(time, &mut ctx.rng);
                } else {
                    // Remote target: draw the destination shard from the
                    // frozen weights and queue the uploader's collection
                    // for the exchange round. The event and the contact
                    // are counted at the destination when the offer is
                    // applied — nothing is recorded here.
                    let dst = pick_remote_shard(&mut ctx.rng, weights, shard, total0);
                    if let Some(pieces) = state.offer_pieces(&mut ctx.rng) {
                        match plan.bias {
                            ShardBias::None => ctx.outbox.push(Offer { dst, pieces }),
                            ShardBias::DropRemote => {}
                        }
                    }
                }
            }
            _ => {
                ctx.events += 1;
                state.handle_seed_departure(time, &mut ctx.rng);
            }
        }
    }
}

/// Records every shared-grid snapshot with time ≤ `limit`.
fn record_grid<T: Recorder>(
    state: &mut turbo::State<'_, T>,
    ctx: &mut ShardCtx,
    interval: f64,
    limit: f64,
) {
    while (ctx.next_snapshot as f64) * interval <= limit {
        state.record_snapshot((ctx.next_snapshot as f64) * interval);
        ctx.next_snapshot += 1;
    }
}

/// Draws the destination shard of a remote contact: shard `d ≠ src` with
/// probability proportional to its frozen weight. Only reachable when some
/// other shard has positive frozen weight (otherwise the local-target coin
/// fires with probability one).
fn pick_remote_shard<R: Rng>(rng: &mut R, weights: &[u64], src: u32, total0: u64) -> u32 {
    let remote_total = total0 - weights[src as usize];
    debug_assert!(remote_total > 0, "remote branch needs remote weight");
    let mut draw = rng.gen_range(0..remote_total);
    for (shard, &weight) in weights.iter().enumerate() {
        if shard as u32 == src {
            continue;
        }
        if draw < weight {
            return shard as u32;
        }
        draw -= weight;
    }
    unreachable!("weighted draw stays below the remote total")
}

/// Folds shard `from`'s result into `into` (called in ascending shard
/// order): snapshot grids are summed index-by-index (the segment loop
/// guarantees identical grids), scalar totals add, and sojourn moments
/// combine via [`crate::metrics::SojournStats::merge`].
fn merge_results(into: &mut SimResult, from: &SimResult) {
    assert_eq!(
        into.snapshots.len(),
        from.snapshots.len(),
        "shard snapshot grids must align"
    );
    for (a, b) in into.snapshots.iter_mut().zip(&from.snapshots) {
        assert!(
            a.time == b.time,
            "shard snapshot times must align ({} vs {})",
            a.time,
            b.time
        );
        a.total_peers += b.total_peers;
        a.peer_seeds += b.peer_seeds;
        a.watch_piece_downloads += b.watch_piece_downloads;
        a.arrivals_without_watch += b.arrivals_without_watch;
        a.watch_piece_copies += b.watch_piece_copies;
        a.groups.normal_young += b.groups.normal_young;
        a.groups.infected += b.groups.infected;
        a.groups.gifted += b.groups.gifted;
        a.groups.one_club += b.groups.one_club;
        a.groups.former_one_club += b.groups.former_one_club;
    }
    into.sojourns.merge(&from.sojourns);
    into.transfers += from.transfers;
    into.unsuccessful_contacts += from.unsuccessful_contacts;
    into.events += from.events;
    debug_assert_eq!(into.truncated, from.truncated);
    debug_assert_eq!(into.horizon.to_bits(), from.horizon.to_bits());
}
