//! The turbo kernel: parity-free `O(1)` event sampling and zero-allocation
//! replication.
//!
//! The event-driven kernel is bound by its draw-parity contract with the
//! legacy scan kernel: every random draw must happen at the same point with
//! the same distribution, which locks in rejection-sampling loops (the
//! boosted-uploader probe of `handle_peer_tick`, the 64-try uniform probe of
//! `handle_seed_departure`) and per-replication reallocation of the whole
//! peer table. This kernel deliberately breaks byte-parity — trading
//! *identical* trajectories for *statistically identical* ones — to remove
//! every rejection-based or superlinear step from the hot path:
//!
//! * **Arrivals** draw the arriving type from a Walker/Vose
//!   [`AliasTable`](markov::alias::AliasTable): `O(1)` per arrival
//!   regardless of the number of arrival classes.
//! * **Uploader selection** keeps the boosted-retry peers in a swap-remove
//!   index pool. One weighted coin picks boosted vs. normal; a boosted
//!   uploader is a single uniform pool pick, a normal one is drawn by
//!   complement rejection with `O(1)` *expected* tries (the coin fires the
//!   normal branch with probability proportional to the normal count, so
//!   the expected work is constant by construction). The parity kernels'
//!   rejection probe costs `Θ(η)` draws when the boosted fraction is
//!   small.
//! * **Seed departures** pick uniformly from a seed index pool: one draw,
//!   `O(1)`, replacing 64 uniform probes plus a popcount select (or, in the
//!   scan kernel, an `O(n)` population scan).
//! * **Per-peer metadata lives in one packed [`PeerMeta`] record** (arrival
//!   time, pool positions, cached piece count, flags, Fig.-2 group — 24
//!   bytes), so touching a peer costs one cache line where the parity
//!   kernels walk several parallel arrays. The cached count also makes
//!   completion checks `O(1)` at any `K` (no popcount over the row).
//! * **Replication batches reuse a [`SimScratch`] arena**: the piece
//!   matrix, metadata, sampling pools, and snapshot buffer all persist
//!   across runs, so a warm replication loop performs no per-replication
//!   allocation.
//!
//! Everything observable — the Fig.-2 group transitions, the aggregate
//! counters, the `O(1)` snapshots — matches the event kernel exactly.
//! Because the draw *sequence* differs, validation is distributional rather
//! than byte-wise: `crates/core/tests/turbo_distributional.rs` pins the
//! turbo kernel's replication ensembles against the event kernel's.

use super::{AgentSwarm, KernelState};
use crate::groups::{GroupCounts, PeerGroup};
use crate::metrics::{SimResult, SimSnapshot, SojournStats};
use markov::alias::AliasTable;
use pieceset::{PieceId, PieceMatrix, PieceSet};
use rand::Rng;
use telemetry::{Counter, Recorder};

/// Sentinel for "this peer is not in the seed pool".
const NOT_A_SEED: u32 = u32::MAX;

/// Sentinel for "this peer is not in the boosted pool".
const NOT_BOOSTED: u32 = u32::MAX;

/// Flag bits of [`PeerMeta::flags`].
const ARRIVED_WITH_WATCH: u8 = 1 << 0;
const WAS_ONE_CLUB: u8 = 1 << 1;
const HAS_WATCH: u8 = 1 << 2;

/// All per-peer bookkeeping of the turbo kernel in one 24-byte record, so
/// the hot handlers touch a single cache line per peer instead of one line
/// per parallel array.
#[derive(Debug, Clone, Copy)]
struct PeerMeta {
    arrival_time: f64,
    /// Position inside `boosted_pool`, or [`NOT_BOOSTED`].
    boosted_pos: u32,
    /// Position inside `seed_pool`, or [`NOT_A_SEED`].
    seed_pos: u32,
    /// Cached piece count (`O(1)` completion checks at any `K`).
    holds: u32,
    /// [`ARRIVED_WITH_WATCH`] | [`WAS_ONE_CLUB`] | [`HAS_WATCH`].
    flags: u8,
    /// Cached Fig.-2 group; [`GroupCounts`] follows its transitions.
    group: PeerGroup,
}

impl PeerMeta {
    #[inline]
    fn has(self, flag: u8) -> bool {
        self.flags & flag != 0
    }
}

/// Reusable buffers for the turbo kernel: one arena per worker, reused
/// across replications.
///
/// A fresh scratch is just empty buffers — the first run grows them to the
/// workload's high-water mark, and every later run on the same scratch
/// reuses that capacity instead of reallocating the peer table, pools, and
/// snapshot vector per replication. Feed finished results back through
/// [`SimScratch::recycle`] to also reclaim the snapshot buffer the result
/// carried out.
///
/// A scratch never influences the numbers: for a fixed RNG stream,
/// [`AgentSwarm::run_with_scratch`](super::AgentSwarm::run_with_scratch)
/// returns the same result on a warm scratch as on a fresh one.
#[derive(Debug)]
pub struct SimScratch {
    /// Peer piece collections, one packed row per peer.
    pieces: PieceMatrix,
    /// Per-peer metadata, indexed like the matrix rows.
    meta: Vec<PeerMeta>,
    /// Peers with a boosted retry clock (swap-remove index pool). The
    /// (typically dominant) normal class needs no pool: it is sampled by
    /// complement rejection.
    boosted_pool: Vec<u32>,
    /// Peers holding the complete collection (swap-remove index pool).
    seed_pool: Vec<u32>,
    piece_copies: Vec<u64>,
    pub(super) snapshots: Vec<SimSnapshot>,
    arrival_types: Vec<PieceSet>,
    arrival_weights: Vec<f64>,
    arrival_alias: AliasTable,
    /// The coded turbo kernel's arena (peer table, basis slots, pools);
    /// untouched by the uncoded kernels. See [`super::coded_turbo`].
    pub(super) coded: super::coded_turbo::CodedScratch,
}

impl Default for SimScratch {
    fn default() -> Self {
        SimScratch::new()
    }
}

impl SimScratch {
    /// Creates an empty scratch arena.
    #[must_use]
    pub fn new() -> Self {
        SimScratch {
            pieces: PieceMatrix::new(1),
            meta: Vec::new(),
            boosted_pool: Vec::new(),
            seed_pool: Vec::new(),
            piece_copies: Vec::new(),
            snapshots: Vec::new(),
            arrival_types: Vec::new(),
            arrival_weights: Vec::new(),
            arrival_alias: AliasTable::default(),
            coded: super::coded_turbo::CodedScratch::default(),
        }
    }

    /// Returns a finished [`SimResult`]'s snapshot buffer to the arena so
    /// the next run reuses its capacity. Call this once the result has been
    /// reduced to whatever statistics outlive the replication.
    pub fn recycle(&mut self, result: SimResult) {
        let mut snapshots = result.snapshots;
        snapshots.clear();
        // Keep the larger of the two buffers (the arena may already hold a
        // bigger one from an earlier recycle).
        if snapshots.capacity() > self.snapshots.capacity() {
            self.snapshots = snapshots;
        }
    }

    /// Hands the (cleared) snapshot buffer to a non-turbo kernel, which
    /// owns its peer state but can still reuse the recycled snapshot
    /// capacity.
    pub(super) fn take_snapshots(&mut self) -> Vec<SimSnapshot> {
        let mut snapshots = std::mem::take(&mut self.snapshots);
        snapshots.clear();
        snapshots
    }

    /// Clears every buffer (keeping capacity) and reconfigures for a run of
    /// `sim`.
    fn reset_for(&mut self, sim: &AgentSwarm) {
        let k = sim.params.num_pieces();
        self.pieces.reset(k);
        self.meta.clear();
        self.boosted_pool.clear();
        self.seed_pool.clear();
        self.piece_copies.clear();
        self.piece_copies.resize(k, 0);
        self.snapshots.clear();
        self.arrival_types.clear();
        self.arrival_weights.clear();
        for (pieces, rate) in sim.params.arrivals() {
            self.arrival_types.push(pieces);
            self.arrival_weights.push(rate);
        }
        assert!(
            self.arrival_alias.rebuild(&self.arrival_weights),
            "λ_total > 0 by construction"
        );
    }
}

/// Mutable state of the turbo kernel: borrowed scratch buffers plus the
/// run-local aggregates.
pub(super) struct State<'a, T: Recorder> {
    sim: &'a AgentSwarm,
    k: usize,
    watch: PieceId,
    s: &'a mut SimScratch,
    /// Instrumentation hook; the [`telemetry::NullRecorder`] default
    /// monomorphizes every call site below to nothing, keeping the
    /// disabled hot path branch-free.
    rec: &'a mut T,
    /// `false` when the policy never reads copy counts: the per-piece
    /// census loops (one increment per held piece on every arrival and
    /// departure) are skipped and only the watch-piece count is maintained.
    track_copies: bool,
    /// Copies of the watch piece when `track_copies` is off.
    watch_copies: u64,
    /// `true` when the policy declares [`selects_uniformly`]
    /// (`swarm::policy::PiecePolicy::selects_uniformly`): piece selection
    /// inlines the uniform rank pick instead of going through the `dyn`
    /// policy object.
    fast_uniform: bool,
    seed_boosted: bool,
    groups: GroupCounts,
    watch_downloads: u64,
    arrivals_without_watch: u64,
    transfers: u64,
    unsuccessful: u64,
    sojourns: SojournStats,
}

impl<'a, T: Recorder> State<'a, T> {
    pub(super) fn new(
        sim: &'a AgentSwarm,
        initial: &[PieceSet],
        scratch: &'a mut SimScratch,
        rec: &'a mut T,
    ) -> Self {
        scratch.reset_for(sim);
        rec.incr(Counter::AliasRebuilds);
        let mut state = State {
            sim,
            k: sim.params.num_pieces(),
            watch: sim.config.watch_piece,
            s: scratch,
            rec,
            track_copies: sim.policy.uses_copy_counts(),
            watch_copies: 0,
            fast_uniform: sim.policy.selects_uniformly(),
            seed_boosted: false,
            groups: GroupCounts::default(),
            watch_downloads: 0,
            arrivals_without_watch: 0,
            transfers: 0,
            unsuccessful: 0,
            sojourns: SojournStats::default(),
        };
        state.s.pieces.reserve(initial.len());
        state.s.meta.reserve(initial.len());
        for &pieces in initial {
            debug_assert!(pieces.is_subset_of(sim.params.full_type()));
            state.add_peer(0.0, pieces, false);
        }
        state
    }

    /// Classifies a peer from its metadata alone (identical rules to the
    /// event kernel's `classify`, with the watch-piece membership cached in
    /// [`HAS_WATCH`] so no matrix read is needed).
    fn classify(&self, meta: PeerMeta) -> PeerGroup {
        if meta.has(HAS_WATCH) {
            if meta.has(ARRIVED_WITH_WATCH) {
                PeerGroup::Gifted
            } else if meta.has(WAS_ONE_CLUB) {
                PeerGroup::FormerOneClub
            } else {
                PeerGroup::Infected
            }
        } else if meta.holds as usize == self.k - 1 {
            PeerGroup::OneClub
        } else {
            PeerGroup::NormalYoung
        }
    }

    /// Chooses the transferred piece: the inlined uniform pick when the
    /// policy declares itself uniform (identical distribution and draw
    /// count to the policy object), the `dyn` policy otherwise.
    #[inline]
    fn select_piece<R: Rng>(&self, useful: PieceSet, rng: &mut R) -> PieceId {
        if self.fast_uniform {
            let rank = rng.gen_range(0..useful.len());
            let mut bits = useful.bits();
            for _ in 0..rank {
                bits &= bits - 1;
            }
            PieceId::new(bits.trailing_zeros() as usize)
        } else {
            self.sim.policy.select(useful, &self.s.piece_copies, rng)
        }
    }

    fn add_peer(&mut self, time: f64, pieces: PieceSet, count_arrival: bool) {
        let with_watch = pieces.contains(self.watch);
        if count_arrival && !with_watch {
            self.arrivals_without_watch += 1;
        }
        if self.track_copies {
            for p in pieces.iter() {
                self.s.piece_copies[p.index()] += 1;
            }
        } else if with_watch {
            self.watch_copies += 1;
        }
        let row = self.s.pieces.push_set(pieces);
        debug_assert!(row < NOT_A_SEED as usize, "population exceeds u32 range");
        let holds = pieces.len() as u32;
        let mut flags = 0u8;
        if with_watch {
            flags |= ARRIVED_WITH_WATCH | HAS_WATCH;
        } else if holds as usize == self.k - 1 {
            flags |= WAS_ONE_CLUB;
        }
        let mut meta = PeerMeta {
            arrival_time: time,
            boosted_pos: NOT_BOOSTED,
            seed_pos: NOT_A_SEED,
            holds,
            flags,
            group: PeerGroup::NormalYoung,
        };
        if holds as usize == self.k {
            meta.seed_pos = self.s.seed_pool.len() as u32;
            self.s.seed_pool.push(row as u32);
            self.rec.incr(Counter::PoolOps);
        }
        meta.group = self.classify(meta);
        self.groups.add(meta.group);
        self.s.meta.push(meta);
    }

    /// Moves `peer` into the boosted uploader pool (no-op when already
    /// boosted).
    fn boost(&mut self, peer: usize) {
        let meta = &mut self.s.meta[peer];
        if meta.boosted_pos != NOT_BOOSTED {
            return;
        }
        meta.boosted_pos = self.s.boosted_pool.len() as u32;
        self.s.boosted_pool.push(peer as u32);
        self.rec.incr(Counter::PoolOps);
    }

    /// Returns `peer` to the normal class (no-op when not boosted).
    fn unboost(&mut self, peer: usize) {
        let pos = self.s.meta[peer].boosted_pos;
        if pos == NOT_BOOSTED {
            return;
        }
        self.s.meta[peer].boosted_pos = NOT_BOOSTED;
        let pos = pos as usize;
        self.s.boosted_pool.swap_remove(pos);
        self.rec.incr(Counter::PoolOps);
        if let Some(&moved) = self.s.boosted_pool.get(pos) {
            self.s.meta[moved as usize].boosted_pos = pos as u32;
        }
    }

    /// Delivers `piece` to peer `target` — the event kernel's transition
    /// bookkeeping, with pool membership replacing the `WordBits` sets.
    fn give_piece(&mut self, target: usize, piece: PieceId, time: f64) {
        debug_assert!(!self.s.pieces.contains(target, piece));
        self.s.pieces.insert(target, piece);
        if self.track_copies {
            self.s.piece_copies[piece.index()] += 1;
        } else if piece == self.watch {
            self.watch_copies += 1;
        }
        self.transfers += 1;
        self.rec.incr(Counter::UsefulTransfers);
        // Receiving a piece invalidates any pending fast-retry boost.
        self.unboost(target);
        let meta = &mut self.s.meta[target];
        let old_group = meta.group;
        meta.holds += 1;
        if piece == self.watch {
            self.watch_downloads += 1;
            meta.flags |= HAS_WATCH;
        }
        if meta.holds as usize == self.k - 1 && !meta.has(HAS_WATCH) {
            meta.flags |= WAS_ONE_CLUB;
        }
        let completed = meta.holds as usize == self.k;
        if completed {
            meta.seed_pos = self.s.seed_pool.len() as u32;
        }
        let meta = *meta;
        let new_group = self.classify(meta);
        self.groups.transition(old_group, new_group);
        self.s.meta[target].group = new_group;
        if completed {
            self.s.seed_pool.push(target as u32);
            self.rec.incr(Counter::PoolOps);
            if self.sim.params.departs_immediately() {
                self.depart(target, time);
            }
        }
    }

    fn depart(&mut self, index: usize, time: f64) {
        let last = self.s.pieces.rows() - 1;
        let meta = self.s.meta[index];
        self.rec.incr(Counter::Departures);
        // Drop the departing peer from its pools first, while pool entries
        // still name unmoved peer indices.
        if meta.boosted_pos != NOT_BOOSTED {
            let pos = meta.boosted_pos as usize;
            self.s.boosted_pool.swap_remove(pos);
            self.rec.incr(Counter::PoolOps);
            if let Some(&moved) = self.s.boosted_pool.get(pos) {
                self.s.meta[moved as usize].boosted_pos = pos as u32;
            }
        }
        if meta.seed_pos != NOT_A_SEED {
            let pos = meta.seed_pos as usize;
            self.s.seed_pool.swap_remove(pos);
            self.rec.incr(Counter::PoolOps);
            if let Some(&moved) = self.s.seed_pool.get(pos) {
                self.s.meta[moved as usize].seed_pos = pos as u32;
            }
        }
        self.groups.remove(meta.group);
        self.sojourns.record(time - meta.arrival_time);
        if self.track_copies {
            for p in self.s.pieces.pieces(index) {
                self.s.piece_copies[p.index()] -= 1;
            }
        } else if meta.has(HAS_WATCH) {
            self.watch_copies -= 1;
        }
        self.s.pieces.swap_remove_row(index);
        self.s.meta.swap_remove(index);
        // The old last peer now sits at `index`; its pool entries still say
        // `last`. Relabel them through its (moved) position metadata.
        if index != last {
            let moved = self.s.meta[index];
            if moved.boosted_pos != NOT_BOOSTED {
                debug_assert_eq!(self.s.boosted_pool[moved.boosted_pos as usize], last as u32);
                self.s.boosted_pool[moved.boosted_pos as usize] = index as u32;
            }
            if moved.seed_pos != NOT_A_SEED {
                debug_assert_eq!(self.s.seed_pool[moved.seed_pos as usize], last as u32);
                self.s.seed_pool[moved.seed_pos as usize] = index as u32;
            }
        }
    }

    /// Draws the uploader for a peer tick whose contact target lives in
    /// another shard and returns a copy of the uploader's piece collection
    /// (the cross-shard *offer*). The contact itself — counters, target
    /// draw, possible transfer — happens at the destination shard when the
    /// offer is applied at the window boundary ([`State::apply_offer`]), so
    /// the source side consumes exactly one draw and records nothing; that
    /// keeps the per-shard counter identities (`arrivals + contacts +
    /// departure events = events`) exact on both sides.
    ///
    /// Returns `None` when the shard is empty. This is unreachable under
    /// the live peer-tick rate `µ·n` (zero for an empty shard), but the
    /// method stays total for safety.
    pub(super) fn offer_pieces<R: Rng>(&mut self, rng: &mut R) -> Option<PieceSet> {
        let n = self.s.pieces.rows();
        if n == 0 {
            return None;
        }
        let uploader = rng.gen_range(0..n);
        Some(self.s.pieces.as_set(uploader))
    }

    /// Applies a cross-shard offer at the exchange boundary: one contact
    /// against a uniformly drawn local peer, with the offered collection
    /// standing in for the remote uploader's matrix row. Mirrors the
    /// useful/useless accounting of `handle_peer_tick` exactly — the whole
    /// cross-shard contact is attributed to the destination shard. The
    /// sharded driver rejects `η > 1`, so no boost bookkeeping applies
    /// here.
    pub(super) fn apply_offer<R: Rng>(&mut self, offer: PieceSet, time: f64, rng: &mut R) {
        self.rec.incr(Counter::Contacts);
        let n = self.s.pieces.rows();
        if n == 0 {
            self.rec.incr(Counter::UselessContacts);
            return;
        }
        let target = rng.gen_range(0..n);
        let useful = offer.intersection(self.s.pieces.missing_set(target));
        if useful.is_empty() {
            self.unsuccessful += 1;
            self.rec.incr(Counter::UselessContacts);
            return;
        }
        let piece = self.select_piece(useful, rng);
        self.give_piece(target, piece, time);
    }
}

impl<T: Recorder> KernelState for State<'_, T> {
    fn reserve_snapshots(&mut self, capacity: usize) {
        self.s.snapshots.reserve(capacity);
    }

    fn population(&self) -> usize {
        self.s.pieces.rows()
    }

    fn seed_count(&self) -> usize {
        self.s.seed_pool.len()
    }

    fn boosted_count(&self) -> usize {
        self.s.boosted_pool.len()
    }

    fn seed_boosted(&self) -> bool {
        self.seed_boosted
    }

    fn record_snapshot(&mut self, time: f64) {
        // Every observable is a maintained aggregate: O(1) per snapshot.
        self.s.snapshots.push(SimSnapshot {
            time,
            total_peers: self.s.pieces.rows() as u64,
            peer_seeds: self.s.seed_pool.len() as u64,
            groups: self.groups,
            watch_piece_downloads: self.watch_downloads,
            arrivals_without_watch: self.arrivals_without_watch,
            watch_piece_copies: if self.track_copies {
                self.s.piece_copies[self.watch.index()]
            } else {
                self.watch_copies
            },
        });
    }

    fn handle_arrival<R: Rng>(&mut self, time: f64, rng: &mut R) {
        self.rec.incr(Counter::Arrivals);
        // One alias-table draw: O(1) in the number of arrival classes.
        let pieces = self.s.arrival_types[self.s.arrival_alias.sample(rng)];
        self.add_peer(time, pieces, true);
    }

    fn handle_seed_tick<R: Rng>(&mut self, time: f64, rng: &mut R) {
        self.rec.incr(Counter::Contacts);
        let n = self.s.pieces.rows();
        if n == 0 {
            self.rec.incr(Counter::UselessContacts);
            return;
        }
        let target = rng.gen_range(0..n);
        let useful = self.s.pieces.missing_set(target);
        if useful.is_empty() {
            self.unsuccessful += 1;
            self.rec.incr(Counter::UselessContacts);
            self.seed_boosted = self.sim.config.retry_speedup > 1.0;
            return;
        }
        self.seed_boosted = false;
        let piece = self.select_piece(useful, rng);
        self.give_piece(target, piece, time);
    }

    fn handle_peer_tick<R: Rng>(&mut self, time: f64, rng: &mut R) {
        self.rec.incr(Counter::Contacts);
        let n = self.s.pieces.rows();
        if n == 0 {
            self.rec.incr(Counter::UselessContacts);
            return;
        }
        let eta = self.sim.config.retry_speedup;
        let nb = self.s.boosted_pool.len();
        // A peer's clock runs at rate µ (normal) or ηµ (boosted), so the
        // firing peer is boosted with probability η·nb / (η·nb + (n − nb)):
        // one weighted coin, then one uniform pool pick (boosted) or a
        // complement rejection (normal). The coin fires the normal branch
        // with probability proportional to the normal count, so the
        // rejection's expected tries are O(1) — unlike the parity kernels'
        // Θ(η) probe.
        let uploader = if nb == 0 {
            rng.gen_range(0..n)
        } else {
            let nn = n - nb;
            let boosted_weight = eta * nb as f64;
            if nn == 0 || rng.gen::<f64>() * (boosted_weight + nn as f64) < boosted_weight {
                self.s.boosted_pool[rng.gen_range(0..nb)] as usize
            } else {
                loop {
                    let i = rng.gen_range(0..n);
                    if self.s.meta[i].boosted_pos == NOT_BOOSTED {
                        break i;
                    }
                    self.rec.incr(Counter::RejectionRetries);
                }
            }
        };
        let target = rng.gen_range(0..n);
        let useful = self.s.pieces.useful_set(uploader, target);
        if useful.is_empty() {
            self.unsuccessful += 1;
            self.rec.incr(Counter::UselessContacts);
            if eta > 1.0 {
                self.boost(uploader);
            }
            return;
        }
        self.unboost(uploader);
        let piece = self.select_piece(useful, rng);
        self.give_piece(target, piece, time);
    }

    fn handle_seed_departure<R: Rng>(&mut self, time: f64, rng: &mut R) {
        self.rec.incr(Counter::DepartureEvents);
        // One uniform pick from the seed pool: O(1), no probing.
        let seeds = self.s.seed_pool.len();
        if seeds == 0 {
            return;
        }
        let index = self.s.seed_pool[rng.gen_range(0..seeds)] as usize;
        self.depart(index, time);
    }

    fn inject(&mut self, time: f64, pieces: PieceSet, count: usize) {
        self.s.pieces.reserve(count);
        self.s.meta.reserve(count);
        for _ in 0..count {
            self.add_peer(time, pieces, true);
        }
    }

    fn finish(self, events: u64, truncated: bool, horizon: f64) -> SimResult {
        SimResult {
            snapshots: std::mem::take(&mut self.s.snapshots),
            sojourns: self.sojourns,
            transfers: self.transfers,
            unsuccessful_contacts: self.unsuccessful,
            events,
            horizon,
            truncated,
            final_dimensions: Vec::new(),
        }
    }
}
