//! The bitsliced `GF(2)` network-coding kernel: Theorem 15's coded swarm
//! with lazy peers and whole-word linear algebra.
//!
//! The reference [`coded`](super::coded) kernel materializes a
//! [`netcoding::Subspace`] basis for *every* peer and reduces a full
//! `Vec<u32>` coding vector on every arrival gift and every seed upload —
//! its telemetry shows `basis_materializations == rref_absorbs`, i.e. the
//! "dimension-only fast path" never avoids basis work. Over `GF(2)` almost
//! all of that work is unnecessary:
//!
//! * **Bitsliced bases.** A peer's subspace, when it is held at all, is a
//!   [`BitSubspace`]: `dim` rows of `⌈K/64⌉` packed `u64` words in an arena
//!   of recycled slots. Reduction is whole-word XOR, pivots are
//!   trailing-bit positions, rank is the row count.
//! * **Lazy peers.** Most peers never need a basis. A peer whose subspace
//!   so far is (unit vectors of its arrival pieces) ⊕ (`extra` dimensions
//!   gained from uniformly random coded pieces) is represented by just the
//!   pair `(unit_bits, extra)` in its 32-byte meta record. This is *exact*,
//!   not approximate: conditioned on that pair, the subspace is uniformly
//!   distributed among the `(|unit_bits| + extra)`-dimensional subspaces
//!   containing the unit span — uniform random vectors and the
//!   `GL`-invariance of the Grassmannian make every dimension-only decision
//!   below distribution-identical to tracking the basis explicitly — and
//!   lazy peers stay independent of each other because no transfer between
//!   two peers ever resolves lazily.
//!   - An *arrival gift* of `d` random pieces is a chain of `d` Bernoulli
//!     trials with the exact success probability `1 − 2^{dim−K}`: the new
//!     peer starts lazy as `(0, dim)`.
//!   - A *fixed-seed upload* is a uniformly random vector of `F_2^K`; to a
//!     lazy target it resolves through the same Bernoulli and, when useful,
//!     simply increments `extra`.
//!   - A *peer upload* from a pure-unit peer (`extra == 0`, the usual state
//!     of initial populations and flash crowds) is a random subset XOR of
//!     its units: one `rng` word AND-ed against `unit_bits`, no basis.
//!   - A *decoding transfer* — any gain that raises a peer to dimension `K`
//!     — needs no basis at all when `K ≤ 64`: the only `K`-dimensional
//!     subspace of `F_2^K` is the full space, which is itself the span of
//!     all `K` units, so the completed peer collapses back to the
//!     pure-unit representation and its future uploads are masked-word
//!     draws. In near-completion populations (the benchmark's one-short
//!     initial swarm) this removes almost every materialization.
//! * **Materialization is the slow path and it is permanent.** The first
//!   peer-to-peer transfer that actually depends on a peer's coded content
//!   materializes its basis — unit rows are written directly (they already
//!   form an RREF), and `extra` dimensions are drawn by absorbing uniform
//!   random rows until the cached rank is reached, which samples exactly
//!   the conditional subspace law. From then on that peer is tracked
//!   explicitly, so correlations introduced by shared coded pieces are
//!   exact. Departing peers return their basis slot to the arena.
//!
//! The kernel keeps the turbo tricks of [`turbo`](super::turbo): alias-table
//! gift draws, swap-remove decoder pools, packed per-peer meta, and
//! [`SimScratch`] arena reuse across replications. Like turbo it is
//! parity-*free*: it samples each outcome from the correct distribution but
//! consumes different draws than the reference coded kernel, so it is
//! validated distributionally (`crates/core/tests/coded_distributional.rs`
//! runs a three-way battery against the reference kernel and the legacy
//! [`crate::coded::CodedSwarmSim`]).
//!
//! # Counter semantics
//!
//! The 13-counter algebra extends to this kernel with the laziness made
//! observable:
//!
//! * `DimFastPathHits` counts every decision resolved from cached
//!   dimensions or unit masks alone — gift Bernoullis, seed-upload
//!   Bernoullis (both outcomes), lazy seed gains, trivial contact rejects,
//!   and unit-mask usefulness checks. It dominates by construction.
//! * `BasisMaterializations` counts *lazy-peer materialization events* —
//!   not, as in the reference kernel's original (miscounted) ledger, every
//!   constructed row. `basis_materializations < rref_absorbs` is asserted
//!   by `crates/core/tests/telemetry_counters.rs`.
//! * `RrefAbsorbs` counts every reduction against a real basis (including
//!   during materialization), `RejectionRetries` the failed ones inside
//!   rejection loops, and `RankIncreases` every dimension gained by a peer
//!   — lazily or through a basis.
//!
//! The observable mapping (groups, `watch_piece_copies` = Σ dim, decoders,
//! dimension histogram) is identical to the reference coded kernel's.

use super::turbo::SimScratch;
use super::{AgentSwarm, KernelState};
use crate::coded::CodedGifts;
use crate::groups::{GroupCounts, PeerGroup};
use crate::metrics::{SimResult, SimSnapshot, SojournStats};
use markov::alias::AliasTable;
use netcoding::BitSubspace;
use pieceset::PieceSet;
use rand::Rng;
use telemetry::{Counter, Recorder};

/// Sentinel for "this peer is not in the seed pool".
const NOT_A_SEED: u32 = u32::MAX;
/// Sentinel for "this peer is lazy: no basis slot assigned".
const NOT_MATERIALIZED: u32 = u32::MAX;

/// All per-peer bookkeeping of the coded turbo kernel in one 32-byte
/// record. A lazy peer is fully described by `(unit_bits, extra)`; a
/// materialized one by its arena slot.
#[derive(Debug, Clone, Copy)]
struct CtMeta {
    arrival_time: f64,
    /// Position inside `seed_pool`, or [`NOT_A_SEED`].
    seed_pos: u32,
    /// Arena slot of the materialized basis, or [`NOT_MATERIALIZED`].
    basis_slot: u32,
    /// Lazy representation, unit part: the peer's subspace contains the
    /// span of these unit vectors (arrival pieces). Meaningless once
    /// materialized.
    unit_bits: u64,
    /// Cached subspace dimension (`O(1)` completion and usefulness checks).
    dim: u16,
    /// Lazy representation, uniform part: dimensions gained from uniformly
    /// random coded pieces beyond the unit span. Meaningless once
    /// materialized.
    extra: u16,
    /// Arrived carrying at least one (non-zero) coded piece.
    gifted: bool,
    /// Cached dimension-decomposition group.
    group: PeerGroup,
}

impl CtMeta {
    /// Whether the peer's basis lives in the arena.
    #[inline]
    fn materialized(self) -> bool {
        self.basis_slot != NOT_MATERIALIZED
    }
}

/// Reusable buffers of the coded turbo kernel, embedded in [`SimScratch`]:
/// the peer table, the decoder pool, the basis arena with its free list,
/// and the gift alias table — all recycled across replications.
#[derive(Debug, Default)]
pub(super) struct CodedScratch {
    meta: Vec<CtMeta>,
    /// Peers at full dimension (swap-remove index pool).
    seed_pool: Vec<u32>,
    /// Arena of materialized bases; departed peers return their slot.
    bases: Vec<BitSubspace>,
    /// Recyclable slots in `bases`.
    free_slots: Vec<u32>,
    /// Scratch row for sampling and absorbing coded pieces.
    row: Vec<u64>,
    /// Second scratch row used by materialization, so materializing a lazy
    /// target does not clobber the uploaded row held in `row`.
    mat_row: Vec<u64>,
    /// Histogram of current peer dimensions (length `K + 1`).
    dim_hist: Vec<u64>,
    /// Gift dimension per arrival class (parallel to the alias table).
    gift_dims: Vec<u16>,
    gift_weights: Vec<f64>,
    /// Alias table over the gift-class rates: `O(1)` per arrival.
    gift_alias: AliasTable,
}

impl CodedScratch {
    /// Clears every buffer (keeping capacity) and reconfigures for a run
    /// with `k` pieces and the given gift mix.
    fn reset_for(&mut self, k: usize, gifts: &CodedGifts) {
        self.meta.clear();
        self.seed_pool.clear();
        self.free_slots.clear();
        for (slot, basis) in self.bases.iter_mut().enumerate() {
            basis.reset(k);
            self.free_slots.push(slot as u32);
        }
        self.row.clear();
        self.mat_row.clear();
        self.dim_hist.clear();
        self.dim_hist.resize(k + 1, 0);
        self.gift_dims.clear();
        self.gift_dims
            .extend(gifts.gift_dimensions.iter().map(|&(d, _)| d as u16));
        self.gift_weights.clear();
        self.gift_weights
            .extend(gifts.gift_dimensions.iter().map(|&(_, r)| r));
        assert!(
            self.gift_alias.rebuild(&self.gift_weights),
            "validated positive total gift rate"
        );
    }
}

/// Mutable state of the coded turbo kernel: borrowed scratch buffers plus
/// the run-local aggregates.
pub(super) struct State<'a, T: Recorder> {
    sim: &'a AgentSwarm,
    /// Instrumentation hook; the [`telemetry::NullRecorder`] default
    /// monomorphizes every call site below to nothing.
    rec: &'a mut T,
    k: usize,
    /// Unit mask of the full space (all `K` unit vectors). Only meaningful
    /// when `K ≤ 64`, which gates the decode shortcut below.
    full_units: u64,
    /// Probability that a uniformly random vector of `F_2^K` lies inside a
    /// `d`-dimensional subspace: `2^{d − K}`, precomputed per dimension.
    p_inside: Vec<f64>,
    s: &'a mut SimScratch,
    groups: GroupCounts,
    /// Σ dimensions over current peers (`watch_piece_copies`).
    dim_sum: u64,
    /// Cumulative decode completions (`watch_piece_downloads`).
    decodes: u64,
    /// Cumulative arrivals carrying no knowledge (`arrivals_without_watch`).
    blank_arrivals: u64,
    useful_transfers: u64,
    unsuccessful: u64,
    sojourns: SojournStats,
}

impl<'a, T: Recorder> State<'a, T> {
    pub(super) fn new(
        sim: &'a AgentSwarm,
        gifts: &CodedGifts,
        initial: &[PieceSet],
        scratch: &'a mut SimScratch,
        rec: &'a mut T,
    ) -> Self {
        let k = sim.params.num_pieces();
        debug_assert_eq!(gifts.field.order(), 2, "established by with_coded_turbo");
        scratch.snapshots.clear();
        scratch.coded.reset_for(k, gifts);
        rec.incr(Counter::AliasRebuilds);
        let mut state = State {
            sim,
            rec,
            k,
            full_units: if k >= 64 { u64::MAX } else { (1u64 << k) - 1 },
            p_inside: (0..=k).map(|d| 2f64.powi(d as i32 - k as i32)).collect(),
            s: scratch,
            groups: GroupCounts::default(),
            dim_sum: 0,
            decodes: 0,
            blank_arrivals: 0,
            useful_transfers: 0,
            unsuccessful: 0,
            sojourns: SojournStats::default(),
        };
        state.s.coded.meta.reserve(initial.len());
        for &pieces in initial {
            state.add_lazy_peer(0.0, pieces.bits(), 0, false);
        }
        state
    }

    /// The dimension decomposition (identical to the reference kernel's).
    fn classify(&self, meta: CtMeta) -> PeerGroup {
        let dim = meta.dim as usize;
        if meta.gifted {
            PeerGroup::Gifted
        } else if dim == self.k {
            PeerGroup::FormerOneClub
        } else if dim == self.k - 1 {
            PeerGroup::OneClub
        } else if dim == 0 {
            PeerGroup::NormalYoung
        } else {
            PeerGroup::Infected
        }
    }

    /// Adds a lazy peer whose subspace is (units of `unit_bits`) ⊕
    /// (`extra` uniformly random dimensions). No basis is built.
    fn add_lazy_peer(
        &mut self,
        time: f64,
        mut unit_bits: u64,
        mut extra: u16,
        count_arrival: bool,
    ) {
        let dim = unit_bits.count_ones() as usize + extra as usize;
        debug_assert!(dim <= self.k);
        if dim == self.k && self.k <= 64 {
            // Same decode normalization as `record_dimension_gain`: a peer
            // arriving at full dimension holds the full space, i.e. the
            // span of all K units.
            unit_bits = self.full_units;
            extra = 0;
        }
        if count_arrival && dim == 0 {
            self.blank_arrivals += 1;
        }
        self.dim_sum += dim as u64;
        let c = &mut self.s.coded;
        c.dim_hist[dim] += 1;
        let row = c.meta.len();
        debug_assert!(row < NOT_A_SEED as usize, "population exceeds u32 range");
        let mut meta = CtMeta {
            arrival_time: time,
            seed_pos: NOT_A_SEED,
            basis_slot: NOT_MATERIALIZED,
            unit_bits,
            dim: dim as u16,
            extra,
            gifted: dim > 0,
            group: PeerGroup::NormalYoung,
        };
        if dim == self.k {
            meta.seed_pos = c.seed_pool.len() as u32;
            c.seed_pool.push(row as u32);
            self.rec.incr(Counter::PoolOps);
        }
        meta.group = self.classify(meta);
        self.groups.add(meta.group);
        self.s.coded.meta.push(meta);
    }

    /// Materializes a lazy peer's basis in the arena: unit rows are written
    /// directly (they already form an RREF basis), then uniform random rows
    /// are absorbed until the cached dimension is reached — which samples
    /// exactly the peer's conditional subspace law (uniform among the
    /// subspaces of that dimension containing the unit span). Permanent:
    /// the peer is tracked explicitly from here on.
    fn materialize<R: Rng>(&mut self, peer: usize, rng: &mut R) -> usize {
        let c = &mut self.s.coded;
        debug_assert!(!c.meta[peer].materialized());
        let slot = match c.free_slots.pop() {
            Some(slot) => {
                c.bases[slot as usize].reset(self.k);
                slot as usize
            }
            None => {
                c.bases.push(BitSubspace::empty(self.k));
                c.bases.len() - 1
            }
        };
        c.meta[peer].basis_slot = slot as u32;
        let target_dim = c.meta[peer].dim as usize;
        let basis = &mut c.bases[slot];
        basis.set_units(c.meta[peer].unit_bits);
        self.rec.incr(Counter::BasisMaterializations);
        while basis.dimension() < target_dim {
            basis.random_ambient_row_into(rng, &mut c.mat_row);
            self.rec.incr(Counter::RrefAbsorbs);
            if !basis.absorb(&mut c.mat_row) {
                self.rec.incr(Counter::RejectionRetries);
            }
        }
        slot
    }

    /// Bookkeeping after `target` gained one dimension (lazily or through a
    /// basis): counters, group transition, seed-pool entry, and the
    /// immediate departure of a decoder when `γ = ∞`.
    fn record_dimension_gain(&mut self, target: usize, time: f64) {
        self.useful_transfers += 1;
        self.rec.incr(Counter::UsefulTransfers);
        self.rec.incr(Counter::RankIncreases);
        self.dim_sum += 1;
        let c = &mut self.s.coded;
        let meta = &mut c.meta[target];
        let old_group = meta.group;
        c.dim_hist[meta.dim as usize] -= 1;
        meta.dim += 1;
        c.dim_hist[meta.dim as usize] += 1;
        let completed = meta.dim as usize == self.k;
        if completed {
            meta.seed_pos = c.seed_pool.len() as u32;
            if !meta.materialized() && self.k <= 64 {
                // Decode normalization: the only K-dimensional subspace of
                // F_2^K is the full space, which is itself the span of all
                // K unit vectors. A lazy peer that completes therefore
                // collapses to the pure-unit representation — its future
                // uploads are masked-word draws, never a materialization.
                meta.unit_bits = self.full_units;
                meta.extra = 0;
            }
        }
        let meta = *meta;
        let new_group = self.classify(meta);
        self.groups.transition(old_group, new_group);
        self.s.coded.meta[target].group = new_group;
        if completed {
            self.decodes += 1;
            self.s.coded.seed_pool.push(target as u32);
            self.rec.incr(Counter::PoolOps);
            if self.sim.params.departs_immediately() {
                self.depart(target, time);
            }
        }
    }

    fn depart(&mut self, index: usize, time: f64) {
        let c = &mut self.s.coded;
        let last = c.meta.len() - 1;
        let meta = c.meta[index];
        self.rec.incr(Counter::Departures);
        debug_assert_eq!(meta.dim as usize, self.k, "only decoders depart");
        if meta.seed_pos != NOT_A_SEED {
            let pos = meta.seed_pos as usize;
            c.seed_pool.swap_remove(pos);
            self.rec.incr(Counter::PoolOps);
            if let Some(&moved) = c.seed_pool.get(pos) {
                c.meta[moved as usize].seed_pos = pos as u32;
            }
        }
        self.groups.remove(meta.group);
        self.sojourns.record(time - meta.arrival_time);
        self.dim_sum -= meta.dim as u64;
        c.dim_hist[meta.dim as usize] -= 1;
        if meta.materialized() {
            // Return the slot to the arena; it is reset on reuse.
            c.free_slots.push(meta.basis_slot);
        }
        c.meta.swap_remove(index);
        // The old last peer now sits at `index`; relabel its pool entry.
        if index != last {
            let moved = c.meta[index];
            if moved.seed_pos != NOT_A_SEED {
                debug_assert_eq!(c.seed_pool[moved.seed_pos as usize], last as u32);
                c.seed_pool[moved.seed_pos as usize] = index as u32;
            }
        }
    }
}

impl<T: Recorder> KernelState for State<'_, T> {
    fn reserve_snapshots(&mut self, capacity: usize) {
        self.s.snapshots.reserve(capacity);
    }

    fn population(&self) -> usize {
        self.s.coded.meta.len()
    }

    fn seed_count(&self) -> usize {
        self.s.coded.seed_pool.len()
    }

    fn boosted_count(&self) -> usize {
        0
    }

    fn seed_boosted(&self) -> bool {
        false
    }

    fn record_snapshot(&mut self, time: f64) {
        // Every observable is a maintained aggregate: O(1) per snapshot.
        self.s.snapshots.push(SimSnapshot {
            time,
            total_peers: self.s.coded.meta.len() as u64,
            peer_seeds: self.s.coded.seed_pool.len() as u64,
            groups: self.groups,
            watch_piece_downloads: self.decodes,
            arrivals_without_watch: self.blank_arrivals,
            watch_piece_copies: self.dim_sum,
        });
    }

    fn handle_arrival<R: Rng>(&mut self, time: f64, rng: &mut R) {
        self.rec.incr(Counter::Arrivals);
        // One alias-table draw for the gift class, then a chain of d exact
        // Bernoullis: the i-th random coded piece raises the dimension with
        // probability 1 − 2^{dim − K}, so the arrival dimension can fall
        // short of d exactly as in the paper. No basis is built.
        let d = self.s.coded.gift_dims[self.s.coded.gift_alias.sample(rng)] as usize;
        let mut dim = 0u16;
        for _ in 0..d {
            self.rec.incr(Counter::DimFastPathHits);
            if rng.gen::<f64>() >= self.p_inside[dim as usize] {
                dim += 1;
                self.rec.incr(Counter::RankIncreases);
            }
        }
        self.add_lazy_peer(time, 0, dim, true);
    }

    fn handle_seed_tick<R: Rng>(&mut self, time: f64, rng: &mut R) {
        self.rec.incr(Counter::Contacts);
        let n = self.s.coded.meta.len();
        if n == 0 {
            self.rec.incr(Counter::UselessContacts);
            return;
        }
        let target = rng.gen_range(0..n);
        let meta = self.s.coded.meta[target];
        let dim = meta.dim as usize;
        if dim == self.k {
            self.unsuccessful += 1;
            self.rec.incr(Counter::DimFastPathHits);
            self.rec.incr(Counter::UselessContacts);
            return;
        }
        // A seed upload is a uniformly random vector of F_2^K: useful with
        // probability exactly 1 − 2^{dim − K}, decided from the cached
        // dimension alone.
        if rng.gen::<f64>() < self.p_inside[dim] {
            self.unsuccessful += 1;
            self.rec.incr(Counter::DimFastPathHits);
            self.rec.incr(Counter::UselessContacts);
            return;
        }
        if meta.materialized() {
            // Rejection-sample the inserted vector so it is uniform outside
            // the subspace — the same conditional law as sample-then-test.
            let c = &mut self.s.coded;
            let basis = &mut c.bases[meta.basis_slot as usize];
            loop {
                basis.random_ambient_row_into(rng, &mut c.row);
                self.rec.incr(Counter::RrefAbsorbs);
                if basis.absorb(&mut c.row) {
                    break;
                }
                self.rec.incr(Counter::RejectionRetries);
            }
        } else {
            // Lazy gain: the new vector is uniform outside the subspace, so
            // the peer stays lazy with one more uniform dimension.
            self.s.coded.meta[target].extra += 1;
            self.rec.incr(Counter::DimFastPathHits);
        }
        self.record_dimension_gain(target, time);
    }

    fn handle_peer_tick<R: Rng>(&mut self, time: f64, rng: &mut R) {
        self.rec.incr(Counter::Contacts);
        let n = self.s.coded.meta.len();
        if n == 0 {
            self.rec.incr(Counter::UselessContacts);
            return;
        }
        let uploader = rng.gen_range(0..n);
        let target = rng.gen_range(0..n);
        let up_meta = self.s.coded.meta[uploader];
        let t_meta = self.s.coded.meta[target];
        // Self-contacts and trivial uploaders send nothing useful, and a
        // full-dimension target can learn nothing: all three are decided
        // from the packed metadata without touching a basis.
        if uploader == target || up_meta.dim == 0 || t_meta.dim as usize == self.k {
            self.unsuccessful += 1;
            self.rec.incr(Counter::DimFastPathHits);
            self.rec.incr(Counter::UselessContacts);
            return;
        }
        // Build the uploaded row: a uniform random combination of
        // everything the uploader holds.
        if up_meta.materialized() {
            let c = &mut self.s.coded;
            c.bases[up_meta.basis_slot as usize].random_combination_into(rng, &mut c.row);
        } else if up_meta.extra == 0 {
            // Pure-unit uploader: its subspace is the (deterministic) span
            // of its arrival pieces, so a uniform combination is a random
            // subset XOR of unit vectors — one drawn word, no basis.
            let c = &mut self.s.coded;
            let words = self.k.div_ceil(64);
            c.row.clear();
            c.row.resize(words, 0);
            c.row[0] = rng.gen::<u64>() & up_meta.unit_bits;
        } else {
            // The uploader's coded content matters now: materialize it,
            // then combine.
            let slot = self.materialize(uploader, rng);
            let c = &mut self.s.coded;
            c.bases[slot].random_combination_into(rng, &mut c.row);
        }
        // Absorb into the target.
        let useful = if t_meta.materialized() {
            let c = &mut self.s.coded;
            self.rec.incr(Counter::RrefAbsorbs);
            c.bases[t_meta.basis_slot as usize].absorb(&mut c.row)
        } else if t_meta.extra == 0 {
            // Pure-unit target: the row is useful iff it has support
            // outside the target's units — a mask check, no basis.
            let c = &self.s.coded;
            let outside = (c.row[0] & !t_meta.unit_bits) != 0 || c.row[1..].iter().any(|&w| w != 0);
            if !outside {
                self.rec.incr(Counter::DimFastPathHits);
            } else if t_meta.dim as usize + 1 == self.k && self.k <= 64 {
                // Decoding transfer: whatever independent row was gained,
                // the result has dimension K and there is only one such
                // subspace — the full space. The target stays lazy (the
                // completion normalization in `record_dimension_gain`
                // rewrites it as the all-units span) and the basis that
                // the slow path would have built is never consulted.
                self.rec.incr(Counter::DimFastPathHits);
            } else {
                // The gained vector is concrete (it came from a concrete
                // uploader), so the target cannot stay lazy: materialize
                // its (deterministic) unit basis and absorb for real.
                let slot = self.materialize(target, rng);
                let c = &mut self.s.coded;
                self.rec.incr(Counter::RrefAbsorbs);
                let grew = c.bases[slot].absorb(&mut c.row);
                debug_assert!(grew, "row with support outside the units is independent");
            }
            outside
        } else {
            // Lazy target with uniform dimensions: its conditional subspace
            // law is independent of the (concrete) row, so materialize it
            // first and let the absorb decide usefulness.
            let slot = self.materialize(target, rng);
            let c = &mut self.s.coded;
            self.rec.incr(Counter::RrefAbsorbs);
            c.bases[slot].absorb(&mut c.row)
        };
        if useful {
            self.record_dimension_gain(target, time);
        } else {
            self.unsuccessful += 1;
            self.rec.incr(Counter::UselessContacts);
        }
    }

    fn handle_seed_departure<R: Rng>(&mut self, time: f64, rng: &mut R) {
        self.rec.incr(Counter::DepartureEvents);
        // One uniform pick from the decoder pool: O(1), no probing.
        let seeds = self.s.coded.seed_pool.len();
        if seeds == 0 {
            return;
        }
        let index = self.s.coded.seed_pool[rng.gen_range(0..seeds)] as usize;
        self.depart(index, time);
    }

    fn inject(&mut self, time: f64, pieces: PieceSet, count: usize) {
        // An uncoded piece collection spans the unit vectors of its pieces:
        // exactly the pure-unit lazy representation, so a flash crowd of
        // any size materializes nothing.
        self.s.coded.meta.reserve(count);
        for _ in 0..count {
            self.add_lazy_peer(time, pieces.bits(), 0, true);
        }
    }

    fn finish(self, events: u64, truncated: bool, horizon: f64) -> SimResult {
        SimResult {
            snapshots: std::mem::take(&mut self.s.snapshots),
            sojourns: self.sojourns,
            transfers: self.useful_transfers,
            unsuccessful_contacts: self.unsuccessful,
            events,
            horizon,
            truncated,
            final_dimensions: std::mem::take(&mut self.s.coded.dim_hist),
        }
    }
}
