//! The event-driven kernel: packed bitset storage and incremental
//! bookkeeping.
//!
//! Per-peer piece collections live in a [`PieceMatrix`] (rows of packed
//! `u64` words in one flat buffer), seed and boosted membership in
//! [`WordBits`] index sets, and each peer's Fig.-2 group is cached and the
//! aggregate [`GroupCounts`] updated on every *transition* (arrival,
//! transfer, departure). Consequences:
//!
//! * a snapshot is `O(1)` — all observables are maintained aggregates, where
//!   the scan kernel reclassifies every peer,
//! * sampling a departing seed resolves through a popcount select over the
//!   seed bitset instead of an `O(n)` population scan,
//! * arrival sampling reuses one precomputed prefix-sum table (one uniform
//!   draw resolved by binary search) instead of allocating a weight vector
//!   and walking it linearly per event,
//! * useful-piece queries are word mask/popcount operations with no
//!   allocation.
//!
//! Every random draw happens at the same point and with the same
//! distribution as in [`super::scan`], so both kernels walk identical
//! trajectories on a shared RNG stream.

use super::{AgentSwarm, KernelState};
use crate::groups::{GroupCounts, PeerGroup};
use crate::metrics::{SimResult, SimSnapshot, SojournStats};
use markov::poisson::CumulativeWeights;
use pieceset::{PieceId, PieceMatrix, PieceSet, WordBits};
use rand::Rng;
use telemetry::{Counter, Recorder};

/// Mutable state of the event-driven kernel (struct-of-arrays peer table).
pub(super) struct State<'a, T: Recorder> {
    sim: &'a AgentSwarm,
    /// Instrumentation hook; the [`telemetry::NullRecorder`] default
    /// monomorphizes every call site below to nothing.
    rec: &'a mut T,
    /// `K`, cached.
    k: usize,
    watch: PieceId,
    /// Peer piece collections, one packed row per peer.
    pieces: PieceMatrix,
    arrival_time: Vec<f64>,
    arrived_with_watch: Vec<bool>,
    was_one_club: Vec<bool>,
    /// Cached Fig.-2 group of every peer; [`GroupCounts`] follows its
    /// transitions.
    group: Vec<PeerGroup>,
    /// Peers currently holding the complete collection.
    seed_bits: WordBits,
    /// Peers currently running a boosted retry clock (Section VIII-C).
    boosted: WordBits,
    seed_boosted: bool,
    piece_copies: Vec<u64>,
    groups: GroupCounts,
    watch_downloads: u64,
    arrivals_without_watch: u64,
    transfers: u64,
    unsuccessful: u64,
    sojourns: SojournStats,
    snapshots: Vec<SimSnapshot>,
    arrival_types: Vec<PieceSet>,
    /// Precomputed arrival prefix sums: each arrival is one uniform draw
    /// resolved by binary search in `O(log #types)`. The scan kernel builds
    /// the same table from the same weights on every arrival, so both
    /// kernels map the shared draw to the same type.
    arrival_sampler: CumulativeWeights,
}

impl<'a, T: Recorder> State<'a, T> {
    pub(super) fn new(
        sim: &'a AgentSwarm,
        initial: &[PieceSet],
        snapshots: Vec<SimSnapshot>,
        rec: &'a mut T,
    ) -> Self {
        let k = sim.params.num_pieces();
        let (arrival_types, arrival_weights): (Vec<PieceSet>, Vec<f64>) =
            sim.params.arrivals().unzip();
        let arrival_sampler =
            // simlint: allow(E001, "SwarmParams validation guarantees lambda_total > 0")
            CumulativeWeights::new(&arrival_weights).expect("λ_total > 0 by construction");
        rec.incr(Counter::AliasRebuilds);
        debug_assert!(snapshots.is_empty(), "recycled buffer arrives cleared");
        let mut state = State {
            sim,
            rec,
            k,
            watch: sim.config.watch_piece,
            pieces: PieceMatrix::new(k),
            arrival_time: Vec::with_capacity(initial.len()),
            arrived_with_watch: Vec::with_capacity(initial.len()),
            was_one_club: Vec::with_capacity(initial.len()),
            group: Vec::with_capacity(initial.len()),
            seed_bits: WordBits::with_len(initial.len()),
            boosted: WordBits::with_len(initial.len()),
            seed_boosted: false,
            piece_copies: vec![0u64; k],
            groups: GroupCounts::default(),
            watch_downloads: 0,
            arrivals_without_watch: 0,
            transfers: 0,
            unsuccessful: 0,
            sojourns: SojournStats::default(),
            snapshots,
            arrival_types,
            arrival_sampler,
        };
        state.pieces.reserve(initial.len());
        for &pieces in initial {
            debug_assert!(pieces.is_subset_of(sim.params.full_type()));
            state.add_peer(0.0, pieces, false);
        }
        state
    }

    /// Classifies peer `row` from its cached flags and current collection.
    fn classify(&self, row: usize) -> PeerGroup {
        if self.pieces.contains(row, self.watch) {
            if self.arrived_with_watch[row] {
                PeerGroup::Gifted
            } else if self.was_one_club[row] {
                PeerGroup::FormerOneClub
            } else {
                PeerGroup::Infected
            }
        } else if self.pieces.count(row) == self.k - 1 {
            PeerGroup::OneClub
        } else {
            PeerGroup::NormalYoung
        }
    }

    fn add_peer(&mut self, time: f64, pieces: PieceSet, count_arrival: bool) {
        if count_arrival && !pieces.contains(self.watch) {
            self.arrivals_without_watch += 1;
        }
        for p in pieces.iter() {
            self.piece_copies[p.index()] += 1;
        }
        let row = self.pieces.push_set(pieces);
        self.arrival_time.push(time);
        let with_watch = pieces.contains(self.watch);
        self.arrived_with_watch.push(with_watch);
        self.was_one_club
            .push(!with_watch && pieces.len() == self.k - 1);
        self.boosted.grow(row + 1);
        self.seed_bits.grow(row + 1);
        if pieces.len() == self.k {
            self.seed_bits.insert(row);
        }
        let group = self.classify(row);
        self.group.push(group);
        self.groups.add(group);
    }

    /// Delivers `piece` to peer `target`: all bookkeeping is a transition —
    /// group counts, seed membership, copy counts — never a rescan.
    fn give_piece(&mut self, target: usize, piece: PieceId, time: f64) {
        debug_assert!(!self.pieces.contains(target, piece));
        let old_group = self.group[target];
        self.pieces.insert(target, piece);
        self.piece_copies[piece.index()] += 1;
        self.transfers += 1;
        self.rec.incr(Counter::UsefulTransfers);
        if piece == self.watch {
            self.watch_downloads += 1;
        }
        // Receiving a piece changes what the peer can offer, so any pending
        // fast-retry boost (Section VIII-C) no longer reflects a failed
        // attempt with the current collection.
        self.boosted.remove(target);
        let holds = self.pieces.count(target);
        if holds == self.k - 1 && !self.pieces.contains(target, self.watch) {
            self.was_one_club[target] = true;
        }
        let new_group = self.classify(target);
        self.groups.transition(old_group, new_group);
        self.group[target] = new_group;
        if holds == self.k {
            self.seed_bits.insert(target);
            if self.sim.params.departs_immediately() {
                self.depart(target, time);
            }
        }
    }

    fn depart(&mut self, index: usize, time: f64) {
        let last = self.pieces.rows() - 1;
        self.rec.incr(Counter::Departures);
        self.groups.remove(self.group[index]);
        self.sojourns.record(time - self.arrival_time[index]);
        for p in self.pieces.pieces(index) {
            self.piece_copies[p.index()] -= 1;
        }
        self.pieces.swap_remove_row(index);
        self.arrival_time.swap_remove(index);
        self.arrived_with_watch.swap_remove(index);
        self.was_one_club.swap_remove(index);
        self.group.swap_remove(index);
        self.seed_bits.swap_bit(index, last);
        self.boosted.swap_bit(index, last);
    }
}

impl<T: Recorder> KernelState for State<'_, T> {
    fn reserve_snapshots(&mut self, capacity: usize) {
        self.snapshots.reserve(capacity);
    }

    fn population(&self) -> usize {
        self.pieces.rows()
    }

    fn seed_count(&self) -> usize {
        self.seed_bits.count()
    }

    fn boosted_count(&self) -> usize {
        self.boosted.count()
    }

    fn seed_boosted(&self) -> bool {
        self.seed_boosted
    }

    fn record_snapshot(&mut self, time: f64) {
        // Every observable is a maintained aggregate: O(1) per snapshot.
        self.snapshots.push(SimSnapshot {
            time,
            total_peers: self.pieces.rows() as u64,
            peer_seeds: self.seed_bits.count() as u64,
            groups: self.groups,
            watch_piece_downloads: self.watch_downloads,
            arrivals_without_watch: self.arrivals_without_watch,
            watch_piece_copies: self.piece_copies[self.watch.index()],
        });
    }

    fn handle_arrival<R: Rng>(&mut self, time: f64, rng: &mut R) {
        self.rec.incr(Counter::Arrivals);
        let idx = self.arrival_sampler.sample(rng);
        let pieces = self.arrival_types[idx];
        self.add_peer(time, pieces, true);
    }

    fn handle_seed_tick<R: Rng>(&mut self, time: f64, rng: &mut R) {
        self.rec.incr(Counter::Contacts);
        let n = self.pieces.rows();
        if n == 0 {
            self.rec.incr(Counter::UselessContacts);
            return;
        }
        let target = rng.gen_range(0..n);
        let useful = self.pieces.missing_set(target);
        if useful.is_empty() {
            self.unsuccessful += 1;
            self.rec.incr(Counter::UselessContacts);
            self.seed_boosted = self.sim.config.retry_speedup > 1.0;
            return;
        }
        self.seed_boosted = false;
        let piece = self.sim.policy.select(useful, &self.piece_copies, rng);
        self.give_piece(target, piece, time);
    }

    fn handle_peer_tick<R: Rng>(&mut self, time: f64, rng: &mut R) {
        self.rec.incr(Counter::Contacts);
        let n = self.pieces.rows();
        if n == 0 {
            self.rec.incr(Counter::UselessContacts);
            return;
        }
        let eta = self.sim.config.retry_speedup;
        // Rejection-sample the uploader proportionally to its clock rate
        // (identical draws to the scan kernel).
        let uploader = loop {
            let i = rng.gen_range(0..n);
            if eta <= 1.0 || self.boosted.contains(i) || rng.gen::<f64>() < 1.0 / eta {
                break i;
            }
            self.rec.incr(Counter::RejectionRetries);
        };
        let target = rng.gen_range(0..n);
        let useful = self.pieces.useful_set(uploader, target);
        if useful.is_empty() {
            self.unsuccessful += 1;
            self.rec.incr(Counter::UselessContacts);
            if eta > 1.0 {
                self.boosted.insert(uploader);
            }
            return;
        }
        self.boosted.remove(uploader);
        let piece = self.sim.policy.select(useful, &self.piece_copies, rng);
        self.give_piece(target, piece, time);
    }

    fn handle_seed_departure<R: Rng>(&mut self, time: f64, rng: &mut R) {
        self.rec.incr(Counter::DepartureEvents);
        let n = self.pieces.rows();
        // With zero seeds the departure rate is zero, so the driver should
        // never dispatch here — but if it does, burning 65 draws probing for
        // a seed that cannot exist is pure waste. The scan kernel
        // early-returns on the same condition, keeping draw parity.
        if n == 0 || self.seed_bits.count() == 0 {
            return;
        }
        // Same uniform tries as the scan kernel (identical draws)...
        for _ in 0..64 {
            let i = rng.gen_range(0..n);
            if self.seed_bits.contains(i) {
                self.depart(i, time);
                return;
            }
            self.rec.incr(Counter::RejectionRetries);
        }
        // ...but the fallback is a popcount select over the seed bitset
        // instead of an O(n) scan. Draw parity with the scan kernel: both
        // draw exactly one index in `0..max(seeds, 1)` and pick the seed of
        // that rank in increasing index order.
        let rank = rng.gen_range(0..self.seed_bits.count().max(1));
        if let Some(i) = self.seed_bits.select_nth(rank) {
            self.depart(i, time);
        }
    }

    fn inject(&mut self, time: f64, pieces: PieceSet, count: usize) {
        self.pieces.reserve(count);
        for _ in 0..count {
            self.add_peer(time, pieces, true);
        }
    }

    fn finish(self, events: u64, truncated: bool, horizon: f64) -> SimResult {
        SimResult {
            snapshots: self.snapshots,
            sojourns: self.sojourns,
            transfers: self.transfers,
            unsuccessful_contacts: self.unsuccessful,
            events,
            horizon,
            truncated,
            final_dimensions: Vec::new(),
        }
    }
}
