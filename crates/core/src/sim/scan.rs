//! The legacy scan kernel: array-of-structs peers, snapshot-time population
//! scans, and `O(n)` fallback when sampling a departing seed.
//!
//! Kept verbatim (modulo the shared driver) as the differential-testing
//! baseline for the event-driven kernel and as the benchmark reference. Its
//! per-event handlers consume random draws in exactly the same order as
//! [`super::event`], which is what lets the equivalence property test demand
//! *identical* trajectories rather than statistical agreement.

use super::{AgentSwarm, KernelState};
use crate::groups::{classify_peer, GroupCounts};
use crate::metrics::{SimResult, SimSnapshot, SojournStats};
use markov::poisson::CumulativeWeights;
use pieceset::PieceSet;
use rand::Rng;
use telemetry::{Counter, Recorder};

/// One peer in the scan kernel.
#[derive(Debug, Clone)]
struct Peer {
    pieces: PieceSet,
    arrival_time: f64,
    arrived_with_watch: bool,
    was_one_club: bool,
    boosted: bool,
}

/// Mutable state of the scan kernel.
pub(super) struct State<'a, T: Recorder> {
    sim: &'a AgentSwarm,
    /// Instrumentation hook. Counter placement mirrors [`super::event`]
    /// exactly — recorders consume no draws, so parity is untouched.
    rec: &'a mut T,
    peers: Vec<Peer>,
    piece_copies: Vec<u64>,
    boosted_count: usize,
    /// Number of peers currently holding the complete collection, maintained
    /// incrementally so per-event rate computation stays O(1).
    seeds: usize,
    seed_boosted: bool,
    watch_downloads: u64,
    arrivals_without_watch: u64,
    transfers: u64,
    unsuccessful: u64,
    sojourns: SojournStats,
    snapshots: Vec<SimSnapshot>,
    arrival_types: Vec<(PieceSet, f64)>,
}

impl<'a, T: Recorder> State<'a, T> {
    pub(super) fn new(
        sim: &'a AgentSwarm,
        initial: &[PieceSet],
        snapshots: Vec<SimSnapshot>,
        rec: &'a mut T,
    ) -> Self {
        debug_assert!(snapshots.is_empty(), "recycled buffer arrives cleared");
        let k = sim.params.num_pieces();
        let watch = sim.config.watch_piece;
        let full = sim.params.full_type();
        let club = full.without(watch);
        let mut piece_copies = vec![0u64; k];
        let peers: Vec<Peer> = initial
            .iter()
            .map(|&pieces| {
                debug_assert!(pieces.is_subset_of(full));
                for p in pieces.iter() {
                    piece_copies[p.index()] += 1;
                }
                Peer {
                    pieces,
                    arrival_time: 0.0,
                    arrived_with_watch: pieces.contains(watch),
                    was_one_club: pieces == club,
                    boosted: false,
                }
            })
            .collect();
        let arrival_types: Vec<(PieceSet, f64)> = sim.params.arrivals().collect();
        let seeds = peers.iter().filter(|p| p.pieces == full).count();
        State {
            sim,
            rec,
            peers,
            piece_copies,
            boosted_count: 0,
            seeds,
            seed_boosted: false,
            watch_downloads: 0,
            arrivals_without_watch: 0,
            transfers: 0,
            unsuccessful: 0,
            sojourns: SojournStats::default(),
            snapshots,
            arrival_types,
        }
    }

    fn full(&self) -> PieceSet {
        self.sim.params.full_type()
    }

    fn add_peer(&mut self, time: f64, pieces: PieceSet, count_arrival: bool) {
        let watch = self.sim.config.watch_piece;
        if count_arrival && !pieces.contains(watch) {
            self.arrivals_without_watch += 1;
        }
        for p in pieces.iter() {
            self.piece_copies[p.index()] += 1;
        }
        let club = self.full().without(watch);
        if pieces == self.full() {
            self.seeds += 1;
        }
        self.peers.push(Peer {
            pieces,
            arrival_time: time,
            arrived_with_watch: pieces.contains(watch),
            was_one_club: pieces == club,
            boosted: false,
        });
    }

    /// Delivers `piece` to peer `target`, updating counters, the one-club
    /// history flag, and handling immediate departure when `γ = ∞`.
    fn give_piece(&mut self, target: usize, piece: pieceset::PieceId, time: f64) {
        let watch = self.sim.config.watch_piece;
        let full = self.full();
        let club = full.without(watch);
        debug_assert!(!self.peers[target].pieces.contains(piece));
        self.peers[target].pieces.insert(piece);
        self.piece_copies[piece.index()] += 1;
        self.transfers += 1;
        self.rec.incr(Counter::UsefulTransfers);
        if piece == watch {
            self.watch_downloads += 1;
        }
        // Receiving a piece changes what the peer can offer, so any pending
        // fast-retry boost (Section VIII-C) no longer reflects a failed
        // attempt with the current collection.
        if self.peers[target].boosted {
            self.peers[target].boosted = false;
            self.boosted_count -= 1;
        }
        if self.peers[target].pieces == club {
            self.peers[target].was_one_club = true;
        }
        if self.peers[target].pieces == full {
            self.seeds += 1;
            if self.sim.params.departs_immediately() {
                self.depart(target, time);
            }
        }
    }

    fn depart(&mut self, index: usize, time: f64) {
        self.rec.incr(Counter::Departures);
        let peer = self.peers.swap_remove(index);
        if peer.pieces == self.full() {
            self.seeds -= 1;
        }
        if peer.boosted {
            self.boosted_count -= 1;
        }
        for p in peer.pieces.iter() {
            self.piece_copies[p.index()] -= 1;
        }
        self.sojourns.record(time - peer.arrival_time);
    }
}

impl<T: Recorder> KernelState for State<'_, T> {
    fn reserve_snapshots(&mut self, capacity: usize) {
        self.snapshots.reserve(capacity);
    }

    fn population(&self) -> usize {
        self.peers.len()
    }

    fn seed_count(&self) -> usize {
        self.seeds
    }

    fn boosted_count(&self) -> usize {
        self.boosted_count
    }

    fn seed_boosted(&self) -> bool {
        self.seed_boosted
    }

    fn record_snapshot(&mut self, time: f64) {
        let watch = self.sim.config.watch_piece;
        let k = self.sim.params.num_pieces();
        let full = self.full();
        // The scan: the group decomposition is recomputed from scratch by
        // classifying every peer (the event kernel maintains it instead).
        let mut groups = GroupCounts::default();
        let mut seeds = 0u64;
        for p in &self.peers {
            groups.add(classify_peer(
                p.pieces,
                p.arrived_with_watch,
                p.was_one_club,
                watch,
                k,
            ));
            if p.pieces == full {
                seeds += 1;
            }
        }
        self.snapshots.push(SimSnapshot {
            time,
            total_peers: self.peers.len() as u64,
            peer_seeds: seeds,
            groups,
            watch_piece_downloads: self.watch_downloads,
            arrivals_without_watch: self.arrivals_without_watch,
            watch_piece_copies: self.piece_copies[watch.index()],
        });
    }

    fn handle_arrival<R: Rng>(&mut self, time: f64, rng: &mut R) {
        self.rec.incr(Counter::Arrivals);
        // Rebuilt every arrival — one of the scan kernel's allocations the
        // event kernel avoids. Built from the identical weights, so the
        // prefix sums (and therefore the mapping of the shared single
        // uniform draw) are identical to the event kernel's cached table.
        let weights: Vec<f64> = self.arrival_types.iter().map(|(_, r)| *r).collect();
        // simlint: allow(E001, "SwarmParams validation guarantees lambda_total > 0")
        let sampler = CumulativeWeights::new(&weights).expect("λ_total > 0");
        self.rec.incr(Counter::AliasRebuilds);
        let idx = sampler.sample(rng);
        let pieces = self.arrival_types[idx].0;
        self.add_peer(time, pieces, true);
    }

    fn handle_seed_tick<R: Rng>(&mut self, time: f64, rng: &mut R) {
        self.rec.incr(Counter::Contacts);
        if self.peers.is_empty() {
            self.rec.incr(Counter::UselessContacts);
            return;
        }
        let target = rng.gen_range(0..self.peers.len());
        let useful = self.full().difference(self.peers[target].pieces);
        if useful.is_empty() {
            self.unsuccessful += 1;
            self.rec.incr(Counter::UselessContacts);
            self.seed_boosted = self.sim.config.retry_speedup > 1.0;
            return;
        }
        self.seed_boosted = false;
        let piece = self.sim.policy.select(useful, &self.piece_copies, rng);
        self.give_piece(target, piece, time);
    }

    fn handle_peer_tick<R: Rng>(&mut self, time: f64, rng: &mut R) {
        self.rec.incr(Counter::Contacts);
        let n = self.peers.len();
        if n == 0 {
            self.rec.incr(Counter::UselessContacts);
            return;
        }
        let eta = self.sim.config.retry_speedup;
        // Rejection-sample the uploader proportionally to its clock rate.
        let uploader = loop {
            let i = rng.gen_range(0..n);
            if eta <= 1.0 || self.peers[i].boosted || rng.gen::<f64>() < 1.0 / eta {
                break i;
            }
            self.rec.incr(Counter::RejectionRetries);
        };
        let target = rng.gen_range(0..n);
        let useful = self.peers[uploader]
            .pieces
            .difference(self.peers[target].pieces);
        if useful.is_empty() {
            self.unsuccessful += 1;
            self.rec.incr(Counter::UselessContacts);
            if eta > 1.0 && !self.peers[uploader].boosted {
                self.peers[uploader].boosted = true;
                self.boosted_count += 1;
            }
            return;
        }
        if self.peers[uploader].boosted {
            self.peers[uploader].boosted = false;
            self.boosted_count -= 1;
        }
        let piece = self.sim.policy.select(useful, &self.piece_copies, rng);
        self.give_piece(target, piece, time);
    }

    fn handle_seed_departure<R: Rng>(&mut self, time: f64, rng: &mut R) {
        self.rec.incr(Counter::DepartureEvents);
        let full = self.full();
        let n = self.peers.len();
        // Zero seeds → zero departure rate: unreachable from the driver, but
        // early-return instead of probing 64 times for a seed that cannot
        // exist. The event kernel early-returns identically (draw parity).
        if n == 0 || self.seeds == 0 {
            return;
        }
        // Try a few uniform samples, then fall back to a scan; the departing
        // peer must be chosen uniformly among the peer seeds.
        for _ in 0..64 {
            let i = rng.gen_range(0..n);
            if self.peers[i].pieces == full {
                self.depart(i, time);
                return;
            }
            self.rec.incr(Counter::RejectionRetries);
        }
        let seeds: Vec<usize> = (0..n).filter(|&i| self.peers[i].pieces == full).collect();
        if let Some(&i) = seeds.get(
            rng.gen_range(0..seeds.len().max(1))
                .min(seeds.len().saturating_sub(1)),
        ) {
            self.depart(i, time);
        }
    }

    fn inject(&mut self, time: f64, pieces: PieceSet, count: usize) {
        for _ in 0..count {
            self.add_peer(time, pieces, true);
        }
    }

    fn finish(self, events: u64, truncated: bool, horizon: f64) -> SimResult {
        SimResult {
            snapshots: self.snapshots,
            sojourns: self.sojourns,
            transfers: self.transfers,
            unsuccessful_contacts: self.unsuccessful,
            events,
            horizon,
            truncated,
            final_dimensions: Vec::new(),
        }
    }
}
