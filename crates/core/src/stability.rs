//! The stability region of Theorem 1 (and its `Δ_S` reformulation, eq. (4)).

use crate::{SwarmError, SwarmParams};
use pieceset::{PieceId, PieceSet};
use serde::{Deserialize, Serialize};

/// Verdict of the Theorem 1 analysis for a parameter point.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum StabilityVerdict {
    /// Theorem 1(b) applies: the chain is positive recurrent and `E[N] < ∞`.
    PositiveRecurrent,
    /// Theorem 1(a) applies: the chain is transient.
    Transient,
    /// The parameters sit on the boundary left open by the theorem
    /// (Section VIII-D).
    Borderline,
}

impl StabilityVerdict {
    /// Convenience predicate: `true` for [`StabilityVerdict::PositiveRecurrent`].
    #[must_use]
    pub fn is_stable(self) -> bool {
        matches!(self, StabilityVerdict::PositiveRecurrent)
    }
}

/// Full report of the Theorem 1 analysis.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct StabilityReport {
    /// The verdict.
    pub verdict: StabilityVerdict,
    /// Per-piece thresholds from eq. (2)/(3): the value
    /// `(U_s + Σ_{C∋k} λ_C (K+1−|C|)) / (1 − µ/γ)` that `λ_total` is compared
    /// against (only meaningful when `µ < γ`).
    pub piece_thresholds: Vec<f64>,
    /// The binding (smallest) threshold and the piece achieving it.
    pub critical_piece: Option<PieceId>,
    /// `λ_total` of the parameters, for convenience.
    pub total_arrival_rate: f64,
    /// Whether the parameters fall in the `γ ≤ µ` regime (one extra upload
    /// per peer seed suffices).
    pub slow_departure_regime: bool,
}

/// Relative tolerance used to call a point "borderline".
const BORDERLINE_REL_TOL: f64 = 1e-9;

/// The per-piece stability threshold of eqs. (2)–(3):
/// `(U_s + Σ_{C ∋ k} λ_C (K + 1 − |C|)) / (1 − µ/γ)`.
///
/// Only meaningful in the `0 < µ < γ ≤ ∞` regime; returns an error otherwise.
///
/// # Errors
///
/// Returns [`SwarmError::WrongRegime`] when `γ ≤ µ`.
pub fn piece_threshold(params: &SwarmParams, piece: PieceId) -> Result<f64, SwarmError> {
    let ratio = params.mu_over_gamma();
    if ratio >= 1.0 {
        return Err(SwarmError::WrongRegime(format!(
            "the piece threshold of eq. (2)/(3) requires µ < γ, but µ/γ = {ratio}"
        )));
    }
    let k = params.num_pieces() as f64;
    let gifted: f64 = params
        .arrivals()
        .filter(|(c, _)| c.contains(piece))
        .map(|(c, rate)| rate * (k + 1.0 - c.len() as f64))
        .sum();
    Ok((params.seed_rate() + gifted) / (1.0 - ratio))
}

/// The quantity `Δ_S` of eq. (4) for a set `S ⊊ F`:
///
/// `Δ_S = Σ_{C ⊆ S} λ_C − [U_s + Σ_{C ⊄ S} λ_C (K − |C| + µ/γ)] / (1 − µ/γ)`.
///
/// Negative `Δ_S` for every `S` is equivalent to the positive-recurrence
/// condition (3) holding for every piece.
///
/// # Errors
///
/// Returns [`SwarmError::WrongRegime`] when `γ ≤ µ`, and
/// [`SwarmError::InvalidParameter`] if `S` is the full set.
pub fn delta(params: &SwarmParams, s: PieceSet) -> Result<f64, SwarmError> {
    let ratio = params.mu_over_gamma();
    if ratio >= 1.0 {
        return Err(SwarmError::WrongRegime(format!(
            "Δ_S requires µ < γ, but µ/γ = {ratio}"
        )));
    }
    if s == params.full_type() {
        return Err(SwarmError::InvalidParameter(
            "Δ_S is defined for S ⊊ F only".into(),
        ));
    }
    let k = params.num_pieces() as f64;
    let inflow: f64 = params
        .arrivals()
        .filter(|(c, _)| c.is_subset_of(s))
        .map(|(_, r)| r)
        .sum();
    let help: f64 = params
        .arrivals()
        .filter(|(c, _)| !c.is_subset_of(s))
        .map(|(c, rate)| rate * (k - c.len() as f64 + ratio))
        .sum();
    Ok(inflow - (params.seed_rate() + help) / (1.0 - ratio))
}

/// `Δ_{F − {k}}` for every piece `k`, the binding family of constraints (the
/// remark after Theorem 1: eq. (4) holds for all `S` iff it holds for the
/// one-club sets `F − {k}`).
///
/// # Errors
///
/// Returns [`SwarmError::WrongRegime`] when `γ ≤ µ`.
pub fn one_club_deltas(params: &SwarmParams) -> Result<Vec<(PieceId, f64)>, SwarmError> {
    let full = params.full_type();
    full.iter()
        .map(|piece| Ok((piece, delta(params, full.without(piece))?)))
        .collect()
}

/// Applies Theorem 1 to classify the parameter point.
#[must_use]
pub fn classify(params: &SwarmParams) -> StabilityReport {
    let lambda_total = params.total_arrival_rate();
    let mu = params.contact_rate();
    let gamma = params.seed_departure_rate();
    let k = params.num_pieces();

    if gamma <= mu {
        // Theorem 1, 0 < γ ≤ µ branch: positive recurrent iff every piece can
        // enter the system; transient if some piece can never enter.
        let verdict = if params.all_pieces_can_enter() {
            StabilityVerdict::PositiveRecurrent
        } else {
            StabilityVerdict::Transient
        };
        return StabilityReport {
            verdict,
            piece_thresholds: vec![f64::INFINITY; k],
            critical_piece: None,
            total_arrival_rate: lambda_total,
            slow_departure_regime: true,
        };
    }

    // 0 < µ < γ ≤ ∞ branch.
    let thresholds: Vec<f64> = (0..k)
        // simlint: allow(E001, "the µ < γ branch condition is exactly piece_threshold's precondition")
        .map(|i| piece_threshold(params, PieceId::new(i)).expect("µ < γ checked above"))
        .collect();
    let (critical_idx, &critical) = thresholds
        .iter()
        .enumerate()
        .min_by(|a, b| a.1.total_cmp(b.1))
        // simlint: allow(E001, "K >= 1 is enforced by SwarmParams validation, so the threshold list is never empty")
        .expect("K >= 1");

    let tol = BORDERLINE_REL_TOL * lambda_total.max(critical).max(1.0);
    let verdict = if lambda_total > critical + tol {
        StabilityVerdict::Transient
    } else if lambda_total < critical - tol {
        StabilityVerdict::PositiveRecurrent
    } else {
        StabilityVerdict::Borderline
    };
    StabilityReport {
        verdict,
        piece_thresholds: thresholds,
        critical_piece: Some(PieceId::new(critical_idx)),
        total_arrival_rate: lambda_total,
        slow_departure_regime: false,
    }
}

/// The largest total arrival rate the system can sustain while remaining
/// positive recurrent, assuming arrivals are scaled proportionally (every
/// `λ_C` multiplied by the same factor). Returns `f64::INFINITY` in the
/// `γ ≤ µ` regime when every piece can enter.
///
/// With proportional scaling by `a`, both `λ_total` and the gifted
/// contribution in the threshold scale linearly, so the critical factor for
/// piece `k` solves `a λ_total = (U_s + a G_k)/(1 − µ/γ)` with
/// `G_k = Σ_{C∋k} λ_C (K+1−|C|)`.
#[must_use]
pub fn critical_arrival_scale(params: &SwarmParams) -> f64 {
    let mu = params.contact_rate();
    let gamma = params.seed_departure_rate();
    if gamma <= mu {
        return if params.all_pieces_can_enter() {
            f64::INFINITY
        } else {
            0.0
        };
    }
    let ratio = params.mu_over_gamma();
    let k = params.num_pieces() as f64;
    let lambda_total = params.total_arrival_rate();
    let mut worst: f64 = f64::INFINITY;
    for i in 0..params.num_pieces() {
        let piece = PieceId::new(i);
        let g: f64 = params
            .arrivals()
            .filter(|(c, _)| c.contains(piece))
            .map(|(c, rate)| rate * (k + 1.0 - c.len() as f64))
            .sum();
        let denom = lambda_total * (1.0 - ratio) - g;
        let scale = if denom <= 0.0 {
            // the gifted help grows at least as fast as the load: never binding
            f64::INFINITY
        } else {
            params.seed_rate() / denom
        };
        worst = worst.min(scale);
    }
    worst
}

/// The smallest seed rate `U_s` that makes the system positive recurrent with
/// all other parameters fixed (in the `µ < γ` regime). Returns `0.0` if the
/// system is already stable without a seed, and an error in the `γ ≤ µ`
/// regime (where any `U_s > 0` — indeed any configuration where every piece
/// can enter — is stable).
///
/// # Errors
///
/// Returns [`SwarmError::WrongRegime`] when `γ ≤ µ`.
pub fn critical_seed_rate(params: &SwarmParams) -> Result<f64, SwarmError> {
    let ratio = params.mu_over_gamma();
    if ratio >= 1.0 {
        return Err(SwarmError::WrongRegime(
            "in the γ ≤ µ regime any positive seed rate stabilises the system".into(),
        ));
    }
    let k = params.num_pieces() as f64;
    let lambda_total = params.total_arrival_rate();
    let mut needed: f64 = 0.0;
    for i in 0..params.num_pieces() {
        let piece = PieceId::new(i);
        let gifted: f64 = params
            .arrivals()
            .filter(|(c, _)| c.contains(piece))
            .map(|(c, rate)| rate * (k + 1.0 - c.len() as f64))
            .sum();
        // λ_total < (U_s + gifted) / (1 − µ/γ)  ⇔  U_s > λ_total (1 − µ/γ) − gifted
        needed = needed.max(lambda_total * (1.0 - ratio) - gifted);
    }
    Ok(needed.max(0.0))
}

/// The largest peer-seed departure rate `γ` (i.e. the *smallest* dwell time)
/// that keeps the system positive recurrent, all other parameters fixed.
///
/// Returns `f64::INFINITY` when the system is stable even with immediate
/// departures. The corollary highlighted by the paper is that the result is
/// always at least `µ`: dwelling long enough to upload one extra piece
/// suffices regardless of the arrival rates.
#[must_use]
pub fn critical_departure_rate(params: &SwarmParams) -> f64 {
    let mu = params.contact_rate();
    let lambda_total = params.total_arrival_rate();
    let k = params.num_pieces() as f64;
    // In the µ < γ regime the binding constraint over pieces is
    //   λ_total (1 − µ/γ) < U_s + Σ_{C∋k} λ_C (K + 1 − |C|)   for all k.
    // The left side decreases in 1/γ; solve for the critical γ.
    let mut worst_gamma = f64::INFINITY;
    for i in 0..params.num_pieces() {
        let piece = PieceId::new(i);
        let gifted: f64 = params
            .arrivals()
            .filter(|(c, _)| c.contains(piece))
            .map(|(c, rate)| rate * (k + 1.0 - c.len() as f64))
            .sum();
        let rhs = params.seed_rate() + gifted;
        if lambda_total <= rhs {
            continue; // stable for this piece even with γ = ∞
        }
        // Need 1 − µ/γ < rhs / λ_total  ⇔  γ < µ / (1 − rhs/λ_total).
        let gamma_crit = mu / (1.0 - rhs / lambda_total);
        worst_gamma = worst_gamma.min(gamma_crit);
    }
    // The γ ≤ µ regime is always stable (provided pieces can enter), so the
    // critical rate is at least µ.
    if params.all_pieces_can_enter() {
        worst_gamma.max(mu)
    } else {
        worst_gamma
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pieceset::PieceId;

    fn set(indices: &[usize]) -> PieceSet {
        indices.iter().map(|&i| PieceId::new(i)).collect()
    }

    /// Example 1 (K = 1): stable iff λ0 < U_s / (1 − µ/γ) when µ < γ.
    fn example1(lambda0: f64, us: f64, mu: f64, gamma: f64) -> SwarmParams {
        SwarmParams::builder(1)
            .seed_rate(us)
            .contact_rate(mu)
            .seed_departure_rate(gamma)
            .fresh_arrivals(lambda0)
            .build()
            .unwrap()
    }

    #[test]
    fn example1_threshold_matches_closed_form() {
        let p = example1(1.0, 1.0, 1.0, 2.0);
        let t = piece_threshold(&p, PieceId::new(0)).unwrap();
        // U_s / (1 − µ/γ) = 1 / (1 − 0.5) = 2
        assert!((t - 2.0).abs() < 1e-12);
        assert_eq!(classify(&p).verdict, StabilityVerdict::PositiveRecurrent);
        // Above the threshold: transient.
        let p = example1(2.5, 1.0, 1.0, 2.0);
        assert_eq!(classify(&p).verdict, StabilityVerdict::Transient);
        // Exactly at the threshold: borderline.
        let p = example1(2.0, 1.0, 1.0, 2.0);
        assert_eq!(classify(&p).verdict, StabilityVerdict::Borderline);
    }

    #[test]
    fn example1_gamma_le_mu_always_stable_with_seed() {
        let p = example1(100.0, 0.01, 1.0, 0.9);
        let report = classify(&p);
        assert!(report.slow_departure_regime);
        assert_eq!(report.verdict, StabilityVerdict::PositiveRecurrent);
    }

    #[test]
    fn transient_when_piece_cannot_enter() {
        // γ ≤ µ but no seed and no gifted arrivals: the single piece never
        // enters the system.
        let p = SwarmParams::builder(1)
            .seed_rate(0.0)
            .contact_rate(1.0)
            .seed_departure_rate(0.5)
            .fresh_arrivals(1.0)
            .build()
            .unwrap();
        assert_eq!(classify(&p).verdict, StabilityVerdict::Transient);
    }

    /// Example 2 (K = 4, arrivals of types {1,2} and {3,4}, no seed, γ = ∞):
    /// stable iff λ12 < 2 λ34 and λ34 < 2 λ12.
    fn example2(lambda12: f64, lambda34: f64) -> SwarmParams {
        SwarmParams::builder(4)
            .contact_rate(1.0)
            .arrival(set(&[0, 1]), lambda12)
            .arrival(set(&[2, 3]), lambda34)
            .build()
            .unwrap()
    }

    #[test]
    fn example2_region_matches_paper() {
        // Stable point: λ12 = 1, λ34 = 0.8 (1 < 1.6 and 0.8 < 2).
        assert_eq!(
            classify(&example2(1.0, 0.8)).verdict,
            StabilityVerdict::PositiveRecurrent
        );
        // Unstable: λ12 = 3, λ34 = 1 (3 > 2).
        assert_eq!(
            classify(&example2(3.0, 1.0)).verdict,
            StabilityVerdict::Transient
        );
        // Unstable the other way.
        assert_eq!(
            classify(&example2(1.0, 3.0)).verdict,
            StabilityVerdict::Transient
        );
        // Borderline: λ12 = 2 λ34 exactly.
        assert_eq!(
            classify(&example2(2.0, 1.0)).verdict,
            StabilityVerdict::Borderline
        );
    }

    #[test]
    fn example2_thresholds_encode_the_two_to_one_rule() {
        // Threshold for piece 1 (held by {1,2} arrivals):
        //   (0 + λ12 (4 + 1 − 2)) / 1 = 3 λ12; stability needs λ_total < 3 λ12
        //   i.e. λ12 + λ34 < 3 λ12 ⇔ λ34 < 2 λ12. Symmetrically for piece 3.
        let p = example2(1.0, 0.5);
        let t1 = piece_threshold(&p, PieceId::new(0)).unwrap();
        let t3 = piece_threshold(&p, PieceId::new(2)).unwrap();
        assert!((t1 - 3.0).abs() < 1e-12);
        assert!((t3 - 1.5).abs() < 1e-12);
    }

    /// Example 3 (K = 3, single-piece arrivals, no seed, µ < γ < ∞).
    fn example3(l1: f64, l2: f64, l3: f64, mu: f64, gamma: f64) -> SwarmParams {
        SwarmParams::builder(3)
            .contact_rate(mu)
            .seed_departure_rate(gamma)
            .arrival(set(&[0]), l1)
            .arrival(set(&[1]), l2)
            .arrival(set(&[2]), l3)
            .build()
            .unwrap()
    }

    #[test]
    fn example3_stability_condition_matches_paper() {
        let mu = 1.0;
        let gamma = 2.0;
        let factor = (2.0 + mu / gamma) / (1.0 - mu / gamma); // (2 + µ/γ)/(1 − µ/γ) = 5
                                                              // Symmetric rates are stable (λ1 + λ2 = 2 < 5 λ3 = 5).
        let p = example3(1.0, 1.0, 1.0, mu, gamma);
        assert_eq!(classify(&p).verdict, StabilityVerdict::PositiveRecurrent);
        // Strongly asymmetric rates violate λ1 + λ2 < factor λ3.
        let p = example3(10.0, 10.0, (20.0 / factor) * 0.9, mu, gamma);
        assert_eq!(classify(&p).verdict, StabilityVerdict::Transient);
        // Just inside.
        let p = example3(10.0, 10.0, (20.0 / factor) * 1.1, mu, gamma);
        assert_eq!(classify(&p).verdict, StabilityVerdict::PositiveRecurrent);
    }

    #[test]
    fn example3_gamma_infinite_symmetric_is_borderline() {
        // With γ = ∞ the condition becomes λ1 + λ2 < 2 λ3 etc.; equal rates
        // sit exactly on the boundary (the case discussed in Section VIII-D).
        let p = SwarmParams::builder(3)
            .contact_rate(1.0)
            .arrival(set(&[0]), 1.0)
            .arrival(set(&[1]), 1.0)
            .arrival(set(&[2]), 1.0)
            .build()
            .unwrap();
        assert_eq!(classify(&p).verdict, StabilityVerdict::Borderline);
    }

    #[test]
    fn delta_equivalence_with_thresholds() {
        // Δ_{F−{k}} < 0 ⇔ λ_total < threshold_k.
        let p = example3(2.0, 1.0, 0.5, 1.0, 4.0);
        for i in 0..3 {
            let piece = PieceId::new(i);
            let d = delta(&p, p.full_type().without(piece)).unwrap();
            let t = piece_threshold(&p, piece).unwrap();
            assert_eq!(
                d < 0.0,
                p.total_arrival_rate() < t,
                "piece {i}: Δ = {d}, threshold = {t}"
            );
        }
    }

    #[test]
    fn delta_requires_strict_subset_and_right_regime() {
        let p = example1(1.0, 1.0, 1.0, 2.0);
        assert!(delta(&p, p.full_type()).is_err());
        let p_slow = example1(1.0, 1.0, 1.0, 0.5);
        assert!(delta(&p_slow, PieceSet::empty()).is_err());
        assert!(piece_threshold(&p_slow, PieceId::new(0)).is_err());
        assert!(one_club_deltas(&p_slow).is_err());
    }

    #[test]
    fn one_club_deltas_listing() {
        let p = example3(2.0, 1.0, 0.5, 1.0, 4.0);
        let ds = one_club_deltas(&p).unwrap();
        assert_eq!(ds.len(), 3);
        // Piece 3 is the rarest in arrivals, so Δ_{F−{3}} should be largest.
        let d3 = ds.iter().find(|(p, _)| p.index() == 2).unwrap().1;
        for (piece, d) in &ds {
            if piece.index() != 2 {
                assert!(
                    *d <= d3,
                    "Δ for piece {} = {d} should not exceed {d3}",
                    piece.index()
                );
            }
        }
    }

    #[test]
    fn critical_seed_rate_formula() {
        // Example 1: need U_s > λ0 (1 − µ/γ).
        let p = example1(2.0, 0.0, 1.0, 2.0);
        let us = critical_seed_rate(&p).unwrap();
        assert!((us - 1.0).abs() < 1e-12);
        // Already stable with no seed if gifted arrivals carry enough help.
        let p = example2(1.0, 0.9);
        assert_eq!(critical_seed_rate(&p).unwrap(), 0.0);
        // Wrong regime.
        let p = example1(1.0, 1.0, 1.0, 0.5);
        assert!(critical_seed_rate(&p).is_err());
    }

    #[test]
    fn critical_departure_rate_is_at_least_mu() {
        // The "one extra piece" corollary: γ = µ is always enough.
        let p = example1(50.0, 0.01, 1.0, 2.0); // heavily loaded
        let gamma_crit = critical_departure_rate(&p);
        assert!(gamma_crit >= 1.0);
        assert!(gamma_crit.is_finite());
        // Verify consistency: slightly below the critical rate → stable.
        let stable = example1(50.0, 0.01, 1.0, gamma_crit * 0.99);
        assert!(classify(&stable).verdict.is_stable());
        // Slightly above (still > µ) → transient.
        let unstable = example1(50.0, 0.01, 1.0, gamma_crit * 1.01);
        assert_eq!(classify(&unstable).verdict, StabilityVerdict::Transient);
    }

    #[test]
    fn critical_departure_rate_infinite_when_seed_strong() {
        let p = example1(1.0, 10.0, 1.0, 2.0);
        assert_eq!(critical_departure_rate(&p), f64::INFINITY);
    }

    #[test]
    fn critical_arrival_scale_example1() {
        // λ0 = 1, U_s = 1, µ/γ = 0.5: critical scale is 2 (λ0 can double).
        let p = example1(1.0, 1.0, 1.0, 2.0);
        let a = critical_arrival_scale(&p);
        assert!((a - 2.0).abs() < 1e-12);
        // γ ≤ µ: infinite scale.
        let p = example1(1.0, 1.0, 1.0, 0.5);
        assert_eq!(critical_arrival_scale(&p), f64::INFINITY);
        // Example 2 at a stable point scales until the 2:1 rule binds.
        let p = example2(1.0, 0.9);
        assert_eq!(critical_arrival_scale(&p), f64::INFINITY);
    }

    #[test]
    fn report_contents_are_consistent() {
        let p = example1(1.0, 1.0, 1.0, 2.0);
        let report = classify(&p);
        assert_eq!(report.piece_thresholds.len(), 1);
        assert_eq!(report.critical_piece, Some(PieceId::new(0)));
        assert!((report.total_arrival_rate - 1.0).abs() < 1e-12);
        assert!(!report.slow_departure_regime);
        assert!(report.verdict.is_stable());
    }
}
