//! The CTMC state: the number of peers of each type.

use pieceset::{PieceSet, TypeSpace};
use serde::{Deserialize, Serialize};

/// The state vector `x = (x_C : C ∈ C)` of the swarm CTMC: the number of
/// peers currently holding each subset of pieces.
///
/// The vector is indexed by the canonical [`pieceset::TypeIndex`] (the type's
/// bitmask), so it has length `2^K`. For the `γ = ∞` convention the
/// full-collection coordinate is always zero (peers depart the instant they
/// complete); the generator enforces that, not this type.
///
/// # Examples
///
/// ```
/// use swarm::SwarmState;
/// use pieceset::{TypeSpace, PieceSet};
///
/// let space = TypeSpace::new(3).unwrap();
/// let mut x = SwarmState::empty(&space);
/// x.add_peer(PieceSet::empty());
/// x.add_peer(PieceSet::empty());
/// assert_eq!(x.total_peers(), 2);
/// assert_eq!(x.count(PieceSet::empty()), 2);
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct SwarmState {
    counts: Vec<u32>,
}

impl SwarmState {
    /// The empty system (no peers) for the given type space.
    #[must_use]
    pub fn empty(space: &TypeSpace) -> Self {
        SwarmState {
            counts: vec![0; space.num_types()],
        }
    }

    /// A state with `n` peers all of type `c` ("heavy load" initial
    /// conditions such as the one club of the missing-piece syndrome).
    #[must_use]
    pub fn uniform(space: &TypeSpace, c: PieceSet, n: u32) -> Self {
        let mut s = Self::empty(space);
        s.set_count(c, n);
        s
    }

    /// A "one club" state: `n` peers all missing exactly `missing_piece`
    /// (i.e. of type `F − {missing_piece}`).
    #[must_use]
    pub fn one_club(space: &TypeSpace, missing_piece: pieceset::PieceId, n: u32) -> Self {
        let c = space.full_type().without(missing_piece);
        Self::uniform(space, c, n)
    }

    /// Number of types tracked (`2^K`).
    #[must_use]
    pub fn num_types(&self) -> usize {
        self.counts.len()
    }

    /// The number of peers of type `c`.
    ///
    /// # Panics
    ///
    /// Panics if `c` uses pieces outside the state's type space.
    #[must_use]
    pub fn count(&self, c: PieceSet) -> u32 {
        self.counts[c.bits() as usize]
    }

    /// Sets the number of peers of type `c`.
    pub fn set_count(&mut self, c: PieceSet, n: u32) {
        self.counts[c.bits() as usize] = n;
    }

    /// Adds one peer of type `c`.
    pub fn add_peer(&mut self, c: PieceSet) {
        self.counts[c.bits() as usize] += 1;
    }

    /// Removes one peer of type `c`.
    ///
    /// # Panics
    ///
    /// Panics if there is no such peer.
    pub fn remove_peer(&mut self, c: PieceSet) {
        let slot = &mut self.counts[c.bits() as usize];
        assert!(*slot > 0, "no type-{c} peer to remove");
        *slot -= 1;
    }

    /// Moves a peer from type `from` to type `to` (a piece download).
    ///
    /// # Panics
    ///
    /// Panics if there is no type-`from` peer.
    pub fn move_peer(&mut self, from: PieceSet, to: PieceSet) {
        self.remove_peer(from);
        self.add_peer(to);
    }

    /// Total number of peers `n` in the system.
    #[must_use]
    pub fn total_peers(&self) -> u64 {
        self.counts.iter().map(|&c| u64::from(c)).sum()
    }

    /// Returns `true` if there are no peers.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.counts.iter().all(|&c| c == 0)
    }

    /// Iterates over `(type, count)` pairs with a positive count.
    pub fn occupied_types(&self) -> impl Iterator<Item = (PieceSet, u32)> + '_ {
        self.counts
            .iter()
            .enumerate()
            .filter(|(_, &c)| c > 0)
            .map(|(bits, &c)| (PieceSet::from_bits(bits as u64), c))
    }

    /// Number of peers holding piece `piece` (summed over types).
    #[must_use]
    pub fn peers_with_piece(&self, piece: pieceset::PieceId) -> u64 {
        self.occupied_types()
            .filter(|(c, _)| c.contains(piece))
            .map(|(_, n)| u64::from(n))
            .sum()
    }

    /// Number of copies of piece `piece` held across the swarm, counting one
    /// per holding peer (identical to [`SwarmState::peers_with_piece`] but
    /// kept separate for readability at call sites about piece rarity).
    #[must_use]
    pub fn piece_copies(&self, piece: pieceset::PieceId) -> u64 {
        self.peers_with_piece(piece)
    }

    /// `E_S = Σ_{C ⊆ S} x_C` — the number of peers that are, or can become,
    /// type-`S` peers (used by the Lyapunov function).
    #[must_use]
    pub fn count_subsets_of(&self, s: PieceSet) -> u64 {
        self.occupied_types()
            .filter(|(c, _)| c.is_subset_of(s))
            .map(|(_, n)| u64::from(n))
            .sum()
    }

    /// Number of peers of types *not* contained in `s` (the helpers `x_{H_S}`).
    #[must_use]
    pub fn count_helpers_of(&self, s: PieceSet) -> u64 {
        self.total_peers() - self.count_subsets_of(s)
    }

    /// The fraction of peers that are of type `s` (zero for an empty system).
    #[must_use]
    pub fn fraction_of_type(&self, s: PieceSet) -> f64 {
        let n = self.total_peers();
        if n == 0 {
            0.0
        } else {
            f64::from(self.count(s)) / n as f64
        }
    }

    /// Size of the largest "one club": the maximum, over pieces `k`, of the
    /// number of peers of type `F − {k}`.
    #[must_use]
    pub fn largest_one_club(&self, space: &TypeSpace) -> u32 {
        space
            .one_club_types()
            .map(|c| self.count(c))
            .max()
            .unwrap_or(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pieceset::PieceId;

    fn set(indices: &[usize]) -> PieceSet {
        indices.iter().map(|&i| PieceId::new(i)).collect()
    }

    fn space3() -> TypeSpace {
        TypeSpace::new(3).unwrap()
    }

    #[test]
    fn empty_state() {
        let s = SwarmState::empty(&space3());
        assert!(s.is_empty());
        assert_eq!(s.total_peers(), 0);
        assert_eq!(s.num_types(), 8);
        assert_eq!(s.occupied_types().count(), 0);
    }

    #[test]
    fn add_remove_move() {
        let mut s = SwarmState::empty(&space3());
        s.add_peer(set(&[0]));
        s.add_peer(set(&[0]));
        s.add_peer(set(&[1, 2]));
        assert_eq!(s.total_peers(), 3);
        assert_eq!(s.count(set(&[0])), 2);
        s.move_peer(set(&[0]), set(&[0, 1]));
        assert_eq!(s.count(set(&[0])), 1);
        assert_eq!(s.count(set(&[0, 1])), 1);
        s.remove_peer(set(&[1, 2]));
        assert_eq!(s.total_peers(), 2);
    }

    #[test]
    #[should_panic(expected = "no type-")]
    fn remove_missing_peer_panics() {
        let mut s = SwarmState::empty(&space3());
        s.remove_peer(set(&[0]));
    }

    #[test]
    fn one_club_construction() {
        let space = space3();
        let s = SwarmState::one_club(&space, PieceId::new(0), 10);
        assert_eq!(s.total_peers(), 10);
        assert_eq!(s.count(set(&[1, 2])), 10);
        assert_eq!(s.largest_one_club(&space), 10);
        assert_eq!(s.fraction_of_type(set(&[1, 2])), 1.0);
    }

    #[test]
    fn piece_counts() {
        let mut s = SwarmState::empty(&space3());
        s.set_count(set(&[0]), 3);
        s.set_count(set(&[0, 1]), 2);
        s.set_count(set(&[2]), 4);
        assert_eq!(s.peers_with_piece(PieceId::new(0)), 5);
        assert_eq!(s.peers_with_piece(PieceId::new(1)), 2);
        assert_eq!(s.piece_copies(PieceId::new(2)), 4);
        assert_eq!(s.total_peers(), 9);
    }

    #[test]
    fn subset_and_helper_counts() {
        let mut s = SwarmState::empty(&space3());
        s.set_count(PieceSet::empty(), 1);
        s.set_count(set(&[0]), 2);
        s.set_count(set(&[0, 1]), 3);
        s.set_count(set(&[2]), 4);
        let target = set(&[0, 1]);
        // subsets of {1,2}: ∅, {1}, {1,2} → 1 + 2 + 3 = 6
        assert_eq!(s.count_subsets_of(target), 6);
        assert_eq!(s.count_helpers_of(target), 4);
    }

    #[test]
    fn fraction_of_type_handles_empty() {
        let s = SwarmState::empty(&space3());
        assert_eq!(s.fraction_of_type(set(&[0])), 0.0);
    }

    #[test]
    fn uniform_state() {
        let s = SwarmState::uniform(&space3(), set(&[1]), 7);
        assert_eq!(s.count(set(&[1])), 7);
        assert_eq!(s.total_peers(), 7);
        assert_eq!(s.occupied_types().count(), 1);
    }
}
