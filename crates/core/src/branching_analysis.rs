//! The autonomous branching system (ABS) of the transience proof
//! (Section VI).
//!
//! The proof couples the original system, started from a large one club, to a
//! branching system in which peers that obtained piece one (groups (b), (f),
//! and gifted peers (g)) spawn offspring. The offspring means determine the
//! rate at which piece one can spread, and hence the growth rate of the one
//! club. This module computes those means and the resulting upper bound on
//! the long-run rate of piece-one downloads, reproducing Corollary 3.

use crate::{SwarmError, SwarmParams};
use markov::branching::BranchingProcess;
use pieceset::PieceId;
use serde::{Deserialize, Serialize};

/// The offspring means of the ABS for a given contact-slack parameter `ξ`.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct AbsMeans {
    /// The slack parameter `ξ` used.
    pub xi: f64,
    /// `m_b`: one plus the expected number of descendants of a group-(b)
    /// (infected) peer.
    pub m_b: f64,
    /// `m_f`: one plus the expected number of descendants of a group-(f)
    /// (former one-club) peer.
    pub m_f: f64,
}

/// Computes the ABS offspring means `(m_b, m_f)` for the missing piece
/// `piece`, slack `ξ`, and the given parameters, by solving the rank-one
/// linear system of Section VI.
///
/// The system is finite only under the subcriticality condition (6):
/// `ξ ((K−1)/(1−ξ) + µ/γ) + µ/γ < 1`.
///
/// # Errors
///
/// * [`SwarmError::WrongRegime`] if `γ ≤ µ` (the transience analysis needs
///   `µ < γ`),
/// * [`SwarmError::InvalidParameter`] if `ξ ∉ [0, 1)` or condition (6) fails.
pub fn abs_means(params: &SwarmParams, xi: f64) -> Result<AbsMeans, SwarmError> {
    let ratio = params.mu_over_gamma();
    if ratio >= 1.0 {
        return Err(SwarmError::WrongRegime(format!(
            "the ABS analysis requires µ < γ, got µ/γ = {ratio}"
        )));
    }
    if !(0.0..1.0).contains(&xi) {
        return Err(SwarmError::InvalidParameter(format!(
            "ξ = {xi} must lie in [0, 1)"
        )));
    }
    let k = params.num_pieces() as f64;
    let a = (k - 1.0) / (1.0 - xi) + ratio; // downloads-needed factor of a group (b) peer
    let b = ratio; // of a group (f) peer
    if xi * a + b >= 1.0 {
        return Err(SwarmError::InvalidParameter(format!(
            "subcriticality condition (6) fails: ξ((K−1)/(1−ξ) + µ/γ) + µ/γ = {} ≥ 1",
            xi * a + b
        )));
    }
    // Solve (m_b, m_f) = 1 + M (m_b, m_f) with the rank-one matrix
    //   M = [[ξ a, a], [ξ b, b]].
    let bp = BranchingProcess::from_rows(&[vec![xi * a, a], vec![xi * b, b]])?;
    let m = bp.expected_total_progeny()?;
    Ok(AbsMeans {
        xi,
        m_b: m[0],
        m_f: m[1],
    })
}

/// `m_g(C)`: the expected total number of descendants of a gifted peer that
/// arrived with collection `C ∋ piece` (not counting the gifted peer itself).
///
/// # Errors
///
/// Same as [`abs_means`]; additionally requires `piece ∈ C`.
pub fn gifted_mean(
    params: &SwarmParams,
    piece: PieceId,
    c: pieceset::PieceSet,
    xi: f64,
) -> Result<f64, SwarmError> {
    if !c.contains(piece) {
        return Err(SwarmError::InvalidParameter(format!(
            "gifted peers must arrive holding the missing piece: {} ∉ {}",
            piece,
            c.paper_notation()
        )));
    }
    let means = abs_means(params, xi)?;
    let k = params.num_pieces() as f64;
    let ratio = params.mu_over_gamma();
    Ok(((k - c.len() as f64) / (1.0 - xi) + ratio) * (xi * means.m_b + means.m_f))
}

/// The long-run upper bound on the rate of piece-`piece` downloads implied by
/// the ABS (the mean arrival rate of the compound process `D̂` in
/// Corollary 3):
///
/// `U_s (ξ m_b + m_f) + Σ_{C ∋ piece} λ_C m_g(C)`.
///
/// As `ξ → 0` this converges to the threshold of eq. (2)/(3),
/// `(U_s + Σ_{C∋k} λ_C (K − |C| + µ/γ)) / (1 − µ/γ)`.
///
/// # Errors
///
/// Same as [`abs_means`].
pub fn piece_download_rate_bound(
    params: &SwarmParams,
    piece: PieceId,
    xi: f64,
) -> Result<f64, SwarmError> {
    let means = abs_means(params, xi)?;
    let mut rate = params.seed_rate() * (xi * means.m_b + means.m_f);
    for (c, lambda) in params.arrivals() {
        if c.contains(piece) {
            rate += lambda * gifted_mean(params, piece, c, xi)?;
        }
    }
    Ok(rate)
}

/// The ξ → 0 limits of the ABS means quoted in the paper:
/// `m_b → K / (1 − µ/γ)` and `m_f → 1 / (1 − µ/γ)`.
#[must_use]
pub fn abs_means_limit(params: &SwarmParams) -> AbsMeans {
    let ratio = params.mu_over_gamma();
    let k = params.num_pieces() as f64;
    AbsMeans {
        xi: 0.0,
        m_b: k / (1.0 - ratio),
        m_f: 1.0 / (1.0 - ratio),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pieceset::PieceSet;

    fn params(k: usize, us: f64, mu: f64, gamma: f64) -> SwarmParams {
        SwarmParams::builder(k)
            .seed_rate(us)
            .contact_rate(mu)
            .seed_departure_rate(gamma)
            .fresh_arrivals(1.0)
            .build()
            .unwrap()
    }

    #[test]
    fn abs_means_match_closed_form() {
        let p = params(4, 1.0, 1.0, 2.0);
        let xi = 0.05;
        let means = abs_means(&p, xi).unwrap();
        // Closed form from the paper: (m_b, m_f) = 1 + (1+ξ)/(1 − ξ a − b) (a, b).
        let ratio = 0.5;
        let a = 3.0 / (1.0 - xi) + ratio;
        let b = ratio;
        let denom = 1.0 - xi * a - b;
        assert!((means.m_b - (1.0 + (1.0 + xi) / denom * a)).abs() < 1e-9);
        assert!((means.m_f - (1.0 + (1.0 + xi) / denom * b)).abs() < 1e-9);
    }

    #[test]
    fn abs_means_converge_to_limit_as_xi_vanishes() {
        let p = params(5, 0.7, 1.0, 3.0);
        let limit = abs_means_limit(&p);
        let means = abs_means(&p, 1e-9).unwrap();
        assert!(
            (means.m_b - limit.m_b).abs() < 1e-5,
            "{} vs {}",
            means.m_b,
            limit.m_b
        );
        assert!((means.m_f - limit.m_f).abs() < 1e-5);
        // And the limit matches the quoted formulas.
        assert!((limit.m_b - 5.0 / (1.0 - 1.0 / 3.0)).abs() < 1e-12);
        assert!((limit.m_f - 1.0 / (1.0 - 1.0 / 3.0)).abs() < 1e-12);
    }

    #[test]
    fn means_increase_with_xi() {
        let p = params(3, 0.5, 1.0, 4.0);
        let m_small = abs_means(&p, 0.01).unwrap();
        let m_big = abs_means(&p, 0.1).unwrap();
        assert!(m_big.m_b > m_small.m_b);
        assert!(m_big.m_f > m_small.m_f);
    }

    #[test]
    fn subcriticality_condition_enforced() {
        let p = params(10, 0.5, 1.0, 1.05); // µ/γ close to 1, K large
                                            // With a large ξ, condition (6) fails.
        assert!(abs_means(&p, 0.5).is_err());
        // With tiny ξ it may still fail because µ/γ ≈ 0.95 and ξ(K−1) term...
        // here ξ = 1e-4: ξ*(9/(1-ξ)+0.95)+0.95 ≈ 0.951 < 1 → ok.
        assert!(abs_means(&p, 1e-4).is_ok());
    }

    #[test]
    fn regime_and_range_validation() {
        let slow = params(3, 0.5, 1.0, 0.5);
        assert!(abs_means(&slow, 0.01).is_err());
        let p = params(3, 0.5, 1.0, 2.0);
        assert!(abs_means(&p, -0.1).is_err());
        assert!(abs_means(&p, 1.0).is_err());
    }

    #[test]
    fn gifted_mean_requires_the_missing_piece() {
        let p = SwarmParams::builder(3)
            .seed_rate(0.2)
            .contact_rate(1.0)
            .seed_departure_rate(2.0)
            .arrival(PieceSet::empty(), 1.0)
            .arrival(PieceSet::singleton(PieceId::new(0)), 0.5)
            .build()
            .unwrap();
        assert!(gifted_mean(
            &p,
            PieceId::new(0),
            PieceSet::singleton(PieceId::new(0)),
            0.01
        )
        .is_ok());
        assert!(gifted_mean(
            &p,
            PieceId::new(1),
            PieceSet::singleton(PieceId::new(0)),
            0.01
        )
        .is_err());
    }

    #[test]
    fn download_rate_bound_converges_to_theorem_threshold() {
        // With gifted arrivals the ξ → 0 limit of the bound is
        // (U_s + Σ_{C∋k} λ_C (K − |C| + µ/γ)) / (1 − µ/γ).
        let p = SwarmParams::builder(3)
            .seed_rate(0.4)
            .contact_rate(1.0)
            .seed_departure_rate(2.0)
            .arrival(PieceSet::empty(), 1.0)
            .arrival(PieceSet::singleton(PieceId::new(0)), 0.5)
            .build()
            .unwrap();
        let piece = PieceId::new(0);
        let ratio: f64 = 0.5;
        let expected = (0.4 + 0.5 * (3.0 - 1.0 + ratio)) / (1.0 - ratio);
        let bound = piece_download_rate_bound(&p, piece, 1e-9).unwrap();
        assert!((bound - expected).abs() < 1e-4, "{bound} vs {expected}");
        // Note this differs from the eq. (2) numerator form (K + 1 − |C|)
        // only through the µ/γ accounting; both agree as shown in the paper.
    }

    #[test]
    fn download_rate_bound_increases_with_seed_rate() {
        let p_small = params(3, 0.1, 1.0, 2.0);
        let p_big = params(3, 1.0, 1.0, 2.0);
        let b_small = piece_download_rate_bound(&p_small, PieceId::new(0), 0.01).unwrap();
        let b_big = piece_download_rate_bound(&p_big, PieceId::new(0), 0.01).unwrap();
        assert!(b_big > b_small);
    }
}
