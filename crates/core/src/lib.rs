//! The Zhu–Hajek peer-to-peer swarm model (PODC 2011): generator, stability
//! region, proof machinery, and simulators.
//!
//! This crate is the paper's primary contribution rendered as a library:
//!
//! * [`SwarmParams`] / [`SwarmModel`] — the CTMC of Section III (states are
//!   per-type peer counts, transitions follow eq. (1)),
//! * [`stability`] — Theorem 1: the stability region, the `Δ_S` quantities of
//!   eq. (4), and critical-parameter solvers,
//! * [`lyapunov`] — the Lyapunov function of the positive-recurrence proof
//!   (Section VII) with numeric drift evaluation,
//! * [`branching_analysis`] — the autonomous branching system of the
//!   transience proof (Section VI),
//! * [`policy`] / [`sim`] — a peer-level (agent-based) simulator with
//!   pluggable piece-selection policies (Theorem 14), Fig.-2 group
//!   tracking, flash-crowd schedules, and two draw-compatible kernels (an
//!   event-driven kernel on packed bitsets, and the legacy scan kernel it
//!   is differentially tested against),
//! * [`coded`] — the network-coding variant (Theorem 15),
//! * [`mu_infinity`] — the `µ = ∞` watched process of the borderline analysis
//!   (Section VIII-D, Fig. 3).
//!
//! # Quick start
//!
//! ```
//! use swarm::{SwarmParams, SwarmModel, stability};
//! use rand::SeedableRng;
//!
//! // Example 1 of the paper: single piece, fixed seed, peer seeds dwell 1/γ.
//! let params = SwarmParams::builder(1)
//!     .seed_rate(1.0)
//!     .contact_rate(1.0)
//!     .seed_departure_rate(2.0)
//!     .fresh_arrivals(1.5)
//!     .build()
//!     .unwrap();
//!
//! // Theorem 1 says this point is stable: λ0 = 1.5 < U_s / (1 − µ/γ) = 2.
//! assert!(stability::classify(&params).verdict.is_stable());
//!
//! // And simulation agrees.
//! let model = SwarmModel::new(params);
//! let mut rng = rand::rngs::StdRng::seed_from_u64(0);
//! let verdict = model.simulate_and_classify(model.empty_state(), 2_000.0, &mut rng);
//! assert_eq!(verdict.class, markov::PathClass::Stable);
//! ```

#![deny(missing_docs)]
#![forbid(unsafe_code)]

pub mod branching_analysis;
mod error;
pub mod lyapunov;
mod model;
mod params;
pub mod rates;
pub mod stability;
mod state;

pub mod coded;
pub mod groups;
pub mod metrics;
pub mod mu_infinity;
pub mod policy;
pub mod sim;

pub use error::SwarmError;
pub use model::SwarmModel;
pub use params::{SwarmParams, SwarmParamsBuilder};
pub use stability::{StabilityReport, StabilityVerdict};
pub use state::SwarmState;

// Re-export the foundational crates so downstream users need only depend on
// `swarm` for common tasks.
pub use markov;
pub use netcoding;
pub use pieceset;
