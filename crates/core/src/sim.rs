//! Peer-level (agent-based) discrete-event simulator.
//!
//! The type-count CTMC of [`crate::SwarmModel`] is exact but cannot express
//! per-peer identities: which peers are gifted or infected (Fig. 2), how a
//! non-random piece-selection policy behaves (Theorem 14), or the
//! faster-retry variant of Section VIII-C. This simulator keeps every peer as
//! an agent with its own piece collection and simulates the same stochastic
//! dynamics exactly (exponential clocks, uniform random contacts), with
//! pluggable [`crate::policy::PiecePolicy`] and optional retry speed-up.

use crate::groups::{classify_peer, GroupCounts};
use crate::metrics::{SimResult, SimSnapshot, SojournStats};
use crate::policy::{PiecePolicy, RandomUseful};
use crate::{SwarmError, SwarmParams};
use markov::poisson::{sample_exp, sample_weighted_index};
use pieceset::{PieceId, PieceSet};
use rand::Rng;

/// Configuration of the agent-based simulator beyond the model parameters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AgentConfig {
    /// The piece whose spread is tracked for the Fig.-2 decomposition
    /// (piece one in the paper).
    pub watch_piece: PieceId,
    /// Retry speed-up factor `η ≥ 1` of Section VIII-C: a peer (or the fixed
    /// seed) whose last contact found nothing useful runs its clock `η`
    /// times faster until its next contact. `1.0` recovers the base model.
    pub retry_speedup: f64,
    /// Interval between recorded snapshots.
    pub snapshot_interval: f64,
    /// Hard cap on the number of simulated events (safety valve).
    pub max_events: u64,
}

impl Default for AgentConfig {
    fn default() -> Self {
        AgentConfig {
            watch_piece: PieceId::new(0),
            retry_speedup: 1.0,
            snapshot_interval: 10.0,
            max_events: 50_000_000,
        }
    }
}

/// One peer in the agent-based simulation.
#[derive(Debug, Clone)]
struct Peer {
    pieces: PieceSet,
    arrival_time: f64,
    arrived_with_watch: bool,
    was_one_club: bool,
    boosted: bool,
}

/// The agent-based swarm simulator.
///
/// # Examples
///
/// ```
/// use swarm::{sim::AgentSwarm, SwarmParams};
/// use rand::SeedableRng;
///
/// let params = SwarmParams::builder(2)
///     .seed_rate(1.0)
///     .contact_rate(1.0)
///     .seed_departure_rate(2.0)
///     .fresh_arrivals(0.5)
///     .build()
///     .unwrap();
/// let sim = AgentSwarm::new(params).unwrap();
/// let mut rng = rand::rngs::StdRng::seed_from_u64(3);
/// let result = sim.run(&[], 200.0, &mut rng);
/// assert!(result.final_snapshot().time >= 199.9);
/// ```
pub struct AgentSwarm {
    params: SwarmParams,
    config: AgentConfig,
    policy: Box<dyn PiecePolicy>,
}

impl AgentSwarm {
    /// Creates a simulator with the default configuration and the paper's
    /// random-useful policy.
    ///
    /// # Errors
    ///
    /// Returns [`SwarmError::InvalidParameter`] if the configuration is
    /// invalid (see [`AgentSwarm::with_config`]).
    pub fn new(params: SwarmParams) -> Result<Self, SwarmError> {
        Self::with_config(params, AgentConfig::default(), Box::new(RandomUseful))
    }

    /// Creates a simulator with an explicit configuration and policy.
    ///
    /// # Errors
    ///
    /// Returns [`SwarmError::InvalidParameter`] if the watch piece is outside
    /// the file, the retry speed-up is less than one, or the snapshot
    /// interval is not positive.
    pub fn with_config(
        params: SwarmParams,
        config: AgentConfig,
        policy: Box<dyn PiecePolicy>,
    ) -> Result<Self, SwarmError> {
        if config.watch_piece.index() >= params.num_pieces() {
            return Err(SwarmError::InvalidParameter(format!(
                "watch piece {} outside a {}-piece file",
                config.watch_piece,
                params.num_pieces()
            )));
        }
        if !(config.retry_speedup >= 1.0 && config.retry_speedup.is_finite()) {
            return Err(SwarmError::InvalidParameter(format!(
                "retry speed-up η = {} must be a finite value ≥ 1",
                config.retry_speedup
            )));
        }
        if config.snapshot_interval.is_nan() || config.snapshot_interval <= 0.0 {
            return Err(SwarmError::InvalidParameter(
                "snapshot interval must be positive".into(),
            ));
        }
        Ok(AgentSwarm {
            params,
            config,
            policy,
        })
    }

    /// The model parameters.
    #[must_use]
    pub fn params(&self) -> &SwarmParams {
        &self.params
    }

    /// The name of the piece-selection policy in use.
    #[must_use]
    pub fn policy_name(&self) -> &'static str {
        self.policy.name()
    }

    /// Runs the simulation from an initial population (`initial[i]` is the
    /// piece collection of the `i`-th initial peer) up to `horizon`.
    #[must_use]
    pub fn run<R: Rng>(&self, initial: &[PieceSet], horizon: f64, rng: &mut R) -> SimResult {
        Engine::new(self, initial, rng).run(horizon, rng)
    }

    /// Runs from a one-club initial condition: `n` peers all missing exactly
    /// the watch piece.
    #[must_use]
    pub fn run_from_one_club<R: Rng>(&self, n: usize, horizon: f64, rng: &mut R) -> SimResult {
        let club = self.params.full_type().without(self.config.watch_piece);
        let initial = vec![club; n];
        self.run(&initial, horizon, rng)
    }
}

/// Internal mutable simulation state.
struct Engine<'a> {
    sim: &'a AgentSwarm,
    peers: Vec<Peer>,
    piece_copies: Vec<u64>,
    boosted_count: usize,
    /// Number of peers currently holding the complete collection, maintained
    /// incrementally so per-event rate computation stays O(1).
    seeds: usize,
    seed_boosted: bool,
    time: f64,
    watch_downloads: u64,
    arrivals_without_watch: u64,
    transfers: u64,
    unsuccessful: u64,
    events: u64,
    sojourns: SojournStats,
    snapshots: Vec<SimSnapshot>,
    next_snapshot: f64,
    arrival_types: Vec<(PieceSet, f64)>,
}

impl<'a> Engine<'a> {
    fn new<R: Rng>(sim: &'a AgentSwarm, initial: &[PieceSet], _rng: &mut R) -> Self {
        let k = sim.params.num_pieces();
        let watch = sim.config.watch_piece;
        let full = sim.params.full_type();
        let club = full.without(watch);
        let mut piece_copies = vec![0u64; k];
        let peers: Vec<Peer> = initial
            .iter()
            .map(|&pieces| {
                debug_assert!(pieces.is_subset_of(full));
                for p in pieces.iter() {
                    piece_copies[p.index()] += 1;
                }
                Peer {
                    pieces,
                    arrival_time: 0.0,
                    arrived_with_watch: pieces.contains(watch),
                    was_one_club: pieces == club,
                    boosted: false,
                }
            })
            .collect();
        let arrival_types: Vec<(PieceSet, f64)> = sim.params.arrivals().collect();
        let seeds = peers.iter().filter(|p| p.pieces == full).count();
        let mut engine = Engine {
            sim,
            peers,
            piece_copies,
            boosted_count: 0,
            seeds,
            seed_boosted: false,
            time: 0.0,
            watch_downloads: 0,
            arrivals_without_watch: 0,
            transfers: 0,
            unsuccessful: 0,
            events: 0,
            sojourns: SojournStats::default(),
            snapshots: Vec::new(),
            next_snapshot: 0.0,
            arrival_types,
        };
        engine.record_snapshot(0.0);
        engine.next_snapshot = sim.config.snapshot_interval;
        engine
    }

    fn full(&self) -> PieceSet {
        self.sim.params.full_type()
    }

    fn record_snapshot(&mut self, time: f64) {
        let watch = self.sim.config.watch_piece;
        let k = self.sim.params.num_pieces();
        let full = self.full();
        let mut groups = GroupCounts::default();
        let mut seeds = 0u64;
        for p in &self.peers {
            groups.add(classify_peer(
                p.pieces,
                p.arrived_with_watch,
                p.was_one_club,
                watch,
                k,
            ));
            if p.pieces == full {
                seeds += 1;
            }
        }
        self.snapshots.push(SimSnapshot {
            time,
            total_peers: self.peers.len() as u64,
            peer_seeds: seeds,
            groups,
            watch_piece_downloads: self.watch_downloads,
            arrivals_without_watch: self.arrivals_without_watch,
            watch_piece_copies: self.piece_copies[watch.index()],
        });
    }

    fn run<R: Rng>(mut self, horizon: f64, rng: &mut R) -> SimResult {
        let params = &self.sim.params;
        let eta = self.sim.config.retry_speedup;
        let gamma_finite = !params.departs_immediately();

        loop {
            if self.events >= self.sim.config.max_events {
                break;
            }
            let n = self.peers.len();
            let seed_count = if gamma_finite { self.seeds } else { 0 };

            let arrival_rate = params.total_arrival_rate();
            let seed_tick_rate = if n > 0 {
                params.seed_rate() * if self.seed_boosted { eta } else { 1.0 }
            } else {
                0.0
            };
            let peer_tick_rate = params.contact_rate()
                * ((n - self.boosted_count) as f64 + eta * self.boosted_count as f64);
            let departure_rate = if gamma_finite {
                params.seed_departure_rate() * seed_count as f64
            } else {
                0.0
            };
            let rates = [arrival_rate, seed_tick_rate, peer_tick_rate, departure_rate];
            let total: f64 = rates.iter().sum();
            debug_assert!(total > 0.0, "λ_total > 0 guarantees a positive total rate");

            let dt = sample_exp(rng, total);
            let new_time = self.time + dt;
            // Emit snapshots for every interval boundary crossed before the event.
            while self.next_snapshot <= new_time.min(horizon) {
                let t = self.next_snapshot;
                self.record_snapshot(t);
                self.next_snapshot += self.sim.config.snapshot_interval;
            }
            if new_time > horizon {
                self.time = horizon;
                break;
            }
            self.time = new_time;
            self.events += 1;

            match sample_weighted_index(rng, &rates).expect("positive total rate") {
                0 => self.handle_arrival(rng),
                1 => self.handle_seed_tick(rng),
                2 => self.handle_peer_tick(rng),
                _ => self.handle_seed_departure(rng),
            }
        }

        // Final snapshot at the horizon.
        let end = self.time.max(self.snapshots.last().map_or(0.0, |s| s.time));
        self.record_snapshot(end);
        SimResult {
            snapshots: self.snapshots,
            sojourns: self.sojourns,
            transfers: self.transfers,
            unsuccessful_contacts: self.unsuccessful,
            events: self.events,
            horizon: end,
        }
    }

    fn handle_arrival<R: Rng>(&mut self, rng: &mut R) {
        let weights: Vec<f64> = self.arrival_types.iter().map(|(_, r)| *r).collect();
        let idx = sample_weighted_index(rng, &weights).expect("λ_total > 0");
        let pieces = self.arrival_types[idx].0;
        let watch = self.sim.config.watch_piece;
        if !pieces.contains(watch) {
            self.arrivals_without_watch += 1;
        }
        for p in pieces.iter() {
            self.piece_copies[p.index()] += 1;
        }
        let club = self.full().without(watch);
        if pieces == self.full() {
            self.seeds += 1;
        }
        self.peers.push(Peer {
            pieces,
            arrival_time: self.time,
            arrived_with_watch: pieces.contains(watch),
            was_one_club: pieces == club,
            boosted: false,
        });
    }

    fn handle_seed_tick<R: Rng>(&mut self, rng: &mut R) {
        if self.peers.is_empty() {
            return;
        }
        let target = rng.gen_range(0..self.peers.len());
        let useful = self.full().difference(self.peers[target].pieces);
        if useful.is_empty() {
            self.unsuccessful += 1;
            self.seed_boosted = self.sim.config.retry_speedup > 1.0;
            return;
        }
        self.seed_boosted = false;
        let piece = self.sim.policy.select(useful, &self.piece_copies, rng);
        self.give_piece(target, piece, rng);
    }

    fn handle_peer_tick<R: Rng>(&mut self, rng: &mut R) {
        let n = self.peers.len();
        if n == 0 {
            return;
        }
        let eta = self.sim.config.retry_speedup;
        // Rejection-sample the uploader proportionally to its clock rate.
        let uploader = loop {
            let i = rng.gen_range(0..n);
            if eta <= 1.0 || self.peers[i].boosted || rng.gen::<f64>() < 1.0 / eta {
                break i;
            }
        };
        let target = rng.gen_range(0..n);
        let useful = self.peers[uploader]
            .pieces
            .difference(self.peers[target].pieces);
        if useful.is_empty() {
            self.unsuccessful += 1;
            if eta > 1.0 && !self.peers[uploader].boosted {
                self.peers[uploader].boosted = true;
                self.boosted_count += 1;
            }
            return;
        }
        if self.peers[uploader].boosted {
            self.peers[uploader].boosted = false;
            self.boosted_count -= 1;
        }
        let piece = self.sim.policy.select(useful, &self.piece_copies, rng);
        self.give_piece(target, piece, rng);
    }

    /// Delivers `piece` to peer `target`, updating counters, the one-club
    /// history flag, and handling immediate departure when `γ = ∞`.
    fn give_piece<R: Rng>(&mut self, target: usize, piece: PieceId, _rng: &mut R) {
        let watch = self.sim.config.watch_piece;
        let full = self.full();
        let club = full.without(watch);
        debug_assert!(!self.peers[target].pieces.contains(piece));
        self.peers[target].pieces.insert(piece);
        self.piece_copies[piece.index()] += 1;
        self.transfers += 1;
        if piece == watch {
            self.watch_downloads += 1;
        }
        // Receiving a piece changes what the peer can offer, so any pending
        // fast-retry boost (Section VIII-C) no longer reflects a failed
        // attempt with the current collection.
        if self.peers[target].boosted {
            self.peers[target].boosted = false;
            self.boosted_count -= 1;
        }
        if self.peers[target].pieces == club {
            self.peers[target].was_one_club = true;
        }
        if self.peers[target].pieces == full {
            self.seeds += 1;
            if self.sim.params.departs_immediately() {
                self.depart(target);
            }
        }
    }

    fn handle_seed_departure<R: Rng>(&mut self, rng: &mut R) {
        let full = self.full();
        let n = self.peers.len();
        if n == 0 {
            return;
        }
        // Try a few uniform samples, then fall back to a scan; the departing
        // peer must be chosen uniformly among the peer seeds.
        for _ in 0..64 {
            let i = rng.gen_range(0..n);
            if self.peers[i].pieces == full {
                self.depart(i);
                return;
            }
        }
        let seeds: Vec<usize> = (0..n).filter(|&i| self.peers[i].pieces == full).collect();
        if let Some(&i) = seeds.get(
            rng.gen_range(0..seeds.len().max(1))
                .min(seeds.len().saturating_sub(1)),
        ) {
            self.depart(i);
        }
    }

    fn depart(&mut self, index: usize) {
        let peer = self.peers.swap_remove(index);
        if peer.pieces == self.full() {
            self.seeds -= 1;
        }
        if peer.boosted {
            self.boosted_count -= 1;
        }
        for p in peer.pieces.iter() {
            self.piece_copies[p.index()] -= 1;
        }
        self.sojourns.record(self.time - peer.arrival_time);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::policy::{RarestFirst, Sequential};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn params(k: usize, us: f64, mu: f64, gamma: f64, lambda0: f64) -> SwarmParams {
        let mut b = SwarmParams::builder(k)
            .seed_rate(us)
            .contact_rate(mu)
            .fresh_arrivals(lambda0);
        if gamma.is_finite() {
            b = b.seed_departure_rate(gamma);
        }
        b.build().unwrap()
    }

    #[test]
    fn config_validation() {
        let p = params(2, 1.0, 1.0, 1.0, 1.0);
        let bad_watch = AgentConfig {
            watch_piece: PieceId::new(5),
            ..Default::default()
        };
        assert!(AgentSwarm::with_config(p.clone(), bad_watch, Box::new(RandomUseful)).is_err());
        let bad_eta = AgentConfig {
            retry_speedup: 0.5,
            ..Default::default()
        };
        assert!(AgentSwarm::with_config(p.clone(), bad_eta, Box::new(RandomUseful)).is_err());
        let bad_snap = AgentConfig {
            snapshot_interval: 0.0,
            ..Default::default()
        };
        assert!(AgentSwarm::with_config(p.clone(), bad_snap, Box::new(RandomUseful)).is_err());
        assert!(AgentSwarm::new(p).is_ok());
    }

    #[test]
    fn stable_system_keeps_population_bounded() {
        // Example 1 inside the stability region: λ0 = 1 < U_s/(1−µ/γ) = 4.
        let p = params(1, 2.0, 1.0, 2.0, 1.0);
        let sim = AgentSwarm::new(p).unwrap();
        let mut rng = StdRng::seed_from_u64(1);
        let result = sim.run(&[], 2_000.0, &mut rng);
        let path = result.peer_count_path();
        let classifier = markov::PathClassifier::new(1.0, 30.0);
        assert_eq!(classifier.classify(&path).class, markov::PathClass::Stable);
        assert!(
            result.sojourns.departures > 100,
            "plenty of peers complete and leave"
        );
    }

    #[test]
    fn transient_system_grows_at_predicted_rate() {
        // Example 1 outside the region: λ0 = 4 > U_s/(1−µ/γ) = 2.
        // The one-club (= type ∅ here) grows at rate ≈ λ0 − U_s/(1−µ/γ) = 2.
        let p = params(1, 1.0, 1.0, 2.0, 4.0);
        let sim = AgentSwarm::new(p).unwrap();
        let mut rng = StdRng::seed_from_u64(2);
        let result = sim.run(&[], 1_500.0, &mut rng);
        let trend = result.peer_count_path().trend(0.5);
        assert!(trend.slope > 1.0, "slope {}", trend.slope);
        assert!(
            (trend.slope - 2.0).abs() < 0.7,
            "slope {} should be near 2",
            trend.slope
        );
    }

    #[test]
    fn one_club_initial_condition_grows_when_unstable() {
        // K = 3, no seed help for the watch piece beyond a weak fixed seed.
        let p = params(3, 0.2, 1.0, 4.0, 3.0);
        assert_eq!(
            crate::stability::classify(&p).verdict,
            crate::StabilityVerdict::Transient
        );
        let sim = AgentSwarm::new(p).unwrap();
        let mut rng = StdRng::seed_from_u64(3);
        let result = sim.run_from_one_club(100, 500.0, &mut rng);
        let first = result.snapshots.first().unwrap();
        let last = result.final_snapshot();
        assert_eq!(first.groups.one_club, 100);
        assert!(
            last.groups.one_club > 200,
            "one club should keep growing, got {}",
            last.groups.one_club
        );
    }

    #[test]
    fn group_decomposition_partitions_the_population() {
        let p = SwarmParams::builder(3)
            .seed_rate(0.5)
            .contact_rate(1.0)
            .seed_departure_rate(1.5)
            .fresh_arrivals(1.0)
            .arrival(PieceSet::singleton(PieceId::new(0)), 0.3)
            .build()
            .unwrap();
        let sim = AgentSwarm::new(p).unwrap();
        let mut rng = StdRng::seed_from_u64(4);
        let result = sim.run(&[], 500.0, &mut rng);
        for snap in &result.snapshots {
            assert_eq!(
                snap.groups.total(),
                snap.total_peers,
                "groups partition peers at t = {}",
                snap.time
            );
        }
        // gifted peers exist because some arrivals carry the watch piece
        assert!(
            result.final_snapshot().groups.gifted > 0
                || result.snapshots.iter().any(|s| s.groups.gifted > 0)
        );
    }

    #[test]
    fn counters_are_monotone_and_consistent() {
        let p = params(2, 1.0, 1.0, 2.0, 1.0);
        let sim = AgentSwarm::new(p).unwrap();
        let mut rng = StdRng::seed_from_u64(5);
        let result = sim.run(&[], 300.0, &mut rng);
        let mut prev_d = 0;
        let mut prev_a = 0;
        for s in &result.snapshots {
            assert!(s.watch_piece_downloads >= prev_d);
            assert!(s.arrivals_without_watch >= prev_a);
            prev_d = s.watch_piece_downloads;
            prev_a = s.arrivals_without_watch;
            assert!(
                s.watch_piece_copies <= s.total_peers,
                "at most one copy per peer"
            );
        }
        assert!(result.transfers > 0);
        assert!(result.events > 0);
    }

    #[test]
    fn gamma_infinite_leaves_no_seeds_in_system() {
        let p = params(2, 1.0, 1.0, f64::INFINITY, 1.0);
        let sim = AgentSwarm::new(p).unwrap();
        let mut rng = StdRng::seed_from_u64(6);
        let result = sim.run(&[], 400.0, &mut rng);
        for s in &result.snapshots {
            assert_eq!(s.peer_seeds, 0, "peers depart the instant they complete");
        }
        assert!(result.sojourns.departures > 0);
    }

    #[test]
    fn policies_do_not_change_stability_at_stable_point() {
        // Theorem 14 sanity at small scale: a stable parameter point stays
        // stable under sequential and rarest-first selection.
        let p = params(3, 2.0, 1.0, 2.0, 1.0);
        for policy in [
            Box::new(RarestFirst) as Box<dyn PiecePolicy>,
            Box::new(Sequential) as Box<dyn PiecePolicy>,
        ] {
            let sim = AgentSwarm::with_config(p.clone(), AgentConfig::default(), policy).unwrap();
            let mut rng = StdRng::seed_from_u64(7);
            let result = sim.run(&[], 1_000.0, &mut rng);
            let classifier = markov::PathClassifier::new(1.0, 40.0);
            assert_eq!(
                classifier.classify(&result.peer_count_path()).class,
                markov::PathClass::Stable,
                "policy {}",
                sim.policy_name()
            );
        }
    }

    #[test]
    fn retry_speedup_increases_contact_attempts() {
        // With η > 1 a starved uploader retries faster, so the number of
        // unsuccessful contacts grows relative to the base model.
        let p = params(1, 0.2, 1.0, 2.0, 2.0);
        let mut rng = StdRng::seed_from_u64(8);
        let base = AgentSwarm::new(p.clone())
            .unwrap()
            .run(&[], 500.0, &mut rng);
        let mut rng = StdRng::seed_from_u64(8);
        let boosted_cfg = AgentConfig {
            retry_speedup: 10.0,
            ..Default::default()
        };
        let boosted = AgentSwarm::with_config(p, boosted_cfg, Box::new(RandomUseful))
            .unwrap()
            .run(&[], 500.0, &mut rng);
        assert!(
            boosted.unsuccessful_contacts > base.unsuccessful_contacts,
            "boosted {} vs base {}",
            boosted.unsuccessful_contacts,
            base.unsuccessful_contacts
        );
    }

    #[test]
    fn sojourn_times_are_positive_and_reasonable() {
        let p = params(2, 2.0, 1.0, 2.0, 1.0);
        let sim = AgentSwarm::new(p).unwrap();
        let mut rng = StdRng::seed_from_u64(9);
        let result = sim.run(&[], 1_000.0, &mut rng);
        assert!(result.sojourns.departures > 50);
        assert!(result.sojourns.mean_sojourn() > 0.0);
        assert!(result.sojourns.max_sojourn >= result.sojourns.mean_sojourn());
    }
}
