//! The network-coding variant of the model (Section VIII-B, Theorem 15).
//!
//! With random linear network coding over `GF(q)`, a peer's type is the
//! subspace of `F_q^K` spanned by the coding vectors it holds. This module
//! provides:
//!
//! * [`CodedParams`] — parameters of the coded system, including the arrival
//!   model used by the paper's headline example (a fraction `f` of peers
//!   arrive with a single uniformly random coded piece),
//! * [`theorem15_gift_thresholds`] — the closed-form transience /
//!   positive-recurrence thresholds on `f` quoted in the paper
//!   (`q/((q−1)K)` and `q²/((q−1)²K)`),
//! * [`CodedSwarmSim`] — a peer-level simulator of the coded system, used to
//!   validate the qualitative claim (coding rescues stability when gifted
//!   peers carry coded pieces) at laptop-scale `(q, K)`.

use crate::{SwarmError, SwarmParams};
use markov::poisson::{sample_exp, sample_weighted_index, CumulativeWeights};
use netcoding::{CodingVector, GaloisField, Subspace};
use rand::Rng;
use serde::{Deserialize, Serialize};

/// Parameters of the network-coded swarm.
#[derive(Debug, Clone, PartialEq)]
pub struct CodedParams {
    /// The underlying uncoded parameters: `K`, `U_s`, `µ`, `γ`, and the
    /// *total* arrival rate (the per-type split is replaced by
    /// [`CodedParams::gift_dimensions`]).
    pub base: SwarmParams,
    /// The finite field `GF(q)` used for coding.
    pub field: GaloisField,
    /// Arrival mix: `(d, rate)` pairs meaning peers arrive carrying `d`
    /// independent uniformly random coded pieces at Poisson rate `rate`.
    /// (`d = 0` is a blank peer; a random coded piece is useless with
    /// probability `q^{-K}` exactly as in the paper.)
    pub gift_dimensions: Vec<(usize, f64)>,
}

impl CodedParams {
    /// Builds coded parameters for the paper's headline example: total
    /// arrival rate `lambda_total`, of which a fraction `gift_fraction`
    /// arrive with one uniformly random coded piece and the rest with none;
    /// no fixed seed unless `seed_rate > 0`; immediate departures unless a
    /// finite `gamma` is given.
    ///
    /// # Errors
    ///
    /// Returns [`SwarmError::InvalidParameter`] for an unsupported field
    /// order, a fraction outside `[0, 1]`, or invalid base parameters.
    pub fn gift_example(
        num_pieces: usize,
        field_order: u64,
        lambda_total: f64,
        gift_fraction: f64,
        seed_rate: f64,
        contact_rate: f64,
        gamma: f64,
    ) -> Result<Self, SwarmError> {
        if !(0.0..=1.0).contains(&gift_fraction) {
            return Err(SwarmError::InvalidParameter(format!(
                "gift fraction f = {gift_fraction} must lie in [0, 1]"
            )));
        }
        let field = GaloisField::new(field_order)
            .map_err(|e| SwarmError::InvalidParameter(format!("field order: {e}")))?;
        let mut builder = SwarmParams::builder(num_pieces)
            .seed_rate(seed_rate)
            .contact_rate(contact_rate)
            .fresh_arrivals(lambda_total);
        if gamma.is_finite() {
            builder = builder.seed_departure_rate(gamma);
        }
        let base = builder.build()?;
        let gifted = lambda_total * gift_fraction;
        let blank = lambda_total - gifted;
        let mut gift_dimensions = Vec::new();
        if blank > 0.0 {
            gift_dimensions.push((0, blank));
        }
        if gifted > 0.0 {
            gift_dimensions.push((1, gifted));
        }
        Ok(CodedParams {
            base,
            field,
            gift_dimensions,
        })
    }

    /// Total arrival rate of the coded system.
    #[must_use]
    pub fn total_arrival_rate(&self) -> f64 {
        self.gift_dimensions.iter().map(|(_, r)| r).sum()
    }

    /// Fraction of arrivals carrying at least one coded piece.
    #[must_use]
    pub fn gift_fraction(&self) -> f64 {
        let total = self.total_arrival_rate();
        if total == 0.0 {
            return 0.0;
        }
        self.gift_dimensions
            .iter()
            .filter(|(d, _)| *d > 0)
            .map(|(_, r)| r)
            .sum::<f64>()
            / total
    }

    /// The coded arrival mix without the base parameters — what the
    /// replication engine attaches to an agent scenario to run it on the
    /// [`crate::sim::KernelKind::Coded`] kernel.
    #[must_use]
    pub fn gifts(&self) -> CodedGifts {
        CodedGifts {
            field: self.field,
            gift_dimensions: self.gift_dimensions.clone(),
        }
    }
}

/// The coded arrival mix of [`CodedParams`], detached from the base
/// [`SwarmParams`]: the field `GF(q)` and the `(dimension, rate)` arrival
/// classes. [`CodedGifts::with_base`] re-attaches a base to recover a full
/// [`CodedParams`]; the replication engine stores gifts next to the base
/// parameters it already carries.
#[derive(Debug, Clone, PartialEq)]
pub struct CodedGifts {
    /// The finite field `GF(q)` used for coding.
    pub field: GaloisField,
    /// Arrival mix: `(d, rate)` pairs as in [`CodedParams::gift_dimensions`].
    pub gift_dimensions: Vec<(usize, f64)>,
}

impl CodedGifts {
    /// Recombines the gifts with base parameters into a full
    /// [`CodedParams`].
    #[must_use]
    pub fn with_base(&self, base: SwarmParams) -> CodedParams {
        CodedParams {
            base,
            field: self.field,
            gift_dimensions: self.gift_dimensions.clone(),
        }
    }

    /// Validates the gifts against a base parameter set: at least one
    /// arrival class, every dimension within `0..=K`, finite non-negative
    /// rates, and a total arrival rate matching the base's (the shared
    /// driver loop draws arrival events from the *base* rate, so a mismatch
    /// would silently distort the coded dynamics).
    ///
    /// # Errors
    ///
    /// Returns [`SwarmError::InvalidParameter`] naming the first violation.
    pub fn validate_for(&self, base: &SwarmParams) -> Result<(), SwarmError> {
        if self.gift_dimensions.is_empty() {
            return Err(SwarmError::InvalidParameter(
                "coded arrivals need at least one (dimension, rate) class".into(),
            ));
        }
        let k = base.num_pieces();
        let mut total = 0.0;
        for &(d, rate) in &self.gift_dimensions {
            if d > k {
                return Err(SwarmError::InvalidParameter(format!(
                    "gift dimension {d} exceeds the file dimension K = {k}"
                )));
            }
            if d == k && rate > 0.0 && base.departs_immediately() {
                return Err(SwarmError::InvalidParameter(format!(
                    "gift dimension {d} = K with γ = ∞ would inject \
                     instantly-complete peers that never depart (the paper's \
                     λ_F = 0 convention)"
                )));
            }
            if !(rate.is_finite() && rate >= 0.0) {
                return Err(SwarmError::InvalidParameter(format!(
                    "gift rate {rate} for dimension {d} must be finite and non-negative"
                )));
            }
            total += rate;
        }
        let base_total = base.total_arrival_rate();
        if (total - base_total).abs() > 1e-9 * base_total.max(1.0) {
            return Err(SwarmError::InvalidParameter(format!(
                "coded arrival rate {total} does not match the base arrival rate {base_total}"
            )));
        }
        if total <= 0.0 {
            return Err(SwarmError::InvalidParameter(
                "coded arrival rates must sum to a positive total".into(),
            ));
        }
        Ok(())
    }
}

/// The thresholds on the gifted fraction `f` quoted after Theorem 15 for the
/// arrival model of [`CodedParams::gift_example`] with `U_s = 0`, `γ = ∞`:
/// the Markov process is transient if `f < q/((q−1)K)` and positive recurrent
/// if `f > q²/((q−1)²K)`.
///
/// Returns `(transient_below, recurrent_above)`.
///
/// # Panics
///
/// Panics if `q < 2` or `num_pieces == 0`.
#[must_use]
pub fn theorem15_gift_thresholds(field_order: u64, num_pieces: usize) -> (f64, f64) {
    assert!(field_order >= 2, "a field needs at least two elements");
    assert!(num_pieces >= 1, "a file needs at least one piece");
    let q = field_order as f64;
    let k = num_pieces as f64;
    (q / ((q - 1.0) * k), q * q / ((q - 1.0) * (q - 1.0) * k))
}

/// The uncoded comparison highlighted by the paper: without network coding,
/// a fraction `f` of peers arriving with one uniformly random *data* piece
/// leaves the system transient for **any** `f < 1` (each individual piece is
/// gifted at rate only `f·λ/K`, so Theorem 1's condition fails for
/// sufficiently symmetric loads). Returns the Theorem 1 verdict for that
/// configuration so experiments can print the contrast.
#[must_use]
pub fn uncoded_gift_verdict(
    num_pieces: usize,
    lambda_total: f64,
    gift_fraction: f64,
) -> crate::StabilityVerdict {
    // The exact Theorem 1 machinery enumerates 2^K types; for file sizes
    // beyond the enumerable range the uncoded system is transient for any
    // f < 1 by the same argument (each individual data piece is gifted at
    // rate only f·λ/K), so report that directly.
    if pieceset::TypeSpace::new(num_pieces).is_err() {
        return crate::StabilityVerdict::Transient;
    }
    // Build the uncoded analogue: each data piece i is carried by arrivals at
    // rate f·λ/K; blank arrivals at rate (1−f)·λ; U_s = 0, γ = ∞.
    let mut builder = SwarmParams::builder(num_pieces).contact_rate(1.0);
    let blank = lambda_total * (1.0 - gift_fraction);
    if blank > 0.0 {
        builder = builder.fresh_arrivals(blank);
    }
    let per_piece = lambda_total * gift_fraction / num_pieces as f64;
    if per_piece > 0.0 {
        for i in 0..num_pieces {
            builder = builder.arrival(
                pieceset::PieceSet::singleton(pieceset::PieceId::new(i)),
                per_piece,
            );
        }
    }
    match builder.build() {
        Ok(params) => crate::stability::classify(&params).verdict,
        Err(_) => crate::StabilityVerdict::Transient,
    }
}

/// Verdict of the Theorem 15 analysis for a [`CodedParams`] instance using
/// the gifted-arrival model (`d ∈ {0, 1}`).
///
/// # Errors
///
/// Returns [`SwarmError::InvalidParameter`] if the arrival mix includes
/// dimensions other than 0 or 1 (the closed-form thresholds in the paper are
/// stated for that case).
pub fn theorem15_classify(params: &CodedParams) -> Result<crate::StabilityVerdict, SwarmError> {
    if params.gift_dimensions.iter().any(|(d, _)| *d > 1) {
        return Err(SwarmError::InvalidParameter(
            "theorem15_classify supports the paper's d ∈ {0, 1} arrival model".into(),
        ));
    }
    let base = &params.base;
    let q = f64::from(params.field.order());
    let k = base.num_pieces() as f64;
    let mu = base.contact_rate();
    let mu_tilde = (1.0 - 1.0 / q) * mu;
    let gamma = base.seed_departure_rate();
    let lambda_total = params.total_arrival_rate();
    let lambda_gift = lambda_total * params.gift_fraction();

    if gamma <= mu_tilde {
        // Positive recurrent iff pieces can enter (seed or gifted arrivals span F_q^K over time).
        return Ok(if base.seed_rate() > 0.0 || lambda_gift > 0.0 {
            crate::StabilityVerdict::PositiveRecurrent
        } else {
            crate::StabilityVerdict::Transient
        });
    }

    // Arrivals not contained in a (K−1)-dimensional subspace V⁻: a uniformly
    // random coded vector lies in V⁻ with probability 1/q, so the helpful
    // gifted rate is λ_gift (1 − 1/q) and each such arrival has dim 1.
    let helpful = lambda_gift * (1.0 - 1.0 / q);

    // Transience condition (Theorem 15(a)): λ_total > (U_s + helpful·(K − 1 + 1)) / (1 − µ/γ).
    let ratio_plain = if gamma.is_finite() { mu / gamma } else { 0.0 };
    let transient_rhs = (base.seed_rate() + helpful * k) / (1.0 - ratio_plain);

    // Positive recurrence condition (Theorem 15(b)):
    // λ_total < (U_s + helpful·(K − 1 + q/(q−1))) · (1 − 1/q)/(1 − µ̃/γ).
    let ratio_tilde = if gamma.is_finite() {
        mu_tilde / gamma
    } else {
        0.0
    };
    let recurrent_rhs = (base.seed_rate() + helpful * (k - 1.0 + q / (q - 1.0))) * (1.0 - 1.0 / q)
        / (1.0 - ratio_tilde);

    Ok(if lambda_total > transient_rhs {
        crate::StabilityVerdict::Transient
    } else if lambda_total < recurrent_rhs {
        crate::StabilityVerdict::PositiveRecurrent
    } else {
        crate::StabilityVerdict::Borderline
    })
}

/// Peer-level simulator of the network-coded swarm.
pub struct CodedSwarmSim {
    params: CodedParams,
    snapshot_interval: f64,
    max_events: u64,
}

/// One snapshot of the coded simulation.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CodedSnapshot {
    /// Simulated time.
    pub time: f64,
    /// Number of peers in the system.
    pub total_peers: u64,
    /// Number of peers whose subspace is full (can decode).
    pub decoders: u64,
    /// Mean subspace dimension across peers (0 for an empty system).
    pub mean_dimension: f64,
}

/// Result of a coded simulation run.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct CodedSimResult {
    /// Periodic snapshots.
    pub snapshots: Vec<CodedSnapshot>,
    /// Number of departures (successful decodes that left).
    pub departures: u64,
    /// Number of coded transfers that increased the receiver's dimension.
    pub useful_transfers: u64,
    /// Number of contacts that did not help (including zero coded pieces).
    pub useless_contacts: u64,
    /// Horizon reached.
    pub horizon: f64,
    /// Final per-peer dimension histogram: entry `d` counts the peers whose
    /// subspace dimension is `d` when the run ends (length `K + 1`). The
    /// differential tests compare it bin by bin against the coded event
    /// kernel's [`crate::metrics::SimResult::final_dimensions`].
    pub final_dimensions: Vec<u64>,
}

impl CodedSimResult {
    /// The peer-count sample path.
    #[must_use]
    pub fn peer_count_path(&self) -> markov::SamplePath {
        // simlint: allow(E001, "SimResult construction always records the t = 0 snapshot")
        let first = self.snapshots.first().expect("at least one snapshot");
        let mut path = markov::SamplePath::new(first.time, first.total_peers as f64);
        for s in &self.snapshots[1..] {
            path.record(s.time, s.total_peers as f64);
        }
        path.finish(self.horizon.max(first.time));
        path
    }
}

impl CodedSwarmSim {
    /// Creates a simulator with a snapshot interval of 10 time units.
    #[must_use]
    pub fn new(params: CodedParams) -> Self {
        CodedSwarmSim {
            params,
            snapshot_interval: 10.0,
            max_events: 20_000_000,
        }
    }

    /// Overrides the snapshot interval.
    #[must_use]
    pub fn snapshot_interval(mut self, dt: f64) -> Self {
        self.snapshot_interval = dt.max(1e-6);
        self
    }

    /// The coded parameters.
    #[must_use]
    pub fn params(&self) -> &CodedParams {
        &self.params
    }

    /// Runs the coded swarm from an empty system up to `horizon`.
    #[must_use]
    pub fn run<R: Rng + ?Sized>(&self, horizon: f64, rng: &mut R) -> CodedSimResult {
        let base = &self.params.base;
        let field = self.params.field;
        let k = base.num_pieces();
        let gamma_finite = !base.departs_immediately();
        let full_dim = k;

        let mut peers: Vec<(Subspace, f64)> = Vec::new(); // (subspace, arrival time)
        let mut time = 0.0;
        let mut snapshots = Vec::new();
        let mut next_snapshot = 0.0;
        let mut departures = 0u64;
        let mut useful_transfers = 0u64;
        let mut useless_contacts = 0u64;
        let mut events = 0u64;

        // One prefix-sum table for the whole run: each arrival's dimension
        // draw is a single uniform resolved by binary search instead of the
        // per-event linear walk `sample_weighted_index` does. The table maps
        // the same uniform draw to the same index as the linear walk, so
        // seeded trajectories are unchanged by this optimisation. A
        // degenerate zero-total (or empty) gift mix has no table — and no
        // arrival events to resolve with it.
        let arrival_weights: Vec<f64> = self
            .params
            .gift_dimensions
            .iter()
            .map(|(_, r)| *r)
            .collect();
        let arrival_sampler = CumulativeWeights::new(&arrival_weights);
        let arrival_rate: f64 = arrival_sampler
            .as_ref()
            .map_or(0.0, CumulativeWeights::total);

        let record = |time: f64,
                      peers: &Vec<(Subspace, f64)>,
                      snapshots: &mut Vec<CodedSnapshot>| {
            let n = peers.len() as u64;
            let decoders = peers.iter().filter(|(v, _)| v.is_full()).count() as u64;
            let mean_dimension = if peers.is_empty() {
                0.0
            } else {
                peers.iter().map(|(v, _)| v.dimension() as f64).sum::<f64>() / peers.len() as f64
            };
            snapshots.push(CodedSnapshot {
                time,
                total_peers: n,
                decoders,
                mean_dimension,
            });
        };
        record(0.0, &peers, &mut snapshots);
        next_snapshot += self.snapshot_interval;

        loop {
            if events >= self.max_events {
                break;
            }
            let n = peers.len();
            let seed_rate = if n > 0 { base.seed_rate() } else { 0.0 };
            let peer_rate = base.contact_rate() * n as f64;
            let seeds = if gamma_finite {
                peers.iter().filter(|(v, _)| v.is_full()).count()
            } else {
                0
            };
            let departure_rate = if gamma_finite {
                base.seed_departure_rate() * seeds as f64
            } else {
                0.0
            };
            let rates = [arrival_rate, seed_rate, peer_rate, departure_rate];
            let total: f64 = rates.iter().sum();
            if total <= 0.0 {
                break;
            }
            let dt = sample_exp(rng, total);
            let new_time = time + dt;
            while next_snapshot <= new_time.min(horizon) {
                record(next_snapshot, &peers, &mut snapshots);
                next_snapshot += self.snapshot_interval;
            }
            if new_time > horizon {
                time = horizon;
                break;
            }
            time = new_time;
            events += 1;

            // simlint: allow(E001, "total rate > 0 here: a zero-rate state takes the infinite-horizon break above")
            match sample_weighted_index(rng, &rates).expect("positive total rate") {
                0 => {
                    // Arrival with d random coded pieces (only reachable
                    // when the arrival rate — the table total — is positive).
                    // simlint: allow(E001, "this branch is sampled only when the arrival rate (the table total) is positive, so the sampler was built")
                    let sampler = arrival_sampler.as_ref().expect("arrival rate > 0");
                    let d = self.params.gift_dimensions[sampler.sample(rng)].0;
                    let mut space = Subspace::empty(field, full_dim);
                    for _ in 0..d {
                        let v = CodingVector::random(field, full_dim, rng);
                        let _ = space.insert(&v);
                    }
                    peers.push((space, time));
                }
                1 => {
                    // Fixed seed uploads a uniformly random coded piece of the full space.
                    if n == 0 {
                        continue;
                    }
                    let target = rng.gen_range(0..n);
                    let v = CodingVector::random(field, full_dim, rng);
                    if peers[target].0.is_useful(&v) {
                        let _ = peers[target].0.insert(&v);
                        useful_transfers += 1;
                        if peers[target].0.is_full() && !gamma_finite {
                            peers.swap_remove(target);
                            departures += 1;
                        }
                    } else {
                        useless_contacts += 1;
                    }
                }
                2 => {
                    // A random peer contacts a random peer and sends a random
                    // linear combination of its coded pieces.
                    if n == 0 {
                        continue;
                    }
                    let uploader = rng.gen_range(0..n);
                    let target = rng.gen_range(0..n);
                    if uploader == target {
                        useless_contacts += 1;
                        continue;
                    }
                    let v = peers[uploader].0.random_vector(rng);
                    if peers[target].0.is_useful(&v) {
                        let _ = peers[target].0.insert(&v);
                        useful_transfers += 1;
                        if peers[target].0.is_full() && !gamma_finite {
                            peers.swap_remove(target);
                            departures += 1;
                        }
                    } else {
                        useless_contacts += 1;
                    }
                }
                _ => {
                    // Peer-seed departure (finite γ).
                    let seed_indices: Vec<usize> =
                        (0..n).filter(|&i| peers[i].0.is_full()).collect();
                    if seed_indices.is_empty() {
                        continue;
                    }
                    let i = seed_indices[rng.gen_range(0..seed_indices.len())];
                    peers.swap_remove(i);
                    departures += 1;
                }
            }
        }

        record(time, &peers, &mut snapshots);
        let mut final_dimensions = vec![0u64; k + 1];
        for (space, _) in &peers {
            final_dimensions[space.dimension()] += 1;
        }
        CodedSimResult {
            snapshots,
            departures,
            useful_transfers,
            useless_contacts,
            horizon: time,
            final_dimensions,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn paper_example_thresholds_q64_k200() {
        let (lo, hi) = theorem15_gift_thresholds(64, 200);
        // The paper quotes 1.01/(4K) … it states transient if f ≤ 1.014/K/... :
        // numerically lo ≈ 0.00507... and hi ≈ 0.00516...
        assert!((lo - 0.0050794).abs() < 1e-4, "lo = {lo}");
        assert!((hi - 0.0051600).abs() < 1e-4, "hi = {hi}");
        assert!(lo < hi);
    }

    #[test]
    fn golden_gift_thresholds() {
        // Hand-computed pins for the two reference points of the test suite.
        // GF(2), K = 8: q/((q−1)K) = 2/8, q²/((q−1)²K) = 4/8 — exact binary
        // values, so equality is checked exactly.
        let (lo, hi) = theorem15_gift_thresholds(2, 8);
        assert_eq!(lo, 0.25);
        assert_eq!(hi, 0.5);
        // GF(256), K = 32: 256/(255·32) = 8/255 and 256²/(255²·32) = 2048/65025.
        let (lo, hi) = theorem15_gift_thresholds(256, 32);
        assert!((lo - 8.0 / 255.0).abs() < 1e-15, "lo = {lo}");
        assert!((hi - 2048.0 / 65025.0).abs() < 1e-15, "hi = {hi}");
        assert!((lo - 0.031_372_549_019_607_84).abs() < 1e-12);
        assert!((hi - 0.031_495_578_623_606_31).abs() < 1e-12);
        // Large fields pay almost nothing over the uncoded bound 1/K.
        assert!(lo > 1.0 / 32.0 && hi < 1.008 / 32.0);
    }

    #[test]
    fn gifts_round_trip_and_validate() {
        let p = CodedParams::gift_example(4, 8, 2.0, 0.25, 0.0, 1.0, f64::INFINITY).unwrap();
        let gifts = p.gifts();
        assert_eq!(gifts.with_base(p.base.clone()), p);
        assert!(gifts.validate_for(&p.base).is_ok());
        // A dimension beyond K is rejected.
        let mut bad = gifts.clone();
        bad.gift_dimensions.push((9, 0.0));
        assert!(bad.validate_for(&p.base).is_err());
        // A rate total that disagrees with the base arrival rate is rejected.
        let mut bad = gifts.clone();
        bad.gift_dimensions[0].1 += 0.5;
        assert!(bad.validate_for(&p.base).is_err());
        // An empty mix is rejected.
        let bad = CodedGifts {
            field: gifts.field,
            gift_dimensions: Vec::new(),
        };
        assert!(bad.validate_for(&p.base).is_err());
    }

    #[test]
    fn thresholds_shrink_with_larger_fields() {
        let (lo8, hi8) = theorem15_gift_thresholds(8, 50);
        let (lo64, hi64) = theorem15_gift_thresholds(64, 50);
        assert!(lo64 < lo8);
        assert!(hi64 < hi8);
        // and the gap closes as q grows
        assert!(hi64 - lo64 < hi8 - lo8);
    }

    #[test]
    fn gift_example_construction_and_fraction() {
        let p = CodedParams::gift_example(4, 8, 2.0, 0.25, 0.0, 1.0, f64::INFINITY).unwrap();
        assert!((p.total_arrival_rate() - 2.0).abs() < 1e-12);
        assert!((p.gift_fraction() - 0.25).abs() < 1e-12);
        assert!(CodedParams::gift_example(4, 8, 2.0, 1.5, 0.0, 1.0, f64::INFINITY).is_err());
        assert!(CodedParams::gift_example(4, 9, 2.0, 0.5, 0.0, 1.0, f64::INFINITY).is_err());
    }

    #[test]
    fn theorem15_classify_matches_thresholds() {
        let (lo, hi) = theorem15_gift_thresholds(8, 4);
        // Well below the transience threshold.
        let p = CodedParams::gift_example(4, 8, 1.0, lo * 0.5, 0.0, 1.0, f64::INFINITY).unwrap();
        assert_eq!(
            theorem15_classify(&p).unwrap(),
            crate::StabilityVerdict::Transient
        );
        // Well above the recurrence threshold.
        let p = CodedParams::gift_example(4, 8, 1.0, (hi * 2.0).min(1.0), 0.0, 1.0, f64::INFINITY)
            .unwrap();
        assert_eq!(
            theorem15_classify(&p).unwrap(),
            crate::StabilityVerdict::PositiveRecurrent
        );
        // In the gap: borderline.
        let p =
            CodedParams::gift_example(4, 8, 1.0, (lo + hi) / 2.0, 0.0, 1.0, f64::INFINITY).unwrap();
        assert_eq!(
            theorem15_classify(&p).unwrap(),
            crate::StabilityVerdict::Borderline
        );
    }

    #[test]
    fn theorem15_classify_slow_departure_regime() {
        // γ small relative to µ̃: stable as soon as coded pieces can enter.
        let p = CodedParams::gift_example(4, 8, 5.0, 0.1, 0.0, 1.0, 0.5).unwrap();
        assert_eq!(
            theorem15_classify(&p).unwrap(),
            crate::StabilityVerdict::PositiveRecurrent
        );
        // ... but transient if nothing can ever enter (no seed, no gifts).
        let p = CodedParams::gift_example(4, 8, 5.0, 0.0, 0.0, 1.0, 0.5).unwrap();
        assert_eq!(
            theorem15_classify(&p).unwrap(),
            crate::StabilityVerdict::Transient
        );
    }

    #[test]
    fn uncoded_gift_comparison_is_transient() {
        // Without coding, a 30% gifted fraction is still transient (K = 4).
        assert_eq!(
            uncoded_gift_verdict(4, 1.0, 0.3),
            crate::StabilityVerdict::Transient
        );
        // With every peer arriving with a piece the uncoded symmetric system
        // is the borderline case of Section VIII-D.
        assert_eq!(
            uncoded_gift_verdict(4, 1.0, 1.0),
            crate::StabilityVerdict::Borderline
        );
    }

    #[test]
    fn coded_simulation_stable_case_keeps_population_bounded() {
        // Small system, generous gifts: stable per Theorem 15.
        let (_, hi) = theorem15_gift_thresholds(8, 3);
        let params =
            CodedParams::gift_example(3, 8, 1.0, (3.0 * hi).min(1.0), 0.0, 1.0, f64::INFINITY)
                .unwrap();
        assert_eq!(
            theorem15_classify(&params).unwrap(),
            crate::StabilityVerdict::PositiveRecurrent
        );
        let sim = CodedSwarmSim::new(params).snapshot_interval(5.0);
        let mut rng = StdRng::seed_from_u64(11);
        let result = sim.run(1_500.0, &mut rng);
        let classifier = markov::PathClassifier::new(1.0, 40.0);
        assert_eq!(
            classifier.classify(&result.peer_count_path()).class,
            markov::PathClass::Stable
        );
        assert!(result.departures > 100);
    }

    #[test]
    fn coded_simulation_starved_case_grows() {
        // No gifts, no seed: nothing ever becomes decodable, peers pile up.
        let params = CodedParams::gift_example(3, 8, 1.0, 0.0, 0.0, 1.0, f64::INFINITY).unwrap();
        let sim = CodedSwarmSim::new(params).snapshot_interval(5.0);
        let mut rng = StdRng::seed_from_u64(12);
        let result = sim.run(800.0, &mut rng);
        let trend = result.peer_count_path().trend(0.5);
        assert!(trend.slope > 0.5, "slope {}", trend.slope);
        assert_eq!(result.departures, 0);
    }

    #[test]
    fn zero_rate_gift_mix_runs_without_arrivals() {
        // CodedParams fields are public, so a directly-constructed params
        // value may carry a zero-total (or empty) gift mix; the simulator
        // must run it as an arrival-free swarm, not panic building the
        // arrival table.
        let base = SwarmParams::builder(3)
            .seed_rate(1.0)
            .contact_rate(1.0)
            .fresh_arrivals(1.0)
            .seed_departure_rate(2.0)
            .build()
            .unwrap();
        for gift_dimensions in [vec![(1usize, 0.0f64)], Vec::new()] {
            let params = CodedParams {
                base: base.clone(),
                field: GaloisField::new(8).unwrap(),
                gift_dimensions,
            };
            let sim = CodedSwarmSim::new(params).snapshot_interval(5.0);
            let mut rng = StdRng::seed_from_u64(21);
            let result = sim.run(50.0, &mut rng);
            assert_eq!(
                result.snapshots.last().unwrap().total_peers,
                0,
                "no arrivals ever fire"
            );
        }
    }

    #[test]
    fn snapshots_track_mean_dimension() {
        let params = CodedParams::gift_example(3, 8, 1.0, 0.5, 0.5, 1.0, 2.0).unwrap();
        let sim = CodedSwarmSim::new(params).snapshot_interval(10.0);
        let mut rng = StdRng::seed_from_u64(13);
        let result = sim.run(300.0, &mut rng);
        for s in &result.snapshots {
            assert!(s.mean_dimension >= 0.0 && s.mean_dimension <= 3.0 + 1e-9);
            assert!(s.decoders <= s.total_peers);
        }
        assert!(result.useful_transfers > 0);
    }
}
