//! The Lyapunov function of the positive-recurrence proof (Section VII).
//!
//! The proof of Theorem 1(b) uses the function (eq. (11))
//!
//! `W(x) = Σ_C r^{|C|} T_C(x)`,  `T_C = ½ E_C² + α E_C φ(H_C)` for `C ≠ F`
//! and `T_F = ½ n²`, where `E_C` counts peers that are or can become type-`C`
//! peers, `H_C` measures the stored "helping potential" of peers that can
//! help type-`C` peers, and `φ` is a clipped-linear potential with parameters
//! `d` and `β`.
//!
//! This module evaluates `W` and its drift numerically, so experiments can
//! verify `QW(x) ≤ −ξ n` on sampled large-`n` states inside the stability
//! region (experiment E11).

use crate::{SwarmError, SwarmModel, SwarmParams, SwarmState};
use pieceset::PieceSet;
use serde::{Deserialize, Serialize};

/// Parameters `(r, d, β, α)` of the Lyapunov function.
///
/// The proof only requires `r` and `β` small enough, `d` large enough and `α`
/// close to one; [`LyapunovParams::recommended`] picks values that work well
/// numerically for small `K`.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct LyapunovParams {
    /// Geometric weight `r ∈ (0, ½)` applied per piece held.
    pub r: f64,
    /// Potential threshold `d > 1`.
    pub d: f64,
    /// Quadratic-smoothing parameter `β ∈ (0, ½)`.
    pub beta: f64,
    /// Mixing weight `α ∈ (½, 1)`.
    pub alpha: f64,
}

impl LyapunovParams {
    /// A numerically reasonable choice satisfying the constraints of
    /// Lemma 10/12 for the given model parameters.
    ///
    /// # Errors
    ///
    /// Returns [`SwarmError::WrongRegime`] when `γ ≤ µ` (the Section VII.A
    /// function applies to the `µ < γ` case).
    pub fn recommended(params: &SwarmParams) -> Result<Self, SwarmError> {
        let ratio = params.mu_over_gamma();
        if ratio >= 1.0 {
            return Err(SwarmError::WrongRegime(
                "the Lyapunov function of Sec. VII.A requires µ < γ".into(),
            ));
        }
        let k = params.num_pieces() as f64;
        let alpha = 0.9;
        // β ((K + µ/γ)/(1 − µ/γ))² ≤ 1/α − 1 with some margin.
        let jump = (k + ratio) / (1.0 - ratio);
        let beta = (0.5 * (1.0 / alpha - 1.0) / (jump * jump)).min(0.45);
        // d > (1 + µ/γ)/(1 − µ/γ) and > K + µ/γ … with margin.
        let d = 4.0 * ((1.0 + ratio) / (1.0 - ratio)).max(k + 1.0);
        let r = 0.1_f64.min(0.4);
        Ok(LyapunovParams { r, d, beta, alpha })
    }

    /// The clipped potential `φ` of the paper, with this parameter set.
    #[must_use]
    pub fn phi(&self, x: f64) -> f64 {
        let two_d = 2.0 * self.d;
        if x <= two_d {
            two_d + 0.5 / self.beta - x
        } else if x <= two_d + 1.0 / self.beta {
            0.5 * self.beta * (x - two_d - 1.0 / self.beta).powi(2)
        } else {
            0.0
        }
    }
}

/// The Lyapunov function `W` for a model, ready to evaluate on states.
#[derive(Debug, Clone)]
pub struct LyapunovFunction {
    params: SwarmParams,
    lyap: LyapunovParams,
}

impl LyapunovFunction {
    /// Builds the function with recommended parameters.
    ///
    /// # Errors
    ///
    /// See [`LyapunovParams::recommended`].
    pub fn new(params: &SwarmParams) -> Result<Self, SwarmError> {
        Ok(Self::with_params(
            params,
            LyapunovParams::recommended(params)?,
        ))
    }

    /// Builds the function with explicit Lyapunov parameters.
    #[must_use]
    pub fn with_params(params: &SwarmParams, lyap: LyapunovParams) -> Self {
        LyapunovFunction {
            params: params.clone(),
            lyap,
        }
    }

    /// The Lyapunov parameters in use.
    #[must_use]
    pub fn lyapunov_params(&self) -> LyapunovParams {
        self.lyap
    }

    /// `E_C(x) = Σ_{C' ⊆ C} x_{C'}` — peers that are or can become type `C`.
    #[must_use]
    pub fn e(&self, state: &SwarmState, c: PieceSet) -> f64 {
        state.count_subsets_of(c) as f64
    }

    /// `H_C(x) = (1 − µ/γ)^{-1} Σ_{C' ⊄ C} (K − |C'| + µ/γ) x_{C'}` — the
    /// helping potential stored in peers that can help type-`C` peers.
    #[must_use]
    pub fn h(&self, state: &SwarmState, c: PieceSet) -> f64 {
        let ratio = self.params.mu_over_gamma();
        let k = self.params.num_pieces() as f64;
        let sum: f64 = state
            .occupied_types()
            .filter(|(t, _)| !t.is_subset_of(c))
            .map(|(t, n)| (k - t.len() as f64 + ratio) * f64::from(n))
            .sum();
        sum / (1.0 - ratio)
    }

    /// The per-type term `T_C` of eq. (11).
    #[must_use]
    pub fn term(&self, state: &SwarmState, c: PieceSet) -> f64 {
        let full = self.params.full_type();
        if c == full {
            let n = state.total_peers() as f64;
            0.5 * n * n
        } else {
            let e = self.e(state, c);
            0.5 * e * e + self.lyap.alpha * e * self.lyap.phi(self.h(state, c))
        }
    }

    /// The full Lyapunov function `W(x)`.
    #[must_use]
    pub fn value(&self, state: &SwarmState) -> f64 {
        let space = self.params.type_space();
        let full = self.params.full_type();
        let skip_full = self.params.departs_immediately();
        space
            .iter()
            .filter(|&c| !(skip_full && c == full))
            .map(|c| self.lyap.r.powi(c.len() as i32) * self.term(state, c))
            .sum()
    }

    /// The drift `QW(x)` under the model's generator, computed numerically.
    #[must_use]
    pub fn drift(&self, model: &SwarmModel, state: &SwarmState) -> f64 {
        markov::drift::drift(model, state, |s| self.value(s))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pieceset::{PieceId, TypeSpace};

    fn set(indices: &[usize]) -> PieceSet {
        indices.iter().map(|&i| PieceId::new(i)).collect()
    }

    fn stable_params() -> SwarmParams {
        // Example-1-like, well inside the stability region.
        SwarmParams::builder(2)
            .seed_rate(2.0)
            .contact_rate(1.0)
            .seed_departure_rate(2.0)
            .fresh_arrivals(1.0)
            .build()
            .unwrap()
    }

    fn unstable_params() -> SwarmParams {
        SwarmParams::builder(2)
            .seed_rate(0.1)
            .contact_rate(1.0)
            .seed_departure_rate(4.0)
            .fresh_arrivals(5.0)
            .build()
            .unwrap()
    }

    #[test]
    fn recommended_parameters_satisfy_constraints() {
        let p = stable_params();
        let l = LyapunovParams::recommended(&p).unwrap();
        assert!(l.r > 0.0 && l.r < 0.5);
        assert!(l.beta > 0.0 && l.beta < 0.5);
        assert!(l.alpha > 0.5 && l.alpha < 1.0);
        let ratio = p.mu_over_gamma();
        assert!(l.d > (1.0 + ratio) / (1.0 - ratio));
        let jump = (p.num_pieces() as f64 + ratio) / (1.0 - ratio);
        assert!(l.beta * jump * jump <= 1.0 / l.alpha - 1.0 + 1e-12);
        // wrong regime rejected
        let slow = SwarmParams::builder(2)
            .contact_rate(1.0)
            .seed_departure_rate(0.5)
            .fresh_arrivals(1.0)
            .build()
            .unwrap();
        assert!(LyapunovParams::recommended(&slow).is_err());
    }

    #[test]
    fn phi_shape() {
        let l = LyapunovParams {
            r: 0.1,
            d: 5.0,
            beta: 0.1,
            alpha: 0.9,
        };
        // slope -1 region
        assert!((l.phi(0.0) - (10.0 + 5.0)).abs() < 1e-12);
        assert!((l.phi(1.0) - l.phi(0.0) + 1.0).abs() < 1e-12);
        // vanishes beyond 2d + 1/β = 20
        assert_eq!(l.phi(20.0), 0.0);
        assert_eq!(l.phi(100.0), 0.0);
        // continuous at the knots
        let eps = 1e-9;
        assert!((l.phi(10.0 - eps) - l.phi(10.0 + eps)).abs() < 1e-6);
        assert!((l.phi(20.0 - eps) - l.phi(20.0 + eps)).abs() < 1e-6);
        // non-negative and non-increasing
        let mut prev = f64::INFINITY;
        for i in 0..200 {
            let v = l.phi(i as f64 * 0.2);
            assert!(v >= 0.0);
            assert!(v <= prev + 1e-12);
            prev = v;
        }
    }

    #[test]
    fn e_and_h_match_hand_computation() {
        let p = stable_params(); // K = 2, µ/γ = 0.5
        let f = LyapunovFunction::new(&p).unwrap();
        let space = TypeSpace::new(2).unwrap();
        let mut x = SwarmState::empty(&space);
        x.set_count(PieceSet::empty(), 3);
        x.set_count(set(&[0]), 2);
        x.set_count(set(&[0, 1]), 1);
        // E_{{1}} = x_∅ + x_{1} = 5
        assert_eq!(f.e(&x, set(&[0])), 5.0);
        // H_{{1}} = (1/(1-0.5)) * [ (K - |{1,2}| + 0.5) x_F ] = 2 * 0.5 * 1 = 1
        assert!((f.h(&x, set(&[0])) - 1.0).abs() < 1e-12);
        // H_∅ counts everyone with at least one piece.
        let expected = ((2.0 - 1.0 + 0.5) * 2.0 + (2.0 - 2.0 + 0.5) * 1.0) / 0.5;
        assert!((f.h(&x, PieceSet::empty()) - expected).abs() < 1e-12);
        // E_F = n
        assert_eq!(f.e(&x, set(&[0, 1])), 6.0);
    }

    #[test]
    fn value_is_nonnegative_and_grows_with_population() {
        let p = stable_params();
        let f = LyapunovFunction::new(&p).unwrap();
        let space = TypeSpace::new(2).unwrap();
        let small = SwarmState::uniform(&space, PieceSet::empty(), 5);
        let large = SwarmState::uniform(&space, PieceSet::empty(), 50);
        assert!(f.value(&SwarmState::empty(&space)) >= 0.0);
        assert!(f.value(&small) > 0.0);
        assert!(f.value(&large) > f.value(&small));
    }

    #[test]
    fn drift_negative_on_large_one_club_inside_stability_region() {
        let p = stable_params();
        assert!(crate::stability::classify(&p).verdict.is_stable());
        let model = SwarmModel::new(p.clone());
        let f = LyapunovFunction::new(&p).unwrap();
        // Large one-club states (the binding heavy-load configuration).
        for n in [200u32, 400, 800] {
            let x = model.one_club_state(PieceId::new(0), n);
            let d = f.drift(&model, &x);
            assert!(d < 0.0, "drift {d} should be negative at one-club size {n}");
        }
    }

    #[test]
    fn drift_positive_on_large_one_club_outside_stability_region() {
        let p = unstable_params();
        assert_eq!(
            crate::stability::classify(&p).verdict,
            crate::StabilityVerdict::Transient
        );
        let model = SwarmModel::new(p.clone());
        let f = LyapunovFunction::new(&p).unwrap();
        let x = model.one_club_state(PieceId::new(0), 500);
        let d = f.drift(&model, &x);
        assert!(
            d > 0.0,
            "drift {d} should be positive for a transient configuration"
        );
    }

    #[test]
    fn drift_negative_on_large_seed_population() {
        // A huge pile of peer seeds must always drain (infinite-server shape).
        let p = stable_params();
        let model = SwarmModel::new(p.clone());
        let f = LyapunovFunction::new(&p).unwrap();
        let space = TypeSpace::new(2).unwrap();
        let x = SwarmState::uniform(&space, set(&[0, 1]), 500);
        assert!(f.drift(&model, &x) < 0.0);
    }

    #[test]
    fn gamma_infinite_variant_skips_full_type_term() {
        let p = SwarmParams::builder(2)
            .seed_rate(5.0)
            .contact_rate(1.0)
            .fresh_arrivals(1.0)
            .build()
            .unwrap();
        let f = LyapunovFunction::new(&p).unwrap();
        let space = TypeSpace::new(2).unwrap();
        // A state can never hold type-F peers when γ = ∞, but the function
        // must still be finite and well defined on any state vector.
        let x = SwarmState::uniform(&space, set(&[0]), 10);
        assert!(f.value(&x).is_finite());
        assert!(f.value(&x) > 0.0);
    }
}
