//! Error type for the swarm model.

use pieceset::PieceSetError;

/// Errors produced when building or analysing a swarm model.
#[derive(Debug, Clone, PartialEq)]
pub enum SwarmError {
    /// A parameter was outside its valid range.
    InvalidParameter(String),
    /// Problem with a piece set or the number of pieces.
    Pieces(PieceSetError),
    /// The requested analysis needs `0 < µ < γ` but the parameters have
    /// `γ ≤ µ` (or vice versa).
    WrongRegime(String),
    /// An underlying numeric routine failed.
    Numeric(String),
}

impl core::fmt::Display for SwarmError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            SwarmError::InvalidParameter(msg) => write!(f, "invalid parameter: {msg}"),
            SwarmError::Pieces(e) => write!(f, "piece-set error: {e}"),
            SwarmError::WrongRegime(msg) => write!(f, "wrong parameter regime: {msg}"),
            SwarmError::Numeric(msg) => write!(f, "numeric failure: {msg}"),
        }
    }
}

impl std::error::Error for SwarmError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            SwarmError::Pieces(e) => Some(e),
            _ => None,
        }
    }
}

impl From<PieceSetError> for SwarmError {
    fn from(e: PieceSetError) -> Self {
        SwarmError::Pieces(e)
    }
}

impl From<markov::MarkovError> for SwarmError {
    fn from(e: markov::MarkovError) -> Self {
        SwarmError::Numeric(e.to_string())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_variants() {
        let e = SwarmError::InvalidParameter("mu must be positive".into());
        assert!(e.to_string().contains("mu must be positive"));
        let e: SwarmError = PieceSetError::ZeroPieces.into();
        assert!(e.to_string().contains("piece-set error"));
        let e: SwarmError = markov::MarkovError::SingularMatrix.into();
        assert!(e.to_string().contains("singular"));
    }

    #[test]
    fn source_is_exposed_for_piece_errors() {
        use std::error::Error;
        let e: SwarmError = PieceSetError::ZeroPieces.into();
        assert!(e.source().is_some());
        let e = SwarmError::WrongRegime("x".into());
        assert!(e.source().is_none());
    }
}
