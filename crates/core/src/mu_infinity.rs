//! The `µ = ∞` watched process of the borderline analysis
//! (Section VIII-D, Figure 3).
//!
//! For the symmetric flat network (no fixed seed, `γ = ∞`, arrivals carry one
//! uniformly random piece at rate `λ` each), the process watched on its
//! *slow* states (all peers share the same type) in the limit `µ → ∞` lives
//! on the reduced state space `{(0,0)} ∪ {(n,k) : n ≥ 1, 1 ≤ k ≤ K−1}`,
//! where `(n, k)` means `n` peers all holding the same `k` pieces.
//!
//! The paper shows the top layer `(·, K−1)` evolves as a zero-drift random
//! walk (the coin-flip variable `Z` has mean `K−1`), hence the process is
//! null recurrent — the borderline case Theorem 1 leaves open.

use crate::SwarmError;
use markov::Ctmc;
use serde::{Deserialize, Serialize};

/// A state of the watched process: `Empty` is `(0,0)`; `Uniform { peers, pieces }`
/// means `peers ≥ 1` peers all hold the same `pieces` (with `1 ≤ pieces ≤ K−1`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum MuInfinityState {
    /// No peers in the system.
    Empty,
    /// `peers` peers all holding the same set of `pieces` pieces.
    Uniform {
        /// Number of peers, `n ≥ 1`.
        peers: u64,
        /// Number of pieces each of them holds, `1 ≤ pieces ≤ K−1`.
        pieces: usize,
    },
}

/// The `µ = ∞` watched process for a `K`-piece symmetric flat network with
/// per-piece arrival rate `λ`.
#[derive(Debug, Clone, PartialEq)]
pub struct MuInfinityProcess {
    num_pieces: usize,
    lambda: f64,
}

impl MuInfinityProcess {
    /// Creates the process.
    ///
    /// # Errors
    ///
    /// Returns [`SwarmError::InvalidParameter`] unless `K ≥ 2` and `λ > 0`
    /// (with `K = 1` there is no piece exchange to model).
    pub fn new(num_pieces: usize, lambda: f64) -> Result<Self, SwarmError> {
        if num_pieces < 2 {
            return Err(SwarmError::InvalidParameter(
                "the µ = ∞ process needs K ≥ 2".into(),
            ));
        }
        if !(lambda.is_finite() && lambda > 0.0) {
            return Err(SwarmError::InvalidParameter(format!(
                "λ = {lambda} must be finite and positive"
            )));
        }
        Ok(MuInfinityProcess { num_pieces, lambda })
    }

    /// Number of pieces `K`.
    #[must_use]
    pub fn num_pieces(&self) -> usize {
        self.num_pieces
    }

    /// Per-piece arrival rate `λ`.
    #[must_use]
    pub fn lambda(&self) -> f64 {
        self.lambda
    }

    /// Probability that the coin-flip variable `Z` (heads before the
    /// `(K−1)`-th tail of a fair coin) equals `z`:
    /// `P(Z = z) = C(z + K − 2, z) 2^{−(z + K − 1)}`.
    #[must_use]
    pub fn z_pmf(&self, z: u64) -> f64 {
        let k = self.num_pieces as u64;
        binomial(z + k - 2, z) * 0.5_f64.powi((z + k - 1) as i32)
    }

    /// `E[Z] = K − 1`: the top layer has zero drift, the source of null
    /// recurrence.
    #[must_use]
    pub fn z_mean(&self) -> f64 {
        (self.num_pieces - 1) as f64
    }

    /// Probability that the missing-piece arrival empties the old population
    /// of `n` peers before completing, ending with the new peer alone holding
    /// `1 + t` pieces (it downloaded `t ≤ K−2` pieces): the probability of
    /// observing `n` heads before the `(K−1)`-th tail with exactly `t` tails
    /// first, `C(n−1+t, t) 2^{−(n+t)}`.
    #[must_use]
    pub fn takeover_pmf(&self, n: u64, t: usize) -> f64 {
        if t > self.num_pieces - 2 {
            return 0.0;
        }
        binomial(n - 1 + t as u64, t as u64) * 0.5_f64.powi((n + t as u64) as i32)
    }
}

/// Binomial coefficient as `f64` (adequate for the modest arguments used by
/// the jump distribution).
fn binomial(n: u64, k: u64) -> f64 {
    if k > n {
        return 0.0;
    }
    let k = k.min(n - k);
    let mut acc = 1.0_f64;
    for i in 0..k {
        acc = acc * (n - i) as f64 / (i + 1) as f64;
    }
    acc
}

/// Cap on the enumerated support of `Z` in the generator; the tail beyond the
/// cap is folded into the largest jump so row sums stay exact.
const MAX_Z_SUPPORT: u64 = 512;

impl Ctmc for MuInfinityProcess {
    type State = MuInfinityState;

    fn transitions(&self, state: &MuInfinityState, out: &mut Vec<(MuInfinityState, f64)>) {
        let k = self.num_pieces;
        let lambda = self.lambda;
        match *state {
            MuInfinityState::Empty => {
                // Any arrival leaves a single peer holding its one piece.
                out.push((
                    MuInfinityState::Uniform {
                        peers: 1,
                        pieces: 1,
                    },
                    k as f64 * lambda,
                ));
            }
            MuInfinityState::Uniform { peers: n, pieces } if pieces < k - 1 => {
                // Arrival with a piece the group already has: the newcomer
                // instantly downloads everything the group holds.
                out.push((
                    MuInfinityState::Uniform {
                        peers: n + 1,
                        pieces,
                    },
                    pieces as f64 * lambda,
                ));
                // Arrival with a new piece: after the fast exchange everyone
                // holds `pieces + 1` pieces (nobody can complete yet).
                out.push((
                    MuInfinityState::Uniform {
                        peers: n + 1,
                        pieces: pieces + 1,
                    },
                    (k - pieces) as f64 * lambda,
                ));
            }
            MuInfinityState::Uniform { peers: n, pieces } => {
                debug_assert_eq!(pieces, k - 1);
                // Arrival holding a piece the one club already has.
                out.push((
                    MuInfinityState::Uniform {
                        peers: n + 1,
                        pieces,
                    },
                    (k - 1) as f64 * lambda,
                ));
                // Arrival holding the missing piece: resolve the coin-flip
                // exchange. Departing old peers: Z ≤ n−1 → (n − Z, K−1).
                let mut remaining = 1.0;
                for z in 0..n.min(MAX_Z_SUPPORT) {
                    let p = self.z_pmf(z);
                    remaining -= p;
                    out.push((
                        MuInfinityState::Uniform {
                            peers: n - z,
                            pieces,
                        },
                        lambda * p,
                    ));
                }
                // Z ≥ n (or beyond the enumeration cap): the old population is
                // wiped out and the newcomer remains alone with 1 + t pieces.
                if remaining > 1e-15 {
                    let mut takeover_total = 0.0;
                    let mut takeover = Vec::with_capacity(k - 1);
                    for t in 0..=(k - 2) {
                        let p = self.takeover_pmf(n, t);
                        takeover_total += p;
                        takeover.push(p);
                    }
                    if takeover_total > 0.0 {
                        for (t, p) in takeover.into_iter().enumerate() {
                            // Normalise within the takeover block so the total
                            // transition rate is exactly λ · remaining.
                            out.push((
                                MuInfinityState::Uniform {
                                    peers: 1,
                                    pieces: 1 + t,
                                },
                                lambda * remaining * p / takeover_total,
                            ));
                        }
                    } else {
                        out.push((
                            MuInfinityState::Uniform {
                                peers: 1,
                                pieces: 1,
                            },
                            lambda * remaining,
                        ));
                    }
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use markov::gillespie::{Simulator, StopRule};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn peers_of(state: &MuInfinityState) -> u64 {
        match state {
            MuInfinityState::Empty => 0,
            MuInfinityState::Uniform { peers, .. } => *peers,
        }
    }

    #[test]
    fn construction_validation() {
        assert!(MuInfinityProcess::new(1, 1.0).is_err());
        assert!(MuInfinityProcess::new(3, 0.0).is_err());
        assert!(MuInfinityProcess::new(3, f64::NAN).is_err());
        assert!(MuInfinityProcess::new(3, 1.0).is_ok());
    }

    #[test]
    fn z_pmf_sums_to_one_and_has_mean_k_minus_one() {
        let p = MuInfinityProcess::new(4, 1.0).unwrap();
        let total: f64 = (0..2_000).map(|z| p.z_pmf(z)).sum();
        assert!((total - 1.0).abs() < 1e-9, "total {total}");
        let mean: f64 = (0..2_000).map(|z| z as f64 * p.z_pmf(z)).sum();
        assert!((mean - 3.0).abs() < 1e-6, "mean {mean}");
        assert!((p.z_mean() - 3.0).abs() < 1e-12);
    }

    #[test]
    fn transition_rates_from_empty_and_lower_layers() {
        let p = MuInfinityProcess::new(3, 2.0).unwrap();
        let mut out = Vec::new();
        p.transitions(&MuInfinityState::Empty, &mut out);
        assert_eq!(out.len(), 1);
        assert_eq!(
            out[0].0,
            MuInfinityState::Uniform {
                peers: 1,
                pieces: 1
            }
        );
        assert!((out[0].1 - 6.0).abs() < 1e-12);

        out.clear();
        p.transitions(
            &MuInfinityState::Uniform {
                peers: 4,
                pieces: 1,
            },
            &mut out,
        );
        // (5,1) at rate 1·λ = 2 and (5,2) at rate 2·λ = 4.
        assert_eq!(out.len(), 2);
        let up_same = out
            .iter()
            .find(|(s, _)| {
                *s == MuInfinityState::Uniform {
                    peers: 5,
                    pieces: 1,
                }
            })
            .unwrap();
        let up_next = out
            .iter()
            .find(|(s, _)| {
                *s == MuInfinityState::Uniform {
                    peers: 5,
                    pieces: 2,
                }
            })
            .unwrap();
        assert!((up_same.1 - 2.0).abs() < 1e-12);
        assert!((up_next.1 - 4.0).abs() < 1e-12);
    }

    #[test]
    fn top_layer_row_sum_is_k_lambda() {
        // Total outgoing rate from any top-layer state is (K−1)λ + λ = Kλ.
        let p = MuInfinityProcess::new(3, 1.5).unwrap();
        for n in [1u64, 2, 5, 40] {
            let rate = p.total_rate(&MuInfinityState::Uniform {
                peers: n,
                pieces: 2,
            });
            assert!((rate - 4.5).abs() < 1e-9, "n = {n}: rate {rate}");
        }
    }

    #[test]
    fn top_layer_mean_jump_is_zero_drift() {
        // From (n, K−1) with n large, the expected change in the peer count is
        // (K−1)λ·(+1) + λ·E[−Z] = 0.
        let p = MuInfinityProcess::new(4, 1.0).unwrap();
        let n = 200u64;
        let state = MuInfinityState::Uniform {
            peers: n,
            pieces: 3,
        };
        let drift = markov::drift::drift(&p, &state, |s| peers_of(s) as f64);
        assert!(drift.abs() < 1e-6, "drift {drift}");
    }

    #[test]
    fn takeover_probabilities_are_a_distribution_given_wipeout() {
        let p = MuInfinityProcess::new(5, 1.0).unwrap();
        let n = 3u64;
        // P(Z >= n) should equal the total takeover probability.
        let p_wipe: f64 = 1.0 - (0..n).map(|z| p.z_pmf(z)).sum::<f64>();
        let takeover_total: f64 = (0..=(5 - 2)).map(|t| p.takeover_pmf(n, t)).sum();
        assert!(
            (p_wipe - takeover_total).abs() < 1e-9,
            "{p_wipe} vs {takeover_total}"
        );
        assert_eq!(p.takeover_pmf(n, 10), 0.0);
    }

    #[test]
    fn simulated_process_returns_to_small_states_but_wanders() {
        // Null recurrence cannot be proven by simulation; we check the two
        // qualitative signatures: the process keeps returning to small
        // populations, yet its running maximum keeps growing.
        let p = MuInfinityProcess::new(3, 1.0).unwrap();
        let mut rng = StdRng::seed_from_u64(5);
        let sim = Simulator::new(&p).observe(|s| peers_of(s) as f64);
        let run = sim.run(
            MuInfinityState::Empty,
            StopRule::time_or_events(200_000.0, 2_000_000),
            &mut rng,
        );
        let path = &run.path;
        assert!(
            path.upcrossings_of(3.0) > 50,
            "many returns near the origin"
        );
        let early_max = path
            .resample(1000)
            .iter()
            .take(500)
            .map(|&(_, v)| v)
            .fold(0.0_f64, f64::max);
        assert!(
            path.max_value() > early_max,
            "the excursion maxima keep growing"
        );
    }

    #[test]
    fn binomial_helper() {
        assert_eq!(binomial(5, 0), 1.0);
        assert_eq!(binomial(5, 5), 1.0);
        assert_eq!(binomial(5, 2), 10.0);
        assert_eq!(binomial(3, 7), 0.0);
    }
}
