//! Piece-selection policies (Section VIII-A, Theorem 14).
//!
//! Theorem 1 assumes *random useful* piece selection, but Theorem 14 extends
//! it to any policy that transfers a useful piece whenever one exists. The
//! peer-level simulator accepts any [`PiecePolicy`]; the built-in policies are
//! the ones discussed in the paper: random useful, rarest-first (the
//! BitTorrent heuristic), and sequential (lowest-numbered useful piece, the
//! example given for a reduced reachable state space).

use pieceset::{PieceId, PieceSet};
use rand::Rng;

/// A piece-selection policy: chooses which useful piece the uploader
/// transfers to the contacted peer.
///
/// Implementations must be *useful-piece conserving*: they always return a
/// member of `useful` (which the simulator guarantees to be non-empty).
/// This is exactly the family `H` of Section VIII-A restricted to policies
/// that do not depend on extra hidden state.
pub trait PiecePolicy: Send + Sync {
    /// Chooses a piece from `useful` (never empty). `piece_copies[i]` is the
    /// number of peers currently holding piece `i` (swarm-wide), allowing
    /// rarest-first style decisions.
    fn select(
        &self,
        useful: PieceSet,
        piece_copies: &[u64],
        rng: &mut dyn rand::RngCore,
    ) -> PieceId;

    /// Short human-readable name used in reports.
    fn name(&self) -> &'static str;

    /// Whether [`PiecePolicy::select`] reads `piece_copies`. Policies that
    /// never look at copy counts (random-useful, sequential) return `false`,
    /// letting a kernel skip maintaining the per-piece census on its hot
    /// paths. The counts passed to `select` are only guaranteed accurate
    /// when this returns `true`.
    fn uses_copy_counts(&self) -> bool {
        true
    }

    /// Whether [`PiecePolicy::select`] is *exactly* a uniform pick over
    /// `useful` implemented as one `gen_range(0..useful.len())` rank draw.
    /// Returning `true` licenses a kernel to inline that draw instead of
    /// calling `select` — only [`RandomUseful`] qualifies; leave the default
    /// for any policy with a different distribution or draw pattern.
    fn selects_uniformly(&self) -> bool {
        false
    }
}

/// The paper's baseline policy: a uniformly random useful piece.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RandomUseful;

impl PiecePolicy for RandomUseful {
    fn select(
        &self,
        useful: PieceSet,
        _piece_copies: &[u64],
        rng: &mut dyn rand::RngCore,
    ) -> PieceId {
        let count = useful.len();
        debug_assert!(count > 0, "policy invoked with no useful piece");
        let idx = rng.gen_range(0..count);
        // simlint: allow(E001, "kernels invoke policies only with a non-empty useful set (debug-asserted above)")
        useful.iter().nth(idx).expect("index within set size")
    }

    fn name(&self) -> &'static str {
        "random-useful"
    }

    fn uses_copy_counts(&self) -> bool {
        false
    }

    fn selects_uniformly(&self) -> bool {
        true
    }
}

/// Rarest-first: transfer the useful piece with the fewest copies in the
/// swarm, breaking ties uniformly at random. This idealises BitTorrent's
/// local rarest-first rule with global knowledge.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RarestFirst;

impl PiecePolicy for RarestFirst {
    fn select(
        &self,
        useful: PieceSet,
        piece_copies: &[u64],
        rng: &mut dyn rand::RngCore,
    ) -> PieceId {
        let min_copies = useful
            .iter()
            .map(|p| piece_copies.get(p.index()).copied().unwrap_or(0))
            .min()
            // simlint: allow(E001, "kernels invoke policies only with a non-empty useful set")
            .expect("non-empty useful set");
        let rarest: Vec<PieceId> = useful
            .iter()
            .filter(|p| piece_copies.get(p.index()).copied().unwrap_or(0) == min_copies)
            .collect();
        rarest[rng.gen_range(0..rarest.len())]
    }

    fn name(&self) -> &'static str {
        "rarest-first"
    }
}

/// Sequential: always transfer the lowest-numbered useful piece (the policy
/// the paper uses to illustrate reduced reachable state spaces).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Sequential;

impl PiecePolicy for Sequential {
    fn select(
        &self,
        useful: PieceSet,
        _piece_copies: &[u64],
        _rng: &mut dyn rand::RngCore,
    ) -> PieceId {
        // simlint: allow(E001, "kernels invoke policies only with a non-empty useful set")
        useful.first().expect("non-empty useful set")
    }

    fn name(&self) -> &'static str {
        "sequential"
    }

    fn uses_copy_counts(&self) -> bool {
        false
    }
}

/// *Most-common-first*: transfer the useful piece with the most copies.
/// This is still a useful-piece policy (so Theorem 14 applies and the
/// stability region is unchanged), but it is the worst reasonable choice for
/// piece diversity — handy as a contrast in the quasi-stability experiments.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct MostCommonFirst;

impl PiecePolicy for MostCommonFirst {
    fn select(
        &self,
        useful: PieceSet,
        piece_copies: &[u64],
        rng: &mut dyn rand::RngCore,
    ) -> PieceId {
        let max_copies = useful
            .iter()
            .map(|p| piece_copies.get(p.index()).copied().unwrap_or(0))
            .max()
            // simlint: allow(E001, "kernels invoke policies only with a non-empty useful set")
            .expect("non-empty useful set");
        let candidates: Vec<PieceId> = useful
            .iter()
            .filter(|p| piece_copies.get(p.index()).copied().unwrap_or(0) == max_copies)
            .collect();
        candidates[rng.gen_range(0..candidates.len())]
    }

    fn name(&self) -> &'static str {
        "most-common-first"
    }
}

/// The built-in policies by name, for command-line style selection in
/// experiments.
#[must_use]
pub fn by_name(name: &str) -> Option<Box<dyn PiecePolicy>> {
    match name {
        "random-useful" => Some(Box::new(RandomUseful)),
        "rarest-first" => Some(Box::new(RarestFirst)),
        "sequential" => Some(Box::new(Sequential)),
        "most-common-first" => Some(Box::new(MostCommonFirst)),
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn set(indices: &[usize]) -> PieceSet {
        indices.iter().map(|&i| PieceId::new(i)).collect()
    }

    #[test]
    fn random_useful_only_returns_useful_pieces() {
        let mut rng = StdRng::seed_from_u64(1);
        let useful = set(&[1, 3, 5]);
        let copies = vec![0; 6];
        let mut seen = std::collections::HashSet::new();
        for _ in 0..200 {
            let p = RandomUseful.select(useful, &copies, &mut rng);
            assert!(useful.contains(p));
            seen.insert(p.index());
        }
        // all three useful pieces appear under uniform selection
        assert_eq!(seen.len(), 3);
    }

    #[test]
    fn rarest_first_prefers_the_rare_piece() {
        let mut rng = StdRng::seed_from_u64(2);
        let useful = set(&[0, 1, 2]);
        let copies = vec![10, 1, 7];
        for _ in 0..50 {
            let p = RarestFirst.select(useful, &copies, &mut rng);
            assert_eq!(p.index(), 1);
        }
    }

    #[test]
    fn rarest_first_breaks_ties_randomly() {
        let mut rng = StdRng::seed_from_u64(3);
        let useful = set(&[0, 2]);
        let copies = vec![3, 9, 3];
        let mut seen = std::collections::HashSet::new();
        for _ in 0..100 {
            seen.insert(RarestFirst.select(useful, &copies, &mut rng).index());
        }
        assert_eq!(seen, [0usize, 2].into_iter().collect());
    }

    #[test]
    fn sequential_picks_lowest_index() {
        let mut rng = StdRng::seed_from_u64(4);
        let p = Sequential.select(set(&[4, 2, 6]), &[0; 8], &mut rng);
        assert_eq!(p.index(), 2);
    }

    #[test]
    fn most_common_first_prefers_common_piece() {
        let mut rng = StdRng::seed_from_u64(5);
        let useful = set(&[0, 1]);
        let copies = vec![2, 50];
        for _ in 0..20 {
            assert_eq!(MostCommonFirst.select(useful, &copies, &mut rng).index(), 1);
        }
    }

    #[test]
    fn copy_count_usage_is_declared() {
        assert!(!RandomUseful.uses_copy_counts());
        assert!(!Sequential.uses_copy_counts());
        assert!(RarestFirst.uses_copy_counts());
        assert!(MostCommonFirst.uses_copy_counts());
    }

    #[test]
    fn policies_resolvable_by_name() {
        for name in [
            "random-useful",
            "rarest-first",
            "sequential",
            "most-common-first",
        ] {
            let p = by_name(name).expect("known policy");
            assert_eq!(p.name(), name);
        }
        assert!(by_name("unknown").is_none());
    }

    #[test]
    fn missing_copy_information_is_tolerated() {
        // piece_copies shorter than the piece index space: treated as zero.
        let mut rng = StdRng::seed_from_u64(6);
        let p = RarestFirst.select(set(&[5]), &[1, 2], &mut rng);
        assert_eq!(p.index(), 5);
        let p = MostCommonFirst.select(set(&[5]), &[], &mut rng);
        assert_eq!(p.index(), 5);
    }
}
