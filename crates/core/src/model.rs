//! The swarm CTMC: the generator matrix `Q` of Section III.

use crate::rates::transfer_rate;
use crate::{SwarmParams, SwarmState};
use markov::gillespie::{Simulator, StopRule};
use markov::{Ctmc, PathClassifier, SamplePath};
use pieceset::TypeSpace;
use rand::Rng;

/// The Zhu–Hajek swarm model as a continuous-time Markov chain over type
/// counts.
///
/// The generator follows Section III exactly:
///
/// * arrivals: `q(x, x + e_C) = λ_C`,
/// * peer-seed departures (finite `γ`): `q(x, x − e_F) = γ x_F`,
/// * piece transfers: `q(x, x − e_C + e_{C∪{i}}) = Γ_{C, C∪{i}}` of eq. (1);
///   when `γ = ∞` a transfer that completes a collection is a departure
///   (`q(x, x − e_C) = Γ_{C,F}` for `|C| = K − 1`).
///
/// # Examples
///
/// ```
/// use swarm::{SwarmModel, SwarmParams};
/// use rand::SeedableRng;
///
/// let params = SwarmParams::builder(2)
///     .seed_rate(1.0)
///     .contact_rate(1.0)
///     .seed_departure_rate(2.0)
///     .fresh_arrivals(0.5)
///     .build()
///     .unwrap();
/// let model = SwarmModel::new(params);
/// let mut rng = rand::rngs::StdRng::seed_from_u64(1);
/// let run = model.simulate_peer_count(model.empty_state(), 200.0, &mut rng);
/// assert!(run.end_time() >= 200.0 - 1e-9);
/// ```
#[derive(Debug, Clone)]
pub struct SwarmModel {
    params: SwarmParams,
    space: TypeSpace,
}

impl SwarmModel {
    /// Creates the model from validated parameters.
    #[must_use]
    pub fn new(params: SwarmParams) -> Self {
        let space = params.type_space();
        SwarmModel { params, space }
    }

    /// The model parameters.
    #[must_use]
    pub fn params(&self) -> &SwarmParams {
        &self.params
    }

    /// The type space of the model.
    #[must_use]
    pub fn type_space(&self) -> &TypeSpace {
        &self.space
    }

    /// The empty initial state.
    #[must_use]
    pub fn empty_state(&self) -> SwarmState {
        SwarmState::empty(&self.space)
    }

    /// A one-club initial state: `n` peers all missing `missing_piece`.
    #[must_use]
    pub fn one_club_state(&self, missing_piece: pieceset::PieceId, n: u32) -> SwarmState {
        SwarmState::one_club(&self.space, missing_piece, n)
    }

    /// Simulates the chain for `horizon` time units and returns the sample
    /// path of the total peer count.
    pub fn simulate_peer_count<R: Rng + ?Sized>(
        &self,
        initial: SwarmState,
        horizon: f64,
        rng: &mut R,
    ) -> SamplePath {
        let sim = Simulator::new(self).observe(|s: &SwarmState| s.total_peers() as f64);
        sim.run(initial, StopRule::at_time(horizon), rng).path
    }

    /// Simulates and classifies the path of the peer count with a classifier
    /// scaled to the model (slope scale `λ_total`, return level
    /// `max(30, 3·initial population)`).
    pub fn simulate_and_classify<R: Rng + ?Sized>(
        &self,
        initial: SwarmState,
        horizon: f64,
        rng: &mut R,
    ) -> markov::classify::PathVerdict {
        let initial_n = initial.total_peers() as f64;
        let path = self.simulate_peer_count(initial, horizon, rng);
        let classifier = PathClassifier::new(
            self.params.total_arrival_rate(),
            (3.0 * initial_n).max(30.0),
        );
        classifier.classify(&path)
    }
}

impl Ctmc for SwarmModel {
    type State = SwarmState;

    fn transitions(&self, state: &SwarmState, out: &mut Vec<(SwarmState, f64)>) {
        let full = self.params.full_type();
        let gamma_finite = !self.params.departs_immediately();

        // Exogenous arrivals.
        for (c, rate) in self.params.arrivals() {
            let mut next = state.clone();
            // With γ = ∞ an arriving peer that already has everything would
            // depart instantly; validation forbids λ_F > 0 in that case.
            next.add_peer(c);
            out.push((next, rate));
        }

        // Peer-seed departures.
        if gamma_finite {
            let seeds = state.count(full);
            if seeds > 0 {
                let mut next = state.clone();
                next.remove_peer(full);
                out.push((next, self.params.seed_departure_rate() * f64::from(seeds)));
            }
        }

        // Piece transfers.
        let occupied: Vec<_> = state.occupied_types().collect();
        for &(c, _) in &occupied {
            if c == full {
                continue;
            }
            for piece in full.difference(c).iter() {
                let rate = transfer_rate(&self.params, state, c, piece);
                if rate <= 0.0 {
                    continue;
                }
                let target_type = c.with(piece);
                let mut next = state.clone();
                if target_type == full && !gamma_finite {
                    // Completion is an immediate departure when γ = ∞.
                    next.remove_peer(c);
                } else {
                    next.move_peer(c, target_type);
                }
                out.push((next, rate));
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pieceset::{PieceId, PieceSet};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn set(indices: &[usize]) -> PieceSet {
        indices.iter().map(|&i| PieceId::new(i)).collect()
    }

    fn model(us: f64, mu: f64, gamma: f64, lambda0: f64) -> SwarmModel {
        SwarmModel::new(
            SwarmParams::builder(2)
                .seed_rate(us)
                .contact_rate(mu)
                .seed_departure_rate(gamma)
                .fresh_arrivals(lambda0)
                .build()
                .unwrap(),
        )
    }

    fn transitions_of(m: &SwarmModel, s: &SwarmState) -> Vec<(SwarmState, f64)> {
        let mut out = Vec::new();
        m.transitions(s, &mut out);
        out
    }

    #[test]
    fn empty_state_only_has_arrivals() {
        let m = model(1.0, 1.0, 1.0, 2.0);
        let ts = transitions_of(&m, &m.empty_state());
        assert_eq!(ts.len(), 1);
        assert_eq!(ts[0].1, 2.0);
        assert_eq!(ts[0].0.total_peers(), 1);
        assert_eq!(ts[0].0.count(PieceSet::empty()), 1);
    }

    #[test]
    fn full_peers_depart_at_rate_gamma_times_count() {
        let m = model(0.0, 1.0, 3.0, 1.0);
        let mut s = m.empty_state();
        s.set_count(set(&[0, 1]), 4);
        let ts = transitions_of(&m, &s);
        let departure = ts
            .iter()
            .find(|(next, _)| next.total_peers() == 3)
            .expect("departure transition present");
        assert!((departure.1 - 12.0).abs() < 1e-12);
    }

    #[test]
    fn completion_is_departure_when_gamma_infinite() {
        let m = SwarmModel::new(
            SwarmParams::builder(2)
                .seed_rate(1.0)
                .contact_rate(1.0)
                .fresh_arrivals(1.0)
                .build()
                .unwrap(),
        );
        // One peer missing only piece 2; the seed will complete it and it
        // must leave the system rather than become a type-F peer.
        let mut s = m.empty_state();
        s.add_peer(set(&[0]));
        let ts = transitions_of(&m, &s);
        // arrival + completion transfer
        assert_eq!(ts.len(), 2);
        // The completing transfer removes the peer from the system entirely.
        let completion = ts
            .iter()
            .find(|(next, _)| next.total_peers() == 0)
            .expect("completion transition");
        // seed rate 1 / (K - |C|) = 1/1 → rate 1
        assert!((completion.1 - 1.0).abs() < 1e-12);
    }

    #[test]
    fn transition_rates_match_rate_module() {
        let m = model(2.0, 1.5, 1.0, 1.0);
        let mut s = m.empty_state();
        s.set_count(PieceSet::empty(), 3);
        s.set_count(set(&[0]), 2);
        s.set_count(set(&[0, 1]), 1);
        let ts = transitions_of(&m, &s);
        // Check one specific transfer: ∅ → {1}.
        let expected =
            crate::rates::transfer_rate(m.params(), &s, PieceSet::empty(), PieceId::new(0));
        let mut target = s.clone();
        target.move_peer(PieceSet::empty(), set(&[0]));
        let found = ts
            .iter()
            .find(|(next, _)| *next == target)
            .expect("transition exists");
        assert!((found.1 - expected).abs() < 1e-12);
    }

    #[test]
    fn total_rate_is_finite_and_positive_for_occupied_states() {
        let m = model(1.0, 1.0, 2.0, 1.0);
        let mut s = m.empty_state();
        s.set_count(PieceSet::empty(), 5);
        let rate = m.total_rate(&s);
        assert!(rate.is_finite() && rate > 0.0);
    }

    #[test]
    fn peer_count_conservation_in_transitions() {
        // Every transition changes the peer count by exactly -1, 0, or +1.
        let m = model(1.0, 1.0, 1.0, 1.0);
        let mut s = m.empty_state();
        s.set_count(PieceSet::empty(), 2);
        s.set_count(set(&[1]), 2);
        s.set_count(set(&[0, 1]), 1);
        let n = s.total_peers() as i64;
        for (next, rate) in transitions_of(&m, &s) {
            assert!(rate > 0.0);
            let diff = next.total_peers() as i64 - n;
            assert!((-1..=1).contains(&diff), "peer count jumped by {diff}");
        }
    }

    #[test]
    fn stable_single_seed_system_stays_small() {
        // K = 1 with plentiful seed capacity and fast peer seeds: stable.
        let params = SwarmParams::builder(1)
            .seed_rate(2.0)
            .contact_rate(1.0)
            .seed_departure_rate(0.5)
            .fresh_arrivals(1.0)
            .build()
            .unwrap();
        let m = SwarmModel::new(params);
        let mut rng = StdRng::seed_from_u64(7);
        let verdict = m.simulate_and_classify(m.empty_state(), 2_000.0, &mut rng);
        assert_eq!(
            verdict.class,
            markov::PathClass::Stable,
            "verdict {verdict:?}"
        );
    }

    #[test]
    fn starved_system_grows() {
        // K = 1, no seed, immediate departures: peers can only get the piece
        // from other peers, but completed peers leave instantly, so peers
        // accumulate forever (classic missing piece situation for K = 1).
        let params = SwarmParams::builder(1)
            .seed_rate(0.0)
            .contact_rate(1.0)
            .fresh_arrivals(1.0)
            .build()
            .unwrap();
        let m = SwarmModel::new(params);
        let mut rng = StdRng::seed_from_u64(8);
        let verdict = m.simulate_and_classify(m.empty_state(), 1_000.0, &mut rng);
        assert_eq!(
            verdict.class,
            markov::PathClass::Growing,
            "verdict {verdict:?}"
        );
    }
}
