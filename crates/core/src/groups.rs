//! The peer-group decomposition of the transience proof (Section V, Fig. 2).
//!
//! Relative to a designated *watch piece* (piece one in the paper), every
//! peer falls into exactly one of five groups: normal young peers, infected
//! peers, gifted peers, one-club peers and former one-club peers. The
//! agent-based simulator tracks the decomposition over time (experiment E4).

use pieceset::{PieceId, PieceSet};
use serde::{Deserialize, Serialize};

/// The five peer groups of Fig. 2, relative to a watch piece.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum PeerGroup {
    /// Missing the watch piece and at least one other piece (group (a)).
    NormalYoung,
    /// Obtained the watch piece after arrival, before completing (group (b));
    /// a peer stays infected for its entire remaining lifetime.
    Infected,
    /// Arrived already holding the watch piece (group (g)); gifted for life.
    Gifted,
    /// Holds every piece except the watch piece (group (e), the one club).
    OneClub,
    /// Was a one-club peer earlier and has since completed (group (f)).
    FormerOneClub,
}

impl PeerGroup {
    /// Short label used in reports.
    #[must_use]
    pub fn label(self) -> &'static str {
        match self {
            PeerGroup::NormalYoung => "normal-young",
            PeerGroup::Infected => "infected",
            PeerGroup::Gifted => "gifted",
            PeerGroup::OneClub => "one-club",
            PeerGroup::FormerOneClub => "former-one-club",
        }
    }
}

/// Classifies a peer into its group.
///
/// * `pieces` — the peer's current collection,
/// * `arrived_with_watch` — whether its arrival collection contained the
///   watch piece,
/// * `was_one_club` — whether the peer was ever a one-club peer,
/// * `watch` — the watch piece (piece one in the paper),
/// * `num_pieces` — `K`.
#[must_use]
pub fn classify_peer(
    pieces: PieceSet,
    arrived_with_watch: bool,
    was_one_club: bool,
    watch: PieceId,
    num_pieces: usize,
) -> PeerGroup {
    if pieces.contains(watch) {
        if arrived_with_watch {
            PeerGroup::Gifted
        } else if was_one_club {
            PeerGroup::FormerOneClub
        } else {
            PeerGroup::Infected
        }
    } else if pieces.len() == num_pieces - 1 {
        PeerGroup::OneClub
    } else {
        PeerGroup::NormalYoung
    }
}

/// Counts of peers in each group at one instant.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct GroupCounts {
    /// Group (a): normal young peers.
    pub normal_young: u64,
    /// Group (b): infected peers.
    pub infected: u64,
    /// Group (g): gifted peers.
    pub gifted: u64,
    /// Group (e): one-club peers.
    pub one_club: u64,
    /// Group (f): former one-club peers.
    pub former_one_club: u64,
}

impl GroupCounts {
    /// Adds one peer of the given group.
    pub fn add(&mut self, group: PeerGroup) {
        match group {
            PeerGroup::NormalYoung => self.normal_young += 1,
            PeerGroup::Infected => self.infected += 1,
            PeerGroup::Gifted => self.gifted += 1,
            PeerGroup::OneClub => self.one_club += 1,
            PeerGroup::FormerOneClub => self.former_one_club += 1,
        }
    }

    /// Removes one peer of the given group (a departure, or the "from" side
    /// of a transition).
    ///
    /// # Panics
    ///
    /// Panics in debug builds if the group count is already zero — the
    /// incremental bookkeeping of the event-driven simulator must never
    /// remove a peer it did not add.
    pub fn remove(&mut self, group: PeerGroup) {
        let slot = match group {
            PeerGroup::NormalYoung => &mut self.normal_young,
            PeerGroup::Infected => &mut self.infected,
            PeerGroup::Gifted => &mut self.gifted,
            PeerGroup::OneClub => &mut self.one_club,
            PeerGroup::FormerOneClub => &mut self.former_one_club,
        };
        debug_assert!(*slot > 0, "removing from empty group {}", group.label());
        *slot -= 1;
    }

    /// Moves one peer from group `from` to group `to` (no-op when equal).
    /// This is how a piece transfer updates the Fig.-2 decomposition in
    /// `O(1)`: the receiving peer's group is re-derived and the counts follow
    /// the transition instead of rescanning the population.
    pub fn transition(&mut self, from: PeerGroup, to: PeerGroup) {
        if from != to {
            self.remove(from);
            self.add(to);
        }
    }

    /// Total number of peers across all groups.
    #[must_use]
    pub fn total(&self) -> u64 {
        self.normal_young + self.infected + self.gifted + self.one_club + self.former_one_club
    }

    /// The quantity `Y^e + Y^f` tracked by the proof: one-club peers plus
    /// former one-club peers.
    #[must_use]
    pub fn club_and_former(&self) -> u64 {
        self.one_club + self.former_one_club
    }

    /// The quantity `Y^a + Y^b + Y^g` bounded by the M/GI/∞ comparison
    /// (Lemma 5): peers outside the one club that have not passed through it.
    #[must_use]
    pub fn young_infected_gifted(&self) -> u64 {
        self.normal_young + self.infected + self.gifted
    }

    /// Fraction of peers in the one club (zero for an empty system).
    #[must_use]
    pub fn one_club_fraction(&self) -> f64 {
        let total = self.total();
        if total == 0 {
            0.0
        } else {
            self.one_club as f64 / total as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn set(indices: &[usize]) -> PieceSet {
        indices.iter().map(|&i| PieceId::new(i)).collect()
    }

    const K: usize = 4;

    fn watch() -> PieceId {
        PieceId::new(0)
    }

    #[test]
    fn normal_young_missing_watch_and_more() {
        assert_eq!(
            classify_peer(PieceSet::empty(), false, false, watch(), K),
            PeerGroup::NormalYoung
        );
        assert_eq!(
            classify_peer(set(&[1]), false, false, watch(), K),
            PeerGroup::NormalYoung
        );
        assert_eq!(
            classify_peer(set(&[1, 2]), false, false, watch(), K),
            PeerGroup::NormalYoung
        );
    }

    #[test]
    fn one_club_is_missing_only_watch() {
        assert_eq!(
            classify_peer(set(&[1, 2, 3]), false, false, watch(), K),
            PeerGroup::OneClub
        );
    }

    #[test]
    fn gifted_peers_stay_gifted() {
        assert_eq!(
            classify_peer(set(&[0]), true, false, watch(), K),
            PeerGroup::Gifted
        );
        // even as a seed
        assert_eq!(
            classify_peer(set(&[0, 1, 2, 3]), true, false, watch(), K),
            PeerGroup::Gifted
        );
    }

    #[test]
    fn infected_peers_obtained_watch_after_arrival() {
        assert_eq!(
            classify_peer(set(&[0, 1]), false, false, watch(), K),
            PeerGroup::Infected
        );
        // an infected peer that later completes is still infected
        assert_eq!(
            classify_peer(set(&[0, 1, 2, 3]), false, false, watch(), K),
            PeerGroup::Infected
        );
    }

    #[test]
    fn former_one_club_requires_the_flag() {
        assert_eq!(
            classify_peer(set(&[0, 1, 2, 3]), false, true, watch(), K),
            PeerGroup::FormerOneClub
        );
        // the flag has no effect while the peer is still missing the watch piece
        assert_eq!(
            classify_peer(set(&[1, 2, 3]), false, true, watch(), K),
            PeerGroup::OneClub
        );
    }

    #[test]
    fn counts_and_derived_quantities() {
        let mut g = GroupCounts::default();
        g.add(PeerGroup::NormalYoung);
        g.add(PeerGroup::NormalYoung);
        g.add(PeerGroup::Infected);
        g.add(PeerGroup::Gifted);
        g.add(PeerGroup::OneClub);
        g.add(PeerGroup::OneClub);
        g.add(PeerGroup::OneClub);
        g.add(PeerGroup::FormerOneClub);
        assert_eq!(g.total(), 8);
        assert_eq!(g.club_and_former(), 4);
        assert_eq!(g.young_infected_gifted(), 4);
        assert!((g.one_club_fraction() - 3.0 / 8.0).abs() < 1e-12);
        let empty = GroupCounts::default();
        assert_eq!(empty.one_club_fraction(), 0.0);
    }

    #[test]
    fn remove_and_transition_are_inverse_of_add() {
        let mut g = GroupCounts::default();
        g.add(PeerGroup::OneClub);
        g.add(PeerGroup::NormalYoung);
        g.transition(PeerGroup::OneClub, PeerGroup::FormerOneClub);
        assert_eq!(g.one_club, 0);
        assert_eq!(g.former_one_club, 1);
        g.transition(PeerGroup::NormalYoung, PeerGroup::NormalYoung);
        assert_eq!(g.normal_young, 1, "self-transition is a no-op");
        g.remove(PeerGroup::FormerOneClub);
        g.remove(PeerGroup::NormalYoung);
        assert_eq!(g.total(), 0);
    }

    #[test]
    fn labels_are_distinct() {
        let labels: std::collections::HashSet<_> = [
            PeerGroup::NormalYoung,
            PeerGroup::Infected,
            PeerGroup::Gifted,
            PeerGroup::OneClub,
            PeerGroup::FormerOneClub,
        ]
        .iter()
        .map(|g| g.label())
        .collect();
        assert_eq!(labels.len(), 5);
    }
}
