//! Finite-field arithmetic and subspace types for random linear network
//! coding, as used in the network-coding extension (Theorem 15) of the
//! Zhu–Hajek P2P stability model.
//!
//! With network coding, a peer's *type* is no longer a subset of pieces but
//! the subspace `V_A ⊆ F_q^K` spanned by the coding vectors of the coded
//! pieces it holds. The crate provides:
//!
//! * [`GaloisField`] — arithmetic in `GF(q)` for `q` a prime or a power of
//!   two up to `2^16`,
//! * [`CodingVector`] — length-`K` vectors over `GF(q)` with the operations
//!   needed for random linear combinations,
//! * [`Subspace`] — a subspace of `F_q^K` maintained in reduced row-echelon
//!   form, with dimension, membership, sums, random-vector sampling and the
//!   usefulness probabilities from Section VIII-B of the paper.
//!
//! # Examples
//!
//! ```
//! use netcoding::{GaloisField, Subspace, CodingVector};
//! use rand::SeedableRng;
//!
//! let field = GaloisField::new(8).unwrap();     // GF(2^3)
//! let mut rng = rand::rngs::StdRng::seed_from_u64(1);
//! let mut space = Subspace::empty(field, 4);
//! let v = CodingVector::random(field, 4, &mut rng);
//! space.insert(&v).unwrap();
//! assert!(space.dimension() <= 1);
//! assert!(space.contains(&v));
//! ```

#![deny(missing_docs)]
#![forbid(unsafe_code)]

mod bitspace;
mod gf;
mod subspace;
mod vector;

pub use bitspace::BitSubspace;
pub use gf::GaloisField;
pub use subspace::Subspace;
pub use vector::CodingVector;

/// Errors produced by the network-coding types.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CodingError {
    /// The requested field order is not supported (must be a prime `< 2^16`
    /// or a power of two `≤ 2^16`).
    UnsupportedFieldOrder {
        /// The requested order `q`.
        order: u64,
    },
    /// An element was not a valid member of the field.
    ElementOutOfRange {
        /// The offending element.
        element: u64,
        /// The field order.
        order: u64,
    },
    /// Division by zero was attempted.
    DivisionByZero,
    /// Two operands belong to different fields or have different lengths.
    Mismatch(String),
}

impl core::fmt::Display for CodingError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            CodingError::UnsupportedFieldOrder { order } => {
                write!(
                    f,
                    "unsupported field order {order}: must be a prime or power of two up to 65536"
                )
            }
            CodingError::ElementOutOfRange { element, order } => {
                write!(f, "element {element} out of range for GF({order})")
            }
            CodingError::DivisionByZero => write!(f, "division by zero in a finite field"),
            CodingError::Mismatch(msg) => write!(f, "operand mismatch: {msg}"),
        }
    }
}

impl std::error::Error for CodingError {}
