//! Coding vectors over `GF(q)`.

use crate::{CodingError, GaloisField};
use serde::{Deserialize, Serialize};

/// A coding vector: the coefficients `(θ_1, …, θ_K)` of a coded piece
/// `e = Σ θ_i m_i` with respect to the original data pieces.
///
/// # Examples
///
/// ```
/// use netcoding::{CodingVector, GaloisField};
/// let f = GaloisField::new(7).unwrap();
/// let a = CodingVector::from_coeffs(f, vec![1, 2, 0]).unwrap();
/// let b = CodingVector::unit(f, 3, 1);
/// let c = a.add(&b).unwrap();
/// assert_eq!(c.coeffs(), &[1, 3, 0]);
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct CodingVector {
    field: GaloisField,
    coeffs: Vec<u32>,
}

impl CodingVector {
    /// The zero vector of length `len`.
    #[must_use]
    pub fn zero(field: GaloisField, len: usize) -> Self {
        CodingVector {
            field,
            coeffs: vec![0; len],
        }
    }

    /// The `i`-th unit vector of length `len` (the coding vector of the
    /// uncoded data piece `i`).
    ///
    /// # Panics
    ///
    /// Panics if `index >= len`.
    #[must_use]
    pub fn unit(field: GaloisField, len: usize, index: usize) -> Self {
        assert!(index < len, "unit index out of range");
        let mut v = Self::zero(field, len);
        v.coeffs[index] = 1;
        v
    }

    /// Builds a vector from explicit coefficients.
    ///
    /// # Errors
    ///
    /// Returns [`CodingError::ElementOutOfRange`] if a coefficient is not a
    /// field element.
    pub fn from_coeffs(field: GaloisField, coeffs: Vec<u32>) -> Result<Self, CodingError> {
        for &c in &coeffs {
            field.check(c)?;
        }
        Ok(CodingVector { field, coeffs })
    }

    /// Samples a uniformly random vector of length `len`.
    pub fn random<R: rand::Rng + ?Sized>(field: GaloisField, len: usize, rng: &mut R) -> Self {
        CodingVector {
            field,
            coeffs: (0..len).map(|_| field.random_element(rng)).collect(),
        }
    }

    /// The field the vector lives over.
    #[must_use]
    pub fn field(&self) -> GaloisField {
        self.field
    }

    /// The coefficient slice.
    #[must_use]
    pub fn coeffs(&self) -> &[u32] {
        &self.coeffs
    }

    /// Vector length `K`.
    #[must_use]
    pub fn len(&self) -> usize {
        self.coeffs.len()
    }

    /// Returns `true` if every coefficient is zero (a useless coded piece).
    #[must_use]
    pub fn is_zero(&self) -> bool {
        self.coeffs.iter().all(|&c| c == 0)
    }

    /// Returns `true` if the vector has length zero.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.coeffs.is_empty()
    }

    /// Component-wise addition.
    ///
    /// # Errors
    ///
    /// Returns [`CodingError::Mismatch`] if the vectors have different fields
    /// or lengths.
    pub fn add(&self, other: &Self) -> Result<Self, CodingError> {
        self.compatible(other)?;
        let coeffs = self
            .coeffs
            .iter()
            .zip(&other.coeffs)
            .map(|(&a, &b)| self.field.add(a, b))
            .collect();
        Ok(CodingVector {
            field: self.field,
            coeffs,
        })
    }

    /// Scalar multiplication.
    ///
    /// # Errors
    ///
    /// Returns [`CodingError::ElementOutOfRange`] if `scalar` is not a field
    /// element.
    pub fn scale(&self, scalar: u32) -> Result<Self, CodingError> {
        self.field.check(scalar)?;
        Ok(CodingVector {
            field: self.field,
            coeffs: self
                .coeffs
                .iter()
                .map(|&c| self.field.mul(c, scalar))
                .collect(),
        })
    }

    /// `self + scalar · other`, the elementary row operation used by Gaussian
    /// elimination and by random linear combining.
    ///
    /// # Errors
    ///
    /// Returns [`CodingError::Mismatch`] on incompatible operands or
    /// [`CodingError::ElementOutOfRange`] for an invalid scalar.
    pub fn add_scaled(&self, other: &Self, scalar: u32) -> Result<Self, CodingError> {
        self.add(&other.scale(scalar)?)
    }

    /// Index of the first non-zero coefficient, if any.
    #[must_use]
    pub fn leading_index(&self) -> Option<usize> {
        self.coeffs.iter().position(|&c| c != 0)
    }

    fn compatible(&self, other: &Self) -> Result<(), CodingError> {
        if self.field != other.field {
            return Err(CodingError::Mismatch(
                "vectors over different fields".into(),
            ));
        }
        if self.coeffs.len() != other.coeffs.len() {
            return Err(CodingError::Mismatch(format!(
                "vector lengths differ: {} vs {}",
                self.coeffs.len(),
                other.coeffs.len()
            )));
        }
        Ok(())
    }

    /// Random linear combination of the given vectors with independent
    /// uniform coefficients — the coded piece peer `B` sends when contacted
    /// (Section VIII-B).
    ///
    /// # Errors
    ///
    /// Returns [`CodingError::Mismatch`] if the vectors are incompatible or
    /// the slice is empty.
    pub fn random_combination<R: rand::Rng + ?Sized>(
        vectors: &[Self],
        rng: &mut R,
    ) -> Result<Self, CodingError> {
        let first = vectors
            .first()
            .ok_or_else(|| CodingError::Mismatch("no vectors to combine".into()))?;
        let mut acc = Self::zero(first.field, first.len());
        for v in vectors {
            let coeff = first.field.random_element(rng);
            acc = acc.add_scaled(v, coeff)?;
        }
        Ok(acc)
    }
}

impl core::fmt::Display for CodingVector {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(f, "[")?;
        for (i, c) in self.coeffs.iter().enumerate() {
            if i > 0 {
                write!(f, " ")?;
            }
            write!(f, "{c}")?;
        }
        write!(f, "]")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn gf7() -> GaloisField {
        GaloisField::new(7).unwrap()
    }

    #[test]
    fn zero_and_unit_vectors() {
        let z = CodingVector::zero(gf7(), 4);
        assert!(z.is_zero());
        assert_eq!(z.len(), 4);
        let u = CodingVector::unit(gf7(), 4, 2);
        assert_eq!(u.coeffs(), &[0, 0, 1, 0]);
        assert_eq!(u.leading_index(), Some(2));
        assert_eq!(z.leading_index(), None);
    }

    #[test]
    fn from_coeffs_validates() {
        assert!(CodingVector::from_coeffs(gf7(), vec![0, 6]).is_ok());
        assert!(CodingVector::from_coeffs(gf7(), vec![7]).is_err());
    }

    #[test]
    fn addition_and_scaling() {
        let a = CodingVector::from_coeffs(gf7(), vec![1, 2, 3]).unwrap();
        let b = CodingVector::from_coeffs(gf7(), vec![6, 5, 4]).unwrap();
        assert_eq!(a.add(&b).unwrap().coeffs(), &[0, 0, 0]);
        assert_eq!(a.scale(2).unwrap().coeffs(), &[2, 4, 6]);
        assert_eq!(a.add_scaled(&b, 2).unwrap().coeffs(), &[6, 5, 4]);
    }

    #[test]
    fn mismatched_operands_rejected() {
        let a = CodingVector::zero(gf7(), 3);
        let b = CodingVector::zero(gf7(), 4);
        assert!(a.add(&b).is_err());
        let c = CodingVector::zero(GaloisField::new(8).unwrap(), 3);
        assert!(a.add(&c).is_err());
        assert!(a.scale(9).is_err());
    }

    #[test]
    fn random_combination_stays_in_span() {
        let f = GaloisField::new(16).unwrap();
        let mut rng = StdRng::seed_from_u64(5);
        let basis = vec![CodingVector::unit(f, 4, 0), CodingVector::unit(f, 4, 2)];
        for _ in 0..50 {
            let combo = CodingVector::random_combination(&basis, &mut rng).unwrap();
            // components 1 and 3 must remain zero
            assert_eq!(combo.coeffs()[1], 0);
            assert_eq!(combo.coeffs()[3], 0);
        }
        assert!(CodingVector::random_combination(&[], &mut rng).is_err());
    }

    #[test]
    fn random_vectors_have_full_range() {
        let f = GaloisField::new(4).unwrap();
        let mut rng = StdRng::seed_from_u64(6);
        let mut seen = std::collections::HashSet::new();
        for _ in 0..200 {
            let v = CodingVector::random(f, 2, &mut rng);
            seen.insert(v.coeffs().to_vec());
        }
        assert_eq!(seen.len(), 16, "all 16 vectors over GF(4)^2 should appear");
    }

    #[test]
    fn display_format() {
        let a = CodingVector::from_coeffs(gf7(), vec![1, 0, 5]).unwrap();
        assert_eq!(a.to_string(), "[1 0 5]");
    }
}
