//! Bitsliced subspaces of `F_2^K`: packed `u64` rows, XOR reduction,
//! trailing-bit pivots.
//!
//! Over `GF(2)` a coding vector is a bit pattern and vector addition is XOR,
//! so a reduced-row-echelon basis fits in `dim` rows of `⌈K/64⌉` machine
//! words (the [`pieceset::PieceMatrix`] packed-row idiom) and every
//! [`Subspace`](crate::Subspace) operation the coded simulation kernel needs
//! collapses to word arithmetic:
//!
//! * **Reduction** of a row against the basis is one XOR per basis row whose
//!   pivot bit the row carries — no field multiplies, no per-coefficient
//!   loops.
//! * **Pivots** are trailing-bit positions (`trailing_zeros`), and pivot
//!   normalisation is free: the only non-zero field element is one.
//! * **Rank** is the row count; a row's support is a popcount away.
//! * **Random combinations** draw one `u64` of coefficient bits per 64 basis
//!   rows instead of one field element per row.
//!
//! [`BitSubspace`] agrees with [`Subspace`](crate::Subspace) over `GF(2)` on
//! rank, membership, and the RREF row set (property-tested in
//! `crates/netcoding/tests/bitspace_props.rs`); it exists because the coded
//! turbo kernel stores tens of thousands of peer bases and touches them on
//! every nontrivial contact.
//!
//! # Examples
//!
//! ```
//! use netcoding::BitSubspace;
//!
//! let mut s = BitSubspace::empty(4);
//! assert!(s.absorb(&mut [0b0011]));
//! assert!(s.absorb(&mut [0b0110]));
//! assert!(!s.absorb(&mut [0b0101])); // 0101 = 0011 ^ 0110
//! assert_eq!(s.dimension(), 2);
//! assert!(s.contains(&[0b0101]));
//! assert!(!s.is_full());
//! ```

use rand::Rng;

/// A subspace of `F_2^K` held as a reduced-row-echelon basis of packed
/// `u64` rows (see the module-level docs).
///
/// Rows are `⌈K/64⌉` words, bit `i` of word `i / 64` being coordinate `i`;
/// the basis is ordered by ascending pivot column, so equal subspaces have
/// identical representations.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct BitSubspace {
    ambient_dim: usize,
    words_per_row: usize,
    /// Mask of valid bits in the last word of a row.
    last_word_mask: u64,
    /// Pivot column of each basis row, ascending.
    pivots: Vec<u32>,
    /// Basis rows, `words_per_row` words each, ordered like `pivots`.
    rows: Vec<u64>,
}

/// The word count and valid-bit mask of the last word for a `K`-bit row.
fn row_shape(ambient_dim: usize) -> (usize, u64) {
    let tail = ambient_dim % 64;
    (
        ambient_dim.div_ceil(64),
        if tail == 0 {
            u64::MAX
        } else {
            (1u64 << tail) - 1
        },
    )
}

impl BitSubspace {
    /// The zero subspace of `F_2^K`.
    ///
    /// # Panics
    ///
    /// Panics if `ambient_dim` is zero.
    #[must_use]
    pub fn empty(ambient_dim: usize) -> Self {
        assert!(ambient_dim >= 1, "the ambient space needs a dimension");
        let (words_per_row, last_word_mask) = row_shape(ambient_dim);
        BitSubspace {
            ambient_dim,
            words_per_row,
            last_word_mask,
            pivots: Vec::new(),
            rows: Vec::new(),
        }
    }

    /// The full space `F_2^K`.
    ///
    /// # Panics
    ///
    /// Panics if `ambient_dim` is zero.
    #[must_use]
    pub fn full(ambient_dim: usize) -> Self {
        let mut s = BitSubspace::empty(ambient_dim);
        for i in 0..ambient_dim {
            s.pivots.push(i as u32);
            let word = i / 64;
            for w in 0..s.words_per_row {
                s.rows.push(if w == word { 1u64 << (i % 64) } else { 0 });
            }
        }
        s
    }

    /// Clears the basis and reconfigures for a (possibly different) ambient
    /// dimension, keeping the allocated capacity — the scratch-reuse
    /// companion of [`BitSubspace::empty`] for arenas that recycle bases
    /// across peers and replications.
    ///
    /// # Panics
    ///
    /// Panics if `ambient_dim` is zero.
    pub fn reset(&mut self, ambient_dim: usize) {
        assert!(ambient_dim >= 1, "the ambient space needs a dimension");
        let (words_per_row, last_word_mask) = row_shape(ambient_dim);
        self.ambient_dim = ambient_dim;
        self.words_per_row = words_per_row;
        self.last_word_mask = last_word_mask;
        self.pivots.clear();
        self.rows.clear();
    }

    /// The ambient dimension `K`.
    #[must_use]
    pub fn ambient_dim(&self) -> usize {
        self.ambient_dim
    }

    /// Number of `u64` words per row: `⌈K/64⌉`.
    #[must_use]
    pub fn words_per_row(&self) -> usize {
        self.words_per_row
    }

    /// The dimension of the subspace (the basis row count).
    #[must_use]
    pub fn dimension(&self) -> usize {
        self.pivots.len()
    }

    /// Returns `true` if this is the zero subspace.
    #[must_use]
    pub fn is_trivial(&self) -> bool {
        self.pivots.is_empty()
    }

    /// Returns `true` if the subspace equals the full ambient space.
    #[must_use]
    pub fn is_full(&self) -> bool {
        self.pivots.len() == self.ambient_dim
    }

    /// The RREF basis rows in ascending pivot order, each `⌈K/64⌉` words.
    pub fn basis_rows(&self) -> impl Iterator<Item = &[u64]> + '_ {
        self.rows.chunks_exact(self.words_per_row)
    }

    /// The pivot columns of the basis rows, ascending.
    #[must_use]
    pub fn pivots(&self) -> &[u32] {
        &self.pivots
    }

    /// Reduces `row` in place against the basis (XOR per matching pivot).
    #[inline]
    fn reduce_in_place(&self, row: &mut [u64]) {
        let w = self.words_per_row;
        for (i, &p) in self.pivots.iter().enumerate() {
            let (word, bit) = (p as usize / 64, p % 64);
            if row[word] >> bit & 1 == 1 {
                for (r, &b) in row.iter_mut().zip(&self.rows[i * w..(i + 1) * w]) {
                    *r ^= b;
                }
            }
        }
    }

    /// Reduces `row` against the basis in place and, if a non-zero residual
    /// remains, absorbs it as a new basis row, keeping the representation
    /// reduced; returns `true` when the dimension increased. On success
    /// `row` holds the inserted RREF row; on failure it is zero.
    ///
    /// This is the `GF(2)` counterpart of
    /// [`Subspace::absorb`](crate::Subspace::absorb): the simulation
    /// kernel's hot path, with the per-coefficient field arithmetic replaced
    /// by whole-word XOR and the pivot search by `trailing_zeros`.
    ///
    /// # Panics
    ///
    /// Panics if `row` is not `⌈K/64⌉` words; bits beyond column `K` must be
    /// clear (checked in debug builds).
    pub fn absorb(&mut self, row: &mut [u64]) -> bool {
        let w = self.words_per_row;
        assert_eq!(row.len(), w, "row must span the ambient space");
        debug_assert!(
            row[w - 1] & !self.last_word_mask == 0,
            "bits beyond column K must be clear"
        );
        self.reduce_in_place(row);
        let Some(word) = row.iter().position(|&x| x != 0) else {
            return false;
        };
        let pivot = word * 64 + row[word].trailing_zeros() as usize;
        // Back-substitution: clear the new pivot bit from every existing row
        // (only rows with a smaller pivot can carry it).
        for (i, &p) in self.pivots.iter().enumerate() {
            if (p as usize) < pivot && self.rows[i * w + word] >> (pivot % 64) & 1 == 1 {
                for (b, &r) in self.rows[i * w..(i + 1) * w].iter_mut().zip(row.iter()) {
                    *b ^= r;
                }
            }
        }
        let pos = self.pivots.partition_point(|&q| (q as usize) < pivot);
        self.pivots.insert(pos, pivot as u32);
        self.rows.splice(pos * w..pos * w, row.iter().copied());
        true
    }

    /// Returns `true` if the bit row lies in the subspace (the zero row
    /// always does).
    ///
    /// # Panics
    ///
    /// Panics if `row` is not `⌈K/64⌉` words.
    #[must_use]
    pub fn contains(&self, row: &[u64]) -> bool {
        assert_eq!(
            row.len(),
            self.words_per_row,
            "row must span the ambient space"
        );
        let mut tmp = row.to_vec();
        self.reduce_in_place(&mut tmp);
        tmp.iter().all(|&x| x == 0)
    }

    /// Absorbs the unit vector `e_index`; returns `true` when the dimension
    /// increased.
    ///
    /// # Panics
    ///
    /// Panics if `index` is outside `0..K`.
    pub fn insert_unit(&mut self, index: usize) -> bool {
        assert!(index < self.ambient_dim, "unit index outside the ambient");
        let mut row = vec![0u64; self.words_per_row];
        row[index / 64] = 1u64 << (index % 64);
        self.absorb(&mut row)
    }

    /// Replaces the basis with the span of the unit vectors named by `bits`
    /// (bit `i` set ⇒ `e_i` in the basis) — directly, without any absorb
    /// loop, since unit rows with ascending pivots already *are* an RREF
    /// basis. This is how the coded turbo kernel materialises a peer whose
    /// subspace is exactly an uncoded piece collection.
    ///
    /// # Panics
    ///
    /// Panics if a set bit names a column at or beyond `min(K, 64)`.
    pub fn set_units(&mut self, bits: u64) {
        assert!(
            self.ambient_dim >= 64 || bits >> self.ambient_dim == 0,
            "unit bits outside a {}-dimensional ambient space",
            self.ambient_dim
        );
        self.pivots.clear();
        self.rows.clear();
        let mut rest = bits;
        while rest != 0 {
            let i = rest.trailing_zeros();
            rest &= rest - 1;
            self.pivots.push(i);
            self.rows.push(1u64 << i);
            self.rows
                .extend(std::iter::repeat_n(0, self.words_per_row - 1));
        }
    }

    /// Writes a uniformly random vector of the subspace into `out`: one
    /// `u64` of coefficient bits per 64 basis rows, then an XOR per selected
    /// row. Produces the zero row for the trivial subspace (with probability
    /// `2^{-dim}` in general) — the `GF(2)` counterpart of
    /// [`Subspace::random_combination_into`](crate::Subspace::random_combination_into).
    pub fn random_combination_into<R: Rng + ?Sized>(&self, rng: &mut R, out: &mut Vec<u64>) {
        out.clear();
        out.resize(self.words_per_row, 0);
        let w = self.words_per_row;
        for (chunk, rows) in self.rows.chunks(64 * w).enumerate() {
            let mut coeffs = rng.gen::<u64>();
            if chunk * 64 + 64 > self.pivots.len() {
                coeffs &= (1u64 << (self.pivots.len() - chunk * 64)) - 1;
            }
            let mut rest = coeffs;
            while rest != 0 {
                let i = rest.trailing_zeros() as usize;
                rest &= rest - 1;
                for (o, &b) in out.iter_mut().zip(&rows[i * w..(i + 1) * w]) {
                    *o ^= b;
                }
            }
        }
    }

    /// Writes a uniformly random vector of the *ambient* space `F_2^K` into
    /// `out` — the coded piece a fixed seed uploads, and the raw material
    /// for sampling uniform subspaces by repeated absorption.
    pub fn random_ambient_row_into<R: Rng + ?Sized>(&self, rng: &mut R, out: &mut Vec<u64>) {
        out.clear();
        out.extend((0..self.words_per_row).map(|_| rng.gen::<u64>()));
        *out.last_mut().expect("at least one word") &= self.last_word_mask;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn empty_full_and_reset() {
        let e = BitSubspace::empty(5);
        assert_eq!(e.dimension(), 0);
        assert!(e.is_trivial());
        assert!(!e.is_full());
        assert_eq!(e.words_per_row(), 1);
        let mut f = BitSubspace::full(5);
        assert!(f.is_full());
        assert_eq!(f.dimension(), 5);
        assert!(f.contains(&[0b10110]));
        f.reset(70);
        assert!(f.is_trivial());
        assert_eq!(f.ambient_dim(), 70);
        assert_eq!(f.words_per_row(), 2);
    }

    #[test]
    fn absorb_builds_a_reduced_basis() {
        let mut s = BitSubspace::empty(8);
        assert!(s.absorb(&mut [0b1100_0000]));
        assert!(s.absorb(&mut [0b0100_0001]));
        // Dependent: the sum of the first two.
        assert!(!s.absorb(&mut [0b1000_0001]));
        assert_eq!(s.dimension(), 2);
        // RREF: each pivot bit appears in exactly one row.
        for (i, row) in s.basis_rows().enumerate() {
            let pivot = s.pivots()[i];
            assert_eq!(row[0].trailing_zeros(), pivot);
            for (j, other) in s.basis_rows().enumerate() {
                if i != j {
                    assert_eq!(other[0] >> pivot & 1, 0, "pivot {pivot} leaked");
                }
            }
        }
        assert!(s.contains(&[0]));
        assert!(s.contains(&[0b1000_0001]));
        assert!(!s.contains(&[0b0000_0001]));
    }

    #[test]
    fn unit_helpers_match_absorbed_units() {
        let mut direct = BitSubspace::empty(40);
        direct.set_units(0b1010_0110);
        let mut absorbed = BitSubspace::empty(40);
        for i in [1, 2, 5, 7] {
            assert!(absorbed.insert_unit(i));
        }
        assert_eq!(direct, absorbed);
        assert!(!absorbed.insert_unit(5), "duplicate unit is dependent");
    }

    #[test]
    fn multiword_rows_work_across_the_word_boundary() {
        let mut s = BitSubspace::empty(100);
        let mut row = vec![1u64 << 63, 0b11];
        assert!(s.absorb(&mut row));
        assert!(s.insert_unit(63));
        assert_eq!(s.dimension(), 2);
        // The first absorbed row had pivot 63; inserting e63 re-reduces it.
        assert!(s.contains(&[0, 0b11]));
        assert!(!s.contains(&[0, 0b01]));
        assert_eq!(s.pivots(), &[63, 64]);
    }

    #[test]
    fn random_combinations_stay_in_the_span_and_cover_it() {
        let mut s = BitSubspace::empty(6);
        s.set_units(0b101);
        let mut rng = StdRng::seed_from_u64(9);
        let mut row = Vec::new();
        let mut seen = std::collections::HashSet::new();
        for _ in 0..200 {
            s.random_combination_into(&mut rng, &mut row);
            assert!(s.contains(&row));
            seen.insert(row[0]);
        }
        assert_eq!(seen.len(), 4, "all 2^dim members reachable");
    }

    #[test]
    fn ambient_rows_respect_the_last_word_mask() {
        let s = BitSubspace::empty(10);
        let mut rng = StdRng::seed_from_u64(11);
        let mut row = Vec::new();
        for _ in 0..50 {
            s.random_ambient_row_into(&mut rng, &mut row);
            assert_eq!(row.len(), 1);
            assert_eq!(row[0] >> 10, 0, "bits beyond K stay clear");
        }
    }
}
