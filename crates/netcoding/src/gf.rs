//! Arithmetic in `GF(q)` for `q` prime or a power of two.

use crate::CodingError;
use serde::{Deserialize, Serialize};

/// A finite field `GF(q)`.
///
/// Supported orders are primes `q < 2^16` and powers of two `q = 2^m ≤ 2^16`.
/// Elements are represented as `u32` values in `0..q`; for `GF(2^m)` the
/// value is the usual polynomial-basis bit representation.
///
/// The type is `Copy` so it can be freely embedded in model parameters.
///
/// # Examples
///
/// ```
/// use netcoding::GaloisField;
/// let f = GaloisField::new(7).unwrap();
/// assert_eq!(f.add(5, 4), 2);
/// assert_eq!(f.mul(3, 5), 1);
/// assert_eq!(f.inv(3).unwrap(), 5);
///
/// let g = GaloisField::new(256).unwrap();
/// // In characteristic two addition is XOR.
/// assert_eq!(g.add(0xa5, 0xa5), 0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct GaloisField {
    order: u32,
    kind: FieldKind,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
enum FieldKind {
    /// Prime field GF(p): values mod p.
    Prime,
    /// Binary extension field GF(2^m): values are polynomials over GF(2),
    /// reduced modulo the stored irreducible polynomial.
    Binary {
        /// Extension degree m.
        degree: u32,
        /// Irreducible polynomial (with the leading x^m term included).
        modulus: u32,
    },
}

/// Irreducible polynomials over GF(2) for degrees 1..=16 (leading term set).
const IRREDUCIBLE: [u32; 17] = [
    0,       // unused
    0b11,    // x + 1
    0b111,   // x^2 + x + 1
    0b1011,  // x^3 + x + 1
    0b10011, // x^4 + x + 1
    0b100101,
    0b1000011,
    0b10001001,
    0b100011011, // x^8 + x^4 + x^3 + x + 1 (AES polynomial)
    0b1000010001,
    0b10000001001,
    0b100000000101,
    0b1000001010011,
    0b10000000011011,
    0b100010000000011,
    0b1000000000000011,
    0b10001000000001011,
];

fn is_prime(n: u32) -> bool {
    if n < 2 {
        return false;
    }
    if n.is_multiple_of(2) {
        return n == 2;
    }
    let mut d = 3u32;
    while (d as u64) * (d as u64) <= n as u64 {
        if n.is_multiple_of(d) {
            return false;
        }
        d += 2;
    }
    true
}

impl GaloisField {
    /// Creates the field of the given order.
    ///
    /// # Errors
    ///
    /// Returns [`CodingError::UnsupportedFieldOrder`] unless `order` is a
    /// prime below `2^16` or a power of two between 2 and `2^16`.
    pub fn new(order: u64) -> Result<Self, CodingError> {
        if !(2..=65_536).contains(&order) {
            return Err(CodingError::UnsupportedFieldOrder { order });
        }
        let order_u32 = order as u32;
        if order.is_power_of_two() {
            let degree = order.trailing_zeros();
            Ok(GaloisField {
                order: order_u32,
                kind: FieldKind::Binary {
                    degree,
                    modulus: IRREDUCIBLE[degree as usize],
                },
            })
        } else if is_prime(order_u32) {
            Ok(GaloisField {
                order: order_u32,
                kind: FieldKind::Prime,
            })
        } else {
            Err(CodingError::UnsupportedFieldOrder { order })
        }
    }

    /// The field order `q`.
    #[must_use]
    pub fn order(&self) -> u32 {
        self.order
    }

    /// Returns `true` if `x` is a valid element of the field.
    #[must_use]
    pub fn contains(&self, x: u32) -> bool {
        x < self.order
    }

    /// Validates an element.
    ///
    /// # Errors
    ///
    /// Returns [`CodingError::ElementOutOfRange`] if `x ≥ q`.
    pub fn check(&self, x: u32) -> Result<u32, CodingError> {
        if self.contains(x) {
            Ok(x)
        } else {
            Err(CodingError::ElementOutOfRange {
                element: u64::from(x),
                order: u64::from(self.order),
            })
        }
    }

    /// Field addition.
    #[must_use]
    pub fn add(&self, a: u32, b: u32) -> u32 {
        debug_assert!(self.contains(a) && self.contains(b));
        match self.kind {
            FieldKind::Prime => (a + b) % self.order,
            FieldKind::Binary { .. } => a ^ b,
        }
    }

    /// Field subtraction (`a − b`).
    #[must_use]
    pub fn sub(&self, a: u32, b: u32) -> u32 {
        debug_assert!(self.contains(a) && self.contains(b));
        match self.kind {
            FieldKind::Prime => (a + self.order - b) % self.order,
            FieldKind::Binary { .. } => a ^ b,
        }
    }

    /// Additive inverse.
    #[must_use]
    pub fn neg(&self, a: u32) -> u32 {
        self.sub(0, a)
    }

    /// Field multiplication.
    #[must_use]
    pub fn mul(&self, a: u32, b: u32) -> u32 {
        debug_assert!(self.contains(a) && self.contains(b));
        match self.kind {
            FieldKind::Prime => ((u64::from(a) * u64::from(b)) % u64::from(self.order)) as u32,
            FieldKind::Binary { degree, modulus } => {
                // Carry-less (polynomial) multiplication followed by reduction.
                let mut acc: u64 = 0;
                let mut x = u64::from(a);
                let mut y = b;
                while y != 0 {
                    if y & 1 != 0 {
                        acc ^= x;
                    }
                    x <<= 1;
                    y >>= 1;
                }
                // Reduce modulo the irreducible polynomial.
                if acc == 0 {
                    return 0;
                }
                let m = u64::from(modulus);
                let deg = degree;
                let mut bit = 63 - acc.leading_zeros();
                while acc >= (1u64 << deg) {
                    if acc & (1u64 << bit) != 0 {
                        acc ^= m << (bit - deg);
                    }
                    if bit == 0 {
                        break;
                    }
                    bit -= 1;
                }
                acc as u32
            }
        }
    }

    /// Field exponentiation `a^e`.
    #[must_use]
    pub fn pow(&self, a: u32, mut e: u64) -> u32 {
        let mut base = a;
        let mut result = 1u32;
        while e > 0 {
            if e & 1 == 1 {
                result = self.mul(result, base);
            }
            base = self.mul(base, base);
            e >>= 1;
        }
        result
    }

    /// Multiplicative inverse.
    ///
    /// # Errors
    ///
    /// Returns [`CodingError::DivisionByZero`] if `a == 0`.
    pub fn inv(&self, a: u32) -> Result<u32, CodingError> {
        if a == 0 {
            return Err(CodingError::DivisionByZero);
        }
        // a^(q-2) = a^{-1} in any finite field of order q.
        Ok(self.pow(a, u64::from(self.order) - 2))
    }

    /// Field division `a / b`.
    ///
    /// # Errors
    ///
    /// Returns [`CodingError::DivisionByZero`] if `b == 0`.
    pub fn div(&self, a: u32, b: u32) -> Result<u32, CodingError> {
        Ok(self.mul(a, self.inv(b)?))
    }

    /// Samples a uniformly random field element.
    pub fn random_element<R: rand::Rng + ?Sized>(&self, rng: &mut R) -> u32 {
        rng.gen_range(0..self.order)
    }

    /// Samples a uniformly random *non-zero* field element.
    pub fn random_nonzero<R: rand::Rng + ?Sized>(&self, rng: &mut R) -> u32 {
        rng.gen_range(1..self.order)
    }
}

impl core::fmt::Display for GaloisField {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(f, "GF({})", self.order)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_rules() {
        assert!(GaloisField::new(2).is_ok());
        assert!(GaloisField::new(7).is_ok());
        assert!(GaloisField::new(256).is_ok());
        assert!(GaloisField::new(65_536).is_ok());
        assert!(GaloisField::new(1).is_err());
        assert!(GaloisField::new(6).is_err()); // not prime, not power of two
        assert!(GaloisField::new(65_537).is_err()); // too large (even though prime)
        assert!(GaloisField::new(100_000).is_err());
    }

    #[test]
    fn prime_field_arithmetic() {
        let f = GaloisField::new(7).unwrap();
        assert_eq!(f.add(5, 4), 2);
        assert_eq!(f.sub(2, 5), 4);
        assert_eq!(f.mul(3, 5), 1);
        assert_eq!(f.neg(3), 4);
        assert_eq!(f.inv(3).unwrap(), 5);
        assert_eq!(f.div(1, 3).unwrap(), 5);
        assert_eq!(f.pow(3, 6), 1); // Fermat
    }

    #[test]
    fn gf2_is_xor_logic() {
        let f = GaloisField::new(2).unwrap();
        assert_eq!(f.add(1, 1), 0);
        assert_eq!(f.mul(1, 1), 1);
        assert_eq!(f.inv(1).unwrap(), 1);
    }

    #[test]
    fn gf256_known_products() {
        // AES field: 0x53 * 0xCA = 0x01 (known inverse pair).
        let f = GaloisField::new(256).unwrap();
        assert_eq!(f.mul(0x53, 0xCA), 0x01);
        assert_eq!(f.inv(0x53).unwrap(), 0xCA);
        assert_eq!(f.mul(2, 0x80), 0x1B); // x * x^7 = x^8 ≡ x^4+x^3+x+1
    }

    #[test]
    fn division_by_zero_is_error() {
        let f = GaloisField::new(16).unwrap();
        assert_eq!(f.inv(0), Err(CodingError::DivisionByZero));
        assert_eq!(f.div(5, 0), Err(CodingError::DivisionByZero));
    }

    #[test]
    fn element_check() {
        let f = GaloisField::new(5).unwrap();
        assert!(f.check(4).is_ok());
        assert!(f.check(5).is_err());
        assert!(f.contains(0));
        assert!(!f.contains(5));
    }

    fn check_field_axioms(q: u64) {
        let f = GaloisField::new(q).unwrap();
        let n = f.order();
        // Exhaustive for small fields.
        for a in 0..n {
            assert_eq!(f.add(a, 0), a);
            assert_eq!(f.mul(a, 1), a);
            assert_eq!(f.add(a, f.neg(a)), 0);
            if a != 0 {
                assert_eq!(f.mul(a, f.inv(a).unwrap()), 1, "inverse of {a} in GF({q})");
            }
            for b in 0..n {
                assert_eq!(f.add(a, b), f.add(b, a));
                assert_eq!(f.mul(a, b), f.mul(b, a));
                assert_eq!(f.sub(f.add(a, b), b), a);
                for c in 0..n {
                    assert_eq!(f.mul(a, f.add(b, c)), f.add(f.mul(a, b), f.mul(a, c)));
                }
            }
        }
    }

    #[test]
    fn field_axioms_small_prime() {
        check_field_axioms(5);
    }

    #[test]
    fn field_axioms_gf8() {
        check_field_axioms(8);
    }

    #[test]
    fn field_axioms_gf16() {
        check_field_axioms(16);
    }

    #[test]
    fn multiplicative_group_order_gf64() {
        let f = GaloisField::new(64).unwrap();
        for a in 1..f.order() {
            assert_eq!(f.pow(a, 63), 1, "a^63 must be 1 for a = {a}");
        }
    }

    #[test]
    fn random_elements_in_range() {
        use rand::SeedableRng;
        let f = GaloisField::new(64).unwrap();
        let mut rng = rand::rngs::StdRng::seed_from_u64(3);
        for _ in 0..1000 {
            assert!(f.contains(f.random_element(&mut rng)));
            assert_ne!(f.random_nonzero(&mut rng), 0);
        }
    }

    #[test]
    fn display_format() {
        assert_eq!(GaloisField::new(64).unwrap().to_string(), "GF(64)");
    }
}
