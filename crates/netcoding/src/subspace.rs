//! Subspaces of `F_q^K` maintained in reduced row-echelon form.

use crate::{CodingError, CodingVector, GaloisField};
use serde::{Deserialize, Serialize};

/// A subspace `V ⊆ F_q^K`, the *type* of a peer under network coding
/// (Section VIII-B of the paper).
///
/// The subspace is stored as a reduced-row-echelon basis, so equality of
/// subspaces is structural equality of the representation.
///
/// # Examples
///
/// ```
/// use netcoding::{GaloisField, Subspace, CodingVector};
/// let f = GaloisField::new(4).unwrap();
/// let mut v = Subspace::empty(f, 3);
/// assert_eq!(v.dimension(), 0);
/// v.insert(&CodingVector::unit(f, 3, 0)).unwrap();
/// v.insert(&CodingVector::unit(f, 3, 1)).unwrap();
/// assert_eq!(v.dimension(), 2);
/// assert!(!v.is_full());
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Subspace {
    field: GaloisField,
    ambient_dim: usize,
    /// RREF basis rows, sorted by pivot column.
    basis: Vec<Vec<u32>>,
}

impl Subspace {
    /// The zero subspace of `F_q^K`.
    #[must_use]
    pub fn empty(field: GaloisField, ambient_dim: usize) -> Self {
        Subspace {
            field,
            ambient_dim,
            basis: Vec::new(),
        }
    }

    /// The full space `F_q^K` (the type of a peer that can decode the file).
    #[must_use]
    pub fn full(field: GaloisField, ambient_dim: usize) -> Self {
        let basis = (0..ambient_dim)
            .map(|i| {
                let mut row = vec![0; ambient_dim];
                row[i] = 1;
                row
            })
            .collect();
        Subspace {
            field,
            ambient_dim,
            basis,
        }
    }

    /// Builds the span of the given vectors.
    ///
    /// # Errors
    ///
    /// Returns [`CodingError::Mismatch`] if a vector has the wrong length or
    /// field.
    pub fn span(
        field: GaloisField,
        ambient_dim: usize,
        vectors: &[CodingVector],
    ) -> Result<Self, CodingError> {
        let mut s = Subspace::empty(field, ambient_dim);
        for v in vectors {
            s.insert(v)?;
        }
        Ok(s)
    }

    /// The field of the subspace.
    #[must_use]
    pub fn field(&self) -> GaloisField {
        self.field
    }

    /// The ambient dimension `K`.
    #[must_use]
    pub fn ambient_dim(&self) -> usize {
        self.ambient_dim
    }

    /// The dimension of the subspace.
    #[must_use]
    pub fn dimension(&self) -> usize {
        self.basis.len()
    }

    /// Returns `true` if this is the zero subspace.
    #[must_use]
    pub fn is_trivial(&self) -> bool {
        self.basis.is_empty()
    }

    /// Returns `true` if the subspace equals the full ambient space, i.e. the
    /// peer can decode the original file.
    #[must_use]
    pub fn is_full(&self) -> bool {
        self.dimension() == self.ambient_dim
    }

    /// The RREF basis rows.
    #[must_use]
    pub fn basis(&self) -> Vec<CodingVector> {
        self.basis
            .iter()
            .map(|row| {
                CodingVector::from_coeffs(self.field, row.clone()).expect("basis rows are valid")
            })
            .collect()
    }

    /// Reduces `v` against the current basis; returns the residual row.
    fn reduce(&self, v: &CodingVector) -> Vec<u32> {
        let mut row = v.coeffs().to_vec();
        self.reduce_in_place(&mut row);
        row
    }

    /// Reduces a raw coefficient row against the current basis in place.
    fn reduce_in_place(&self, row: &mut [u32]) {
        let f = self.field;
        for b in &self.basis {
            let pivot = b
                .iter()
                .position(|&c| c != 0)
                .expect("basis rows are non-zero");
            let coeff = row[pivot];
            if coeff != 0 {
                // row -= coeff * b  (basis pivots are normalised to 1)
                for (r, &bc) in row.iter_mut().zip(b) {
                    *r = f.sub(*r, f.mul(coeff, bc));
                }
            }
        }
    }

    /// Returns `true` if `v` lies in the subspace.
    #[must_use]
    pub fn contains(&self, v: &CodingVector) -> bool {
        if v.len() != self.ambient_dim || v.field() != self.field {
            return false;
        }
        self.reduce(v).iter().all(|&c| c == 0)
    }

    /// Returns `true` if the coded piece `v` is *useful* to a peer of this
    /// type: adding it would increase the dimension.
    #[must_use]
    pub fn is_useful(&self, v: &CodingVector) -> bool {
        v.len() == self.ambient_dim && v.field() == self.field && !self.contains(v)
    }

    /// Inserts a vector, returning `true` if the dimension increased.
    ///
    /// # Errors
    ///
    /// Returns [`CodingError::Mismatch`] if the vector has the wrong length
    /// or field.
    pub fn insert(&mut self, v: &CodingVector) -> Result<bool, CodingError> {
        if v.field() != self.field {
            return Err(CodingError::Mismatch(
                "vector over a different field".into(),
            ));
        }
        if v.len() != self.ambient_dim {
            return Err(CodingError::Mismatch(format!(
                "vector length {} does not match ambient dimension {}",
                v.len(),
                self.ambient_dim
            )));
        }
        let mut row = self.reduce(v);
        let Some(pivot) = row.iter().position(|&c| c != 0) else {
            return Ok(false);
        };
        // Normalise the pivot to one.
        let f = self.field;
        let inv = f.inv(row[pivot])?;
        for c in &mut row {
            *c = f.mul(*c, inv);
        }
        // Back-substitute into existing rows to keep the basis reduced.
        for b in &mut self.basis {
            let coeff = b[pivot];
            if coeff != 0 {
                for (bc, &rc) in b.iter_mut().zip(&row) {
                    *bc = f.sub(*bc, f.mul(coeff, rc));
                }
            }
        }
        // Insert keeping rows ordered by pivot column.
        let pos = self
            .basis
            .iter()
            .position(|b| b.iter().position(|&c| c != 0).expect("non-zero rows") > pivot)
            .unwrap_or(self.basis.len());
        self.basis.insert(pos, row);
        Ok(true)
    }

    /// Reduces the raw coefficient row `row` against the basis and, if it is
    /// independent, absorbs it into the subspace; returns `true` when the
    /// dimension increased. The allocation-free counterpart of
    /// [`Subspace::insert`] used by the coded simulation kernel's hot path:
    /// `row` is reduced *in place*, and on success its buffer is moved into
    /// the basis (leaving `row` empty), so a useless piece costs no
    /// allocation at all.
    ///
    /// Coefficients must already be valid field elements (the samplers in
    /// this crate only produce such rows); this is checked in debug builds.
    ///
    /// # Errors
    ///
    /// Returns [`CodingError::Mismatch`] if `row` does not have the ambient
    /// length.
    pub fn absorb(&mut self, row: &mut Vec<u32>) -> Result<bool, CodingError> {
        if row.len() != self.ambient_dim {
            return Err(CodingError::Mismatch(format!(
                "row length {} does not match ambient dimension {}",
                row.len(),
                self.ambient_dim
            )));
        }
        debug_assert!(row.iter().all(|&c| self.field.contains(c)));
        self.reduce_in_place(row);
        let Some(pivot) = row.iter().position(|&c| c != 0) else {
            return Ok(false);
        };
        let f = self.field;
        let inv = f.inv(row[pivot])?;
        for c in row.iter_mut() {
            *c = f.mul(*c, inv);
        }
        for b in &mut self.basis {
            let coeff = b[pivot];
            if coeff != 0 {
                for (bc, &rc) in b.iter_mut().zip(row.iter()) {
                    *bc = f.sub(*bc, f.mul(coeff, rc));
                }
            }
        }
        let pos = self
            .basis
            .iter()
            .position(|b| b.iter().position(|&c| c != 0).expect("non-zero rows") > pivot)
            .unwrap_or(self.basis.len());
        self.basis.insert(pos, std::mem::take(row));
        Ok(true)
    }

    /// Writes a uniformly random vector of the subspace (a random linear
    /// combination of the basis with uniform coefficients) into `out`
    /// without allocating — the coded piece an uploading peer sends, in the
    /// form [`Subspace::absorb`] consumes. Produces the zero row for the
    /// trivial subspace.
    pub fn random_combination_into<R: rand::Rng + ?Sized>(&self, rng: &mut R, out: &mut Vec<u32>) {
        out.clear();
        out.resize(self.ambient_dim, 0);
        let f = self.field;
        for b in &self.basis {
            let coeff = f.random_element(rng);
            if coeff != 0 {
                for (o, &bc) in out.iter_mut().zip(b) {
                    *o = f.add(*o, f.mul(coeff, bc));
                }
            }
        }
    }

    /// Returns the subspace sum `self + other` (the span of the union).
    ///
    /// # Errors
    ///
    /// Returns [`CodingError::Mismatch`] for incompatible operands.
    pub fn sum(&self, other: &Self) -> Result<Self, CodingError> {
        if self.field != other.field || self.ambient_dim != other.ambient_dim {
            return Err(CodingError::Mismatch(
                "subspaces in different ambient spaces".into(),
            ));
        }
        let mut out = self.clone();
        for b in other.basis() {
            out.insert(&b)?;
        }
        Ok(out)
    }

    /// Dimension of the intersection `self ∩ other`, via
    /// `dim(A) + dim(B) − dim(A + B)`.
    ///
    /// # Errors
    ///
    /// Returns [`CodingError::Mismatch`] for incompatible operands.
    pub fn intersection_dim(&self, other: &Self) -> Result<usize, CodingError> {
        let sum = self.sum(other)?;
        Ok(self.dimension() + other.dimension() - sum.dimension())
    }

    /// Returns `true` if `self ⊆ other`.
    #[must_use]
    pub fn is_subspace_of(&self, other: &Self) -> bool {
        self.basis().iter().all(|b| other.contains(b))
    }

    /// Returns `true` if a peer of type `self` can possibly help a peer of
    /// type `other`, i.e. `self ⊄ other`.
    #[must_use]
    pub fn can_help(&self, other: &Self) -> bool {
        !self.is_subspace_of(other)
    }

    /// Samples a uniformly random vector of the subspace (a random linear
    /// combination of the basis with uniform coefficients) — the coded piece
    /// an uploading peer sends.
    ///
    /// Returns the zero vector for the trivial subspace.
    pub fn random_vector<R: rand::Rng + ?Sized>(&self, rng: &mut R) -> CodingVector {
        let mut acc = CodingVector::zero(self.field, self.ambient_dim);
        for b in &self.basis {
            let coeff = self.field.random_element(rng);
            let bv = CodingVector::from_coeffs(self.field, b.clone()).expect("basis rows valid");
            acc = acc.add_scaled(&bv, coeff).expect("compatible");
        }
        acc
    }

    /// Probability that a uniformly random vector of `uploader` is useful to
    /// `self`, i.e. `1 − q^{dim(self ∩ uploader) − dim(uploader)}`
    /// (Section VIII-B).
    ///
    /// # Errors
    ///
    /// Returns [`CodingError::Mismatch`] for incompatible operands.
    pub fn useful_probability_from(&self, uploader: &Self) -> Result<f64, CodingError> {
        if uploader.is_trivial() {
            return Ok(0.0);
        }
        let inter = self.intersection_dim(uploader)? as i64;
        let q = f64::from(self.field.order());
        Ok(1.0 - q.powi((inter - uploader.dimension() as i64) as i32))
    }
}

impl core::fmt::Display for Subspace {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(
            f,
            "<dim {} subspace of {}^{}>",
            self.dimension(),
            self.field,
            self.ambient_dim
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn gf(q: u64) -> GaloisField {
        GaloisField::new(q).unwrap()
    }

    #[test]
    fn empty_and_full() {
        let f = gf(4);
        let e = Subspace::empty(f, 3);
        assert_eq!(e.dimension(), 0);
        assert!(e.is_trivial());
        assert!(!e.is_full());
        let full = Subspace::full(f, 3);
        assert_eq!(full.dimension(), 3);
        assert!(full.is_full());
        assert!(e.is_subspace_of(&full));
        assert!(!full.is_subspace_of(&e));
    }

    #[test]
    fn insert_increases_dimension_only_for_independent_vectors() {
        let f = gf(7);
        let mut s = Subspace::empty(f, 3);
        let v1 = CodingVector::from_coeffs(f, vec![1, 2, 3]).unwrap();
        let v2 = CodingVector::from_coeffs(f, vec![2, 4, 6]).unwrap(); // 2*v1
        let v3 = CodingVector::from_coeffs(f, vec![0, 1, 0]).unwrap();
        assert!(s.insert(&v1).unwrap());
        assert!(!s.insert(&v2).unwrap());
        assert_eq!(s.dimension(), 1);
        assert!(s.insert(&v3).unwrap());
        assert_eq!(s.dimension(), 2);
        assert!(s.contains(&v2));
        assert!(!s.is_useful(&v2));
        assert!(s.is_useful(&CodingVector::unit(f, 3, 2)));
    }

    #[test]
    fn zero_vector_never_useful() {
        let f = gf(4);
        let mut s = Subspace::empty(f, 3);
        let z = CodingVector::zero(f, 3);
        assert!(!s.is_useful(&z));
        assert!(!s.insert(&z).unwrap());
        assert_eq!(s.dimension(), 0);
    }

    #[test]
    fn basis_is_reduced_and_within_space() {
        let f = gf(8);
        let mut rng = StdRng::seed_from_u64(1);
        let mut s = Subspace::empty(f, 5);
        for _ in 0..3 {
            let v = CodingVector::random(f, 5, &mut rng);
            let _ = s.insert(&v).unwrap();
        }
        for b in s.basis() {
            assert!(s.contains(&b));
            // pivot coefficient is one
            let lead = b.leading_index().unwrap();
            assert_eq!(b.coeffs()[lead], 1);
        }
    }

    #[test]
    fn sum_and_intersection_dims() {
        let f = gf(5);
        let a = Subspace::span(
            f,
            4,
            &[CodingVector::unit(f, 4, 0), CodingVector::unit(f, 4, 1)],
        )
        .unwrap();
        let b = Subspace::span(
            f,
            4,
            &[CodingVector::unit(f, 4, 1), CodingVector::unit(f, 4, 2)],
        )
        .unwrap();
        let sum = a.sum(&b).unwrap();
        assert_eq!(sum.dimension(), 3);
        assert_eq!(a.intersection_dim(&b).unwrap(), 1);
        assert!(a.can_help(&b));
        assert!(b.can_help(&a));
        assert!(!a.can_help(&a.clone()));
    }

    #[test]
    fn random_vector_lies_in_subspace() {
        let f = gf(16);
        let mut rng = StdRng::seed_from_u64(2);
        let s = Subspace::span(
            f,
            6,
            &[CodingVector::unit(f, 6, 1), CodingVector::unit(f, 6, 4)],
        )
        .unwrap();
        for _ in 0..100 {
            let v = s.random_vector(&mut rng);
            assert!(s.contains(&v));
        }
        let t = Subspace::empty(f, 6);
        assert!(t.random_vector(&mut rng).is_zero());
    }

    #[test]
    fn useful_probability_matches_paper_formula() {
        let f = gf(4);
        // A = span(e0), B = span(e0, e1): P(useful from B to A) = 1 - q^{1-2} = 1 - 1/4.
        let a = Subspace::span(f, 3, &[CodingVector::unit(f, 3, 0)]).unwrap();
        let b = Subspace::span(
            f,
            3,
            &[CodingVector::unit(f, 3, 0), CodingVector::unit(f, 3, 1)],
        )
        .unwrap();
        let p = a.useful_probability_from(&b).unwrap();
        assert!((p - 0.75).abs() < 1e-12);
        // Uploads from a subspace of A are never useful to A.
        let p = b.useful_probability_from(&a).unwrap();
        assert!((p - 0.0).abs() < 1e-12);
        // Trivial uploader can never help.
        assert_eq!(
            a.useful_probability_from(&Subspace::empty(f, 3)).unwrap(),
            0.0
        );
    }

    #[test]
    fn useful_probability_empirically_validated() {
        let f = gf(4);
        let mut rng = StdRng::seed_from_u64(3);
        let a = Subspace::span(f, 3, &[CodingVector::unit(f, 3, 0)]).unwrap();
        let b = Subspace::full(f, 3);
        let p_theory = a.useful_probability_from(&b).unwrap();
        let trials = 20_000;
        let mut useful = 0;
        for _ in 0..trials {
            if a.is_useful(&b.random_vector(&mut rng)) {
                useful += 1;
            }
        }
        let p_emp = useful as f64 / trials as f64;
        assert!((p_emp - p_theory).abs() < 0.02, "{p_emp} vs {p_theory}");
    }

    #[test]
    fn mismatch_errors() {
        let f = gf(4);
        let g = gf(8);
        let mut s = Subspace::empty(f, 3);
        assert!(s.insert(&CodingVector::zero(g, 3)).is_err());
        assert!(s.insert(&CodingVector::zero(f, 4)).is_err());
        let t = Subspace::empty(f, 4);
        assert!(s.sum(&t).is_err());
        assert!(s.intersection_dim(&t).is_err());
        assert!(!s.contains(&CodingVector::zero(f, 4)));
    }

    #[test]
    fn span_of_random_vectors_reaches_full_dimension() {
        // With q = 16 and enough random vectors the span is full w.h.p.
        let f = gf(16);
        let mut rng = StdRng::seed_from_u64(4);
        let vectors: Vec<CodingVector> = (0..10)
            .map(|_| CodingVector::random(f, 4, &mut rng))
            .collect();
        let s = Subspace::span(f, 4, &vectors).unwrap();
        assert!(s.is_full());
        assert_eq!(s, Subspace::full(f, 4));
    }

    #[test]
    fn display_format() {
        let f = gf(4);
        let s = Subspace::full(f, 2);
        assert_eq!(s.to_string(), "<dim 2 subspace of GF(4)^2>");
    }

    #[test]
    fn absorb_agrees_with_insert() {
        let f = gf(8);
        let mut rng = StdRng::seed_from_u64(7);
        let mut via_insert = Subspace::empty(f, 5);
        let mut via_absorb = Subspace::empty(f, 5);
        for _ in 0..20 {
            let v = CodingVector::random(f, 5, &mut rng);
            let grew = via_insert.insert(&v).unwrap();
            let mut row = v.coeffs().to_vec();
            assert_eq!(via_absorb.absorb(&mut row).unwrap(), grew);
            if grew {
                assert!(row.is_empty(), "the absorbed buffer moves into the basis");
            }
            assert_eq!(via_insert, via_absorb);
        }
        assert!(via_absorb.is_full());
        let mut short = vec![0u32; 3];
        assert!(via_absorb.absorb(&mut short).is_err());
    }

    #[test]
    fn random_combination_into_matches_random_vector_support() {
        let f = gf(4);
        let mut rng = StdRng::seed_from_u64(8);
        let s = Subspace::span(
            f,
            4,
            &[CodingVector::unit(f, 4, 0), CodingVector::unit(f, 4, 2)],
        )
        .unwrap();
        let mut row = Vec::new();
        let mut seen = std::collections::HashSet::new();
        for _ in 0..400 {
            s.random_combination_into(&mut rng, &mut row);
            let v = CodingVector::from_coeffs(f, row.clone()).unwrap();
            assert!(s.contains(&v));
            seen.insert(row.clone());
        }
        // |S| = q^dim = 16 members, all reachable.
        assert_eq!(seen.len(), 16);
        // Trivial subspace → the zero row.
        Subspace::empty(f, 4).random_combination_into(&mut rng, &mut row);
        assert!(row.iter().all(|&c| c == 0));
    }
}
