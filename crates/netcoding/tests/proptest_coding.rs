//! Property-based tests for finite-field and subspace invariants.

use netcoding::{CodingVector, GaloisField, Subspace};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

const FIELD_ORDERS: [u64; 6] = [2, 3, 4, 8, 16, 251];

fn arb_field() -> impl Strategy<Value = GaloisField> {
    (0usize..FIELD_ORDERS.len()).prop_map(|i| GaloisField::new(FIELD_ORDERS[i]).unwrap())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn field_axioms_hold_on_random_elements(field in arb_field(), seed in any::<u64>()) {
        let mut rng = StdRng::seed_from_u64(seed);
        let a = field.random_element(&mut rng);
        let b = field.random_element(&mut rng);
        let c = field.random_element(&mut rng);
        // commutativity, associativity, distributivity
        prop_assert_eq!(field.add(a, b), field.add(b, a));
        prop_assert_eq!(field.mul(a, b), field.mul(b, a));
        prop_assert_eq!(field.add(field.add(a, b), c), field.add(a, field.add(b, c)));
        prop_assert_eq!(field.mul(field.mul(a, b), c), field.mul(a, field.mul(b, c)));
        prop_assert_eq!(field.mul(a, field.add(b, c)), field.add(field.mul(a, b), field.mul(a, c)));
        // identities and inverses
        prop_assert_eq!(field.add(a, 0), a);
        prop_assert_eq!(field.mul(a, 1), a);
        prop_assert_eq!(field.add(a, field.neg(a)), 0);
        if a != 0 {
            prop_assert_eq!(field.mul(a, field.inv(a).unwrap()), 1);
        }
        // subtraction / division invert addition / multiplication
        prop_assert_eq!(field.sub(field.add(a, b), b), a);
        if b != 0 {
            prop_assert_eq!(field.div(field.mul(a, b), b).unwrap(), a);
        }
    }

    #[test]
    fn vector_space_axioms(field in arb_field(), seed in any::<u64>(), len in 1usize..8) {
        let mut rng = StdRng::seed_from_u64(seed);
        let u = CodingVector::random(field, len, &mut rng);
        let v = CodingVector::random(field, len, &mut rng);
        let a = field.random_element(&mut rng);
        // commutativity of vector addition
        prop_assert_eq!(u.add(&v).unwrap(), v.add(&u).unwrap());
        // scaling distributes over vector addition
        let lhs = u.add(&v).unwrap().scale(a).unwrap();
        let rhs = u.scale(a).unwrap().add(&v.scale(a).unwrap()).unwrap();
        prop_assert_eq!(lhs, rhs);
        // zero and one
        prop_assert!(u.scale(0).unwrap().is_zero());
        prop_assert_eq!(u.scale(1).unwrap(), u);
    }

    #[test]
    fn subspace_dimension_laws(field in arb_field(), seed in any::<u64>(), dim in 1usize..6) {
        let mut rng = StdRng::seed_from_u64(seed);
        let ambient = 6;
        let vectors: Vec<CodingVector> = (0..dim).map(|_| CodingVector::random(field, ambient, &mut rng)).collect();
        let s = Subspace::span(field, ambient, &vectors).unwrap();
        // dimension bounded by both the number of generators and the ambient dim
        prop_assert!(s.dimension() <= dim.min(ambient));
        // every generator is contained
        for v in &vectors {
            prop_assert!(s.contains(v));
            prop_assert!(!s.is_useful(v));
        }
        // sum with itself is itself; intersection with itself has same dim
        prop_assert_eq!(s.sum(&s).unwrap().dimension(), s.dimension());
        prop_assert_eq!(s.intersection_dim(&s).unwrap(), s.dimension());
        // subspace of the full space
        let full = Subspace::full(field, ambient);
        prop_assert!(s.is_subspace_of(&full));
        // Grassmann bound for a second random subspace
        let t = Subspace::span(
            field,
            ambient,
            &(0..dim).map(|_| CodingVector::random(field, ambient, &mut rng)).collect::<Vec<_>>(),
        ).unwrap();
        let sum = s.sum(&t).unwrap();
        let inter = s.intersection_dim(&t).unwrap();
        prop_assert_eq!(sum.dimension() + inter, s.dimension() + t.dimension());
        prop_assert!(sum.dimension() <= ambient);
    }

    #[test]
    fn inserting_subspace_vectors_never_grows_dimension(field in arb_field(), seed in any::<u64>()) {
        let mut rng = StdRng::seed_from_u64(seed);
        let ambient = 5;
        let vectors: Vec<CodingVector> = (0..3).map(|_| CodingVector::random(field, ambient, &mut rng)).collect();
        let mut s = Subspace::span(field, ambient, &vectors).unwrap();
        let d = s.dimension();
        for _ in 0..10 {
            let v = s.random_vector(&mut rng);
            prop_assert!(s.contains(&v));
            prop_assert!(!s.insert(&v).unwrap());
        }
        prop_assert_eq!(s.dimension(), d);
    }

    #[test]
    fn useful_probability_in_unit_interval(field in arb_field(), seed in any::<u64>()) {
        let mut rng = StdRng::seed_from_u64(seed);
        let ambient = 4;
        let a = Subspace::span(field, ambient, &[CodingVector::random(field, ambient, &mut rng)]).unwrap();
        let b = Subspace::span(
            field,
            ambient,
            &(0..2).map(|_| CodingVector::random(field, ambient, &mut rng)).collect::<Vec<_>>(),
        ).unwrap();
        let p = a.useful_probability_from(&b).unwrap();
        prop_assert!((0.0..=1.0).contains(&p));
        // If b cannot help a, the probability must be zero; if it can, at least 1 - 1/q.
        if b.can_help(&a) {
            let q = f64::from(field.order());
            prop_assert!(p >= 1.0 - 1.0 / q - 1e-12, "p = {p}");
        } else {
            prop_assert!(p.abs() < 1e-12);
        }
    }
}
