//! Property-based tests for finite-field and subspace invariants.

use netcoding::{CodingVector, GaloisField, Subspace};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

const FIELD_ORDERS: [u64; 6] = [2, 3, 4, 8, 16, 251];

fn arb_field() -> impl Strategy<Value = GaloisField> {
    (0usize..FIELD_ORDERS.len()).prop_map(|i| GaloisField::new(FIELD_ORDERS[i]).unwrap())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn field_axioms_hold_on_random_elements(field in arb_field(), seed in any::<u64>()) {
        let mut rng = StdRng::seed_from_u64(seed);
        let a = field.random_element(&mut rng);
        let b = field.random_element(&mut rng);
        let c = field.random_element(&mut rng);
        // commutativity, associativity, distributivity
        prop_assert_eq!(field.add(a, b), field.add(b, a));
        prop_assert_eq!(field.mul(a, b), field.mul(b, a));
        prop_assert_eq!(field.add(field.add(a, b), c), field.add(a, field.add(b, c)));
        prop_assert_eq!(field.mul(field.mul(a, b), c), field.mul(a, field.mul(b, c)));
        prop_assert_eq!(field.mul(a, field.add(b, c)), field.add(field.mul(a, b), field.mul(a, c)));
        // identities and inverses
        prop_assert_eq!(field.add(a, 0), a);
        prop_assert_eq!(field.mul(a, 1), a);
        prop_assert_eq!(field.add(a, field.neg(a)), 0);
        if a != 0 {
            prop_assert_eq!(field.mul(a, field.inv(a).unwrap()), 1);
        }
        // subtraction / division invert addition / multiplication
        prop_assert_eq!(field.sub(field.add(a, b), b), a);
        if b != 0 {
            prop_assert_eq!(field.div(field.mul(a, b), b).unwrap(), a);
        }
    }

    #[test]
    fn vector_space_axioms(field in arb_field(), seed in any::<u64>(), len in 1usize..8) {
        let mut rng = StdRng::seed_from_u64(seed);
        let u = CodingVector::random(field, len, &mut rng);
        let v = CodingVector::random(field, len, &mut rng);
        let a = field.random_element(&mut rng);
        // commutativity of vector addition
        prop_assert_eq!(u.add(&v).unwrap(), v.add(&u).unwrap());
        // scaling distributes over vector addition
        let lhs = u.add(&v).unwrap().scale(a).unwrap();
        let rhs = u.scale(a).unwrap().add(&v.scale(a).unwrap()).unwrap();
        prop_assert_eq!(lhs, rhs);
        // zero and one
        prop_assert!(u.scale(0).unwrap().is_zero());
        prop_assert_eq!(u.scale(1).unwrap(), u);
    }

    #[test]
    fn subspace_dimension_laws(field in arb_field(), seed in any::<u64>(), dim in 1usize..6) {
        let mut rng = StdRng::seed_from_u64(seed);
        let ambient = 6;
        let vectors: Vec<CodingVector> = (0..dim).map(|_| CodingVector::random(field, ambient, &mut rng)).collect();
        let s = Subspace::span(field, ambient, &vectors).unwrap();
        // dimension bounded by both the number of generators and the ambient dim
        prop_assert!(s.dimension() <= dim.min(ambient));
        // every generator is contained
        for v in &vectors {
            prop_assert!(s.contains(v));
            prop_assert!(!s.is_useful(v));
        }
        // sum with itself is itself; intersection with itself has same dim
        prop_assert_eq!(s.sum(&s).unwrap().dimension(), s.dimension());
        prop_assert_eq!(s.intersection_dim(&s).unwrap(), s.dimension());
        // subspace of the full space
        let full = Subspace::full(field, ambient);
        prop_assert!(s.is_subspace_of(&full));
        // Grassmann bound for a second random subspace
        let t = Subspace::span(
            field,
            ambient,
            &(0..dim).map(|_| CodingVector::random(field, ambient, &mut rng)).collect::<Vec<_>>(),
        ).unwrap();
        let sum = s.sum(&t).unwrap();
        let inter = s.intersection_dim(&t).unwrap();
        prop_assert_eq!(sum.dimension() + inter, s.dimension() + t.dimension());
        prop_assert!(sum.dimension() <= ambient);
    }

    #[test]
    fn inserting_subspace_vectors_never_grows_dimension(field in arb_field(), seed in any::<u64>()) {
        let mut rng = StdRng::seed_from_u64(seed);
        let ambient = 5;
        let vectors: Vec<CodingVector> = (0..3).map(|_| CodingVector::random(field, ambient, &mut rng)).collect();
        let mut s = Subspace::span(field, ambient, &vectors).unwrap();
        let d = s.dimension();
        for _ in 0..10 {
            let v = s.random_vector(&mut rng);
            prop_assert!(s.contains(&v));
            prop_assert!(!s.insert(&v).unwrap());
        }
        prop_assert_eq!(s.dimension(), d);
    }

    #[test]
    fn rref_invariants_survive_random_insert_churn(field in arb_field(), seed in any::<u64>(), inserts in 1usize..24) {
        // The coded kernel's peer state is a Subspace updated by thousands
        // of incremental inserts; this pins the representation invariants
        // that updates must preserve: the dimension never decreases and
        // never exceeds K, and the basis stays in reduced row-echelon form
        // (strictly increasing pivot columns, unit pivots, pivot columns
        // cleared in every other row).
        let mut rng = StdRng::seed_from_u64(seed);
        let ambient = 5;
        let mut s = Subspace::empty(field, ambient);
        let mut prev_dim = 0;
        for step in 0..inserts {
            // Alternate independent-looking random vectors with vectors
            // already in the span (via random_vector), mimicking churn.
            let grew = if step % 3 == 2 && !s.is_trivial() {
                let v = s.random_vector(&mut rng);
                let grew = s.insert(&v).unwrap();
                prop_assert!(!grew, "span members never grow the span");
                grew
            } else {
                let mut row: Vec<u32> = (0..ambient).map(|_| field.random_element(&mut rng)).collect();
                let before = s.dimension();
                let grew = s.absorb(&mut row).unwrap();
                prop_assert_eq!(s.dimension(), before + usize::from(grew));
                grew
            };
            let _ = grew;
            // Dimension is monotone and bounded.
            prop_assert!(s.dimension() >= prev_dim);
            prop_assert!(s.dimension() <= ambient);
            prev_dim = s.dimension();
            // RREF structure of the basis.
            let basis = s.basis();
            let mut last_pivot = None;
            for b in &basis {
                let pivot = b.leading_index().expect("basis rows are non-zero");
                if let Some(prev) = last_pivot {
                    prop_assert!(pivot > prev, "pivot columns strictly increase");
                }
                last_pivot = Some(pivot);
                prop_assert_eq!(b.coeffs()[pivot], 1, "pivots are normalised");
                for other in &basis {
                    if other != b {
                        prop_assert_eq!(other.coeffs()[pivot], 0, "pivot columns are cleared");
                    }
                }
            }
            // Membership is closed under addition and scaling.
            if !s.is_trivial() {
                let u = s.random_vector(&mut rng);
                let v = s.random_vector(&mut rng);
                prop_assert!(s.contains(&u.add(&v).unwrap()));
                prop_assert!(s.contains(&u.scale(field.random_element(&mut rng)).unwrap()));
            }
        }
    }

    #[test]
    fn subspace_agrees_with_brute_force_enumeration(qi in 0usize..2, seed in any::<u64>(), generators in 1usize..4) {
        // At tiny (q, K) the whole vector space is enumerable: the RREF
        // subspace must agree vector-for-vector with the brute-force span,
        // sums must match brute-force unions, and sampling must be supported
        // exactly on the span.
        let field = GaloisField::new([2u64, 3][qi]).unwrap();
        let q = field.order();
        let k = 3usize;
        let mut rng = StdRng::seed_from_u64(seed);
        let gens: Vec<CodingVector> = (0..generators)
            .map(|_| CodingVector::random(field, k, &mut rng))
            .collect();
        let s = Subspace::span(field, k, &gens).unwrap();

        // Brute-force span: every linear combination of the generators.
        let mut combos = std::collections::HashSet::new();
        let m = gens.len();
        for mut code in 0..(q as u64).pow(m as u32) {
            let mut acc = CodingVector::zero(field, k);
            for g in &gens {
                let coeff = (code % u64::from(q)) as u32;
                code /= u64::from(q);
                acc = acc.add_scaled(g, coeff).unwrap();
            }
            combos.insert(acc.coeffs().to_vec());
        }
        prop_assert_eq!(combos.len() as u64, (u64::from(q)).pow(s.dimension() as u32),
            "|span| = q^dim");

        // Membership agrees with enumeration over the whole ambient space.
        for mut code in 0..(q as u64).pow(k as u32) {
            let mut coeffs = Vec::with_capacity(k);
            for _ in 0..k {
                coeffs.push((code % u64::from(q)) as u32);
                code /= u64::from(q);
            }
            let v = CodingVector::from_coeffs(field, coeffs.clone()).unwrap();
            prop_assert_eq!(s.contains(&v), combos.contains(&coeffs));
        }

        // The sum with a second subspace matches the brute-force span of the
        // pooled generators.
        let extra = CodingVector::random(field, k, &mut rng);
        let t = Subspace::span(field, k, std::slice::from_ref(&extra)).unwrap();
        let sum = s.sum(&t).unwrap();
        let mut pooled = gens.clone();
        pooled.push(extra);
        let pooled_span = Subspace::span(field, k, &pooled).unwrap();
        prop_assert_eq!(&sum, &pooled_span);

        // Sampling is supported exactly on the span (coupon-collect it).
        let mut seen = std::collections::HashSet::new();
        for _ in 0..600 {
            let v = s.random_vector(&mut rng);
            prop_assert!(combos.contains(v.coeffs()), "samples stay in the span");
            seen.insert(v.coeffs().to_vec());
        }
        prop_assert_eq!(seen.len(), combos.len(), "sampling reaches every member");
    }

    #[test]
    fn useful_probability_in_unit_interval(field in arb_field(), seed in any::<u64>()) {
        let mut rng = StdRng::seed_from_u64(seed);
        let ambient = 4;
        let a = Subspace::span(field, ambient, &[CodingVector::random(field, ambient, &mut rng)]).unwrap();
        let b = Subspace::span(
            field,
            ambient,
            &(0..2).map(|_| CodingVector::random(field, ambient, &mut rng)).collect::<Vec<_>>(),
        ).unwrap();
        let p = a.useful_probability_from(&b).unwrap();
        prop_assert!((0.0..=1.0).contains(&p));
        // If b cannot help a, the probability must be zero; if it can, at least 1 - 1/q.
        if b.can_help(&a) {
            let q = f64::from(field.order());
            prop_assert!(p >= 1.0 - 1.0 / q - 1e-12, "p = {p}");
        } else {
            prop_assert!(p.abs() < 1e-12);
        }
    }
}
