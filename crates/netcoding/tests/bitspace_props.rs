//! Property-based differential tests of the bitsliced GF(2) subspace
//! against the field-generic RREF `Subspace`.
//!
//! `BitSubspace` is the coded-turbo kernel's peer state: packed `u64` rows,
//! XOR reduction, popcount ranks. Any divergence from `Subspace` over
//! `GF(2)` is a kernel correctness bug, so every test here drives both
//! representations with the *same* row sequence and demands they agree on
//! rank, membership, and the RREF basis itself (RREF is canonical, so the
//! row sets must be identical — not merely equivalent). Tiny ambient
//! dimensions are additionally checked against brute-force span
//! enumeration, and `random_combination_into` is coupon-collected to pin
//! that sampling is uniform over the whole span.

use netcoding::{BitSubspace, CodingVector, GaloisField, Subspace};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::{HashMap, HashSet};

/// Packs a generic GF(2) vector into bitsliced words.
fn pack(v: &CodingVector, words_per_row: usize) -> Vec<u64> {
    let mut row = vec![0u64; words_per_row];
    for (i, &c) in v.coeffs().iter().enumerate() {
        assert!(c < 2, "GF(2) coefficients are bits");
        row[i / 64] |= u64::from(c) << (i % 64);
    }
    row
}

/// Unpacks bitsliced words into a generic GF(2) vector of length `k`.
fn unpack(field: GaloisField, row: &[u64], k: usize) -> CodingVector {
    let coeffs: Vec<u32> = (0..k)
        .map(|i| ((row[i / 64] >> (i % 64)) & 1) as u32)
        .collect();
    CodingVector::from_coeffs(field, coeffs).expect("valid GF(2) vector")
}

/// Draws a uniform ambient GF(2) row as packed words.
fn random_row(rng: &mut StdRng, k: usize) -> Vec<u64> {
    let words = k.div_ceil(64);
    let mut row: Vec<u64> = (0..words).map(|_| rng.gen()).collect();
    let tail = k % 64;
    if tail != 0 {
        row[words - 1] &= (1u64 << tail) - 1;
    }
    row
}

/// Asserts the two representations agree on rank, membership of random
/// probes, and the exact RREF row set.
fn assert_agree(bit: &BitSubspace, generic: &Subspace, rng: &mut StdRng, k: usize) {
    let field = generic.field();
    assert_eq!(bit.dimension(), generic.dimension(), "rank diverged");
    assert_eq!(bit.is_trivial(), generic.is_trivial());
    assert_eq!(bit.is_full(), generic.is_full());
    // RREF is canonical: the basis row SETS must be identical.
    let bit_rows: HashSet<Vec<u64>> = bit.basis_rows().map(<[u64]>::to_vec).collect();
    let generic_rows: HashSet<Vec<u64>> = generic
        .basis()
        .iter()
        .map(|v| pack(v, bit.words_per_row()))
        .collect();
    assert_eq!(bit_rows, generic_rows, "RREF bases diverged");
    // Membership agreement on random probes and on span members.
    for _ in 0..8 {
        let probe = random_row(rng, k);
        assert_eq!(
            bit.contains(&probe),
            generic.contains(&unpack(field, &probe, k)),
            "membership diverged on {probe:?}"
        );
    }
    if !bit.is_trivial() {
        let mut member = Vec::new();
        bit.random_combination_into(rng, &mut member);
        assert!(bit.contains(&member));
        assert!(generic.contains(&unpack(field, &member, k)));
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn absorb_churn_agrees_with_generic_subspace(k in 1usize..=16, seed in any::<u64>(), steps in 1usize..32) {
        let field = GaloisField::new(2).unwrap();
        let mut rng = StdRng::seed_from_u64(seed);
        let mut bit = BitSubspace::empty(k);
        let mut generic = Subspace::empty(field, k);
        for step in 0..steps {
            // Alternate fresh uniform rows, unit inserts, and re-inserted
            // span members — the three row sources the kernel feeds it.
            match step % 4 {
                3 if !bit.is_trivial() => {
                    let mut member = Vec::new();
                    bit.random_combination_into(&mut rng, &mut member);
                    let mut coeffs: Vec<u32> =
                        unpack(field, &member, k).coeffs().to_vec();
                    let grew_generic = generic.absorb(&mut coeffs).unwrap();
                    prop_assert!(!bit.absorb(&mut member), "span members never grow the span");
                    prop_assert!(!grew_generic);
                }
                2 => {
                    let unit = (seed as usize).wrapping_add(step) % k;
                    let grew_bit = bit.insert_unit(unit);
                    let grew_generic = generic
                        .insert(&CodingVector::unit(field, k, unit))
                        .unwrap();
                    prop_assert_eq!(grew_bit, grew_generic, "unit insert diverged");
                }
                _ => {
                    let mut row = random_row(&mut rng, k);
                    let mut coeffs: Vec<u32> = unpack(field, &row, k).coeffs().to_vec();
                    let grew_bit = bit.absorb(&mut row);
                    let grew_generic = generic.absorb(&mut coeffs).unwrap();
                    prop_assert_eq!(grew_bit, grew_generic, "absorb diverged");
                    if grew_bit {
                        // On success `absorb` leaves the inserted RREF row in
                        // place; it must be a basis row of both.
                        prop_assert!(bit.contains(&row));
                        prop_assert!(generic.contains(&unpack(field, &row, k)));
                    }
                }
            }
            let mut probe_rng = StdRng::seed_from_u64(seed ^ (step as u64) << 17);
            assert_agree(&bit, &generic, &mut probe_rng, k);
        }
    }

    #[test]
    fn multiword_rows_agree_with_generic_subspace(seed in any::<u64>(), steps in 1usize..24) {
        // Ambient dimension 70 forces two-word rows: word-boundary pivot
        // arithmetic and tail masking run through the same differential.
        let k = 70;
        let field = GaloisField::new(2).unwrap();
        let mut rng = StdRng::seed_from_u64(seed);
        let mut bit = BitSubspace::empty(k);
        prop_assert_eq!(bit.words_per_row(), 2);
        let mut generic = Subspace::empty(field, k);
        for _ in 0..steps {
            let mut row = random_row(&mut rng, k);
            let mut coeffs: Vec<u32> = unpack(field, &row, k).coeffs().to_vec();
            prop_assert_eq!(bit.absorb(&mut row), generic.absorb(&mut coeffs).unwrap());
        }
        let mut probe_rng = StdRng::seed_from_u64(seed ^ 0xABCD);
        assert_agree(&bit, &generic, &mut probe_rng, k);
    }

    #[test]
    fn set_units_equals_absorbing_unit_rows(k in 1usize..=16, bits in any::<u64>()) {
        // `set_units` is the materialization fast path for unit-lazy peers:
        // it must construct exactly the subspace reached by absorbing each
        // unit vector one at a time.
        let bits = bits & ((1u64 << k) - 1).max(1);
        let mut direct = BitSubspace::empty(k);
        direct.set_units(bits);
        let mut incremental = BitSubspace::empty(k);
        for unit in 0..k {
            if (bits >> unit) & 1 == 1 {
                prop_assert!(incremental.insert_unit(unit));
            }
        }
        prop_assert_eq!(&direct, &incremental);
        prop_assert_eq!(direct.dimension(), bits.count_ones() as usize);
    }

    #[test]
    fn tiny_k_agrees_with_brute_force_enumeration(k in 1usize..=6, seed in any::<u64>(), generators in 1usize..5) {
        // At tiny K the whole ambient space is enumerable: membership must
        // agree vector-for-vector with the brute-force span of the absorbed
        // generators, and |span| = 2^dim.
        let mut rng = StdRng::seed_from_u64(seed);
        let mut s = BitSubspace::empty(k);
        let mut gens: Vec<u64> = Vec::new();
        for _ in 0..generators {
            let row = random_row(&mut rng, k);
            gens.push(row[0]);
            s.absorb(&mut row.clone());
        }
        // Brute-force span: XOR of every subset of the generators.
        let mut combos = HashSet::new();
        for mask in 0u32..1 << gens.len() {
            let mut acc = 0u64;
            for (i, &g) in gens.iter().enumerate() {
                if (mask >> i) & 1 == 1 {
                    acc ^= g;
                }
            }
            combos.insert(acc);
        }
        prop_assert_eq!(combos.len(), 1usize << s.dimension(), "|span| = 2^dim");
        for word in 0u64..1 << k {
            prop_assert_eq!(
                s.contains(&[word]),
                combos.contains(&word),
                "membership diverged from enumeration on {:#b}", word
            );
        }
    }
}

#[test]
fn random_combination_is_uniform_over_the_span() {
    // `random_combination_into` must sample the span uniformly — the
    // coded-turbo uploader's distribution-exactness depends on it. Build a
    // dim-4 subspace of GF(2)^9, draw 16 × 2^dim × 32 samples, and demand
    // every member's count within ±5 standard deviations of the uniform
    // expectation (and in particular every member reached).
    let k = 9;
    let mut rng = StdRng::seed_from_u64(0xB175);
    let mut s = BitSubspace::empty(k);
    while s.dimension() < 4 {
        s.absorb(&mut random_row(&mut rng, k));
    }
    let members = 1usize << s.dimension();
    let per_member = 512u64;
    let samples = per_member * members as u64;
    let mut counts: HashMap<u64, u64> = HashMap::new();
    let mut row = Vec::new();
    for _ in 0..samples {
        s.random_combination_into(&mut rng, &mut row);
        *counts.entry(row[0]).or_insert(0) += 1;
    }
    assert_eq!(counts.len(), members, "sampling reaches every span member");
    // Binomial(n, 1/members): sd = sqrt(n·p·(1−p)).
    let p = 1.0 / members as f64;
    let sd = (samples as f64 * p * (1.0 - p)).sqrt();
    for (member, &count) in &counts {
        assert!(
            s.contains(&[*member]),
            "sample {member:#b} escaped the span"
        );
        let deviation = (count as f64 - per_member as f64).abs();
        assert!(
            deviation <= 5.0 * sd,
            "member {member:#b} count {count} deviates {deviation:.1} > 5σ ({sd:.1})"
        );
    }
}
