//! X-series rules: cross-file exhaustiveness audits.
//!
//! An [`EnumAudit`] names an enum (by file and name) and a set of target
//! files that must each reference every variant. The diagnostics anchor at
//! the variant's declaration line, so a suppression — if one is ever
//! justified — sits next to the variant it excuses.
//!
//! If the enum's file is absent from the source set the audit is skipped
//! (fixture runs lint synthetic subsets); if the file is present but the
//! enum or a target file is missing, that is itself an error — an audit
//! that silently stops auditing is worse than none.

use crate::diag::Diagnostic;
use crate::lexer::TokenKind;
use crate::rules;
use crate::source::SourceFile;
use std::collections::BTreeSet;

/// One cross-file exhaustiveness contract.
pub struct EnumAudit<'a> {
    /// The X-rule this audit reports under.
    pub rule: &'static str,
    /// Workspace-relative path of the file declaring the enum.
    pub enum_path: &'a str,
    pub enum_name: &'a str,
    /// `(path, role)` pairs: every variant must appear (as an identifier
    /// token) in each path; `role` names the contract in the message.
    pub targets: &'a [(&'a str, &'a str)],
}

/// The workspace's shipped audits.
///
/// * **X001** — every `KernelKind` variant is wired through scenario-JSON
///   parsing, the `run_experiments --kernel` CLI, and `bench_report`.
/// * **X002** — every telemetry `Counter` is exercised by the
///   counter-partition test, so no counter can silently rot.
pub const AUDITS: &[EnumAudit<'static>] = &[
    EnumAudit {
        rule: "X001",
        enum_path: "crates/core/src/sim/mod.rs",
        enum_name: "KernelKind",
        targets: &[
            (
                "crates/workload/src/registry.rs",
                "scenario-JSON parsing (the `\"kernel\"` field)",
            ),
            ("src/bin/run_experiments.rs", "the `--kernel` CLI parser"),
            ("src/bin/bench_report.rs", "the tracked bench report"),
        ],
    },
    EnumAudit {
        rule: "X002",
        enum_path: "crates/telemetry/src/lib.rs",
        enum_name: "Counter",
        targets: &[(
            "crates/core/tests/telemetry_counters.rs",
            "the counter-partition test",
        )],
    },
];

/// Runs every shipped audit over the parsed source set.
#[must_use]
pub fn run_default(files: &[SourceFile<'_>]) -> Vec<Diagnostic> {
    AUDITS.iter().flat_map(|a| run_audit(a, files)).collect()
}

/// Runs one audit; see the module docs for skip/error semantics.
#[must_use]
pub fn run_audit(audit: &EnumAudit<'_>, files: &[SourceFile<'_>]) -> Vec<Diagnostic> {
    let Some(enum_file) = files.iter().find(|f| f.path == audit.enum_path) else {
        return Vec::new();
    };
    let severity = rules::info(audit.rule).severity;
    let mut out = Vec::new();
    let variants = enum_variants(enum_file, audit.enum_name);
    if variants.is_empty() {
        out.push(Diagnostic {
            rule: audit.rule,
            severity,
            path: audit.enum_path.to_string(),
            line: 1,
            col: 1,
            message: format!(
                "audit misconfigured: no `enum {}` with variants found in this file",
                audit.enum_name
            ),
        });
        return out;
    }
    for (target_path, role) in audit.targets {
        let Some(target) = files.iter().find(|f| f.path == *target_path) else {
            out.push(Diagnostic {
                rule: audit.rule,
                severity,
                path: audit.enum_path.to_string(),
                line: 1,
                col: 1,
                message: format!(
                    "audit target `{target_path}` ({role}) is missing from the source set"
                ),
            });
            continue;
        };
        let idents: BTreeSet<&str> = target
            .tokens
            .iter()
            .filter(|t| t.kind == TokenKind::Ident)
            .map(|t| t.text)
            .collect();
        for (name, line, col) in &variants {
            if !idents.contains(name.as_str()) {
                out.push(Diagnostic {
                    rule: audit.rule,
                    severity,
                    path: audit.enum_path.to_string(),
                    line: *line,
                    col: *col,
                    message: format!(
                        "`{}::{name}` is not referenced in `{target_path}` ({role}): \
                         wire the variant through or the contract is no longer exhaustive",
                        audit.enum_name
                    ),
                });
            }
        }
    }
    out
}

/// Extracts `(variant name, line, col)` triples from `enum <name> { … }`.
fn enum_variants(f: &SourceFile<'_>, name: &str) -> Vec<(String, u32, u32)> {
    let tokens = &f.tokens;
    let mut open = None;
    for i in 0..tokens.len() {
        if tokens[i].is_ident("enum") && tokens.get(i + 1).is_some_and(|t| t.is_ident(name)) {
            // Skip any generics between the name and the body brace.
            let mut j = i + 2;
            while j < tokens.len() && !tokens[j].is_punct('{') {
                j += 1;
            }
            open = Some(j);
            break;
        }
    }
    let Some(open) = open else {
        return Vec::new();
    };
    let mut variants = Vec::new();
    let mut depth = 1i64;
    let mut expecting = true;
    let mut i = open + 1;
    while i < tokens.len() && depth > 0 {
        match tokens[i].kind {
            // Skip attributes on variants (`#[default]`, doc attrs, …).
            TokenKind::Punct('#')
                if depth == 1 && tokens.get(i + 1).is_some_and(|t| t.is_punct('[')) =>
            {
                let mut bd = 0i64;
                i += 1;
                while i < tokens.len() {
                    match tokens[i].kind {
                        TokenKind::Punct('[') => bd += 1,
                        TokenKind::Punct(']') => {
                            bd -= 1;
                            if bd == 0 {
                                break;
                            }
                        }
                        _ => {}
                    }
                    i += 1;
                }
            }
            TokenKind::Punct('{' | '(' | '[') => depth += 1,
            TokenKind::Punct('}' | ')' | ']') => depth -= 1,
            TokenKind::Punct(',') if depth == 1 => expecting = true,
            TokenKind::Ident if depth == 1 && expecting => {
                variants.push((tokens[i].text.to_string(), tokens[i].line, tokens[i].col));
                expecting = false;
            }
            _ => {}
        }
        i += 1;
    }
    variants
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn variants_are_extracted_with_payloads_and_attrs() {
        let src = "/// doc\npub enum Kind {\n  #[default]\n  Plain,\n  Tuple(u32, u32),\n  \
                   Struct { a: u32 },\n  Valued = 7,\n}\n";
        let f = SourceFile::parse("crates/x/src/lib.rs", src);
        let names: Vec<_> = enum_variants(&f, "Kind")
            .into_iter()
            .map(|(n, _, _)| n)
            .collect();
        assert_eq!(names, ["Plain", "Tuple", "Struct", "Valued"]);
    }

    #[test]
    fn missing_enum_yields_no_variants() {
        let f = SourceFile::parse("crates/x/src/lib.rs", "struct NotAnEnum;");
        assert!(enum_variants(&f, "Kind").is_empty());
    }
}
