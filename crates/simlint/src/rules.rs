//! The per-file rule registry and implementations.
//!
//! Every rule here is a token-level pattern over one [`SourceFile`]: no type
//! inference, no name resolution. The supported shapes are pinned by the
//! fixture corpus under `tests/fixtures/`; anything outside them is a
//! documented false negative, never a build break. Test code (per the
//! attribute tracker in [`crate::source`]) is exempt from every per-file
//! rule.

use crate::diag::{Diagnostic, Severity};
use crate::lexer::TokenKind;
use crate::source::SourceFile;
use std::collections::BTreeSet;

/// Registry metadata for one rule.
pub struct RuleInfo {
    pub id: &'static str,
    /// One-line summary shown by `simlint --list-rules`.
    pub summary: &'static str,
    /// Severity before any `--deny` promotion.
    pub severity: Severity,
}

/// Every rule simlint ships, in report order.
pub const RULES: &[RuleInfo] = &[
    RuleInfo {
        id: "D001",
        summary: "hash-container iteration (and un-audited hash bindings) in non-test code: \
                  hash order is nondeterministic and must never reach artifacts",
        severity: Severity::Error,
    },
    RuleInfo {
        id: "D002",
        summary: "wall-clock reads (Instant::now / SystemTime) outside the telemetry/progress \
                  allowlist: wall time must never influence simulation output",
        severity: Severity::Error,
    },
    RuleInfo {
        id: "D003",
        summary: "ad-hoc RNG construction (thread_rng / from_entropy / seed_from_u64 / OsRng) \
                  outside engine::rng: all randomness derives from (master seed, scenario, \
                  replication) stream keys",
        severity: Severity::Error,
    },
    RuleInfo {
        id: "D004",
        summary: "environment or thread-identity reads (std::env, thread::current) in \
                  sim/engine paths: results must depend only on (config, master seed)",
        severity: Severity::Error,
    },
    RuleInfo {
        id: "E001",
        summary: ".unwrap()/.expect() in crates/engine + crates/core non-test code: use typed \
                  errors, or suppress with a documented allow so the count can only shrink",
        severity: Severity::Warning,
    },
    RuleInfo {
        id: "X001",
        summary: "every KernelKind variant must appear in scenario-JSON parsing, the \
                  run_experiments --kernel CLI, and bench_report",
        severity: Severity::Error,
    },
    RuleInfo {
        id: "X002",
        summary: "every telemetry Counter variant must be referenced by the counter-partition \
                  test",
        severity: Severity::Error,
    },
    RuleInfo {
        id: "A001",
        summary: "unused `simlint: allow` directive (the rule never fired on the target line)",
        severity: Severity::Error,
    },
    RuleInfo {
        id: "A002",
        summary: "malformed `simlint:` directive",
        severity: Severity::Error,
    },
];

/// Resolves a user-written rule name to its registry id. Only suppressible
/// rules resolve: the meta rules (`A00x`) cannot be allowed away.
#[must_use]
pub fn lookup(name: &str) -> Option<&'static str> {
    RULES
        .iter()
        .find(|r| r.id == name && !r.id.starts_with('A'))
        .map(|r| r.id)
}

/// Registry metadata for `id` (panics on unknown ids — rule ids are static).
#[must_use]
pub fn info(id: &str) -> &'static RuleInfo {
    RULES
        .iter()
        .find(|r| r.id == id)
        .unwrap_or_else(|| panic!("unknown rule id {id}"))
}

/// What the per-file rules need to know about a path.
struct Scope {
    /// E001 and D004 apply only to the engine/core crates.
    engine_or_core: bool,
    /// D002 allowlist: the telemetry crate and the progress reporter may
    /// read the wall clock (it never reaches artifacts from there).
    d002_allowlisted: bool,
    /// D003 exemption: `engine::rng` is the one blessed construction site.
    d003_exempt: bool,
}

/// Whether per-file rules run on `path` at all, and under which scope.
///
/// Linted: `src/**` and `crates/*/src/**`. Everything else (tests, benches,
/// examples, fixtures, shims) is either test code or reference material.
#[must_use]
pub fn is_linted(path: &str) -> bool {
    if !path.ends_with(".rs") {
        return false;
    }
    path.starts_with("src/") || (path.starts_with("crates/") && path.contains("/src/"))
}

fn scope_of(path: &str) -> Scope {
    Scope {
        engine_or_core: path.starts_with("crates/engine/src")
            || path.starts_with("crates/core/src"),
        d002_allowlisted: path.starts_with("crates/telemetry/src")
            || path == "crates/engine/src/progress.rs",
        d003_exempt: path == "crates/engine/src/rng.rs",
    }
}

/// Runs every per-file rule on `f`, returning raw (unsuppressed)
/// diagnostics.
#[must_use]
pub fn file_rules(f: &SourceFile<'_>) -> Vec<Diagnostic> {
    let scope = scope_of(&f.path);
    let mut out = Vec::new();
    d001(f, &mut out);
    if !scope.d002_allowlisted {
        d002(f, &mut out);
    }
    if !scope.d003_exempt {
        d003(f, &mut out);
    }
    if scope.engine_or_core {
        d004(f, &mut out);
        e001(f, &mut out);
    }
    out
}

fn diag(
    f: &SourceFile<'_>,
    rule: &'static str,
    line: u32,
    col: u32,
    message: String,
) -> Diagnostic {
    Diagnostic {
        rule,
        severity: info(rule).severity,
        path: f.path.clone(),
        line,
        col,
        message,
    }
}

/// Iteration-reading methods whose call on a hash container leaks hash
/// order into control flow.
const D001_ITER_METHODS: &[&str] = &[
    "iter",
    "iter_mut",
    "keys",
    "values",
    "values_mut",
    "drain",
    "into_iter",
    "retain",
];

/// D001 — hash-container discipline.
///
/// Two trigger forms:
/// * **iteration** — a `for` loop over, or an order-observing method call
///   on, a name bound with a `HashMap`/`HashSet` type: always a violation;
/// * **binding audit** — any `let` binding, fn parameter, or struct field
///   declared with a hash type in non-test code: fires once per
///   declaration so lookup-only uses carry an audited
///   `// simlint: allow(D001, "…")` documenting why no iteration order
///   escapes.
fn d001(f: &SourceFile<'_>, out: &mut Vec<Diagnostic>) {
    let tokens = &f.tokens;
    let mut hash_names: BTreeSet<&str> = BTreeSet::new();
    let mut audited: BTreeSet<usize> = BTreeSet::new();

    for i in 0..tokens.len() {
        if tokens[i].kind != TokenKind::Ident
            || !(tokens[i].text == "HashMap" || tokens[i].text == "HashSet")
            || !f.is_code(i)
        {
            continue;
        }
        // Statement anchor: the token after the nearest `;`, `{`, or `}`.
        let mut a = i;
        while a > 0 && !matches!(tokens[a - 1].kind, TokenKind::Punct(';' | '{' | '}')) {
            a -= 1;
        }
        // Imports declare nothing.
        if tokens[a].is_ident("use")
            || (tokens[a].is_ident("pub") && tokens.get(a + 1).is_some_and(|t| t.is_ident("use")))
        {
            continue;
        }
        if tokens[a].is_ident("let") {
            let name_idx = if tokens.get(a + 1).is_some_and(|t| t.is_ident("mut")) {
                a + 2
            } else {
                a + 1
            };
            if tokens
                .get(name_idx)
                .is_some_and(|t| t.kind == TokenKind::Ident)
            {
                hash_names.insert(tokens[name_idx].text);
                if audited.insert(a) {
                    out.push(diag(
                        f,
                        "D001",
                        tokens[a].line,
                        tokens[a].col,
                        format!(
                            "`{}` binds a `{}` in deterministic code: audit the use \
                             (lookup-only is fine) and suppress with `// simlint: \
                             allow(D001, \"…\")` documenting why no iteration order escapes",
                            tokens[name_idx].text, tokens[i].text
                        ),
                    ));
                }
            }
            continue;
        }
        // Parameter / struct-field form: `name: …Hash…` — find the lone `:`
        // (not part of a `::`) closest before the hash token.
        let mut j = i;
        while j > a {
            let lone_colon = tokens[j].is_punct(':')
                && !tokens[j - 1].is_punct(':')
                && !tokens.get(j + 1).is_some_and(|t| t.is_punct(':'));
            if lone_colon {
                if tokens[j - 1].kind == TokenKind::Ident {
                    hash_names.insert(tokens[j - 1].text);
                    if audited.insert(j) {
                        out.push(diag(
                            f,
                            "D001",
                            tokens[j - 1].line,
                            tokens[j - 1].col,
                            format!(
                                "`{}` is declared with a `{}` in deterministic code: audit \
                                 the use (lookup-only is fine) and suppress with `// simlint: \
                                 allow(D001, \"…\")` documenting why no iteration order escapes",
                                tokens[j - 1].text,
                                tokens[i].text
                            ),
                        ));
                    }
                }
                break;
            }
            j -= 1;
        }
    }

    // Iteration form 1: order-observing method calls on hash-bound names.
    for i in 2..tokens.len() {
        if tokens[i].kind == TokenKind::Ident
            && D001_ITER_METHODS.contains(&tokens[i].text)
            && tokens[i - 1].is_punct('.')
            && tokens.get(i + 1).is_some_and(|t| t.is_punct('('))
            && f.is_code(i)
            && tokens[i - 2].kind == TokenKind::Ident
            && hash_names.contains(tokens[i - 2].text)
        {
            out.push(diag(
                f,
                "D001",
                tokens[i].line,
                tokens[i].col,
                format!(
                    "`{}.{}()` iterates a hash container: hash order is nondeterministic \
                     and must not reach artifacts; iterate a sorted or insertion-ordered \
                     carrier instead",
                    tokens[i - 2].text,
                    tokens[i].text
                ),
            ));
        }
    }

    // Iteration form 2: `for … in <hash-bound name> {`.
    for i in 0..tokens.len() {
        if !tokens[i].is_ident("for") || !f.is_code(i) {
            continue;
        }
        // Walk the loop header: find `in` and the body `{`, both outside
        // parens/brackets (`impl Trait for Type` has no `in` and is skipped).
        let mut nesting = 0i64;
        let mut in_idx = None;
        let mut body_idx = None;
        for (j, t) in f.tokens.iter().enumerate().skip(i + 1) {
            match t.kind {
                TokenKind::Punct('(' | '[') => nesting += 1,
                TokenKind::Punct(')' | ']') => nesting -= 1,
                TokenKind::Punct('{') if nesting == 0 => {
                    body_idx = Some(j);
                    break;
                }
                TokenKind::Punct(';') if nesting == 0 => break,
                TokenKind::Ident if nesting == 0 && t.text == "in" && in_idx.is_none() => {
                    in_idx = Some(j);
                }
                _ => {}
            }
        }
        let (Some(in_idx), Some(body_idx)) = (in_idx, body_idx) else {
            continue;
        };
        let expr = &tokens[in_idx + 1..body_idx];
        let Some(last) = expr.last() else { continue };
        if last.kind == TokenKind::Ident && hash_names.contains(last.text) {
            out.push(diag(
                f,
                "D001",
                last.line,
                last.col,
                format!(
                    "`for … in {}` iterates a hash container: hash order is \
                     nondeterministic and must not reach artifacts; iterate a sorted or \
                     insertion-ordered carrier instead",
                    last.text
                ),
            ));
        }
    }
}

/// D002 — wall-clock reads.
fn d002(f: &SourceFile<'_>, out: &mut Vec<Diagnostic>) {
    let tokens = &f.tokens;
    for i in 0..tokens.len() {
        if !f.is_code(i) || tokens[i].kind != TokenKind::Ident {
            continue;
        }
        let hit = match tokens[i].text {
            "SystemTime" => true,
            // `Instant :: now`
            "Instant" => {
                tokens.get(i + 1).is_some_and(|t| t.is_punct(':'))
                    && tokens.get(i + 2).is_some_and(|t| t.is_punct(':'))
                    && tokens.get(i + 3).is_some_and(|t| t.is_ident("now"))
            }
            _ => false,
        };
        if hit {
            out.push(diag(
                f,
                "D002",
                tokens[i].line,
                tokens[i].col,
                format!(
                    "`{}` reads the wall clock outside the telemetry/progress allowlist: \
                     wall time must never influence simulation results or artifacts",
                    tokens[i].text
                ),
            ));
        }
    }
}

/// RNG constructors that bypass the stream-key derivation.
const D003_BANNED: &[&str] = &[
    "thread_rng",
    "from_entropy",
    "from_os_rng",
    "OsRng",
    "seed_from_u64",
];

/// D003 — RNG discipline.
fn d003(f: &SourceFile<'_>, out: &mut Vec<Diagnostic>) {
    for (i, t) in f.tokens.iter().enumerate() {
        if t.kind == TokenKind::Ident && D003_BANNED.contains(&t.text) && f.is_code(i) {
            out.push(diag(
                f,
                "D003",
                t.line,
                t.col,
                format!(
                    "ad-hoc RNG construction (`{}`): all randomness must derive from the \
                     (master seed, scenario, replication) stream key via \
                     `engine::rng::replication_rng`",
                    t.text
                ),
            ));
        }
    }
}

/// D004 — environment / thread-identity reads in sim/engine paths.
fn d004(f: &SourceFile<'_>, out: &mut Vec<Diagnostic>) {
    let tokens = &f.tokens;
    let seq = |i: usize, names: &[&str]| -> bool {
        // Matches `names[0] :: names[1] :: …` starting at token i.
        let mut j = i;
        for (k, name) in names.iter().enumerate() {
            if k > 0 {
                if !(tokens.get(j).is_some_and(|t| t.is_punct(':'))
                    && tokens.get(j + 1).is_some_and(|t| t.is_punct(':')))
                {
                    return false;
                }
                j += 2;
            }
            if !tokens.get(j).is_some_and(|t| t.is_ident(name)) {
                return false;
            }
            j += 1;
        }
        true
    };
    for (i, tok) in tokens.iter().enumerate() {
        if !f.is_code(i) || tok.kind != TokenKind::Ident {
            continue;
        }
        let hit = if tok.text == "std" && seq(i, &["std", "env"]) {
            Some("std::env")
        } else if tok.text == "env"
            && (seq(i, &["env", "var"]) || seq(i, &["env", "vars"]) || seq(i, &["env", "var_os"]))
        {
            Some("env::var")
        } else if tok.text == "thread" && seq(i, &["thread", "current"]) {
            Some("thread::current")
        } else {
            None
        };
        if let Some(what) = hit {
            out.push(diag(
                f,
                "D004",
                tok.line,
                tok.col,
                format!(
                    "`{what}` read in a sim/engine path: results must depend only on \
                     (config, master seed), never on the environment or thread identity"
                ),
            ));
        }
    }
}

/// E001 — panic-policy regression guard.
fn e001(f: &SourceFile<'_>, out: &mut Vec<Diagnostic>) {
    let tokens = &f.tokens;
    for i in 1..tokens.len() {
        if tokens[i].kind == TokenKind::Ident
            && (tokens[i].text == "unwrap" || tokens[i].text == "expect")
            && tokens[i - 1].is_punct('.')
            && tokens.get(i + 1).is_some_and(|t| t.is_punct('('))
            && f.is_code(i)
        {
            out.push(diag(
                f,
                "E001",
                tokens[i].line,
                tokens[i].col,
                format!(
                    "`.{}(…)` in engine/core non-test code: return a typed \
                     `engine::Error`/`SwarmError` instead, or suppress with \
                     `// simlint: allow(E001, \"…\")` stating the invariant that makes \
                     the panic unreachable",
                    tokens[i].text
                ),
            ));
        }
    }
}
