//! Diagnostics: severities, rendering (human and JSON), and ordering.

use std::fmt;

/// How serious a finding is.
///
/// Errors fail the lint run (exit code 1); warnings are reported but pass.
/// The driver's `--deny` flag promotes warnings to errors per rule family
/// or wholesale (`--deny all`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Severity {
    Warning,
    Error,
}

impl Severity {
    /// The lowercase name used in human and JSON output.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            Severity::Warning => "warning",
            Severity::Error => "error",
        }
    }
}

/// One lint finding, anchored to a file position.
#[derive(Debug, Clone)]
pub struct Diagnostic {
    /// Rule identifier (`"D001"`, `"E001"`, `"X002"`, `"A001"`, …).
    pub rule: &'static str,
    pub severity: Severity,
    /// Workspace-relative path with `/` separators.
    pub path: String,
    /// 1-based line of the finding.
    pub line: u32,
    /// 1-based column of the finding.
    pub col: u32,
    pub message: String,
}

impl Diagnostic {
    /// Sort key: path, then position, then rule — a deterministic report
    /// order independent of rule execution order.
    #[must_use]
    pub fn sort_key(&self) -> (String, u32, u32, &'static str) {
        (self.path.clone(), self.line, self.col, self.rule)
    }

    /// Renders the single-line human form:
    /// `path:line:col: severity[RULE]: message`.
    #[must_use]
    pub fn render_human(&self) -> String {
        format!(
            "{}:{}:{}: {}[{}]: {}",
            self.path,
            self.line,
            self.col,
            self.severity.name(),
            self.rule,
            self.message
        )
    }

    /// Renders one JSON object (no trailing newline).
    #[must_use]
    pub fn render_json(&self) -> String {
        let mut out = String::from("{");
        let mut field = |key: &str, value: &str, quoted: bool, first: bool| {
            if !first {
                out.push(',');
            }
            out.push('"');
            out.push_str(key);
            out.push_str("\":");
            if quoted {
                out.push('"');
                json_escape_into(&mut out, value);
                out.push('"');
            } else {
                out.push_str(value);
            }
        };
        field("rule", self.rule, true, true);
        field("severity", self.severity.name(), true, false);
        field("path", &self.path, true, false);
        field("line", &self.line.to_string(), false, false);
        field("col", &self.col.to_string(), false, false);
        field("message", &self.message, true, false);
        out.push('}');
        out
    }
}

impl fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.render_human())
    }
}

/// Renders a full diagnostic list as a JSON array (pretty, one object per
/// line, stable order — suitable for diffing in CI).
#[must_use]
pub fn render_json_report(diags: &[Diagnostic]) -> String {
    let mut out = String::from("[");
    for (i, d) in diags.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str("\n  ");
        out.push_str(&d.render_json());
    }
    if !diags.is_empty() {
        out.push('\n');
    }
    out.push(']');
    out
}

fn json_escape_into(out: &mut String, s: &str) {
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Diagnostic {
        Diagnostic {
            rule: "D001",
            severity: Severity::Error,
            path: "crates/x/src/lib.rs".into(),
            line: 3,
            col: 9,
            message: "iteration over a hash container (`m`)".into(),
        }
    }

    #[test]
    fn human_form_is_single_line() {
        assert_eq!(
            sample().render_human(),
            "crates/x/src/lib.rs:3:9: error[D001]: iteration over a hash container (`m`)"
        );
    }

    #[test]
    fn json_escapes_quotes_and_backslashes() {
        let mut d = sample();
        d.message = "say \"hi\" \\ done".into();
        let json = d.render_json();
        assert!(json.contains(r#""message":"say \"hi\" \\ done""#));
    }

    #[test]
    fn json_report_shape() {
        assert_eq!(render_json_report(&[]), "[]");
        let report = render_json_report(&[sample(), sample()]);
        assert!(report.starts_with("[\n  {"));
        assert!(report.ends_with("}\n]"));
        assert_eq!(report.matches("\"rule\":\"D001\"").count(), 2);
    }
}
