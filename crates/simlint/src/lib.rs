//! `simlint` — the workspace contract linter.
//!
//! Every result the engine reports rests on contracts the compiler cannot
//! see: artifacts must be byte-identical at any `--jobs` for a fixed master
//! seed, all randomness must derive from `(master seed, scenario,
//! replication)` stream keys, wall time must never reach artifacts, and
//! engine/core code must fail through typed errors rather than panics.
//! This crate enforces the known *classes* of violation statically, as a
//! compile-gate, instead of hoping the dynamic differential batteries catch
//! each instance after the fact.
//!
//! The pass is deliberately lightweight and self-contained — a hand-rolled
//! token-level lexer plus a scope/attribute tracker, in the same in-house
//! style as `workload::json`; no crates.io, no `syn`. Rules are documented
//! in [`rules::RULES`] and pinned by the fixture corpus under
//! `tests/fixtures/`.
//!
//! # Suppressions
//!
//! A finding that is audited-and-safe is suppressed in place:
//!
//! ```text
//! // simlint: allow(D001, "lookup-only: insertion order never escapes")
//! let mut index: HashMap<State, usize> = HashMap::new();
//! ```
//!
//! A trailing directive suppresses its own line; a directive on its own
//! line suppresses the next code line. The reason string is mandatory, and
//! suppressions are themselves linted: a directive whose rule did not fire
//! on the target line is an `A001` error, so stale allows cannot
//! accumulate and the allowlisted count can only shrink.

pub mod audit;
pub mod diag;
pub mod lexer;
pub mod rules;
pub mod source;

pub use diag::{Diagnostic, Severity};

use source::SourceFile;
use std::io;
use std::path::{Path, PathBuf};

/// Lints a set of `(workspace-relative path, contents)` pairs: per-file
/// rules on linted paths, cross-file audits over the whole set, suppression
/// resolution, and unused-allow detection. Returns diagnostics in
/// deterministic `(path, line, col, rule)` order.
#[must_use]
pub fn lint_sources(sources: &[(String, String)]) -> Vec<Diagnostic> {
    let files: Vec<SourceFile<'_>> = sources
        .iter()
        .map(|(path, text)| SourceFile::parse(path, text))
        .collect();

    let mut diags = Vec::new();
    for f in &files {
        if !rules::is_linted(&f.path) {
            continue;
        }
        diags.extend(f.malformed.iter().cloned());
        diags.extend(rules::file_rules(f));
    }
    diags.extend(audit::run_default(&files));

    // Resolve suppressions: an allow eats every same-rule diagnostic on its
    // target line. Allows live in linted files only (test-only files have
    // nothing to suppress).
    let mut used: Vec<Vec<bool>> = files.iter().map(|f| vec![false; f.allows.len()]).collect();
    diags.retain(|d| {
        let Some(fi) = files.iter().position(|f| f.path == d.path) else {
            return true;
        };
        let mut suppressed = false;
        for (ai, allow) in files[fi].allows.iter().enumerate() {
            if allow.rule == d.rule && allow.target_line == d.line {
                used[fi][ai] = true;
                suppressed = true;
            }
        }
        !suppressed
    });

    // Unused allows are errors: the contract they excuse no longer exists.
    for (fi, f) in files.iter().enumerate() {
        if !rules::is_linted(&f.path) {
            continue;
        }
        for (ai, allow) in f.allows.iter().enumerate() {
            if !used[fi][ai] {
                diags.push(Diagnostic {
                    rule: "A001",
                    severity: Severity::Error,
                    path: f.path.clone(),
                    line: allow.comment_line,
                    col: 1,
                    message: format!(
                        "unused `simlint: allow({})` — the rule did not fire on line {}; \
                         remove the stale directive",
                        allow.rule, allow.target_line
                    ),
                });
            }
        }
    }

    diags.sort_by(|a, b| a.sort_key().cmp(&b.sort_key()));
    diags
}

/// Collects and lints the workspace rooted at `root` (the directory holding
/// the top-level `Cargo.toml`).
///
/// The source set is `src/**`, `crates/*/src/**` (linted), plus
/// `crates/*/tests/**` (never linted, but available as cross-file audit
/// targets). `shims/`, `examples/`, `benches/`, and root `tests/` are
/// excluded: shims are inert vendored stand-ins and the rest is test or
/// demo code by construction.
///
/// # Errors
///
/// Propagates I/O failures from walking or reading the tree.
pub fn lint_workspace(root: &Path) -> io::Result<Vec<Diagnostic>> {
    let mut sources = Vec::new();
    collect_dir(root, &root.join("src"), &mut sources)?;
    let crates_dir = root.join("crates");
    if crates_dir.is_dir() {
        for krate in sorted_entries(&crates_dir)? {
            collect_dir(root, &krate.join("src"), &mut sources)?;
            collect_dir(root, &krate.join("tests"), &mut sources)?;
        }
    }
    sources.sort();
    Ok(lint_sources(&sources))
}

/// Directory entries, sorted by name so walks (and everything downstream)
/// are deterministic regardless of filesystem order.
fn sorted_entries(dir: &Path) -> io::Result<Vec<PathBuf>> {
    let mut entries: Vec<PathBuf> = std::fs::read_dir(dir)?
        .map(|e| e.map(|e| e.path()))
        .collect::<io::Result<_>>()?;
    entries.sort();
    Ok(entries)
}

/// Recursively collects `.rs` files under `dir` (skipped when absent) as
/// `(root-relative path, contents)` pairs.
fn collect_dir(root: &Path, dir: &Path, out: &mut Vec<(String, String)>) -> io::Result<()> {
    if !dir.is_dir() {
        return Ok(());
    }
    for entry in sorted_entries(dir)? {
        if entry.is_dir() {
            collect_dir(root, &entry, out)?;
        } else if entry.extension().is_some_and(|e| e == "rs") {
            let rel = entry
                .strip_prefix(root)
                .unwrap_or(&entry)
                .components()
                .map(|c| c.as_os_str().to_string_lossy())
                .collect::<Vec<_>>()
                .join("/");
            out.push((rel, std::fs::read_to_string(&entry)?));
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn one(path: &str, text: &str) -> Vec<Diagnostic> {
        lint_sources(&[(path.to_string(), text.to_string())])
    }

    #[test]
    fn unlinted_paths_produce_nothing() {
        let violating = "fn f() { let x: Option<u32> = None; x.unwrap(); thread_rng(); }";
        assert!(one("crates/core/tests/some_test.rs", violating).is_empty());
        assert!(one("shims/rand/src/lib.rs", violating).is_empty());
    }

    #[test]
    fn suppression_eats_the_diagnostic_and_counts_as_used() {
        let src = "fn f(x: Option<u32>) {\n    // simlint: allow(E001, \"checked above\")\n    \
                   x.unwrap();\n}\n";
        assert!(one("crates/engine/src/x.rs", src).is_empty());
    }

    #[test]
    fn unused_allow_is_an_a001_error() {
        let src = "// simlint: allow(E001, \"nothing here\")\nfn f() {}\n";
        let diags = one("crates/engine/src/x.rs", src);
        assert_eq!(diags.len(), 1);
        assert_eq!(diags[0].rule, "A001");
        assert_eq!(diags[0].severity, Severity::Error);
    }

    #[test]
    fn one_allow_covers_every_same_rule_hit_on_its_line() {
        let src = "fn f(x: Option<u32>, y: Option<u32>) {\n    \
                   // simlint: allow(E001, \"both checked\")\n    \
                   x.unwrap(); y.unwrap();\n}\n";
        assert!(one("crates/engine/src/x.rs", src).is_empty());
    }

    #[test]
    fn diagnostics_are_sorted_and_deterministic() {
        let src = "fn f(x: Option<u32>) { x.unwrap(); }\nfn g() { thread_rng(); }\n";
        let a = one("crates/engine/src/x.rs", src);
        let b = one("crates/engine/src/x.rs", src);
        assert_eq!(a.len(), b.len());
        assert!(a.len() >= 2);
        let keys: Vec<_> = a.iter().map(Diagnostic::sort_key).collect();
        let mut sorted = keys.clone();
        sorted.sort();
        assert_eq!(keys, sorted);
    }
}
