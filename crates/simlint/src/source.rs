//! A lexed source file plus the two context layers every rule needs:
//! which tokens are test code, and which lines carry `simlint: allow`
//! suppressions.
//!
//! Test tracking is attribute-driven: `#[test]`, `#[cfg(test)]`, and
//! `#[cfg(any(test, …))]` mark the annotated item (through its closing
//! brace or terminating semicolon) as test code; `#![cfg(test)]` marks the
//! rest of the enclosing block (the whole file at the top level). A
//! `cfg` attribute mentioning `not` is conservatively treated as
//! *non*-test, so `#[cfg(not(test))]` code stays linted.

use crate::diag::{Diagnostic, Severity};
use crate::lexer::{lex, Token, TokenKind};
use crate::rules;

/// One parsed `// simlint: allow(RULE, "reason")` directive.
#[derive(Debug, Clone)]
pub struct Allow {
    /// The rule the directive suppresses (validated against the registry).
    pub rule: &'static str,
    /// The mandatory free-text justification.
    pub reason: String,
    /// Line the comment sits on.
    pub comment_line: u32,
    /// Line the directive suppresses: the comment's own line for trailing
    /// comments, the next code line for comments that own their line.
    pub target_line: u32,
}

/// A lexed file with test regions and suppressions resolved.
pub struct SourceFile<'a> {
    /// Workspace-relative path, `/`-separated.
    pub path: String,
    pub tokens: Vec<Token<'a>>,
    /// Parallel to `tokens`: `true` when the token is inside test code.
    pub in_test: Vec<bool>,
    pub allows: Vec<Allow>,
    /// `A002` diagnostics for directives that failed to parse.
    pub malformed: Vec<Diagnostic>,
}

impl<'a> SourceFile<'a> {
    /// Lexes `text` and resolves test regions and allow directives.
    #[must_use]
    pub fn parse(path: &str, text: &'a str) -> Self {
        let lexed = lex(text);
        let in_test = test_regions(&lexed.tokens);
        let (allows, malformed) = parse_allows(path, &lexed.comments, &lexed.tokens);
        SourceFile {
            path: path.to_string(),
            tokens: lexed.tokens,
            in_test,
            allows,
            malformed,
        }
    }

    /// Convenience: the token at `i` is real (non-test) code.
    #[must_use]
    pub fn is_code(&self, i: usize) -> bool {
        !self.in_test[i]
    }
}

/// Does an attribute body (the tokens between `[` and `]`) gate on test?
fn attr_is_test(body: &[Token<'_>]) -> bool {
    let mentions_test = body.iter().any(|t| t.is_ident("test"));
    let mentions_not = body.iter().any(|t| t.is_ident("not"));
    mentions_test && !mentions_not
}

/// Finds the index of the `]` matching the `[` at `open` (bracket nesting
/// only; attribute bodies cannot contain stray unbalanced brackets).
fn matching_bracket(tokens: &[Token<'_>], open: usize) -> usize {
    let mut depth = 0usize;
    for (i, t) in tokens.iter().enumerate().skip(open) {
        match t.kind {
            TokenKind::Punct('[') => depth += 1,
            TokenKind::Punct(']') => {
                depth -= 1;
                if depth == 0 {
                    return i;
                }
            }
            _ => {}
        }
    }
    tokens.len() - 1
}

/// Finds the index of the `}` matching the `{` at `open`.
fn matching_brace(tokens: &[Token<'_>], open: usize) -> usize {
    let mut depth = 0usize;
    for (i, t) in tokens.iter().enumerate().skip(open) {
        match t.kind {
            TokenKind::Punct('{') => depth += 1,
            TokenKind::Punct('}') => {
                depth -= 1;
                if depth == 0 {
                    return i;
                }
            }
            _ => {}
        }
    }
    tokens.len() - 1
}

/// Computes the per-token test mask (see module docs for the contract).
fn test_regions(tokens: &[Token<'_>]) -> Vec<bool> {
    let mut mask = vec![false; tokens.len()];
    let mut i = 0usize;
    while i < tokens.len() {
        if !tokens[i].is_punct('#') {
            i += 1;
            continue;
        }
        // `#[…]` (outer) or `#![…]` (inner).
        let inner = i + 1 < tokens.len() && tokens[i + 1].is_punct('!');
        let bracket = i + if inner { 2 } else { 1 };
        if bracket >= tokens.len() || !tokens[bracket].is_punct('[') {
            i += 1;
            continue;
        }
        let close = matching_bracket(tokens, bracket);
        if !attr_is_test(&tokens[bracket..=close]) {
            i = close + 1;
            continue;
        }
        if inner {
            // `#![cfg(test)]`: the rest of the enclosing block is test code.
            // Walking forward, the enclosing block ends where brace depth
            // first goes negative (never, at the top level).
            let mut depth = 0i64;
            let mut end = tokens.len() - 1;
            for (j, t) in tokens.iter().enumerate().skip(close + 1) {
                match t.kind {
                    TokenKind::Punct('{') => depth += 1,
                    TokenKind::Punct('}') => {
                        depth -= 1;
                        if depth < 0 {
                            end = j;
                            break;
                        }
                    }
                    _ => {}
                }
            }
            for m in mask.iter_mut().take(end + 1).skip(i) {
                *m = true;
            }
            i = close + 1;
            continue;
        }
        // Outer attribute: find the annotated item's extent — through the
        // matching `}` of its first body brace, or through a terminating
        // `;`, whichever comes first outside parens/brackets. Stacked
        // attributes between here and the item are skipped.
        let mut j = close + 1;
        let mut nesting = 0i64;
        let mut end = tokens.len() - 1;
        while j < tokens.len() {
            match tokens[j].kind {
                TokenKind::Punct('#')
                    if nesting == 0 && j + 1 < tokens.len() && tokens[j + 1].is_punct('[') =>
                {
                    j = matching_bracket(tokens, j + 1) + 1;
                    continue;
                }
                TokenKind::Punct('(' | '[') => nesting += 1,
                TokenKind::Punct(')' | ']') => nesting -= 1,
                TokenKind::Punct('{') if nesting == 0 => {
                    end = matching_brace(tokens, j);
                    break;
                }
                TokenKind::Punct(';') if nesting == 0 => {
                    end = j;
                    break;
                }
                _ => {}
            }
            j += 1;
        }
        for m in mask.iter_mut().take(end + 1).skip(i) {
            *m = true;
        }
        i = close + 1;
    }
    mask
}

/// Parses every `simlint:` comment into an [`Allow`] or an `A002`
/// malformed-directive diagnostic.
fn parse_allows(
    path: &str,
    comments: &[crate::lexer::Comment<'_>],
    tokens: &[Token<'_>],
) -> (Vec<Allow>, Vec<Diagnostic>) {
    let mut allows = Vec::new();
    let mut malformed = Vec::new();
    for comment in comments {
        // Strip the comment opener and see whether this is a directive at
        // all. Doc-text mentions like "`// simlint: allow(...)`" keep their
        // inner `//` after stripping and are therefore skipped.
        let body = comment
            .text
            .trim_start_matches('/')
            .trim_start_matches('*')
            .trim_start_matches('!')
            .trim();
        let Some(rest) = body.strip_prefix("simlint:") else {
            continue;
        };
        let mut fail = |why: &str| {
            malformed.push(Diagnostic {
                rule: "A002",
                severity: Severity::Error,
                path: path.to_string(),
                line: comment.line,
                col: 1,
                message: format!("malformed simlint directive ({why}); expected `// simlint: allow(RULE, \"reason\")`"),
            });
        };
        let rest = rest.trim();
        let Some(args) = rest.strip_prefix("allow(") else {
            fail("only `allow(…)` is understood");
            continue;
        };
        let Some(args) = args.trim_end().strip_suffix(')') else {
            fail("missing closing `)`");
            continue;
        };
        let Some((rule_name, reason_part)) = args.split_once(',') else {
            fail("missing the reason argument");
            continue;
        };
        let Some(rule) = rules::lookup(rule_name.trim()) else {
            fail(&format!("unknown rule `{}`", rule_name.trim()));
            continue;
        };
        let reason_part = reason_part.trim();
        let reason = reason_part
            .strip_prefix('"')
            .and_then(|r| r.strip_suffix('"'))
            .unwrap_or("");
        if reason.trim().is_empty() {
            fail("the reason must be a non-empty quoted string");
            continue;
        }
        let target_line = if comment.trailing {
            comment.line
        } else {
            // The next code line after the comment (skipping blank lines
            // and further comments).
            match tokens.iter().find(|t| t.line > comment.line) {
                Some(t) => t.line,
                None => {
                    fail("no code follows the directive");
                    continue;
                }
            }
        };
        allows.push(Allow {
            rule,
            reason: reason.to_string(),
            comment_line: comment.line,
            target_line,
        });
    }
    (allows, malformed)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mask_of(src: &str) -> Vec<(String, bool)> {
        let f = SourceFile::parse("crates/core/src/x.rs", src);
        f.tokens
            .iter()
            .zip(&f.in_test)
            .map(|(t, &m)| (t.text.to_string(), m))
            .collect()
    }

    #[test]
    fn cfg_test_mod_is_masked_to_its_closing_brace() {
        let src = "fn live() {}\n#[cfg(test)]\nmod tests {\n fn t() {}\n}\nfn live2() {}";
        let mask = mask_of(src);
        let live: Vec<_> = mask
            .iter()
            .filter(|(_, m)| !m)
            .map(|(t, _)| t.as_str())
            .collect();
        assert_eq!(
            live,
            ["fn", "live", "(", ")", "{", "}", "fn", "live2", "(", ")", "{", "}"]
        );
    }

    #[test]
    fn test_attribute_masks_one_function() {
        let src = "#[test]\nfn check() { body(); }\nfn live() {}";
        let mask = mask_of(src);
        assert!(mask.iter().any(|(t, m)| t == "body" && *m));
        assert!(mask.iter().any(|(t, m)| t == "live" && !*m));
    }

    #[test]
    fn cfg_not_test_stays_live() {
        let src = "#[cfg(not(test))]\nfn live() { body(); }";
        let mask = mask_of(src);
        assert!(mask.iter().all(|(_, m)| !m));
    }

    #[test]
    fn cfg_any_test_is_masked() {
        let src = "#[cfg(any(test, feature = \"x\"))]\nfn helper() {}\nfn live() {}";
        let mask = mask_of(src);
        assert!(mask.iter().any(|(t, m)| t == "helper" && *m));
        assert!(mask.iter().any(|(t, m)| t == "live" && !*m));
    }

    #[test]
    fn inner_cfg_test_masks_the_rest_of_the_file() {
        let src = "fn live() {}\n#![cfg(test)]\nfn a() {}\nfn b() {}";
        let mask = mask_of(src);
        assert!(mask.iter().any(|(t, m)| t == "live" && !*m));
        assert!(mask.iter().any(|(t, m)| t == "a" && *m));
        assert!(mask.iter().any(|(t, m)| t == "b" && *m));
    }

    #[test]
    fn attribute_on_use_item_ends_at_semicolon() {
        let src = "#[cfg(test)]\nuse std::collections::HashMap;\nfn live() {}";
        let mask = mask_of(src);
        assert!(mask.iter().any(|(t, m)| t == "HashMap" && *m));
        assert!(mask.iter().any(|(t, m)| t == "live" && !*m));
    }

    #[test]
    fn stacked_attributes_are_covered() {
        let src = "#[cfg(test)]\n#[allow(dead_code)]\nfn t() { body(); }\nfn live() {}";
        let mask = mask_of(src);
        assert!(mask.iter().any(|(t, m)| t == "body" && *m));
        assert!(mask.iter().any(|(t, m)| t == "live" && !*m));
    }

    fn allows_of(src: &str) -> (Vec<Allow>, Vec<Diagnostic>) {
        let f = SourceFile::parse("crates/core/src/x.rs", src);
        (f.allows, f.malformed)
    }

    #[test]
    fn trailing_allow_targets_its_own_line() {
        let (allows, bad) = allows_of("let x = 1; // simlint: allow(E001, \"why\")\n");
        assert!(bad.is_empty());
        assert_eq!(allows.len(), 1);
        assert_eq!(allows[0].rule, "E001");
        assert_eq!(allows[0].target_line, 1);
        assert_eq!(allows[0].reason, "why");
    }

    #[test]
    fn own_line_allow_targets_next_code_line() {
        let src = "// simlint: allow(D001, \"audited\")\n\n// plain comment\nlet m = 1;\n";
        let (allows, bad) = allows_of(src);
        assert!(bad.is_empty());
        assert_eq!(allows[0].target_line, 4);
    }

    #[test]
    fn malformed_directives_are_a002() {
        for src in [
            "// simlint: allow(E001)\nlet x = 1;\n",
            "// simlint: allow(E001, \"\")\nlet x = 1;\n",
            "// simlint: allow(NOPE, \"reason\")\nlet x = 1;\n",
            "// simlint: deny(E001, \"reason\")\nlet x = 1;\n",
            "// simlint: allow(E001, \"dangling\")\n",
        ] {
            let (allows, bad) = allows_of(src);
            assert!(allows.is_empty(), "{src}");
            assert_eq!(bad.len(), 1, "{src}");
            assert_eq!(bad[0].rule, "A002");
        }
    }

    #[test]
    fn doc_text_mention_is_not_a_directive() {
        let (allows, bad) = allows_of("/// `// simlint: allow(E001, \"x\")`\nfn f() {}\n");
        assert!(allows.is_empty());
        assert!(bad.is_empty());
    }
}
