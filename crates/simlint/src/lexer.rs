//! A token-level lexer for Rust source.
//!
//! This is not a parser: it only needs to be exact about what is and is not
//! a *token*, so that rule patterns never fire inside strings or comments
//! and so that comments (the carrier of `simlint: allow` directives) are
//! recovered with their position and layout. It handles the full literal
//! surface that matters for that goal: nested block comments, raw strings
//! with any hash depth, byte/C string prefixes, raw identifiers, and the
//! char-literal/lifetime ambiguity.

/// What kind of token was lexed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TokenKind {
    /// An identifier or keyword (keywords are not distinguished here).
    Ident,
    /// A lifetime such as `'a` (not a char literal).
    Lifetime,
    /// A numeric literal (integer or float, any base, with suffix).
    Number,
    /// A string literal of any flavour (`"…"`, `r#"…"#`, `b"…"`, `c"…"`).
    Str,
    /// A char or byte-char literal (`'x'`, `b'\n'`).
    Char,
    /// A single punctuation character (delimiters included).
    Punct(char),
}

/// One code token with its source position (1-based line and column).
#[derive(Debug, Clone, Copy)]
pub struct Token<'a> {
    pub kind: TokenKind,
    pub text: &'a str,
    pub line: u32,
    pub col: u32,
}

impl<'a> Token<'a> {
    /// `true` for a punctuation token of exactly `c`.
    #[must_use]
    pub fn is_punct(&self, c: char) -> bool {
        self.kind == TokenKind::Punct(c)
    }

    /// `true` for an identifier token spelling exactly `name`.
    #[must_use]
    pub fn is_ident(&self, name: &str) -> bool {
        self.kind == TokenKind::Ident && self.text == name
    }
}

/// One comment (line or block) with its position and layout.
#[derive(Debug, Clone, Copy)]
pub struct Comment<'a> {
    /// The raw comment text including the `//` / `/*` delimiters.
    pub text: &'a str,
    /// Line the comment starts on (1-based).
    pub line: u32,
    /// `true` if a code token precedes the comment on the same line
    /// (a trailing comment), `false` if the comment owns its line.
    pub trailing: bool,
}

/// The full lex of one source file.
#[derive(Debug)]
pub struct Lexed<'a> {
    pub tokens: Vec<Token<'a>>,
    pub comments: Vec<Comment<'a>>,
}

struct Lexer<'a> {
    src: &'a str,
    bytes: &'a [u8],
    pos: usize,
    line: u32,
    col: u32,
    /// Line of the most recently emitted code token.
    last_token_line: u32,
}

fn is_ident_start(c: char) -> bool {
    c == '_' || c.is_alphabetic()
}

fn is_ident_continue(c: char) -> bool {
    c == '_' || c.is_alphanumeric()
}

impl<'a> Lexer<'a> {
    fn peek(&self) -> Option<char> {
        self.src[self.pos..].chars().next()
    }

    fn peek_at(&self, byte_offset: usize) -> Option<char> {
        self.src.get(self.pos + byte_offset..)?.chars().next()
    }

    /// Advances past one char, maintaining line/column counters.
    fn bump(&mut self) -> Option<char> {
        let c = self.peek()?;
        self.pos += c.len_utf8();
        if c == '\n' {
            self.line += 1;
            self.col = 1;
        } else {
            self.col += 1;
        }
        Some(c)
    }

    /// Consumes chars while `pred` holds.
    fn bump_while(&mut self, pred: impl Fn(char) -> bool) {
        while let Some(c) = self.peek() {
            if !pred(c) {
                break;
            }
            self.bump();
        }
    }

    /// Consumes a `"…"` body (opening quote already consumed), honouring
    /// backslash escapes.
    fn string_body(&mut self) {
        while let Some(c) = self.bump() {
            match c {
                '\\' => {
                    self.bump();
                }
                '"' => break,
                _ => {}
            }
        }
    }

    /// Consumes a raw-string body: `#…#"…"#…#` with `hashes` hashes
    /// (the hashes and opening quote already consumed).
    fn raw_string_body(&mut self, hashes: usize) {
        while let Some(c) = self.bump() {
            if c == '"' {
                let mut seen = 0;
                while seen < hashes && self.peek() == Some('#') {
                    self.bump();
                    seen += 1;
                }
                if seen == hashes {
                    break;
                }
            }
        }
    }
}

/// Lexes `src` into code tokens and comments.
#[must_use]
pub fn lex(src: &str) -> Lexed<'_> {
    let mut lx = Lexer {
        src,
        bytes: src.as_bytes(),
        pos: 0,
        line: 1,
        col: 1,
        last_token_line: 0,
    };
    let mut tokens = Vec::new();
    let mut comments = Vec::new();

    while let Some(c) = lx.peek() {
        let start = lx.pos;
        let (line, col) = (lx.line, lx.col);
        if c.is_whitespace() {
            lx.bump();
            continue;
        }
        // Comments.
        if c == '/' && lx.peek_at(1) == Some('/') {
            while let Some(c) = lx.peek() {
                if c == '\n' {
                    break;
                }
                lx.bump();
            }
            comments.push(Comment {
                text: &src[start..lx.pos],
                line,
                trailing: lx.last_token_line == line,
            });
            continue;
        }
        if c == '/' && lx.peek_at(1) == Some('*') {
            lx.bump();
            lx.bump();
            let mut depth = 1usize;
            while depth > 0 {
                match lx.bump() {
                    Some('/') if lx.peek() == Some('*') => {
                        lx.bump();
                        depth += 1;
                    }
                    Some('*') if lx.peek() == Some('/') => {
                        lx.bump();
                        depth -= 1;
                    }
                    Some(_) => {}
                    None => break,
                }
            }
            comments.push(Comment {
                text: &src[start..lx.pos],
                line,
                trailing: lx.last_token_line == line,
            });
            continue;
        }
        // Identifiers and literal prefixes (r"", r#""#, b"", b'', br"", c"").
        if is_ident_start(c) {
            lx.bump();
            lx.bump_while(is_ident_continue);
            let word = &src[start..lx.pos];
            let kind = match (word, lx.peek()) {
                // Raw identifier r#name — but r#" starts a raw string.
                ("r", Some('#')) if lx.peek_at(1).is_some_and(is_ident_start) => {
                    lx.bump();
                    lx.bump_while(is_ident_continue);
                    TokenKind::Ident
                }
                ("r" | "br" | "cr", Some('#' | '"')) => {
                    let mut hashes = 0;
                    while lx.peek() == Some('#') {
                        lx.bump();
                        hashes += 1;
                    }
                    if lx.peek() == Some('"') {
                        lx.bump();
                        lx.raw_string_body(hashes);
                        TokenKind::Str
                    } else {
                        // `r#` followed by neither quote nor ident: emit the
                        // word alone and let the `#` lex as punctuation.
                        TokenKind::Ident
                    }
                }
                ("b" | "c", Some('"')) => {
                    lx.bump();
                    lx.string_body();
                    TokenKind::Str
                }
                ("b", Some('\'')) => {
                    lx.bump();
                    if lx.peek() == Some('\\') {
                        lx.bump();
                        lx.bump();
                    } else {
                        lx.bump();
                    }
                    if lx.peek() == Some('\'') {
                        lx.bump();
                    }
                    TokenKind::Char
                }
                _ => TokenKind::Ident,
            };
            tokens.push(Token {
                kind,
                text: &src[start..lx.pos],
                line,
                col,
            });
            lx.last_token_line = line;
            continue;
        }
        // Numbers (suffixes and `_` separators fold into the alnum run;
        // a single `.` joins only when a digit follows, so `1..n` stays
        // three tokens).
        if c.is_ascii_digit() {
            lx.bump();
            lx.bump_while(is_ident_continue);
            if lx.peek() == Some('.') && lx.peek_at(1).is_some_and(|d| d.is_ascii_digit()) {
                lx.bump();
                lx.bump_while(is_ident_continue);
            }
            tokens.push(Token {
                kind: TokenKind::Number,
                text: &src[start..lx.pos],
                line,
                col,
            });
            lx.last_token_line = line;
            continue;
        }
        // Strings.
        if c == '"' {
            lx.bump();
            lx.string_body();
            tokens.push(Token {
                kind: TokenKind::Str,
                text: &src[start..lx.pos],
                line,
                col,
            });
            lx.last_token_line = line;
            continue;
        }
        // Char literal or lifetime.
        if c == '\'' {
            lx.bump();
            let kind = match lx.peek() {
                Some('\\') => {
                    // Escaped char literal: consume through the closing quote.
                    lx.bump();
                    lx.bump();
                    while let Some(c) = lx.peek() {
                        lx.bump();
                        if c == '\'' {
                            break;
                        }
                    }
                    TokenKind::Char
                }
                Some(c2) if is_ident_start(c2) || c2.is_ascii_digit() => {
                    lx.bump();
                    lx.bump_while(is_ident_continue);
                    if lx.peek() == Some('\'') {
                        lx.bump();
                        TokenKind::Char
                    } else {
                        TokenKind::Lifetime
                    }
                }
                Some(_) => {
                    // Something like '(' — a plain char literal.
                    lx.bump();
                    if lx.peek() == Some('\'') {
                        lx.bump();
                    }
                    TokenKind::Char
                }
                None => TokenKind::Lifetime,
            };
            tokens.push(Token {
                kind,
                text: &src[start..lx.pos],
                line,
                col,
            });
            lx.last_token_line = line;
            continue;
        }
        // Everything else: one punctuation char per token.
        lx.bump();
        tokens.push(Token {
            kind: TokenKind::Punct(c),
            text: &src[start..lx.pos],
            line,
            col,
        });
        lx.last_token_line = line;
    }
    debug_assert!(lx.pos == lx.bytes.len());
    Lexed { tokens, comments }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn idents(src: &str) -> Vec<&str> {
        lex(src)
            .tokens
            .iter()
            .filter(|t| t.kind == TokenKind::Ident)
            .map(|t| t.text)
            .collect()
    }

    #[test]
    fn strings_and_comments_hide_their_contents() {
        let src = r##"let x = "thread_rng()"; // thread_rng
        /* thread_rng */ let y = r#"thread_rng"#;"##;
        assert_eq!(idents(src), ["let", "x", "let", "y"]);
    }

    #[test]
    fn nested_block_comments() {
        let src = "/* a /* b */ c */ fn f() {}";
        let lexed = lex(src);
        assert_eq!(lexed.comments.len(), 1);
        assert_eq!(idents(src), ["fn", "f"]);
    }

    #[test]
    fn char_literal_vs_lifetime() {
        let lexed = lex("let c = 'a'; fn f<'a>(x: &'a str) {}");
        let kinds: Vec<_> = lexed
            .tokens
            .iter()
            .filter(|t| matches!(t.kind, TokenKind::Char | TokenKind::Lifetime))
            .map(|t| (t.kind, t.text))
            .collect();
        assert_eq!(
            kinds,
            [
                (TokenKind::Char, "'a'"),
                (TokenKind::Lifetime, "'a"),
                (TokenKind::Lifetime, "'a"),
            ]
        );
    }

    #[test]
    fn escaped_char_literal() {
        let lexed = lex(r"let c = '\n'; let u = '\u{1F}';");
        let chars: Vec<_> = lexed
            .tokens
            .iter()
            .filter(|t| t.kind == TokenKind::Char)
            .map(|t| t.text)
            .collect();
        assert_eq!(chars, [r"'\n'", r"'\u{1F}'"]);
    }

    #[test]
    fn raw_strings_with_hashes() {
        let src = r###"let s = r#"quote " inside"#; let t = "tail";"###;
        let strs: Vec<_> = lex(src)
            .tokens
            .iter()
            .filter(|t| t.kind == TokenKind::Str)
            .map(|t| t.text)
            .collect();
        assert_eq!(strs.len(), 2);
        assert!(strs[0].starts_with("r#\""));
        assert_eq!(strs[1], "\"tail\"");
    }

    #[test]
    fn raw_identifier_is_an_ident() {
        assert_eq!(idents("r#type r#fn normal"), ["r#type", "r#fn", "normal"]);
    }

    #[test]
    fn trailing_vs_own_line_comments() {
        let src = "let x = 1; // trailing\n// own line\nlet y = 2;";
        let lexed = lex(src);
        assert_eq!(lexed.comments.len(), 2);
        assert!(lexed.comments[0].trailing);
        assert!(!lexed.comments[1].trailing);
    }

    #[test]
    fn number_ranges_do_not_eat_dots() {
        let texts: Vec<_> = lex("for i in 1..10 { let f = 2.5e3; }")
            .tokens
            .iter()
            .map(|t| t.text)
            .collect();
        assert!(texts.contains(&"1"));
        assert!(texts.contains(&"10"));
        assert!(texts.contains(&"2.5e3"));
    }

    #[test]
    fn positions_are_one_based() {
        let lexed = lex("a\n  b");
        assert_eq!((lexed.tokens[0].line, lexed.tokens[0].col), (1, 1));
        assert_eq!((lexed.tokens[1].line, lexed.tokens[1].col), (2, 3));
    }
}
