//! The workspace's own sources must lint clean — zero diagnostics, not
//! merely zero errors. This is the same bar CI enforces with
//! `simlint --deny all`; keeping it as a cargo test means a plain
//! `cargo test -q` catches contract regressions without the extra CI step.

#[test]
fn the_workspace_lints_clean_at_deny_all() {
    let root = std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("..")
        .join("..");
    assert!(
        root.join("Cargo.toml").is_file(),
        "fixture assumption broken: {} is not the workspace root",
        root.display()
    );
    let diags = simlint::lint_workspace(&root).expect("workspace sources are readable");
    let lines: Vec<String> = diags
        .iter()
        .map(simlint::Diagnostic::render_human)
        .collect();
    assert!(
        lines.is_empty(),
        "the workspace no longer lints clean:\n{}",
        lines.join("\n")
    );
}
