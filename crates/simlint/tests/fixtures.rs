//! Fixture corpus: every rule pinned by one firing and one clean fixture,
//! with exact-diagnostic assertions (rule, position, and message).
//!
//! The fixtures live under `tests/fixtures/` and are linted under synthetic
//! workspace-relative paths, so each rule's scoping (engine/core for
//! D004/E001, everywhere for the rest) is exercised too.

use simlint::audit::{run_audit, EnumAudit};
use simlint::source::SourceFile;
use simlint::{lint_sources, Diagnostic, Severity};

/// Lints one fixture under a synthetic workspace-relative path.
fn lint_fixture(path: &str, fixture: &str) -> Vec<Diagnostic> {
    lint_sources(&[(path.to_string(), fixture.to_string())])
}

fn rendered(diags: &[Diagnostic]) -> Vec<String> {
    diags.iter().map(Diagnostic::render_human).collect()
}

/// D004 and E001 run only here (engine/core scope).
const ENGINE_PATH: &str = "crates/engine/src/fixture.rs";
/// A linted path outside the engine/core scope.
const PLAIN_PATH: &str = "crates/workload/src/fixture.rs";

#[test]
fn d001_fires_on_binding_and_both_iteration_forms() {
    let diags = lint_fixture(PLAIN_PATH, include_str!("fixtures/d001_violation.rs"));
    assert_eq!(
        rendered(&diags),
        [
            "crates/workload/src/fixture.rs:5:5: error[D001]: `counts` binds a `HashMap` in \
             deterministic code: audit the use (lookup-only is fine) and suppress with \
             `// simlint: allow(D001, \"\u{2026}\")` documenting why no iteration order escapes",
            "crates/workload/src/fixture.rs:9:39: error[D001]: `counts.keys()` iterates a hash \
             container: hash order is nondeterministic and must not reach artifacts; iterate a \
             sorted or insertion-ordered carrier instead",
            "crates/workload/src/fixture.rs:10:16: error[D001]: `for \u{2026} in counts` iterates \
             a hash container: hash order is nondeterministic and must not reach artifacts; \
             iterate a sorted or insertion-ordered carrier instead",
        ]
    );
}

#[test]
fn d001_clean_lookup_only_binding_under_allow() {
    let diags = lint_fixture(PLAIN_PATH, include_str!("fixtures/d001_clean.rs"));
    assert_eq!(rendered(&diags), [] as [&str; 0]);
}

#[test]
fn d002_fires_on_both_wall_clock_shapes() {
    let diags = lint_fixture(PLAIN_PATH, include_str!("fixtures/d002_violation.rs"));
    assert_eq!(
        rendered(&diags),
        [
            "crates/workload/src/fixture.rs:3:28: error[D002]: `Instant` reads the wall clock \
             outside the telemetry/progress allowlist: wall time must never influence \
             simulation results or artifacts",
            "crates/workload/src/fixture.rs:4:29: error[D002]: `SystemTime` reads the wall \
             clock outside the telemetry/progress allowlist: wall time must never influence \
             simulation results or artifacts",
        ]
    );
}

#[test]
fn d002_clean_simulated_time_and_test_only_reads() {
    let diags = lint_fixture(PLAIN_PATH, include_str!("fixtures/d002_clean.rs"));
    assert_eq!(rendered(&diags), [] as [&str; 0]);
}

#[test]
fn d002_allowlisted_paths_may_read_the_clock() {
    let diags = lint_fixture(
        "crates/telemetry/src/fixture.rs",
        include_str!("fixtures/d002_violation.rs"),
    );
    assert_eq!(rendered(&diags), [] as [&str; 0]);
}

#[test]
fn d003_fires_on_ad_hoc_rng_construction() {
    let diags = lint_fixture(PLAIN_PATH, include_str!("fixtures/d003_violation.rs"));
    assert_eq!(
        rendered(&diags),
        [
            "crates/workload/src/fixture.rs:3:25: error[D003]: ad-hoc RNG construction \
             (`thread_rng`): all randomness must derive from the (master seed, scenario, \
             replication) stream key via `engine::rng::replication_rng`",
            "crates/workload/src/fixture.rs:4:38: error[D003]: ad-hoc RNG construction \
             (`seed_from_u64`): all randomness must derive from the (master seed, scenario, \
             replication) stream key via `engine::rng::replication_rng`",
        ]
    );
}

#[test]
fn d003_clean_rng_flows_in_as_an_argument() {
    let diags = lint_fixture(PLAIN_PATH, include_str!("fixtures/d003_clean.rs"));
    assert_eq!(rendered(&diags), [] as [&str; 0]);
}

#[test]
fn d003_exempt_in_the_blessed_construction_site() {
    let diags = lint_fixture(
        "crates/engine/src/rng.rs",
        include_str!("fixtures/d003_violation.rs"),
    );
    assert_eq!(rendered(&diags), [] as [&str; 0]);
}

#[test]
fn d004_fires_on_env_and_thread_identity_reads() {
    let diags = lint_fixture(ENGINE_PATH, include_str!("fixtures/d004_violation.rs"));
    assert_eq!(
        rendered(&diags),
        [
            "crates/engine/src/fixture.rs:4:16: error[D004]: `std::env` read in a sim/engine \
             path: results must depend only on (config, master seed), never on the environment \
             or thread identity",
            "crates/engine/src/fixture.rs:4:21: error[D004]: `env::var` read in a sim/engine \
             path: results must depend only on (config, master seed), never on the environment \
             or thread identity",
            "crates/engine/src/fixture.rs:5:33: error[D004]: `thread::current` read in a \
             sim/engine path: results must depend only on (config, master seed), never on the \
             environment or thread identity",
        ]
    );
}

#[test]
fn d004_clean_config_as_data() {
    let diags = lint_fixture(ENGINE_PATH, include_str!("fixtures/d004_clean.rs"));
    assert_eq!(rendered(&diags), [] as [&str; 0]);
}

#[test]
fn d004_does_not_run_outside_engine_core() {
    let diags = lint_fixture(PLAIN_PATH, include_str!("fixtures/d004_violation.rs"));
    assert_eq!(rendered(&diags), [] as [&str; 0]);
}

#[test]
fn e001_fires_as_a_warning_on_unwrap_and_expect() {
    let diags = lint_fixture(ENGINE_PATH, include_str!("fixtures/e001_violation.rs"));
    assert!(diags.iter().all(|d| d.severity == Severity::Warning));
    assert_eq!(
        rendered(&diags),
        [
            "crates/engine/src/fixture.rs:3:17: warning[E001]: `.unwrap(\u{2026})` in \
             engine/core non-test code: return a typed `engine::Error`/`SwarmError` instead, \
             or suppress with `// simlint: allow(E001, \"\u{2026}\")` stating the invariant \
             that makes the panic unreachable",
            "crates/engine/src/fixture.rs:7:7: warning[E001]: `.expect(\u{2026})` in \
             engine/core non-test code: return a typed `engine::Error`/`SwarmError` instead, \
             or suppress with `// simlint: allow(E001, \"\u{2026}\")` stating the invariant \
             that makes the panic unreachable",
        ]
    );
}

#[test]
fn e001_clean_typed_errors_test_unwraps_and_unwrap_or() {
    let diags = lint_fixture(ENGINE_PATH, include_str!("fixtures/e001_clean.rs"));
    assert_eq!(rendered(&diags), [] as [&str; 0]);
}

#[test]
fn x001_unwired_variants_are_reported_at_their_declaration() {
    let audit = EnumAudit {
        rule: "X001",
        enum_path: "crates/x/src/kind.rs",
        enum_name: "Kind",
        targets: &[("crates/x/src/dispatch.rs", "the dispatcher")],
    };
    let files = [
        SourceFile::parse("crates/x/src/kind.rs", include_str!("fixtures/x_enum.rs")),
        SourceFile::parse(
            "crates/x/src/dispatch.rs",
            include_str!("fixtures/x_target_unwired.rs"),
        ),
    ];
    assert_eq!(
        rendered(&run_audit(&audit, &files)),
        [
            "crates/x/src/kind.rs:4:5: error[X001]: `Kind::Beta` is not referenced in \
             `crates/x/src/dispatch.rs` (the dispatcher): wire the variant through or the \
             contract is no longer exhaustive",
            "crates/x/src/kind.rs:5:5: error[X001]: `Kind::Gamma` is not referenced in \
             `crates/x/src/dispatch.rs` (the dispatcher): wire the variant through or the \
             contract is no longer exhaustive",
        ]
    );
}

#[test]
fn x001_fully_wired_target_is_clean() {
    let audit = EnumAudit {
        rule: "X001",
        enum_path: "crates/x/src/kind.rs",
        enum_name: "Kind",
        targets: &[("crates/x/src/dispatch.rs", "the dispatcher")],
    };
    let files = [
        SourceFile::parse("crates/x/src/kind.rs", include_str!("fixtures/x_enum.rs")),
        SourceFile::parse(
            "crates/x/src/dispatch.rs",
            include_str!("fixtures/x_target_wired.rs"),
        ),
    ];
    assert_eq!(rendered(&run_audit(&audit, &files)), [] as [&str; 0]);
}

#[test]
fn x002_missing_target_file_is_itself_an_error() {
    // Same mechanism as X001, reported under the counter rule: an audit
    // whose target file vanished must scream, not silently stop auditing.
    let audit = EnumAudit {
        rule: "X002",
        enum_path: "crates/x/src/kind.rs",
        enum_name: "Kind",
        targets: &[("crates/x/tests/partition.rs", "the counter-partition test")],
    };
    let files = [SourceFile::parse(
        "crates/x/src/kind.rs",
        include_str!("fixtures/x_enum.rs"),
    )];
    assert_eq!(
        rendered(&run_audit(&audit, &files)),
        [
            "crates/x/src/kind.rs:1:1: error[X002]: audit target `crates/x/tests/partition.rs` \
          (the counter-partition test) is missing from the source set"
        ]
    );
}

#[test]
fn x002_present_target_referencing_every_variant_is_clean() {
    let audit = EnumAudit {
        rule: "X002",
        enum_path: "crates/x/src/kind.rs",
        enum_name: "Kind",
        targets: &[("crates/x/tests/partition.rs", "the counter-partition test")],
    };
    let files = [
        SourceFile::parse("crates/x/src/kind.rs", include_str!("fixtures/x_enum.rs")),
        SourceFile::parse(
            "crates/x/tests/partition.rs",
            include_str!("fixtures/x_target_wired.rs"),
        ),
    ];
    assert_eq!(rendered(&run_audit(&audit, &files)), [] as [&str; 0]);
}

#[test]
fn a001_stale_allow_is_an_error() {
    let diags = lint_fixture(ENGINE_PATH, include_str!("fixtures/a001_unused_allow.rs"));
    assert_eq!(
        rendered(&diags),
        [
            "crates/engine/src/fixture.rs:3:1: error[A001]: unused `simlint: allow(E001)` — the \
          rule did not fire on line 4; remove the stale directive"
        ]
    );
}

#[test]
fn a002_malformed_directives_are_errors() {
    let diags = lint_fixture(ENGINE_PATH, include_str!("fixtures/a002_malformed.rs"));
    assert_eq!(
        rendered(&diags),
        [
            "crates/engine/src/fixture.rs:3:1: error[A002]: malformed simlint directive \
             (missing the reason argument); expected `// simlint: allow(RULE, \"reason\")`",
            "crates/engine/src/fixture.rs:4:1: error[A002]: malformed simlint directive \
             (unknown rule `BOGUS`); expected `// simlint: allow(RULE, \"reason\")`",
        ]
    );
}
