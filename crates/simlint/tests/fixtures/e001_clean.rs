// E001 clean fixture: typed fallibility in live code; unwraps confined to
// the test module (exempt) and the fallible-adjacent combinators
// (`unwrap_or`) that never panic.
pub fn head(xs: &[u32]) -> Option<u32> {
    xs.first().copied()
}

pub fn head_or_zero(xs: &[u32]) -> u32 {
    head(xs).unwrap_or(0)
}

#[cfg(test)]
mod tests {
    #[test]
    fn head_works() {
        assert_eq!(super::head(&[3]).unwrap(), 3);
    }
}
