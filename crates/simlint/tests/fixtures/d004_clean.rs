// D004 clean fixture: configuration arrives as data, never from the
// environment, and worker identity is an explicit index.
pub fn worker_tag(jobs: usize, worker: usize) -> String {
    format!("{worker}/{jobs}")
}
