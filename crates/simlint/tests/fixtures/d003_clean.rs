// D003 clean fixture: randomness flows in as a stream-keyed RNG argument;
// nothing here constructs one.
pub fn draw<R: rand::Rng>(rng: &mut R) -> f64 {
    rng.gen::<f64>()
}
