// Shared X-rule fixture: the audited enum.
pub enum Kind {
    Alpha,
    Beta(u32),
    Gamma { weight: f64 },
}
