// E001 firing fixture: panics in engine/core non-test code.
pub fn head(xs: &[u32]) -> u32 {
    *xs.first().unwrap()
}

pub fn must(x: Option<u32>) -> u32 {
    x.expect("present by construction")
}
