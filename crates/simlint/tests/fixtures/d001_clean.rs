// D001 clean fixture: a lookup-only hash binding under a documented allow;
// every iteration runs over the insertion-ordered carrier.
use std::collections::HashMap;

pub fn dedup_indices(keys: &[u64]) -> Vec<usize> {
    // simlint: allow(D001, "lookup-only: insert/get, iteration stays on the input slice")
    let mut index: HashMap<u64, usize> = HashMap::new();
    let mut out = Vec::new();
    for (i, k) in keys.iter().enumerate() {
        if index.insert(*k, i).is_none() {
            out.push(i);
        }
    }
    out
}
