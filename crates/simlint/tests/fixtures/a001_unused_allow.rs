// A001 firing fixture: a stale allow whose rule never fires on the target.
pub fn tidy(x: Option<u32>) -> u32 {
    // simlint: allow(E001, "stale: the unwrap below was removed")
    x.unwrap_or(0)
}
