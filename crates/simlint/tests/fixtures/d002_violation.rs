// D002 firing fixture: both wall-clock read shapes.
pub fn stamp() -> std::time::Duration {
    let begin = std::time::Instant::now();
    let _epoch = std::time::SystemTime::UNIX_EPOCH;
    begin.elapsed()
}
