// D001 firing fixture: an un-audited hash binding plus two iteration forms.
use std::collections::HashMap;

pub fn histogram(names: &[&str]) -> Vec<String> {
    let mut counts: HashMap<String, u32> = HashMap::new();
    for name in names {
        *counts.entry((*name).to_string()).or_insert(0) += 1;
    }
    let mut out: Vec<String> = counts.keys().cloned().collect();
    for key in counts {
        out.push(key.0);
    }
    out
}
