// D002 clean fixture: simulated time is plain data, and a test-only
// wall-clock read is exempt.
pub fn advance(now: f64, dt: f64) -> f64 {
    now + dt
}

#[cfg(test)]
mod tests {
    #[test]
    fn wall_clock_in_tests_is_fine() {
        let _t = std::time::Instant::now();
        assert_eq!(super::advance(1.0, 0.5), 1.5);
    }
}
