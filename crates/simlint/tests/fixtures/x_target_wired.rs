// X-rule clean fixture: every Kind variant is wired through the dispatcher.
pub fn dispatch(kind: &crate::Kind) -> &'static str {
    match kind {
        crate::Kind::Alpha => "alpha",
        crate::Kind::Beta(_) => "beta",
        crate::Kind::Gamma { .. } => "gamma",
    }
}
