// D003 firing fixture: ad-hoc RNG constructions outside engine::rng.
pub fn entropy_rng() -> u64 {
    let mut rng = rand::thread_rng();
    let seeded = rand::rngs::StdRng::seed_from_u64(42);
    rand::Rng::gen(&mut rng) ^ rand::Rng::gen(&mut { seeded })
}
