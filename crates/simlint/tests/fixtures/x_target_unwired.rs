// X-rule firing fixture: Gamma is missing from the dispatcher.
pub fn dispatch(kind: &crate::Kind) -> &'static str {
    match kind {
        crate::Kind::Alpha => "alpha",
        _ => "beta",
    }
}
