// D004 firing fixture: environment and thread-identity reads in an
// engine-path file.
pub fn worker_tag() -> String {
    let jobs = std::env::var("JOBS").unwrap_or_default();
    format!("{jobs}/{:?}", std::thread::current().id())
}
