// A002 firing fixture: directives that fail to parse.
pub fn noop(x: Option<u32>) -> u32 {
    // simlint: allow(E001)
    // simlint: allow(BOGUS, "unknown rule")
    x.unwrap_or(0)
}
