//! A minimal JSON reader/writer for scenario files.
//!
//! The workspace's `serde` is an inert offline shim (see `shims/README.md`),
//! so the scenario registry parses its files with this hand-rolled
//! recursive-descent reader: the full JSON grammar (objects, arrays,
//! strings with escapes, numbers, booleans, null), error messages with byte
//! offsets, and nothing else. Writing goes through [`Json::render`], which
//! prints floats with Rust's shortest-round-trip `Display` so emitted files
//! are canonical and byte-stable.

use std::fmt::Write as _;

/// A parsed JSON value. Object member order is preserved.
#[derive(Debug, Clone, PartialEq)]
pub(crate) enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any JSON number (parsed as `f64`).
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object, members in file order.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Looks up a member of an object (`None` for missing keys or
    /// non-objects).
    pub(crate) fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(members) => members.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The member keys of an object (empty for non-objects).
    pub(crate) fn keys(&self) -> Vec<&str> {
        match self {
            Json::Obj(members) => members.iter().map(|(k, _)| k.as_str()).collect(),
            _ => Vec::new(),
        }
    }

    /// Renders the value as compact JSON (non-finite numbers as `null`).
    pub(crate) fn render(&self) -> String {
        let mut out = String::new();
        self.write(&mut out);
        out
    }

    fn write(&self, out: &mut String) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::Num(x) => {
                if x.is_finite() {
                    let _ = write!(out, "{x}");
                } else {
                    out.push_str("null");
                }
            }
            Json::Str(s) => {
                out.push('"');
                for c in s.chars() {
                    match c {
                        '"' => out.push_str("\\\""),
                        '\\' => out.push_str("\\\\"),
                        '\n' => out.push_str("\\n"),
                        '\r' => out.push_str("\\r"),
                        '\t' => out.push_str("\\t"),
                        c if (c as u32) < 0x20 => {
                            let _ = write!(out, "\\u{:04x}", c as u32);
                        }
                        c => out.push(c),
                    }
                }
                out.push('"');
            }
            Json::Arr(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.write(out);
                }
                out.push(']');
            }
            Json::Obj(members) => {
                out.push('{');
                for (i, (key, value)) in members.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    Json::Str(key.clone()).write(out);
                    out.push(':');
                    value.write(out);
                }
                out.push('}');
            }
        }
    }
}

/// Parses a JSON document (exactly one top-level value).
pub(crate) fn parse(input: &str) -> Result<Json, String> {
    let mut p = Parser {
        bytes: input.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let value = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.error("trailing characters after the JSON document"));
    }
    Ok(value)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn error(&self, message: &str) -> String {
        format!("{message} (at byte {})", self.pos)
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, byte: u8) -> Result<(), String> {
        if self.peek() == Some(byte) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.error(&format!("expected `{}`", byte as char)))
        }
    }

    fn literal(&mut self, text: &str, value: Json) -> Result<Json, String> {
        if self.bytes[self.pos..].starts_with(text.as_bytes()) {
            self.pos += text.len();
            Ok(value)
        } else {
            Err(self.error(&format!("expected `{text}`")))
        }
    }

    fn value(&mut self) -> Result<Json, String> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'n') => self.literal("null", Json::Null),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            _ => Err(self.error("expected a JSON value")),
        }
    }

    fn object(&mut self) -> Result<Json, String> {
        self.expect(b'{')?;
        let mut members = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(members));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value()?;
            members.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(members));
                }
                _ => return Err(self.error("expected `,` or `}` in object")),
            }
        }
    }

    fn array(&mut self) -> Result<Json, String> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(self.error("expected `,` or `]` in array")),
            }
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.error("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let escape = self.peek().ok_or_else(|| self.error("bad escape"))?;
                    self.pos += 1;
                    match escape {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'u' => {
                            let hex = self
                                .bytes
                                .get(self.pos..self.pos + 4)
                                .ok_or_else(|| self.error("bad \\u escape"))?;
                            let hex = core::str::from_utf8(hex)
                                .map_err(|_| self.error("bad \\u escape"))?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| self.error("bad \\u escape"))?;
                            self.pos += 4;
                            // Surrogate pairs are not needed for scenario
                            // files; reject rather than mis-decode.
                            let c = char::from_u32(code)
                                .ok_or_else(|| self.error("unsupported \\u code point"))?;
                            out.push(c);
                        }
                        _ => return Err(self.error("unknown escape")),
                    }
                }
                Some(_) => {
                    // Consume one UTF-8 character (multi-byte safe).
                    let rest = &self.bytes[self.pos..];
                    let s = core::str::from_utf8(rest).map_err(|_| self.error("invalid UTF-8"))?;
                    let c = s.chars().next().expect("non-empty by peek");
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn number(&mut self) -> Result<Json, String> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(c) if c.is_ascii_digit() || matches!(c, b'.' | b'e' | b'E' | b'+' | b'-'))
        {
            self.pos += 1;
        }
        let text = core::str::from_utf8(&self.bytes[start..self.pos]).expect("ascii");
        text.parse::<f64>()
            .map(Json::Num)
            .map_err(|_| self.error(&format!("invalid number `{text}`")))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_every_value_kind() {
        let doc = r#"{"a": [1, -2.5, 1e3], "b": {"c": true, "d": null}, "s": "x\n\"y\" ∅"}"#;
        let v = parse(doc).unwrap();
        assert_eq!(
            v.get("a"),
            Some(&Json::Arr(vec![
                Json::Num(1.0),
                Json::Num(-2.5),
                Json::Num(1000.0)
            ]))
        );
        assert_eq!(v.get("b").unwrap().get("c"), Some(&Json::Bool(true)));
        assert_eq!(v.get("b").unwrap().get("d"), Some(&Json::Null));
        assert_eq!(v.get("s"), Some(&Json::Str("x\n\"y\" ∅".to_owned())));
        assert_eq!(v.keys(), vec!["a", "b", "s"]);
    }

    #[test]
    fn round_trips_through_render() {
        let doc = r#"{"name":"flash","rate":0.25,"pieces":[0,1],"on":true,"none":null}"#;
        let v = parse(doc).unwrap();
        assert_eq!(parse(&v.render()).unwrap(), v);
    }

    #[test]
    fn rejects_malformed_documents() {
        for bad in [
            "",
            "{",
            "[1,]",
            "{\"a\" 1}",
            "tru",
            "\"unterminated",
            "{} trailing",
            "{\"a\": 1e}",
        ] {
            assert!(parse(bad).is_err(), "should reject {bad:?}");
        }
    }

    #[test]
    fn unicode_escapes_decode() {
        // \u2205 is the empty-set sign, both escaped and as a raw character.
        assert_eq!(parse("\"\\u2205\"").unwrap(), Json::Str("∅".to_owned()));
        assert_eq!(parse(r#""∅""#).unwrap(), Json::Str("∅".to_owned()));
    }
}
