//! One experiment per paper artifact (see `DESIGN.md` §4 and
//! `EXPERIMENTS.md`).
//!
//! Every function returns an [`ExperimentReport`] containing plain-text
//! tables; the bench targets in `crates/bench` print them, and the
//! integration tests assert their qualitative content (who wins, where the
//! crossover falls) against the paper's predictions.

use crate::report::{fmt_num, ExperimentReport, Table};
use crate::scenario;
use crate::sweep::{run_sweep, summarise, SweepOptions, SweepPoint};
use markov::PathClassifier;
use pieceset::{PieceId, PieceSet};
use swarm::branching_analysis;
use swarm::coded;
use swarm::lyapunov::LyapunovFunction;
use swarm::mu_infinity::{MuInfinityProcess, MuInfinityState};
use swarm::policy;
use swarm::sim::{AgentConfig, AgentSwarm};
use swarm::stability;
use swarm::{SwarmModel, SwarmParams};

/// Shared experiment configuration: a simulation budget and a base seed.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ExperimentConfig {
    /// Simulated horizon for long runs.
    pub horizon: f64,
    /// Master RNG seed (sweeps derive per-point, per-replication streams
    /// from it through the engine).
    pub seed: u64,
    /// Worker threads for sweeps.
    pub threads: usize,
    /// Replications per sweep point, combined by majority vote.
    pub replications: u32,
    /// Report sweep progress on stderr through the engine's built-in
    /// progress sink.
    pub progress: bool,
}

impl ExperimentConfig {
    /// A fast configuration for tests and smoke runs (minutes of simulated
    /// time, not hours).
    #[must_use]
    pub fn quick() -> Self {
        ExperimentConfig {
            horizon: 600.0,
            seed: 0xA11CE,
            threads: 2,
            replications: 2,
            progress: false,
        }
    }

    /// The full configuration used by the bench harness.
    #[must_use]
    pub fn full() -> Self {
        ExperimentConfig {
            horizon: 2_500.0,
            seed: 0xA11CE,
            threads: 0,
            replications: 8,
            progress: false,
        }
    }

    fn sweep_options(&self) -> SweepOptions {
        SweepOptions {
            horizon: self.horizon,
            seed: self.seed,
            threads: self.threads,
            replications: self.replications,
            initial_one_club: 0,
            progress: self.progress,
        }
    }
}

/// Derives the random stream for one illustrative demo trajectory.
///
/// Demo runs use the engine's keyed derivation — `(master seed, stream tag,
/// variant)` — exactly like sweep replications, so no two trajectories ever
/// share a stream. Each experiment passes a distinct `tag` and numbers its
/// variants; the earlier ad-hoc `seed ^ CONST` scheme reused one stream
/// across loop iterations and collided for equal-length policy names.
fn demo_rng(config: &ExperimentConfig, tag: u64, variant: u64) -> impl rand::Rng {
    engine::rng::replication_rng(config.seed, tag, variant)
}

impl Default for ExperimentConfig {
    fn default() -> Self {
        Self::quick()
    }
}

/// The load factors E1 sweeps across the Example 1 boundary; exported so
/// artifact writers (e.g. `run_experiments --out-dir`) describe the same
/// sweep as the E1 report.
pub const EXAMPLE1_LOADS: [f64; 6] = [0.3, 0.6, 0.9, 1.2, 1.6, 2.5];

// The canonical verdict spelling shared with the engine's artifacts.
use engine::labels::verdict_name as verdict_str;

fn sweep_table(title: &str, outcomes: &[crate::SweepOutcome]) -> Table {
    let mut t = Table::new(
        title,
        &[
            "point",
            "theory",
            "simulated",
            "tail slope",
            "tail avg N",
            "agree",
        ],
    );
    for o in outcomes {
        t.row(&[
            o.label.clone(),
            verdict_str(o.theory).to_owned(),
            format!("{:?}", o.simulated),
            fmt_num(o.tail_slope),
            fmt_num(o.tail_average),
            o.agrees.to_string(),
        ]);
    }
    t
}

/// E1 — Example 1 / Fig. 1(a): the single-piece network. Sweeps the load
/// factor `λ0 / (U_s/(1−µ/γ))` across the Theorem 1 boundary and also probes
/// the `γ ≤ µ` regime where any load is stable.
#[must_use]
pub fn example1(config: &ExperimentConfig) -> ExperimentReport {
    let mut report = ExperimentReport::new("E1", "Example 1 (K = 1): fixed seed plus peer seeds");
    let (us, mu, gamma) = (1.0, 1.0, 2.0);
    let threshold = us / (1.0 - mu / gamma);
    report.note(format!(
        "Theorem 1 threshold: λ0 < U_s/(1−µ/γ) = {}",
        fmt_num(threshold)
    ));

    let loads = EXAMPLE1_LOADS;
    let points: Vec<SweepPoint> = loads
        .iter()
        .map(|&f| {
            SweepPoint::new(
                format!("load={f}"),
                scenario::example1_at_load(f, us, mu, gamma).unwrap(),
            )
        })
        .collect();
    let outcomes = run_sweep(&points, config.sweep_options());
    let summary = summarise(&outcomes);
    report.push_table(sweep_table(
        "load sweep across the boundary (µ < γ)",
        &outcomes,
    ));
    report.note(format!(
        "agreement with Theorem 1 on decidable points: {}/{}",
        summary.agreements,
        summary.points - summary.borderline
    ));

    // γ ≤ µ regime: heavy load, weak seed — still stable (any load is).
    let slow = scenario::example1(6.0, 0.3, 1.0, 0.8).unwrap();
    let slow_points = vec![SweepPoint::new("γ=0.8µ, λ0=6, Us=0.3", slow)];
    let slow_outcomes = run_sweep(&slow_points, config.sweep_options());
    report.push_table(sweep_table(
        "slow-departure regime (γ ≤ µ): stable at any load",
        &slow_outcomes,
    ));
    report
}

/// E2 — Example 2 / Fig. 1(b): `K = 4`, two gifted arrival types, no seed,
/// immediate departures. The region is the wedge `λ12 < 2 λ34`, `λ34 < 2 λ12`.
#[must_use]
pub fn example2(config: &ExperimentConfig) -> ExperimentReport {
    let mut report =
        ExperimentReport::new("E2", "Example 2 (K = 4): two arrival types, no seed, γ = ∞");
    report.note("stability region: λ12 < 2·λ34 and λ34 < 2·λ12");
    let lambda34 = 1.0;
    let ratios = [0.3, 0.7, 1.0, 1.5, 2.5, 4.0];
    let points: Vec<SweepPoint> = ratios
        .iter()
        .map(|&r| {
            SweepPoint::new(
                format!("λ12/λ34={r}"),
                scenario::example2(r * lambda34, lambda34, 1.0).unwrap(),
            )
        })
        .collect();
    let outcomes = run_sweep(&points, config.sweep_options());
    let summary = summarise(&outcomes);
    report.push_table(sweep_table(
        "ratio sweep across the 2:1 boundary",
        &outcomes,
    ));
    report.note(format!(
        "agreement with Theorem 1 on decidable points: {}/{}",
        summary.agreements,
        summary.points - summary.borderline
    ));
    report
}

/// E3 — Example 3 / Fig. 1(c): `K = 3`, single-piece arrivals, peer seeds.
/// Sweeps the asymmetry of the arrival rates across the
/// `(2 + µ/γ)/(1 − µ/γ)` boundary, plus the `γ = ∞` degenerate case.
#[must_use]
pub fn example3(config: &ExperimentConfig) -> ExperimentReport {
    let mut report = ExperimentReport::new(
        "E3",
        "Example 3 (K = 3): one-piece arrivals with peer seeds",
    );
    let (mu, gamma) = (1.0, 2.0);
    let factor = (2.0 + mu / gamma) / (1.0 - mu / gamma);
    report.note(format!(
        "stability needs λ_i + λ_j < {} · λ_k for every piece k",
        fmt_num(factor)
    ));

    // λ1 = λ2 = 1; sweep λ3 so that (λ1+λ2)/λ3 crosses the factor.
    let crossings = [0.5, 0.8, 1.0, 1.3, 2.0];
    let points: Vec<SweepPoint> = crossings
        .iter()
        .map(|&c| {
            // (λ1 + λ2)/λ3 = c · factor → transient when c > 1.
            let lambda3 = 2.0 / (c * factor);
            SweepPoint::new(
                format!("(λ1+λ2)/(factor·λ3)={c}"),
                scenario::example3([1.0, 1.0, lambda3], mu, gamma).unwrap(),
            )
        })
        .collect();
    let outcomes = run_sweep(&points, config.sweep_options());
    report.push_table(sweep_table(
        "asymmetry sweep across the Example 3 boundary",
        &outcomes,
    ));

    // γ = ∞: symmetric arrival rates are the (null-recurrent) borderline; any
    // asymmetry is transient.
    let degenerate = vec![
        SweepPoint::new(
            "γ=∞ symmetric",
            scenario::example3([1.0, 1.0, 1.0], 1.0, f64::INFINITY).unwrap(),
        ),
        SweepPoint::new(
            "γ=∞ asymmetric",
            scenario::example3([1.0, 1.0, 0.5], 1.0, f64::INFINITY).unwrap(),
        ),
    ];
    let outcomes = run_sweep(&degenerate, config.sweep_options());
    report.push_table(sweep_table(
        "γ = ∞ degenerate cases (Section VIII-D)",
        &outcomes,
    ));
    report
}

/// E4 — Fig. 2 / Section V: the missing-piece syndrome. Starts a transient
/// and a stable configuration from a large one club and reports the group
/// decomposition over time plus the measured one-club growth rate against
/// the predicted `Δ_{F−{1}}`.
#[must_use]
pub fn one_club_growth(config: &ExperimentConfig) -> ExperimentReport {
    let mut report =
        ExperimentReport::new("E4", "Missing-piece syndrome: one-club growth (Fig. 2)");
    let initial_club = 150usize;

    // Transient configuration: K = 3, weak seed, some gifted arrivals.
    let transient = SwarmParams::builder(3)
        .seed_rate(0.2)
        .contact_rate(1.0)
        .seed_departure_rate(4.0)
        .fresh_arrivals(2.5)
        .arrival(PieceSet::singleton(PieceId::new(0)), 0.1)
        .build()
        .expect("valid parameters");
    // Stable configuration: same shape, stronger seed and slower departures.
    let stable = SwarmParams::builder(3)
        .seed_rate(2.5)
        .contact_rate(1.0)
        .seed_departure_rate(1.25)
        .fresh_arrivals(2.5)
        .arrival(PieceSet::singleton(PieceId::new(0)), 0.1)
        .build()
        .expect("valid parameters");

    for (variant, (name, params)) in [("transient", transient), ("stable", stable)]
        .into_iter()
        .enumerate()
    {
        let verdict = stability::classify(&params).verdict;
        let delta = stability::delta(&params, params.full_type().without(PieceId::new(0)))
            .expect("µ < γ in both configurations");
        let sim = AgentSwarm::with_config(
            params.clone(),
            AgentConfig {
                snapshot_interval: (config.horizon / 40.0).max(1.0),
                ..Default::default()
            },
            Box::new(policy::RandomUseful),
        )
        .expect("valid simulator configuration");
        let mut rng = demo_rng(config, 0xE4, variant as u64);
        let result = sim.run_from_one_club(initial_club, config.horizon, &mut rng);

        let mut table = Table::new(
            &format!(
                "{name} configuration (Theorem 1: {}, Δ_F−{{1}} = {})",
                verdict_str(verdict),
                fmt_num(delta)
            ),
            &[
                "time", "N", "one-club", "former", "infected", "gifted", "young", "D_t", "A_t",
            ],
        );
        let step = (result.snapshots.len() / 10).max(1);
        for snap in result.snapshots.iter().step_by(step) {
            table.row(&[
                fmt_num(snap.time),
                snap.total_peers.to_string(),
                snap.groups.one_club.to_string(),
                snap.groups.former_one_club.to_string(),
                snap.groups.infected.to_string(),
                snap.groups.gifted.to_string(),
                snap.groups.normal_young.to_string(),
                snap.watch_piece_downloads.to_string(),
                snap.arrivals_without_watch.to_string(),
            ]);
        }
        report.push_table(table);

        let growth = result.one_club_path().trend(0.5).slope;
        report.note(format!(
            "{name}: measured one-club growth rate {} per unit time vs predicted Δ_F−{{1}} = {}",
            fmt_num(growth),
            fmt_num(delta)
        ));
    }
    report
}

/// E5 — the Theorem 1 stability region: a grid over the load factor and the
/// normalised dwell rate `γ/µ`, reporting theory vs simulation agreement.
#[must_use]
pub fn stability_region(config: &ExperimentConfig) -> ExperimentReport {
    let mut report = ExperimentReport::new("E5", "Theorem 1 stability region grid (load × γ/µ)");
    let us = 0.5;
    let mu = 1.0;
    let gammas = [0.8, 1.5, 3.0, f64::INFINITY];
    let loads = [0.5, 0.9, 1.5, 3.0];
    let mut points = Vec::new();
    for &g in &gammas {
        for &load in &loads {
            // "load" is λ0 relative to the µ<γ threshold computed at γ = 3
            // so the same absolute rates are used across rows.
            let reference_threshold = us / (1.0 - mu / 3.0);
            let lambda0 = load * reference_threshold;
            let label = format!(
                "γ/µ={}, λ0={}",
                if g.is_finite() {
                    g.to_string()
                } else {
                    "inf".into()
                },
                fmt_num(lambda0)
            );
            points.push(SweepPoint::new(
                label,
                scenario::example1(lambda0, us, mu, g).unwrap(),
            ));
        }
    }
    let outcomes = run_sweep(&points, config.sweep_options());
    let summary = summarise(&outcomes);
    report.push_table(sweep_table("grid over (γ/µ, λ0)", &outcomes));
    report.note(format!(
        "agreement on decidable points: {}/{} ({}%)",
        summary.agreements,
        summary.points - summary.borderline,
        fmt_num(100.0 * summary.agreement_rate())
    ));

    // An ASCII rendering of the same region over a finer (λ0, γ) grid — the
    // closest thing to a region "figure" the paper implies.
    let x_values: Vec<f64> = (1..=6).map(|i| 0.4 * f64::from(i)).collect();
    let y_values = vec![0.8, 1.25, 2.0, 4.0, 8.0];
    let map = crate::grid::stability_map(
        "λ0",
        &x_values,
        "γ",
        &y_values,
        |lambda0, gamma| scenario::example1(lambda0, us, mu, gamma).ok(),
        config.sweep_options(),
    );
    report.note(format!(
        "region map: {} of {} cells agree with Theorem 1 ({} mismatches)",
        map.agreements(),
        map.len(),
        map.mismatches()
    ));
    report.push_figure(
        "Example 1 stability region over (λ0, γ), U_s = 0.5, µ = 1",
        map.render(),
    );
    report
}

/// E6 — the "one extra piece" corollary: with `γ ≤ µ` the system is stable
/// for any arrival rate and any positive seed rate; with `γ` slightly above
/// `µ` a heavy enough load is transient.
#[must_use]
pub fn one_extra_piece(config: &ExperimentConfig) -> ExperimentReport {
    let mut report = ExperimentReport::new(
        "E6",
        "Corollary: dwelling long enough to upload one extra piece stabilises the swarm",
    );
    let lambda0 = 20.0;
    let points: Vec<SweepPoint> = [0.5, 0.8, 0.95, 1.5, 3.0]
        .iter()
        .map(|&ratio| {
            SweepPoint::new(
                format!("γ/µ={ratio}, λ0={lambda0}"),
                scenario::one_extra_piece(3, lambda0, ratio).unwrap(),
            )
        })
        .collect();
    let outcomes = run_sweep(&points, config.sweep_options());
    report.push_table(sweep_table(
        "dwell-time sweep at heavy load (K = 3, U_s = 0.05)",
        &outcomes,
    ));
    report.note("theory: stable for γ/µ ≤ 1 regardless of λ0; transient for γ/µ > 1 once λ0 exceeds the (tiny) seed-driven threshold");
    report.note("near γ = µ the system is positive recurrent but its stationary population is enormous (the branching ratio µ/γ approaches one), so finite-horizon simulations sit in a long transient there");
    let gamma_crit =
        stability::critical_departure_rate(&scenario::one_extra_piece(3, lambda0, 2.0).unwrap());
    report.note(format!(
        "critical γ at this load: {} (≥ µ = 1 as the corollary states)",
        fmt_num(gamma_crit)
    ));
    report
}

/// E7 — Theorem 14 (policy insensitivity) and the quasi-stability discussion
/// of Section IX: the same boundary sweep under different useful-piece
/// policies, plus the time for a large one club to emerge in a transient
/// configuration under each policy.
#[must_use]
pub fn policy_insensitivity(config: &ExperimentConfig) -> ExperimentReport {
    let mut report = ExperimentReport::new(
        "E7",
        "Theorem 14: the stability region is policy-insensitive",
    );
    let policies = [
        "random-useful",
        "rarest-first",
        "sequential",
        "most-common-first",
    ];

    // Boundary sweep: K = 3 Example-3-like network, stable and transient
    // points. Piece 1 (the default watch piece) is the rare one in the
    // transient configuration, so the one-club counters track the right club.
    let stable_params = scenario::example3([1.0, 1.0, 1.0], 1.0, 2.0).unwrap();
    let transient_params = scenario::example3([0.2, 2.0, 2.0], 1.0, 4.0).unwrap();
    let mut table = Table::new(
        "classification by policy (agent-based simulation)",
        &[
            "policy",
            "stable point → class",
            "transient point → class",
            "one-club onset time (transient)",
        ],
    );
    for (pi, name) in policies.iter().enumerate() {
        let mut cells = vec![(*name).to_owned()];
        let mut onset = f64::NAN;
        for (wi, (which, params)) in [("stable", &stable_params), ("transient", &transient_params)]
            .into_iter()
            .enumerate()
        {
            let sim = AgentSwarm::with_config(
                params.clone(),
                AgentConfig {
                    snapshot_interval: 5.0,
                    ..Default::default()
                },
                policy::by_name(name).expect("known policy"),
            )
            .expect("valid configuration");
            let mut rng = demo_rng(config, 0xE7, (pi * 2 + wi) as u64);
            let result = sim.run(&[], config.horizon, &mut rng);
            let classifier = PathClassifier::new(params.total_arrival_rate(), 40.0);
            let class = classifier.classify(&result.peer_count_path()).class;
            cells.push(format!("{class:?}"));
            if which == "transient" {
                // Quasi-stability: first time the largest one-club exceeds 100 peers.
                onset = result
                    .snapshots
                    .iter()
                    .find(|s| s.groups.one_club >= 100)
                    .map_or(f64::INFINITY, |s| s.time);
            }
        }
        cells.push(fmt_num(onset));
        table.row(&cells);
    }
    report.push_table(table);
    report.note("Theorem 14: all useful-piece policies share the Theorem 1 region; the onset time of a large one club (quasi-stability) may differ across policies");
    report
}

/// E8 — Theorem 15 and the network-coding example: closed-form gifted-piece
/// thresholds for several `(q, K)` including the paper's `(64, 200)`, the
/// contrast with the uncoded system, and a coded-swarm simulation sweep of
/// the gifted fraction at laptop scale `(q = 8, K = 4)`.
#[must_use]
pub fn network_coding(config: &ExperimentConfig) -> ExperimentReport {
    let mut report =
        ExperimentReport::new("E8", "Theorem 15: network coding with gifted coded pieces");

    let mut thresholds = Table::new(
        "gifted-fraction thresholds f (transient below / positive recurrent above)",
        &[
            "q",
            "K",
            "transient below",
            "recurrent above",
            "uncoded verdict at f=0.5",
        ],
    );
    for (q, k) in [(8u64, 4usize), (16, 8), (64, 200), (256, 200)] {
        let (lo, hi) = coded::theorem15_gift_thresholds(q, k);
        // The uncoded comparison needs the exact Theorem 1 machinery, which
        // enumerates 2^K types; for the paper's K = 200 headline the uncoded
        // verdict is transient for any f < 1 by the same argument at any K.
        let uncoded = if k <= 16 {
            verdict_str(coded::uncoded_gift_verdict(k, 1.0, 0.5)).to_owned()
        } else {
            "transient (any f < 1)".to_owned()
        };
        thresholds.row(&[
            q.to_string(),
            k.to_string(),
            fmt_num(lo),
            fmt_num(hi),
            uncoded,
        ]);
    }
    report.push_table(thresholds);
    report.note("paper example: q = 64, K = 200 → transient below ≈ 0.00507, recurrent above ≈ 0.00516; without coding any f < 1 is transient");

    // Simulation sweep at (q = 8, K = 4).
    let (q, k) = (8u64, 4usize);
    let (lo, hi) = coded::theorem15_gift_thresholds(q, k);
    let mut sim_table = Table::new(
        &format!("coded swarm simulation, q = {q}, K = {k} (λ_total = 1, U_s = 0, γ = ∞)"),
        &[
            "gift fraction f",
            "Theorem 15",
            "sim class",
            "tail slope",
            "departures",
        ],
    );
    for (variant, f) in [lo * 0.3, lo * 0.8, (hi * 1.5).min(1.0), (hi * 4.0).min(1.0)]
        .into_iter()
        .enumerate()
    {
        let params = coded::CodedParams::gift_example(k, q, 1.0, f, 0.0, 1.0, f64::INFINITY)
            .expect("valid coded parameters");
        let theory = coded::theorem15_classify(&params).expect("d ∈ {0,1} arrival model");
        let sim = coded::CodedSwarmSim::new(params).snapshot_interval(config.horizon / 200.0);
        let mut rng = demo_rng(config, 0xE8, variant as u64);
        let result = sim.run(config.horizon, &mut rng);
        let classifier = PathClassifier::new(1.0, 40.0);
        let verdict = classifier.classify(&result.peer_count_path());
        sim_table.row(&[
            fmt_num(f),
            verdict_str(theory).to_owned(),
            format!("{:?}", verdict.class),
            fmt_num(verdict.tail_slope),
            result.departures.to_string(),
        ]);
    }
    report.push_table(sim_table);
    report
}

/// E9 — Fig. 3 / Section VIII-D: the `µ = ∞` watched process. Verifies the
/// zero-drift top layer, reports excursion statistics consistent with null
/// recurrence, and sweeps finite `µ/λ` for the Conjecture 17 picture.
#[must_use]
pub fn borderline(config: &ExperimentConfig) -> ExperimentReport {
    let mut report = ExperimentReport::new(
        "E9",
        "Borderline case: the µ = ∞ process (Fig. 3) and Conjecture 17",
    );
    let k = 3;
    let process = MuInfinityProcess::new(k, 1.0).expect("valid µ=∞ process");

    // Zero drift on the top layer.
    let mut drift_table = Table::new(
        "top-layer drift of the peer count (should be ≈ 0)",
        &["n", "drift"],
    );
    for n in [5u64, 20, 100, 400] {
        let state = MuInfinityState::Uniform {
            peers: n,
            pieces: k - 1,
        };
        let d = markov::drift::drift(&process, &state, |s| match s {
            MuInfinityState::Empty => 0.0,
            MuInfinityState::Uniform { peers, .. } => *peers as f64,
        });
        drift_table.row(&[n.to_string(), fmt_num(d)]);
    }
    report.push_table(drift_table);
    report.note(format!(
        "E[Z] = K − 1 = {} exactly, so the top layer is a zero-drift walk (null recurrence)",
        k - 1
    ));

    // Excursion statistics of the simulated µ = ∞ process.
    let mut rng = demo_rng(config, 0xE9, 0);
    let sim = markov::Simulator::new(&process).observe(|s| match s {
        MuInfinityState::Empty => 0.0,
        MuInfinityState::Uniform { peers, .. } => *peers as f64,
    });
    let run = sim.run(
        MuInfinityState::Empty,
        markov::StopRule::time_or_events(config.horizon * 50.0, 2_000_000),
        &mut rng,
    );
    let mut excursions = Table::new(
        "µ = ∞ process sample-path statistics",
        &["quantity", "value"],
    );
    excursions.row(&[
        "returns to n ≤ 3".to_owned(),
        run.path.upcrossings_of(3.0).to_string(),
    ]);
    excursions.row(&[
        "maximum population".to_owned(),
        fmt_num(run.path.max_value()),
    ]);
    excursions.row(&[
        "time-average population".to_owned(),
        fmt_num(run.path.time_average_values()),
    ]);
    let stats = markov::hitting::excursions_above(&run.path, 3.0);
    excursions.row(&[
        "completed excursions above n = 3".to_owned(),
        stats.completed.to_string(),
    ]);
    excursions.row(&[
        "median excursion length".to_owned(),
        fmt_num(stats.median_length),
    ]);
    excursions.row(&["max excursion length".to_owned(), fmt_num(stats.max_length)]);
    excursions.row(&[
        "max / median excursion length".to_owned(),
        fmt_num(stats.max_to_median()),
    ]);
    report.push_table(excursions);
    report.note("null recurrence signature: excursions keep completing (returns are certain) but their lengths are heavy-tailed — the max/median ratio grows with the horizon instead of settling");

    // Conjecture 17: finite µ/λ sweep for the symmetric flat network.
    let mut conj = Table::new(
        "Conjecture 17 probe: symmetric K = 3 flat network at finite µ/λ",
        &["µ/λ", "tail slope of N", "tail average N"],
    );
    for (variant, ratio) in [0.5, 2.0, 8.0].into_iter().enumerate() {
        let params = scenario::example3([1.0, 1.0, 1.0], ratio, f64::INFINITY).unwrap();
        let model = SwarmModel::new(params);
        let mut rng = demo_rng(config, 0x17, variant as u64);
        let path = model.simulate_peer_count(model.empty_state(), config.horizon, &mut rng);
        let trend = path.trend(0.5);
        conj.row(&[
            fmt_num(ratio),
            fmt_num(trend.slope),
            fmt_num(path.time_average_over(config.horizon * 0.5, config.horizon)),
        ]);
    }
    report.push_table(conj);
    report.note("the borderline symmetric system shows no sustained linear growth at any µ/λ and its population wanders at a moderate level — the long-excursion behaviour Conjecture 17 describes, in contrast with the clean linear growth of genuinely transient points");
    report
}

/// E10 — Section VI proof machinery: ABS branching means versus their ξ → 0
/// limits, and the Kingman / M-GI-∞ envelope bounds checked against an
/// agent-based run started from a large one club.
#[must_use]
pub fn abs_bounds(config: &ExperimentConfig) -> ExperimentReport {
    let mut report = ExperimentReport::new(
        "E10",
        "Section VI machinery: branching means and maximal bounds",
    );
    let params = SwarmParams::builder(3)
        .seed_rate(0.3)
        .contact_rate(1.0)
        .seed_departure_rate(2.0)
        .fresh_arrivals(2.0)
        .arrival(PieceSet::singleton(PieceId::new(0)), 0.2)
        .build()
        .expect("valid parameters");
    let piece = PieceId::new(0);

    let mut means = Table::new(
        "ABS offspring means vs ξ → 0 limits",
        &["ξ", "m_b", "m_f", "D̂ rate bound"],
    );
    let limit = branching_analysis::abs_means_limit(&params);
    for xi in [0.1, 0.01, 0.001] {
        let m = branching_analysis::abs_means(&params, xi).expect("subcritical for these ξ");
        let rate =
            branching_analysis::piece_download_rate_bound(&params, piece, xi).expect("subcritical");
        means.row(&[fmt_num(xi), fmt_num(m.m_b), fmt_num(m.m_f), fmt_num(rate)]);
    }
    let limit_rate =
        branching_analysis::piece_download_rate_bound(&params, piece, 1e-9).expect("subcritical");
    means.row(&[
        "limit".to_owned(),
        fmt_num(limit.m_b),
        fmt_num(limit.m_f),
        fmt_num(limit_rate),
    ]);
    report.note(format!(
        "for reference, the Theorem 1 per-piece threshold (the equivalent condition written against λ_total) is {}",
        fmt_num(stability::piece_threshold(&params, piece).expect("µ < γ"))
    ));
    report.push_table(means);

    // Envelope checks against an agent-based run from a large one club.
    let sim = AgentSwarm::with_config(
        params.clone(),
        AgentConfig {
            snapshot_interval: (config.horizon / 100.0).max(1.0),
            ..Default::default()
        },
        Box::new(policy::RandomUseful),
    )
    .expect("valid simulator configuration");
    let mut rng = demo_rng(config, 0x10, 0);
    let result = sim.run_from_one_club(100, config.horizon, &mut rng);

    let d_rate =
        branching_analysis::piece_download_rate_bound(&params, piece, 0.01).expect("subcritical");
    let a_rate: f64 = params.arrival_rate_without_piece(piece);
    let mgi_rate = params.total_arrival_rate();
    let mut env = Table::new(
        "envelope checks (cumulative counters vs linear bounds, B = 50)",
        &[
            "time",
            "D_t",
            "D envelope",
            "A_t",
            "A lower envelope",
            "Y^a+Y^b+Y^g",
            "M/GI/∞ envelope",
        ],
    );
    let mut violations = 0usize;
    for snap in result
        .snapshots
        .iter()
        .step_by((result.snapshots.len() / 8).max(1))
    {
        let d_env = 50.0 + 1.1 * d_rate * snap.time;
        let a_env = -50.0 + 0.9 * a_rate * snap.time;
        let y = snap.groups.young_infected_gifted() as f64;
        let y_env =
            50.0 + 0.5 * mgi_rate * snap.time + mgi_rate * (params.num_pieces() as f64 + 1.0);
        if (snap.watch_piece_downloads as f64) > d_env
            || (snap.arrivals_without_watch as f64) < a_env
            || y > y_env
        {
            violations += 1;
        }
        env.row(&[
            fmt_num(snap.time),
            snap.watch_piece_downloads.to_string(),
            fmt_num(d_env),
            snap.arrivals_without_watch.to_string(),
            fmt_num(a_env),
            y.to_string(),
            fmt_num(y_env),
        ]);
    }
    report.push_table(env);
    report.note(format!("envelope violations observed: {violations} (the bounds hold with high probability, not surely)"));
    report
}

/// E11 — Section VII machinery: the Lyapunov drift `QW(x)` evaluated on
/// heavy-load states inside and outside the stability region.
#[must_use]
pub fn lyapunov_drift(_config: &ExperimentConfig) -> ExperimentReport {
    let mut report =
        ExperimentReport::new("E11", "Section VII machinery: Foster–Lyapunov drift of W");
    let stable = SwarmParams::builder(2)
        .seed_rate(2.0)
        .contact_rate(1.0)
        .seed_departure_rate(2.0)
        .fresh_arrivals(1.0)
        .build()
        .expect("valid parameters");
    let transient = SwarmParams::builder(2)
        .seed_rate(0.1)
        .contact_rate(1.0)
        .seed_departure_rate(4.0)
        .fresh_arrivals(5.0)
        .build()
        .expect("valid parameters");

    for (name, params) in [("stable", stable), ("transient", transient)] {
        let verdict = stability::classify(&params).verdict;
        let model = SwarmModel::new(params.clone());
        let w = LyapunovFunction::new(&params).expect("µ < γ");
        let mut table = Table::new(
            &format!("{name} parameters (Theorem 1: {})", verdict_str(verdict)),
            &["heavy-load state", "n", "QW(x)", "QW(x)/n"],
        );
        for n in [100u32, 300, 900] {
            // One-club heavy load.
            let x = model.one_club_state(PieceId::new(0), n);
            let d = w.drift(&model, &x);
            table.row(&[
                format!("one-club({n})"),
                n.to_string(),
                fmt_num(d),
                fmt_num(d / f64::from(n)),
            ]);
            // Peer-seed heavy load (always drains).
            let seeds = swarm::SwarmState::uniform(model.type_space(), params.full_type(), n);
            let d = w.drift(&model, &seeds);
            table.row(&[
                format!("seeds({n})"),
                n.to_string(),
                fmt_num(d),
                fmt_num(d / f64::from(n)),
            ]);
        }
        report.push_table(table);
    }
    report.note("inside the region the drift on heavy-load states is negative and scales like −Θ(n); outside it is positive on the one-club states, matching Lemma 12");
    report
}

/// E12 — Section VIII-C: the faster-retry variant. Compares `η = 1` against
/// `η = 10` with and without gifted arrivals.
#[must_use]
pub fn faster_retry(config: &ExperimentConfig) -> ExperimentReport {
    let mut report = ExperimentReport::new(
        "E12",
        "Section VIII-C: faster retries after unsuccessful contacts",
    );
    let mut table = Table::new(
        "η sweep (K = 3, transient-ish load, with and without gifted arrivals)",
        &[
            "gifted arrivals",
            "η",
            "tail slope of N",
            "final one-club",
            "unsuccessful contacts",
            "transfers",
        ],
    );
    for (gi, gifted) in [false, true].into_iter().enumerate() {
        let mut builder = SwarmParams::builder(3)
            .seed_rate(0.3)
            .contact_rate(1.0)
            .seed_departure_rate(3.0)
            .fresh_arrivals(2.0);
        if gifted {
            builder = builder.arrival(PieceSet::singleton(PieceId::new(0)), 0.4);
        }
        let params = builder.build().expect("valid parameters");
        for (ei, eta) in [1.0, 10.0].into_iter().enumerate() {
            let sim = AgentSwarm::with_config(
                params.clone(),
                AgentConfig {
                    retry_speedup: eta,
                    snapshot_interval: 5.0,
                    ..Default::default()
                },
                Box::new(policy::RandomUseful),
            )
            .expect("valid configuration");
            let mut rng = demo_rng(config, 0x12, (gi * 2 + ei) as u64);
            let result = sim.run_from_one_club(80, config.horizon, &mut rng);
            let trend = result.peer_count_path().trend(0.5);
            table.row(&[
                gifted.to_string(),
                fmt_num(eta),
                fmt_num(trend.slope),
                result.final_snapshot().groups.one_club.to_string(),
                result.unsuccessful_contacts.to_string(),
                result.transfers.to_string(),
            ]);
        }
    }
    report.push_table(table);
    report.note("faster retries multiply the number of unsuccessful contacts roughly by η");
    report.note("without gifted arrivals the growth rate is essentially unchanged (the stability condition does not move, as Section VIII-C argues)");
    report.note("with gifted arrivals the push-style speed-up worsens the missing-piece syndrome — the one club grows faster — matching the paper's warning about this model variant");
    report
}

/// Runs every experiment at the given configuration and returns the reports
/// in order E1–E12.
#[must_use]
pub fn run_all(config: &ExperimentConfig) -> Vec<ExperimentReport> {
    vec![
        example1(config),
        example2(config),
        example3(config),
        one_club_growth(config),
        stability_region(config),
        one_extra_piece(config),
        policy_insensitivity(config),
        network_coding(config),
        borderline(config),
        abs_bounds(config),
        lyapunov_drift(config),
        faster_retry(config),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> ExperimentConfig {
        ExperimentConfig {
            horizon: 150.0,
            seed: 42,
            threads: 2,
            replications: 1,
            progress: false,
        }
    }

    #[test]
    fn example1_report_structure() {
        let r = example1(&tiny());
        assert_eq!(r.id, "E1");
        assert_eq!(r.tables.len(), 2);
        assert_eq!(r.tables[0].len(), 6);
        assert!(r.render().contains("Theorem 1 threshold"));
    }

    #[test]
    fn example2_and_example3_reports() {
        let r2 = example2(&tiny());
        assert_eq!(r2.tables.len(), 1);
        assert_eq!(r2.tables[0].len(), 6);
        let r3 = example3(&tiny());
        assert_eq!(r3.tables.len(), 2);
    }

    #[test]
    fn one_club_growth_reports_both_configurations() {
        let r = one_club_growth(&tiny());
        assert_eq!(r.tables.len(), 2);
        assert!(r.notes.iter().any(|n| n.contains("transient")));
        assert!(r.notes.iter().any(|n| n.contains("stable")));
    }

    #[test]
    fn stability_region_grid_has_all_cells() {
        let r = stability_region(&tiny());
        assert_eq!(r.tables[0].len(), 16);
    }

    #[test]
    fn one_extra_piece_report() {
        let r = one_extra_piece(&tiny());
        assert_eq!(r.tables[0].len(), 5);
        assert!(r.notes.iter().any(|n| n.contains("critical γ")));
    }

    #[test]
    fn policy_insensitivity_covers_all_policies() {
        let r = policy_insensitivity(&tiny());
        assert_eq!(r.tables[0].len(), 4);
    }

    #[test]
    fn network_coding_thresholds_table() {
        let r = network_coding(&tiny());
        assert_eq!(r.tables.len(), 2);
        // the (64, 200) row must be present with the paper's numbers
        let rendered = r.render();
        assert!(rendered.contains("200"));
        assert!(rendered.contains("0.0051") || rendered.contains("5.1"));
    }

    #[test]
    fn borderline_report_has_drift_and_conjecture_tables() {
        let r = borderline(&tiny());
        assert_eq!(r.tables.len(), 3);
        // Away from the lower boundary (large n) the top-layer drift is ~0;
        // small-n rows show the boundary effect the paper ignores.
        for row in r.tables[0].rows() {
            let n: f64 = row[0].parse().unwrap_or(0.0);
            let drift: f64 = row[1].parse().unwrap_or(0.0);
            if n >= 100.0 {
                assert!(drift.abs() < 1e-6, "drift {drift} at n = {n}");
            }
        }
    }

    #[test]
    fn abs_bounds_and_lyapunov_reports() {
        let r = abs_bounds(&tiny());
        assert_eq!(r.tables.len(), 2);
        let r = lyapunov_drift(&tiny());
        assert_eq!(r.tables.len(), 2);
    }

    #[test]
    fn faster_retry_report() {
        let r = faster_retry(&tiny());
        assert_eq!(r.tables[0].len(), 4);
    }
}
