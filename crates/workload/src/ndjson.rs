//! Validation of the engine's metrics NDJSON export.
//!
//! `run_experiments --metrics` (and any caller of
//! [`engine::MetricsSink`]) emits one NDJSON line per stream event:
//! `begin`, one per replication, `end`. This module checks such a document
//! against the schema *and* the counter algebra — every replication line's
//! counters must partition its event count, and the `end` totals must be
//! the exact sum of the per-line counters — so CI can assert that a
//! telemetry file is internally consistent without re-running anything.
//!
//! The checker is intentionally strict: unknown counter names, missing
//! fields, non-integer counts, or books that don't balance are all
//! [`SpecError`]s naming the offending line.

use crate::error::SpecError;
use crate::json::{self, Json};
use telemetry::Counter;

/// What a validated metrics NDJSON document contained.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct NdjsonSummary {
    /// Scenarios announced by the `begin` line.
    pub scenarios: u64,
    /// Replication lines present (equals the `end` line's `delivered`).
    pub replications: u64,
    /// Replication lines that carried kernel counters.
    pub metered: u64,
    /// Simulated events summed over every replication line.
    pub total_events: u64,
    /// Piece/combination transfers summed over every replication line.
    pub total_transfers: u64,
    /// Workers reported by the `end` line (0 on a truncated export).
    pub workers: u64,
    /// Quarantined-failure lines present (equals the `end` line's
    /// `failed`).
    pub failed: u64,
    /// Retry attempts reported by the `end` line (0 on a truncated
    /// export).
    pub retries: u64,
    /// `true` when the document ends with the crash closer
    /// (`"truncated":true`) instead of a full `end` frame — only accepted
    /// with [`ValidateOptions::allow_truncated`].
    pub truncated: bool,
}

/// Knobs for [`validate_with`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ValidateOptions {
    /// Accept a document closed by the crash closer
    /// (`{"type":"end","truncated":true,...}`) that a dying
    /// [`engine::MetricsSink`] writes: the framing may stop short of the
    /// announced total and the end frame carries no totals or histograms.
    /// Resumed runs are also accepted (their `begin` total may be smaller
    /// than scenarios × replications).
    pub allow_truncated: bool,
}

fn invalid(line: usize, message: impl std::fmt::Display) -> SpecError {
    SpecError::Invalid(format!("metrics NDJSON line {}: {message}", line + 1))
}

fn get_u64(value: &Json, key: &str, line: usize) -> Result<u64, SpecError> {
    match value.get(key) {
        Some(Json::Num(n)) if *n >= 0.0 && n.fract() == 0.0 => Ok(*n as u64),
        Some(other) => Err(invalid(
            line,
            format!(
                "`{key}` must be a non-negative integer, got {}",
                other.render()
            ),
        )),
        None => Err(invalid(line, format!("missing `{key}`"))),
    }
}

fn get_str<'j>(value: &'j Json, key: &str, line: usize) -> Result<&'j str, SpecError> {
    match value.get(key) {
        Some(Json::Str(s)) => Ok(s),
        _ => Err(invalid(line, format!("missing string `{key}`"))),
    }
}

/// Reads a counters object into a per-counter array, insisting on exactly
/// the canonical counter names.
fn read_counters(value: &Json, line: usize) -> Result<[u64; Counter::COUNT], SpecError> {
    for key in value.keys() {
        if !Counter::ALL.iter().any(|c| c.name() == key) {
            return Err(invalid(line, format!("unknown counter `{key}`")));
        }
    }
    let mut counts = [0u64; Counter::COUNT];
    for (i, counter) in Counter::ALL.iter().enumerate() {
        counts[i] = get_u64(value, counter.name(), line)?;
    }
    Ok(counts)
}

/// Checks a histogram object's shape: `count`, `sum`, `max`, and a sparse
/// `buckets` array of `[index, count]` pairs whose counts sum to `count`.
fn check_histogram(value: &Json, key: &str, line: usize) -> Result<u64, SpecError> {
    let hist = value
        .get(key)
        .ok_or_else(|| invalid(line, format!("missing histogram `{key}`")))?;
    let count = get_u64(hist, "count", line)?;
    let _ = get_u64(hist, "sum", line)?;
    let _ = get_u64(hist, "max", line)?;
    let buckets = match hist.get("buckets") {
        Some(Json::Arr(items)) => items,
        _ => return Err(invalid(line, format!("`{key}.buckets` must be an array"))),
    };
    let mut bucket_total = 0u64;
    for item in buckets {
        match item {
            Json::Arr(pair) if pair.len() == 2 => match (&pair[0], &pair[1]) {
                (Json::Num(index), Json::Num(n))
                    if index.fract() == 0.0
                        && (*index as usize) < telemetry::HISTOGRAM_BUCKETS
                        && n.fract() == 0.0
                        && *n > 0.0 =>
                {
                    bucket_total += *n as u64;
                }
                _ => {
                    return Err(invalid(
                        line,
                        format!("`{key}.buckets` entries must be [bucket_index, positive_count]"),
                    ))
                }
            },
            _ => {
                return Err(invalid(
                    line,
                    format!("`{key}.buckets` entries must be two-element arrays"),
                ))
            }
        }
    }
    if bucket_total != count {
        return Err(invalid(
            line,
            format!("`{key}` buckets sum to {bucket_total}, count says {count}"),
        ));
    }
    Ok(count)
}

/// Validates a metrics NDJSON document end to end with the strict
/// defaults. Shorthand for [`validate_with`] and `ValidateOptions::default()`.
///
/// # Errors
///
/// See [`validate_with`].
pub fn validate(text: &str) -> Result<NdjsonSummary, SpecError> {
    validate_with(text, &ValidateOptions::default())
}

/// Validates a metrics NDJSON document end to end.
///
/// Checks the framing (one `begin`, one body line per announced slot, one
/// `end`), the per-line schema, and the counter algebra: on every metered
/// replication line `arrivals + contacts + departure_events == events`,
/// `contacts == useful_transfers + useless_contacts`, and
/// `useful_transfers == transfers`; the `end` line's `totals` must equal
/// the sum of all per-line counters, its `per_worker` loads must sum to
/// the task count, and its histograms must be internally consistent.
/// Quarantined-failure lines count toward the announced total, and the
/// `end` frame's `delivered`/`failed` must match the body line counts.
///
/// With [`ValidateOptions::allow_truncated`] the crash closer
/// (`{"type":"end","truncated":true,...}`) is accepted in place of a full
/// `end` frame — the body may stop short of the announced total — and a
/// resumed run's smaller `begin` total is tolerated.
///
/// # Errors
///
/// Returns [`SpecError::Invalid`] naming the first offending line, or
/// [`SpecError::Parse`] if a line is not valid JSON.
pub fn validate_with(text: &str, options: &ValidateOptions) -> Result<NdjsonSummary, SpecError> {
    let lines: Vec<&str> = text.lines().filter(|l| !l.trim().is_empty()).collect();
    if lines.len() < 2 {
        return Err(SpecError::Invalid(
            "metrics NDJSON needs at least a begin and an end line".into(),
        ));
    }
    let parsed: Vec<Json> = lines
        .iter()
        .enumerate()
        .map(|(i, l)| {
            json::parse(l)
                .map_err(|e| SpecError::Parse(format!("metrics NDJSON line {}: {e}", i + 1)))
        })
        .collect::<Result<_, _>>()?;

    // --- begin ---------------------------------------------------------
    if get_str(&parsed[0], "type", 0)? != "begin" {
        return Err(invalid(0, "first line must have type \"begin\""));
    }
    let scenarios = get_u64(&parsed[0], "scenarios", 0)?;
    let replications_per = get_u64(&parsed[0], "replications", 0)?;
    let total = get_u64(&parsed[0], "total", 0)?;
    if total != scenarios * replications_per
        && !(options.allow_truncated && total <= scenarios * replications_per)
    {
        return Err(invalid(0, "total must equal scenarios × replications"));
    }

    // --- end framing ----------------------------------------------------
    let last = parsed.len() - 1;
    let end = &parsed[last];
    if get_str(end, "type", last)? != "end" {
        return Err(invalid(last, "last line must have type \"end\""));
    }
    let truncated = matches!(end.get("truncated"), Some(Json::Bool(true)));
    if truncated && !options.allow_truncated {
        return Err(invalid(
            last,
            "export was truncated by a crash or abort (re-run, or validate \
             with --allow-truncated)",
        ));
    }
    if truncated {
        if parsed.len() as u64 > total + 2 {
            return Err(SpecError::Invalid(format!(
                "metrics NDJSON: truncated export has {} body lines, begin announced {total}",
                parsed.len() - 2,
            )));
        }
    } else if parsed.len() as u64 != total + 2 {
        return Err(SpecError::Invalid(format!(
            "metrics NDJSON: expected {} lines (begin + {total} replications + end), got {}",
            total + 2,
            parsed.len()
        )));
    }

    // --- replication and failure lines ---------------------------------
    let mut metered = 0u64;
    let mut delivered_lines = 0u64;
    let mut failed_lines = 0u64;
    let mut total_events = 0u64;
    let mut total_transfers = 0u64;
    let mut totals = [0u64; Counter::COUNT];
    let body = &parsed[1..parsed.len() - 1];
    for (offset, value) in body.iter().enumerate() {
        let line = offset + 1;
        let kind = get_str(value, "type", line)?;
        if kind == "failure" {
            let _ = get_u64(value, "scenario_index", line)?;
            let _ = get_u64(value, "scenario_id", line)?;
            let _ = get_u64(value, "replication", line)?;
            let attempts = get_u64(value, "attempts", line)?;
            if attempts == 0 {
                return Err(invalid(line, "failure lines must report attempts ≥ 1"));
            }
            let _ = get_str(value, "payload", line)?;
            failed_lines += 1;
            continue;
        }
        if kind != "replication" {
            return Err(invalid(
                line,
                "expected type \"replication\" or \"failure\"",
            ));
        }
        delivered_lines += 1;
        let _ = get_u64(value, "scenario_index", line)?;
        let _ = get_u64(value, "scenario_id", line)?;
        let _ = get_u64(value, "replication", line)?;
        let class = get_str(value, "class", line)?;
        if !matches!(class, "stable" | "growing" | "indeterminate") {
            return Err(invalid(line, format!("unknown class `{class}`")));
        }
        let events = get_u64(value, "events", line)?;
        let transfers = get_u64(value, "transfers", line)?;
        if !matches!(value.get("truncated"), Some(Json::Bool(_))) {
            return Err(invalid(line, "missing boolean `truncated`"));
        }
        total_events += events;
        total_transfers += transfers;
        if let Some(counters) = value.get("counters") {
            let counts = read_counters(counters, line)?;
            metered += 1;
            for (i, n) in counts.iter().enumerate() {
                totals[i] += n;
            }
            let get = |c: Counter| counts[c as usize];
            let event_sum =
                get(Counter::Arrivals) + get(Counter::Contacts) + get(Counter::DepartureEvents);
            if event_sum != events {
                return Err(invalid(
                    line,
                    format!(
                        "arrivals + contacts + departure_events = {event_sum}, \
                         but the line reports {events} events"
                    ),
                ));
            }
            if get(Counter::Contacts)
                != get(Counter::UsefulTransfers) + get(Counter::UselessContacts)
            {
                return Err(invalid(
                    line,
                    "contacts must equal useful_transfers + useless_contacts",
                ));
            }
            if get(Counter::UsefulTransfers) != transfers {
                return Err(invalid(
                    line,
                    format!(
                        "useful_transfers = {} but the line reports {transfers} transfers",
                        get(Counter::UsefulTransfers)
                    ),
                ));
            }
            match value.get("wall_seconds") {
                Some(Json::Num(n)) if *n >= 0.0 => {}
                _ => {
                    return Err(invalid(
                        line,
                        "metered lines must carry a non-negative `wall_seconds`",
                    ))
                }
            }
        }
    }

    // --- end ------------------------------------------------------------
    let delivered = get_u64(end, "delivered", last)?;
    let failed = get_u64(end, "failed", last)?;
    if delivered != delivered_lines {
        return Err(invalid(
            last,
            format!("delivered = {delivered}, but {delivered_lines} replication lines present"),
        ));
    }
    if failed != failed_lines {
        return Err(invalid(
            last,
            format!("failed = {failed}, but {failed_lines} failure lines present"),
        ));
    }
    if truncated {
        // The crash closer carries no totals, workers, or histograms — the
        // line counts are all it can promise.
        return Ok(NdjsonSummary {
            scenarios,
            replications: delivered,
            metered,
            total_events,
            total_transfers,
            workers: 0,
            failed,
            retries: 0,
            truncated: true,
        });
    }
    if delivered + failed != total {
        return Err(invalid(
            last,
            format!("delivered {delivered} + failed {failed} ≠ announced total {total}"),
        ));
    }
    let retries = get_u64(end, "retries", last)?;
    let workers = get_u64(end, "workers", last)?;
    let end_totals = end
        .get("totals")
        .ok_or_else(|| invalid(last, "missing `totals`"))?;
    let end_counts = read_counters(end_totals, last)?;
    if end_counts != totals {
        return Err(invalid(
            last,
            "end-line totals do not equal the sum of the per-replication counters",
        ));
    }
    // Every task the scheduler ran (success or quarantined failure) left
    // one timing sample; a resumed run's carried failures left none, so
    // the count lands between `delivered` and `delivered + failed`.
    let task_count = check_histogram(end, "task_nanos", last)?;
    if task_count < delivered || task_count > delivered + failed {
        return Err(invalid(
            last,
            format!(
                "task_nanos counted {task_count} tasks, delivered is {delivered} \
                 with {failed} failures"
            ),
        ));
    }
    match end.get("per_worker") {
        Some(Json::Arr(items)) => {
            let mut sum = 0u64;
            for item in items {
                match item {
                    Json::Num(n) if n.fract() == 0.0 && *n >= 0.0 => sum += *n as u64,
                    _ => return Err(invalid(last, "`per_worker` must hold integers")),
                }
            }
            if task_count > 0 && sum != task_count {
                return Err(invalid(
                    last,
                    format!("per_worker loads sum to {sum}, the scheduler ran {task_count} tasks"),
                ));
            }
            if task_count > 0 && items.len() as u64 != workers {
                return Err(invalid(
                    last,
                    format!(
                        "per_worker has {} entries, workers is {workers}",
                        items.len()
                    ),
                ));
            }
        }
        _ => return Err(invalid(last, "missing `per_worker` array")),
    }
    let _ = check_histogram(end, "queue_wait_nanos", last)?;
    let _ = check_histogram(end, "reorder_occupancy", last)?;

    Ok(NdjsonSummary {
        scenarios,
        replications: delivered,
        metered,
        total_events,
        total_transfers,
        workers,
        failed,
        retries,
        truncated: false,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::registry::{self, Registry, ScenarioRunOptions};
    use engine::{MetricsSink, NullSink};

    fn exported_ndjson(metrics: bool, jobs: usize) -> String {
        let registry = Registry::builtin();
        let spec = registry.get("example1-stable").expect("builtin");
        let options = ScenarioRunOptions {
            replications: 3,
            jobs,
            seed: 11,
            horizon_override: Some(60.0),
            metrics,
            ..Default::default()
        };
        let mut sink = MetricsSink::new(NullSink, Vec::new()).quiet();
        registry::run_with_sink(spec, &options, &mut sink).expect("runs");
        let (_, out) = sink.into_parts();
        String::from_utf8(out).expect("utf-8")
    }

    #[test]
    fn exported_telemetry_validates_metered_and_unmetered() {
        for jobs in [1usize, 4] {
            let summary = validate(&exported_ndjson(true, jobs)).expect("valid NDJSON");
            assert_eq!(summary.scenarios, 1);
            assert_eq!(summary.replications, 3);
            assert_eq!(summary.metered, 3, "metrics on meters every replication");
            assert!(summary.total_events > 0);

            let summary = validate(&exported_ndjson(false, jobs)).expect("valid NDJSON");
            assert_eq!(summary.metered, 0, "metrics off meters nothing");
        }
    }

    #[test]
    fn tampered_books_are_rejected() {
        let good = exported_ndjson(true, 1);
        // Corrupt one counter value: the per-line algebra must catch it.
        let tampered = good.replacen("\"arrivals\":", "\"arrivals\":9", 1);
        assert!(tampered != good, "tampering must change the document");
        let error = validate(&tampered).expect_err("imbalanced books");
        assert!(error.to_string().contains("line"), "{error}");
    }

    #[test]
    fn framing_violations_are_rejected() {
        let good = exported_ndjson(true, 1);
        // Drop a replication line: the line count no longer matches begin.
        let mut lines: Vec<&str> = good.lines().collect();
        lines.remove(1);
        let short = lines.join("\n");
        assert!(validate(&short).is_err());
        // Garbage is a parse error, not a panic.
        assert!(validate("not json\n{}").is_err());
        assert!(validate("").is_err());
    }

    /// Runs a chaos scenario under `Quarantine` and exports its telemetry:
    /// the NDJSON then carries `failure` lines and a non-zero `failed`
    /// count in the end frame.
    fn exported_with_failures() -> String {
        let registry = Registry::builtin();
        let spec = registry.get("example1-stable").expect("builtin");
        let options = ScenarioRunOptions {
            replications: 4,
            jobs: 1,
            seed: 11,
            horizon_override: Some(60.0),
            metrics: true,
            failure_policy: engine::FailurePolicy::Quarantine {
                max_failures: u32::MAX,
            },
            faults: Some(engine::FaultPlan::new().panic_at(0, 1)),
            ..Default::default()
        };
        let mut sink = MetricsSink::new(NullSink, Vec::new()).quiet();
        registry::run_with_sink(spec, &options, &mut sink).expect("runs");
        let (_, out) = sink.into_parts();
        String::from_utf8(out).expect("utf-8")
    }

    #[test]
    fn failure_lines_validate_and_count_toward_the_end_frame() {
        let text = exported_with_failures();
        assert!(text.contains("\"type\":\"failure\""));
        let summary = validate(&text).expect("valid NDJSON with failures");
        assert_eq!(summary.replications, 3, "three survivors");
        assert_eq!(summary.failed, 1, "one quarantined replication");
        assert!(!summary.truncated);
    }

    #[test]
    fn truncated_exports_need_the_allow_flag() {
        // Cut the stream mid-body and close it the way `MetricsSink`'s
        // `Drop` impl does after a crash or abort.
        let good = exported_ndjson(true, 1);
        let lines: Vec<&str> = good.lines().collect();
        let mut cut: Vec<String> = lines[..2].iter().map(|&l| l.to_owned()).collect();
        cut.push("{\"type\":\"end\",\"truncated\":true,\"delivered\":1,\"failed\":0}".to_owned());
        let text = cut.join("\n");

        let error = validate(&text).expect_err("truncation rejected by default");
        assert!(error.to_string().contains("--allow-truncated"), "{error}");

        let options = ValidateOptions {
            allow_truncated: true,
        };
        let summary = validate_with(&text, &options).expect("accepted with the flag");
        assert!(summary.truncated);
        assert_eq!(summary.replications, 1);
        // A truncated body whose lines disagree with the closer still
        // fails: truncation is not a license for inconsistent books.
        let broken = text.replace("\"delivered\":1", "\"delivered\":2");
        assert!(validate_with(&broken, &options).is_err());
    }
}
