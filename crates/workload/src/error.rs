//! Typed errors for the scenario registry and its file format.
//!
//! Every path that used to return `Result<_, String>` — parsing a scenario
//! file, compiling a spec into an engine scenario, resolving `--scenario`
//! input, executing a run — now reports a [`SpecError`]. The rendered
//! messages are unchanged (they still name the offending field or byte
//! offset), but callers can match on what went wrong instead of scraping
//! strings.

use std::path::PathBuf;

/// Everything the scenario registry can reject.
#[derive(Debug, Clone, PartialEq)]
pub enum SpecError {
    /// The document violates the scenario file format (malformed JSON, an
    /// unknown or mistyped field). The message names the offending field
    /// or byte offset.
    Parse(String),
    /// The spec parsed but cannot compile into an executable scenario
    /// (piece index out of range, incompatible coding block, invalid
    /// model parameters). The message names the offending field.
    Invalid(String),
    /// A scenario file failed to parse; wraps the inner error with the
    /// file's path.
    InFile {
        /// The scenario file.
        path: PathBuf,
        /// What was wrong with its contents.
        source: Box<SpecError>,
    },
    /// A scenario file could not be read.
    Io {
        /// The scenario file.
        path: PathBuf,
        /// The I/O error text.
        message: String,
    },
    /// `--scenario` input named neither a readable file nor a built-in.
    UnknownScenario {
        /// What the caller asked for.
        name: String,
        /// The built-in names that would have worked.
        available: Vec<String>,
    },
    /// The engine rejected the compiled scenario or its configuration.
    Engine(engine::Error),
}

impl SpecError {
    /// Wraps a parse error with the scenario file it came from.
    #[must_use]
    pub fn in_file(path: impl Into<PathBuf>, source: SpecError) -> Self {
        SpecError::InFile {
            path: path.into(),
            source: Box::new(source),
        }
    }

    /// Prefixes the message of a parse/compile error with its location
    /// (e.g. `arrivals[2]`), mirroring the field-naming convention of the
    /// scenario file format.
    #[must_use]
    pub fn context(self, context: &str) -> SpecError {
        match self {
            SpecError::Parse(message) => SpecError::Parse(format!("{context}: {message}")),
            SpecError::Invalid(message) => SpecError::Invalid(format!("{context}: {message}")),
            other => other,
        }
    }
}

impl core::fmt::Display for SpecError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            SpecError::Parse(message) | SpecError::Invalid(message) => write!(f, "{message}"),
            SpecError::InFile { path, source } => write!(f, "{}: {source}", path.display()),
            SpecError::Io { path, message } => {
                write!(f, "cannot read {}: {message}", path.display())
            }
            SpecError::UnknownScenario { name, available } => write!(
                f,
                "`{name}` is neither a scenario file nor a built-in (available: {})",
                available.join(", ")
            ),
            SpecError::Engine(error) => write!(f, "{error}"),
        }
    }
}

impl std::error::Error for SpecError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            SpecError::InFile { source, .. } => Some(source),
            SpecError::Engine(error) => Some(error),
            _ => None,
        }
    }
}

impl From<engine::Error> for SpecError {
    fn from(error: engine::Error) -> Self {
        SpecError::Engine(error)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_preserves_the_message_text() {
        let e = SpecError::Parse("unknown scenario field `turbo`".into());
        assert_eq!(e.to_string(), "unknown scenario field `turbo`");
        let e = SpecError::Invalid("watch_piece 5 outside a 2-piece file".into());
        assert_eq!(e.to_string(), "watch_piece 5 outside a 2-piece file");
        let e = SpecError::in_file("swarm.json", SpecError::Parse("bad".into()));
        assert_eq!(e.to_string(), "swarm.json: bad");
        let e = SpecError::UnknownScenario {
            name: "nope".into(),
            available: vec!["a".into(), "b".into()],
        };
        assert!(e.to_string().contains("nope"));
        assert!(e.to_string().contains("a, b"));
    }

    #[test]
    fn sources_chain_for_wrapped_errors() {
        use std::error::Error as _;
        let e = SpecError::in_file("x.json", SpecError::Parse("bad".into()));
        assert!(e.source().is_some());
        let e = SpecError::Engine(engine::Error::MissingWorkload);
        assert!(e.source().is_some());
        assert!(SpecError::Parse("p".into()).source().is_none());
    }
}
