//! Workloads, parameter sweeps, and experiment harnesses for the
//! reproduction of *Stability of a Peer-to-Peer Communication System*
//! (Zhu & Hajek, PODC 2011).
//!
//! The paper's "evaluation" consists of Theorem 1, three worked examples
//! (Fig. 1), the peer-flow picture of the missing-piece syndrome (Fig. 2),
//! the `µ = ∞` borderline process (Fig. 3) and the extension theorems. Every
//! one of these maps to an experiment in [`experiments`]; `DESIGN.md` and
//! `EXPERIMENTS.md` in the repository root index them.
//!
//! * [`error`] — the typed [`SpecError`] hierarchy of the scenario file
//!   format and registry (no stringly errors in the public API),
//! * [`scenario`] — builders for the paper's example networks and the
//!   workloads the experiments sweep over,
//! * [`registry`] — the declarative scenario registry: serde-style JSON
//!   scenario files (heterogeneous arrivals, flash crowds, multi-seed
//!   starts, retry speed-up, policy choice) executed deterministically on
//!   the engine's agent backend via `run_experiments --scenario`,
//! * [`ndjson`] — the strict validator of the engine's metrics NDJSON
//!   export (`run_experiments --metrics`): framing, schema, and the
//!   counter algebra all checked line by line,
//! * [`sweep`] — a small parallel parameter-sweep runner that simulates each
//!   point and compares against the Theorem 1 / Theorem 15 prediction,
//! * [`report`] — plain-text tables, the output format of every experiment,
//! * [`experiments`] — one entry point per table/figure/claim (E1–E12).
//!
//! # Examples
//!
//! ```
//! use workload::scenario;
//! use swarm::stability;
//!
//! // The K = 1 network of Example 1 at a stable operating point.
//! let params = scenario::example1(1.0, 1.0, 1.0, 2.0).unwrap();
//! assert!(stability::classify(&params).verdict.is_stable());
//! ```

#![deny(missing_docs)]
#![forbid(unsafe_code)]

pub mod error;
pub mod experiments;
pub mod grid;
mod json;
pub mod ndjson;
pub mod registry;
pub mod report;
pub mod scenario;
pub mod sweep;

pub use error::SpecError;
pub use grid::{CellOutcome, RegionGrid};
pub use ndjson::NdjsonSummary;
pub use registry::{Registry, ScenarioRunOptions, ScenarioRunReport, ScenarioSpec};
pub use report::{ExperimentReport, Table};
pub use sweep::{SweepOutcome, SweepPoint, SweepSummary};
