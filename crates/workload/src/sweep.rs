//! Parameter sweeps on the replication engine: every point is simulated
//! `replications` times on deterministic per-replication random streams and
//! compared against the Theorem 1 prediction by majority vote.
//!
//! Earlier revisions ran exactly one replication per point on a hand-rolled
//! thread pool, seeding point `i` with `seed + i` — so adjacent sweeps
//! shared streams and boundary verdicts were single-sample noise. The sweep
//! is now a thin adapter over [`engine::Session`]: stream derivation,
//! scheduling, and aggregation all live there, and [`SweepOutcome`] keeps
//! its original shape for the experiment harnesses.

use engine::{EngineConfig, Scenario, Session, Workload};
use markov::PathClass;
use serde::{Deserialize, Serialize};
use swarm::{stability, StabilityVerdict, SwarmParams};

/// One point of a parameter sweep.
#[derive(Debug, Clone)]
pub struct SweepPoint {
    /// Label shown in the report (e.g. `"load=0.8"`).
    pub label: String,
    /// Model parameters of the point.
    pub params: SwarmParams,
}

impl SweepPoint {
    /// Creates a labelled sweep point.
    #[must_use]
    pub fn new(label: impl Into<String>, params: SwarmParams) -> Self {
        SweepPoint {
            label: label.into(),
            params,
        }
    }
}

/// Outcome of simulating one sweep point.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SweepOutcome {
    /// The point's label.
    pub label: String,
    /// Theorem 1's verdict for the point.
    pub theory: StabilityVerdict,
    /// Majority-vote classification of the simulated peer-count paths.
    pub simulated: PathClass,
    /// Mean tail growth rate of the simulated peer count across
    /// replications (peers per unit time).
    pub tail_slope: f64,
    /// Mean time-average of the peer count over the tail window across
    /// replications.
    pub tail_average: f64,
    /// Whether the majority vote and theory agree (borderline points are
    /// counted as agreeing with either outcome).
    pub agrees: bool,
}

/// Options for the sweep runner.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SweepOptions {
    /// Simulated horizon per replication.
    pub horizon: f64,
    /// Master seed. Point `i`, replication `r` draws from the engine's
    /// `(seed, i, r)` stream — never from a neighbouring point's.
    pub seed: u64,
    /// Worker threads (affects scheduling only, never the numbers).
    pub threads: usize,
    /// Replications per point, combined by majority vote.
    pub replications: u32,
    /// Initial one-club size (0 = start from an empty system).
    pub initial_one_club: u32,
    /// Report replication progress on stderr through the engine's built-in
    /// progress sink.
    pub progress: bool,
}

impl Default for SweepOptions {
    fn default() -> Self {
        SweepOptions {
            horizon: 2_000.0,
            seed: 0x5eed,
            threads: 4,
            replications: 4,
            initial_one_club: 0,
            progress: false,
        }
    }
}

impl SweepOptions {
    fn engine_config(&self) -> EngineConfig {
        EngineConfig::default()
            .with_replications(self.replications)
            .with_horizon(self.horizon)
            .with_master_seed(self.seed)
            .with_jobs(self.threads)
            .with_initial_one_club(self.initial_one_club)
            .with_progress(self.progress)
    }
}

/// Aggregate summary of a sweep.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct SweepSummary {
    /// Number of points swept.
    pub points: usize,
    /// Number of points where simulation agreed with theory.
    pub agreements: usize,
    /// Number of points Theorem 1 classifies as borderline.
    pub borderline: usize,
}

impl SweepSummary {
    /// Agreement rate over non-borderline points (1.0 if none).
    #[must_use]
    pub fn agreement_rate(&self) -> f64 {
        let decidable = self.points - self.borderline;
        if decidable == 0 {
            1.0
        } else {
            self.agreements as f64 / decidable as f64
        }
    }
}

/// Runs every sweep point through the replication engine (one
/// [`engine::Session`] over the whole point list) and returns the outcomes
/// in input order. Deterministic for a fixed `options.seed` regardless of
/// `options.threads`.
#[must_use]
pub fn run_sweep(points: &[SweepPoint], options: SweepOptions) -> Vec<SweepOutcome> {
    let scenarios: Vec<Scenario> = points
        .iter()
        .enumerate()
        .map(|(i, p)| Scenario::new(i as u64, p.label.clone(), p.params.clone()))
        .collect();
    Session::builder()
        .config(options.engine_config())
        .workload(Workload::ctmc(scenarios))
        .build()
        .unwrap_or_else(|e| panic!("sweep session rejected: {e}"))
        .run()
        .into_ctmc()
        .expect("a CTMC workload")
        .into_iter()
        .map(|outcome| SweepOutcome {
            label: outcome.label,
            theory: outcome.theory,
            simulated: outcome.majority,
            tail_slope: outcome.tail_slope.mean,
            tail_average: outcome.tail_average.mean,
            agrees: outcome.agrees,
        })
        .collect()
}

/// Summarises sweep outcomes.
#[must_use]
pub fn summarise(outcomes: &[SweepOutcome]) -> SweepSummary {
    SweepSummary {
        points: outcomes.len(),
        agreements: outcomes
            .iter()
            .filter(|o| o.theory != StabilityVerdict::Borderline && o.agrees)
            .count(),
        borderline: outcomes
            .iter()
            .filter(|o| o.theory == StabilityVerdict::Borderline)
            .count(),
    }
}

/// Re-exported engine agreement rule, used by the grid renderer: whether a
/// simulated class is consistent with a theory verdict.
#[must_use]
pub fn verdict_agrees(theory: StabilityVerdict, simulated: PathClass) -> bool {
    engine::verdict_agrees(theory, simulated)
}

/// Theorem 1's verdict for a sweep point (convenience for callers that
/// need theory without simulating).
#[must_use]
pub fn theory_verdict(params: &SwarmParams) -> StabilityVerdict {
    stability::classify(params).verdict
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenario;

    fn quick_options() -> SweepOptions {
        SweepOptions {
            horizon: 800.0,
            seed: 7,
            threads: 2,
            replications: 2,
            initial_one_club: 0,
            progress: false,
        }
    }

    #[test]
    fn example1_sweep_agrees_with_theory_away_from_boundary() {
        let points = vec![
            SweepPoint::new(
                "load=0.5",
                scenario::example1_at_load(0.5, 1.0, 1.0, 2.0).unwrap(),
            ),
            SweepPoint::new(
                "load=2.0",
                scenario::example1_at_load(2.0, 1.0, 1.0, 2.0).unwrap(),
            ),
        ];
        let outcomes = run_sweep(&points, quick_options());
        assert_eq!(outcomes.len(), 2);
        assert_eq!(outcomes[0].theory, StabilityVerdict::PositiveRecurrent);
        assert_eq!(outcomes[1].theory, StabilityVerdict::Transient);
        let summary = summarise(&outcomes);
        assert_eq!(summary.points, 2);
        assert_eq!(summary.borderline, 0);
        assert!(summary.agreement_rate() >= 0.5, "summary {summary:?}");
    }

    #[test]
    fn sequential_and_parallel_runs_agree() {
        let points = vec![
            SweepPoint::new("a", scenario::example1_at_load(0.4, 1.0, 1.0, 2.0).unwrap()),
            SweepPoint::new("b", scenario::example1_at_load(2.5, 1.0, 1.0, 2.0).unwrap()),
        ];
        let seq = run_sweep(
            &points,
            SweepOptions {
                threads: 1,
                ..quick_options()
            },
        );
        let par = run_sweep(
            &points,
            SweepOptions {
                threads: 8,
                ..quick_options()
            },
        );
        assert_eq!(
            seq, par,
            "same master seed → identical outcomes regardless of threading"
        );
    }

    #[test]
    fn nearby_seeds_no_longer_share_streams() {
        // The old scheme seeded point i with `seed + i`, so the sweep at
        // seed 7 reused the stream of the sweep at seed 8. Now each point's
        // replications are keyed by (seed, point, replication): the same
        // point under adjacent master seeds must see different draws.
        let point = vec![SweepPoint::new(
            "probe",
            scenario::example1_at_load(1.05, 1.0, 1.0, 2.0).unwrap(),
        )];
        let at_seed_7 = run_sweep(
            &point,
            SweepOptions {
                seed: 7,
                ..quick_options()
            },
        );
        let at_seed_8 = run_sweep(
            &point,
            SweepOptions {
                seed: 8,
                ..quick_options()
            },
        );
        assert_ne!(
            (at_seed_7[0].tail_slope, at_seed_7[0].tail_average),
            (at_seed_8[0].tail_slope, at_seed_8[0].tail_average),
            "independent master seeds draw independent streams"
        );
    }

    #[test]
    fn empty_sweep_is_empty() {
        assert!(run_sweep(&[], quick_options()).is_empty());
        let summary = summarise(&[]);
        assert_eq!(summary.points, 0);
        assert_eq!(summary.agreement_rate(), 1.0);
    }

    #[test]
    fn borderline_points_always_count_as_agreeing() {
        assert!(verdict_agrees(
            StabilityVerdict::Borderline,
            PathClass::Growing
        ));
        assert!(verdict_agrees(
            StabilityVerdict::Borderline,
            PathClass::Stable
        ));
        assert!(!verdict_agrees(
            StabilityVerdict::PositiveRecurrent,
            PathClass::Growing
        ));
        assert!(!verdict_agrees(
            StabilityVerdict::Transient,
            PathClass::Stable
        ));
        assert!(verdict_agrees(
            StabilityVerdict::Transient,
            PathClass::Growing
        ));
    }

    #[test]
    fn one_club_initial_condition_is_used() {
        let points = vec![SweepPoint::new(
            "club",
            scenario::example3([1.0, 1.0, 1.0], 1.0, 2.0).unwrap(),
        )];
        let options = SweepOptions {
            initial_one_club: 50,
            horizon: 300.0,
            threads: 1,
            replications: 1,
            seed: 1,
            progress: false,
        };
        let outcomes = run_sweep(&points, options);
        // The run starts from 50 one-club peers; tail average should reflect a
        // populated system rather than zero.
        assert!(outcomes[0].tail_average > 0.0);
    }
}
