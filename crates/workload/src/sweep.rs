//! Parallel parameter sweeps: simulate each point and compare the simulated
//! classification against the Theorem 1 prediction.

use markov::{PathClass, PathClassifier};
use rand::rngs::StdRng;
use rand::SeedableRng;
use serde::{Deserialize, Serialize};
use swarm::{stability, SwarmModel, SwarmParams, StabilityVerdict};

/// One point of a parameter sweep.
#[derive(Debug, Clone)]
pub struct SweepPoint {
    /// Label shown in the report (e.g. `"load=0.8"`).
    pub label: String,
    /// Model parameters of the point.
    pub params: SwarmParams,
}

impl SweepPoint {
    /// Creates a labelled sweep point.
    #[must_use]
    pub fn new(label: impl Into<String>, params: SwarmParams) -> Self {
        SweepPoint { label: label.into(), params }
    }
}

/// Outcome of simulating one sweep point.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SweepOutcome {
    /// The point's label.
    pub label: String,
    /// Theorem 1's verdict for the point.
    pub theory: StabilityVerdict,
    /// The simulated classification of the peer-count path.
    pub simulated: PathClass,
    /// Tail growth rate of the simulated peer count (peers per unit time).
    pub tail_slope: f64,
    /// Time-average of the peer count over the tail window.
    pub tail_average: f64,
    /// Whether simulation and theory agree (borderline points are counted as
    /// agreeing with either outcome).
    pub agrees: bool,
}

/// Options for the sweep runner.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SweepOptions {
    /// Simulated horizon per point.
    pub horizon: f64,
    /// Base RNG seed; point `i` uses `seed + i`.
    pub seed: u64,
    /// Number of worker threads (1 = run inline).
    pub threads: usize,
    /// Initial one-club size (0 = start from an empty system).
    pub initial_one_club: u32,
}

impl Default for SweepOptions {
    fn default() -> Self {
        SweepOptions { horizon: 2_000.0, seed: 0x5eed, threads: 4, initial_one_club: 0 }
    }
}

/// Aggregate summary of a sweep.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct SweepSummary {
    /// Number of points swept.
    pub points: usize,
    /// Number of points where simulation agreed with theory.
    pub agreements: usize,
    /// Number of points Theorem 1 classifies as borderline.
    pub borderline: usize,
}

impl SweepSummary {
    /// Agreement rate over non-borderline points (1.0 if none).
    #[must_use]
    pub fn agreement_rate(&self) -> f64 {
        let decidable = self.points - self.borderline;
        if decidable == 0 {
            1.0
        } else {
            self.agreements as f64 / decidable as f64
        }
    }
}

fn verdict_agrees(theory: StabilityVerdict, simulated: PathClass) -> bool {
    match theory {
        StabilityVerdict::PositiveRecurrent => simulated == PathClass::Stable,
        StabilityVerdict::Transient => simulated == PathClass::Growing,
        StabilityVerdict::Borderline => true,
    }
}

fn run_point(point: &SweepPoint, options: &SweepOptions, seed: u64) -> SweepOutcome {
    let theory = stability::classify(&point.params).verdict;
    let model = SwarmModel::new(point.params.clone());
    let mut rng = StdRng::seed_from_u64(seed);
    let initial = if options.initial_one_club > 0 {
        model.one_club_state(pieceset::PieceId::new(0), options.initial_one_club)
    } else {
        model.empty_state()
    };
    let initial_n = initial.total_peers() as f64;
    let path = model.simulate_peer_count(initial, options.horizon, &mut rng);
    let classifier =
        PathClassifier::new(point.params.total_arrival_rate(), (3.0 * initial_n).max(30.0));
    let verdict = classifier.classify(&path);
    SweepOutcome {
        label: point.label.clone(),
        theory,
        simulated: verdict.class,
        tail_slope: verdict.tail_slope,
        tail_average: verdict.tail_average,
        agrees: verdict_agrees(theory, verdict.class),
    }
}

/// Runs every sweep point (in parallel when `options.threads > 1`) and
/// returns the outcomes in input order.
#[must_use]
pub fn run_sweep(points: &[SweepPoint], options: SweepOptions) -> Vec<SweepOutcome> {
    if points.is_empty() {
        return Vec::new();
    }
    let threads = options.threads.max(1).min(points.len());
    if threads == 1 {
        return points
            .iter()
            .enumerate()
            .map(|(i, p)| run_point(p, &options, options.seed.wrapping_add(i as u64)))
            .collect();
    }
    let mut outcomes: Vec<Option<SweepOutcome>> = vec![None; points.len()];
    let next = std::sync::atomic::AtomicUsize::new(0);
    let outcomes_mutex = std::sync::Mutex::new(&mut outcomes);
    crossbeam::thread::scope(|scope| {
        for _ in 0..threads {
            scope.spawn(|_| loop {
                let i = next.fetch_add(1, std::sync::atomic::Ordering::SeqCst);
                if i >= points.len() {
                    break;
                }
                let outcome = run_point(&points[i], &options, options.seed.wrapping_add(i as u64));
                let mut guard = outcomes_mutex.lock().expect("no poisoned lock");
                guard[i] = Some(outcome);
            });
        }
    })
    .expect("sweep worker panicked");
    outcomes.into_iter().map(|o| o.expect("every point processed")).collect()
}

/// Summarises sweep outcomes.
#[must_use]
pub fn summarise(outcomes: &[SweepOutcome]) -> SweepSummary {
    SweepSummary {
        points: outcomes.len(),
        agreements: outcomes
            .iter()
            .filter(|o| o.theory != StabilityVerdict::Borderline && o.agrees)
            .count(),
        borderline: outcomes.iter().filter(|o| o.theory == StabilityVerdict::Borderline).count(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenario;

    fn quick_options() -> SweepOptions {
        SweepOptions { horizon: 800.0, seed: 7, threads: 2, initial_one_club: 0 }
    }

    #[test]
    fn example1_sweep_agrees_with_theory_away_from_boundary() {
        let points = vec![
            SweepPoint::new("load=0.5", scenario::example1_at_load(0.5, 1.0, 1.0, 2.0).unwrap()),
            SweepPoint::new("load=2.0", scenario::example1_at_load(2.0, 1.0, 1.0, 2.0).unwrap()),
        ];
        let outcomes = run_sweep(&points, quick_options());
        assert_eq!(outcomes.len(), 2);
        assert_eq!(outcomes[0].theory, StabilityVerdict::PositiveRecurrent);
        assert_eq!(outcomes[1].theory, StabilityVerdict::Transient);
        let summary = summarise(&outcomes);
        assert_eq!(summary.points, 2);
        assert_eq!(summary.borderline, 0);
        assert!(summary.agreement_rate() >= 0.5, "summary {summary:?}");
    }

    #[test]
    fn sequential_and_parallel_runs_agree() {
        let points = vec![
            SweepPoint::new("a", scenario::example1_at_load(0.4, 1.0, 1.0, 2.0).unwrap()),
            SweepPoint::new("b", scenario::example1_at_load(2.5, 1.0, 1.0, 2.0).unwrap()),
        ];
        let seq = run_sweep(&points, SweepOptions { threads: 1, ..quick_options() });
        let par = run_sweep(&points, SweepOptions { threads: 2, ..quick_options() });
        assert_eq!(seq, par, "same seeds → identical outcomes regardless of threading");
    }

    #[test]
    fn empty_sweep_is_empty() {
        assert!(run_sweep(&[], quick_options()).is_empty());
        let summary = summarise(&[]);
        assert_eq!(summary.points, 0);
        assert_eq!(summary.agreement_rate(), 1.0);
    }

    #[test]
    fn borderline_points_always_count_as_agreeing() {
        assert!(verdict_agrees(StabilityVerdict::Borderline, PathClass::Growing));
        assert!(verdict_agrees(StabilityVerdict::Borderline, PathClass::Stable));
        assert!(!verdict_agrees(StabilityVerdict::PositiveRecurrent, PathClass::Growing));
        assert!(!verdict_agrees(StabilityVerdict::Transient, PathClass::Stable));
        assert!(verdict_agrees(StabilityVerdict::Transient, PathClass::Growing));
    }

    #[test]
    fn one_club_initial_condition_is_used() {
        let points = vec![SweepPoint::new(
            "club",
            scenario::example3([1.0, 1.0, 1.0], 1.0, 2.0).unwrap(),
        )];
        let options = SweepOptions { initial_one_club: 50, horizon: 300.0, threads: 1, seed: 1 };
        let outcomes = run_sweep(&points, options);
        // The run starts from 50 one-club peers; tail average should reflect a
        // populated system rather than zero.
        assert!(outcomes[0].tail_average > 0.0);
    }
}
