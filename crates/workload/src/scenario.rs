//! Builders for the paper's example networks and the experiment workloads.

use pieceset::{PieceId, PieceSet};
use swarm::{SwarmError, SwarmParams};

/// Example 1 (Fig. 1(a)): a single-piece file (`K = 1`), empty-handed
/// arrivals at rate `lambda0`, fixed seed at rate `us`, peer rate `mu`, peer
/// seeds dwelling at rate `gamma` (pass [`f64::INFINITY`] for immediate
/// departure).
///
/// Theorem 1 (and \[12\]) give the stability condition
/// `λ0 < U_s / (1 − µ/γ)` when `µ < γ`, and stability for any `λ0` when
/// `γ ≤ µ` and `U_s > 0`.
///
/// # Examples
///
/// ```
/// use workload::scenario::example1;
/// use swarm::stability;
///
/// // λ0 = 1.5 sits below the threshold U_s/(1 − µ/γ) = 2: stable.
/// let params = example1(1.5, 1.0, 1.0, 2.0).unwrap();
/// assert!(stability::classify(&params).verdict.is_stable());
/// // λ0 = 2.5 sits above it: transient (a one club forms).
/// let params = example1(2.5, 1.0, 1.0, 2.0).unwrap();
/// assert!(!stability::classify(&params).verdict.is_stable());
/// ```
///
/// # Errors
///
/// Propagates parameter-validation errors.
pub fn example1(lambda0: f64, us: f64, mu: f64, gamma: f64) -> Result<SwarmParams, SwarmError> {
    let mut b = SwarmParams::builder(1)
        .seed_rate(us)
        .contact_rate(mu)
        .fresh_arrivals(lambda0);
    if gamma.is_finite() {
        b = b.seed_departure_rate(gamma);
    }
    b.build()
}

/// Example 2 (Fig. 1(b)): `K = 4`, no fixed seed, immediate departures,
/// arrivals of type `{1,2}` at rate `lambda12` and type `{3,4}` at rate
/// `lambda34`.
///
/// The stability region is `λ12 < 2 λ34` and `λ34 < 2 λ12`.
///
/// # Errors
///
/// Propagates parameter-validation errors.
pub fn example2(lambda12: f64, lambda34: f64, mu: f64) -> Result<SwarmParams, SwarmError> {
    SwarmParams::builder(4)
        .contact_rate(mu)
        .arrival(
            PieceSet::from_pieces([PieceId::new(0), PieceId::new(1)]),
            lambda12,
        )
        .arrival(
            PieceSet::from_pieces([PieceId::new(2), PieceId::new(3)]),
            lambda34,
        )
        .build()
}

/// Example 3 (Fig. 1(c)): `K = 3`, no fixed seed, every arriving peer carries
/// exactly one piece (piece `i` at rate `lambda[i]`), peer seeds dwell at
/// rate `gamma`.
///
/// The stability region is `λ_i + λ_j < λ_k (2 + µ/γ) / (1 − µ/γ)` for every
/// permutation `{i, j, k}` of the three pieces.
///
/// # Errors
///
/// Propagates parameter-validation errors.
pub fn example3(lambda: [f64; 3], mu: f64, gamma: f64) -> Result<SwarmParams, SwarmError> {
    let mut b = SwarmParams::builder(3).contact_rate(mu);
    if gamma.is_finite() {
        b = b.seed_departure_rate(gamma);
    }
    for (i, &rate) in lambda.iter().enumerate() {
        b = b.arrival(PieceSet::singleton(PieceId::new(i)), rate);
    }
    b.build()
}

/// A `K`-piece flash-crowd style workload: empty-handed arrivals at rate
/// `lambda0`, a fixed seed at rate `us`, and a fraction `gift_fraction` of
/// arrivals carrying one uniformly chosen data piece (split evenly across
/// pieces). Used by the gifted-peer and network-coding-contrast experiments.
///
/// # Errors
///
/// Returns [`SwarmError::InvalidParameter`] if `gift_fraction ∉ [0, 1]`, and
/// propagates parameter-validation errors.
pub fn gifted_fraction(
    num_pieces: usize,
    lambda_total: f64,
    gift_fraction: f64,
    us: f64,
    mu: f64,
    gamma: f64,
) -> Result<SwarmParams, SwarmError> {
    if !(0.0..=1.0).contains(&gift_fraction) {
        return Err(SwarmError::InvalidParameter(format!(
            "gift fraction {gift_fraction} must lie in [0, 1]"
        )));
    }
    let blank = lambda_total * (1.0 - gift_fraction);
    let per_piece = lambda_total * gift_fraction / num_pieces as f64;
    let mut b = SwarmParams::builder(num_pieces)
        .seed_rate(us)
        .contact_rate(mu);
    if gamma.is_finite() {
        b = b.seed_departure_rate(gamma);
    }
    if blank > 0.0 {
        b = b.fresh_arrivals(blank);
    }
    if per_piece > 0.0 {
        for i in 0..num_pieces {
            b = b.arrival(PieceSet::singleton(PieceId::new(i)), per_piece);
        }
    }
    b.build()
}

/// The "one extra piece" corollary scenario: a heavily loaded `K`-piece
/// system with a tiny fixed seed, where the peer-seed departure rate is
/// `gamma_over_mu · µ`. The corollary states that `γ ≤ µ` (dwelling long
/// enough to upload one more piece) stabilises the system for any load.
///
/// # Errors
///
/// Propagates parameter-validation errors.
pub fn one_extra_piece(
    num_pieces: usize,
    lambda0: f64,
    gamma_over_mu: f64,
) -> Result<SwarmParams, SwarmError> {
    let mu = 1.0;
    SwarmParams::builder(num_pieces)
        .seed_rate(0.05)
        .contact_rate(mu)
        .seed_departure_rate(gamma_over_mu * mu)
        .fresh_arrivals(lambda0)
        .build()
}

/// Example 1 scaled to sit exactly a multiplicative factor away from its
/// Theorem 1 boundary: `λ0 = load_factor · U_s / (1 − µ/γ)`. Factors below 1
/// are predicted stable, above 1 transient.
///
/// # Errors
///
/// Propagates parameter-validation errors.
pub fn example1_at_load(
    load_factor: f64,
    us: f64,
    mu: f64,
    gamma: f64,
) -> Result<SwarmParams, SwarmError> {
    let ratio = if gamma.is_finite() { mu / gamma } else { 0.0 };
    let threshold = us / (1.0 - ratio);
    example1(load_factor * threshold, us, mu, gamma)
}

#[cfg(test)]
mod tests {
    use super::*;
    use swarm::stability;
    use swarm::StabilityVerdict;

    #[test]
    fn example1_matches_leskela_robert_simatos_condition() {
        // Stable iff λ0 < U_s/(1 − µ/γ).
        assert!(stability::classify(&example1(1.9, 1.0, 1.0, 2.0).unwrap())
            .verdict
            .is_stable());
        assert_eq!(
            stability::classify(&example1(2.1, 1.0, 1.0, 2.0).unwrap()).verdict,
            StabilityVerdict::Transient
        );
        // γ = ∞ (immediate departure): stable iff λ0 < U_s.
        assert!(
            stability::classify(&example1(0.9, 1.0, 1.0, f64::INFINITY).unwrap())
                .verdict
                .is_stable()
        );
        assert_eq!(
            stability::classify(&example1(1.1, 1.0, 1.0, f64::INFINITY).unwrap()).verdict,
            StabilityVerdict::Transient
        );
    }

    #[test]
    fn example2_region_is_the_two_to_one_wedge() {
        assert!(stability::classify(&example2(1.0, 0.9, 1.0).unwrap())
            .verdict
            .is_stable());
        assert_eq!(
            stability::classify(&example2(1.0, 2.5, 1.0).unwrap()).verdict,
            StabilityVerdict::Transient
        );
        assert_eq!(
            stability::classify(&example2(2.5, 1.0, 1.0).unwrap()).verdict,
            StabilityVerdict::Transient
        );
    }

    #[test]
    fn example3_symmetric_rates_stable_for_finite_gamma() {
        let p = example3([1.0, 1.0, 1.0], 1.0, 2.0).unwrap();
        assert!(stability::classify(&p).verdict.is_stable());
        // γ = ∞ with symmetric rates is the borderline case.
        let p = example3([1.0, 1.0, 1.0], 1.0, f64::INFINITY).unwrap();
        assert_eq!(
            stability::classify(&p).verdict,
            StabilityVerdict::Borderline
        );
        // Asymmetric rates with γ = ∞ are transient.
        let p = example3([1.0, 1.0, 0.2], 1.0, f64::INFINITY).unwrap();
        assert_eq!(stability::classify(&p).verdict, StabilityVerdict::Transient);
    }

    #[test]
    fn gifted_fraction_splits_rates_correctly() {
        let p = gifted_fraction(4, 2.0, 0.5, 0.1, 1.0, f64::INFINITY).unwrap();
        assert!((p.total_arrival_rate() - 2.0).abs() < 1e-12);
        assert!((p.arrival_rate(PieceSet::empty()) - 1.0).abs() < 1e-12);
        assert!((p.arrival_rate(PieceSet::singleton(PieceId::new(2))) - 0.25).abs() < 1e-12);
        assert!(gifted_fraction(4, 2.0, 1.5, 0.1, 1.0, f64::INFINITY).is_err());
        // fraction 1.0: no blank arrivals
        let p = gifted_fraction(2, 2.0, 1.0, 0.0, 1.0, 2.0).unwrap();
        assert_eq!(p.arrival_rate(PieceSet::empty()), 0.0);
    }

    #[test]
    fn one_extra_piece_scenario_flips_at_gamma_equals_mu() {
        // Heavy load: stable when γ ≤ µ, transient when γ is a bit larger.
        let stable = one_extra_piece(3, 40.0, 0.95).unwrap();
        assert!(stability::classify(&stable).verdict.is_stable());
        let unstable = one_extra_piece(3, 40.0, 1.3).unwrap();
        assert_eq!(
            stability::classify(&unstable).verdict,
            StabilityVerdict::Transient
        );
    }

    #[test]
    fn example1_at_load_brackets_the_boundary() {
        let below = example1_at_load(0.8, 1.0, 1.0, 2.0).unwrap();
        let above = example1_at_load(1.2, 1.0, 1.0, 2.0).unwrap();
        assert!(stability::classify(&below).verdict.is_stable());
        assert_eq!(
            stability::classify(&above).verdict,
            StabilityVerdict::Transient
        );
    }
}
