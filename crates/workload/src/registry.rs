//! The scenario registry: declarative, file-loadable swarm scenarios
//! executed on the replication engine's agent backend.
//!
//! A [`ScenarioSpec`] describes everything the peer-level simulator can
//! express — heterogeneous arrival types, flash crowds, multi-seed initial
//! populations, the Section VIII-C retry speed-up, and the piece-selection
//! policy — as data rather than code. Specs serialize to/from JSON (see
//! `EXPERIMENTS.md` for the file format), so `run_experiments --scenario
//! <file-or-name>` can execute any of them deterministically: replications
//! run on the engine's `(master seed, scenario, replication)` ChaCha
//! streams, so a fixed seed gives bit-identical outcomes at any `--jobs`.
//!
//! [`Registry::builtin`] ships named scenarios covering the paper's examples
//! and the model variants, which double as format documentation:
//! `ScenarioSpec::to_json` of any builtin is a valid scenario file.
//!
//! # Examples
//!
//! ```
//! use workload::registry::{Registry, ScenarioRunOptions};
//!
//! let registry = Registry::builtin();
//! let spec = registry.get("example1-stable").unwrap();
//! // Round-trip through the file format.
//! let same = workload::registry::ScenarioSpec::from_json(&spec.to_json()).unwrap();
//! assert_eq!(*spec, same);
//! // Execute on the engine (tiny budget for the doctest).
//! let options = ScenarioRunOptions {
//!     replications: 1,
//!     jobs: 1,
//!     seed: 7,
//!     horizon_override: Some(50.0),
//!     ..Default::default()
//! };
//! let report = workload::registry::run(spec, &options).unwrap();
//! assert_eq!(report.outcome.votes.total(), 1);
//! ```

use crate::error::SpecError;
use crate::json::{self, Json};
use crate::report::fmt_num;
use engine::{
    AgentOutcome, AgentScenario, CheckpointSpec, EngineConfig, FailurePolicy, FaultPlan, NullSink,
    ReplicationFailure, ReplicationRecord, ReplicationSink, Session, StreamPlan, StreamStats,
    Workload,
};
use pieceset::{PieceId, PieceSet};
use swarm::coded::CodedParams;
use swarm::netcoding::GaloisField;
use swarm::sim::{AgentConfig, FlashCrowd, KernelKind};
use swarm::SwarmParams;

/// A peer-type selector as written in scenario files: either an explicit
/// list of 0-based piece indices or one of the named shorthands.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PieceSelector {
    /// `"empty"` — a peer holding nothing.
    Empty,
    /// `"full"` — the complete collection (a peer seed).
    Full,
    /// `"one-club"` — every piece except the watch piece.
    OneClub,
    /// `[i, j, …]` — an explicit set of 0-based piece indices.
    Pieces(Vec<usize>),
}

impl PieceSelector {
    /// Resolves the selector against a `K`-piece file and a watch piece.
    ///
    /// # Errors
    ///
    /// Returns [`SpecError::Invalid`] if `num_pieces` is outside
    /// `1..=`[`pieceset::MAX_PIECES`] or an explicit index is outside
    /// `0..K`.
    pub fn resolve(&self, num_pieces: usize, watch: PieceId) -> Result<PieceSet, SpecError> {
        let full = PieceSet::try_full(num_pieces).map_err(|e| SpecError::Invalid(e.to_string()))?;
        match self {
            PieceSelector::Empty => Ok(PieceSet::empty()),
            PieceSelector::Full => Ok(full),
            PieceSelector::OneClub => Ok(full.without(watch)),
            PieceSelector::Pieces(indices) => {
                let mut set = PieceSet::empty();
                for &i in indices {
                    if i >= num_pieces {
                        return Err(SpecError::Invalid(format!(
                            "piece index {i} outside a {num_pieces}-piece file"
                        )));
                    }
                    set.insert(PieceId::new(i));
                }
                Ok(set)
            }
        }
    }

    fn to_json(&self) -> Json {
        match self {
            PieceSelector::Empty => Json::Str("empty".into()),
            PieceSelector::Full => Json::Str("full".into()),
            PieceSelector::OneClub => Json::Str("one-club".into()),
            PieceSelector::Pieces(indices) => {
                Json::Arr(indices.iter().map(|&i| Json::Num(i as f64)).collect())
            }
        }
    }

    fn from_json(value: &Json, context: &str) -> Result<Self, SpecError> {
        match value {
            Json::Str(s) => match s.as_str() {
                "empty" => Ok(PieceSelector::Empty),
                "full" => Ok(PieceSelector::Full),
                "one-club" => Ok(PieceSelector::OneClub),
                other => Err(SpecError::Parse(format!(
                    "{context}: unknown piece selector `{other}` (expected \
                     \"empty\", \"full\", \"one-club\", or an index array)"
                ))),
            },
            Json::Arr(items) => {
                let mut indices = Vec::with_capacity(items.len());
                for item in items {
                    match item {
                        Json::Num(x) if *x >= 0.0 && x.fract() == 0.0 => {
                            indices.push(*x as usize);
                        }
                        _ => {
                            return Err(SpecError::Parse(format!(
                                "{context}: piece indices must be non-negative integers"
                            )))
                        }
                    }
                }
                Ok(PieceSelector::Pieces(indices))
            }
            _ => Err(SpecError::Parse(format!(
                "{context}: expected a piece selector"
            ))),
        }
    }
}

/// One Poisson arrival class: peers of type `pieces` at rate `rate`.
#[derive(Debug, Clone, PartialEq)]
pub struct ArrivalSpec {
    /// The arriving peers' initial collection.
    pub pieces: PieceSelector,
    /// The class arrival rate `λ_C`.
    pub rate: f64,
}

/// One initial-population group: `count` peers of type `pieces` at time 0.
#[derive(Debug, Clone, PartialEq)]
pub struct InitialGroupSpec {
    /// The group's piece collection.
    pub pieces: PieceSelector,
    /// Number of peers in the group.
    pub count: usize,
}

/// The `"coding"` block of a scenario file: runs the scenario as the
/// Section VIII-B network-coded system (Theorem 15) on the coded kernel.
///
/// The scenario's `arrivals` must all be empty-handed classes — their
/// combined rate is the total arrival rate `λ`, of which a fraction
/// `gift_fraction` arrive carrying one uniformly random coded piece over
/// `GF(q)` and the rest arrive blank (the paper's headline gifted-arrival
/// model). Piece selectors elsewhere (`initial`, `flash_crowds`) map to the
/// spans of the corresponding unit coding vectors.
#[derive(Debug, Clone, PartialEq)]
pub struct CodingSpec {
    /// The field order `q` (`"q"` in files): a prime or a power of two up to
    /// `2^16`.
    pub field_order: u64,
    /// Fraction `f ∈ [0, 1]` of arrivals carrying one random coded piece.
    pub gift_fraction: f64,
}

/// One scheduled flash crowd.
#[derive(Debug, Clone, PartialEq)]
pub struct FlashSpec {
    /// Simulated time of the burst.
    pub time: f64,
    /// Number of peers joining at once.
    pub count: usize,
    /// The crowd's piece collection.
    pub pieces: PieceSelector,
}

/// A declarative scenario: the full input of one agent-simulator study.
///
/// Everything is data — model rates, arrival mix, initial population, flash
/// crowds, policy, retry speed-up, simulator budget — so scenarios live in
/// JSON files and version control rather than code. See the
/// [module docs](self) and `EXPERIMENTS.md` for the file format.
#[derive(Debug, Clone, PartialEq)]
pub struct ScenarioSpec {
    /// Registry name (also the default artifact label).
    pub name: String,
    /// Free-form description shown by `--list-scenarios`.
    pub description: String,
    /// Number of pieces `K`.
    pub num_pieces: usize,
    /// Fixed-seed contact–upload rate `U_s`.
    pub seed_rate: f64,
    /// Peer contact–upload rate `µ`.
    pub contact_rate: f64,
    /// Peer-seed departure rate `γ` (`f64::INFINITY` = immediate departure,
    /// written `"inf"` in files).
    pub seed_departure_rate: f64,
    /// The Poisson arrival classes (at least one with positive rate).
    pub arrivals: Vec<ArrivalSpec>,
    /// Piece-selection policy name (see [`swarm::policy::by_name`]).
    pub policy: String,
    /// Retry speed-up factor `η ≥ 1` of Section VIII-C.
    pub retry_speedup: f64,
    /// 0-based index of the watch piece for the Fig.-2 decomposition.
    pub watch_piece: usize,
    /// Default simulated horizon per replication.
    pub horizon: f64,
    /// Snapshot interval of the simulator.
    pub snapshot_interval: f64,
    /// Event-cap safety valve per replication.
    pub max_events: u64,
    /// Initial population at time 0.
    pub initial: Vec<InitialGroupSpec>,
    /// Scheduled flash crowds.
    pub flash_crowds: Vec<FlashSpec>,
    /// The simulation kernel (`"event-driven"`, `"legacy-scan"`, `"turbo"`,
    /// or `"coded"` in files; the scan kernel exists for differential
    /// cross-checks, the turbo kernel trades byte-reproducible trajectories
    /// across kernels for speed — it remains deterministic per seed — and
    /// the coded kernel runs the network-coded variant, which additionally
    /// requires a [`ScenarioSpec::coding`] block).
    pub kernel: KernelKind,
    /// Network-coding block; present if and only if the kernel is
    /// [`KernelKind::Coded`].
    pub coding: Option<CodingSpec>,
    /// Intra-replication shard count (`"shards"` in files; turbo kernel
    /// only). `None` inherits the engine-wide setting; a value above 1
    /// splits each replication's population across shard workers.
    pub shards: Option<u32>,
    /// Synchronization window of the sharded driver (`"sync_window"` in
    /// files, simulated time between cross-shard exchange rounds). `None`
    /// inherits the engine-wide default.
    pub sync_window: Option<f64>,
}

impl ScenarioSpec {
    /// A spec with the model defaults: `U_s = 0`, `µ = 1`, `γ = ∞`,
    /// random-useful policy, `η = 1`, watch piece 0, horizon 1000,
    /// snapshots every 10, the standard event cap, and no arrivals yet.
    #[must_use]
    pub fn new(name: impl Into<String>, num_pieces: usize) -> Self {
        ScenarioSpec {
            name: name.into(),
            description: String::new(),
            num_pieces,
            seed_rate: 0.0,
            contact_rate: 1.0,
            seed_departure_rate: f64::INFINITY,
            arrivals: Vec::new(),
            policy: "random-useful".into(),
            retry_speedup: 1.0,
            watch_piece: 0,
            horizon: 1_000.0,
            snapshot_interval: 10.0,
            max_events: 50_000_000,
            initial: Vec::new(),
            flash_crowds: Vec::new(),
            kernel: KernelKind::EventDriven,
            coding: None,
            shards: None,
            sync_window: None,
        }
    }

    /// Compiles the spec into an engine [`AgentScenario`] with stream key
    /// `id`.
    ///
    /// # Errors
    ///
    /// Returns a [`SpecError::Invalid`] naming the offending field if the
    /// spec does not validate (bad piece indices, invalid rates; unknown
    /// policy names are caught later by the engine's up-front validation).
    pub fn compile(&self, id: u64) -> Result<AgentScenario, SpecError> {
        // Guard the piece-count range before any `PieceSet::full` call so a
        // bad file reports a field error instead of panicking downstream.
        if self.num_pieces == 0 || self.num_pieces > pieceset::MAX_PIECES {
            return Err(SpecError::Invalid(format!(
                "num_pieces {} outside the supported range 1..={}",
                self.num_pieces,
                pieceset::MAX_PIECES
            )));
        }
        if self.watch_piece >= self.num_pieces {
            return Err(SpecError::Invalid(format!(
                "watch_piece {} outside a {}-piece file",
                self.watch_piece, self.num_pieces
            )));
        }
        let watch = PieceId::new(self.watch_piece);
        match (&self.coding, self.kernel) {
            (Some(_), KernelKind::Coded | KernelKind::CodedTurbo) | (None, _) => {}
            (Some(_), _) => {
                return Err(SpecError::Invalid(
                    "scenario has a `coding` block: it runs only on the coded kernels \
                     (kernel overrides cannot switch a coded scenario to an uncoded one)"
                        .into(),
                ))
            }
        }
        let (params, coding) = if let Some(coding) = &self.coding {
            if !(0.0..=1.0).contains(&coding.gift_fraction) {
                return Err(SpecError::Invalid(format!(
                    "coding: gift_fraction {} must lie in [0, 1]",
                    coding.gift_fraction
                )));
            }
            if self.policy != "random-useful" {
                return Err(SpecError::Invalid(format!(
                    "coding: piece policy `{}` does not apply to the coded \
                     kernel (uploads are random linear combinations)",
                    self.policy
                )));
            }
            if self.retry_speedup != 1.0 {
                return Err(SpecError::Invalid(
                    "coding: the coded kernel does not model the retry speed-up \
                     (retry_speedup must be 1)"
                        .into(),
                ));
            }
            let mut lambda_total = 0.0;
            for (i, arrival) in self.arrivals.iter().enumerate() {
                if arrival.pieces != PieceSelector::Empty {
                    return Err(SpecError::Invalid(format!(
                        "arrivals[{i}]: coded scenarios take empty-handed arrival \
                         classes only; gifted arrivals come from coding.gift_fraction"
                    )));
                }
                lambda_total += arrival.rate;
            }
            let coded = CodedParams::gift_example(
                self.num_pieces,
                coding.field_order,
                lambda_total,
                coding.gift_fraction,
                self.seed_rate,
                self.contact_rate,
                self.seed_departure_rate,
            )
            .map_err(|e| SpecError::Invalid(format!("coding: {e}")))?;
            (coded.base.clone(), Some(coded.gifts()))
        } else {
            if matches!(self.kernel, KernelKind::Coded | KernelKind::CodedTurbo) {
                return Err(SpecError::Invalid(
                    "the coded kernels require a `coding` block".into(),
                ));
            }
            let mut builder = SwarmParams::builder(self.num_pieces)
                .seed_rate(self.seed_rate)
                .contact_rate(self.contact_rate);
            if self.seed_departure_rate.is_finite() {
                builder = builder.seed_departure_rate(self.seed_departure_rate);
            }
            for (i, arrival) in self.arrivals.iter().enumerate() {
                let pieces = arrival
                    .pieces
                    .resolve(self.num_pieces, watch)
                    .map_err(|e| e.context(&format!("arrivals[{i}]")))?;
                builder = builder.arrival(pieces, arrival.rate);
            }
            let params = builder
                .build()
                .map_err(|e| SpecError::Invalid(format!("invalid parameters: {e}")))?;
            (params, None)
        };

        let mut initial = Vec::with_capacity(self.initial.len());
        for (i, group) in self.initial.iter().enumerate() {
            let pieces = group
                .pieces
                .resolve(self.num_pieces, watch)
                .map_err(|e| e.context(&format!("initial[{i}]")))?;
            initial.push((pieces, group.count));
        }
        let mut flash = Vec::with_capacity(self.flash_crowds.len());
        for (i, crowd) in self.flash_crowds.iter().enumerate() {
            flash.push(FlashCrowd {
                time: crowd.time,
                count: crowd.count,
                pieces: crowd
                    .pieces
                    .resolve(self.num_pieces, watch)
                    .map_err(|e| e.context(&format!("flash_crowds[{i}]")))?,
            });
        }

        Ok(AgentScenario {
            id,
            label: self.name.clone(),
            params,
            config: AgentConfig {
                watch_piece: watch,
                retry_speedup: self.retry_speedup,
                snapshot_interval: self.snapshot_interval,
                max_events: self.max_events,
                kernel: self.kernel,
            },
            policy: self.policy.clone(),
            initial,
            flash,
            coding,
            shards: self.shards,
            sync_window: self.sync_window,
        })
    }

    /// Serializes the spec as a canonical JSON scenario file.
    #[must_use]
    pub fn to_json(&self) -> String {
        let gamma = if self.seed_departure_rate.is_finite() {
            Json::Num(self.seed_departure_rate)
        } else {
            Json::Str("inf".into())
        };
        let arrivals = Json::Arr(
            self.arrivals
                .iter()
                .map(|a| {
                    Json::Obj(vec![
                        ("pieces".into(), a.pieces.to_json()),
                        ("rate".into(), Json::Num(a.rate)),
                    ])
                })
                .collect(),
        );
        let initial = Json::Arr(
            self.initial
                .iter()
                .map(|g| {
                    Json::Obj(vec![
                        ("pieces".into(), g.pieces.to_json()),
                        ("count".into(), Json::Num(g.count as f64)),
                    ])
                })
                .collect(),
        );
        let flash = Json::Arr(
            self.flash_crowds
                .iter()
                .map(|f| {
                    Json::Obj(vec![
                        ("time".into(), Json::Num(f.time)),
                        ("count".into(), Json::Num(f.count as f64)),
                        ("pieces".into(), f.pieces.to_json()),
                    ])
                })
                .collect(),
        );
        let mut members = vec![
            ("name".into(), Json::Str(self.name.clone())),
            ("description".into(), Json::Str(self.description.clone())),
            ("num_pieces".into(), Json::Num(self.num_pieces as f64)),
            ("seed_rate".into(), Json::Num(self.seed_rate)),
            ("contact_rate".into(), Json::Num(self.contact_rate)),
            ("seed_departure_rate".into(), gamma),
            ("arrivals".into(), arrivals),
            ("policy".into(), Json::Str(self.policy.clone())),
            ("retry_speedup".into(), Json::Num(self.retry_speedup)),
            ("watch_piece".into(), Json::Num(self.watch_piece as f64)),
            ("horizon".into(), Json::Num(self.horizon)),
            (
                "snapshot_interval".into(),
                Json::Num(self.snapshot_interval),
            ),
            ("max_events".into(), Json::Num(self.max_events as f64)),
            ("initial".into(), initial),
            ("flash_crowds".into(), flash),
            (
                "kernel".into(),
                Json::Str(
                    match self.kernel {
                        KernelKind::EventDriven => "event-driven",
                        KernelKind::LegacyScan => "legacy-scan",
                        KernelKind::Turbo => "turbo",
                        KernelKind::Coded => "coded",
                        KernelKind::CodedTurbo => "coded-turbo",
                    }
                    .into(),
                ),
            ),
        ];
        if let Some(coding) = &self.coding {
            members.push((
                "coding".into(),
                Json::Obj(vec![
                    ("q".into(), Json::Num(coding.field_order as f64)),
                    ("gift_fraction".into(), Json::Num(coding.gift_fraction)),
                ]),
            ));
        }
        if let Some(shards) = self.shards {
            members.push(("shards".into(), Json::Num(f64::from(shards))));
        }
        if let Some(window) = self.sync_window {
            members.push(("sync_window".into(), Json::Num(window)));
        }
        Json::Obj(members).render()
    }

    /// Parses a JSON scenario file. Unknown fields are rejected (they are
    /// almost always typos of optional fields, which would otherwise
    /// silently fall back to defaults).
    ///
    /// # Errors
    ///
    /// Returns a [`SpecError::Parse`] naming the offending field or byte
    /// offset.
    pub fn from_json(text: &str) -> Result<Self, SpecError> {
        const KNOWN: [&str; 19] = [
            "name",
            "description",
            "num_pieces",
            "seed_rate",
            "contact_rate",
            "seed_departure_rate",
            "arrivals",
            "policy",
            "retry_speedup",
            "watch_piece",
            "horizon",
            "snapshot_interval",
            "max_events",
            "initial",
            "flash_crowds",
            "kernel",
            "coding",
            "shards",
            "sync_window",
        ];
        let doc = json::parse(text).map_err(SpecError::Parse)?;
        for key in doc.keys() {
            if !KNOWN.contains(&key) {
                return Err(SpecError::Parse(format!("unknown scenario field `{key}`")));
            }
        }
        let name = match doc.get("name") {
            Some(Json::Str(s)) => s.clone(),
            _ => {
                return Err(SpecError::Parse(
                    "missing required string field `name`".into(),
                ))
            }
        };
        let num_pieces = get_count(&doc, "num_pieces")?.ok_or_else(|| {
            SpecError::Parse("missing required integer field `num_pieces`".into())
        })?;
        let mut spec = ScenarioSpec::new(name, num_pieces);
        if let Some(Json::Str(s)) = doc.get("description") {
            spec.description = s.clone();
        }
        if let Some(x) = get_rate(&doc, "seed_rate")? {
            spec.seed_rate = x;
        }
        if let Some(x) = get_rate(&doc, "contact_rate")? {
            spec.contact_rate = x;
        }
        if let Some(x) = get_rate(&doc, "seed_departure_rate")? {
            spec.seed_departure_rate = x;
        }
        if let Some(Json::Str(s)) = doc.get("policy") {
            spec.policy = s.clone();
        }
        if let Some(x) = get_rate(&doc, "retry_speedup")? {
            spec.retry_speedup = x;
        }
        if let Some(n) = get_count(&doc, "watch_piece")? {
            spec.watch_piece = n;
        }
        if let Some(x) = get_rate(&doc, "horizon")? {
            spec.horizon = x;
        }
        if let Some(x) = get_rate(&doc, "snapshot_interval")? {
            spec.snapshot_interval = x;
        }
        if let Some(n) = get_count(&doc, "max_events")? {
            spec.max_events = n as u64;
        }
        if let Some(n) = get_count(&doc, "shards")? {
            let shards = u32::try_from(n)
                .map_err(|_| SpecError::Parse(format!("`shards` {n} is out of range")))?;
            if shards == 0 {
                return Err(SpecError::Parse("`shards` must be at least 1".into()));
            }
            spec.shards = Some(shards);
        }
        if let Some(x) = get_rate(&doc, "sync_window")? {
            if !(x.is_finite() && x > 0.0) {
                return Err(SpecError::Parse(format!(
                    "`sync_window` {x} must be positive and finite"
                )));
            }
            spec.sync_window = Some(x);
        }
        let kernel_named = doc.get("kernel").is_some();
        match doc.get("kernel") {
            None => {}
            Some(Json::Str(s)) if s == "event-driven" => spec.kernel = KernelKind::EventDriven,
            Some(Json::Str(s)) if s == "legacy-scan" => spec.kernel = KernelKind::LegacyScan,
            Some(Json::Str(s)) if s == "turbo" => spec.kernel = KernelKind::Turbo,
            Some(Json::Str(s)) if s == "coded" => spec.kernel = KernelKind::Coded,
            Some(Json::Str(s)) if s == "coded-turbo" => spec.kernel = KernelKind::CodedTurbo,
            Some(_) => {
                return Err(SpecError::Parse(
                    "`kernel` must be \"event-driven\", \"legacy-scan\", \
                     \"turbo\", \"coded\", or \"coded-turbo\""
                        .into(),
                ))
            }
        }
        match doc.get("coding") {
            None => {
                if matches!(spec.kernel, KernelKind::Coded | KernelKind::CodedTurbo) {
                    return Err(SpecError::Parse(
                        "the coded kernels require a `coding` block".into(),
                    ));
                }
            }
            Some(block @ Json::Obj(_)) => {
                check_keys(block, &["q", "gift_fraction"], "coding")?;
                let q = get_count(block, "q")?
                    .ok_or_else(|| SpecError::Parse("coding: missing required field `q`".into()))?;
                GaloisField::new(q as u64).map_err(|e| SpecError::Parse(format!("coding: {e}")))?;
                let f = get_rate(block, "gift_fraction")?.ok_or_else(|| {
                    SpecError::Parse("coding: missing required field `gift_fraction`".into())
                })?;
                if f > 1.0 {
                    return Err(SpecError::Parse(format!(
                        "coding: `gift_fraction` {f} must lie in [0, 1]"
                    )));
                }
                spec.coding = Some(CodingSpec {
                    field_order: q as u64,
                    gift_fraction: f,
                });
                if !kernel_named {
                    // A coding block implies the coded kernel.
                    spec.kernel = KernelKind::Coded;
                } else if !matches!(spec.kernel, KernelKind::Coded | KernelKind::CodedTurbo) {
                    return Err(SpecError::Parse(
                        "a `coding` block requires `kernel: \"coded\"` or \
                         `kernel: \"coded-turbo\"` (or omit the kernel field)"
                            .into(),
                    ));
                }
            }
            Some(_) => return Err(SpecError::Parse("`coding` must be an object".into())),
        }
        if let Some(value) = doc.get("arrivals") {
            let items = as_array(value, "arrivals")?;
            for (i, item) in items.iter().enumerate() {
                check_keys(item, &["pieces", "rate"], &format!("arrivals[{i}]"))?;
                spec.arrivals.push(ArrivalSpec {
                    pieces: PieceSelector::from_json(
                        item.get("pieces").ok_or_else(|| {
                            SpecError::Parse(format!("arrivals[{i}]: missing `pieces`"))
                        })?,
                        &format!("arrivals[{i}]"),
                    )?,
                    rate: get_rate(item, "rate")?.ok_or_else(|| {
                        SpecError::Parse(format!("arrivals[{i}]: missing `rate`"))
                    })?,
                });
            }
        }
        if let Some(value) = doc.get("initial") {
            let items = as_array(value, "initial")?;
            for (i, item) in items.iter().enumerate() {
                check_keys(item, &["pieces", "count"], &format!("initial[{i}]"))?;
                spec.initial.push(InitialGroupSpec {
                    pieces: PieceSelector::from_json(
                        item.get("pieces").ok_or_else(|| {
                            SpecError::Parse(format!("initial[{i}]: missing `pieces`"))
                        })?,
                        &format!("initial[{i}]"),
                    )?,
                    count: get_count(item, "count")?.ok_or_else(|| {
                        SpecError::Parse(format!("initial[{i}]: missing `count`"))
                    })?,
                });
            }
        }
        if let Some(value) = doc.get("flash_crowds") {
            let items = as_array(value, "flash_crowds")?;
            for (i, item) in items.iter().enumerate() {
                check_keys(
                    item,
                    &["time", "count", "pieces"],
                    &format!("flash_crowds[{i}]"),
                )?;
                spec.flash_crowds.push(FlashSpec {
                    time: get_rate(item, "time")?.ok_or_else(|| {
                        SpecError::Parse(format!("flash_crowds[{i}]: missing `time`"))
                    })?,
                    count: get_count(item, "count")?.ok_or_else(|| {
                        SpecError::Parse(format!("flash_crowds[{i}]: missing `count`"))
                    })?,
                    pieces: PieceSelector::from_json(
                        item.get("pieces").ok_or_else(|| {
                            SpecError::Parse(format!("flash_crowds[{i}]: missing `pieces`"))
                        })?,
                        &format!("flash_crowds[{i}]"),
                    )?,
                });
            }
        }
        Ok(spec)
    }
}

fn as_array<'a>(value: &'a Json, context: &str) -> Result<&'a [Json], SpecError> {
    match value {
        Json::Arr(items) => Ok(items),
        _ => Err(SpecError::Parse(format!("`{context}` must be an array"))),
    }
}

fn check_keys(value: &Json, known: &[&str], context: &str) -> Result<(), SpecError> {
    for key in value.keys() {
        if !known.contains(&key) {
            return Err(SpecError::Parse(format!(
                "{context}: unknown field `{key}`"
            )));
        }
    }
    Ok(())
}

/// A non-negative rate/time, with `"inf"` accepted for infinity. Every
/// numeric scenario field is a rate, a time, or a budget — none may be
/// negative, so that is rejected at parse time with the field name.
fn get_rate(value: &Json, key: &str) -> Result<Option<f64>, SpecError> {
    match value.get(key) {
        None => Ok(None),
        Some(Json::Num(x)) if *x >= 0.0 => Ok(Some(*x)),
        Some(Json::Str(s)) if s == "inf" => Ok(Some(f64::INFINITY)),
        Some(_) => Err(SpecError::Parse(format!(
            "`{key}` must be a non-negative number (or \"inf\")"
        ))),
    }
}

/// A non-negative integer count.
fn get_count(value: &Json, key: &str) -> Result<Option<usize>, SpecError> {
    match value.get(key) {
        None => Ok(None),
        Some(Json::Num(x)) if *x >= 0.0 && x.fract() == 0.0 => Ok(Some(*x as usize)),
        Some(_) => Err(SpecError::Parse(format!(
            "`{key}` must be a non-negative integer"
        ))),
    }
}

/// The named scenarios shipped with the workspace.
#[derive(Debug, Clone)]
pub struct Registry {
    specs: Vec<ScenarioSpec>,
}

impl Registry {
    /// The built-in scenarios: the paper's examples plus one scenario per
    /// model variant the agent simulator supports. Each doubles as a format
    /// example — `to_json` of any of them is a valid scenario file.
    #[must_use]
    pub fn builtin() -> Self {
        let mut specs = Vec::new();

        let mut s = ScenarioSpec::new("example1-stable", 1);
        s.description = "Example 1 inside the Theorem 1 region: λ0 = 1 < U_s/(1−µ/γ) = 2".into();
        s.seed_rate = 1.0;
        s.seed_departure_rate = 2.0;
        s.arrivals = vec![ArrivalSpec {
            pieces: PieceSelector::Empty,
            rate: 1.0,
        }];
        specs.push(s);

        let mut s = ScenarioSpec::new("example1-transient", 1);
        s.description =
            "Example 1 outside the region: λ0 = 4 > 2, one club grows at rate ≈ 2".into();
        s.seed_rate = 1.0;
        s.seed_departure_rate = 2.0;
        s.arrivals = vec![ArrivalSpec {
            pieces: PieceSelector::Empty,
            rate: 4.0,
        }];
        specs.push(s);

        let mut s = ScenarioSpec::new("example2-wedge", 4);
        s.description =
            "Example 2 heterogeneous arrivals outside the 2:1 wedge (λ12 = 2.5·λ34)".into();
        s.arrivals = vec![
            ArrivalSpec {
                pieces: PieceSelector::Pieces(vec![0, 1]),
                rate: 2.5,
            },
            ArrivalSpec {
                pieces: PieceSelector::Pieces(vec![2, 3]),
                rate: 1.0,
            },
        ];
        specs.push(s);

        let mut s = ScenarioSpec::new("flash-crowd", 3);
        s.description =
            "A stable swarm hit by a 400-peer empty-handed flash crowd at t = 200".into();
        s.seed_rate = 1.0;
        s.seed_departure_rate = 2.0;
        s.arrivals = vec![ArrivalSpec {
            pieces: PieceSelector::Empty,
            rate: 0.8,
        }];
        s.horizon = 600.0;
        s.snapshot_interval = 5.0;
        s.flash_crowds = vec![FlashSpec {
            time: 200.0,
            count: 400,
            pieces: PieceSelector::Empty,
        }];
        specs.push(s);

        let mut s = ScenarioSpec::new("multi-seed", 4);
        s.description =
            "25 altruistic seeds and 50 empty peers at t = 0, slow seed departures (γ = 1)".into();
        s.seed_rate = 0.2;
        s.seed_departure_rate = 1.0;
        s.arrivals = vec![ArrivalSpec {
            pieces: PieceSelector::Empty,
            rate: 1.5,
        }];
        s.initial = vec![
            InitialGroupSpec {
                pieces: PieceSelector::Full,
                count: 25,
            },
            InitialGroupSpec {
                pieces: PieceSelector::Empty,
                count: 50,
            },
        ];
        specs.push(s);

        let mut s = ScenarioSpec::new("retry-speedup", 3);
        s.description =
            "Section VIII-C push variant: η = 10 retries from an 80-peer one club with gifted arrivals".into();
        s.seed_rate = 0.3;
        s.seed_departure_rate = 3.0;
        s.retry_speedup = 10.0;
        s.arrivals = vec![
            ArrivalSpec {
                pieces: PieceSelector::Empty,
                rate: 2.0,
            },
            ArrivalSpec {
                pieces: PieceSelector::Pieces(vec![0]),
                rate: 0.4,
            },
        ];
        s.initial = vec![InitialGroupSpec {
            pieces: PieceSelector::OneClub,
            count: 80,
        }];
        s.horizon = 600.0;
        specs.push(s);

        let mut s = ScenarioSpec::new("rarest-first", 3);
        s.description = "Theorem 14 probe: the Example-3-like network under rarest-first".into();
        s.seed_departure_rate = 2.0;
        s.policy = "rarest-first".into();
        s.arrivals = (0..3)
            .map(|i| ArrivalSpec {
                pieces: PieceSelector::Pieces(vec![i]),
                rate: 1.0,
            })
            .collect();
        specs.push(s);

        let mut s = ScenarioSpec::new("coded-gift-sub", 8);
        s.description =
            "Theorem 15 below threshold: GF(2), K = 8, f = 0.1 < q/((q−1)K) = 0.25 — transient"
                .into();
        s.kernel = KernelKind::Coded;
        s.coding = Some(CodingSpec {
            field_order: 2,
            gift_fraction: 0.1,
        });
        s.arrivals = vec![ArrivalSpec {
            pieces: PieceSelector::Empty,
            rate: 1.0,
        }];
        s.horizon = 800.0;
        specs.push(s);

        let mut s = ScenarioSpec::new("coded-gift-super", 8);
        s.description =
            "Theorem 15 above threshold: GF(2), K = 8, f = 0.8 > q²/((q−1)²K) = 0.5 — stable"
                .into();
        s.kernel = KernelKind::Coded;
        s.coding = Some(CodingSpec {
            field_order: 2,
            gift_fraction: 0.8,
        });
        s.arrivals = vec![ArrivalSpec {
            pieces: PieceSelector::Empty,
            rate: 1.0,
        }];
        s.horizon = 800.0;
        specs.push(s);

        let mut s = ScenarioSpec::new("coded-turbo-gift", 8);
        s.description =
            "The coded-gift-super swarm on the bitsliced GF(2) coded-turbo kernel — lazy peers, packed bases"
                .into();
        s.kernel = KernelKind::CodedTurbo;
        s.coding = Some(CodingSpec {
            field_order: 2,
            gift_fraction: 0.8,
        });
        s.arrivals = vec![ArrivalSpec {
            pieces: PieceSelector::Empty,
            rate: 1.0,
        }];
        s.horizon = 800.0;
        specs.push(s);

        let mut s = ScenarioSpec::new("big-swarm-k32", 32);
        s.description =
            "The benchmark regime: K = 32, almost-complete arrivals sustaining a multi-thousand-peer swarm".into();
        s.seed_rate = 1.0;
        s.contact_rate = 0.2;
        s.seed_departure_rate = 8.0;
        s.arrivals = (0..32)
            .map(|i| ArrivalSpec {
                pieces: PieceSelector::Pieces((0..32).filter(|&j| j != i).collect()),
                rate: 1000.0 / 32.0,
            })
            .collect();
        s.horizon = 30.0;
        s.snapshot_interval = 0.5;
        specs.push(s);

        Registry { specs }
    }

    /// The scenario names, in registry order.
    #[must_use]
    pub fn names(&self) -> Vec<&str> {
        self.specs.iter().map(|s| s.name.as_str()).collect()
    }

    /// Looks up a scenario by name.
    #[must_use]
    pub fn get(&self, name: &str) -> Option<&ScenarioSpec> {
        self.specs.iter().find(|s| s.name == name)
    }

    /// Iterates over the scenarios in registry order.
    pub fn iter(&self) -> impl Iterator<Item = &ScenarioSpec> {
        self.specs.iter()
    }

    /// Adds (or replaces, by name) a scenario.
    pub fn insert(&mut self, spec: ScenarioSpec) {
        if let Some(slot) = self.specs.iter_mut().find(|s| s.name == spec.name) {
            *slot = spec;
        } else {
            self.specs.push(spec);
        }
    }

    /// Resolves `--scenario` CLI input: a path to a JSON scenario file, or
    /// the name of a built-in.
    ///
    /// # Errors
    ///
    /// Returns [`SpecError::Io`] / [`SpecError::InFile`] if the file fails
    /// to read or parse, or [`SpecError::UnknownScenario`] if the name is
    /// unknown.
    pub fn resolve(&self, file_or_name: &str) -> Result<ScenarioSpec, SpecError> {
        let path = std::path::Path::new(file_or_name);
        if path.is_file() {
            let text = std::fs::read_to_string(path).map_err(|e| SpecError::Io {
                path: path.to_path_buf(),
                message: e.to_string(),
            })?;
            return ScenarioSpec::from_json(&text).map_err(|e| SpecError::in_file(path, e));
        }
        self.get(file_or_name)
            .cloned()
            .ok_or_else(|| SpecError::UnknownScenario {
                name: file_or_name.to_owned(),
                available: self.names().iter().map(ToString::to_string).collect(),
            })
    }
}

/// Execution budget of a registry scenario run.
#[derive(Debug, Clone, PartialEq)]
pub struct ScenarioRunOptions {
    /// Replications, combined by majority vote.
    pub replications: u32,
    /// Worker threads (0 = one per core); never changes the numbers.
    pub jobs: usize,
    /// Master seed of the engine streams.
    pub seed: u64,
    /// Overrides the spec's horizon when set.
    pub horizon_override: Option<f64>,
    /// Overrides the spec's simulation kernel when set (the CLI's
    /// `--kernel` flag).
    pub kernel_override: Option<KernelKind>,
    /// Overrides the spec's intra-replication shard count when set (the
    /// CLI's `--shards` flag). Precedence: CLI flag > scenario file >
    /// engine default (unsharded).
    pub shards_override: Option<u32>,
    /// Overrides the spec's sharded synchronization window when set (the
    /// CLI's `--sync-window` flag).
    pub sync_window_override: Option<f64>,
    /// Report replication progress on stderr through the engine's built-in
    /// progress sink (the CLI's `--progress` flag).
    pub progress: bool,
    /// Collect per-replication kernel counters and wall times on the
    /// engine (the CLI's `--metrics` flag); never changes the numbers —
    /// metering consumes no randomness.
    pub metrics: bool,
    /// How replication failures are handled (the CLI's `--failure-policy`
    /// flag); part of the checkpoint digest.
    pub failure_policy: FailurePolicy,
    /// Deterministic fault injection plan (the CLI's `--chaos` flag).
    pub faults: Option<FaultPlan>,
    /// Write crash-consistent checkpoints here (the CLI's `--checkpoint`
    /// flag).
    pub checkpoint: Option<CheckpointSpec>,
    /// Resume from this checkpoint file instead of starting fresh (the
    /// CLI's `--resume` flag).
    pub resume: Option<std::path::PathBuf>,
}

impl Default for ScenarioRunOptions {
    fn default() -> Self {
        ScenarioRunOptions {
            replications: 4,
            jobs: 0,
            seed: 0xA11CE,
            horizon_override: None,
            kernel_override: None,
            shards_override: None,
            sync_window_override: None,
            progress: false,
            metrics: false,
            failure_policy: FailurePolicy::FailFast,
            faults: None,
            checkpoint: None,
            resume: None,
        }
    }
}

/// The outcome of executing one registry scenario.
#[derive(Debug, Clone, PartialEq)]
pub struct ScenarioRunReport {
    /// The executed spec.
    pub spec: ScenarioSpec,
    /// The engine's aggregated outcome.
    pub outcome: AgentOutcome,
    /// The horizon actually used.
    pub horizon: f64,
    /// The replication count used.
    pub replications: u32,
    /// Every quarantined replication, in stream-key order (empty under
    /// `FailFast`, which aborts instead).
    pub failures: Vec<ReplicationFailure>,
}

impl ScenarioRunReport {
    /// Renders the outcome as a deterministic plain-text report.
    #[must_use]
    pub fn render(&self) -> String {
        use std::fmt::Write as _;
        let o = &self.outcome;
        let mut out = String::new();
        let _ = writeln!(out, "scenario: {}", self.spec.name);
        if !self.spec.description.is_empty() {
            let _ = writeln!(out, "  {}", self.spec.description);
        }
        let _ = writeln!(
            out,
            "budget: horizon {}, {} replications",
            fmt_num(self.horizon),
            self.replications
        );
        let theorem = if self.spec.coding.is_some() {
            "Theorem 15"
        } else {
            "Theorem 1"
        };
        let _ = writeln!(out, "theory ({theorem}): {:?}", o.theory);
        let _ = writeln!(
            out,
            "simulated majority: {:?} (stable {}, growing {}, indeterminate {}) — {}",
            o.majority,
            o.votes.stable,
            o.votes.growing,
            o.votes.indeterminate,
            if o.agrees {
                "agrees with theory"
            } else {
                "DISAGREES with theory"
            }
        );
        let _ = writeln!(
            out,
            "tail slope: {} ± {} peers/time, tail average N: {} ± {}",
            fmt_num(o.tail_slope.mean),
            fmt_num(o.tail_slope.ci_half_width),
            fmt_num(o.tail_average.mean),
            fmt_num(o.tail_average.ci_half_width)
        );
        let _ = writeln!(
            out,
            "mean events per replication: {}",
            fmt_num(o.mean_events)
        );
        if o.truncated_replications > 0 {
            let _ = writeln!(
                out,
                "WARNING: {}/{} replications hit the max_events safety valve — \
                 verdicts cover truncated trajectories",
                o.truncated_replications, self.replications
            );
        } else {
            let _ = writeln!(out, "no replication hit the max_events safety valve");
        }
        if o.failed_replications > 0 {
            let _ = writeln!(
                out,
                "WARNING: {}/{} replications were quarantined by the failure \
                 policy — they cast no vote and contribute no sample",
                o.failed_replications, self.replications
            );
        }
        out
    }
}

/// Executes a scenario spec on the engine's agent backend through
/// [`engine::Session`], discarding per-replication results.
///
/// Deterministic: a fixed `options.seed` gives bit-identical outcomes at any
/// `options.jobs`.
///
/// # Errors
///
/// Returns a [`SpecError`] if the spec fails to compile or the engine
/// rejects the compiled scenario.
pub fn run(
    spec: &ScenarioSpec,
    options: &ScenarioRunOptions,
) -> Result<ScenarioRunReport, SpecError> {
    run_with_sink(spec, options, &mut NullSink)
}

/// Executes a scenario spec like [`run`], additionally streaming every
/// replication's result into `sink` as it completes (in deterministic
/// replication order — see [`engine::Session::stream`]). The returned
/// report is byte-identical to [`run`]'s: batch execution *is* streaming
/// execution with a null sink.
///
/// # Errors
///
/// Returns a [`SpecError`] if the spec fails to compile or the engine
/// rejects the compiled scenario.
pub fn run_with_sink<S: ReplicationSink + Send>(
    spec: &ScenarioSpec,
    options: &ScenarioRunOptions,
    sink: &mut S,
) -> Result<ScenarioRunReport, SpecError> {
    // Apply the kernel override to the spec itself before compiling, so the
    // report's `spec` records the kernel that actually executed.
    let mut spec = spec.clone();
    if let Some(kernel) = options.kernel_override {
        spec.kernel = kernel;
    }
    if let Some(shards) = options.shards_override {
        spec.shards = Some(shards);
    }
    if let Some(window) = options.sync_window_override {
        spec.sync_window = Some(window);
    }
    let scenario = spec.compile(0)?;
    let horizon = options.horizon_override.unwrap_or(spec.horizon);
    let config = EngineConfig::default()
        .with_replications(options.replications)
        .with_horizon(horizon)
        .with_master_seed(options.seed)
        .with_jobs(options.jobs)
        .with_progress(options.progress)
        .with_metrics(options.metrics)
        .with_failure_policy(options.failure_policy);
    let mut builder = Session::builder()
        .config(config)
        .workload(Workload::agent(vec![scenario]));
    if let Some(plan) = &options.faults {
        builder = builder.faults(plan.clone());
    }
    if let Some(spec) = &options.checkpoint {
        builder = builder.checkpoint(spec.clone());
    }
    let session = builder.build()?;
    let mut collecting = CollectFailures {
        inner: sink,
        failures: Vec::new(),
    };
    let output = match &options.resume {
        Some(path) => session.resume_stream(path, &mut collecting)?,
        None => session.stream(&mut collecting),
    };
    let failures = collecting.failures;
    let outcomes = output.into_agent().expect("an agent workload");
    Ok(ScenarioRunReport {
        spec,
        outcome: outcomes.into_iter().next().expect("one scenario in"),
        horizon,
        replications: options.replications,
        failures,
    })
}

/// A pass-through sink that additionally keeps every failure it sees, so
/// the CLI can print a per-replication failure summary after the stream
/// ends.
struct CollectFailures<'s, S: ReplicationSink> {
    inner: &'s mut S,
    failures: Vec<ReplicationFailure>,
}

impl<S: ReplicationSink> ReplicationSink for CollectFailures<'_, S> {
    fn begin(&mut self, plan: &StreamPlan) {
        self.inner.begin(plan);
    }

    fn record(&mut self, record: &ReplicationRecord) {
        self.inner.record(record);
    }

    fn failure(&mut self, failure: &ReplicationFailure) {
        self.failures.push(failure.clone());
        self.inner.failure(failure);
    }

    fn end(&mut self, stats: &StreamStats) {
        self.inner.end(stats);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builtins_compile_and_round_trip() {
        let registry = Registry::builtin();
        assert!(registry.names().len() >= 6);
        for spec in registry.iter() {
            let json = spec.to_json();
            let parsed =
                ScenarioSpec::from_json(&json).unwrap_or_else(|e| panic!("{}: {e}", spec.name));
            assert_eq!(*spec, parsed, "round trip of {}", spec.name);
            let scenario = spec
                .compile(3)
                .unwrap_or_else(|e| panic!("{}: {e}", spec.name));
            assert_eq!(scenario.id, 3);
            scenario.build_sim().expect("builtin scenarios validate");
        }
    }

    #[test]
    fn unknown_fields_and_bad_values_are_rejected() {
        assert!(ScenarioSpec::from_json("{}").is_err(), "name required");
        assert!(
            ScenarioSpec::from_json(r#"{"name":"x","num_pieces":2,"turbo":1}"#).is_err(),
            "unknown field"
        );
        assert!(
            ScenarioSpec::from_json(r#"{"name":"x","num_pieces":2.5}"#).is_err(),
            "fractional count"
        );
        assert!(
            ScenarioSpec::from_json(
                r#"{"name":"x","num_pieces":2,"arrivals":[{"pieces":"sideways","rate":1}]}"#
            )
            .is_err(),
            "unknown selector"
        );
    }

    #[test]
    fn gamma_inf_spelling_round_trips() {
        let spec = ScenarioSpec::from_json(
            r#"{"name":"x","num_pieces":2,"seed_departure_rate":"inf",
                "arrivals":[{"pieces":"empty","rate":1}]}"#,
        )
        .unwrap();
        assert!(spec.seed_departure_rate.is_infinite());
        let again = ScenarioSpec::from_json(&spec.to_json()).unwrap();
        assert!(again.seed_departure_rate.is_infinite());
    }

    #[test]
    fn out_of_range_num_pieces_is_an_error_not_a_panic() {
        for k in [0usize, 65, 1000] {
            let mut spec = ScenarioSpec::new("wide", k);
            spec.arrivals = vec![ArrivalSpec {
                pieces: PieceSelector::Empty,
                rate: 1.0,
            }];
            let err = spec.compile(0).unwrap_err().to_string();
            assert!(err.contains("num_pieces"), "{err}");
        }
        assert!(PieceSelector::Empty.resolve(65, PieceId::new(0)).is_err());
    }

    #[test]
    fn negative_numbers_are_rejected_at_parse_time() {
        let doc = r#"{"name":"x","num_pieces":2,
            "arrivals":[{"pieces":"empty","rate":1}],
            "flash_crowds":[{"time":-5.0,"count":3,"pieces":"empty"}]}"#;
        let err = ScenarioSpec::from_json(doc).unwrap_err().to_string();
        assert!(err.contains("time"), "{err}");
        let doc = r#"{"name":"x","num_pieces":2,
            "arrivals":[{"pieces":"empty","rate":-1}]}"#;
        assert!(ScenarioSpec::from_json(doc).is_err());
    }

    #[test]
    fn kernel_field_is_parsed_and_honoured() {
        for (name, kind) in [
            ("legacy-scan", KernelKind::LegacyScan),
            ("turbo", KernelKind::Turbo),
            ("event-driven", KernelKind::EventDriven),
        ] {
            let doc = format!(
                r#"{{"name":"x","num_pieces":2,"kernel":"{name}",
                "arrivals":[{{"pieces":"empty","rate":1}}]}}"#
            );
            let spec = ScenarioSpec::from_json(&doc).unwrap();
            assert_eq!(spec.kernel, kind);
            let scenario = spec.compile(0).unwrap();
            assert_eq!(scenario.config.kernel, kind);
            assert_eq!(ScenarioSpec::from_json(&spec.to_json()).unwrap(), spec);
        }
        let bad = r#"{"name":"x","num_pieces":2,"kernel":"warp",
            "arrivals":[{"pieces":"empty","rate":1}]}"#;
        assert!(ScenarioSpec::from_json(bad).is_err());
    }

    #[test]
    fn kernel_override_wins_over_the_spec_and_turbo_runs_are_deterministic() {
        let registry = Registry::builtin();
        let spec = registry.get("retry-speedup").unwrap();
        assert_eq!(spec.kernel, KernelKind::EventDriven);
        let options = ScenarioRunOptions {
            replications: 2,
            jobs: 1,
            seed: 77,
            horizon_override: Some(80.0),
            kernel_override: Some(KernelKind::Turbo),
            ..Default::default()
        };
        let a = run(spec, &options).unwrap();
        let b = run(spec, &ScenarioRunOptions { jobs: 4, ..options }).unwrap();
        assert_eq!(a.outcome, b.outcome, "turbo is deterministic per seed");
        assert_eq!(a.outcome.votes.total(), 2);
        assert_eq!(
            a.spec.kernel,
            KernelKind::Turbo,
            "the report's spec records the kernel that actually ran"
        );
    }

    #[test]
    fn compile_rejects_bad_watch_and_indices() {
        let mut spec = ScenarioSpec::new("x", 2);
        spec.arrivals = vec![ArrivalSpec {
            pieces: PieceSelector::Empty,
            rate: 1.0,
        }];
        spec.watch_piece = 5;
        assert!(spec.compile(0).is_err());
        spec.watch_piece = 0;
        spec.arrivals[0].pieces = PieceSelector::Pieces(vec![9]);
        assert!(spec.compile(0).is_err());
    }

    #[test]
    fn shard_fields_parse_round_trip_and_compile_through() {
        let doc = r#"{"name":"x","num_pieces":2,"kernel":"turbo",
            "shards":4,"sync_window":0.5,
            "arrivals":[{"pieces":"empty","rate":1}]}"#;
        let spec = ScenarioSpec::from_json(doc).unwrap();
        assert_eq!(spec.shards, Some(4));
        assert_eq!(spec.sync_window, Some(0.5));
        assert_eq!(ScenarioSpec::from_json(&spec.to_json()).unwrap(), spec);
        let scenario = spec.compile(0).unwrap();
        assert_eq!(scenario.shards, Some(4));
        assert_eq!(scenario.sync_window, Some(0.5));
        // Absent fields stay inherited (`None`), and stay off the wire.
        let plain = ScenarioSpec::from_json(
            r#"{"name":"x","num_pieces":2,"arrivals":[{"pieces":"empty","rate":1}]}"#,
        )
        .unwrap();
        assert_eq!(plain.shards, None);
        assert!(!plain.to_json().contains("shards"));
        // Degenerate values are parse errors, not later surprises.
        for bad in [
            r#"{"name":"x","num_pieces":2,"shards":0,
                "arrivals":[{"pieces":"empty","rate":1}]}"#,
            r#"{"name":"x","num_pieces":2,"sync_window":0,
                "arrivals":[{"pieces":"empty","rate":1}]}"#,
            r#"{"name":"x","num_pieces":2,"sync_window":-1.0,
                "arrivals":[{"pieces":"empty","rate":1}]}"#,
        ] {
            assert!(ScenarioSpec::from_json(bad).is_err(), "{bad}");
        }
    }

    #[test]
    fn shard_overrides_win_over_the_spec_and_jobs_never_change_the_numbers() {
        let mut spec = ScenarioSpec::new("sharded", 2);
        spec.kernel = KernelKind::Turbo;
        spec.seed_rate = 1.5;
        spec.seed_departure_rate = 2.0;
        spec.arrivals = vec![ArrivalSpec {
            pieces: PieceSelector::Empty,
            rate: 1.2,
        }];
        spec.horizon = 80.0;
        spec.shards = Some(2);
        let options = ScenarioRunOptions {
            replications: 2,
            jobs: 1,
            seed: 99,
            shards_override: Some(3),
            sync_window_override: Some(0.5),
            ..Default::default()
        };
        let a = run(&spec, &options).unwrap();
        assert_eq!(
            a.spec.shards,
            Some(3),
            "the report's spec records the shard count that actually ran"
        );
        assert_eq!(a.spec.sync_window, Some(0.5));
        let b = run(&spec, &ScenarioRunOptions { jobs: 4, ..options }).unwrap();
        assert_eq!(a.outcome, b.outcome, "sharded runs are jobs-independent");
        assert_eq!(a.render(), b.render());
    }

    #[test]
    fn run_is_deterministic() {
        let registry = Registry::builtin();
        let spec = registry.get("flash-crowd").unwrap();
        let options = ScenarioRunOptions {
            replications: 2,
            jobs: 1,
            seed: 42,
            horizon_override: Some(120.0),
            kernel_override: None,
            ..Default::default()
        };
        let a = run(spec, &options).unwrap();
        let b = run(spec, &ScenarioRunOptions { jobs: 4, ..options }).unwrap();
        assert_eq!(a.outcome, b.outcome, "jobs never change the numbers");
        assert_eq!(a.render(), b.render());
    }
}
