//! Two-parameter stability-region maps rendered as ASCII grids.
//!
//! The paper draws its stability region as inequalities; the closest
//! "figure" a reproduction can offer is a grid over two parameters showing,
//! in each cell, Theorem 1's verdict and the simulated behaviour. Experiment
//! E5 uses this to render the region of Example 1 over `(λ0, γ/µ)`.

use crate::sweep::{run_sweep, SweepOptions, SweepOutcome, SweepPoint};
use markov::PathClass;
use serde::{Deserialize, Serialize};
use swarm::{StabilityVerdict, SwarmParams};

/// Outcome of one grid cell.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum CellOutcome {
    /// Theory: positive recurrent; simulation agrees (bounded path).
    StableAgreed,
    /// Theory: transient; simulation agrees (growing path).
    TransientAgreed,
    /// Theory and simulation disagree (or the simulation was indeterminate).
    Mismatch,
    /// Theory places the point on the boundary left open by Theorem 1.
    Borderline,
}

impl CellOutcome {
    /// The single character used in the ASCII rendering (the canonical
    /// [`engine::labels`] glyph set).
    #[must_use]
    pub fn glyph(self) -> char {
        match self {
            CellOutcome::StableAgreed => engine::labels::GLYPH_STABLE_AGREED,
            CellOutcome::TransientAgreed => engine::labels::GLYPH_TRANSIENT_AGREED,
            CellOutcome::Mismatch => engine::labels::GLYPH_MISMATCH,
            CellOutcome::Borderline => engine::labels::GLYPH_BORDERLINE,
        }
    }

    fn from_outcome(outcome: &SweepOutcome) -> Self {
        match (outcome.theory, outcome.simulated) {
            (StabilityVerdict::Borderline, _) => CellOutcome::Borderline,
            (StabilityVerdict::PositiveRecurrent, PathClass::Stable) => CellOutcome::StableAgreed,
            (StabilityVerdict::Transient, PathClass::Growing) => CellOutcome::TransientAgreed,
            _ => CellOutcome::Mismatch,
        }
    }
}

/// A rendered two-parameter stability map.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RegionGrid {
    /// Label of the horizontal axis.
    pub x_label: String,
    /// Label of the vertical axis.
    pub y_label: String,
    /// Horizontal axis values (one per column).
    pub x_values: Vec<f64>,
    /// Vertical axis values (one per row, rendered top row last).
    pub y_values: Vec<f64>,
    /// `cells[row][col]` outcome.
    pub cells: Vec<Vec<CellOutcome>>,
}

impl RegionGrid {
    /// Number of cells where theory and simulation agree (borderline cells
    /// are not counted either way).
    #[must_use]
    pub fn agreements(&self) -> usize {
        self.cells
            .iter()
            .flatten()
            .filter(|c| matches!(c, CellOutcome::StableAgreed | CellOutcome::TransientAgreed))
            .count()
    }

    /// Number of mismatching cells.
    #[must_use]
    pub fn mismatches(&self) -> usize {
        self.cells
            .iter()
            .flatten()
            .filter(|c| matches!(c, CellOutcome::Mismatch))
            .count()
    }

    /// Total number of cells.
    #[must_use]
    pub fn len(&self) -> usize {
        self.cells.iter().map(Vec::len).sum()
    }

    /// Returns `true` if the grid has no cells.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Renders the map as ASCII art (y increases upward).
    #[must_use]
    pub fn render(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "stability map — rows: {} (top = largest), columns: {}\n",
            self.y_label, self.x_label
        ));
        out.push_str(engine::labels::GLYPH_LEGEND);
        out.push('\n');
        for (row_idx, row) in self.cells.iter().enumerate().rev() {
            let y = self.y_values[row_idx];
            out.push_str(&format!("{y:>10.3} | "));
            for cell in row {
                out.push(cell.glyph());
                out.push(' ');
            }
            out.push('\n');
        }
        out.push_str(&format!("{:>10}   ", ""));
        out.push_str(&"-".repeat(self.x_values.len() * 2));
        out.push('\n');
        out.push_str(&format!("{:>10}   ", ""));
        for x in &self.x_values {
            out.push_str(&format!("{x:<4.1}"));
        }
        out.push('\n');
        out
    }
}

impl core::fmt::Display for RegionGrid {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(f, "{}", self.render())
    }
}

/// Builds a stability map over a grid of two parameters. `make_params(x, y)`
/// constructs the model at each cell; cells where construction fails are
/// marked as [`CellOutcome::Mismatch`].
pub fn stability_map<F>(
    x_label: &str,
    x_values: &[f64],
    y_label: &str,
    y_values: &[f64],
    make_params: F,
    options: SweepOptions,
) -> RegionGrid
where
    F: Fn(f64, f64) -> Option<SwarmParams>,
{
    let mut points = Vec::new();
    let mut index: Vec<Vec<Option<usize>>> = Vec::new();
    for &y in y_values {
        let mut row = Vec::new();
        for &x in x_values {
            match make_params(x, y) {
                Some(params) => {
                    row.push(Some(points.len()));
                    points.push(SweepPoint::new(
                        format!("{x_label}={x},{y_label}={y}"),
                        params,
                    ));
                }
                None => row.push(None),
            }
        }
        index.push(row);
    }
    let outcomes = run_sweep(&points, options);
    let cells = index
        .into_iter()
        .map(|row| {
            row.into_iter()
                .map(|slot| {
                    slot.map_or(CellOutcome::Mismatch, |i| {
                        CellOutcome::from_outcome(&outcomes[i])
                    })
                })
                .collect()
        })
        .collect();
    RegionGrid {
        x_label: x_label.to_owned(),
        y_label: y_label.to_owned(),
        x_values: x_values.to_vec(),
        y_values: y_values.to_vec(),
        cells,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenario;

    #[test]
    fn glyphs_are_distinct() {
        let glyphs: std::collections::HashSet<char> = [
            CellOutcome::StableAgreed,
            CellOutcome::TransientAgreed,
            CellOutcome::Mismatch,
            CellOutcome::Borderline,
        ]
        .iter()
        .map(|c| c.glyph())
        .collect();
        assert_eq!(glyphs.len(), 4);
    }

    #[test]
    fn example1_map_has_stable_and_transient_regions() {
        // Small 2×2 map far from the boundary on both sides.
        let options = SweepOptions {
            horizon: 600.0,
            seed: 3,
            threads: 2,
            replications: 2,
            initial_one_club: 0,
            progress: false,
        };
        let grid = stability_map(
            "λ0",
            &[0.5, 4.0],
            "γ",
            &[2.0, 8.0],
            |lambda0, gamma| scenario::example1(lambda0, 1.0, 1.0, gamma).ok(),
            options,
        );
        assert_eq!(grid.len(), 4);
        let rendered = grid.render();
        assert!(rendered.contains('·'), "a stable cell appears:\n{rendered}");
        assert!(
            rendered.contains('#'),
            "a transient cell appears:\n{rendered}"
        );
        assert!(grid.agreements() >= 3, "most cells agree:\n{rendered}");
    }

    #[test]
    fn failed_construction_is_marked_mismatch() {
        let options = SweepOptions {
            horizon: 100.0,
            seed: 1,
            threads: 1,
            replications: 1,
            initial_one_club: 0,
            progress: false,
        };
        let grid = stability_map("x", &[1.0], "y", &[1.0], |_, _| None, options);
        assert_eq!(grid.mismatches(), 1);
        assert!(!grid.is_empty());
        assert!(grid.render().contains('?'));
    }
}
