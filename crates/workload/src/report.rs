//! Plain-text tables: the output format of every experiment.

use serde::{Deserialize, Serialize};

/// A simple column-aligned text table.
///
/// # Examples
///
/// ```
/// use workload::Table;
/// let mut t = Table::new("demo", &["x", "y"]);
/// t.row(&["1", "2"]);
/// let text = t.render();
/// assert!(text.contains("demo"));
/// assert!(text.contains('1'));
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Table {
    title: String,
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with a title and column headers.
    #[must_use]
    pub fn new(title: &str, headers: &[&str]) -> Self {
        Table {
            title: title.to_owned(),
            headers: headers.iter().map(|s| (*s).to_owned()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row (missing cells are rendered empty, extra cells are kept).
    pub fn row<S: AsRef<str>>(&mut self, cells: &[S]) {
        self.rows
            .push(cells.iter().map(|c| c.as_ref().to_owned()).collect());
    }

    /// Number of data rows.
    #[must_use]
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Returns `true` if the table has no data rows.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// The table title.
    #[must_use]
    pub fn title(&self) -> &str {
        &self.title
    }

    /// Access to the raw rows (for assertions in tests and integration
    /// checks).
    #[must_use]
    pub fn rows(&self) -> &[Vec<String>] {
        &self.rows
    }

    /// The column headers.
    #[must_use]
    pub fn headers(&self) -> &[String] {
        &self.headers
    }

    /// Renders the table as column-aligned text.
    #[must_use]
    pub fn render(&self) -> String {
        let cols = self
            .headers
            .len()
            .max(self.rows.iter().map(Vec::len).max().unwrap_or(0));
        let mut widths = vec![0usize; cols];
        for (i, h) in self.headers.iter().enumerate() {
            widths[i] = widths[i].max(h.chars().count());
        }
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.chars().count());
            }
        }
        let render_row = |cells: &[String]| -> String {
            let mut line = String::from("| ");
            for (i, width) in widths.iter().enumerate() {
                let cell = cells.get(i).map_or("", String::as_str);
                line.push_str(cell);
                line.push_str(&" ".repeat(width.saturating_sub(cell.chars().count())));
                line.push_str(" | ");
            }
            line.trim_end().to_owned()
        };
        let mut out = String::new();
        out.push_str(&format!("## {}\n", self.title));
        out.push_str(&render_row(&self.headers));
        out.push('\n');
        let sep: Vec<String> = widths.iter().map(|w| "-".repeat(*w)).collect();
        out.push_str(&render_row(&sep));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&render_row(row));
            out.push('\n');
        }
        out
    }
}

impl core::fmt::Display for Table {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(f, "{}", self.render())
    }
}

/// The result of one experiment: a set of tables plus free-form notes, with
/// the paper artifact it reproduces.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ExperimentReport {
    /// Experiment identifier (e.g. `"E1"`).
    pub id: String,
    /// Human-readable title naming the paper artifact.
    pub title: String,
    /// Free-form notes: observed vs predicted, caveats, parameters.
    pub notes: Vec<String>,
    /// Result tables.
    pub tables: Vec<Table>,
    /// Preformatted figures (title, ASCII body), e.g. stability-region maps.
    pub figures: Vec<(String, String)>,
}

impl ExperimentReport {
    /// Creates an empty report.
    #[must_use]
    pub fn new(id: &str, title: &str) -> Self {
        ExperimentReport {
            id: id.to_owned(),
            title: title.to_owned(),
            notes: Vec::new(),
            tables: Vec::new(),
            figures: Vec::new(),
        }
    }

    /// Appends a note line.
    pub fn note(&mut self, line: impl Into<String>) {
        self.notes.push(line.into());
    }

    /// Appends a table.
    pub fn push_table(&mut self, table: Table) {
        self.tables.push(table);
    }

    /// Appends a preformatted ASCII figure.
    pub fn push_figure(&mut self, title: impl Into<String>, body: impl Into<String>) {
        self.figures.push((title.into(), body.into()));
    }

    /// Renders the full report as text.
    #[must_use]
    pub fn render(&self) -> String {
        let mut out = format!("# {} — {}\n\n", self.id, self.title);
        for n in &self.notes {
            out.push_str("- ");
            out.push_str(n);
            out.push('\n');
        }
        if !self.notes.is_empty() {
            out.push('\n');
        }
        for t in &self.tables {
            out.push_str(&t.render());
            out.push('\n');
        }
        for (title, body) in &self.figures {
            out.push_str(&format!("## {title}\n"));
            out.push_str(body);
            if !body.ends_with('\n') {
                out.push('\n');
            }
            out.push('\n');
        }
        out
    }
}

impl core::fmt::Display for ExperimentReport {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(f, "{}", self.render())
    }
}

/// Formats a float compactly for table cells.
#[must_use]
pub fn fmt_num(x: f64) -> String {
    if x.is_infinite() {
        return if x > 0.0 { "inf".into() } else { "-inf".into() };
    }
    if x == 0.0 {
        return "0".into();
    }
    let a = x.abs();
    if !(0.001..1000.0).contains(&a) {
        format!("{x:.3e}")
    } else if a >= 10.0 {
        format!("{x:.2}")
    } else {
        format!("{x:.4}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_renders_aligned_columns() {
        let mut t = Table::new("Demo", &["name", "value"]);
        t.row(&["alpha", "1"]);
        t.row(&["b", "12345"]);
        let s = t.render();
        assert!(s.contains("## Demo"));
        assert!(s.contains("| alpha | 1     |"));
        assert!(s.contains("| b     | 12345 |"));
        assert_eq!(t.len(), 2);
        assert!(!t.is_empty());
        assert_eq!(t.headers().len(), 2);
        assert_eq!(t.title(), "Demo");
    }

    #[test]
    fn table_handles_ragged_rows() {
        let mut t = Table::new("Ragged", &["a", "b", "c"]);
        t.row(&["1"]);
        t.row(&["1", "2", "3", "4"]);
        let s = t.render();
        assert!(s.lines().count() >= 4);
    }

    #[test]
    fn report_renders_notes_and_tables() {
        let mut r = ExperimentReport::new("E1", "Example 1 boundary");
        r.note("threshold = 2.0");
        let mut t = Table::new("sweep", &["load", "verdict"]);
        t.row(&["0.5", "stable"]);
        r.push_table(t);
        let s = r.render();
        assert!(s.starts_with("# E1 — Example 1 boundary"));
        assert!(s.contains("- threshold = 2.0"));
        assert!(s.contains("## sweep"));
        assert_eq!(r.to_string(), s);
    }

    #[test]
    fn report_renders_figures() {
        let mut r = ExperimentReport::new("E5", "region map");
        r.push_figure("map", "· # ·\n# · #");
        let s = r.render();
        assert!(s.contains("## map"));
        assert!(s.contains("· # ·"));
        assert!(s.ends_with('\n'));
    }

    #[test]
    fn number_formatting() {
        assert_eq!(fmt_num(0.0), "0");
        assert_eq!(fmt_num(f64::INFINITY), "inf");
        assert_eq!(fmt_num(f64::NEG_INFINITY), "-inf");
        assert_eq!(fmt_num(1.23456), "1.2346");
        assert_eq!(fmt_num(42.123), "42.12");
        assert!(fmt_num(1.0e6).contains('e'));
        assert!(fmt_num(1.0e-6).contains('e'));
    }
}
