//! Integration tests of the scenario registry's file path: JSON scenario
//! files on disk resolve, compile, execute deterministically, and round-trip
//! bit-for-bit through the canonical writer.

use workload::registry::{run, Registry, ScenarioRunOptions, ScenarioSpec};

fn temp_file(name: &str, contents: &str) -> std::path::PathBuf {
    let path = std::env::temp_dir().join(name);
    std::fs::write(&path, contents).expect("temp file writable");
    path
}

#[test]
fn scenario_file_resolves_compiles_and_runs() {
    let doc = r#"{
        "name": "file-scenario",
        "description": "a hand-written scenario file",
        "num_pieces": 3,
        "seed_rate": 0.6,
        "contact_rate": 1.0,
        "seed_departure_rate": 2.0,
        "arrivals": [
            {"pieces": "empty", "rate": 1.0},
            {"pieces": [0], "rate": 0.2}
        ],
        "policy": "rarest-first",
        "retry_speedup": 2.0,
        "horizon": 80.0,
        "snapshot_interval": 4.0,
        "initial": [
            {"pieces": "one-club", "count": 30},
            {"pieces": "full", "count": 5}
        ],
        "flash_crowds": [
            {"time": 40.0, "count": 60, "pieces": "empty"}
        ]
    }"#;
    let path = temp_file("p2p_stability_registry_test.json", doc);
    let registry = Registry::builtin();
    let spec = registry
        .resolve(path.to_str().expect("utf-8 path"))
        .expect("file resolves");
    assert_eq!(spec.name, "file-scenario");
    assert_eq!(spec.policy, "rarest-first");
    assert_eq!(spec.initial.len(), 2);
    assert_eq!(spec.flash_crowds.len(), 1);

    // The canonical writer round-trips the parsed spec exactly.
    assert_eq!(ScenarioSpec::from_json(&spec.to_json()).unwrap(), spec);

    // Execution is deterministic: same seed, different worker counts.
    let options = ScenarioRunOptions {
        replications: 2,
        jobs: 1,
        seed: 0xF11E,
        horizon_override: None,
        kernel_override: None,
        ..Default::default()
    };
    let a = run(&spec, &options).expect("runs");
    let b = run(&spec, &ScenarioRunOptions { jobs: 6, ..options }).expect("runs");
    assert_eq!(a.outcome, b.outcome);
    assert_eq!(a.horizon, 80.0, "spec horizon is used without an override");
    // 35 initial peers plus a 60-peer crowd passed through a stable-ish
    // system: the run must have simulated real work.
    assert!(a.outcome.mean_events > 100.0);
    let _ = std::fs::remove_file(path);
}

#[test]
fn unknown_names_report_the_available_scenarios() {
    let registry = Registry::builtin();
    let err = registry
        .resolve("no-such-scenario")
        .unwrap_err()
        .to_string();
    assert!(err.contains("no-such-scenario"));
    assert!(
        err.contains("flash-crowd"),
        "error lists the built-ins: {err}"
    );
}

#[test]
fn builtin_big_swarm_scenario_reaches_operating_size() {
    // The K = 32 benchmark-regime scenario runs through the same path the
    // CLI uses, at a reduced budget.
    let registry = Registry::builtin();
    let spec = registry.get("big-swarm-k32").expect("builtin");
    assert_eq!(spec.num_pieces, 32);
    let options = ScenarioRunOptions {
        replications: 1,
        jobs: 1,
        seed: 3,
        horizon_override: Some(8.0),
        kernel_override: None,
        ..Default::default()
    };
    let report = run(spec, &options).expect("runs");
    assert!(
        report.outcome.tail_average.mean > 500.0,
        "K = 32 swarm sustains a large population, got {}",
        report.outcome.tail_average.mean
    );
    assert_eq!(report.outcome.truncated_replications, 0);
    let rendered = report.render();
    assert!(rendered.contains("big-swarm-k32"));
}
