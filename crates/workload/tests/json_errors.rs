//! Error-path coverage for the scenario file format: malformed documents
//! must come back as typed [`SpecError`] values whose rendered messages
//! name the offending field — never as panics — from both the parser
//! (`ScenarioSpec::from_json`) and the compiler (`ScenarioSpec::compile`).

use workload::registry::{Registry, ScenarioSpec};
use workload::SpecError;

/// Parses and asserts the error message mentions `needle`.
fn parse_err(doc: &str, needle: &str) {
    match ScenarioSpec::from_json(doc) {
        Ok(spec) => panic!("{doc} should not parse, got {spec:?}"),
        Err(error) => {
            assert!(
                matches!(error, SpecError::Parse(_)),
                "parser failures are SpecError::Parse, got {error:?}"
            );
            let message = error.to_string();
            assert!(
                message.contains(needle),
                "error for {doc} should mention `{needle}`, got: {message}"
            );
        }
    }
}

#[test]
fn unknown_kernel_names_are_structured_errors() {
    parse_err(
        r#"{"name":"x","num_pieces":2,"kernel":"warp",
            "arrivals":[{"pieces":"empty","rate":1}]}"#,
        "kernel",
    );
    parse_err(
        r#"{"name":"x","num_pieces":2,"kernel":7,
            "arrivals":[{"pieces":"empty","rate":1}]}"#,
        "kernel",
    );
    // `coded` is a valid kernel name, but only with a coding block.
    parse_err(
        r#"{"name":"x","num_pieces":2,"kernel":"coded",
            "arrivals":[{"pieces":"empty","rate":1}]}"#,
        "coding",
    );
}

#[test]
fn malformed_coding_blocks_are_structured_errors() {
    // Not an object.
    parse_err(
        r#"{"name":"x","num_pieces":2,"coding":"gf2",
            "arrivals":[{"pieces":"empty","rate":1}]}"#,
        "coding",
    );
    // Missing q.
    parse_err(
        r#"{"name":"x","num_pieces":2,"coding":{"gift_fraction":0.5},
            "arrivals":[{"pieces":"empty","rate":1}]}"#,
        "`q`",
    );
    // Missing gift_fraction.
    parse_err(
        r#"{"name":"x","num_pieces":2,"coding":{"q":2},
            "arrivals":[{"pieces":"empty","rate":1}]}"#,
        "gift_fraction",
    );
    // Unknown member inside the block (almost always a typo).
    parse_err(
        r#"{"name":"x","num_pieces":2,
            "coding":{"q":2,"gift_fraction":0.5,"giftfrac":0.5},
            "arrivals":[{"pieces":"empty","rate":1}]}"#,
        "giftfrac",
    );
    // An unsupported field order (GF(6) does not exist).
    parse_err(
        r#"{"name":"x","num_pieces":2,"coding":{"q":6,"gift_fraction":0.5},
            "arrivals":[{"pieces":"empty","rate":1}]}"#,
        "field order",
    );
    // A fractional field order.
    parse_err(
        r#"{"name":"x","num_pieces":2,"coding":{"q":2.5,"gift_fraction":0.5},
            "arrivals":[{"pieces":"empty","rate":1}]}"#,
        "`q`",
    );
    // A coding block cannot ride on an uncoded kernel.
    parse_err(
        r#"{"name":"x","num_pieces":2,"kernel":"turbo",
            "coding":{"q":2,"gift_fraction":0.5},
            "arrivals":[{"pieces":"empty","rate":1}]}"#,
        "coded",
    );
}

#[test]
fn out_of_range_gift_fractions_are_structured_errors() {
    parse_err(
        r#"{"name":"x","num_pieces":2,"coding":{"q":2,"gift_fraction":1.5},
            "arrivals":[{"pieces":"empty","rate":1}]}"#,
        "gift_fraction",
    );
    parse_err(
        r#"{"name":"x","num_pieces":2,"coding":{"q":2,"gift_fraction":-0.25},
            "arrivals":[{"pieces":"empty","rate":1}]}"#,
        "gift_fraction",
    );
}

#[test]
fn coding_block_implies_the_coded_kernel() {
    let spec = ScenarioSpec::from_json(
        r#"{"name":"x","num_pieces":4,"coding":{"q":8,"gift_fraction":0.5},
            "arrivals":[{"pieces":"empty","rate":1}]}"#,
    )
    .expect("kernel defaults to coded when a coding block is present");
    assert_eq!(spec.kernel, swarm::sim::KernelKind::Coded);
    let scenario = spec.compile(0).expect("compiles");
    assert!(scenario.coding.is_some());
    scenario.build_sim().expect("valid coded simulator");
    // And the spec round-trips through its own file format.
    assert_eq!(ScenarioSpec::from_json(&spec.to_json()).unwrap(), spec);
}

#[test]
fn coded_compile_rejects_incompatible_features() {
    let base = r#"{"name":"x","num_pieces":4,"coding":{"q":8,"gift_fraction":0.5},
        "arrivals":[{"pieces":"empty","rate":1}]%EXTRA%}"#;
    let compile_err = |extra: &str, needle: &str| {
        let doc = base.replace("%EXTRA%", extra);
        let spec = ScenarioSpec::from_json(&doc).expect("parses");
        match spec.compile(0) {
            Ok(_) => panic!("{doc} should not compile"),
            Err(error) => {
                assert!(
                    matches!(error, SpecError::Invalid(_)),
                    "compile failures are SpecError::Invalid, got {error:?}"
                );
                let message = error.to_string();
                assert!(
                    message.contains(needle),
                    "error should mention `{needle}`, got: {message}"
                );
            }
        }
    };
    // Gifted arrivals are expressed by gift_fraction, not piece selectors.
    let spec = ScenarioSpec::from_json(
        r#"{"name":"x","num_pieces":4,"coding":{"q":8,"gift_fraction":0.5},
            "arrivals":[{"pieces":[0],"rate":1}]}"#,
    )
    .expect("parses");
    let message = spec
        .compile(0)
        .expect_err("non-empty arrivals rejected")
        .to_string();
    assert!(message.contains("empty-handed"), "{message}");
    // Piece policies and retry speed-ups do not apply to coded uploads.
    compile_err(r#","policy":"rarest-first""#, "policy");
    compile_err(r#","retry_speedup":4.0"#, "retry");
}

#[test]
fn builtin_coded_scenarios_are_wellformed() {
    let registry = Registry::builtin();
    for name in ["coded-gift-sub", "coded-gift-super"] {
        let spec = registry
            .get(name)
            .unwrap_or_else(|| panic!("{name} exists"));
        assert_eq!(spec.kernel, swarm::sim::KernelKind::Coded);
        let json = spec.to_json();
        assert!(json.contains("\"coding\""), "{json}");
        let scenario = spec.compile(1).expect("compiles");
        scenario.build_sim().expect("valid simulator");
    }
}
