//! Shared helpers for the experiment-regeneration benches.
//!
//! Each bench target in `benches/` does two things:
//!
//! 1. prints the corresponding experiment report once (this regenerates the
//!    paper artifact — table, figure series, or theorem check), and
//! 2. registers a Criterion benchmark of a scaled-down version of the same
//!    experiment so its runtime is tracked over time.

use workload::experiments::ExperimentConfig;
use workload::ExperimentReport;

/// The configuration used for the one-off report printed by each bench.
#[must_use]
pub fn report_config() -> ExperimentConfig {
    ExperimentConfig {
        horizon: 1_500.0,
        seed: 0xA11CE,
        threads: 0,
        replications: 4,
        progress: false,
    }
}

/// The configuration used inside the Criterion measurement loop (kept small
/// so `cargo bench` finishes in minutes).
#[must_use]
pub fn measured_config() -> ExperimentConfig {
    ExperimentConfig {
        horizon: 120.0,
        seed: 0xA11CE,
        threads: 2,
        replications: 2,
        progress: false,
    }
}

/// Prints an experiment report with a banner, once, outside the measurement
/// loop.
pub fn print_report(report: &ExperimentReport) {
    println!("\n==================== {} ====================", report.id);
    println!("{report}");
}
